#!/usr/bin/env bash
# scenariomatrix.sh — run the full S1-S22 scenario matrix against its
# fault-injected ground truth and gate the accuracy report against
# ACCURACY_baseline.json.
#
# Usage: scripts/scenariomatrix.sh [-o report.json]
#
#   -o report.json  keep the fresh accuracy report at this path (default:
#                   a temp file discarded after the comparison)
#
# The matrix runs at the baseline's recorded configuration (scale 0.35,
# seed 42, 500 items / 300 customers — the same pinned tuning the
# scenario unit tests use), so verdicts are deterministic and any
# difference from the baseline is a code change, not noise. The gate
# fails when:
#   - any scenario present in the baseline is missing, no longer passes,
#     or scores below its recorded precision/recall;
#   - a pre-injection alarm appears anywhere (the steady-state
#     hypothesis of the litmus catalog requires zero);
#   - the overall matrix drops below the absolute floors: precision 0.9,
#     recall 1.0.
set -euo pipefail
cd "$(dirname "$0")/.."

REPORT=""
while getopts "o:" opt; do
  case "$opt" in
    o) REPORT="$OPTARG" ;;
    *) echo "usage: $0 [-o report.json]" >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))

OUT="${REPORT:-$(mktemp)}"
if [[ -z "$REPORT" ]]; then
  trap 'rm -f "$OUT"' EXIT
fi

SCENARIOS="S1,S2,S3,S4,S5,S6,S7,S8,S9,S10,S11,S12,S13,S14,S15,S16,S17,S18,S19,S20,S21,S22"
echo "running: go run ./cmd/experiments -run $SCENARIOS -scale 0.35 -seed 42 -items 500 -customers 300 -accuracy $OUT" >&2
go run ./cmd/experiments -run "$SCENARIOS" -scale 0.35 -seed 42 -items 500 -customers 300 -accuracy "$OUT" >&2

python3 - "$OUT" <<'PYEOF'
import json, sys

fresh = json.load(open(sys.argv[1]))
base = json.load(open("ACCURACY_baseline.json"))

fresh_rows = {s["ID"]: s for s in fresh["Scenarios"]}
failures = []

for row in base["Scenarios"]:
    sid = row["ID"]
    got = fresh_rows.get(sid)
    if got is None:
        failures.append(f"{sid}: missing from the fresh matrix")
        continue
    if not got["Passed"]:
        failures.append(f"{sid}: no longer passes")
    if got["Precision"] < row["Precision"]:
        failures.append(f"{sid}: precision {got['Precision']:.2f} below recorded {row['Precision']:.2f}")
    if got["Recall"] < row["Recall"]:
        failures.append(f"{sid}: recall {got['Recall']:.2f} below recorded {row['Recall']:.2f}")
    if got["PreInjectionAlarms"] > 0:
        failures.append(f"{sid}: {got['PreInjectionAlarms']} pre-injection alarm(s)")
    if row.get("RecoveryEpochs", 0) > 0 and got.get("RecoveryEpochs", 0) == 0:
        failures.append(f"{sid}: actuation no longer recovers (recorded TTR {row['RecoveryEpochs']} epochs)")

if fresh["Precision"] < 0.9:
    failures.append(f"overall precision {fresh['Precision']:.3f} below the 0.9 floor")
if fresh["Recall"] < 1.0:
    failures.append(f"overall recall {fresh['Recall']:.3f} below the 1.0 floor")

print(f"scenariomatrix: {len(base['Scenarios'])} scenarios checked, "
      f"precision {fresh['Precision']:.3f} recall {fresh['Recall']:.3f} "
      f"mean TTD {fresh['MeanTTDRounds']:.1f} rounds, "
      f"mean TTR {fresh.get('MeanRecoveryEpochs', 0):.1f} epochs")
if failures:
    print(f"\nscenariomatrix: {len(failures)} regression(s) vs ACCURACY_baseline.json:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("scenariomatrix: no regression vs ACCURACY_baseline.json")
PYEOF

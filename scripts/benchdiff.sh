#!/usr/bin/env bash
# benchdiff.sh — compare a fresh benchmark run against BENCH_baseline.json.
#
# Usage: scripts/benchdiff.sh [-t pct] [-b benchtime] [bench_regex]
#
#   -t pct        allowed ns/op regression over the recorded baseline, in
#                 percent (default 200: fail only when a benchmark runs at
#                 more than 3x its recorded time — CI containers are noisy
#                 and share cores, so this is a smoke gate against
#                 order-of-magnitude regressions, not a perf lab)
#   -b benchtime  go test -benchtime (default 2000x — enough iterations to
#                 amortise cold starts like gob's type descriptors while
#                 staying a few seconds of CI time)
#   bench_regex   which benchmarks to run (default: the monitoring-plane and
#                 request-path set; the sub-10ns aspect fast-path benches are
#                 excluded because a fixed-iteration run of a nanosecond op
#                 measures timer overhead, not the op)
#
# For each benchmark in the fresh run that has an entry in
# BENCH_baseline.json, the script compares ns/op against the *most recent*
# recorded figure for that benchmark (the last sub-entry carrying ns_op —
# "after", "with_cluster_tier", ... in recording order) and fails with a
# per-benchmark report when the regression threshold is exceeded.
# Benchmarks without a baseline entry are reported as informational.
#
# allocs/op is gated separately and absolutely: the run uses -benchmem and
# ANY increase over the recorded allocs_op fails. Allocation counts are
# deterministic (no timing noise), so unlike ns/op there is no tolerance —
# this is what locks the zero-alloc request and monitoring paths in CI.
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD_PCT=200
BENCHTIME=2000x
while getopts "t:b:" opt; do
  case "$opt" in
    t) THRESHOLD_PCT="$OPTARG" ;;
    b) BENCHTIME="$OPTARG" ;;
    *) echo "usage: $0 [-t pct] [-b benchtime] [bench_regex]" >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))
# BenchmarkAggregatorIngest is not in the default regex: go test splits
# -bench patterns on every slash, so a sub-benchmark filter cannot ride
# one top-level alternation. The aggregation-plane set runs in its own
# blocks below with per-size iteration counts.
REGEX="${1:-BenchmarkMonitorObserve|BenchmarkWirePublish|BenchmarkWireDecode|BenchmarkForwarderObserve|BenchmarkRequestMonitoredParallel|BenchmarkRequestMonitored|BenchmarkRequestUnmonitored}"

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT
echo "running: go test -run '^$' -bench \"$REGEX\" -benchtime $BENCHTIME -benchmem ./..." >&2
go test -run '^$' -bench "$REGEX" -benchtime "$BENCHTIME" -benchmem ./... 2>/dev/null | tee "$OUT" >&2

# The load tier is gated with its own iteration counts: the timing-wheel
# ops are sub-microsecond (2000 iterations would measure loop overhead),
# and one DriverSessions100k iteration is a full 100k-session run, so
# 2000 of them would take minutes. Only run when no custom regex was
# given — a targeted invocation should run exactly what it asked for.
if [[ -z "${1:-}" ]]; then
  # Aggregation plane, small clusters: one epoch is a few hundred µs, so
  # 300 iterations amortise pool warm-up without dragging CI.
  echo "running: go test -run '^$' -bench 'BenchmarkAggregatorIngest/nodes=(1|3)$' -benchtime 300x -benchmem ./internal/cluster/" >&2
  go test -run '^$' -bench 'BenchmarkAggregatorIngest/nodes=(1|3)$' -benchtime 300x -benchmem ./internal/cluster/ 2>/dev/null | tee -a "$OUT" >&2
  # Fleet scale: one nodes=128 epoch is ~19 ms and one parallel round
  # fans in from dozens of goroutines, so these run at their own low
  # iteration count — 2000x of nodes=128 would be most of a minute of
  # CI time for no extra signal.
  echo "running: go test -run '^$' -bench 'BenchmarkAggregatorIngest/nodes=(32|128)$|BenchmarkAggregatorParallelIngest' -benchtime 50x -benchmem ./internal/cluster/" >&2
  go test -run '^$' -bench 'BenchmarkAggregatorIngest/nodes=(32|128)$|BenchmarkAggregatorParallelIngest' -benchtime 50x -benchmem ./internal/cluster/ 2>/dev/null | tee -a "$OUT" >&2
  echo "running: go test -run '^$' -bench 'BenchmarkEngineSchedule|BenchmarkEngineCancel' -benchtime 200000x -benchmem ./internal/sim/" >&2
  go test -run '^$' -bench 'BenchmarkEngineSchedule|BenchmarkEngineCancel' -benchtime 200000x -benchmem ./internal/sim/ 2>/dev/null | tee -a "$OUT" >&2
  echo "running: go test -run '^$' -bench BenchmarkDriverSessions100k -benchtime 5x -benchmem ./internal/eb/" >&2
  go test -run '^$' -bench 'BenchmarkDriverSessions100k' -benchtime 5x -benchmem ./internal/eb/ 2>/dev/null | tee -a "$OUT" >&2
fi

python3 - "$OUT" "$THRESHOLD_PCT" <<'PYEOF'
import json, re, sys

out_path, threshold = sys.argv[1], float(sys.argv[2])
base = json.load(open("BENCH_baseline.json"))["benchmarks"]

# Most recent recorded figures per benchmark: the last sub-entry that has
# an ns_op (allocs_op rides the same entry when present).
recorded = {}
for name, entries in base.items():
    for sub in entries.values():
        if isinstance(sub, dict) and "ns_op" in sub:
            recorded[name] = (float(sub["ns_op"]), sub.get("allocs_op"))

line_re = re.compile(
    r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op"
    r"(?:.*?\s(\d+) allocs/op)?")
failures, alloc_failures, checked, info = [], [], 0, 0
for line in open(out_path):
    m = line_re.match(line.strip())
    if not m:
        continue
    name, ns = m.group(1), float(m.group(2))
    allocs = int(m.group(3)) if m.group(3) is not None else None
    if name not in recorded:
        info += 1
        print(f"  (no baseline) {name}: {ns:.0f} ns/op")
        continue
    checked += 1
    baseline, base_allocs = recorded[name]
    delta = (ns / baseline - 1.0) * 100.0
    status = "ok"
    if delta > threshold:
        status = "REGRESSION"
        failures.append((name, baseline, ns, delta))
    alloc_note = ""
    if base_allocs is not None and allocs is not None:
        alloc_note = f", {allocs} vs {base_allocs} allocs/op"
        if allocs > base_allocs:
            status = "ALLOC-REGRESSION"
            alloc_failures.append((name, base_allocs, allocs))
    print(f"  [{status}] {name}: {ns:.0f} ns/op vs {baseline:.0f} recorded ({delta:+.1f}%{alloc_note})")

if checked == 0:
    print("benchdiff: no benchmark in the run matches a baseline entry", file=sys.stderr)
    sys.exit(2)
failed = False
if failures:
    failed = True
    print(f"\nbenchdiff: {len(failures)} benchmark(s) regressed beyond {threshold:.0f}%:", file=sys.stderr)
    for name, baseline, ns, delta in failures:
        print(f"  {name}: {ns:.0f} ns/op vs {baseline:.0f} ({delta:+.1f}%)", file=sys.stderr)
if alloc_failures:
    failed = True
    print(f"\nbenchdiff: {len(alloc_failures)} benchmark(s) allocate more than recorded (any increase fails):", file=sys.stderr)
    for name, base_allocs, allocs in alloc_failures:
        print(f"  {name}: {allocs} allocs/op vs {base_allocs} recorded", file=sys.stderr)
if failed:
    sys.exit(1)
print(f"benchdiff: {checked} benchmark(s) within {threshold:.0f}% of BENCH_baseline.json and at-or-under recorded allocs/op")
PYEOF

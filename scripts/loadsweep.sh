#!/usr/bin/env bash
# loadsweep.sh — sweep the load tier across session populations, shard
# counts and arrival modes (the bm.py-style benchmark matrix), printing
# one line per cell: wall time, completed interactions, peak WIPS and
# the completion checksum.
#
# Usage: scripts/loadsweep.sh [-d duration] [-s "sessions..."]
#                             [-n "shards..."] [-a "modes..."] [-j file]
#
#   -d duration   virtual time per cell (default 2m)
#   -s list       session populations; doubles as the open-loop arrival
#                 rate in sessions/sec (default "10000 100000 1000000")
#   -n list       shard counts (default "1 2 4")
#   -a list       arrival modes, closed and/or open (default "closed")
#   -j file       also append one JSON object per cell to file
#
# Two invariants to eyeball in the output:
#   - within a (mode, sessions) row, completed/checksum are identical for
#     every shard count (the determinism contract: shards=1 vs N
#     byte-identical) — the script exits non-zero if they diverge;
#   - wall time grows sublinearly with sessions (the per-event cost is
#     O(1): timing-wheel scheduling, SoA table, zero steady-state allocs).
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION=2m
SESSIONS="10000 100000 1000000"
SHARDS="1 2 4"
MODES="closed"
JSON=""
while getopts "d:s:n:a:j:" opt; do
  case "$opt" in
    d) DURATION="$OPTARG" ;;
    s) SESSIONS="$OPTARG" ;;
    n) SHARDS="$OPTARG" ;;
    a) MODES="$OPTARG" ;;
    j) JSON="$OPTARG" ;;
    *) echo "usage: $0 [-d duration] [-s \"sessions...\"] [-n \"shards...\"] [-a \"modes...\"] [-j file]" >&2; exit 2 ;;
  esac
done

BIN="$(mktemp -d)/tpcwsim"
trap 'rm -rf "$(dirname "$BIN")"' EXIT
go build -o "$BIN" ./cmd/tpcwsim

printf "%7s %10s %7s %10s %12s %10s %s\n" MODE SESSIONS SHARDS WALL COMPLETED PEAK_WIPS CHECKSUM
for mode in $MODES; do
  for sess in $SESSIONS; do
    row_sum=""
    for sh in $SHARDS; do
      case "$mode" in
        closed) args=(-sessions "$sess") ;;
        open)   args=(-arrival open -rate "$sess") ;;
        *) echo "loadsweep: unknown arrival mode $mode (want closed or open)" >&2; exit 2 ;;
      esac
      start=$(date +%s.%N)
      out="$("$BIN" -load "${args[@]}" -shards "$sh" -duration "$DURATION" 2>/dev/null)"
      wall=$(echo "$(date +%s.%N) $start" | awk '{printf "%.2f", $1-$2}')
      completed=$(echo "$out" | sed -n 's/^completed \([0-9]*\) .*/\1/p')
      peak=$(echo "$out" | sed -n 's/^peak WIPS \([0-9]*\),.*/\1/p')
      sum=$(echo "$out" | sed -n 's/.*completion checksum \(0x[0-9a-f]*\)$/\1/p')
      printf "%7s %10s %7s %9ss %12s %10s %s\n" "$mode" "$sess" "$sh" "$wall" "$completed" "$peak" "$sum"
      if [[ -n "$JSON" ]]; then
        printf '{"mode":"%s","sessions":%s,"shards":%s,"duration":"%s","wall_sec":%s,"completed":%s,"peak_wips":%s,"checksum":"%s"}\n' \
          "$mode" "$sess" "$sh" "$DURATION" "$wall" "$completed" "$peak" "$sum" >> "$JSON"
      fi
      if [[ -n "$row_sum" && "$sum" != "$row_sum" ]]; then
        echo "loadsweep: DETERMINISM VIOLATION: mode=$mode sessions=$sess checksum differs across shard counts" >&2
        exit 1
      fi
      row_sum="$sum"
    done
  done
done
echo "loadsweep: checksums identical across shard counts for every cell"

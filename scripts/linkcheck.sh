#!/usr/bin/env bash
# linkcheck.sh — fail on broken relative links in README.md and docs/.
#
# Checks two things:
#   1. every relative markdown link target ([text](target)) resolves to
#      an existing file, relative to the linking document;
#   2. every `path/to/file.go:line`-style anchor in backticks (the
#      paper-mapping tables) names an existing file.
# External links (http/https/mailto) and pure #fragments are skipped.
set -u
cd "$(dirname "$0")/.."

fail=0

check_file() {
  local doc="$1"
  local dir
  dir=$(dirname "$doc")

  # 1. Markdown link targets.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    local path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN LINK: $doc -> $target"
      fail=1
    fi
  done < <(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//')

  # 2. Backticked file anchors (`internal/foo/bar.go:123`, `cmd/x/main.go`).
  while IFS= read -r anchor; do
    local path="${anchor%%:*}"
    if [ ! -e "$path" ]; then
      echo "BROKEN ANCHOR: $doc -> $anchor"
      fail=1
    fi
  done < <(grep -o '`[A-Za-z0-9_./-]*\.\(go\|md\|json\|yml\)\(:[0-9]*\)\?`' "$doc" \
           | tr -d '`' | grep '/' )
}

for doc in README.md docs/*.md; do
  [ -e "$doc" ] || continue
  check_file "$doc"
done

if [ "$fail" -ne 0 ]; then
  echo "linkcheck: FAILED"
  exit 1
fi
echo "linkcheck: OK"

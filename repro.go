// Package repro is a Go reproduction of "J2EE Instrumentation for software
// aging root cause application component determination with AspectJ"
// (Alonso, Torres, Berral, Gavaldà; IPDPS Workshops 2010).
//
// It provides the paper's monitoring framework — aspect-oriented
// interception of component executions, JMX-style monitoring agents and a
// manager agent that builds a resource-consumption × usage-frequency map
// to determine which application component is the root cause of software
// aging — together with the complete evaluation substrate: a TPC-W
// bookstore over an in-memory database, a servlet container with
// registration-time weaving, emulated browsers, aging-fault injectors and
// a discrete-event engine that replays the paper's one-hour experiments in
// deterministic virtual time.
//
// # Quick start
//
//	weaver := repro.NewWeaver(nil)
//	fw, err := repro.NewFramework(repro.FrameworkOptions{Weaver: weaver})
//	...
//	fw.InstrumentComponent("shop.cart", cart)
//	handle := weaver.Weave("shop.cart", "Service", invoke)
//	... drive traffic through handle ...
//	fmt.Println(fw.Manager().Map(repro.ResourceMemory))
//
// The full evaluation scenarios are under internal/experiment and are
// runnable through cmd/experiments; the examples/ directory shows the API
// on progressively larger setups.
package repro

import (
	"net/http"

	"repro/internal/aspect"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/eb"
	"repro/internal/experiment"
	"repro/internal/faultinject"
	"repro/internal/jmx"
	"repro/internal/jmxhttp"
	"repro/internal/jvmheap"
	"repro/internal/objsize"
	"repro/internal/rootcause"
	"repro/internal/servlet"
	"repro/internal/sim"
	"repro/internal/sqldb"
	"repro/internal/tpcw"
)

// Core framework types (the paper's contribution).
type (
	// Framework wires the Aspect Component, the monitoring agents and
	// the manager agent together.
	Framework = core.Framework
	// FrameworkOptions configures NewFramework.
	FrameworkOptions = core.Options
	// Manager is the JMX Manager Agent.
	Manager = core.Manager
)

// Aspect-oriented programming substrate.
type (
	// Weaver owns registered aspects and wraps component invocations.
	Weaver = aspect.Weaver
	// Aspect bundles a pointcut with advice.
	Aspect = aspect.Aspect
	// Pointcut selects join points.
	Pointcut = aspect.Pointcut
	// JoinPoint describes one intercepted execution.
	JoinPoint = aspect.JoinPoint
	// Proceed continues an around-advised execution.
	Proceed = aspect.Proceed
)

// JMX-style management plane.
type (
	// MBeanServer registers and routes MBeans.
	MBeanServer = jmx.Server
	// MBean is a management bean assembled from functions.
	MBean = jmx.Bean
	// ObjectName identifies an MBean.
	ObjectName = jmx.ObjectName
	// Notification is an event on the MBeanServer.
	Notification = jmx.Notification
	// JMXClient talks to a remote MBeanServer over HTTP.
	JMXClient = jmxhttp.Client
)

// Online aging detection (internal/detect wired through the manager).
type (
	// DetectConfig tunes the streaming detectors (windows, alpha,
	// shift-guard thresholds).
	DetectConfig = detect.Config
	// DetectReport is one resource's published detection state.
	DetectReport = detect.Report
	// DetectVerdict is one component's verdict in a report.
	DetectVerdict = detect.Verdict
	// DetectorBank runs one streaming monitor per resource off the
	// manager's sampling rounds.
	DetectorBank = core.DetectorBank
	// LiveStrategy ranks components on streaming detector verdicts.
	LiveStrategy = rootcause.Live
)

// Root-cause determination.
type (
	// Ranking is a strategy verdict, most suspicious component first.
	Ranking = rootcause.Ranking
	// ComponentData is the evidence strategies rank on.
	ComponentData = rootcause.ComponentData
	// PaperMapStrategy is the paper's consumption × usage mechanism.
	PaperMapStrategy = rootcause.PaperMap
	// TrendStrategy is the Mann-Kendall/Sen growth-rate ranking.
	TrendStrategy = rootcause.Trend
	// PinpointBaseline is the failure-correlation baseline.
	PinpointBaseline = rootcause.Pinpoint
	// TraceCollector reconstructs per-request component paths.
	TraceCollector = rootcause.TraceCollector
)

// Evaluation substrate.
type (
	// Stack is a fully assembled system under test (TPC-W, container,
	// EBs, framework).
	Stack = experiment.Stack
	// StackConfig sizes a Stack.
	StackConfig = experiment.StackConfig
	// ExperimentConfig parameterises the paper-figure runners.
	ExperimentConfig = experiment.Config
	// ExperimentResult is one runner's outcome.
	ExperimentResult = experiment.Result
	// MemoryLeak is the paper's [0,N] leak injector.
	MemoryLeak = faultinject.MemoryLeak
	// CPUHog models computational aging.
	CPUHog = faultinject.CPUHog
	// ThreadLeak models unterminated threads.
	ThreadLeak = faultinject.ThreadLeak
	// LeakStore is the retention point injectable components embed.
	LeakStore = faultinject.LeakStore
	// Engine is the deterministic discrete-event engine.
	Engine = sim.Engine
	// Clock is the time source abstraction.
	Clock = sim.Clock
	// Heap is the simulated JVM heap.
	Heap = jvmheap.Heap
	// Container is the servlet container.
	Container = servlet.Container
	// Servlet is the component contract.
	Servlet = servlet.Servlet
	// TPCWApp is the TPC-W bookstore application.
	TPCWApp = tpcw.App
	// DB is the in-memory relational engine.
	DB = sqldb.DB
	// EBDriver runs phased emulated-browser load.
	EBDriver = eb.Driver
	// Phase is one segment of a load schedule.
	Phase = eb.Phase
)

// Fig3Schedule returns the paper's dynamic workload schedule (2 min at 50
// EBs, 30 min at 100, 30 min at 200).
func Fig3Schedule() []Phase { return eb.Fig3Schedule() }

// Resources the manager builds maps for.
const (
	ResourceMemory  = core.ResourceMemory
	ResourceCPU     = core.ResourceCPU
	ResourceThreads = core.ResourceThreads
)

// NewWeaver creates an aspect weaver over clock (wall clock when nil).
func NewWeaver(clock Clock) *Weaver { return aspect.NewWeaver(clock) }

// NewFramework assembles the monitoring framework.
func NewFramework(opts FrameworkOptions) (*Framework, error) { return core.New(opts) }

// NewEngine creates a virtual-time discrete-event engine.
func NewEngine() *Engine { return sim.NewEngine() }

// NewStack assembles a complete evaluation system.
func NewStack(cfg StackConfig) (*Stack, error) { return experiment.NewStack(cfg) }

// MustPointcut compiles a pointcut expression, panicking on error.
func MustPointcut(src string) *Pointcut { return aspect.MustPointcut(src) }

// ParsePointcut compiles a pointcut expression.
func ParsePointcut(src string) (*Pointcut, error) { return aspect.ParsePointcut(src) }

// NewJMXHandler adapts an MBeanServer to HTTP (the Remote Management
// Level); mount it on any mux.
func NewJMXHandler(server *MBeanServer) http.Handler { return jmxhttp.NewHandler(server) }

// NewJMXClient creates a client for a remote MBeanServer adapter.
func NewJMXClient(base string, httpClient *http.Client) *JMXClient {
	return jmxhttp.NewClient(base, httpClient)
}

// RunAllExperiments regenerates every table and figure at the given
// configuration (TimeScale 1.0 reproduces the paper's full durations).
func RunAllExperiments(cfg ExperimentConfig) []ExperimentResult { return experiment.All(cfg) }

// ObjectSizeOf measures the retained size of v with the paper's one-level
// policy.
func ObjectSizeOf(v any) int64 { return objsize.New(objsize.OneLevel).Of(v) }

package repro

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/servlet"
	"repro/internal/tpcw"
)

// TestRequestPathSteadyStateAllocs is the request-path half of the
// zero-garbage contract (the monitoring plane's half lives in
// internal/detect): once the pools, session, DAO scratch and response
// buffers are warm, a fully monitored home-page request through the
// pooled borrow/release lifecycle must allocate (almost) nothing. The
// tolerance of 1 covers the runtime clearing sync.Pools across GC cycles
// mid-measurement; the steady-state path itself is allocation-free, which
// is what keeps GC pauses from masquerading as the latency and
// consumption trends the detectors hunt.
func TestRequestPathSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name      string
		monitored bool
	}{
		{"monitored", true},
		{"unmonitored", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			container := benchStack(t, tc.monitored)
			step := func() {
				req := servlet.AcquireRequest()
				req.Interaction = tpcw.CompHome
				req.SessionID = "soak"
				req.SetInt64Param("I_ID", 5)
				resp, _ := container.Invoke(req)
				if !resp.OK() {
					t.Fatalf("request failed: %v", resp.Err)
				}
				if len(resp.ItemIDs()) == 0 {
					t.Fatal("home page published no item links")
				}
				servlet.ReleaseRequest(req)
				servlet.ReleaseResponse(resp)
			}
			// Warm up: create the session, grow the DAO and response
			// scratch to their working set, populate the weaver's chain
			// caches.
			for i := 0; i < 200; i++ {
				step()
			}
			if allocs := testing.AllocsPerRun(2000, step); allocs > 1 {
				t.Fatalf("steady-state request allocates %.2f objects", allocs)
			}
		})
	}
}

// TestRequestPoolNoAliasingUnderLoad hammers the borrow/release lifecycle
// from many goroutines and checks every response against its own request:
// if recycled requests or responses ever leaked state across concurrent
// borrows (a pool double-hand-out, a response buffer shared between two
// in-flight requests), some goroutine would observe another's item id.
// Run with -race, this also pins the pools' memory-model correctness.
func TestRequestPoolNoAliasingUnderLoad(t *testing.T) {
	container := benchStack(t, true)
	const goroutines = 8
	iters := 2000
	if testing.Short() {
		iters = 200
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Distinct ids per goroutine per iteration: any
				// cross-request aliasing shows up as a mismatched echo.
				id := int64(1 + (g*31+i)%400)
				req := servlet.AcquireRequest()
				req.Interaction = tpcw.CompProductDetail
				req.SetInt64Param("I_ID", id)
				resp, _ := container.Invoke(req)
				if !resp.OK() {
					errs <- resp.Err
					return
				}
				if got := resp.Get("item").(int64); got != id {
					t.Errorf("goroutine %d: requested item %d, response echoes %d — cross-request aliasing", g, id, got)
					return
				}
				if n := len(resp.ItemIDs()); n != 2 {
					t.Errorf("goroutine %d: product page published %d related ids, want 2", g, n)
					return
				}
				servlet.ReleaseRequest(req)
				servlet.ReleaseResponse(resp)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("request failed under concurrent load: %v", err)
	}
	runtime.KeepAlive(container)
}

package repro

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/tpcw"
)

// TestEndToEndFrontend drives the complete paper pipeline through the
// remote management plane, exactly as an operator would: run the monitored
// TPC-W simulation with a leak, then interrogate and control the manager
// agent over HTTP with the JMX client (what cmd/agingmon does).
func TestEndToEndFrontend(t *testing.T) {
	stack, err := NewStack(StackConfig{
		Seed:      21,
		Monitored: true,
		Scale:     tpcw.Scale{Items: 200, Customers: 100, Seed: 22},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	if _, err := stack.InjectLeak(tpcw.CompHome, 100<<10, 20, 5); err != nil {
		t.Fatal(err)
	}
	stack.Driver.Run([]Phase{{Duration: 10 * time.Minute, EBs: 20}})

	ts := httptest.NewServer(NewJMXHandler(stack.Framework.Server()))
	defer ts.Close()
	client := NewJMXClient(ts.URL, nil)

	// Discover the management plane.
	agents, err := client.Names("monitoring:*")
	if err != nil || len(agents) != 7 {
		t.Fatalf("agents over HTTP = %v, %v", agents, err)
	}
	proxies, err := client.Names("aging:type=ACProxy,*")
	if err != nil || len(proxies) != 14 {
		t.Fatalf("AC proxies over HTTP = %d, %v", len(proxies), err)
	}

	// Ask the manager who is aging the application.
	suspectsAny, err := client.Invoke("aging:type=Manager", "Suspects", "memory")
	if err != nil {
		t.Fatal(err)
	}
	suspects := suspectsAny.([]any)
	if len(suspects) == 0 || suspects[0].(string) != tpcw.CompHome {
		t.Fatalf("remote suspects = %v", suspects)
	}

	// Inspect the suspect's AC proxy.
	size, err := client.Get("aging:type=ACProxy,component=tpcw.home", "ObjectSizeBytes")
	if err != nil || size.(float64) < float64(100<<10) {
		t.Fatalf("proxy size = %v, %v", size, err)
	}
	inv, err := client.Get("aging:type=ACProxy,component=tpcw.home", "Invocations")
	if err != nil || inv.(float64) <= 0 {
		t.Fatalf("proxy invocations = %v, %v", inv, err)
	}

	// Deactivate and reactivate the AC remotely.
	if err := client.Set("aging:type=ACProxy,component=tpcw.home", "Enabled", false); err != nil {
		t.Fatal(err)
	}
	enabled, _ := client.Get("aging:type=ACProxy,component=tpcw.home", "Enabled")
	if enabled.(bool) {
		t.Fatal("remote deactivation had no effect")
	}
	if _, err := client.Invoke("aging:type=Manager", "ActivateAC", "tpcw.home"); err != nil {
		t.Fatal(err)
	}

	// Micro-reboot the suspect remotely and verify the reclaim.
	freed, err := client.Invoke("aging:type=Manager", "MicroReboot", "tpcw.home")
	if err != nil || freed.(float64) < float64(100<<10) {
		t.Fatalf("remote micro-reboot freed %v, %v", freed, err)
	}
	sizeAfter, _ := client.Get("aging:type=ACProxy,component=tpcw.home", "ObjectSizeBytes")
	if sizeAfter.(float64) >= size.(float64) {
		t.Fatalf("size did not shrink after reboot: %v -> %v", size, sizeAfter)
	}

	// The time-to-exhaustion estimate is queryable.
	if _, err := client.Invoke("aging:type=Manager", "TimeToExhaustion"); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicExperiments guards the reproducibility property: two
// identical runs of a leak scenario produce identical manager evidence.
func TestDeterministicExperiments(t *testing.T) {
	run := func() (int64, float64) {
		stack, err := NewStack(StackConfig{
			Seed:      77,
			Monitored: true,
			Scale:     tpcw.Scale{Items: 150, Customers: 80, Seed: 78},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer stack.Close()
		if _, err := stack.InjectLeak(tpcw.CompHome, 50<<10, 30, 9); err != nil {
			t.Fatal(err)
		}
		stack.Driver.Run([]Phase{{Duration: 8 * time.Minute, EBs: 15}})
		data, err := stack.Framework.Manager().Data(ResourceMemory)
		if err != nil {
			t.Fatal(err)
		}
		var consumption float64
		for _, d := range data {
			if d.Name == tpcw.CompHome {
				consumption = d.Consumption
			}
		}
		return stack.Driver.Completed(), consumption
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Fatalf("runs diverged: completed %d vs %d, consumption %v vs %v", c1, c2, m1, m2)
	}
}

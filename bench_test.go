package repro

import (
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/detect"
	"repro/internal/experiment"
	"repro/internal/jmx"
	"repro/internal/jvmheap"
	"repro/internal/monitor"
	"repro/internal/objsize"
	"repro/internal/servlet"
	"repro/internal/sim"
	"repro/internal/sqldb"
	"repro/internal/tpcw"
)

// benchCfg shrinks the paper's one-hour scenarios so every figure
// regenerates in a few seconds per iteration; cmd/experiments runs them at
// full scale. The scale floor is set by F7, whose C-overtakes-A crossover
// needs enough virtual time for the 1MB leak to accumulate. The seed is
// fixed, so each bench is also a regression check on its figure's verdict.
var benchCfg = experiment.Config{TimeScale: 0.35, Seed: 42, EBs: 50, Items: 500, Customers: 300}

func benchExperiment(b *testing.B, fn func(experiment.Config) experiment.Result) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := fn(benchCfg)
		if !res.Pass {
			b.Fatalf("experiment did not reproduce:\n%s", res)
		}
	}
}

// BenchmarkTableI_Testbed regenerates Table I (testbed description).
func BenchmarkTableI_Testbed(b *testing.B) { benchExperiment(b, experiment.TableI) }

// BenchmarkFig2_TheoreticMap regenerates Fig. 2 (theoretic map).
func BenchmarkFig2_TheoreticMap(b *testing.B) { benchExperiment(b, experiment.Fig2) }

// BenchmarkFig3_OverheadThroughput regenerates Fig. 3 (throughput with and
// without monitoring under the 50→100→200 EB schedule).
func BenchmarkFig3_OverheadThroughput(b *testing.B) { benchExperiment(b, experiment.Fig3) }

// BenchmarkFig4_SingleLeak regenerates Fig. 4 (100KB leak in component A).
func BenchmarkFig4_SingleLeak(b *testing.B) { benchExperiment(b, experiment.Fig4) }

// BenchmarkFig5_FourLeaks regenerates Fig. 5 (equal leaks in A-D).
func BenchmarkFig5_FourLeaks(b *testing.B) { benchExperiment(b, experiment.Fig5) }

// BenchmarkFig6_ComposedMap regenerates Fig. 6 (manager-composed map).
func BenchmarkFig6_ComposedMap(b *testing.B) { benchExperiment(b, experiment.Fig6) }

// BenchmarkFig7_MixedSizes regenerates Fig. 7 (mixed injection sizes).
func BenchmarkFig7_MixedSizes(b *testing.B) { benchExperiment(b, experiment.Fig7) }

// BenchmarkExtCPUThreadLeaks regenerates extension E8 (CPU hog + thread
// leak, the paper's future work).
func BenchmarkExtCPUThreadLeaks(b *testing.B) { benchExperiment(b, experiment.E8CPUThreadLeaks) }

// BenchmarkExtPinpointCoupled regenerates extension E9 (coupled
// components: Pinpoint baseline vs resource map).
func BenchmarkExtPinpointCoupled(b *testing.B) { benchExperiment(b, experiment.E9PinpointCoupled) }

// BenchmarkExtTimeToFailure regenerates extension E10 (time-to-exhaustion
// estimate plus micro-reboot recovery).
func BenchmarkExtTimeToFailure(b *testing.B) { benchExperiment(b, experiment.E10TimeToFailure) }

// BenchmarkExtStrategyComparison regenerates extension E11 (strategy
// localisation accuracy vs the black-box floor).
func BenchmarkExtStrategyComparison(b *testing.B) {
	benchExperiment(b, experiment.E11StrategyComparison)
}

// BenchmarkAblationMonitoringLevels regenerates ablation A1 (overhead vs
// monitoring coverage).
func BenchmarkAblationMonitoringLevels(b *testing.B) {
	benchExperiment(b, experiment.A1MonitoringLevels)
}

// BenchmarkAblationSizingPolicy regenerates ablation A2 (object sizing
// policies).
func BenchmarkAblationSizingPolicy(b *testing.B) { benchExperiment(b, experiment.A2SizingPolicies) }

// BenchmarkAblationMixSensitivity regenerates ablation A3 (detection
// across workload mixes).
func BenchmarkAblationMixSensitivity(b *testing.B) { benchExperiment(b, experiment.A3MixSensitivity) }

// --- Real wall-clock microbenchmarks -------------------------------------
//
// The virtual-time experiments model monitoring cost; the benchmarks below
// measure the reproduction's *actual* interception overhead on this
// machine, which is the honest counterpart of the paper's 5% claim.

func rawComponent(args ...any) (any, error) { return 42, nil }

// BenchmarkAspectUnwoven measures the bare component invocation.
func BenchmarkAspectUnwoven(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rawComponent(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAspectWovenNoMatch measures a woven handle whose join point no
// aspect matches (the cost of having the weaver in the path at all).
func BenchmarkAspectWovenNoMatch(b *testing.B) {
	w := aspect.NewWeaver(nil)
	fn := w.Weave("bench.comp", "Service", rawComponent)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAspectAdvised measures a woven handle with one before+after
// aspect — the AC's steady-state interception cost.
func BenchmarkAspectAdvised(b *testing.B) {
	w := aspect.NewWeaver(nil)
	count := 0
	if err := w.Register(&aspect.Aspect{
		Name:     "bench.ac",
		Pointcut: aspect.MustPointcut("within(bench.*)"),
		Before:   func(*aspect.JoinPoint) { count++ },
		After:    func(*aspect.JoinPoint) { count++ },
	}); err != nil {
		b.Fatal(err)
	}
	fn := w.Weave("bench.comp", "Service", rawComponent)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAspectAdvisedDisabled measures the same handle with the aspect
// switched off at runtime — the cost of deactivated monitoring.
func BenchmarkAspectAdvisedDisabled(b *testing.B) {
	w := aspect.NewWeaver(nil)
	a := &aspect.Aspect{
		Name:     "bench.ac",
		Pointcut: aspect.MustPointcut("within(bench.*)"),
		Before:   func(*aspect.JoinPoint) {},
	}
	if err := w.Register(a); err != nil {
		b.Fatal(err)
	}
	a.SetEnabled(false)
	fn := w.Weave("bench.comp", "Service", rawComponent)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStack assembles a direct-mode TPC-W container for real-request
// benchmarks and the request-path allocation soak tests.
func benchStack(b testing.TB, monitored bool) *servlet.Container {
	b.Helper()
	engine := sim.NewEngine()
	weaver := aspect.NewWeaver(engine.Clock())
	db := sqldb.NewDB()
	app, err := tpcw.NewApp(db, weaver, engine.Clock(), tpcw.Scale{Items: 500, Customers: 300, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	heap := jvmheap.New(1<<30, engine.Clock())
	container := servlet.NewContainer(engine, weaver, db, heap, servlet.Config{})
	if err := app.DeployAll(container); err != nil {
		b.Fatal(err)
	}
	if err := container.Start(); err != nil {
		b.Fatal(err)
	}
	if monitored {
		f, err := NewFramework(FrameworkOptions{Weaver: weaver, Clock: engine.Clock(), Heap: heap})
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range tpcw.Interactions {
			s, _ := app.Servlet(name)
			if err := f.InstrumentComponent(name, s); err != nil {
				b.Fatal(err)
			}
		}
		// The online detectors ride the sampling rounds, not the request
		// path; attaching them here keeps the monitored benchmarks honest
		// about the full production configuration.
		if _, err := f.AttachDetectors(detect.Config{}); err != nil {
			b.Fatal(err)
		}
	}
	return container
}

func benchRequests(b *testing.B, monitored bool) {
	container := benchStack(b, monitored)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := servlet.AcquireRequest()
		req.Interaction = tpcw.CompHome
		req.SessionID = "bench"
		req.SetInt64Param("I_ID", 5)
		resp, _ := container.Invoke(req)
		if !resp.OK() {
			b.Fatalf("request failed: %v", resp.Err)
		}
		servlet.ReleaseRequest(req)
		servlet.ReleaseResponse(resp)
	}
}

// BenchmarkRequestUnmonitored measures a real home-page request through
// the container with no monitoring attached.
func BenchmarkRequestUnmonitored(b *testing.B) { benchRequests(b, false) }

// BenchmarkRequestMonitored measures the same request with the full
// framework attached (AC + agents); compare ns/op against
// BenchmarkRequestUnmonitored for the real overhead ratio.
func BenchmarkRequestMonitored(b *testing.B) { benchRequests(b, true) }

// BenchmarkObjectSize measures the sizing agent policies on a component
// retaining a 1MB leak.
func BenchmarkObjectSize(b *testing.B) {
	type comp struct {
		LeakStore
		cache map[string][]byte
	}
	c := &comp{cache: map[string][]byte{"a": make([]byte, 4096)}}
	c.Retain(1 << 20)
	for _, policy := range []objsize.Policy{objsize.Shallow, objsize.OneLevel, objsize.Transitive} {
		sizer := objsize.New(policy)
		b.Run(policy.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sizer.Of(c)
			}
		})
	}
}

// BenchmarkMBeanServerInvoke measures the management-plane dispatch cost
// (the AC ↔ agent round trip of the paper's architecture).
func BenchmarkMBeanServerInvoke(b *testing.B) {
	server := jmx.NewServer(nil)
	agent := monitor.NewInvocationAgent()
	if err := server.Register(agent.ObjectName(), agent.Bean()); err != nil {
		b.Fatal(err)
	}
	agent.Record("c", time.Millisecond, false)
	name := agent.ObjectName()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.Invoke(name, "CountOf", "c"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPointcutMatch measures pointcut evaluation (uncached path).
func BenchmarkPointcutMatch(b *testing.B) {
	pc := aspect.MustPointcut("within(tpcw.*) && !execution(*.Init)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !pc.Matches("tpcw.home", "Service") {
			b.Fatal("unexpected non-match")
		}
	}
}

// BenchmarkLeakInjection measures the injector's per-request cost.
func BenchmarkLeakInjection(b *testing.B) {
	type comp struct{ LeakStore }
	c := &comp{}
	w := aspect.NewWeaver(nil)
	leak := &MemoryLeak{Component: "bench.comp", Target: c, Size: 1, N: 1 << 20, Seed: 1}
	if err := w.Register(leak.Aspect()); err != nil {
		b.Fatal(err)
	}
	fn := w.Weave("bench.comp", "Service", rawComponent)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(); err != nil {
			b.Fatal(err)
		}
	}
}

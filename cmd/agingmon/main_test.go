package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/detect"
	"repro/internal/eb"
	"repro/internal/experiment"
	"repro/internal/jmxhttp"
	"repro/internal/rejuv"
	"repro/internal/tpcw"
)

// newManagerPlane assembles a short monitored, detector-attached
// single-node run and serves its management plane over an in-process
// HTTP server — the environment every manager-facing command talks to.
func newManagerPlane(t *testing.T) *jmxhttp.Client {
	t.Helper()
	stack, err := experiment.NewStack(experiment.StackConfig{
		Seed:         7,
		Scale:        tpcw.Scale{Items: 200, Customers: 144, Seed: 8},
		Monitored:    true,
		Detect:       true,
		DetectConfig: detect.Config{Window: 20, MinSamples: 4, Consecutive: 2},
		Mix:          eb.Shopping,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stack.Close)
	if _, err := stack.InjectLeak(tpcw.CompHome, 100<<10, 20, 7); err != nil {
		t.Fatal(err)
	}
	// The buffer must exist before the run: notifications are delivered
	// synchronously to listeners, not retained.
	buf := jmxhttp.NewNotificationBuffer(stack.Framework.Server(), 0)
	t.Cleanup(buf.Close)
	stack.Driver.Run([]eb.Phase{{Duration: 10 * time.Minute, EBs: 20}})
	srv := httptest.NewServer(jmxhttp.NewHandlerWithNotifications(stack.Framework.Server(), buf))
	t.Cleanup(srv.Close)
	return jmxhttp.NewClient(srv.URL, nil)
}

// newClusterPlane is newManagerPlane for a three-node cluster with a
// leak on node2, serving the aggregator's plane.
func newClusterPlane(t *testing.T) *jmxhttp.Client {
	t.Helper()
	cs, err := experiment.NewClusterStack(experiment.ClusterConfig{
		Nodes:  3,
		Seed:   7,
		Scale:  tpcw.Scale{Items: 200, Customers: 144, Seed: 8},
		Mix:    eb.Shopping,
		Detect: detect.Config{Window: 20, MinSamples: 4, Consecutive: 2},
		Policy: cluster.RoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cs.Close)
	if _, err := cs.InjectLeak("node2", tpcw.CompHome, 100<<10, 20, 7); err != nil {
		t.Fatal(err)
	}
	buf := jmxhttp.NewNotificationBuffer(cs.Server, 0)
	t.Cleanup(buf.Close)
	cs.Driver.Run([]eb.Phase{{Duration: 15 * time.Minute, EBs: 30}})
	if err := cs.Sync(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(jmxhttp.NewHandlerWithNotifications(cs.Server, buf))
	t.Cleanup(srv.Close)
	return jmxhttp.NewClient(srv.URL, nil)
}

// newRejuvPlane is newClusterPlane with the rejuvenation controller
// armed and a tuning tight enough that the leaking node2 completes at
// least one drain/reboot cycle within the run.
func newRejuvPlane(t *testing.T) *jmxhttp.Client {
	t.Helper()
	cs, err := experiment.NewClusterStack(experiment.ClusterConfig{
		Nodes:  3,
		Seed:   7,
		Scale:  tpcw.Scale{Items: 200, Customers: 144, Seed: 8},
		Mix:    eb.Shopping,
		Detect: detect.Config{Window: 20, MinSamples: 4, Consecutive: 2},
		Policy: cluster.RoundRobin,
		Rejuv: &rejuv.Config{
			HoldDownEpochs: 2, DrainEpochs: 2, RebootEpochs: 2,
			ProbationEpochs: 3, ProbationWeight: 1, HealthyWeight: 1,
			CooldownEpochs: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cs.Close)
	if _, err := cs.InjectLeak("node2", tpcw.CompHome, 100<<10, 20, 7); err != nil {
		t.Fatal(err)
	}
	cs.Driver.Run([]eb.Phase{{Duration: 15 * time.Minute, EBs: 30}})
	if err := cs.Sync(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(jmxhttp.NewHandler(cs.Server))
	t.Cleanup(srv.Close)
	return jmxhttp.NewClient(srv.URL, nil)
}

// run dispatches one command and returns its output.
func run(t *testing.T, client *jmxhttp.Client, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := dispatch(client, args, &out); err != nil {
		t.Fatalf("agingmon %s: %v", strings.Join(args, " "), err)
	}
	return out.String()
}

func TestManagerCommands(t *testing.T) {
	client := newManagerPlane(t)
	for _, tc := range []struct {
		args []string
		want []string
	}{
		{[]string{"names"}, []string{"aging:type=Manager", "monitoring:agent=ObjectSize"}},
		{[]string{"components"}, []string{tpcw.CompHome, tpcw.CompShoppingCart}},
		{[]string{"describe", managerName}, []string{"JMX Manager Agent", "MicroReboot", "Samples"}},
		{[]string{"get", managerName, "Samples"}, []string{"20"}},
		{[]string{"suspects"}, []string{" 1. " + tpcw.CompHome}},
		{[]string{"suspects", "memory"}, []string{" 1. " + tpcw.CompHome}},
		{[]string{"map", "memory"}, []string{"strategy=paper-map", tpcw.CompHome}},
		{[]string{"live", "memory"}, []string{"strategy=live", "alarm=true"}},
		{[]string{"verdicts", "memory"}, []string{"resource=memory", tpcw.CompHome, "alarm=true"}},
		{[]string{"tte"}, []string{"seconds"}},
		{[]string{"invoke", managerName, "Suspects", "memory"}, []string{tpcw.CompHome}},
		{[]string{"notifications"}, []string{"aging.alarm"}},
	} {
		out := run(t, client, tc.args...)
		for _, want := range tc.want {
			if !strings.Contains(out, want) {
				t.Fatalf("agingmon %s: output lacks %q:\n%s", strings.Join(tc.args, " "), want, out)
			}
		}
	}
}

func TestWatchCommandPollsAndStops(t *testing.T) {
	client := newManagerPlane(t)
	old, oldInt := *watchRounds, *watchInterval
	*watchRounds, *watchInterval = 2, time.Millisecond
	defer func() { *watchRounds, *watchInterval = old, oldInt }()

	out := run(t, client, "watch", "memory")
	if got := strings.Count(out, "resource=memory"); got != 2 {
		t.Fatalf("watch polled %d times, want 2:\n%s", got, out)
	}
	if !strings.Contains(out, "!! ") || !strings.Contains(out, "aging.alarm") {
		t.Fatalf("watch did not surface alarm notifications:\n%s", out)
	}
}

func TestActivateDeactivateAndReboot(t *testing.T) {
	client := newManagerPlane(t)
	run(t, client, "deactivate", tpcw.CompHome)
	if out := run(t, client, "get", managerName, "MonitoringEnabled"); !strings.Contains(out, "true") {
		t.Fatalf("whole-AC state should be untouched by per-component deactivate: %s", out)
	}
	run(t, client, "activate", tpcw.CompHome)
	out := run(t, client, "reboot", tpcw.CompHome)
	if !strings.Contains(out, "freed") {
		t.Fatalf("reboot output: %s", out)
	}
}

func TestClusterCommands(t *testing.T) {
	client := newClusterPlane(t)

	out := run(t, client, "nodes")
	for _, want := range []string{"node1", "node2", "node3", "active", "errors", "dropped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("nodes output lacks %q:\n%s", want, out)
		}
	}
	// The forwarder beans are on the plane, so the wire counters must be
	// joined as numbers, not the "-" placeholder.
	if strings.Contains(out, "-\n") || strings.Contains(out, " - ") {
		t.Fatalf("nodes output shows placeholder wire counters despite forwarder beans:\n%s", out)
	}

	out = run(t, client, "cluster-stats")
	if !strings.Contains(out, "shed-rounds=0") || !strings.Contains(out, "dropped-notifications=0") {
		t.Fatalf("cluster-stats lacks the overload counters:\n%s", out)
	}

	out = run(t, client, "cluster", "memory")
	if !strings.Contains(out, "resource=memory") || !strings.Contains(out, tpcw.CompHome) ||
		!strings.Contains(out, "on node2") || !strings.Contains(out, "node-local") {
		t.Fatalf("cluster report does not name (node2, %s):\n%s", tpcw.CompHome, out)
	}
	if !strings.Contains(out, "overload: shed-rounds=") {
		t.Fatalf("cluster report lacks the overload counter line:\n%s", out)
	}

	out = run(t, client, "node-verdicts", "node2", "memory")
	if !strings.Contains(out, "alarm=true") {
		t.Fatalf("node2 verdicts lack the alarm:\n%s", out)
	}
	out = run(t, client, "node-verdicts", "node1")
	if strings.Contains(out, "alarm=true") {
		t.Fatalf("healthy node1 shows an alarm:\n%s", out)
	}

	out = run(t, client, "cluster-live", "memory")
	if !strings.Contains(out, "node2/"+tpcw.CompHome) {
		t.Fatalf("cluster-live lacks the (node, component) pair:\n%s", out)
	}
}

func TestRejuvCommands(t *testing.T) {
	client := newRejuvPlane(t)
	for _, tc := range []struct {
		args []string
		want []string
	}{
		{[]string{"rejuv"}, []string{
			"epoch=", "node1", "node2", "node3", "rejuvenations="}},
		{[]string{"rejuv-history"}, []string{
			"node2", "draining", "rejuvenating", "micro-reboot"}},
	} {
		out := run(t, client, tc.args...)
		for _, want := range tc.want {
			if !strings.Contains(out, want) {
				t.Fatalf("agingmon %s: output lacks %q:\n%s", strings.Join(tc.args, " "), want, out)
			}
		}
	}
	// The only node that ever actuated is the leaking one.
	out := run(t, client, "rejuv-history")
	if strings.Contains(out, "node1") || strings.Contains(out, "node3") {
		t.Fatalf("healthy nodes appear in the actuation history:\n%s", out)
	}
}

func TestRejuvCommandsNeedActuationPlane(t *testing.T) {
	client := newManagerPlane(t)
	for _, args := range [][]string{{"rejuv"}, {"rejuv-history"}} {
		var out bytes.Buffer
		err := dispatch(client, args, &out)
		if err == nil {
			t.Fatalf("agingmon %s: expected an error without a Rejuvenator bean", strings.Join(args, " "))
		}
		if !strings.Contains(err.Error(), "-rejuvenate") {
			t.Fatalf("agingmon %s: error does not point at the enabling flag: %v", strings.Join(args, " "), err)
		}
	}
}

func TestClusterWatchPollsAndStops(t *testing.T) {
	client := newClusterPlane(t)
	old, oldInt := *watchRounds, *watchInterval
	*watchRounds, *watchInterval = 2, time.Millisecond
	defer func() { *watchRounds, *watchInterval = old, oldInt }()

	out := run(t, client, "cluster-watch", "memory")
	if got := strings.Count(out, "resource=memory"); got != 2 {
		t.Fatalf("cluster-watch polled %d times, want 2:\n%s", got, out)
	}
	if !strings.Contains(out, "aging.cluster.alarm") {
		t.Fatalf("cluster-watch did not surface cluster alarms:\n%s", out)
	}
}

func TestErrorPaths(t *testing.T) {
	client := newManagerPlane(t)
	for _, args := range [][]string{
		{"bogus-command"},
		{"describe"},
		{"get", managerName},
		{"set", managerName, "x"},
		{"invoke", managerName},
		{"node-verdicts"},
		{"reboot"},
		{"notifications", "not-a-number"},
	} {
		var out bytes.Buffer
		if err := dispatch(client, args, &out); err == nil {
			t.Fatalf("agingmon %s: expected an error", strings.Join(args, " "))
		}
	}
	// Cluster commands against a single-node plane fail cleanly.
	var out bytes.Buffer
	if err := dispatch(client, []string{"cluster", "memory"}, &out); err == nil {
		t.Fatal("cluster command succeeded without an aggregator")
	}
}

func TestParseValue(t *testing.T) {
	for in, want := range map[string]any{
		"true":  true,
		"false": false,
		"42":    42.0,
		"x":     "x",
	} {
		if got := parseValue(in); got != want {
			t.Fatalf("parseValue(%q) = %v, want %v", in, got, want)
		}
	}
}

// TestAccuracyCommand renders a scenario-matrix accuracy artifact: the
// command reads a local file, so no management plane is needed (a nil
// client must be fine).
func TestAccuracyCommand(t *testing.T) {
	rep := experiment.AccuracyReport{
		Scale: 0.35,
		Seed:  42,
		Scenarios: []experiment.ScenarioAccuracy{
			{ID: "S2", Passed: true, Truth: []string{"tpcw.home"},
				Flagged: []string{"tpcw.home"}, TP: 1, Precision: 1, Recall: 1, TTDRounds: 10},
			{ID: "S7", Passed: true, Precision: 1, Recall: 1},
		},
		TP: 1, Precision: 1, Recall: 1, MeanTTDRounds: 10,
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/report.json"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		args []string
		want []string
	}{
		{[]string{"accuracy", path}, []string{
			"scale 0.35, seed 42", "S2", "tpcw.home", "S7", "(none)",
			"precision 1.000", "recall 1.000", "mean TTD 10.0 rounds"}},
	} {
		out := run(t, nil, tc.args...)
		for _, want := range tc.want {
			if !strings.Contains(out, want) {
				t.Fatalf("agingmon %s: output lacks %q:\n%s", strings.Join(tc.args, " "), want, out)
			}
		}
	}
}

// TestAccuracyCommandErrors pins the failure modes: wrong arity, a
// missing file and a malformed artifact.
func TestAccuracyCommandErrors(t *testing.T) {
	bad := t.TempDir() + "/bad.json"
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"accuracy"},
		{"accuracy", "/nonexistent/report.json"},
		{"accuracy", bad},
	} {
		var out bytes.Buffer
		if err := dispatch(nil, args, &out); err == nil {
			t.Fatalf("agingmon %s: expected error", strings.Join(args, " "))
		}
	}
}

// Command agingmon is the External Front-end of the paper's architecture:
// a CLI that talks to the JMX Manager Agent (and any other MBean) through
// the HTTP protocol adapter of a running tpcwsim (or any embedding of the
// framework).
//
// Usage:
//
//	agingmon [-url http://localhost:9990] <command> [args]
//
// Commands:
//
//	names [pattern]              list registered MBeans
//	describe <name>              show an MBean's attributes and operations
//	get <name> <attr>            read one attribute
//	set <name> <attr> <value>    write one attribute (true/false/number/string)
//	invoke <name> <op> [args]    invoke an operation (string args)
//	suspects [resource]          ask the manager for the aging ranking
//	map [resource]               print the manager's consumption×usage map
//	live [resource]              rank with the online detector verdicts
//	verdicts [resource]          print the latest online detection report
//	watch [resource]             live-watch mode: poll verdicts + alarms
//	                             until interrupted (-interval sets the period)
//	components                   list instrumented components
//	activate <component>         enable a component's AC
//	deactivate <component>       disable a component's AC
//	reboot <component>           micro-reboot a component
//	tte                          time-to-exhaustion estimate (seconds)
//	notifications [since-seq]    poll buffered JMX notifications
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/jmxhttp"
)

const managerName = "aging:type=Manager"

var watchInterval = flag.Duration("interval", 5*time.Second, "poll period of the watch command")

func main() {
	url := flag.String("url", "http://localhost:9990", "base URL of the JMX HTTP adapter")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	client := jmxhttp.NewClient(*url, nil)
	if err := dispatch(client, args); err != nil {
		fmt.Fprintln(os.Stderr, "agingmon:", err)
		os.Exit(1)
	}
}

func dispatch(client *jmxhttp.Client, args []string) error {
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "names":
		pattern := ""
		if len(rest) > 0 {
			pattern = rest[0]
		}
		names, err := client.Names(pattern)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil

	case "describe":
		if len(rest) != 1 {
			return fmt.Errorf("describe wants <name>")
		}
		d, err := client.DescribeBean(rest[0])
		if err != nil {
			return err
		}
		fmt.Printf("%s — %s\n", d.Name, d.Description)
		fmt.Println("attributes:")
		for k, v := range d.Attributes {
			fmt.Printf("  %s = %v\n", k, v)
		}
		fmt.Println("operations:")
		for _, op := range d.Operations {
			fmt.Printf("  %s\n", op)
		}
		return nil

	case "get":
		if len(rest) != 2 {
			return fmt.Errorf("get wants <name> <attr>")
		}
		v, err := client.Get(rest[0], rest[1])
		if err != nil {
			return err
		}
		fmt.Println(v)
		return nil

	case "set":
		if len(rest) != 3 {
			return fmt.Errorf("set wants <name> <attr> <value>")
		}
		return client.Set(rest[0], rest[1], parseValue(rest[2]))

	case "invoke":
		if len(rest) < 2 {
			return fmt.Errorf("invoke wants <name> <op> [args]")
		}
		opArgs := make([]any, len(rest)-2)
		for i, a := range rest[2:] {
			opArgs[i] = a
		}
		v, err := client.Invoke(rest[0], rest[1], opArgs...)
		if err != nil {
			return err
		}
		fmt.Println(v)
		return nil

	case "suspects":
		resource := "memory"
		if len(rest) > 0 {
			resource = rest[0]
		}
		v, err := client.Invoke(managerName, "Suspects", resource)
		if err != nil {
			return err
		}
		list, _ := v.([]any)
		for i, name := range list {
			fmt.Printf("%2d. %v\n", i+1, name)
		}
		return nil

	case "map":
		resource := "memory"
		if len(rest) > 0 {
			resource = rest[0]
		}
		v, err := client.Invoke(managerName, "Map", resource)
		if err != nil {
			return err
		}
		printMap(v)
		return nil

	case "live":
		resource := "memory"
		if len(rest) > 0 {
			resource = rest[0]
		}
		v, err := client.Invoke(managerName, "LiveMap", resource)
		if err != nil {
			return err
		}
		printLiveMap(v)
		return nil

	case "verdicts":
		resource := "memory"
		if len(rest) > 0 {
			resource = rest[0]
		}
		v, err := client.Invoke(managerName, "Verdicts", resource)
		if err != nil {
			return err
		}
		printVerdicts(v)
		return nil

	case "watch":
		resource := "memory"
		if len(rest) > 0 {
			resource = rest[0]
		}
		return watch(client, resource)

	case "components":
		v, err := client.Get(managerName, "Components")
		if err != nil {
			return err
		}
		list, _ := v.([]any)
		for _, c := range list {
			fmt.Println(c)
		}
		return nil

	case "activate", "deactivate":
		if len(rest) != 1 {
			return fmt.Errorf("%s wants <component>", cmd)
		}
		op := "ActivateAC"
		if cmd == "deactivate" {
			op = "DeactivateAC"
		}
		_, err := client.Invoke(managerName, op, rest[0])
		return err

	case "reboot":
		if len(rest) != 1 {
			return fmt.Errorf("reboot wants <component>")
		}
		v, err := client.Invoke(managerName, "MicroReboot", rest[0])
		if err != nil {
			return err
		}
		fmt.Printf("freed %v bytes\n", v)
		return nil

	case "tte":
		v, err := client.Invoke(managerName, "TimeToExhaustion")
		if err != nil {
			return err
		}
		fmt.Printf("%v seconds\n", v)
		return nil

	case "notifications":
		var since uint64
		if len(rest) > 0 {
			n, err := strconv.ParseUint(rest[0], 10, 64)
			if err != nil {
				return fmt.Errorf("notifications wants a numeric cursor: %w", err)
			}
			since = n
		}
		ns, err := client.Notifications(since)
		if err != nil {
			return err
		}
		for _, n := range ns {
			fmt.Printf("%6d %s %-24s %s %s\n", n.Seq, n.Time, n.Type, n.Source, n.Message)
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// watch is the live-watch mode: every interval it polls the latest
// detection report for the resource and any new aging.* notifications,
// printing both — a terminal dashboard over the online detectors. It runs
// until the process is interrupted or the remote end goes away.
func watch(client *jmxhttp.Client, resource string) error {
	var cursor uint64
	fmt.Printf("watching %s verdicts every %v (Ctrl-C to stop)\n", resource, *watchInterval)
	for {
		v, err := client.Invoke(managerName, "Verdicts", resource)
		if err != nil {
			// "no detectors attached" cannot resolve itself — bail out
			// with a diagnostic instead of polling forever. "No report
			// yet" just means the first sampling round hasn't run;
			// keep polling.
			if strings.Contains(err.Error(), "no detectors attached") {
				return fmt.Errorf("%w (start the server with detectors, e.g. tpcwsim -detect)", err)
			}
			fmt.Printf("%s  (no verdicts: %v)\n", time.Now().Format(time.TimeOnly), err)
		} else {
			fmt.Printf("--- %s ---\n", time.Now().Format(time.TimeOnly))
			printVerdicts(v)
		}
		ns, err := client.Notifications(cursor)
		if err != nil {
			return err
		}
		for _, n := range ns {
			cursor = n.Seq
			if n.Type == "aging.alarm" || n.Type == "aging.suspect" {
				fmt.Printf("!! %s %s %s\n", n.Time, n.Type, n.Message)
			}
		}
		time.Sleep(*watchInterval)
	}
}

// printVerdicts renders the JSON form of a detect.Report.
func printVerdicts(v any) {
	m, ok := v.(map[string]any)
	if !ok {
		fmt.Println(v)
		return
	}
	fmt.Printf("resource=%v round=%v suppressed=%v shift=%.3v entropy=%.3v\n",
		m["Resource"], m["Round"], m["Suppressed"], m["ShiftDistance"], m["Entropy"])
	if alarm, _ := m["EntropyAlarm"].(bool); alarm {
		fmt.Printf("entropy alarm: dominant consumer %v\n", m["EntropySuspect"])
	}
	comps, _ := m["Components"].([]any)
	for i, c := range comps {
		cm, _ := c.(map[string]any)
		fmt.Printf("%2d. %-28v alarm=%-5v score=%8.4v streak=%v samples=%v\n",
			i+1, cm["Component"], cm["Alarm"], cm["Score"], cm["Streak"], cm["Samples"])
	}
}

// printLiveMap renders the live strategy's ranking.
func printLiveMap(v any) {
	m, ok := v.(map[string]any)
	if !ok {
		fmt.Println(v)
		return
	}
	fmt.Printf("strategy=%v resource=%v\n", m["Strategy"], m["Resource"])
	entries, _ := m["Entries"].([]any)
	for i, e := range entries {
		em, _ := e.(map[string]any)
		fmt.Printf("%2d. %-28v alarm=%-5v score=%8.4v consumption=%.3v usage=%.3v\n",
			i+1, em["Name"], em["Alarm"], em["Score"], em["NormConsumption"], em["NormUsage"])
	}
}

// printMap renders the JSON form of a rootcause.Ranking.
func printMap(v any) {
	m, ok := v.(map[string]any)
	if !ok {
		fmt.Println(v)
		return
	}
	fmt.Printf("strategy=%v resource=%v\n", m["Strategy"], m["Resource"])
	entries, _ := m["Entries"].([]any)
	for i, e := range entries {
		em, _ := e.(map[string]any)
		fmt.Printf("%2d. %-28v score=%8.4v consumption=%.3v usage=%.3v\n",
			i+1, em["Name"], em["Score"], em["NormConsumption"], em["NormUsage"])
	}
}

// parseValue turns a CLI literal into a JSON-compatible value.
func parseValue(s string) any {
	switch s {
	case "true":
		return true
	case "false":
		return false
	}
	if n, err := strconv.ParseFloat(s, 64); err == nil {
		return n
	}
	return s
}

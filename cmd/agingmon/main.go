// Command agingmon is the External Front-end of the paper's architecture:
// a CLI that talks to the JMX Manager Agent (and any other MBean) through
// the HTTP protocol adapter of a running tpcwsim (or any embedding of the
// framework).
//
// Usage:
//
//	agingmon [-url http://localhost:9990] <command> [args]
//
// Commands:
//
//	names [pattern]              list registered MBeans
//	describe <name>              show an MBean's attributes and operations
//	get <name> <attr>            read one attribute
//	set <name> <attr> <value>    write one attribute (true/false/number/string)
//	invoke <name> <op> [args]    invoke an operation (string args)
//	suspects [resource]          ask the manager for the aging ranking
//	map [resource]               print the manager's consumption×usage map
//	live [resource]              rank with the online detector verdicts
//	verdicts [resource]          print the latest online detection report
//	watch [resource]             live-watch mode: poll verdicts + alarms
//	                             until interrupted (-interval sets the period)
//	components                   list instrumented components
//	activate <component>         enable a component's AC
//	deactivate <component>       disable a component's AC
//	reboot <component>           micro-reboot a component
//	tte                          time-to-exhaustion estimate (seconds)
//	notifications [since-seq]    poll buffered JMX notifications
//	accuracy <report.json>       render a scenario-matrix accuracy report
//	                             (written by experiments -accuracy); local,
//	                             no server needed
//
// Cluster commands (against a tpcwsim -nodes N management plane, which
// serves the aggregator bean):
//
//	nodes                        list cluster nodes with status, epochs and
//	                             wire counters (publish errors, rounds
//	                             dropped after transport retries)
//	cluster-stats                aggregation-plane counters: epoch, rounds
//	                             ingested, verdict (fold) latency, rounds
//	                             shed under overload, notifications dropped
//	cluster [resource]           print the cluster verdict report
//	node-verdicts <node> [res]   print one node's detection report
//	cluster-live [resource]      rank (node, component) pairs live
//	cluster-watch [resource]     live-watch the cluster verdicts + alarms
//	rejuv                        actuation plane: per-node rejuvenation FSM
//	                             state and cumulative counters
//	rejuv-history                actuation state-machine transition log
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/jmxhttp"
)

const (
	managerName    = "aging:type=Manager"
	aggregatorName = "aging:type=Aggregator"
	rejuvName      = "aging:type=Rejuvenator"
)

var (
	watchInterval = flag.Duration("interval", 5*time.Second, "poll period of the watch commands")
	watchRounds   = flag.Int("watchrounds", 0, "stop watch commands after N polls (0 = forever)")
)

func main() {
	url := flag.String("url", "http://localhost:9990", "base URL of the JMX HTTP adapter")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	client := jmxhttp.NewClient(*url, nil)
	if err := dispatch(client, args, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "agingmon:", err)
		os.Exit(1)
	}
}

func dispatch(client *jmxhttp.Client, args []string, w io.Writer) error {
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "names":
		pattern := ""
		if len(rest) > 0 {
			pattern = rest[0]
		}
		names, err := client.Names(pattern)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Fprintln(w, n)
		}
		return nil

	case "describe":
		if len(rest) != 1 {
			return fmt.Errorf("describe wants <name>")
		}
		d, err := client.DescribeBean(rest[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s — %s\n", d.Name, d.Description)
		fmt.Fprintln(w, "attributes:")
		for k, v := range d.Attributes {
			fmt.Fprintf(w, "  %s = %v\n", k, v)
		}
		fmt.Fprintln(w, "operations:")
		for _, op := range d.Operations {
			fmt.Fprintf(w, "  %s\n", op)
		}
		return nil

	case "get":
		if len(rest) != 2 {
			return fmt.Errorf("get wants <name> <attr>")
		}
		v, err := client.Get(rest[0], rest[1])
		if err != nil {
			return err
		}
		fmt.Fprintln(w, v)
		return nil

	case "set":
		if len(rest) != 3 {
			return fmt.Errorf("set wants <name> <attr> <value>")
		}
		return client.Set(rest[0], rest[1], parseValue(rest[2]))

	case "invoke":
		if len(rest) < 2 {
			return fmt.Errorf("invoke wants <name> <op> [args]")
		}
		opArgs := make([]any, len(rest)-2)
		for i, a := range rest[2:] {
			opArgs[i] = a
		}
		v, err := client.Invoke(rest[0], rest[1], opArgs...)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, v)
		return nil

	case "suspects":
		v, err := client.Invoke(managerName, "Suspects", resourceArg(rest))
		if err != nil {
			return err
		}
		list, _ := v.([]any)
		for i, name := range list {
			fmt.Fprintf(w, "%2d. %v\n", i+1, name)
		}
		return nil

	case "map":
		v, err := client.Invoke(managerName, "Map", resourceArg(rest))
		if err != nil {
			return err
		}
		printMap(w, v)
		return nil

	case "live":
		v, err := client.Invoke(managerName, "LiveMap", resourceArg(rest))
		if err != nil {
			return err
		}
		printLiveMap(w, v)
		return nil

	case "verdicts":
		v, err := client.Invoke(managerName, "Verdicts", resourceArg(rest))
		if err != nil {
			return err
		}
		printVerdicts(w, v)
		return nil

	case "watch":
		return watch(client, resourceArg(rest), w)

	case "components":
		v, err := client.Get(managerName, "Components")
		if err != nil {
			return err
		}
		list, _ := v.([]any)
		for _, c := range list {
			fmt.Fprintln(w, c)
		}
		return nil

	case "activate", "deactivate":
		if len(rest) != 1 {
			return fmt.Errorf("%s wants <component>", cmd)
		}
		op := "ActivateAC"
		if cmd == "deactivate" {
			op = "DeactivateAC"
		}
		_, err := client.Invoke(managerName, op, rest[0])
		return err

	case "reboot":
		if len(rest) != 1 {
			return fmt.Errorf("reboot wants <component>")
		}
		v, err := client.Invoke(managerName, "MicroReboot", rest[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "freed %v bytes\n", v)
		return nil

	case "tte":
		v, err := client.Invoke(managerName, "TimeToExhaustion")
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%v seconds\n", v)
		return nil

	case "notifications":
		var since uint64
		if len(rest) > 0 {
			n, err := strconv.ParseUint(rest[0], 10, 64)
			if err != nil {
				return fmt.Errorf("notifications wants a numeric cursor: %w", err)
			}
			since = n
		}
		ns, err := client.Notifications(since)
		if err != nil {
			return err
		}
		for _, n := range ns {
			fmt.Fprintf(w, "%6d %s %-24s %s %s\n", n.Seq, n.Time, n.Type, n.Source, n.Message)
		}
		return nil

	case "nodes":
		v, err := client.Get(aggregatorName, "Nodes")
		if err != nil {
			return err
		}
		printNodes(w, v, client)
		return nil

	case "cluster-stats":
		epoch, err := client.Get(aggregatorName, "Epoch")
		if err != nil {
			return err
		}
		rounds, err := client.Get(aggregatorName, "TotalRounds")
		if err != nil {
			return err
		}
		lat, err := client.Get(aggregatorName, "FoldLatency")
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "epoch=%v rounds=%v\n", epoch, rounds)
		if m, ok := lat.(map[string]any); ok {
			fmt.Fprintf(w, "verdict latency: last=%v max=%v\n",
				nanosDuration(m["LastNanos"]), nanosDuration(m["MaxNanos"]))
		} else {
			fmt.Fprintf(w, "verdict latency: %v\n", lat)
		}
		printOverload(w, client)
		return nil

	case "cluster":
		v, err := client.Invoke(aggregatorName, "ClusterReport", resourceArg(rest))
		if err != nil {
			return err
		}
		printClusterReport(w, v)
		printOverload(w, client)
		return nil

	case "node-verdicts":
		if len(rest) < 1 {
			return fmt.Errorf("node-verdicts wants <node> [resource]")
		}
		resource := "memory"
		if len(rest) > 1 {
			resource = rest[1]
		}
		v, err := client.Invoke(aggregatorName, "NodeVerdicts", rest[0], resource)
		if err != nil {
			return err
		}
		printVerdicts(w, v)
		return nil

	case "cluster-live":
		v, err := client.Invoke(aggregatorName, "ClusterLive", resourceArg(rest))
		if err != nil {
			return err
		}
		printLiveMap(w, v)
		return nil

	case "cluster-watch":
		return clusterWatch(client, resourceArg(rest), w)

	case "rejuv":
		epoch, err := client.Get(rejuvName, "Epoch")
		if err != nil {
			return rejuvUnavailable(err)
		}
		status, err := client.Get(rejuvName, "Status")
		if err != nil {
			return err
		}
		counters, err := client.Get(rejuvName, "Counters")
		if err != nil {
			return err
		}
		printRejuvStatus(w, epoch, status, counters)
		return nil

	case "rejuv-history":
		v, err := client.Invoke(rejuvName, "History")
		if err != nil {
			return rejuvUnavailable(err)
		}
		printRejuvHistory(w, v)
		return nil

	case "accuracy":
		if len(rest) != 1 {
			return fmt.Errorf("usage: accuracy <report.json>")
		}
		return printAccuracyFile(rest[0], w)

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// printAccuracyFile renders an accuracy report written by
// `experiments -accuracy` (or by scripts/scenariomatrix.sh). It reads a
// local artifact, so unlike every other command it never touches the
// management plane.
func printAccuracyFile(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep experiment.AccuracyReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("decoding %s: %w", path, err)
	}
	_, err = io.WriteString(w, rep.String())
	return err
}

// resourceArg reads the optional trailing resource argument ("memory"
// when absent).
func resourceArg(rest []string) string {
	if len(rest) > 0 {
		return rest[0]
	}
	return "memory"
}

// watch is the live-watch mode: every interval it polls the latest
// detection report for the resource and any new aging.* notifications,
// printing both — a terminal dashboard over the online detectors. It runs
// until the process is interrupted, the remote end goes away, or
// -watchrounds polls have completed.
func watch(client *jmxhttp.Client, resource string, w io.Writer) error {
	return watchLoop(client, w, func() error {
		v, err := client.Invoke(managerName, "Verdicts", resource)
		if err != nil {
			// "no detectors attached" cannot resolve itself — bail out
			// with a diagnostic instead of polling forever. "No report
			// yet" just means the first sampling round hasn't run;
			// keep polling.
			if strings.Contains(err.Error(), "no detectors attached") {
				return fmt.Errorf("%w (start the server with detectors, e.g. tpcwsim -detect)", err)
			}
			fmt.Fprintf(w, "%s  (no verdicts: %v)\n", time.Now().Format(time.TimeOnly), err)
			return nil
		}
		fmt.Fprintf(w, "--- %s ---\n", time.Now().Format(time.TimeOnly))
		printVerdicts(w, v)
		return nil
	})
}

// clusterWatch is watch for the cluster plane: it polls the aggregator's
// cluster report and the aging.cluster.* notifications.
func clusterWatch(client *jmxhttp.Client, resource string, w io.Writer) error {
	return watchLoop(client, w, func() error {
		v, err := client.Invoke(aggregatorName, "ClusterReport", resource)
		if err != nil {
			if strings.Contains(err.Error(), "not registered") {
				return fmt.Errorf("%w (cluster commands need a cluster plane, e.g. tpcwsim -nodes 3)", err)
			}
			fmt.Fprintf(w, "%s  (no cluster report: %v)\n", time.Now().Format(time.TimeOnly), err)
			return nil
		}
		fmt.Fprintf(w, "--- %s ---\n", time.Now().Format(time.TimeOnly))
		printClusterReport(w, v)
		return nil
	})
}

// watchLoop shares the poll/notification plumbing of the watch commands.
func watchLoop(client *jmxhttp.Client, w io.Writer, poll func() error) error {
	var cursor uint64
	fmt.Fprintf(w, "watching every %v (Ctrl-C to stop)\n", *watchInterval)
	for n := 0; ; n++ {
		if err := poll(); err != nil {
			return err
		}
		ns, err := client.Notifications(cursor)
		if err != nil {
			return err
		}
		for _, notif := range ns {
			cursor = notif.Seq
			if strings.HasPrefix(notif.Type, "aging.") {
				fmt.Fprintf(w, "!! %s %s %s\n", notif.Time, notif.Type, notif.Message)
			}
		}
		if *watchRounds > 0 && n+1 >= *watchRounds {
			return nil
		}
		time.Sleep(*watchInterval)
	}
}

// printVerdicts renders the JSON form of a detect.Report.
func printVerdicts(w io.Writer, v any) {
	m, ok := v.(map[string]any)
	if !ok {
		fmt.Fprintln(w, v)
		return
	}
	fmt.Fprintf(w, "resource=%v round=%v suppressed=%v shift=%.3v entropy=%.3v\n",
		m["Resource"], m["Round"], m["Suppressed"], m["ShiftDistance"], m["Entropy"])
	if alarm, _ := m["EntropyAlarm"].(bool); alarm {
		fmt.Fprintf(w, "entropy alarm: dominant consumer %v\n", m["EntropySuspect"])
	}
	comps, _ := m["Components"].([]any)
	for i, c := range comps {
		cm, _ := c.(map[string]any)
		cp := ""
		if b, _ := cm["ChangePoint"].(bool); b {
			cp = " level-shift"
		}
		fmt.Fprintf(w, "%2d. %-28v alarm=%-5v score=%8.4v streak=%v samples=%v%s\n",
			i+1, cm["Component"], cm["Alarm"], cm["Score"], cm["Streak"], cm["Samples"], cp)
	}
}

// printLiveMap renders a live strategy ranking; entries carrying a node
// are shown as (node, component) pairs.
func printLiveMap(w io.Writer, v any) {
	m, ok := v.(map[string]any)
	if !ok {
		fmt.Fprintln(w, v)
		return
	}
	fmt.Fprintf(w, "strategy=%v resource=%v\n", m["Strategy"], m["Resource"])
	entries, _ := m["Entries"].([]any)
	for i, e := range entries {
		em, _ := e.(map[string]any)
		label := fmt.Sprint(em["Name"])
		if node, _ := em["Node"].(string); node != "" {
			label = node + "/" + label
		}
		fmt.Fprintf(w, "%2d. %-28v alarm=%-5v score=%8.4v consumption=%.3v usage=%.3v\n",
			i+1, label, em["Alarm"], em["Score"], em["NormConsumption"], em["NormUsage"])
	}
}

// printMap renders the JSON form of a rootcause.Ranking.
func printMap(w io.Writer, v any) {
	m, ok := v.(map[string]any)
	if !ok {
		fmt.Fprintln(w, v)
		return
	}
	fmt.Fprintf(w, "strategy=%v resource=%v\n", m["Strategy"], m["Resource"])
	entries, _ := m["Entries"].([]any)
	for i, e := range entries {
		em, _ := e.(map[string]any)
		fmt.Fprintf(w, "%2d. %-28v score=%8.4v consumption=%.3v usage=%.3v\n",
			i+1, em["Name"], em["Score"], em["NormConsumption"], em["NormUsage"])
	}
}

// printNodes renders the aggregator's membership attribute, joined with
// each node's forwarder counters (publish errors and rounds the wire
// dropped after exhausting its retries) when the node's forwarder bean is
// on the same plane — "-" when it is not (e.g. a remote node's plane).
func printNodes(w io.Writer, v any, client *jmxhttp.Client) {
	list, ok := v.([]any)
	if !ok {
		fmt.Fprintln(w, v)
		return
	}
	fmt.Fprintf(w, "%-12s %-8s %8s %8s %8s %8s\n", "node", "state", "rounds", "epoch", "errors", "dropped")
	for _, item := range list {
		m, _ := item.(map[string]any)
		state := "inactive"
		if b, _ := m["Active"].(bool); b {
			state = "active"
		}
		errs, drops := any("-"), any("-")
		forwarder := "aging:type=Forwarder,node=" + fmt.Sprint(m["Node"])
		if v, err := client.Get(forwarder, "Errors"); err == nil {
			errs = v
		}
		if v, err := client.Get(forwarder, "DroppedRounds"); err == nil {
			drops = v
		}
		fmt.Fprintf(w, "%-12v %-8s %8v %8v %8v %8v\n", m["Node"], state, m["Rounds"], m["Epoch"], errs, drops)
	}
}

// printOverload renders the aggregator's overload-protection counters:
// rounds shed by the ingest admission gate and cluster-alarm
// notifications dropped at the bounded pending queue. Best-effort — an
// older plane without the attributes prints nothing.
func printOverload(w io.Writer, client *jmxhttp.Client) {
	shed, err1 := client.Get(aggregatorName, "ShedRounds")
	drops, err2 := client.Get(aggregatorName, "DroppedNotifications")
	if err1 != nil || err2 != nil {
		return
	}
	fmt.Fprintf(w, "overload: shed-rounds=%v dropped-notifications=%v\n", shed, drops)
}

// printClusterReport renders the JSON form of a cluster.ClusterReport.
func printClusterReport(w io.Writer, v any) {
	m, ok := v.(map[string]any)
	if !ok {
		fmt.Fprintln(w, v)
		return
	}
	fmt.Fprintf(w, "resource=%v epoch=%v nodes=%v/%v suppressed=%v shift=%.3v\n",
		m["Resource"], m["Epoch"], m["Active"], m["Total"], m["Suppressed"], m["ShiftDistance"])
	verdicts, _ := m["Verdicts"].([]any)
	if len(verdicts) == 0 {
		fmt.Fprintln(w, "no (node, component) pair currently flagged")
		return
	}
	for i, item := range verdicts {
		vm, _ := item.(map[string]any)
		scope := "node-local"
		if b, _ := vm["ClusterWide"].(bool); b {
			scope = "cluster-wide"
		}
		nodes, _ := vm["Nodes"].([]any)
		names := make([]string, len(nodes))
		for j, n := range nodes {
			names[j] = fmt.Sprint(n)
		}
		fmt.Fprintf(w, "%2d. %-24v on %-20s %-12s score=%8.4v since-epoch=%v\n",
			i+1, vm["Component"], strings.Join(names, "+"), scope, vm["Score"], vm["FirstEpoch"])
	}
}

// rejuvUnavailable decorates a missing-Rejuvenator error with the flag
// that enables the actuation plane.
func rejuvUnavailable(err error) error {
	if strings.Contains(err.Error(), "not registered") {
		return fmt.Errorf("%w (the actuation plane needs tpcwsim -nodes N -rejuvenate)", err)
	}
	return err
}

// printRejuvStatus renders the Rejuvenator bean's Status and Counters
// attributes: one row per node's state machine, then the totals.
func printRejuvStatus(w io.Writer, epoch, status, counters any) {
	fmt.Fprintf(w, "epoch=%v\n", epoch)
	if list, ok := status.([]any); ok {
		fmt.Fprintf(w, "%-12s %-13s %-24s %4s %8s %9s %6s %12s\n",
			"node", "state", "suspect", "hold", "since", "cooldown", "cycles", "freed")
		for _, item := range list {
			m, _ := item.(map[string]any)
			suspect := fmt.Sprint(m["Component"])
			if suspect == "" {
				suspect = "-"
			}
			fmt.Fprintf(w, "%-12v %-13v %-24s %4v %8v %9v %6v %12v\n",
				m["Node"], m["State"], suspect, m["Hold"], m["SinceEpoch"],
				m["CooldownUntil"], m["Cycles"], m["FreedBytes"])
		}
	} else {
		fmt.Fprintln(w, status)
	}
	if m, ok := counters.(map[string]any); ok {
		fmt.Fprintf(w, "rejuvenations=%v freed=%v rollbacks=%v control-lost=%v forced-drains=%v vetoes=%v\n",
			m["Rejuvenations"], m["FreedBytes"], m["Rollbacks"],
			m["ControlLost"], m["ForcedDrains"], m["ClusterWideVetoes"])
	} else {
		fmt.Fprintln(w, counters)
	}
}

// printRejuvHistory renders the Rejuvenator's transition log.
func printRejuvHistory(w io.Writer, v any) {
	list, ok := v.([]any)
	if !ok {
		fmt.Fprintln(w, v)
		return
	}
	if len(list) == 0 {
		fmt.Fprintln(w, "no actuation yet")
		return
	}
	for _, item := range list {
		m, _ := item.(map[string]any)
		fmt.Fprintf(w, "epoch %6v  %-12v %-12v -> %-12v %v\n",
			m["Epoch"], m["Node"], m["From"], m["To"], m["Note"])
	}
}

// nanosDuration renders a JSON-decoded nanosecond count as a duration.
func nanosDuration(v any) time.Duration {
	f, _ := v.(float64)
	return time.Duration(int64(f))
}

// parseValue turns a CLI literal into a JSON-compatible value.
func parseValue(s string) any {
	switch s {
	case "true":
		return true
	case "false":
		return false
	}
	if n, err := strconv.ParseFloat(s, 64); err == nil {
		return n
	}
	return s
}

// Command agingmon is the External Front-end of the paper's architecture:
// a CLI that talks to the JMX Manager Agent (and any other MBean) through
// the HTTP protocol adapter of a running tpcwsim (or any embedding of the
// framework).
//
// Usage:
//
//	agingmon [-url http://localhost:9990] <command> [args]
//
// Commands:
//
//	names [pattern]              list registered MBeans
//	describe <name>              show an MBean's attributes and operations
//	get <name> <attr>            read one attribute
//	set <name> <attr> <value>    write one attribute (true/false/number/string)
//	invoke <name> <op> [args]    invoke an operation (string args)
//	suspects [resource]          ask the manager for the aging ranking
//	map [resource]               print the manager's consumption×usage map
//	components                   list instrumented components
//	activate <component>         enable a component's AC
//	deactivate <component>       disable a component's AC
//	reboot <component>           micro-reboot a component
//	tte                          time-to-exhaustion estimate (seconds)
//	notifications [since-seq]    poll buffered JMX notifications
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/jmxhttp"
)

const managerName = "aging:type=Manager"

func main() {
	url := flag.String("url", "http://localhost:9990", "base URL of the JMX HTTP adapter")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	client := jmxhttp.NewClient(*url, nil)
	if err := dispatch(client, args); err != nil {
		fmt.Fprintln(os.Stderr, "agingmon:", err)
		os.Exit(1)
	}
}

func dispatch(client *jmxhttp.Client, args []string) error {
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "names":
		pattern := ""
		if len(rest) > 0 {
			pattern = rest[0]
		}
		names, err := client.Names(pattern)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil

	case "describe":
		if len(rest) != 1 {
			return fmt.Errorf("describe wants <name>")
		}
		d, err := client.DescribeBean(rest[0])
		if err != nil {
			return err
		}
		fmt.Printf("%s — %s\n", d.Name, d.Description)
		fmt.Println("attributes:")
		for k, v := range d.Attributes {
			fmt.Printf("  %s = %v\n", k, v)
		}
		fmt.Println("operations:")
		for _, op := range d.Operations {
			fmt.Printf("  %s\n", op)
		}
		return nil

	case "get":
		if len(rest) != 2 {
			return fmt.Errorf("get wants <name> <attr>")
		}
		v, err := client.Get(rest[0], rest[1])
		if err != nil {
			return err
		}
		fmt.Println(v)
		return nil

	case "set":
		if len(rest) != 3 {
			return fmt.Errorf("set wants <name> <attr> <value>")
		}
		return client.Set(rest[0], rest[1], parseValue(rest[2]))

	case "invoke":
		if len(rest) < 2 {
			return fmt.Errorf("invoke wants <name> <op> [args]")
		}
		opArgs := make([]any, len(rest)-2)
		for i, a := range rest[2:] {
			opArgs[i] = a
		}
		v, err := client.Invoke(rest[0], rest[1], opArgs...)
		if err != nil {
			return err
		}
		fmt.Println(v)
		return nil

	case "suspects":
		resource := "memory"
		if len(rest) > 0 {
			resource = rest[0]
		}
		v, err := client.Invoke(managerName, "Suspects", resource)
		if err != nil {
			return err
		}
		list, _ := v.([]any)
		for i, name := range list {
			fmt.Printf("%2d. %v\n", i+1, name)
		}
		return nil

	case "map":
		resource := "memory"
		if len(rest) > 0 {
			resource = rest[0]
		}
		v, err := client.Invoke(managerName, "Map", resource)
		if err != nil {
			return err
		}
		printMap(v)
		return nil

	case "components":
		v, err := client.Get(managerName, "Components")
		if err != nil {
			return err
		}
		list, _ := v.([]any)
		for _, c := range list {
			fmt.Println(c)
		}
		return nil

	case "activate", "deactivate":
		if len(rest) != 1 {
			return fmt.Errorf("%s wants <component>", cmd)
		}
		op := "ActivateAC"
		if cmd == "deactivate" {
			op = "DeactivateAC"
		}
		_, err := client.Invoke(managerName, op, rest[0])
		return err

	case "reboot":
		if len(rest) != 1 {
			return fmt.Errorf("reboot wants <component>")
		}
		v, err := client.Invoke(managerName, "MicroReboot", rest[0])
		if err != nil {
			return err
		}
		fmt.Printf("freed %v bytes\n", v)
		return nil

	case "tte":
		v, err := client.Invoke(managerName, "TimeToExhaustion")
		if err != nil {
			return err
		}
		fmt.Printf("%v seconds\n", v)
		return nil

	case "notifications":
		var since uint64
		if len(rest) > 0 {
			n, err := strconv.ParseUint(rest[0], 10, 64)
			if err != nil {
				return fmt.Errorf("notifications wants a numeric cursor: %w", err)
			}
			since = n
		}
		ns, err := client.Notifications(since)
		if err != nil {
			return err
		}
		for _, n := range ns {
			fmt.Printf("%6d %s %-24s %s %s\n", n.Seq, n.Time, n.Type, n.Source, n.Message)
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// printMap renders the JSON form of a rootcause.Ranking.
func printMap(v any) {
	m, ok := v.(map[string]any)
	if !ok {
		fmt.Println(v)
		return
	}
	fmt.Printf("strategy=%v resource=%v\n", m["Strategy"], m["Resource"])
	entries, _ := m["Entries"].([]any)
	for i, e := range entries {
		em, _ := e.(map[string]any)
		fmt.Printf("%2d. %-28v score=%8.4v consumption=%.3v usage=%.3v\n",
			i+1, em["Name"], em["Score"], em["NormConsumption"], em["NormUsage"])
	}
}

// parseValue turns a CLI literal into a JSON-compatible value.
func parseValue(s string) any {
	switch s {
	case "true":
		return true
	case "false":
		return false
	}
	if n, err := strconv.ParseFloat(s, 64); err == nil {
		return n
	}
	return s
}

// Command tpcwsim runs the monitored TPC-W simulation with a configurable
// leak injection and serves the JMX management plane over HTTP while it
// runs, so cmd/agingmon (the external front-end) can interrogate the
// manager agent live.
//
// Usage:
//
//	tpcwsim [-addr :9990] [-duration 1h] [-ebs 50] [-leak tpcw.home]
//	        [-leaksize 102400] [-leakn 100] [-scenario steady] [-hold]
//	        [-nodes 1] [-leaknode node2] [-transport inproc] [-rejuvenate]
//
// The -scenario flag picks the workload shape the detectors are exposed
// to: steady (one flat phase), shift (the mix walks browsing → shopping →
// ordering), diurnal (a sinusoidal population cycle) or burst (a 4× flash
// crowd mid-run). With -detect (on by default) the streaming detectors
// run off every sampling round; watch them live with
//
//	agingmon -url http://localhost:9990 watch memory
//
// With -nodes N (N > 1) the simulation becomes a cluster: N full
// application-server nodes behind a round-robin balancer, each shipping
// its sampling rounds to the cluster aggregator, whose bean is served on
// the management plane instead of a single manager. The leak is then
// armed on -leaknode only, so the cluster verdict must name that (node,
// component) pair:
//
//	tpcwsim -nodes 3 -leaknode node2 &
//	agingmon nodes
//	agingmon cluster memory
//	agingmon cluster-watch memory
//
// -rejuvenate (cluster mode) closes the loop: the rejuvenation
// controller subscribes to the aggregator's verdicts and drains,
// micro-reboots and re-admits the flagged node through the balancer and
// the control channel, while the run keeps serving. Inspect it live:
//
//	tpcwsim -nodes 3 -leaknode node2 -rejuvenate &
//	agingmon rejuv
//	agingmon rejuv-history
//
// -transport picks how rounds travel from the nodes to the aggregator:
// inproc (direct calls), gob, or binary (the delta-encoded wire codec) —
// verdicts are transport-independent by construction. With -batch K
// (binary transport only) each node's forwarder packs K rounds into one
// v5 BATCH frame before writing; -lanes and -foldworkers size the
// aggregator's sharded ingest plane and parallel fold pool (0 = package
// defaults).
//
// With -load the command runs the million-session load tier instead of
// the monitored testbed: a struct-of-arrays session population over
// per-core event-engine shards, closed-loop (TPC-W think times) or
// open-loop (Poisson arrivals):
//
//	tpcwsim -load -sessions 1000000 -shards 4 -duration 2m
//	tpcwsim -load -arrival open -rate 5000 -duration 2m
//
// A fleet splits the load over K driver processes paced by a coordinator
// (sessions are owned by id mod K, so any K produces identical merged
// results):
//
//	tpcwsim -load -role coordinator -drivers 2 -coord :9991 -duration 2m &
//	tpcwsim -load -role driver -driver-index 0 -drivers 2 -coord localhost:9991 -sessions 1000000 -duration 2m &
//	tpcwsim -load -role driver -driver-index 1 -drivers 2 -coord localhost:9991 -sessions 1000000 -duration 2m
//
// -drivers K with the default -role local runs the same K-way fleet
// in-process over pipes — the protocol without the deployment.
//
// -load -monitor (container backend, local single-driver role) attaches
// the full monitoring plane to the load tier: each shard's framework
// samples its container stack and ships rounds over a batched binary
// wire into the sharded aggregator, and the run prints rounds ingested,
// ingest rate and verdict (fold) latency — the fleet-scale measurement
// the aggregation plane exists for. Size -workers for the offered load
// (a 50-worker default container sheds almost everything a fleet-scale
// population throws at it), and optionally arm the leak on one shard so
// the verdict has something to name:
//
//	tpcwsim -load -backend container -monitor -sessions 1000000 -shards 4 \
//	        -workers 1000 -leakshard 1 -monitor-interval 5s -duration 2m
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eb"
	"repro/internal/experiment"
	"repro/internal/jmx"
	"repro/internal/jmxhttp"
	"repro/internal/rejuv"
	"repro/internal/sim"
	"repro/internal/tpcw"
)

func main() {
	var (
		addr     = flag.String("addr", ":9990", "JMX HTTP adapter listen address")
		duration = flag.Duration("duration", time.Hour, "virtual experiment duration")
		ebs      = flag.Int("ebs", 50, "emulated browser population")
		leak     = flag.String("leak", tpcw.CompHome, "component to inject a memory leak into ('' disables)")
		leakSize = flag.Int("leaksize", 100<<10, "leak bytes per injection")
		leakN    = flag.Int("leakn", 100, "the paper's N: uniform [0,N] requests between injections")
		seed     = flag.Uint64("seed", 42, "random seed")
		scenario = flag.String("scenario", "steady", "workload shape: steady, shift, diurnal or burst")
		doDetect = flag.Bool("detect", true, "attach the streaming aging detectors")
		hold     = flag.Bool("hold", false, "keep serving the management plane after the run ends")
		nodes    = flag.Int("nodes", 1, "cluster size (1 = the paper's single-node testbed)")
		leakNode = flag.String("leaknode", "node2", "node to arm the leak on in cluster mode")
		trans    = flag.String("transport", "inproc", "cluster round transport: inproc, gob or binary")
		rejuvOn  = flag.Bool("rejuvenate", false, "cluster mode: actuate verdicts — drain, micro-reboot, probation, re-admit")
		batch    = flag.Int("batch", 0, "rounds per v5 BATCH frame on the binary transport (0/1 = one round per frame)")
		lanes    = flag.Int("lanes", 0, "aggregator ingest lanes (0 = package default)")
		foldWork = flag.Int("foldworkers", 0, "aggregator fold worker pool size (0 = package default)")

		load      = flag.Bool("load", false, "run the million-session load tier instead of the monitored testbed")
		sessions  = flag.Int("sessions", 100000, "load tier: closed-loop session population")
		shards    = flag.Int("shards", 1, "load tier: per-core event-engine shards per process")
		arrival   = flag.String("arrival", "closed", "load tier: arrival discipline, closed or open")
		rate      = flag.Float64("rate", 1000, "load tier: open-loop arrival rate (sessions/second)")
		backend   = flag.String("backend", "model", "load tier: backend, model or container")
		drivers   = flag.Int("drivers", 1, "load tier: driver process fleet size K")
		role      = flag.String("role", "local", "load tier: local, coordinator or driver")
		coord     = flag.String("coord", ":9991", "load tier: coordinator address (listen or dial)")
		drvIndex  = flag.Int("driver-index", 0, "load tier: this driver's index in the fleet")
		monitor   = flag.Bool("monitor", false, "load tier: attach the monitoring plane (container backend only)")
		workers   = flag.Int("workers", 0, "load tier: container workers per shard (0 = servlet default of 50; size for the offered load at large populations)")
		leakShard = flag.Int("leakshard", -1, "load tier: arm the -leak injection on this shard index (-1 = no injection)")
		monIntvl  = flag.Duration("monitor-interval", 30*time.Second, "load tier: sampling cadence of the monitoring plane")
	)
	flag.Parse()

	if *load {
		runLoad(loadOptions{
			duration:  *duration,
			sessions:  *sessions,
			shards:    *shards,
			arrival:   *arrival,
			rate:      *rate,
			backend:   *backend,
			drivers:   *drivers,
			role:      *role,
			coord:     *coord,
			index:     *drvIndex,
			seed:      *seed,
			monitor:   *monitor,
			interval:  *monIntvl,
			workers:   *workers,
			leak:      *leak,
			leakShard: *leakShard,
			leakSize:  *leakSize,
			leakN:     *leakN,
			batch:     *batch,
			lanes:     *lanes,
			foldWork:  *foldWork,
		})
		return
	}

	if *nodes > 1 {
		if !*doDetect {
			// Cluster verdicts are computed by the aggregator's per-node
			// detector banks; a cluster without them has no output.
			log.Printf("-detect=false has no effect with -nodes > 1: the aggregator always runs per-node detectors")
		}
		runCluster(*addr, *duration, *ebs, *leak, *leakSize, *leakN, *seed, *scenario, *leakNode, *nodes, *hold, *trans, *batch, *lanes, *foldWork, *rejuvOn)
		return
	}
	if *rejuvOn {
		log.Printf("-rejuvenate needs a cluster (-nodes > 1): a single node cannot be drained")
	}

	stack, err := experiment.NewStack(experiment.StackConfig{
		Seed:      *seed,
		Monitored: true,
		Detect:    *doDetect,
		Mix:       eb.Shopping,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()
	if *leak != "" {
		if _, err := stack.InjectLeak(*leak, *leakSize, *leakN, *seed); err != nil {
			log.Fatal(err)
		}
		log.Printf("injected %dB/N=%d memory leak into %s", *leakSize, *leakN, *leak)
	}

	notifBuf := jmxhttp.NewNotificationBuffer(stack.Framework.Server(), 0)
	defer notifBuf.Close()
	servePlane(*addr, stack.Framework.Server(), notifBuf)

	log.Printf("running %v of virtual time at %d EBs (%s scenario)", *duration, *ebs, *scenario)
	start := time.Now()
	runScenario(stack.Driver, *scenario, *duration, *ebs)
	log.Printf("done: %d interactions (%d failed) in %v wall time",
		stack.Driver.Completed(), stack.Driver.Failed(), time.Since(start).Truncate(time.Millisecond))

	ranking := stack.Framework.Manager().Map(core.ResourceMemory)
	fmt.Println(ranking.String())
	if top, ok := ranking.Top(); ok {
		fmt.Printf("top aging suspect: %s (score %.3f)\n", top.Name, top.Score)
	}
	if stack.Detectors != nil {
		if rep := stack.Detectors.Report(core.ResourceMemory); rep != nil {
			fmt.Println(rep.String())
			if top, ok := rep.Top(); ok {
				fmt.Printf("online verdict: %s aging on memory (slope %.4g/s since round %d)\n",
					top.Component, top.Score, top.FirstAlarmRound)
			} else {
				fmt.Println("online verdict: no component currently flagged on memory")
			}
		}
	}
	tte := stack.Framework.Manager().TimeToExhaustion()
	fmt.Printf("estimated time to heap exhaustion: %v\n", tte.Truncate(time.Second))

	holdOpen(*hold, *addr)
}

// runCluster is the -nodes N mode: a full cluster behind a balancer with
// the aggregator's bean on the management plane.
func runCluster(addr string, duration time.Duration, ebs int, leak string, leakSize, leakN int, seed uint64, scenario, leakNode string, nodes int, hold bool, transport string, batch, lanes, foldWorkers int, rejuvenate bool) {
	cfg := experiment.ClusterConfig{
		Nodes:       nodes,
		Seed:        seed,
		Mix:         eb.Shopping,
		IngestLanes: lanes,
		FoldWorkers: foldWorkers,
	}
	if rejuvenate {
		// Package defaults; HealthyWeight 1 matches the balancer's
		// registration weight so a re-admitted node is not over-weighted.
		cfg.Rejuv = &rejuv.Config{HealthyWeight: 1}
	}
	switch transport {
	case "inproc", "":
	case "gob":
		cfg.WireTransport = true
	case "binary":
		cfg.WireTransport = true
		cfg.WireCodec = cluster.CodecBinary
	default:
		log.Fatalf("unknown -transport %q (want inproc, gob or binary)", transport)
	}
	if batch > 1 {
		if transport != "binary" {
			log.Fatalf("-batch needs -transport binary (got %q)", transport)
		}
		cfg.WireBatchRounds = batch
		// A full batch lets the flushing node run `batch` epochs ahead of
		// buffering peers; widen the staleness window so none is evicted.
		cfg.StaleEpochs = 2 * batch
	}
	cs, err := experiment.NewClusterStack(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cs.Close()
	if leak != "" {
		if _, err := cs.InjectLeak(leakNode, leak, leakSize, leakN, seed); err != nil {
			log.Fatal(err)
		}
		log.Printf("injected %dB/N=%d memory leak into %s on %s", leakSize, leakN, leak, leakNode)
	}

	notifBuf := jmxhttp.NewNotificationBuffer(cs.Server, 0)
	defer notifBuf.Close()
	servePlane(addr, cs.Server, notifBuf)

	log.Printf("running %v of virtual time at %d EBs over %d nodes (%s scenario)",
		duration, ebs, nodes, scenario)
	start := time.Now()
	runScenario(cs.Driver, scenario, duration, ebs)
	if err := cs.Sync(); err != nil {
		log.Fatal(err)
	}
	log.Printf("done: %d interactions (%d failed) in %v wall time; session spread %v",
		cs.Driver.Completed(), cs.Driver.Failed(), time.Since(start).Truncate(time.Millisecond),
		cs.Balancer.Spread())

	var published, pubErrs, dropped int64
	for _, n := range cs.Nodes {
		f := n.Forwarder()
		published += f.Rounds()
		pubErrs += f.Errors()
		dropped += f.Dropped()
	}
	fmt.Printf("wire: %d rounds published, %d publish errors, %d dropped after retries\n",
		published, pubErrs, dropped)
	fmt.Printf("aggregator: %d rounds ingested, %d shed at the admission gate, %d notifications dropped\n",
		cs.Aggregator.TotalRounds(), cs.Aggregator.ShedRounds(), cs.Aggregator.DroppedNotifications())

	if cs.Rejuv != nil {
		st := cs.Rejuv.Stats()
		fmt.Printf("actuation: %d micro-reboots freed %dB, %d rollbacks, %d control losses, %d forced drains, %d cluster-wide vetoes\n",
			st.Rejuvenations, st.FreedBytes, st.Rollbacks, st.ControlLost, st.ForcedDrains, st.ClusterWideVetoes)
		for _, ev := range cs.Rejuv.History() {
			fmt.Printf("  epoch %4d  %-8s %s -> %s  %s\n", ev.Epoch, ev.Node, ev.From, ev.To, ev.Note)
		}
	}
	if rep := cs.Aggregator.Report(core.ResourceMemory); rep != nil {
		fmt.Println(rep.String())
		if top, ok := rep.Top(); ok {
			scope := "node-local"
			if top.ClusterWide {
				scope = "cluster-wide"
			}
			fmt.Printf("cluster verdict: %s aging on memory (%s, since epoch %d)\n",
				top.Pair(), scope, top.FirstEpoch)
		} else {
			fmt.Println("cluster verdict: no (node, component) pair currently flagged on memory")
		}
	}
	holdOpen(hold, addr)
}

// servePlane serves the JMX HTTP adapter for a management-plane server.
func servePlane(addr string, server *jmx.Server, buf *jmxhttp.NotificationBuffer) {
	go func() {
		display := addr
		if strings.HasPrefix(display, ":") {
			display = "localhost" + display
		}
		log.Printf("JMX HTTP adapter on %s (try: agingmon -url http://%s names)", addr, display)
		handler := jmxhttp.NewHandlerWithNotifications(server, buf)
		if err := http.ListenAndServe(addr, handler); err != nil {
			log.Fatalf("jmx adapter: %v", err)
		}
	}()
}

func holdOpen(hold bool, addr string) {
	if hold {
		log.Printf("holding; management plane stays on %s (Ctrl-C to exit)", addr)
		select {}
	}
}

// runScenario drives the chosen workload shape over the run duration.
func runScenario(driver *eb.Driver, scenario string, duration time.Duration, ebs int) {
	switch scenario {
	case "steady":
		driver.Run([]eb.Phase{{Duration: duration, EBs: ebs}})
	case "shift":
		third := duration / 3
		driver.RunMixed([]eb.MixedPhase{
			{Duration: third, EBs: ebs, Mix: eb.Browsing},
			{Duration: third, EBs: ebs, Mix: eb.Shopping},
			{Duration: duration - 2*third, EBs: 2 * ebs, Mix: eb.Ordering},
		})
	case "diurnal":
		profile := sim.DiurnalProfile(float64(ebs), float64(ebs)/2, duration)
		driver.Run(eb.ProfileSchedule(profile, duration, duration/12))
	case "burst":
		profile := sim.BurstProfile(float64(ebs), float64(ebs)*4, duration/3, duration/10)
		driver.Run(eb.ProfileSchedule(profile, duration, duration/30))
	default:
		log.Fatalf("unknown scenario %q (want steady, shift, diurnal or burst)", scenario)
	}
}

// Command tpcwsim runs the monitored TPC-W simulation with a configurable
// leak injection and serves the JMX management plane over HTTP while it
// runs, so cmd/agingmon (the external front-end) can interrogate the
// manager agent live.
//
// Usage:
//
//	tpcwsim [-addr :9990] [-duration 1h] [-ebs 50] [-leak tpcw.home]
//	        [-leaksize 102400] [-leakn 100] [-scenario steady] [-hold]
//
// The -scenario flag picks the workload shape the detectors are exposed
// to: steady (one flat phase), shift (the mix walks browsing → shopping →
// ordering), diurnal (a sinusoidal population cycle) or burst (a 4× flash
// crowd mid-run). With -detect (on by default) the streaming detectors
// run off every sampling round; watch them live with
//
//	agingmon -url http://localhost:9990 watch memory
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/eb"
	"repro/internal/experiment"
	"repro/internal/jmxhttp"
	"repro/internal/sim"
	"repro/internal/tpcw"
)

func main() {
	var (
		addr     = flag.String("addr", ":9990", "JMX HTTP adapter listen address")
		duration = flag.Duration("duration", time.Hour, "virtual experiment duration")
		ebs      = flag.Int("ebs", 50, "emulated browser population")
		leak     = flag.String("leak", tpcw.CompHome, "component to inject a memory leak into ('' disables)")
		leakSize = flag.Int("leaksize", 100<<10, "leak bytes per injection")
		leakN    = flag.Int("leakn", 100, "the paper's N: uniform [0,N] requests between injections")
		seed     = flag.Uint64("seed", 42, "random seed")
		scenario = flag.String("scenario", "steady", "workload shape: steady, shift, diurnal or burst")
		doDetect = flag.Bool("detect", true, "attach the streaming aging detectors")
		hold     = flag.Bool("hold", false, "keep serving the management plane after the run ends")
	)
	flag.Parse()

	stack, err := experiment.NewStack(experiment.StackConfig{
		Seed:      *seed,
		Monitored: true,
		Detect:    *doDetect,
		Mix:       eb.Shopping,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()
	if *leak != "" {
		if _, err := stack.InjectLeak(*leak, *leakSize, *leakN, *seed); err != nil {
			log.Fatal(err)
		}
		log.Printf("injected %dB/N=%d memory leak into %s", *leakSize, *leakN, *leak)
	}

	notifBuf := jmxhttp.NewNotificationBuffer(stack.Framework.Server(), 0)
	defer notifBuf.Close()
	go func() {
		log.Printf("JMX HTTP adapter on %s (try: agingmon -url http://localhost%s suspects)", *addr, *addr)
		handler := jmxhttp.NewHandlerWithNotifications(stack.Framework.Server(), notifBuf)
		if err := http.ListenAndServe(*addr, handler); err != nil {
			log.Fatalf("jmx adapter: %v", err)
		}
	}()

	log.Printf("running %v of virtual time at %d EBs (%s scenario)", *duration, *ebs, *scenario)
	start := time.Now()
	runScenario(stack, *scenario, *duration, *ebs)
	log.Printf("done: %d interactions (%d failed) in %v wall time",
		stack.Driver.Completed(), stack.Driver.Failed(), time.Since(start).Truncate(time.Millisecond))

	ranking := stack.Framework.Manager().Map(core.ResourceMemory)
	fmt.Println(ranking.String())
	if top, ok := ranking.Top(); ok {
		fmt.Printf("top aging suspect: %s (score %.3f)\n", top.Name, top.Score)
	}
	if stack.Detectors != nil {
		if rep := stack.Detectors.Report(core.ResourceMemory); rep != nil {
			fmt.Println(rep.String())
			if top, ok := rep.Top(); ok {
				fmt.Printf("online verdict: %s aging on memory (slope %.4g/s since round %d)\n",
					top.Component, top.Score, top.FirstAlarmRound)
			} else {
				fmt.Println("online verdict: no component currently flagged on memory")
			}
		}
	}
	tte := stack.Framework.Manager().TimeToExhaustion()
	fmt.Printf("estimated time to heap exhaustion: %v\n", tte.Truncate(time.Second))

	if *hold {
		log.Printf("holding; management plane stays on %s (Ctrl-C to exit)", *addr)
		select {}
	}
}

// runScenario drives the chosen workload shape over the run duration.
func runScenario(stack *experiment.Stack, scenario string, duration time.Duration, ebs int) {
	switch scenario {
	case "steady":
		stack.Driver.Run([]eb.Phase{{Duration: duration, EBs: ebs}})
	case "shift":
		third := duration / 3
		stack.Driver.RunMixed([]eb.MixedPhase{
			{Duration: third, EBs: ebs, Mix: eb.Browsing},
			{Duration: third, EBs: ebs, Mix: eb.Shopping},
			{Duration: duration - 2*third, EBs: 2 * ebs, Mix: eb.Ordering},
		})
	case "diurnal":
		profile := sim.DiurnalProfile(float64(ebs), float64(ebs)/2, duration)
		stack.Driver.Run(eb.ProfileSchedule(profile, duration, duration/12))
	case "burst":
		profile := sim.BurstProfile(float64(ebs), float64(ebs)*4, duration/3, duration/10)
		stack.Driver.Run(eb.ProfileSchedule(profile, duration, duration/30))
	default:
		log.Fatalf("unknown scenario %q (want steady, shift, diurnal or burst)", scenario)
	}
}

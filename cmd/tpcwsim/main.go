// Command tpcwsim runs the monitored TPC-W simulation with a configurable
// leak injection and serves the JMX management plane over HTTP while it
// runs, so cmd/agingmon (the external front-end) can interrogate the
// manager agent live.
//
// Usage:
//
//	tpcwsim [-addr :9990] [-duration 1h] [-ebs 50] [-leak tpcw.home]
//	        [-leaksize 102400] [-leakn 100] [-hold]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/eb"
	"repro/internal/experiment"
	"repro/internal/jmxhttp"
	"repro/internal/tpcw"
)

func main() {
	var (
		addr     = flag.String("addr", ":9990", "JMX HTTP adapter listen address")
		duration = flag.Duration("duration", time.Hour, "virtual experiment duration")
		ebs      = flag.Int("ebs", 50, "emulated browser population")
		leak     = flag.String("leak", tpcw.CompHome, "component to inject a memory leak into ('' disables)")
		leakSize = flag.Int("leaksize", 100<<10, "leak bytes per injection")
		leakN    = flag.Int("leakn", 100, "the paper's N: uniform [0,N] requests between injections")
		seed     = flag.Uint64("seed", 42, "random seed")
		hold     = flag.Bool("hold", false, "keep serving the management plane after the run ends")
	)
	flag.Parse()

	stack, err := experiment.NewStack(experiment.StackConfig{
		Seed:      *seed,
		Monitored: true,
		Mix:       eb.Shopping,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()
	if *leak != "" {
		if _, err := stack.InjectLeak(*leak, *leakSize, *leakN, *seed); err != nil {
			log.Fatal(err)
		}
		log.Printf("injected %dB/N=%d memory leak into %s", *leakSize, *leakN, *leak)
	}

	notifBuf := jmxhttp.NewNotificationBuffer(stack.Framework.Server(), 0)
	defer notifBuf.Close()
	go func() {
		log.Printf("JMX HTTP adapter on %s (try: agingmon -url http://localhost%s suspects)", *addr, *addr)
		handler := jmxhttp.NewHandlerWithNotifications(stack.Framework.Server(), notifBuf)
		if err := http.ListenAndServe(*addr, handler); err != nil {
			log.Fatalf("jmx adapter: %v", err)
		}
	}()

	log.Printf("running %v of virtual time at %d EBs (shopping mix)", *duration, *ebs)
	start := time.Now()
	stack.Driver.Run([]eb.Phase{{Duration: *duration, EBs: *ebs}})
	log.Printf("done: %d interactions (%d failed) in %v wall time",
		stack.Driver.Completed(), stack.Driver.Failed(), time.Since(start).Truncate(time.Millisecond))

	ranking := stack.Framework.Manager().Map(core.ResourceMemory)
	fmt.Println(ranking.String())
	if top, ok := ranking.Top(); ok {
		fmt.Printf("top aging suspect: %s (score %.3f)\n", top.Name, top.Score)
	}
	tte := stack.Framework.Manager().TimeToExhaustion()
	fmt.Printf("estimated time to heap exhaustion: %v\n", tte.Truncate(time.Second))

	if *hold {
		log.Printf("holding; management plane stays on %s (Ctrl-C to exit)", *addr)
		select {}
	}
}

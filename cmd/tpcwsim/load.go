package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/eb"
	"repro/internal/experiment"
	"repro/internal/servlet"
)

// loadOptions carries the -load flag set into runLoad.
type loadOptions struct {
	duration  time.Duration
	sessions  int
	shards    int
	arrival   string
	rate      float64
	backend   string
	drivers   int
	role      string
	coord     string
	index     int
	seed      uint64
	monitor   bool
	interval  time.Duration
	workers   int
	leak      string
	leakShard int
	leakSize  int
	leakN     int
	batch     int
	lanes     int
	foldWork  int
}

// runLoad is the -load mode: the million-session tier, either a single
// local process, one member of a wire-paced fleet, or the coordinator
// pacing that fleet.
func runLoad(opts loadOptions) {
	switch opts.role {
	case "local":
		if opts.drivers > 1 {
			runLoadLocalFleet(opts)
			return
		}
		runLoadLocal(opts)
	case "coordinator":
		runLoadCoordinator(opts)
	case "driver":
		runLoadDriver(opts)
	default:
		log.Fatalf("unknown -role %q (want local, coordinator or driver)", opts.role)
	}
}

// loadConfig translates the flag set into a LoadConfig for one driver
// process of a K-way fleet (index 0 of 1 in single-process mode).
func loadConfig(opts loadOptions, index, count int) experiment.LoadConfig {
	cfg := experiment.LoadConfig{
		Seed:        opts.seed,
		Sessions:    opts.sessions,
		Shards:      opts.shards,
		Mix:         eb.Shopping,
		DriverIndex: index,
		DriverCount: count,
	}
	switch opts.arrival {
	case "closed", "":
	case "open":
		cfg.OpenLoop = true
		cfg.Rate = opts.rate
	default:
		log.Fatalf("unknown -arrival %q (want closed or open)", opts.arrival)
	}
	switch opts.backend {
	case "model", "":
	case "container":
		cfg.Backend = experiment.BackendContainer
		if opts.workers > 0 {
			// Queue depth rides the worker count: the servlet default of
			// 500 was sized for the 50-worker testbed.
			cfg.Container = servlet.Config{Workers: opts.workers, QueueCapacity: 10 * opts.workers}
		}
	default:
		log.Fatalf("unknown -backend %q (want model or container)", opts.backend)
	}
	if opts.monitor {
		if opts.role != "local" || count > 1 {
			log.Fatal("-monitor needs the local single-driver role: each fleet member would fold its own partial aggregate")
		}
		cfg.Monitor = true
		cfg.MonitorInterval = opts.interval
		cfg.MonitorWire = true
		cfg.MonitorBatchRounds = opts.batch // 0 = LoadConfig's default of 8
		cfg.IngestLanes = opts.lanes
		cfg.FoldWorkers = opts.foldWork
		// The experiment tiers' scenario tuning: a 20-round window with
		// alarms allowed from round 6 — a CLI run is minutes of virtual
		// time, not the manager's default 20-minute window.
		cfg.Detect = detect.Config{Window: 20, MinSamples: 6, Consecutive: 3}
	}
	return cfg
}

func describeLoad(opts loadOptions) string {
	if opts.arrival == "open" {
		return fmt.Sprintf("open-loop %.0f sessions/s", opts.rate)
	}
	return fmt.Sprintf("closed-loop %d sessions", opts.sessions)
}

// runLoadLocal drives the whole population in this process.
func runLoadLocal(opts loadOptions) {
	ls, err := experiment.NewLoadStack(loadConfig(opts, 0, 1))
	if err != nil {
		log.Fatal(err)
	}
	defer ls.Close()
	if opts.monitor && opts.leakShard >= 0 && opts.leak != "" {
		if _, err := ls.InjectLeak(opts.leakShard, opts.leak, opts.leakSize, opts.leakN, opts.seed); err != nil {
			log.Fatal(err)
		}
		log.Printf("injected %dB/N=%d memory leak into %s on shard %d",
			opts.leakSize, opts.leakN, opts.leak, opts.leakShard)
	}
	log.Printf("load tier: %s over %d shard(s) for %v of virtual time",
		describeLoad(opts), ls.Driver.Shards(), opts.duration)
	start := time.Now()
	ls.Run(opts.duration)
	elapsed := time.Since(start)
	fmt.Printf("completed %d interactions (%d failed, %d arrivals shed) in %v wall time\n",
		ls.Driver.Completed(), ls.Driver.Failed(), ls.Driver.Dropped(),
		elapsed.Truncate(time.Millisecond))
	fmt.Printf("peak WIPS %d, completion checksum %#x\n", ls.PeakWIPS(), ls.Driver.Checksum())
	if opts.monitor {
		if err := ls.SyncMonitor(); err != nil {
			log.Fatalf("monitor sync: %v", err)
		}
		reportMonitor(ls, elapsed)
	}
}

// reportMonitor prints the aggregation-plane telemetry of a monitored
// load run: how many rounds the aggregator folded, how fast they
// arrived in wall time, and the verdict (fold) latency.
func reportMonitor(ls *experiment.LoadStack, elapsed time.Duration) {
	rounds := ls.Aggregator.TotalRounds()
	last, max := ls.Aggregator.FoldLatency()
	fmt.Printf("aggregation plane: %d rounds over %d epochs (%.1f rounds/s wall), verdict latency last=%v max=%v\n",
		rounds, ls.Aggregator.Epoch(), float64(rounds)/elapsed.Seconds(), last, max)
	rep := ls.Aggregator.Report(core.ResourceMemory)
	if rep == nil {
		fmt.Println("cluster verdict: no completed epoch")
		return
	}
	if top, ok := rep.Top(); ok {
		fmt.Printf("cluster verdict: %s aging on memory (since epoch %d)\n", top.Pair(), top.FirstEpoch)
	} else {
		fmt.Println("cluster verdict: no (shard, component) pair flagged on memory")
	}
}

// runLoadLocalFleet runs the K-way wire protocol in-process over pipes:
// K driver nodes and a coordinator, the deployment topology without the
// processes.
func runLoadLocalFleet(opts loadOptions) {
	k := opts.drivers
	coord := eb.NewLoadCoordinator(opts.duration, 0)
	conns := make([]net.Conn, k)
	errCh := make(chan error, k)
	stacks := make([]*experiment.LoadStack, k)
	for i := 0; i < k; i++ {
		ls, err := experiment.NewLoadStack(loadConfig(opts, i, k))
		if err != nil {
			log.Fatal(err)
		}
		defer ls.Close()
		stacks[i] = ls
		node := ls.Node(opts.duration)
		local, remote := net.Pipe()
		conns[i] = local
		go func() { errCh <- node.Serve(remote) }()
	}
	log.Printf("load tier: %s over %d in-process driver(s) x %d shard(s) for %v of virtual time",
		describeLoad(opts), k, opts.shards, opts.duration)
	start := time.Now()
	if err := coord.Run(conns); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if err := <-errCh; err != nil {
			log.Fatalf("driver node: %v", err)
		}
	}
	for _, conn := range conns {
		conn.Close()
	}
	elapsed := time.Since(start)
	fmt.Printf("fleet completed %d interactions (%d failed, %d arrivals shed) in %v wall time\n",
		coord.Completed(), coord.Failed(), coord.Dropped(), elapsed.Truncate(time.Millisecond))
	var peak uint32
	for _, v := range coord.WIPSBuckets() {
		if v > peak {
			peak = v
		}
	}
	fmt.Printf("peak WIPS %d, completion checksum %#x\n", peak, coord.Checksum())
}

// runLoadCoordinator listens for -drivers K fleet members and paces them
// through the run, printing merged telemetry at the end.
func runLoadCoordinator(opts loadOptions) {
	ln, err := net.Listen("tcp", opts.coord)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("load coordinator on %s, waiting for %d driver(s)", ln.Addr(), opts.drivers)
	conns := make([]net.Conn, 0, opts.drivers)
	for len(conns) < opts.drivers {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		conns = append(conns, conn)
		log.Printf("driver %d/%d connected from %s", len(conns), opts.drivers, conn.RemoteAddr())
	}
	coord := eb.NewLoadCoordinator(opts.duration, 0)
	start := time.Now()
	if err := coord.Run(conns); err != nil {
		log.Fatal(err)
	}
	for _, conn := range conns {
		conn.Close()
	}
	elapsed := time.Since(start)
	fmt.Printf("fleet completed %d interactions (%d failed, %d arrivals shed) in %v wall time\n",
		coord.Completed(), coord.Failed(), coord.Dropped(), elapsed.Truncate(time.Millisecond))
	var peak uint32
	for _, v := range coord.WIPSBuckets() {
		if v > peak {
			peak = v
		}
	}
	fmt.Printf("peak WIPS %d, completion checksum %#x\n", peak, coord.Checksum())
}

// runLoadDriver builds this process's share of the fleet and serves the
// coordinator's pacing protocol until FIN.
func runLoadDriver(opts loadOptions) {
	ls, err := experiment.NewLoadStack(loadConfig(opts, opts.index, opts.drivers))
	if err != nil {
		log.Fatal(err)
	}
	defer ls.Close()
	conn, err := net.Dial("tcp", opts.coord)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	log.Printf("driver %d/%d: %s over %d shard(s), paced by %s",
		opts.index, opts.drivers, describeLoad(opts), ls.Driver.Shards(), opts.coord)
	if err := ls.Node(opts.duration).Serve(conn); err != nil {
		log.Fatalf("driver: %v", err)
	}
	fmt.Printf("driver %d done: %d interactions (%d failed, %d shed), checksum %#x\n",
		opts.index, ls.Driver.Completed(), ls.Driver.Failed(), ls.Driver.Dropped(),
		ls.Driver.Checksum())
}

// Command experiments regenerates every table and figure of the paper's
// evaluation (plus the extension and ablation studies indexed in
// DESIGN.md) and prints the full reports with pass/fail verdicts.
//
// Usage:
//
//	experiments [-run all|T1,F3,F4,...] [-scale 1.0] [-seed 42] [-ebs 50] [-accuracy report.json]
//
// -scale 1.0 runs the paper's full one-hour scenarios in virtual time;
// smaller factors shorten them proportionally. -accuracy writes the
// machine-readable precision/recall/time-to-detect report built from the
// S-series scenarios' fault-injection ground truth (the scenario-matrix
// CI gate consumes it).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiment"
)

func main() {
	var (
		run       = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		scale     = flag.Float64("scale", 1.0, "time scale factor for scenario durations")
		seed      = flag.Uint64("seed", 42, "random seed")
		ebs       = flag.Int("ebs", 50, "emulated browsers for single-phase experiments")
		items     = flag.Int("items", 0, "TPC-W item scale (0 selects the package default)")
		customers = flag.Int("customers", 0, "TPC-W customer scale (0 selects the package default)")
		accuracy  = flag.String("accuracy", "", "write the S-series accuracy report (JSON) to this path")
	)
	flag.Parse()

	cfg := experiment.Config{TimeScale: *scale, Seed: *seed, EBs: *ebs, Items: *items, Customers: *customers}
	runners := map[string]func(experiment.Config) experiment.Result{
		"T1":  experiment.TableI,
		"F2":  experiment.Fig2,
		"F3":  experiment.Fig3,
		"F4":  experiment.Fig4,
		"F5":  experiment.Fig5,
		"F6":  experiment.Fig6,
		"F7":  experiment.Fig7,
		"E8":  experiment.E8CPUThreadLeaks,
		"E9":  experiment.E9PinpointCoupled,
		"E10": experiment.E10TimeToFailure,
		"E11": experiment.E11StrategyComparison,
		"A1":  experiment.A1MonitoringLevels,
		"A2":  experiment.A2SizingPolicies,
		"A3":  experiment.A3MixSensitivity,
		"S1":  experiment.S1WorkloadShift,
		"S2":  experiment.S2OnlineLeakDetection,
		"S3":  experiment.S3DiurnalCycle,
		"S4":  experiment.S4BurstWithLeak,
		"S5":  experiment.S5SingleNodeLeak,
		"S6":  experiment.S6UniformLeak,
		"S7":  experiment.S7NodeChurn,
		"S8":  experiment.S8SkewedBalancer,
		"S9":  experiment.S9PoolExhaustion,
		"S10": experiment.S10HandleLeak,
		"S11": experiment.S11LockContention,
		"S12": experiment.S12FragmentationBloat,
		"S13": experiment.S13StaleCacheDecay,
		"S14": experiment.S14NodeKill,
		"S15": experiment.S15TransportPartition,
		"S16": experiment.S16ClockSkew,
		"S17": experiment.S17RejuvenateSickReplica,
		"S18": experiment.S18FlappingDetectorHeld,
		"S19": experiment.S19ControlLossDuringDrain,
		"S20": experiment.S20KillAggregatorMidLeak,
		"S21": experiment.S21FailoverMidDrain,
		"S22": experiment.S22RoundStormOverload,
	}
	order := []string{"T1", "F2", "F3", "F4", "F5", "F6", "F7", "E8", "E9", "E10", "E11", "A1", "A2", "A3",
		"S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8", "S9", "S10", "S11", "S12", "S13", "S14", "S15", "S16",
		"S17", "S18", "S19", "S20", "S21", "S22"}

	var ids []string
	if *run == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s)\n", id, strings.Join(order, ","))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	failures := 0
	var verdicts []string
	var results []experiment.Result
	for _, id := range ids {
		fmt.Printf("running %s (scale %.2f)...\n", id, *scale)
		res := runners[id](cfg)
		fmt.Println(res.String())
		verdicts = append(verdicts, res.Verdict())
		results = append(results, res)
		if !res.Pass {
			failures++
		}
	}
	fmt.Println("==== summary ====")
	for _, v := range verdicts {
		fmt.Println(v)
	}
	if *accuracy != "" {
		report := experiment.BuildAccuracyReport(cfg, results)
		data, err := report.JSON()
		if err == nil {
			err = os.WriteFile(*accuracy, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing accuracy report: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(report.String())
		fmt.Printf("accuracy report written to %s\n", *accuracy)
	}
	if failures > 0 {
		fmt.Printf("%d of %d experiments did not reproduce\n", failures, len(ids))
		os.Exit(1)
	}
	fmt.Printf("all %d experiments reproduced\n", len(ids))
}

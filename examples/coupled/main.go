// Coupled demonstrates the related-work claim of the paper (§II): the
// Pinpoint-style failure-correlation baseline cannot separate components
// that are always used together, while the resource-component map can.
//
// The home servlet always invokes the Promo service. Home leaks memory and
// fails intermittently; both components appear in exactly the same request
// traces, so Pinpoint ties them — but only home retains memory.
//
//	go run ./examples/coupled [-minutes 30] [-ebs 50]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/tpcw"
)

func main() {
	minutes := flag.Int("minutes", 30, "virtual minutes to run")
	ebs := flag.Int("ebs", 50, "emulated browser population")
	flag.Parse()

	stack, err := repro.NewStack(repro.StackConfig{
		Seed:          42,
		Monitored:     true,
		CollectTraces: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()
	// Promote the Promo service to a monitored component.
	if err := stack.Framework.InstrumentComponent(tpcw.CompPromoSvc, stack.App.Promo); err != nil {
		log.Fatal(err)
	}
	if _, err := stack.InjectLeak(tpcw.CompHome, 100<<10, 50, 7); err != nil {
		log.Fatal(err)
	}
	// The aging component fails every 25th request.
	count := 0
	agingErr := errors.New("injected aging failure")
	fail := &repro.Aspect{
		Name:     "inject.fail.home",
		Order:    90,
		Pointcut: repro.MustPointcut("execution(tpcw.home.Service)"),
		Around: func(jp *repro.JoinPoint, proceed repro.Proceed) (any, error) {
			res, err := proceed()
			count++
			if err == nil && count%25 == 0 {
				return nil, agingErr
			}
			return res, err
		},
	}
	if err := stack.Weaver.Register(fail); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running %d virtual minutes at %d EBs...\n\n", *minutes, *ebs)
	stack.Driver.Run([]repro.Phase{{Duration: time.Duration(*minutes) * time.Minute, EBs: *ebs}})

	fmt.Println("Pinpoint (failure correlation over request traces):")
	fmt.Println(repro.PinpointBaseline{}.Analyze(stack.Traces.Traces()))
	fmt.Println("Resource-component map (memory):")
	fmt.Println(stack.Framework.Manager().Map(repro.ResourceMemory))
	fmt.Println("note how pinpoint scores tpcw.home and tpcw.svc.Promo identically —")
	fmt.Println("they share every trace — while the map isolates tpcw.home.")
}

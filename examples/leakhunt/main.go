// Leakhunt reproduces the paper's single-leak case study (Fig. 4) on the
// full TPC-W stack: a 100KB/N=100 memory leak is injected into the home
// servlet, emulated browsers shop for a virtual hour, and the manager's
// map names the guilty component.
//
//	go run ./examples/leakhunt [-minutes 60] [-ebs 50]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/tpcw"
)

func main() {
	minutes := flag.Int("minutes", 60, "virtual minutes to run")
	ebs := flag.Int("ebs", 50, "emulated browser population")
	flag.Parse()

	stack, err := repro.NewStack(repro.StackConfig{Seed: 42, Monitored: true})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	leak, err := stack.InjectLeak(tpcw.CompHome, 100<<10, 100, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running %d virtual minutes at %d EBs with a 100KB/N=100 leak in %s...\n",
		*minutes, *ebs, tpcw.CompHome)
	start := time.Now()
	stack.Driver.Run([]repro.Phase{{Duration: time.Duration(*minutes) * time.Minute, EBs: *ebs}})
	fmt.Printf("completed %d interactions in %v wall time; leak fired %d times (%d bytes)\n\n",
		stack.Driver.Completed(), time.Since(start).Truncate(time.Millisecond),
		leak.Injections(), leak.LeakedBytes())

	ranking := stack.Framework.Manager().Map(repro.ResourceMemory)
	fmt.Println(ranking)
	top, _ := ranking.Top()
	fmt.Printf("verdict: %s is the aging root cause (paper expects %s)\n", top.Name, tpcw.CompHome)
	fmt.Printf("time to heap exhaustion at current trend: %v\n",
		stack.Framework.Manager().TimeToExhaustion().Truncate(time.Second))
}

// Quickstart: attach the monitoring framework to a hand-rolled component,
// leak memory through it, and ask the manager agent who is guilty.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

// cartService is an application component the framework knows nothing
// about; embedding repro.LeakStore makes it fault-injectable, and any
// state it retains is measurable.
type cartService struct {
	repro.LeakStore
	orders int
}

func main() {
	// 1. A weaver intercepts component executions; the framework hangs
	//    its Aspect Component advice on it.
	weaver := repro.NewWeaver(nil)
	fw, err := repro.NewFramework(repro.FrameworkOptions{Weaver: weaver})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Instrument the component: its live object becomes measurable
	//    and an AC proxy appears on the MBean server.
	cart := &cartService{}
	if err := fw.InstrumentComponent("shop.cart", cart); err != nil {
		log.Fatal(err)
	}

	// 3. The component's invocation handle is woven — this is what the
	//    container does for every servlet automatically.
	checkout := weaver.Weave("shop.cart", "Checkout", func(args ...any) (any, error) {
		cart.orders++
		cart.Retain(32 << 10) // a 32KB leak per checkout: an aging bug
		return cart.orders, nil
	})

	// 4. Drive some traffic and let the manager sample.
	for i := 0; i < 50; i++ {
		if _, err := checkout(); err != nil {
			log.Fatal(err)
		}
		fw.Manager().Sample(fw.Clock().Now())
	}

	// 5. Ask for the resource-component map.
	ranking := fw.Manager().Map(repro.ResourceMemory)
	fmt.Println(ranking)
	top, _ := ranking.Top()
	fmt.Printf("the aging root cause is %s, retaining %d bytes\n",
		top.Name, repro.ObjectSizeOf(cart))

	// 6. Surgical recovery: micro-reboot just that component.
	freed := fw.MicroReboot(top.Name)
	fmt.Printf("micro-reboot reclaimed %d bytes\n", freed)
}

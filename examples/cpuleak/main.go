// Cpuleak demonstrates the paper's future-work direction: determining CPU
// and thread aging with the same framework. A CPU hog is injected into the
// search_results servlet and a thread leak into buy_confirm; the CPU and
// thread maps localise both.
//
//	go run ./examples/cpuleak [-minutes 30] [-ebs 50]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/faultinject"
	"repro/internal/tpcw"
)

func main() {
	minutes := flag.Int("minutes", 30, "virtual minutes to run")
	ebs := flag.Int("ebs", 50, "emulated browser population")
	flag.Parse()

	stack, err := repro.NewStack(repro.StackConfig{Seed: 42, Monitored: true})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	hog := &faultinject.CPUHog{
		Component: tpcw.CompSearchResults,
		Extra:     40 * time.Millisecond,
	}
	if err := stack.Weaver.Register(hog.Aspect()); err != nil {
		log.Fatal(err)
	}
	threads := &faultinject.ThreadLeak{
		Component: tpcw.CompBuyConfirm,
		N:         10,
		Agent:     stack.Framework.ThreadAgent(),
		Heap:      stack.Heap,
		Seed:      5,
	}
	if err := stack.Weaver.Register(threads.Aspect()); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running %d virtual minutes at %d EBs with a CPU hog in %s and a thread leak in %s...\n\n",
		*minutes, *ebs, tpcw.CompSearchResults, tpcw.CompBuyConfirm)
	stack.Driver.Run([]repro.Phase{{Duration: time.Duration(*minutes) * time.Minute, EBs: *ebs}})

	fmt.Println("CPU map (trend strategy):")
	fmt.Println(stack.Framework.Manager().Rank(repro.ResourceCPU, repro.TrendStrategy{}))
	fmt.Println("Thread map (paper strategy):")
	fmt.Println(stack.Framework.Manager().Map(repro.ResourceThreads))
	fmt.Printf("hog slowed %d requests; %d threads leaked and never terminated\n",
		hog.Hits(), threads.Leaked())
}

// Multileak reproduces the paper's multi-component experiments (Figs. 5-7):
// four components leak with different sizes and usage frequencies, and the
// composed map ranks them the way the paper's analysis predicts.
//
//	go run ./examples/multileak [-minutes 60] [-ebs 50] [-mixed]
//
// Without -mixed all four leak 100KB (Fig. 5/6); with -mixed the sizes are
// A=100KB, B=10KB, C=1MB, D=1MB (Fig. 7).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/tpcw"
)

func main() {
	minutes := flag.Int("minutes", 60, "virtual minutes to run")
	ebs := flag.Int("ebs", 50, "emulated browser population")
	mixed := flag.Bool("mixed", false, "use Fig. 7's mixed injection sizes")
	flag.Parse()

	stack, err := repro.NewStack(repro.StackConfig{Seed: 42, Monitored: true})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	const kb, mb = 1 << 10, 1 << 20
	sizes := map[string]int{
		tpcw.CompHome:          100 * kb, // A: heavily used
		tpcw.CompProductDetail: 100 * kb, // B: heavily used
		tpcw.CompBestSellers:   100 * kb, // C: moderately used
		tpcw.CompAdminConfirm:  100 * kb, // D: rarely used
	}
	if *mixed {
		sizes[tpcw.CompProductDetail] = 10 * kb
		sizes[tpcw.CompBestSellers] = 1 * mb
		sizes[tpcw.CompAdminConfirm] = 1 * mb
	}
	seed := uint64(11)
	for comp, size := range sizes {
		if _, err := stack.InjectLeak(comp, size, 100, seed); err != nil {
			log.Fatal(err)
		}
		seed += 31
		fmt.Printf("armed %7d-byte leak (N=100) in %s\n", size, comp)
	}

	fmt.Printf("\nrunning %d virtual minutes at %d EBs (shopping mix)...\n", *minutes, *ebs)
	stack.Driver.Run([]repro.Phase{{Duration: time.Duration(*minutes) * time.Minute, EBs: *ebs}})
	fmt.Printf("completed %d interactions\n\n", stack.Driver.Completed())

	ranking := stack.Framework.Manager().Map(repro.ResourceMemory)
	fmt.Println(ranking)
	if *mixed {
		fmt.Println("paper expectation (Fig. 7): best_sellers first (1MB), home second,")
		fmt.Println("product_detail third, admin_confirm flat despite its 1MB size.")
	} else {
		fmt.Println("paper expectation (Figs. 5/6): home and product_detail lead at similar")
		fmt.Println("rates, best_sellers trails, admin_confirm stays flat (never used enough).")
	}
}

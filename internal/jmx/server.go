package jmx

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
)

// Registration and lookup errors.
var (
	ErrNotRegistered     = errors.New("jmx: mbean not registered")
	ErrAlreadyRegistered = errors.New("jmx: mbean already registered")
	ErrPatternName       = errors.New("jmx: pattern names cannot be registered")
)

// Built-in notification types emitted by the server itself.
const (
	NotifRegistered   = "jmx.mbean.registered"
	NotifUnregistered = "jmx.mbean.unregistered"
)

// Notification is an event emitted through the MBeanServer, mirroring
// javax.management.Notification. The manager agent uses notifications to
// announce aging suspects to the front-end.
type Notification struct {
	Type    string
	Source  ObjectName
	Seq     uint64
	Time    time.Time
	Message string
	Data    any
}

// Listener receives notifications synchronously. Implementations must be
// fast and must not call back into the emitting server while handling.
type Listener func(Notification)

// Server is the Agent Level of the JMX architecture: the MBeanServer that
// registers probes, routes attribute/operation access and fans out
// notifications. It is safe for concurrent use.
type Server struct {
	clock sim.Clock

	mu        sync.RWMutex
	beans     map[string]DynamicMBean
	names     map[string]ObjectName
	listeners map[int]Listener
	nextLis   int
	seq       uint64
}

// NewServer creates an empty MBeanServer stamping notifications with clock
// (WallClock when nil).
func NewServer(clock sim.Clock) *Server {
	if clock == nil {
		clock = sim.WallClock{}
	}
	return &Server{
		clock:     clock,
		beans:     make(map[string]DynamicMBean),
		names:     make(map[string]ObjectName),
		listeners: make(map[int]Listener),
	}
}

// Register binds bean to name. Registering a pattern name or a duplicate
// name fails. A registration notification is emitted on success.
func (s *Server) Register(name ObjectName, bean DynamicMBean) error {
	if name.IsPattern() {
		return fmt.Errorf("%w: %s", ErrPatternName, name)
	}
	if bean == nil {
		return errors.New("jmx: nil mbean")
	}
	key := name.String()
	s.mu.Lock()
	if _, dup := s.beans[key]; dup {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrAlreadyRegistered, name)
	}
	s.beans[key] = bean
	s.names[key] = name
	s.mu.Unlock()
	s.Emit(Notification{Type: NotifRegistered, Source: name, Message: bean.Description()})
	return nil
}

// Unregister removes the binding for name and emits a notification.
func (s *Server) Unregister(name ObjectName) error {
	key := name.String()
	s.mu.Lock()
	if _, ok := s.beans[key]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotRegistered, name)
	}
	delete(s.beans, key)
	delete(s.names, key)
	s.mu.Unlock()
	s.Emit(Notification{Type: NotifUnregistered, Source: name})
	return nil
}

// IsRegistered reports whether name has a bound MBean.
func (s *Server) IsRegistered(name ObjectName) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.beans[name.String()]
	return ok
}

// Lookup returns the MBean bound to name.
func (s *Server) Lookup(name ObjectName) (DynamicMBean, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.beans[name.String()]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotRegistered, name)
	}
	return b, nil
}

// Count returns the number of registered MBeans.
func (s *Server) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.beans)
}

// Names returns all registered names in canonical sorted order.
func (s *Server) Names() []ObjectName {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.names))
	for k := range s.names {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ObjectName, len(keys))
	for i, k := range keys {
		out[i] = s.names[k]
	}
	return out
}

// Query returns the registered names matching pattern, in canonical order.
// A non-pattern name queries for exactly itself. This is how the AC Proxy
// and the Manager Agent discover each other and the monitoring agents.
func (s *Server) Query(pattern ObjectName) []ObjectName {
	var out []ObjectName
	for _, n := range s.Names() {
		if pattern.Matches(n) {
			out = append(out, n)
		}
	}
	return out
}

// GetAttribute reads an attribute of the named MBean.
func (s *Server) GetAttribute(name ObjectName, attr string) (any, error) {
	b, err := s.Lookup(name)
	if err != nil {
		return nil, err
	}
	return b.GetAttribute(attr)
}

// SetAttribute writes an attribute of the named MBean.
func (s *Server) SetAttribute(name ObjectName, attr string, value any) error {
	b, err := s.Lookup(name)
	if err != nil {
		return err
	}
	return b.SetAttribute(attr, value)
}

// Invoke calls an operation on the named MBean.
func (s *Server) Invoke(name ObjectName, op string, args ...any) (any, error) {
	b, err := s.Lookup(name)
	if err != nil {
		return nil, err
	}
	return b.Invoke(op, args...)
}

// AddListener subscribes fn to all notifications and returns an id for
// RemoveListener.
func (s *Server) AddListener(fn Listener) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextLis
	s.nextLis++
	s.listeners[id] = fn
	return id
}

// RemoveListener unsubscribes the listener with the given id.
func (s *Server) RemoveListener(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.listeners, id)
}

// Emit stamps n with a sequence number and timestamp and delivers it to all
// listeners synchronously. MBeans use it to broadcast their own events.
func (s *Server) Emit(n Notification) {
	s.mu.Lock()
	s.seq++
	n.Seq = s.seq
	n.Time = s.clock.Now()
	fns := make([]Listener, 0, len(s.listeners))
	ids := make([]int, 0, len(s.listeners))
	for id := range s.listeners {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fns = append(fns, s.listeners[id])
	}
	s.mu.Unlock()
	for _, fn := range fns {
		fn(n)
	}
}

// Package jmx reimplements the slice of Java Management Extensions the
// paper's architecture relies on: ObjectNames, dynamic MBeans, an
// MBeanServer registry with attribute/operation dispatch, pattern queries,
// and notifications. The JMX layer is what decouples the Aspect Components
// from the Monitoring Agents and lets the Manager Agent discover probes at
// runtime without code changes — that architectural property is preserved
// here even though the implementation is pure Go.
package jmx

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/glob"
)

// ObjectName identifies an MBean as "domain:key=value,key=value". Names are
// canonicalised (keys sorted) so equal names compare equal as strings. A
// name containing "*" wildcards in its domain or property values, or the
// property wildcard ",*", is a pattern usable in queries.
type ObjectName struct {
	domain   string
	keys     []string // sorted
	props    map[string]string
	propWild bool // pattern allows additional properties
}

// ErrBadObjectName reports a malformed object name string.
var ErrBadObjectName = errors.New("jmx: malformed object name")

// ParseObjectName parses s into an ObjectName.
func ParseObjectName(s string) (ObjectName, error) {
	domain, rest, ok := strings.Cut(s, ":")
	if !ok || domain == "" || rest == "" {
		return ObjectName{}, fmt.Errorf("%w: %q", ErrBadObjectName, s)
	}
	n := ObjectName{domain: domain, props: make(map[string]string)}
	for _, part := range strings.Split(rest, ",") {
		part = strings.TrimSpace(part)
		if part == "*" {
			n.propWild = true
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok || k == "" || v == "" {
			return ObjectName{}, fmt.Errorf("%w: property %q in %q", ErrBadObjectName, part, s)
		}
		if _, dup := n.props[k]; dup {
			return ObjectName{}, fmt.Errorf("%w: duplicate key %q in %q", ErrBadObjectName, k, s)
		}
		n.props[k] = v
		n.keys = append(n.keys, k)
	}
	if len(n.props) == 0 && !n.propWild {
		return ObjectName{}, fmt.Errorf("%w: no properties in %q", ErrBadObjectName, s)
	}
	sort.Strings(n.keys)
	return n, nil
}

// MustObjectName parses s and panics on error; for compile-time constants.
func MustObjectName(s string) ObjectName {
	n, err := ParseObjectName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// Domain returns the domain part of the name.
func (n ObjectName) Domain() string { return n.domain }

// Get returns the value of the property key ("" when absent).
func (n ObjectName) Get(key string) string { return n.props[key] }

// Keys returns the sorted property keys.
func (n ObjectName) Keys() []string { return append([]string(nil), n.keys...) }

// String renders the canonical form: sorted properties, ",*" last.
func (n ObjectName) String() string {
	var b strings.Builder
	b.WriteString(n.domain)
	b.WriteByte(':')
	for i, k := range n.keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(n.props[k])
	}
	if n.propWild {
		if len(n.keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('*')
	}
	return b.String()
}

// IsPattern reports whether the name contains wildcards and therefore can
// only be used in queries, not registrations.
func (n ObjectName) IsPattern() bool {
	if n.propWild || strings.Contains(n.domain, "*") {
		return true
	}
	for _, v := range n.props {
		if strings.Contains(v, "*") {
			return true
		}
	}
	return false
}

// Matches reports whether the concrete name other matches pattern n.
// Matching follows JMX semantics: the domain is glob-matched, every
// property in the pattern must be present with a glob-matching value, and
// extra properties in other are allowed only when the pattern carries the
// ",*" property wildcard.
func (n ObjectName) Matches(other ObjectName) bool {
	if !glob.Match(n.domain, other.domain) {
		return false
	}
	for k, pv := range n.props {
		ov, ok := other.props[k]
		if !ok || !glob.Match(pv, ov) {
			return false
		}
	}
	if !n.propWild && len(other.props) != len(n.props) {
		return false
	}
	return true
}

// Equal reports whether two names are identical (canonical comparison).
func (n ObjectName) Equal(other ObjectName) bool {
	return n.String() == other.String()
}

package jmx

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by attribute and operation dispatch.
var (
	ErrNoSuchAttribute = errors.New("jmx: no such attribute")
	ErrNoSuchOperation = errors.New("jmx: no such operation")
	ErrReadOnly        = errors.New("jmx: attribute is read-only")
)

// DynamicMBean is the management interface every probe, aspect proxy and
// manager exposes. It mirrors javax.management.DynamicMBean: attribute
// get/set and operation invocation by name, plus self-description.
type DynamicMBean interface {
	// Description returns a one-line human description of the bean.
	Description() string
	// AttributeNames lists readable attributes in sorted order.
	AttributeNames() []string
	// GetAttribute reads one attribute.
	GetAttribute(name string) (any, error)
	// SetAttribute writes one attribute.
	SetAttribute(name string, value any) error
	// OperationNames lists invocable operations in sorted order.
	OperationNames() []string
	// Invoke calls one operation.
	Invoke(op string, args ...any) (any, error)
}

// Bean is a DynamicMBean assembled from getter/setter/operation functions.
// It is the Go analogue of a StandardMBean and is how every agent in this
// reproduction exposes itself. A Bean is safe for concurrent use; the
// registered functions must be safe themselves.
type Bean struct {
	mu    sync.RWMutex
	desc  string
	attrs map[string]*beanAttr
	ops   map[string]*beanOp
}

type beanAttr struct {
	get  func() any
	set  func(any) error
	desc string
}

type beanOp struct {
	invoke func(args ...any) (any, error)
	desc   string
}

// NewBean creates an empty bean with the given description.
func NewBean(description string) *Bean {
	return &Bean{
		desc:  description,
		attrs: make(map[string]*beanAttr),
		ops:   make(map[string]*beanOp),
	}
}

// Attr registers a read-only attribute backed by get. It returns the bean
// for chaining.
func (b *Bean) Attr(name, desc string, get func() any) *Bean {
	return b.AttrRW(name, desc, get, nil)
}

// AttrRW registers an attribute with a getter and an optional setter (nil
// means read-only).
func (b *Bean) AttrRW(name, desc string, get func() any, set func(any) error) *Bean {
	if get == nil {
		panic("jmx: attribute without getter")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.attrs[name]; dup {
		panic(fmt.Sprintf("jmx: duplicate attribute %q", name))
	}
	b.attrs[name] = &beanAttr{get: get, set: set, desc: desc}
	return b
}

// Op registers an operation.
func (b *Bean) Op(name, desc string, invoke func(args ...any) (any, error)) *Bean {
	if invoke == nil {
		panic("jmx: operation without body")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.ops[name]; dup {
		panic(fmt.Sprintf("jmx: duplicate operation %q", name))
	}
	b.ops[name] = &beanOp{invoke: invoke, desc: desc}
	return b
}

// Description implements DynamicMBean.
func (b *Bean) Description() string { return b.desc }

// AttributeNames implements DynamicMBean.
func (b *Bean) AttributeNames() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.attrs))
	for k := range b.attrs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// AttributeDescription returns the doc string of an attribute.
func (b *Bean) AttributeDescription(name string) string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if a, ok := b.attrs[name]; ok {
		return a.desc
	}
	return ""
}

// GetAttribute implements DynamicMBean.
func (b *Bean) GetAttribute(name string) (any, error) {
	b.mu.RLock()
	a, ok := b.attrs[name]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchAttribute, name)
	}
	return a.get(), nil
}

// SetAttribute implements DynamicMBean.
func (b *Bean) SetAttribute(name string, value any) error {
	b.mu.RLock()
	a, ok := b.attrs[name]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchAttribute, name)
	}
	if a.set == nil {
		return fmt.Errorf("%w: %q", ErrReadOnly, name)
	}
	return a.set(value)
}

// OperationNames implements DynamicMBean.
func (b *Bean) OperationNames() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.ops))
	for k := range b.ops {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// OperationDescription returns the doc string of an operation.
func (b *Bean) OperationDescription(name string) string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if o, ok := b.ops[name]; ok {
		return o.desc
	}
	return ""
}

// Invoke implements DynamicMBean.
func (b *Bean) Invoke(op string, args ...any) (any, error) {
	b.mu.RLock()
	o, ok := b.ops[op]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchOperation, op)
	}
	return o.invoke(args...)
}

var _ DynamicMBean = (*Bean)(nil)

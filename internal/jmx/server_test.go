package jmx

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

func newTestBean(desc string) (*Bean, *int) {
	v := new(int)
	b := NewBean(desc).
		AttrRW("Value", "the value", func() any { return *v }, func(x any) error {
			i, ok := x.(int)
			if !ok {
				return errors.New("want int")
			}
			*v = i
			return nil
		}).
		Attr("Doubled", "twice the value", func() any { return 2 * *v }).
		Op("Reset", "set value to zero", func(args ...any) (any, error) {
			old := *v
			*v = 0
			return old, nil
		})
	return b, v
}

func TestBeanAttributes(t *testing.T) {
	b, _ := newTestBean("test")
	if got := b.AttributeNames(); len(got) != 2 || got[0] != "Doubled" || got[1] != "Value" {
		t.Fatalf("AttributeNames = %v", got)
	}
	if err := b.SetAttribute("Value", 21); err != nil {
		t.Fatal(err)
	}
	got, err := b.GetAttribute("Doubled")
	if err != nil || got.(int) != 42 {
		t.Fatalf("Doubled = %v, %v", got, err)
	}
	if err := b.SetAttribute("Doubled", 1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("set read-only: %v", err)
	}
	if _, err := b.GetAttribute("Nope"); !errors.Is(err, ErrNoSuchAttribute) {
		t.Fatalf("get missing: %v", err)
	}
	if err := b.SetAttribute("Nope", 1); !errors.Is(err, ErrNoSuchAttribute) {
		t.Fatalf("set missing: %v", err)
	}
	if d := b.AttributeDescription("Value"); d != "the value" {
		t.Fatalf("description = %q", d)
	}
	if d := b.AttributeDescription("Nope"); d != "" {
		t.Fatalf("missing description = %q", d)
	}
}

func TestBeanOperations(t *testing.T) {
	b, v := newTestBean("test")
	*v = 9
	out, err := b.Invoke("Reset")
	if err != nil || out.(int) != 9 || *v != 0 {
		t.Fatalf("Reset = %v, %v, v=%d", out, err, *v)
	}
	if _, err := b.Invoke("Nope"); !errors.Is(err, ErrNoSuchOperation) {
		t.Fatalf("missing op: %v", err)
	}
	if got := b.OperationNames(); len(got) != 1 || got[0] != "Reset" {
		t.Fatalf("OperationNames = %v", got)
	}
	if d := b.OperationDescription("Reset"); d == "" {
		t.Fatal("operation description empty")
	}
}

func TestBeanBuilderPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil getter": func() { NewBean("x").Attr("A", "", nil) },
		"dup attr": func() {
			b := NewBean("x")
			b.Attr("A", "", func() any { return 1 })
			b.Attr("A", "", func() any { return 2 })
		},
		"nil op": func() { NewBean("x").Op("O", "", nil) },
		"duplicate op": func() {
			b := NewBean("x")
			op := func(...any) (any, error) { return nil, nil }
			b.Op("O", "", op)
			b.Op("O", "", op)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestServerRegisterLookup(t *testing.T) {
	s := NewServer(nil)
	b, _ := newTestBean("bean A")
	name := MustObjectName("test:name=A")
	if err := s.Register(name, b); err != nil {
		t.Fatal(err)
	}
	if !s.IsRegistered(name) {
		t.Fatal("IsRegistered false after register")
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d", s.Count())
	}
	got, err := s.Lookup(name)
	if err != nil || got != DynamicMBean(b) {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if err := s.Register(name, b); !errors.Is(err, ErrAlreadyRegistered) {
		t.Fatalf("duplicate register: %v", err)
	}
	if err := s.Unregister(name); err != nil {
		t.Fatal(err)
	}
	if err := s.Unregister(name); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("double unregister: %v", err)
	}
}

func TestServerRejectsPatternAndNil(t *testing.T) {
	s := NewServer(nil)
	if err := s.Register(MustObjectName("d:*"), NewBean("x")); !errors.Is(err, ErrPatternName) {
		t.Fatalf("pattern register: %v", err)
	}
	if err := s.Register(MustObjectName("d:a=1"), nil); err == nil {
		t.Fatal("nil bean registered")
	}
}

func TestServerDispatch(t *testing.T) {
	s := NewServer(nil)
	b, v := newTestBean("bean")
	name := MustObjectName("test:name=A")
	if err := s.Register(name, b); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAttribute(name, "Value", 5); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.GetAttribute(name, "Value"); got.(int) != 5 {
		t.Fatalf("GetAttribute = %v", got)
	}
	if _, err := s.Invoke(name, "Reset"); err != nil {
		t.Fatal(err)
	}
	if *v != 0 {
		t.Fatal("Invoke did not reach bean")
	}
	missing := MustObjectName("test:name=B")
	if _, err := s.GetAttribute(missing, "Value"); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("missing bean get: %v", err)
	}
	if err := s.SetAttribute(missing, "Value", 1); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("missing bean set: %v", err)
	}
	if _, err := s.Invoke(missing, "Reset"); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("missing bean invoke: %v", err)
	}
}

func TestServerQuery(t *testing.T) {
	s := NewServer(nil)
	for _, n := range []string{
		"aging:type=Component,name=A",
		"aging:type=Component,name=B",
		"aging:type=Agent,name=Memory",
		"other:type=Component,name=C",
	} {
		if err := s.Register(MustObjectName(n), NewBean(n)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Query(MustObjectName("aging:type=Component,*"))
	if len(got) != 2 {
		t.Fatalf("Query components = %v", got)
	}
	if got[0].Get("name") != "A" || got[1].Get("name") != "B" {
		t.Fatalf("Query order = %v", got)
	}
	if all := s.Query(MustObjectName("*:*")); len(all) != 4 {
		t.Fatalf("Query all = %d", len(all))
	}
	if one := s.Query(MustObjectName("aging:type=Agent,name=Memory")); len(one) != 1 {
		t.Fatalf("exact query = %v", one)
	}
}

func TestServerNotifications(t *testing.T) {
	clock := sim.NewVirtualClock()
	s := NewServer(clock)
	var got []Notification
	id := s.AddListener(func(n Notification) { got = append(got, n) })
	name := MustObjectName("test:name=A")
	if err := s.Register(name, NewBean("the bean")); err != nil {
		t.Fatal(err)
	}
	if err := s.Unregister(name); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("notifications = %d, want 2", len(got))
	}
	if got[0].Type != NotifRegistered || got[1].Type != NotifUnregistered {
		t.Fatalf("types = %v, %v", got[0].Type, got[1].Type)
	}
	if got[0].Seq >= got[1].Seq {
		t.Fatal("sequence numbers not increasing")
	}
	if !got[0].Time.Equal(sim.Epoch) {
		t.Fatalf("notification time = %v", got[0].Time)
	}
	s.RemoveListener(id)
	s.Emit(Notification{Type: "custom"})
	if len(got) != 2 {
		t.Fatal("removed listener still invoked")
	}
}

func TestServerNamesSorted(t *testing.T) {
	s := NewServer(nil)
	for _, n := range []string{"d:name=C", "d:name=A", "d:name=B"} {
		if err := s.Register(MustObjectName(n), NewBean("")); err != nil {
			t.Fatal(err)
		}
	}
	names := s.Names()
	if names[0].Get("name") != "A" || names[2].Get("name") != "C" {
		t.Fatalf("Names = %v", names)
	}
}

func TestServerConcurrentAccess(t *testing.T) {
	s := NewServer(nil)
	var v atomic.Int64
	b := NewBean("bean").AttrRW("Value", "",
		func() any { return int(v.Load()) },
		func(x any) error { v.Store(int64(x.(int))); return nil })
	name := MustObjectName("test:name=A")
	if err := s.Register(name, b); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				switch i % 4 {
				case 0:
					_ = s.SetAttribute(name, "Value", j)
				case 1:
					_, _ = s.GetAttribute(name, "Value")
				case 2:
					s.Query(MustObjectName("test:*"))
				case 3:
					s.Emit(Notification{Type: "tick"})
				}
			}
		}(i)
	}
	wg.Wait()
}

package jmx

import (
	"testing"
	"testing/quick"
)

func TestParseObjectName(t *testing.T) {
	n, err := ParseObjectName("aging:type=Component,name=A")
	if err != nil {
		t.Fatal(err)
	}
	if n.Domain() != "aging" || n.Get("type") != "Component" || n.Get("name") != "A" {
		t.Fatalf("parsed %+v", n)
	}
}

func TestCanonicalOrdering(t *testing.T) {
	a := MustObjectName("d:b=2,a=1")
	b := MustObjectName("d:a=1,b=2")
	if a.String() != b.String() {
		t.Fatalf("canonical forms differ: %q vs %q", a, b)
	}
	if !a.Equal(b) {
		t.Fatal("Equal false for canonical-equal names")
	}
	if a.String() != "d:a=1,b=2" {
		t.Fatalf("canonical = %q", a.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"", "nodomain", ":a=1", "d:", "d:novalue", "d:k=", "d:=v",
		"d:a=1,a=2", // duplicate key
	} {
		if _, err := ParseObjectName(s); err == nil {
			t.Errorf("ParseObjectName(%q) succeeded, want error", s)
		}
	}
}

func TestMustObjectNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustObjectName did not panic on bad input")
		}
	}()
	MustObjectName("bad")
}

func TestIsPattern(t *testing.T) {
	cases := map[string]bool{
		"d:a=1":        false,
		"d:a=*":        true,
		"*:a=1":        true,
		"d:*":          true,
		"d:a=1,*":      true,
		"aging:name=A": false,
	}
	for s, want := range cases {
		if got := MustObjectName(s).IsPattern(); got != want {
			t.Errorf("IsPattern(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestMatches(t *testing.T) {
	target := MustObjectName("aging:type=Component,name=TPCW_home")
	cases := map[string]bool{
		"aging:type=Component,name=TPCW_home": true,
		"aging:type=Component,*":              true,
		"aging:*":                             true,
		"*:*":                                 true,
		"aging:type=Component":                false, // extra props, no wildcard
		"aging:type=Agent,*":                  false,
		"other:*":                             false,
		"aging:name=TPCW_*,*":                 true,
		"aging:name=*home,*":                  true,
		"ag*:*":                               true,
		"aging:name=TPCW_search,*":            false,
	}
	for pat, want := range cases {
		if got := MustObjectName(pat).Matches(target); got != want {
			t.Errorf("%q.Matches(target) = %v, want %v", pat, got, want)
		}
	}
}

func TestMatchesRequiresAllPatternProps(t *testing.T) {
	pat := MustObjectName("d:a=1,b=2,*")
	if pat.Matches(MustObjectName("d:a=1")) {
		t.Fatal("pattern with b=2 matched target lacking b")
	}
}

func TestKeysCopy(t *testing.T) {
	n := MustObjectName("d:a=1,b=2")
	ks := n.Keys()
	ks[0] = "zz"
	if n.Keys()[0] != "a" {
		t.Fatal("Keys leaked internal storage")
	}
}

func TestParseRoundTrip(t *testing.T) {
	// Property: canonical strings reparse to an equal name.
	f := func(a, b uint8) bool {
		n := MustObjectName("dom:k1=v" + string(rune('a'+a%26)) + ",k2=v" + string(rune('a'+b%26)))
		re, err := ParseObjectName(n.String())
		return err == nil && re.Equal(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelfMatch(t *testing.T) {
	// Property: every concrete name matches itself.
	names := []string{
		"aging:type=Component,name=A",
		"d:a=1",
		"monitoring:agent=Memory,resource=heap",
	}
	for _, s := range names {
		n := MustObjectName(s)
		if !n.Matches(n) {
			t.Errorf("%q does not match itself", s)
		}
	}
}

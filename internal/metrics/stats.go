package metrics

import (
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary over vs. An empty sample yields the zero
// Summary.
func Summarize(vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	var w Welford
	mn, mx := vs[0], vs[0]
	for _, v := range vs {
		w.Add(v)
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	var med float64
	n := len(sorted)
	if n%2 == 1 {
		med = sorted[n/2]
	} else {
		med = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return Summary{N: n, Mean: w.Mean(), Std: w.Std(), Min: mn, Max: mx, Median: med}
}

// Welford is a numerically stable online mean/variance accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds v into the accumulator.
func (w *Welford) Add(v float64) {
	w.n++
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance (0 for fewer than two observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// LinReg holds an ordinary-least-squares fit y = Intercept + Slope*x.
type LinReg struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// FitLine fits a least-squares line through (xs[i], ys[i]). It requires at
// least two points; with fewer it returns a zero fit with N recorded. The
// manager uses it to estimate per-component memory growth rates, which is
// also how time-to-exhaustion is extrapolated.
func FitLine(xs, ys []float64) LinReg {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	out := LinReg{N: n}
	if n < 2 {
		return out
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return out
	}
	out.Slope = sxy / sxx
	out.Intercept = my - out.Slope*mx
	if syy == 0 {
		out.R2 = 1 // constant y exactly fit by the horizontal line
	} else {
		out.R2 = (sxy * sxy) / (sxx * syy)
	}
	return out
}

// FitSeries fits a line through a series with x in seconds since the first
// observation, so Slope is units-per-second.
func FitSeries(pts []Point) LinReg {
	if len(pts) == 0 {
		return LinReg{}
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	t0 := pts[0].T
	for i, p := range pts {
		xs[i] = p.T.Sub(t0).Seconds()
		ys[i] = p.V
	}
	return FitLine(xs, ys)
}

package metrics

import (
	"slices"
	"sort"
)

// SlopeStore maintains the sorted multiset of pairwise slopes of a sliding
// window, so Sen's slope — the median of that multiset — reads in O(1)
// instead of the O(n² log n) collect-and-sort of the batch SenSlope. The
// online trend detector (internal/detect) owns one per component: when a
// sample enters the window it inserts the n-1 slopes the sample forms with
// the survivors, and when a sample is evicted it removes the n-1 slopes
// that sample participated in. Each insert or remove is a binary search
// plus a memmove over the slope buffer — for the default window of 40 that
// buffer is 780 float64s, small enough that the memmove is cheaper than a
// single map operation.
//
// The store is exact, not approximate: it holds the same multiset the
// batch estimator would collect, so Median returns bit-identical results
// to SenSlope over the same window (the detect test suite pins this
// sample-for-sample). Inserting NaN is a caller bug — binary search over
// a slice with NaNs is meaningless — and pairs with dx == 0 must be
// skipped by the caller, mirroring the batch estimator.
//
// Not safe for concurrent use; the single-owner contract of the online
// detectors covers it.
type SlopeStore struct {
	sorted  []float64
	scratch []float64 // swap buffer for Update's merge pass
}

// NewSlopeStore returns a store pre-sized for a window of n samples, so
// steady-state maintenance never grows the buffer. The capacity is
// n·(n-1)/2 + (n-1): Update's merge pass peaks at the full pair count
// plus one push's insertions before the matching removals land.
func NewSlopeStore(window int) *SlopeStore {
	if window < 2 {
		window = 2
	}
	peak := window*(window-1)/2 + window - 1
	return &SlopeStore{
		sorted:  make([]float64, 0, peak),
		scratch: make([]float64, 0, peak),
	}
}

// Len returns the number of slopes held.
func (s *SlopeStore) Len() int { return len(s.sorted) }

// Reset discards every slope but keeps the buffer.
func (s *SlopeStore) Reset() { s.sorted = s.sorted[:0] }

// Insert adds one slope to the multiset.
func (s *SlopeStore) Insert(v float64) {
	i := sort.SearchFloat64s(s.sorted, v)
	s.sorted = append(s.sorted, 0)
	copy(s.sorted[i+1:], s.sorted[i:])
	s.sorted[i] = v
}

// Remove deletes one instance of v from the multiset. It reports whether
// the value was present; removing an absent value is a maintenance bug in
// the caller (an evicted pair whose slope was never inserted).
func (s *SlopeStore) Remove(v float64) bool {
	i := sort.SearchFloat64s(s.sorted, v)
	if i >= len(s.sorted) || s.sorted[i] != v {
		return false
	}
	s.sorted = append(s.sorted[:i], s.sorted[i+1:]...)
	return true
}

// Update applies one window step as a batch: every slope in removals
// leaves the multiset (one instance each; absent values are ignored) and
// every slope in inserts enters it. Both argument slices are sorted in
// place. Where per-element Insert/Remove each pay an O(n) memmove — 2·W
// of them per window step — Update is a single merge pass over the slope
// buffer, which for the default window is one 6 KB sequential copy. This
// is the entry point the online trend detector uses every push.
func (s *SlopeStore) Update(removals, inserts []float64) {
	slices.Sort(removals)
	slices.Sort(inserts)
	src := s.sorted
	out := s.scratch[:cap(s.scratch)]
	if need := len(src) + len(inserts); cap(out) < need {
		out = make([]float64, need)
	}
	k, i, r, ins := 0, 0, 0, 0
	n := len(src)
	for r < len(removals) || ins < len(inserts) {
		// The next event; removals fire before equal-valued inserts so a
		// remove+insert of the same value nets out instead of drifting.
		var ev float64
		removal := false
		if r < len(removals) && (ins >= len(inserts) || removals[r] <= inserts[ins]) {
			ev, removal = removals[r], true
		} else {
			ev = inserts[ins]
		}
		// Copy the untouched run strictly below the event value. This
		// tight loop is the whole cost of the pass; everything else is
		// O(changes).
		for i < n && src[i] < ev {
			out[k] = src[i]
			k++
			i++
		}
		if removal {
			if i < n && src[i] == ev {
				i++ // drop exactly one instance; absent values are ignored
			}
			r++
		} else {
			out[k] = ev
			k++
			ins++
		}
	}
	k += copy(out[k:], src[i:])
	s.scratch = src
	s.sorted = out[:k]
}

// Median returns the median slope with the same convention as SenSlope:
// the middle element for odd counts, the mean of the two middle elements
// for even counts, and 0 for an empty store.
func (s *SlopeStore) Median() float64 {
	n := len(s.sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s.sorted[n/2]
	}
	return (s.sorted[n/2-1] + s.sorted[n/2]) / 2
}

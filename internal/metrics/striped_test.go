package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestStripedCounterConcurrent(t *testing.T) {
	c := NewStripedCounter()
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
			c.Add(5)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*(per+5) {
		t.Fatalf("Value = %d, want %d", got, goroutines*(per+5))
	}
}

func TestStripedCounterNegativeAddPanics(t *testing.T) {
	c := NewStripedCounter()
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestStripedGaugeConcurrent(t *testing.T) {
	g := NewStripedGauge()
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				g.Add(2)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != goroutines*per {
		t.Fatalf("Value = %v, want %d", got, goroutines*per)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	g.Set(100)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 4100 {
		t.Fatalf("Gauge = %v, want 4100", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g%4) + 0.5)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count = %d, want %d", got, goroutines*per)
	}
	if mean := h.Mean(); mean != 2.0 {
		t.Fatalf("Mean = %v, want 2.0", mean)
	}
	// q=1 interpolates to the top of the winning (2,4] bucket.
	if q := h.Quantile(1); q != 4 {
		t.Fatalf("Quantile(1) = %v, want 4", q)
	}
}

func TestRateWindowConcurrentObserve(t *testing.T) {
	r := NewRateWindow(time.Minute)
	now := at(30)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Observe(now)
			}
		}()
	}
	wg.Wait()
	if got := r.Count(at(31)); got != 8000 {
		t.Fatalf("Count = %d, want 8000", got)
	}
}

func TestSeriesConcurrentAppendAndRead(t *testing.T) {
	s := NewSeries("x")
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers spin over snapshots while writers append at one instant per
	// step (equal timestamps are legal), exercising the lock-free
	// committed-prefix protocol under -race.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pts := s.Points()
				for i := 1; i < len(pts); i++ {
					if pts[i].T.Before(pts[i-1].T) {
						t.Error("snapshot out of time order")
						return
					}
				}
				if p, ok := s.Last(); ok && p.V < 0 {
					t.Error("impossible value")
					return
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < per; i++ {
				s.Append(t0, float64(i))
			}
		}()
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if got := s.Len(); got != goroutines*per {
		t.Fatalf("Len = %d, want %d", got, goroutines*per)
	}
}

func TestSeriesCrossesChunks(t *testing.T) {
	s := NewSeries("x")
	n := seriesChunkSize*3 + 17
	for i := 0; i < n; i++ {
		s.Append(at(i), float64(i))
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	pts := s.Points()
	for i, p := range pts {
		if p.V != float64(i) {
			t.Fatalf("point %d = %v", i, p.V)
		}
	}
	if v, ok := s.At(at(seriesChunkSize + 5)); !ok || v != float64(seriesChunkSize+5) {
		t.Fatalf("At across chunks = %v, %v", v, ok)
	}
	between := s.Between(at(seriesChunkSize-2), at(seriesChunkSize+2))
	if len(between) != 4 {
		t.Fatalf("Between across chunk boundary = %d points, want 4", len(between))
	}
}

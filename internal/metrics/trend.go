package metrics

import (
	"math"
	"sort"
)

// TrendDirection classifies the outcome of a Mann-Kendall test.
type TrendDirection int

// Trend directions.
const (
	TrendNone TrendDirection = iota
	TrendIncreasing
	TrendDecreasing
)

func (d TrendDirection) String() string {
	switch d {
	case TrendIncreasing:
		return "increasing"
	case TrendDecreasing:
		return "decreasing"
	default:
		return "none"
	}
}

// TrendResult is the outcome of a Mann-Kendall monotone trend test plus
// Sen's slope estimate. The paper's future work calls for "more intelligent
// decision makers"; the trend-based root-cause strategy is built on this.
type TrendResult struct {
	Direction TrendDirection
	S         int64   // Mann-Kendall S statistic
	Z         float64 // normal approximation of S
	P         float64 // two-sided p-value
	SenSlope  float64 // robust slope estimate, units per x-unit
}

// MannKendall runs the Mann-Kendall test on ys observed at xs, with
// significance level alpha (e.g. 0.05). Fewer than 4 observations always
// yield TrendNone: the normal approximation is meaningless below that.
func MannKendall(xs, ys []float64, alpha float64) TrendResult {
	n := len(ys)
	if len(xs) < n {
		n = len(xs)
	}
	res := TrendResult{}
	if n < 4 {
		return res
	}
	var s int64
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case ys[j] > ys[i]:
				s++
			case ys[j] < ys[i]:
				s--
			}
		}
	}
	res.S = s

	// Variance with tie correction.
	ties := map[float64]int64{}
	for _, y := range ys[:n] {
		ties[y]++
	}
	varS := float64(n*(n-1)*(2*n+5)) / 18
	for _, t := range ties {
		if t > 1 {
			varS -= float64(t*(t-1)*(2*t+5)) / 18
		}
	}
	if varS <= 0 {
		return res
	}
	switch {
	case s > 0:
		res.Z = float64(s-1) / math.Sqrt(varS)
	case s < 0:
		res.Z = float64(s+1) / math.Sqrt(varS)
	}
	res.P = 2 * (1 - StdNormalCDF(math.Abs(res.Z)))
	if res.P < alpha {
		if s > 0 {
			res.Direction = TrendIncreasing
		} else {
			res.Direction = TrendDecreasing
		}
	}
	res.SenSlope = SenSlope(xs[:n], ys[:n])
	return res
}

// MannKendallSeries applies MannKendall to a series with x in seconds since
// the first point, so SenSlope is units-per-second.
func MannKendallSeries(pts []Point, alpha float64) TrendResult {
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	if len(pts) > 0 {
		t0 := pts[0].T
		for i, p := range pts {
			xs[i] = p.T.Sub(t0).Seconds()
			ys[i] = p.V
		}
	}
	return MannKendall(xs, ys, alpha)
}

// SenSlope returns the median of all pairwise slopes — Sen's robust
// slope estimator. Exported so the online detectors (internal/detect)
// share one implementation with the batch test; the two must never
// diverge, since the test suite asserts their verdicts agree.
func SenSlope(xs, ys []float64) float64 {
	var slopes []float64
	for i := 0; i < len(ys)-1; i++ {
		for j := i + 1; j < len(ys); j++ {
			dx := xs[j] - xs[i]
			if dx == 0 {
				continue
			}
			slopes = append(slopes, (ys[j]-ys[i])/dx)
		}
	}
	if len(slopes) == 0 {
		return 0
	}
	sort.Float64s(slopes)
	n := len(slopes)
	if n%2 == 1 {
		return slopes[n/2]
	}
	return (slopes[n/2-1] + slopes[n/2]) / 2
}

// StdNormalCDF is Phi(x) via the complementary error function. Exported
// for the same single-implementation reason as SenSlope.
func StdNormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

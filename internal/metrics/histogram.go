package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Histogram accumulates observations into fixed buckets and supports
// quantile estimation by linear interpolation within the winning bucket.
// It records response-time distributions in the container.
//
// Observations land on per-shard cells (bucket counts, sum, min, max all
// updated with atomics) so concurrent recorders never block each other or
// readers; reads merge the cells. A merged read is not an atomic snapshot
// — an observation racing the read may have updated some cells and not
// others — which only blurs in-flight observations, never loses settled
// ones.
type Histogram struct {
	bounds []float64 // ascending upper bounds; implicit +Inf bucket at the end
	cells  []histCell
}

// histCell is one shard of a histogram. The bucket counts live in a
// separately allocated slice, so only the scalar hot fields need padding.
type histCell struct {
	counts  []atomic.Int64 // len(bounds)+1
	total   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
	_       [cacheLine - 56]byte
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. An implicit overflow bucket captures values above the last bound.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	h := &Histogram{
		bounds: b,
		cells:  make([]histCell, defaultShards()),
	}
	for i := range h.cells {
		h.cells[i].counts = make([]atomic.Int64, len(bounds)+1)
		h.cells[i].minBits.Store(math.Float64bits(math.Inf(1)))
		h.cells[i].maxBits.Store(math.Float64bits(math.Inf(-1)))
	}
	return h
}

// ExponentialBounds returns n bounds starting at start, each factor times
// the previous — the usual latency bucket layout.
func ExponentialBounds(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: invalid exponential bounds")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records v. The scalar extrema are updated before the bucket
// count so a reader that sees the count also sees a max/min covering it
// (merge loads counts first).
func (h *Histogram) Observe(v float64) {
	c := &h.cells[shardHint(len(h.cells))]
	addFloatBits(&c.sumBits, v)
	minFloatBits(&c.minBits, v)
	maxFloatBits(&c.maxBits, v)
	i := sort.SearchFloat64s(h.bounds, v)
	c.counts[i].Add(1)
	c.total.Add(1)
}

// merged is a point-in-time merge of all cells.
type merged struct {
	counts []int64
	total  int64
	sum    float64
	min    float64
	max    float64
}

func (h *Histogram) merge() merged {
	m := merged{
		counts: make([]int64, len(h.bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
	for i := range h.cells {
		c := &h.cells[i]
		for b := range m.counts {
			m.counts[b] += c.counts[b].Load()
		}
		m.sum += math.Float64frombits(c.sumBits.Load())
		m.min = math.Min(m.min, math.Float64frombits(c.minBits.Load()))
		m.max = math.Max(m.max, math.Float64frombits(c.maxBits.Load()))
	}
	for _, n := range m.counts {
		m.total += n
	}
	return m
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.cells {
		n += h.cells[i].total.Load()
	}
	return n
}

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	m := h.merge()
	if m.total == 0 {
		return 0
	}
	return m.sum / float64(m.total)
}

// Quantile estimates the q-quantile (0 <= q <= 1). Values in the overflow
// bucket are attributed to the observed maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic("metrics: quantile out of [0,1]")
	}
	m := h.merge()
	if m.total == 0 {
		return 0
	}
	rank := q * float64(m.total)
	var cum int64
	for i, c := range m.counts {
		if float64(cum+c) >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := m.max
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return m.max
}

// String renders a compact textual summary.
func (h *Histogram) String() string {
	m := h.merge()
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.3g", m.total, safeDiv(m.sum, float64(m.total)))
	if m.total > 0 {
		fmt.Fprintf(&b, " min=%.3g max=%.3g", m.min, m.max)
	}
	return b.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Histogram accumulates observations into fixed buckets and supports
// quantile estimation by linear interpolation within the winning bucket.
// It records response-time distributions in the container.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; implicit +Inf bucket at the end
	counts []int64   // len(bounds)+1
	total  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. An implicit overflow bucket captures values above the last bound.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds: b,
		counts: make([]int64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// ExponentialBounds returns n bounds starting at start, each factor times
// the previous — the usual latency bucket layout.
func ExponentialBounds(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: invalid exponential bounds")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile estimates the q-quantile (0 <= q <= 1). Values in the overflow
// bucket are attributed to the observed maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic("metrics: quantile out of [0,1]")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	rank := q * float64(h.total)
	var cum int64
	for i, c := range h.counts {
		if float64(cum+c) >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.max
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return h.max
}

// String renders a compact textual summary.
func (h *Histogram) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.3g", h.total, safeDiv(h.sum, float64(h.total)))
	if h.total > 0 {
		fmt.Fprintf(&b, " min=%.3g max=%.3g", h.min, h.max)
	}
	return b.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

package metrics

import (
	"testing"
	"time"
)

var t0 = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

func at(sec int) time.Time { return t0.Add(time.Duration(sec) * time.Second) }

func TestSeriesAppendAndAccess(t *testing.T) {
	s := NewSeries("mem")
	if s.Name() != "mem" {
		t.Fatalf("Name = %q", s.Name())
	}
	if _, ok := s.Last(); ok {
		t.Fatal("Last on empty series reported ok")
	}
	if _, ok := s.First(); ok {
		t.Fatal("First on empty series reported ok")
	}
	for i := 0; i < 5; i++ {
		s.Append(at(i), float64(i*10))
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	first, _ := s.First()
	last, _ := s.Last()
	if first.V != 0 || last.V != 40 {
		t.Fatalf("first=%v last=%v", first.V, last.V)
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	s := NewSeries("x")
	s.Append(at(10), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order append did not panic")
		}
	}()
	s.Append(at(5), 2)
}

func TestSeriesSameInstantAllowed(t *testing.T) {
	s := NewSeries("x")
	s.Append(at(1), 1)
	s.Append(at(1), 2)
	if s.Len() != 2 {
		t.Fatal("equal-timestamp appends should be allowed")
	}
}

func TestSeriesBetween(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 10; i++ {
		s.Append(at(i), float64(i))
	}
	got := s.Between(at(3), at(7))
	if len(got) != 4 {
		t.Fatalf("Between returned %d points, want 4", len(got))
	}
	if got[0].V != 3 || got[3].V != 6 {
		t.Fatalf("Between range wrong: %v..%v", got[0].V, got[3].V)
	}
}

func TestSeriesAt(t *testing.T) {
	s := NewSeries("x")
	s.Append(at(10), 100)
	s.Append(at(20), 200)
	if _, ok := s.At(at(5)); ok {
		t.Fatal("At before first observation reported ok")
	}
	if v, _ := s.At(at(10)); v != 100 {
		t.Fatalf("At(10) = %v", v)
	}
	if v, _ := s.At(at(15)); v != 100 {
		t.Fatalf("At(15) = %v, want value-in-effect 100", v)
	}
	if v, _ := s.At(at(25)); v != 200 {
		t.Fatalf("At(25) = %v", v)
	}
}

func TestSeriesValuesIsCopy(t *testing.T) {
	s := NewSeries("x")
	s.Append(at(0), 1)
	vs := s.Values()
	vs[0] = 99
	if got := s.Values()[0]; got != 1 {
		t.Fatalf("Values leaked internal storage: %v", got)
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 60; i++ {
		s.Append(at(i), float64(i))
	}
	ds := s.Downsample(10 * time.Second)
	if len(ds) != 6 {
		t.Fatalf("downsample buckets = %d, want 6", len(ds))
	}
	if ds[0].V != 9 {
		t.Fatalf("bucket keeps last value; got %v, want 9", ds[0].V)
	}
	if ds[5].V != 59 {
		t.Fatalf("final bucket = %v, want 59", ds[5].V)
	}
}

func TestSeriesDownsampleBadStepPanics(t *testing.T) {
	s := NewSeries("x")
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive step did not panic")
		}
	}()
	s.Downsample(0)
}

func TestSeriesDownsampleEmpty(t *testing.T) {
	s := NewSeries("x")
	if got := s.Downsample(time.Second); got != nil {
		t.Fatalf("downsample of empty series = %v", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Counter = %d", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("Gauge = %v", g.Value())
	}
}

func TestRateWindow(t *testing.T) {
	r := NewRateWindow(10 * time.Second)
	for i := 0; i < 20; i++ {
		r.Observe(at(i))
	}
	// At t=19, events in (9,19] are inside the window: t=10..19 -> 10 events.
	if got := r.Count(at(19)); got != 10 {
		t.Fatalf("Count = %d, want 10", got)
	}
	if got := r.Rate(at(19)); got != 1.0 {
		t.Fatalf("Rate = %v, want 1.0", got)
	}
	// Much later, the window is empty.
	if got := r.Rate(at(100)); got != 0 {
		t.Fatalf("Rate after idle = %v", got)
	}
}

func TestRateWindowBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive window did not panic")
		}
	}()
	NewRateWindow(0)
}

package metrics

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// This file holds the striped (sharded) primitives behind the package's
// hot-path metrics. Writers spread across per-shard cells padded to cache
// lines so concurrent recorders do not bounce one line between cores;
// readers merge the cells. Merged reads are monotone but not atomic
// snapshots — two cells read microseconds apart may straddle a concurrent
// write — which is the usual monitoring trade-off: recording must never
// block, reading tolerates a point-in-time blur.

// cacheLine is the assumed coherence granularity cells are padded to.
const cacheLine = 64

// maxShards bounds the memory a striped metric spends on contention
// avoidance.
const maxShards = 128

// defaultShards returns the stripe width: the smallest power of two
// covering GOMAXPROCS, capped at maxShards.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n {
		s <<= 1
	}
	if s > maxShards {
		s = maxShards
	}
	return s
}

// shardHint returns a cheap quasi-goroutine-local index in [0, n); n must
// be a power of two. It hashes the address of a stack variable: goroutine
// stacks are disjoint, so concurrent goroutines spread across cells while
// one goroutine keeps returning to the same cell from the same call
// depth. The pointer never escapes (it degrades to a uintptr
// immediately), so the hint costs no allocation.
func shardHint(n int) int {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b)))
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h & uint64(n-1))
}

// LoadOrCreate returns the value stored in m under key, creating it with
// mk on first use. It is the recording-side idiom for per-key atomic
// cells behind a sync.Map: the Load fast path is a lock-free hash lookup
// once the key has been seen, and mk runs (possibly redundantly — the
// loser's cell is discarded) only on first contact with a key. The key
// is typed string (not any) so the hot-path boxing stays stack-allocated
// under inlining, as it is for a direct sync.Map.Load call.
func LoadOrCreate[T any](m *sync.Map, key string, mk func() T) T {
	if v, ok := m.Load(key); ok {
		return v.(T)
	}
	v, _ := m.LoadOrStore(key, mk())
	return v.(T)
}

// counterCell is one shard of a StripedCounter, padded so neighbouring
// cells never share a cache line.
type counterCell struct {
	n atomic.Int64
	_ [cacheLine - 8]byte
}

// StripedCounter is a monotone event counter whose increments land on
// per-shard cells. Use it instead of Counter when many goroutines
// increment the same counter concurrently; Value merges the cells.
type StripedCounter struct {
	cells []counterCell
}

// NewStripedCounter creates a counter striped across the default shard
// count.
func NewStripedCounter() *StripedCounter {
	return &StripedCounter{cells: make([]counterCell, defaultShards())}
}

// Inc adds one to the counter.
func (c *StripedCounter) Inc() {
	c.cells[shardHint(len(c.cells))].n.Add(1)
}

// Add adds delta (which must be non-negative) to the counter.
func (c *StripedCounter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative Add on StripedCounter")
	}
	c.cells[shardHint(len(c.cells))].n.Add(delta)
}

// Value returns the current count, merged across shards.
func (c *StripedCounter) Value() int64 {
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}

// gaugeCell is one shard of a StripedGauge.
type gaugeCell struct {
	bits atomic.Uint64 // float64 bits of the cell's accumulated delta
	_    [cacheLine - 8]byte
}

// StripedGauge is an up/down accumulator (the float analogue of Java's
// DoubleAdder): concurrent Adds land on per-shard cells and Value merges
// them. It deliberately has no Set — a settable value cannot be
// decomposed across shards; use Gauge for set-style instantaneous values.
type StripedGauge struct {
	cells []gaugeCell
}

// NewStripedGauge creates a gauge striped across the default shard count.
func NewStripedGauge() *StripedGauge {
	return &StripedGauge{cells: make([]gaugeCell, defaultShards())}
}

// Add adjusts the gauge by delta (which may be negative).
func (g *StripedGauge) Add(delta float64) {
	addFloatBits(&g.cells[shardHint(len(g.cells))].bits, delta)
}

// Value returns the accumulated value, merged across shards.
func (g *StripedGauge) Value() float64 {
	var sum float64
	for i := range g.cells {
		sum += math.Float64frombits(g.cells[i].bits.Load())
	}
	return sum
}

// addFloatBits adds delta to the float64 stored as bits in a.
func addFloatBits(a *atomic.Uint64, delta float64) {
	for {
		old := a.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if a.CompareAndSwap(old, nv) {
			return
		}
	}
}

// minFloatBits lowers the float64 stored as bits in a to v if v is
// smaller.
func minFloatBits(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// maxFloatBits raises the float64 stored as bits in a to v if v is
// larger.
func maxFloatBits(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

package metrics

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotone event counter, safe for concurrent use.
type Counter struct {
	n atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (which must be non-negative) to the counter.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative Add on Counter")
	}
	c.n.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a settable instantaneous value, safe for concurrent use. It is
// a single lock-free cell (the float64 bits behind an atomic word); for a
// heavily contended up/down accumulator use StripedGauge.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) { addFloatBits(&g.bits, delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// RateWindow converts a stream of event timestamps into a rate (events per
// second) over a sliding window. The throughput curves of Fig. 3 are
// produced by sampling one of these. Observations land on per-shard event
// lists (each with its own short-lived lock) so concurrent recorders do
// not serialise on one mutex; reads trim and merge the shards.
type RateWindow struct {
	window time.Duration
	shards []rateShard
}

type rateShard struct {
	mu     sync.Mutex
	events []time.Time
	_      [cacheLine - 32]byte
}

// NewRateWindow creates a sliding window of the given width.
func NewRateWindow(window time.Duration) *RateWindow {
	if window <= 0 {
		panic("metrics: non-positive rate window")
	}
	return &RateWindow{window: window, shards: make([]rateShard, defaultShards())}
}

// Observe records one event at time t. Events must be recorded in
// non-decreasing time order per recording goroutine.
func (r *RateWindow) Observe(t time.Time) {
	s := &r.shards[shardHint(len(r.shards))]
	s.mu.Lock()
	s.events = append(s.events, t)
	s.trim(t.Add(-r.window))
	s.mu.Unlock()
}

// Rate returns events per second over the window ending at now.
func (r *RateWindow) Rate(now time.Time) float64 {
	return float64(r.Count(now)) / r.window.Seconds()
}

// Count returns the number of events inside the window ending at now.
func (r *RateWindow) Count(now time.Time) int {
	cut := now.Add(-r.window)
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		s.trim(cut)
		n += len(s.events)
		s.mu.Unlock()
	}
	return n
}

// trim drops the expired prefix (events at or before cut). Shards
// interleave events from goroutines whose clocks may be read slightly out
// of order, but the prefix scan stops at the first in-window event, so an
// interleaved straggler only delays its own expiry by one window — and
// the common nothing-to-trim case stays O(1) per observation.
func (s *rateShard) trim(cut time.Time) {
	i := 0
	for i < len(s.events) && !s.events[i].After(cut) {
		i++
	}
	if i > 0 {
		s.events = append(s.events[:0], s.events[i:]...)
	}
}

package metrics

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotone event counter, safe for concurrent use.
type Counter struct {
	n atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (which must be non-negative) to the counter.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative Add on Counter")
	}
	c.n.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a settable instantaneous value, safe for concurrent use. It is
// a single lock-free cell (the float64 bits behind an atomic word); for a
// heavily contended up/down accumulator use StripedGauge.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) { addFloatBits(&g.bits, delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// rateBuckets is the time resolution of a RateWindow: the window is
// divided into this many fixed buckets, so counting is O(buckets) and
// recording is O(1) with zero allocation — an event list would grow
// without bound when many events share one instant (the virtual clock
// stands still during direct-mode request execution).
const rateBuckets = 128

// RateWindow converts a stream of event timestamps into a rate (events per
// second) over a sliding window. The throughput curves of Fig. 3 are
// produced by sampling one of these. Observations land on per-shard bucket
// rings (each with its own short-lived lock) so concurrent recorders do
// not serialise on one mutex; reads merge the in-window buckets. Counts
// are bucketed at window/128 resolution: an event is attributed to its
// bucket's start instant, so expiry at the trailing edge of the window is
// accurate to one bucket width.
type RateWindow struct {
	window time.Duration
	gran   int64 // bucket width in nanoseconds
	shards []rateShard
}

type rateBucket struct {
	period int64 // bucket start = period * gran
	count  int64
}

type rateShard struct {
	mu      sync.Mutex
	buckets [rateBuckets]rateBucket
}

// NewRateWindow creates a sliding window of the given width.
func NewRateWindow(window time.Duration) *RateWindow {
	if window <= 0 {
		panic("metrics: non-positive rate window")
	}
	gran := int64(window) / rateBuckets
	if gran <= 0 {
		gran = 1
	}
	return &RateWindow{window: window, gran: gran, shards: make([]rateShard, defaultShards())}
}

// period maps an instant to its bucket period (floor division, so
// pre-epoch instants bucket consistently too).
func (r *RateWindow) period(t time.Time) int64 {
	n := t.UnixNano()
	p := n / r.gran
	if n < 0 && n%r.gran != 0 {
		p--
	}
	return p
}

// Observe records one event at time t.
func (r *RateWindow) Observe(t time.Time) {
	p := r.period(t)
	s := &r.shards[shardHint(len(r.shards))]
	s.mu.Lock()
	b := &s.buckets[uint64(p)%rateBuckets]
	if b.period != p {
		b.period = p
		b.count = 0
	}
	b.count++
	s.mu.Unlock()
}

// Rate returns events per second over the window ending at now.
func (r *RateWindow) Rate(now time.Time) float64 {
	return float64(r.Count(now)) / r.window.Seconds()
}

// Count returns the number of events inside the window ending at now:
// all buckets whose start lies after now-window. Events in the bucket
// straddling the trailing edge expire together with their bucket start.
func (r *RateWindow) Count(now time.Time) int {
	cutP := r.period(now.Add(-r.window))
	var n int64
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for j := range s.buckets {
			if b := &s.buckets[j]; b.period > cutP {
				n += b.count
			}
		}
		s.mu.Unlock()
	}
	return int(n)
}

package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotone event counter, safe for concurrent use.
type Counter struct {
	n atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (which must be non-negative) to the counter.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative Add on Counter")
	}
	c.n.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a settable instantaneous value, safe for concurrent use.
type Gauge struct {
	mu sync.RWMutex
	v  float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// RateWindow converts a stream of event timestamps into a rate (events per
// second) over a sliding window. The throughput curves of Fig. 3 are
// produced by sampling one of these.
type RateWindow struct {
	mu     sync.Mutex
	window time.Duration
	events []time.Time
}

// NewRateWindow creates a sliding window of the given width.
func NewRateWindow(window time.Duration) *RateWindow {
	if window <= 0 {
		panic("metrics: non-positive rate window")
	}
	return &RateWindow{window: window}
}

// Observe records one event at time t. Events must be recorded in
// non-decreasing time order.
func (r *RateWindow) Observe(t time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, t)
	r.trim(t)
}

// Rate returns events per second over the window ending at now.
func (r *RateWindow) Rate(now time.Time) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trim(now)
	return float64(len(r.events)) / r.window.Seconds()
}

// Count returns the number of events inside the window ending at now.
func (r *RateWindow) Count(now time.Time) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trim(now)
	return len(r.events)
}

func (r *RateWindow) trim(now time.Time) {
	cut := now.Add(-r.window)
	i := 0
	for i < len(r.events) && !r.events[i].After(cut) {
		i++
	}
	if i > 0 {
		r.events = append(r.events[:0], r.events[i:]...)
	}
}

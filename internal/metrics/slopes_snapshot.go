package metrics

import (
	"fmt"

	"repro/internal/binc"
)

// slopeSnapVersion versions the SlopeStore snapshot format.
const slopeSnapVersion = 1

// maxSlopeSnapshot bounds the slope count a snapshot may declare
// (window 1024 would need ~524k pairs; real windows are ≤ a few hundred).
const maxSlopeSnapshot = 1 << 20

// AppendSnapshot appends the store's exact state: a version byte, the
// slope count, and every slope in sorted order. The encoding is
// canonical — Snapshot∘Restore∘Snapshot is byte-identical — because the
// sorted multiset is the store's whole state.
func (s *SlopeStore) AppendSnapshot(dst []byte) []byte {
	dst = append(dst, slopeSnapVersion)
	dst = binc.AppendUvarint(dst, uint64(len(s.sorted)))
	for _, v := range s.sorted {
		dst = binc.AppendFloat(dst, v)
	}
	return dst
}

// Snapshot returns the store's versioned binary state.
func (s *SlopeStore) Snapshot() []byte { return s.AppendSnapshot(nil) }

// RestoreSnapshot replaces the store's state from a snapshot read off p.
// The buffer capacity is kept (or grown to the snapshot's need), so a
// restored store maintains the same steady-state no-alloc contract as a
// freshly constructed one.
func (s *SlopeStore) RestoreSnapshot(p *binc.Parser) error {
	if v := p.Byte(); p.Err() == nil && v != slopeSnapVersion {
		return fmt.Errorf("metrics: slope store snapshot v%d: %w", v, binc.ErrVersion)
	}
	n := p.Count(maxSlopeSnapshot)
	if err := p.Err(); err != nil {
		return err
	}
	if cap(s.sorted) < n {
		s.sorted = make([]float64, 0, n)
		s.scratch = make([]float64, 0, n)
	}
	s.sorted = s.sorted[:0]
	prev := 0.0
	for i := 0; i < n; i++ {
		v := p.Float()
		if p.Err() == nil {
			if v != v {
				return fmt.Errorf("metrics: NaN slope in snapshot")
			}
			if i > 0 && v < prev {
				return fmt.Errorf("metrics: unsorted slope snapshot (%v after %v)", v, prev)
			}
		}
		s.sorted = append(s.sorted, v)
		prev = v
	}
	return p.Err()
}

// Restore replaces the store's state from a Snapshot buffer.
func (s *SlopeStore) Restore(data []byte) error {
	p := binc.NewParser(data)
	if err := s.RestoreSnapshot(p); err != nil {
		return err
	}
	return p.Done()
}

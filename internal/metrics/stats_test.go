package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Median != 2.5 {
		t.Fatalf("Median = %v, want 2.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty Summary = %+v", s)
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	f := func(vs []float64) bool {
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true // skip pathological inputs
			}
		}
		if len(vs) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, v := range vs {
			w.Add(v)
			sum += v
		}
		mean := sum / float64(len(vs))
		var ss float64
		for _, v := range vs {
			ss += (v - mean) * (v - mean)
		}
		direct := ss / float64(len(vs)-1)
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Var()-direct) < 1e-4*(1+direct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	fit := FitLine(xs, ys)
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineConstant(t *testing.T) {
	fit := FitLine([]float64{0, 1, 2}, []float64{5, 5, 5})
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Fatalf("constant fit = %+v", fit)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if fit := FitLine([]float64{1}, []float64{2}); fit.N != 1 || fit.Slope != 0 {
		t.Fatalf("single-point fit = %+v", fit)
	}
	// All x equal: slope undefined, reported as 0.
	if fit := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); fit.Slope != 0 {
		t.Fatalf("vertical fit slope = %v", fit.Slope)
	}
}

func TestFitSeriesSecondsAxis(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i <= 10; i++ {
		s.Append(at(i*60), float64(i)*600) // +10 units per second
	}
	fit := FitSeries(s.Points())
	if math.Abs(fit.Slope-10) > 1e-9 {
		t.Fatalf("slope = %v, want 10/s", fit.Slope)
	}
}

func TestFitSeriesEmpty(t *testing.T) {
	if fit := FitSeries(nil); fit.N != 0 {
		t.Fatalf("empty FitSeries = %+v", fit)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if mean := h.Mean(); math.Abs(mean-138.875) > 1e-9 {
		t.Fatalf("Mean = %v", mean)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(ExponentialBounds(1, 2, 12))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	p50 := h.Quantile(0.5)
	if p50 < 300 || p50 > 800 {
		t.Fatalf("p50 = %v, want within bucket of 500", p50)
	}
	p0 := h.Quantile(0)
	if p0 < 0 || p0 > 1 {
		t.Fatalf("p0 = %v", p0)
	}
	if hi := h.Quantile(1); hi < 512 {
		t.Fatalf("p100 = %v, want >= 512", hi)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram([]float64{1})
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no bounds":       func() { NewHistogram(nil) },
		"unsorted":        func() { NewHistogram([]float64{2, 1}) },
		"bad quantile":    func() { NewHistogram([]float64{1}).Quantile(2) },
		"bad exponential": func() { ExponentialBounds(0, 2, 3) },
		"bad factor":      func() { ExponentialBounds(1, 1, 3) },
		"bad bound count": func() { ExponentialBounds(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram([]float64{1})
	if got := h.String(); got != "n=0 mean=0" {
		t.Fatalf("empty String = %q", got)
	}
	h.Observe(2)
	if got := h.String(); got == "" {
		t.Fatal("String empty after observe")
	}
}

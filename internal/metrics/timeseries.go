// Package metrics provides the measurement substrate shared by the
// monitoring agents and the manager: append-only time series, counters,
// sliding-window rates, histograms, and the summary/trend statistics the
// root-cause strategies consume (linear regression, Mann-Kendall, Sen's
// slope).
//
// Concurrency contract: every recording structure is safe for concurrent
// use without external locking and keeps writers lock-free. Counter and
// Gauge are single atomic cells; the Striped variants, Histogram and
// RateWindow spread writers over cache-line-padded per-shard cells merged
// on read (reads are monotone, not atomic snapshots); Series appends
// reserve a slot with one atomic increment and publish through a
// committed watermark, so readers traverse only a consistent time-ordered
// prefix and never block appenders (its one mutex guards the rare chunk-
// directory growth). The pure statistics functions (Summarize,
// MannKendall, LinearRegression) operate on caller-owned slices and are
// trivially safe.
package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Point is one observation of a time series.
type Point struct {
	T time.Time
	V float64
}

// seriesChunkSize is the number of points per storage chunk. Chunks are
// allocated whole and never moved, so readers can traverse them while
// writers append.
const seriesChunkSize = 256

type seriesChunk struct {
	pts   [seriesChunkSize]Point
	ready [seriesChunkSize]atomic.Bool
}

// Series is an append-only time series. It is safe for concurrent use: the
// real-time container mode samples from worker goroutines while the manager
// reads snapshots.
//
// Storage is chunked and appends are lock-free: a writer reserves a slot
// with one atomic increment, fills it in place and marks it ready; a
// committed watermark then advances over the contiguously-ready prefix.
// Readers consume only the committed prefix and never take a lock, so
// recorders cannot block root-cause queries (nor the other way round).
// The only mutex in the structure serialises the rare growth of the chunk
// directory — at most once per seriesChunkSize appends.
type Series struct {
	name string

	reserved  atomic.Int64 // slots handed to writers
	committed atomic.Int64 // length of the contiguously-ready prefix
	dir       atomic.Pointer[[]*seriesChunk]
	growMu    sync.Mutex
}

// NewSeries returns an empty series with the given name.
func NewSeries(name string) *Series {
	s := &Series{name: name}
	s.dir.Store(&[]*seriesChunk{})
	return s
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Append records v at time t. Observations must arrive in non-decreasing
// time order; out-of-order appends panic because they indicate the caller
// mixed clocks, which would silently corrupt trend estimates. Slot
// reservation order is the authoritative order, and the watermark
// advance validates each slot against its predecessor — so an inversion
// (from one goroutine misusing the series or from two goroutines racing
// appends of distinct timestamps) always panics before readers can
// observe an unsorted prefix, never silently commits.
func (s *Series) Append(t time.Time, v float64) {
	i := s.reserved.Add(1) - 1
	ck := s.chunkFor(i / seriesChunkSize)
	slot := i % seriesChunkSize
	ck.pts[slot] = Point{T: t, V: v}
	ck.ready[slot].Store(true)
	s.advance()
}

// chunkFor returns the chunk holding index ci, growing the directory
// copy-on-write when the reservation crossed into a new chunk.
func (s *Series) chunkFor(ci int64) *seriesChunk {
	dir := *s.dir.Load()
	if int(ci) < len(dir) {
		return dir[ci]
	}
	s.growMu.Lock()
	defer s.growMu.Unlock()
	dir = *s.dir.Load()
	for int(ci) >= len(dir) {
		nd := make([]*seriesChunk, len(dir)+1)
		copy(nd, dir)
		nd[len(dir)] = &seriesChunk{}
		s.dir.Store(&nd)
		dir = nd
	}
	return dir[ci]
}

// advance moves the committed watermark over every contiguously-ready
// slot, validating time order against each slot's predecessor before
// publishing it. Concurrent writers help each other: whichever appender
// observes the prefix complete publishes it (and trips the out-of-order
// panic if the prefix is inverted).
func (s *Series) advance() {
	for {
		c := s.committed.Load()
		if c >= s.reserved.Load() {
			return
		}
		dir := *s.dir.Load()
		ci, slot := c/seriesChunkSize, c%seriesChunkSize
		if int(ci) >= len(dir) || !dir[ci].ready[slot].Load() {
			return
		}
		cur := dir[ci].pts[slot]
		if c > 0 {
			if prev := pointAt(dir, int(c-1)); cur.T.Before(prev.T) {
				panic(fmt.Sprintf("metrics: out-of-order append to %q: %v before %v",
					s.name, cur.T, prev.T))
			}
		}
		s.committed.CompareAndSwap(c, c+1)
	}
}

// view returns the chunk directory and the committed length. The
// directory is loaded after the watermark, so it always covers the
// returned length.
func (s *Series) view() ([]*seriesChunk, int) {
	n := s.committed.Load()
	return *s.dir.Load(), int(n)
}

func pointAt(dir []*seriesChunk, i int) Point {
	return dir[i/seriesChunkSize].pts[i%seriesChunkSize]
}

// Len returns the number of observations.
func (s *Series) Len() int {
	_, n := s.view()
	return n
}

// Last returns the most recent observation and whether one exists.
func (s *Series) Last() (Point, bool) {
	dir, n := s.view()
	if n == 0 {
		return Point{}, false
	}
	return pointAt(dir, n-1), true
}

// First returns the earliest observation and whether one exists.
func (s *Series) First() (Point, bool) {
	dir, n := s.view()
	if n == 0 {
		return Point{}, false
	}
	return pointAt(dir, 0), true
}

// Points returns a copy of all observations.
func (s *Series) Points() []Point {
	dir, n := s.view()
	out := make([]Point, n)
	for i := range out {
		out[i] = pointAt(dir, i)
	}
	return out
}

// Values returns a copy of the observation values in time order.
func (s *Series) Values() []float64 {
	dir, n := s.view()
	out := make([]float64, n)
	for i := range out {
		out[i] = pointAt(dir, i).V
	}
	return out
}

// search returns the smallest index in [0, n) for which pred is true,
// assuming pred is monotone over the time-ordered points (n if none).
func search(dir []*seriesChunk, n int, pred func(Point) bool) int {
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if pred(pointAt(dir, mid)) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Between returns a copy of the observations with from <= T < to.
func (s *Series) Between(from, to time.Time) []Point {
	dir, n := s.view()
	lo := search(dir, n, func(p Point) bool { return !p.T.Before(from) })
	hi := search(dir, n, func(p Point) bool { return !p.T.Before(to) })
	out := make([]Point, hi-lo)
	for i := range out {
		out[i] = pointAt(dir, lo+i)
	}
	return out
}

// At returns the value in effect at time t: the latest observation not
// after t. It reports false when t precedes the first observation.
func (s *Series) At(t time.Time) (float64, bool) {
	dir, n := s.view()
	i := search(dir, n, func(p Point) bool { return p.T.After(t) })
	if i == 0 {
		return 0, false
	}
	return pointAt(dir, i-1).V, true
}

// Downsample reduces the series to one point per bucket of width step,
// keeping the bucket's last value. It is used when rendering figure series
// so one-hour experiments print at a readable resolution.
func (s *Series) Downsample(step time.Duration) []Point {
	if step <= 0 {
		panic("metrics: non-positive downsample step")
	}
	pts := s.Points()
	if len(pts) == 0 {
		return nil
	}
	var out []Point
	bucketEnd := pts[0].T.Add(step)
	cur := pts[0]
	for _, p := range pts[1:] {
		if !p.T.Before(bucketEnd) {
			out = append(out, Point{T: bucketEnd, V: cur.V})
			for !p.T.Before(bucketEnd) {
				bucketEnd = bucketEnd.Add(step)
			}
		}
		cur = p
	}
	out = append(out, Point{T: bucketEnd, V: cur.V})
	return out
}

// Summary computes summary statistics over all values.
func (s *Series) Summary() Summary { return Summarize(s.Values()) }

// Package metrics provides the measurement substrate shared by the
// monitoring agents and the manager: append-only time series, counters,
// sliding-window rates, histograms, and the summary/trend statistics the
// root-cause strategies consume (linear regression, Mann-Kendall, Sen's
// slope).
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Point is one observation of a time series.
type Point struct {
	T time.Time
	V float64
}

// Series is an append-only time series. It is safe for concurrent use: the
// real-time container mode samples from worker goroutines while the manager
// reads snapshots.
type Series struct {
	mu   sync.RWMutex
	name string
	pts  []Point
}

// NewSeries returns an empty series with the given name.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Append records v at time t. Observations must arrive in non-decreasing
// time order; out-of-order appends panic because they indicate the caller
// mixed clocks, which would silently corrupt trend estimates.
func (s *Series) Append(t time.Time, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.pts); n > 0 && t.Before(s.pts[n-1].T) {
		panic(fmt.Sprintf("metrics: out-of-order append to %q: %v before %v",
			s.name, t, s.pts[n-1].T))
	}
	s.pts = append(s.pts, Point{T: t, V: v})
}

// Len returns the number of observations.
func (s *Series) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pts)
}

// Last returns the most recent observation and whether one exists.
func (s *Series) Last() (Point, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.pts) == 0 {
		return Point{}, false
	}
	return s.pts[len(s.pts)-1], true
}

// First returns the earliest observation and whether one exists.
func (s *Series) First() (Point, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.pts) == 0 {
		return Point{}, false
	}
	return s.pts[0], true
}

// Points returns a copy of all observations.
func (s *Series) Points() []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Point, len(s.pts))
	copy(out, s.pts)
	return out
}

// Values returns a copy of the observation values in time order.
func (s *Series) Values() []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]float64, len(s.pts))
	for i, p := range s.pts {
		out[i] = p.V
	}
	return out
}

// Between returns a copy of the observations with from <= T < to.
func (s *Series) Between(from, to time.Time) []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo := sort.Search(len(s.pts), func(i int) bool { return !s.pts[i].T.Before(from) })
	hi := sort.Search(len(s.pts), func(i int) bool { return !s.pts[i].T.Before(to) })
	out := make([]Point, hi-lo)
	copy(out, s.pts[lo:hi])
	return out
}

// At returns the value in effect at time t: the latest observation not
// after t. It reports false when t precedes the first observation.
func (s *Series) At(t time.Time) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].T.After(t) })
	if i == 0 {
		return 0, false
	}
	return s.pts[i-1].V, true
}

// Downsample reduces the series to one point per bucket of width step,
// keeping the bucket's last value. It is used when rendering figure series
// so one-hour experiments print at a readable resolution.
func (s *Series) Downsample(step time.Duration) []Point {
	if step <= 0 {
		panic("metrics: non-positive downsample step")
	}
	pts := s.Points()
	if len(pts) == 0 {
		return nil
	}
	var out []Point
	bucketEnd := pts[0].T.Add(step)
	cur := pts[0]
	for _, p := range pts[1:] {
		if !p.T.Before(bucketEnd) {
			out = append(out, Point{T: bucketEnd, V: cur.V})
			for !p.T.Before(bucketEnd) {
				bucketEnd = bucketEnd.Add(step)
			}
		}
		cur = p
	}
	out = append(out, Point{T: bucketEnd, V: cur.V})
	return out
}

// Summary computes summary statistics over all values.
func (s *Series) Summary() Summary { return Summarize(s.Values()) }

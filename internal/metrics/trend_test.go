package metrics

import (
	"math"
	"testing"
)

func seq(n int, f func(i int) float64) ([]float64, []float64) {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = float64(i)
		ys[i] = f(i)
	}
	return xs, ys
}

func TestMannKendallIncreasing(t *testing.T) {
	xs, ys := seq(30, func(i int) float64 { return float64(i) * 2 })
	res := MannKendall(xs, ys, 0.05)
	if res.Direction != TrendIncreasing {
		t.Fatalf("direction = %v, want increasing (p=%v)", res.Direction, res.P)
	}
	if math.Abs(res.SenSlope-2) > 1e-9 {
		t.Fatalf("Sen slope = %v, want 2", res.SenSlope)
	}
}

func TestMannKendallDecreasing(t *testing.T) {
	xs, ys := seq(30, func(i int) float64 { return -float64(i) })
	res := MannKendall(xs, ys, 0.05)
	if res.Direction != TrendDecreasing {
		t.Fatalf("direction = %v, want decreasing", res.Direction)
	}
	if res.SenSlope >= 0 {
		t.Fatalf("Sen slope = %v, want negative", res.SenSlope)
	}
}

func TestMannKendallConstant(t *testing.T) {
	xs, ys := seq(30, func(int) float64 { return 5 })
	res := MannKendall(xs, ys, 0.05)
	if res.Direction != TrendNone {
		t.Fatalf("constant series classified as %v", res.Direction)
	}
	if res.SenSlope != 0 {
		t.Fatalf("Sen slope = %v, want 0", res.SenSlope)
	}
}

func TestMannKendallNoiseNoTrend(t *testing.T) {
	// Alternating values: no monotone trend.
	xs, ys := seq(40, func(i int) float64 {
		if i%2 == 0 {
			return 1
		}
		return 2
	})
	res := MannKendall(xs, ys, 0.05)
	if res.Direction != TrendNone {
		t.Fatalf("alternating series classified as %v (p=%v)", res.Direction, res.P)
	}
}

func TestMannKendallTooFew(t *testing.T) {
	xs, ys := seq(3, func(i int) float64 { return float64(i) })
	if res := MannKendall(xs, ys, 0.05); res.Direction != TrendNone {
		t.Fatal("short series should never report a trend")
	}
}

func TestMannKendallSeries(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 20; i++ {
		s.Append(at(i*10), float64(i)*100) // +10 per second
	}
	res := MannKendallSeries(s.Points(), 0.05)
	if res.Direction != TrendIncreasing {
		t.Fatalf("direction = %v", res.Direction)
	}
	if math.Abs(res.SenSlope-10) > 1e-9 {
		t.Fatalf("Sen slope = %v, want 10/s", res.SenSlope)
	}
}

func TestMannKendallSeriesEmpty(t *testing.T) {
	if res := MannKendallSeries(nil, 0.05); res.Direction != TrendNone {
		t.Fatal("empty series should have no trend")
	}
}

func TestSenSlopeRobustToOutlier(t *testing.T) {
	xs, ys := seq(21, func(i int) float64 { return float64(i) })
	ys[10] = 1000 // single outlier
	res := MannKendall(xs, ys, 0.05)
	if math.Abs(res.SenSlope-1) > 0.2 {
		t.Fatalf("Sen slope = %v, want ~1 despite outlier", res.SenSlope)
	}
}

func TestTrendDirectionString(t *testing.T) {
	if TrendIncreasing.String() != "increasing" ||
		TrendDecreasing.String() != "decreasing" ||
		TrendNone.String() != "none" {
		t.Fatal("TrendDirection.String mismatch")
	}
}

func TestStdNormalCDF(t *testing.T) {
	if math.Abs(StdNormalCDF(0)-0.5) > 1e-12 {
		t.Fatalf("Phi(0) = %v", StdNormalCDF(0))
	}
	if math.Abs(StdNormalCDF(1.96)-0.975) > 1e-3 {
		t.Fatalf("Phi(1.96) = %v", StdNormalCDF(1.96))
	}
}

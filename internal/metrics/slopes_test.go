package metrics

import (
	"testing"
)

// TestSlopeStoreMatchesBatchSenSlope maintains a store over a sliding
// window exactly as the online trend detector does — insert the new
// sample's pairs, remove the evicted sample's pairs — and requires the
// median to equal the batch SenSlope over the same window, bit for bit,
// at every step.
func TestSlopeStoreMatchesBatchSenSlope(t *testing.T) {
	const window = 12
	gens := map[string]func(i int) float64{
		"trend": func(i int) float64 { return float64(i) * 0.5 },
		"saw":   func(i int) float64 { return float64(i % 5) },
		"mix":   func(i int) float64 { return float64(i)*0.25 + float64((i*7)%11) },
		"flat":  func(i int) float64 { return 3.25 },
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			st := NewSlopeStore(window)
			var xs, ys []float64
			for i := 0; i < 60; i++ {
				x, y := float64(i)*30, gen(i)
				if len(xs) == window {
					// Evict the oldest: remove its pairs with every survivor.
					for k := 1; k < len(xs); k++ {
						if dx := xs[k] - xs[0]; dx != 0 {
							if !st.Remove((ys[k] - ys[0]) / dx) {
								t.Fatalf("i=%d: evicted slope missing from store", i)
							}
						}
					}
					xs, ys = xs[1:], ys[1:]
				}
				for k := range xs {
					if dx := x - xs[k]; dx != 0 {
						st.Insert((y - ys[k]) / dx)
					}
				}
				xs, ys = append(xs, x), append(ys, y)

				want := SenSlope(xs, ys)
				if got := st.Median(); got != want {
					t.Fatalf("i=%d: median %g, batch SenSlope %g", i, got, want)
				}
			}
		})
	}
}

func TestSlopeStoreRemoveAbsent(t *testing.T) {
	st := NewSlopeStore(4)
	st.Insert(1.5)
	if st.Remove(2.5) {
		t.Fatal("removed a slope that was never inserted")
	}
	if !st.Remove(1.5) || st.Len() != 0 {
		t.Fatalf("remove of present slope failed (len=%d)", st.Len())
	}
	if st.Median() != 0 {
		t.Fatal("empty store must report median 0")
	}
}

func TestSlopeStoreSteadyStateAllocs(t *testing.T) {
	const window = 16
	st := NewSlopeStore(window)
	xs := make([]float64, 0, window)
	ys := make([]float64, 0, window)
	i := 0
	step := func() {
		x, y := float64(i)*30, float64(i%7)+float64(i)*0.1
		if len(xs) == window {
			for k := 1; k < len(xs); k++ {
				if dx := xs[k] - xs[0]; dx != 0 {
					st.Remove((ys[k] - ys[0]) / dx)
				}
			}
			copy(xs, xs[1:])
			copy(ys, ys[1:])
			xs, ys = xs[:window-1], ys[:window-1]
		}
		for k := range xs {
			if dx := x - xs[k]; dx != 0 {
				st.Insert((y - ys[k]) / dx)
			}
		}
		xs, ys = append(xs, x), append(ys, y)
		i++
	}
	for i < 2*window { // fill and cycle once
		step()
	}
	if allocs := testing.AllocsPerRun(200, step); allocs > 0 {
		t.Fatalf("steady-state slope maintenance allocates %.1f/op", allocs)
	}
}

package jvmheap

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocateAndFree(t *testing.T) {
	h := New(1000, nil)
	if err := h.Allocate("A", 300); err != nil {
		t.Fatal(err)
	}
	if err := h.Allocate("B", 200); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.Retained != 500 || st.Used != 500 {
		t.Fatalf("stats = %+v", st)
	}
	if h.RetainedBy("A") != 300 {
		t.Fatalf("A holds %d", h.RetainedBy("A"))
	}
	h.Free("A", 100)
	if h.RetainedBy("A") != 200 {
		t.Fatalf("after free A holds %d", h.RetainedBy("A"))
	}
	h.Free("A", 9999) // over-free clamps
	if h.RetainedBy("A") != 0 {
		t.Fatal("over-free did not clamp")
	}
	if h.Stats().Retained != 200 {
		t.Fatalf("retained = %d", h.Stats().Retained)
	}
}

func TestFreeAll(t *testing.T) {
	h := New(1000, nil)
	if err := h.Allocate("A", 400); err != nil {
		t.Fatal(err)
	}
	if got := h.FreeAll("A"); got != 400 {
		t.Fatalf("FreeAll = %d", got)
	}
	if h.Stats().Retained != 0 {
		t.Fatal("retained after FreeAll")
	}
	if got := h.FreeAll("ghost"); got != 0 {
		t.Fatalf("FreeAll(ghost) = %d", got)
	}
}

func TestTransientReclaimedByGC(t *testing.T) {
	h := New(10000, nil)
	if err := h.AllocateTransient(500); err != nil {
		t.Fatal(err)
	}
	if st := h.Stats(); st.Transient != 500 {
		t.Fatalf("transient = %d", st.Transient)
	}
	st := h.GC()
	if st.Transient != 0 || st.GCCount != 1 || st.GCReclaimed != 500 {
		t.Fatalf("post-GC stats = %+v", st)
	}
}

func TestAutomaticGCAtThreshold(t *testing.T) {
	h := New(1000, nil)
	// 800 transient bytes cross the 75% threshold and trigger GC.
	if err := h.AllocateTransient(800); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.GCCount != 1 || st.Transient != 0 {
		t.Fatalf("no automatic GC: %+v", st)
	}
}

func TestRetainedSurvivesGC(t *testing.T) {
	h := New(1000, nil)
	if err := h.Allocate("leaky", 600); err != nil {
		t.Fatal(err)
	}
	h.GC()
	if h.RetainedBy("leaky") != 600 {
		t.Fatal("GC reclaimed retained bytes")
	}
}

func TestOutOfMemory(t *testing.T) {
	h := New(1000, nil)
	if err := h.Allocate("A", 900); err != nil {
		t.Fatal(err)
	}
	err := h.Allocate("A", 200)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("overcommit error = %v", err)
	}
	// The failed allocation must not be charged.
	if h.RetainedBy("A") != 900 {
		t.Fatalf("failed alloc charged: %d", h.RetainedBy("A"))
	}
	if err := h.AllocateTransient(200); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("transient overcommit = %v", err)
	}
}

func TestGCMakesRoomForAllocation(t *testing.T) {
	h := New(1000, nil)
	if err := h.Allocate("A", 300); err != nil {
		t.Fatal(err)
	}
	// Fill with garbage below the auto-GC threshold... (300+400=700 < 750)
	if err := h.AllocateTransient(400); err != nil {
		t.Fatal(err)
	}
	// ...then a retained allocation that only fits after collection.
	if err := h.Allocate("A", 500); err != nil {
		t.Fatal(err)
	}
	if h.RetainedBy("A") != 800 {
		t.Fatalf("A holds %d", h.RetainedBy("A"))
	}
}

func TestOnGCCallback(t *testing.T) {
	h := New(1000, nil)
	var calls []Stats
	h.OnGC(func(s Stats) { calls = append(calls, s) })
	h.GC()
	h.GC()
	if len(calls) != 2 {
		t.Fatalf("OnGC calls = %d", len(calls))
	}
}

func TestOwnersSorted(t *testing.T) {
	h := New(10000, nil)
	for owner, n := range map[string]int64{"small": 10, "big": 500, "mid": 100} {
		if err := h.Allocate(owner, n); err != nil {
			t.Fatal(err)
		}
	}
	got := h.Owners()
	if len(got) != 3 || got[0] != "big" || got[1] != "mid" || got[2] != "small" {
		t.Fatalf("Owners = %v", got)
	}
}

func TestHeadroom(t *testing.T) {
	h := New(1000, nil)
	if err := h.Allocate("A", 400); err != nil {
		t.Fatal(err)
	}
	if got := h.HeadroomSeconds(60); got != 10 {
		t.Fatalf("headroom = %v, want 10s", got)
	}
	if got := h.HeadroomSeconds(0); !math.IsInf(got, 1) {
		t.Fatalf("zero-rate headroom = %v", got)
	}
}

func TestDefaultCapacity(t *testing.T) {
	h := New(0, nil)
	if h.Stats().Capacity != DefaultCapacity {
		t.Fatalf("capacity = %d", h.Stats().Capacity)
	}
}

func TestNegativePanics(t *testing.T) {
	h := New(1000, nil)
	for name, fn := range map[string]func(){
		"alloc":     func() { h.Allocate("A", -1) },
		"transient": func() { h.AllocateTransient(-1) },
		"free":      func() { h.Free("A", -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with negative size did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConservationProperty(t *testing.T) {
	// Property: retained always equals the sum over owners, and never
	// exceeds capacity.
	f := func(allocs []uint16) bool {
		h := New(1<<20, nil)
		owners := []string{"a", "b", "c"}
		var want int64
		for i, n := range allocs {
			if err := h.Allocate(owners[i%3], int64(n)); err == nil {
				want += int64(n)
			}
		}
		var sum int64
		for _, o := range h.Owners() {
			sum += h.RetainedBy(o)
		}
		st := h.Stats()
		return st.Retained == want && sum == want && st.Retained <= st.Capacity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocation(t *testing.T) {
	h := New(1<<30, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				_ = h.Allocate("x", 16)
				_ = h.AllocateTransient(64)
			}
		}()
	}
	wg.Wait()
	if got := h.RetainedBy("x"); got != 8*1000*16 {
		t.Fatalf("retained = %d, want %d", got, 8*1000*16)
	}
}

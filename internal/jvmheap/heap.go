// Package jvmheap models the JVM heap of the paper's testbed (jdk1.5 with a
// 1 GB heap) as an explicit allocation ledger: retained allocations are
// charged to named owners (application components), transient allocations
// model per-request garbage, and a generational-style collector reclaims
// garbage when utilisation crosses a threshold. Exhaustion surfaces as
// ErrOutOfMemory, which is what ultimately crashes an aged application —
// the terminal event the paper's framework exists to prevent.
package jvmheap

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
)

// ErrOutOfMemory reports that an allocation could not be satisfied even
// after garbage collection.
var ErrOutOfMemory = errors.New("jvmheap: out of memory")

// DefaultCapacity matches the paper's Tomcat JVM: a 1 GB heap.
const DefaultCapacity int64 = 1 << 30

// gcThreshold is the utilisation that triggers a collection.
const gcThreshold = 0.75

// Stats is a point-in-time view of the heap.
type Stats struct {
	Capacity    int64
	Retained    int64 // live, owner-charged bytes (survives GC)
	Transient   int64 // garbage awaiting collection
	Used        int64 // Retained + Transient
	Utilization float64
	GCCount     int64
	GCReclaimed int64 // total bytes reclaimed over all collections
}

// Heap is a simulated JVM heap. It is safe for concurrent use.
type Heap struct {
	clock sim.Clock

	mu          sync.Mutex
	capacity    int64
	owners      map[string]int64
	retained    int64
	transient   int64
	gcCount     int64
	gcReclaimed int64
	onGC        []func(Stats)
}

// New creates a heap with the given capacity (DefaultCapacity when
// non-positive), stamping GC callbacks against clock (WallClock when nil).
func New(capacity int64, clock sim.Clock) *Heap {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if clock == nil {
		clock = sim.WallClock{}
	}
	return &Heap{clock: clock, capacity: capacity, owners: make(map[string]int64)}
}

// Allocate charges n retained bytes to owner. Retained bytes survive
// garbage collection — they are what leaks are made of. When the heap
// cannot hold the allocation even after collecting, ErrOutOfMemory is
// returned and the allocation does not happen.
func (h *Heap) Allocate(owner string, n int64) error {
	if n < 0 {
		panic("jvmheap: negative allocation")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.retained+h.transient+n > h.capacity {
		h.collectLocked()
		if h.retained+n > h.capacity {
			return fmt.Errorf("%w: retained %d + %d exceeds capacity %d",
				ErrOutOfMemory, h.retained, n, h.capacity)
		}
	}
	h.owners[owner] += n
	h.retained += n
	h.maybeCollectLocked()
	return nil
}

// Free releases up to n retained bytes charged to owner. Freeing more than
// the owner holds clamps to zero — the rejuvenation path frees "everything
// the component retained" without tracking exact figures.
func (h *Heap) Free(owner string, n int64) {
	if n < 0 {
		panic("jvmheap: negative free")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	held := h.owners[owner]
	if n > held {
		n = held
	}
	h.owners[owner] = held - n
	if h.owners[owner] == 0 {
		delete(h.owners, owner)
	}
	h.retained -= n
}

// FreeAll releases every retained byte of owner and returns how much was
// held. This is the micro-reboot primitive.
func (h *Heap) FreeAll(owner string) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	held := h.owners[owner]
	delete(h.owners, owner)
	h.retained -= held
	return held
}

// AllocateTransient models per-request garbage: it occupies the heap until
// the next collection. ErrOutOfMemory is returned when even a collection
// cannot make room.
func (h *Heap) AllocateTransient(n int64) error {
	if n < 0 {
		panic("jvmheap: negative allocation")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.retained+h.transient+n > h.capacity {
		h.collectLocked()
		if h.retained+n > h.capacity {
			return fmt.Errorf("%w: %d transient bytes do not fit", ErrOutOfMemory, n)
		}
	}
	h.transient += n
	h.maybeCollectLocked()
	return nil
}

// GC forces a collection and returns the resulting stats.
func (h *Heap) GC() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.collectLocked()
	return h.statsLocked()
}

// OnGC registers fn to run (with the post-collection stats) after every
// collection. Callbacks run synchronously under the heap lock's shadow;
// they must not call back into the heap.
func (h *Heap) OnGC(fn func(Stats)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.onGC = append(h.onGC, fn)
}

func (h *Heap) maybeCollectLocked() {
	if float64(h.retained+h.transient) > gcThreshold*float64(h.capacity) {
		h.collectLocked()
	}
}

func (h *Heap) collectLocked() {
	h.gcCount++
	h.gcReclaimed += h.transient
	h.transient = 0
	st := h.statsLocked()
	for _, fn := range h.onGC {
		fn(st)
	}
}

// Stats returns a point-in-time view.
func (h *Heap) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.statsLocked()
}

func (h *Heap) statsLocked() Stats {
	used := h.retained + h.transient
	return Stats{
		Capacity:    h.capacity,
		Retained:    h.retained,
		Transient:   h.transient,
		Used:        used,
		Utilization: float64(used) / float64(h.capacity),
		GCCount:     h.gcCount,
		GCReclaimed: h.gcReclaimed,
	}
}

// RetainedBy returns the retained bytes charged to owner.
func (h *Heap) RetainedBy(owner string) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.owners[owner]
}

// Owners returns the owners holding retained bytes, sorted by descending
// holdings (ties by name), the order an operator wants them listed.
func (h *Heap) Owners() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.owners))
	for o := range h.owners {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool {
		if h.owners[out[i]] != h.owners[out[j]] {
			return h.owners[out[i]] > h.owners[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// HeadroomSeconds extrapolates the time until exhaustion given a retained
// growth rate in bytes/second. It returns +Inf for non-positive rates.
func (h *Heap) HeadroomSeconds(bytesPerSecond float64) float64 {
	if bytesPerSecond <= 0 {
		return inf
	}
	st := h.Stats()
	return float64(st.Capacity-st.Retained) / bytesPerSecond
}

var inf = func() float64 { var z float64; return 1 / z }()

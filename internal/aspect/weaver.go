package aspect

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Weaver owns the registered aspects and produces woven invocation
// handles. It is the load-time weaver of the reproduction: components hand
// their invocation Func to Weave when they are deployed and receive the
// advised Func back. Aspects registered later still apply to
// already-woven components because the advice chain is resolved lazily and
// cached per woven handle, invalidated whenever the aspect set changes.
//
// Concurrency contract: the woven fast path is lock-free. All weaver
// configuration (the aspect set, precedence order and per-component
// interception switches) lives in an immutable snapshot published through
// an atomic pointer; mutations copy, rebuild and swap the snapshot under
// a mutex that dispatch never touches. Each woven handle caches its
// resolved advice chain stamped with the snapshot generation it was built
// against and revalidates that stamp on every invocation, so a
// registration, unregistration or component toggle is observed by every
// handle on its very next call — no stale chain survives a generation
// bump.
type Weaver struct {
	clock sim.Clock

	// mu serialises configuration changes only; dispatch never takes it.
	mu      sync.Mutex
	regSeq  map[*Aspect]int
	nextReg int

	snap atomic.Pointer[snapshot]

	// joinPoints is striped: it is bumped on every advised execution
	// from every dispatching goroutine, so a single atomic cell would be
	// the last contended cache line on the hot path.
	joinPoints *metrics.StripedCounter

	// jpPool recycles JoinPoint values across advised executions so the
	// steady-state dispatch path allocates nothing. Advice bodies receive
	// the pooled value and must not retain it past their own return — see
	// the JoinPoint lifetime contract in the package comment.
	jpPool sync.Pool
}

// snapshot is the weaver's immutable copy-on-write configuration. Never
// mutated after publication, so dispatch may read it without locks.
type snapshot struct {
	gen      int64
	aspects  []*Aspect // sorted by (Order, registration)
	disabled map[string]bool
}

// JoinPointTap is implemented by invocation arguments that want per-flow
// join point accounting. On every advised execution the weaver calls
// JoinPointCrossed on the first argument that implements it, which lets
// a request (and the database connection bound to it) count exactly the
// advised executions it crossed without reading the weaver's
// process-global counter — the accounting stays correct when many
// requests dispatch concurrently. A woven component invoked without any
// tap-bearing argument is invisible to per-flow accounting; wire the
// flow's connection (or the request itself) through such calls.
type JoinPointTap interface{ JoinPointCrossed() }

// NewWeaver creates a weaver stamping join points with clock (WallClock
// when nil).
func NewWeaver(clock sim.Clock) *Weaver {
	if clock == nil {
		clock = sim.WallClock{}
	}
	w := &Weaver{
		clock:      clock,
		regSeq:     make(map[*Aspect]int),
		joinPoints: metrics.NewStripedCounter(),
	}
	w.jpPool.New = func() any { return new(JoinPoint) }
	w.snap.Store(&snapshot{disabled: map[string]bool{}})
	return w
}

// Register adds an aspect. The aspect starts enabled. Registering two
// aspects with the same name is an error.
func (w *Weaver) Register(a *Aspect) error {
	if err := a.Validate(); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	cur := w.snap.Load()
	for _, ex := range cur.aspects {
		if ex.Name == a.Name {
			return fmt.Errorf("aspect: aspect %q already registered", a.Name)
		}
	}
	a.SetEnabled(true)
	w.regSeq[a] = w.nextReg
	w.nextReg++
	aspects := make([]*Aspect, 0, len(cur.aspects)+1)
	aspects = append(aspects, cur.aspects...)
	aspects = append(aspects, a)
	sort.SliceStable(aspects, func(i, j int) bool {
		if aspects[i].Order != aspects[j].Order {
			return aspects[i].Order < aspects[j].Order
		}
		return w.regSeq[aspects[i]] < w.regSeq[aspects[j]]
	})
	w.snap.Store(&snapshot{gen: cur.gen + 1, aspects: aspects, disabled: cur.disabled})
	return nil
}

// Unregister removes the named aspect; it reports whether it was present.
func (w *Weaver) Unregister(name string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	cur := w.snap.Load()
	for i, a := range cur.aspects {
		if a.Name == name {
			delete(w.regSeq, a)
			aspects := make([]*Aspect, 0, len(cur.aspects)-1)
			aspects = append(aspects, cur.aspects[:i]...)
			aspects = append(aspects, cur.aspects[i+1:]...)
			w.snap.Store(&snapshot{gen: cur.gen + 1, aspects: aspects, disabled: cur.disabled})
			return true
		}
	}
	return false
}

// Aspects returns the registered aspects in precedence order.
func (w *Weaver) Aspects() []*Aspect {
	return append([]*Aspect(nil), w.snap.Load().aspects...)
}

// Find returns the registered aspect with the given name.
func (w *Weaver) Find(name string) (*Aspect, bool) {
	for _, a := range w.snap.Load().aspects {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// SetComponentEnabled switches interception for one component on or off at
// runtime — the per-AC activation of the paper. While off, woven handles
// of the component call straight through with near-zero overhead.
func (w *Weaver) SetComponentEnabled(component string, on bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	cur := w.snap.Load()
	disabled := make(map[string]bool, len(cur.disabled)+1)
	for c, off := range cur.disabled {
		disabled[c] = off
	}
	if on {
		delete(disabled, component)
	} else {
		disabled[component] = true
	}
	w.snap.Store(&snapshot{gen: cur.gen + 1, aspects: cur.aspects, disabled: disabled})
}

// ComponentEnabled reports whether interception is active for component.
func (w *Weaver) ComponentEnabled(component string) bool {
	return !w.snap.Load().disabled[component]
}

// Generation returns the configuration generation, bumped by every
// registration, unregistration and component toggle. Handles woven
// through this weaver never execute a chain resolved against an older
// generation than the one returned before their invocation started.
func (w *Weaver) Generation() int64 { return w.snap.Load().gen }

// JoinPoints returns the total number of advised executions so far.
func (w *Weaver) JoinPoints() int64 { return w.joinPoints.Value() }

// Clock returns the weaver's time source.
func (w *Weaver) Clock() sim.Clock { return w.clock }

// handle is the dispatch state of one woven signature. cached holds the
// advice chain resolved against a specific snapshot generation; dispatch
// revalidates the stamp against the current snapshot on every call and
// re-resolves lock-free when the configuration changed.
type handle struct {
	w         *Weaver
	component string
	method    string
	fn        Func
	cached    atomic.Pointer[resolvedChain]
}

type resolvedChain struct {
	gen       int64
	intercept bool // component interception on in this generation
	chain     []*Aspect
}

func (w *Weaver) newHandle(component, method string, fn Func) *handle {
	if fn == nil {
		panic("aspect: weave of nil func")
	}
	return &handle{w: w, component: component, method: method, fn: fn}
}

// Weave wraps fn so that every invocation becomes a join point advised by
// the matching aspects. The depth argument of the returned function is
// managed by Invoke; use the returned Func through Invoke or call it with
// the raw args directly (depth 0).
func (w *Weaver) Weave(component, method string, fn Func) Func {
	h := w.newHandle(component, method, fn)
	return func(args ...any) (any, error) {
		return h.dispatch(args, 0)
	}
}

// WeaveDepth is like Weave but produces a handle whose invocations carry
// an explicit nesting depth, used by the container when one woven
// component calls another.
func (w *Weaver) WeaveDepth(component, method string, fn Func) func(depth int, args ...any) (any, error) {
	h := w.newHandle(component, method, fn)
	return func(depth int, args ...any) (any, error) {
		return h.dispatch(args, depth)
	}
}

// dispatch is the woven hot path: two atomic pointer loads and a
// generation compare when the aspect set is unchanged; no mutex is
// acquired and the no-match and disabled cases allocate nothing.
func (h *handle) dispatch(args []any, depth int) (any, error) {
	snap := h.w.snap.Load()
	rc := h.cached.Load()
	if rc == nil || rc.gen != snap.gen {
		rc = h.resolve(snap)
	}
	if !rc.intercept || len(rc.chain) == 0 {
		return h.fn(args...)
	}
	w := h.w
	w.joinPoints.Inc()
	for _, arg := range args {
		if tap, ok := arg.(JoinPointTap); ok {
			tap.JoinPointCrossed()
			break
		}
	}
	jp := w.jpPool.Get().(*JoinPoint)
	jp.Component = h.component
	jp.Method = h.method
	jp.Args = args
	jp.Start = w.clock.Now()
	jp.End = time.Time{}
	jp.Result, jp.Err = nil, nil
	jp.Depth = depth
	res, err := w.runChain(jp, rc.chain, 0, h.fn)
	jp.End = w.clock.Now()
	// Recycle: every advice body has returned by now (After advice runs
	// inside runChain), so the join point is dead. Clear what it references
	// so the pool does not pin arguments or results. A panicking advice
	// body skips the recycle — the join point is simply collected.
	jp.Args = nil
	jp.Result, jp.Err = nil, nil
	w.jpPool.Put(jp)
	return res, err
}

// resolve matches the snapshot's aspects against this handle's signature
// and publishes the result. Two goroutines may resolve concurrently and
// the slower (possibly older-generation) publication can land last; that
// is benign because every dispatch revalidates the stamp against the
// snapshot it loaded — a stale publication only costs one re-resolve, it
// is never executed against a newer snapshot.
func (h *handle) resolve(snap *snapshot) *resolvedChain {
	var chain []*Aspect
	for _, a := range snap.aspects {
		if a.Pointcut.Matches(h.component, h.method) {
			chain = append(chain, a)
		}
	}
	rc := &resolvedChain{
		gen:       snap.gen,
		intercept: !snap.disabled[h.component],
		chain:     chain,
	}
	h.cached.Store(rc)
	return rc
}

// runChain executes the advice layers from index i outward-in, ending at
// the component function.
func (w *Weaver) runChain(jp *JoinPoint, chain []*Aspect, i int, fn Func) (res any, err error) {
	if i == len(chain) {
		return fn(jp.Args...)
	}
	a := chain[i]
	if !a.Enabled() {
		return w.runChain(jp, chain, i+1, fn)
	}
	a.executions.Add(1)

	// After advice is exception-safe: it runs even if an inner layer or
	// the component panics, like AspectJ's after() finally semantics.
	if a.After != nil {
		defer a.After(jp)
	}
	if a.Before != nil {
		a.Before(jp)
	}
	// The proceed closure is only materialised for around advice — the
	// before/after-only chain (the AC's shape) must not allocate per
	// execution.
	if a.Around != nil {
		res, err = a.Around(jp, func() (any, error) {
			return w.runChain(jp, chain, i+1, fn)
		})
	} else {
		res, err = w.runChain(jp, chain, i+1, fn)
	}
	jp.Result, jp.Err = res, err
	if err == nil {
		if a.AfterReturning != nil {
			a.AfterReturning(jp)
		}
	} else if a.AfterThrowing != nil {
		a.AfterThrowing(jp)
	}
	return res, err
}

package aspect

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Weaver owns the registered aspects and produces woven invocation
// handles. It is the load-time weaver of the reproduction: components hand
// their invocation Func to Weave when they are deployed and receive the
// advised Func back. Aspects registered later still apply to
// already-woven components because the advice chain is resolved lazily and
// cached per join point, invalidated whenever the aspect set changes.
type Weaver struct {
	clock sim.Clock

	mu       sync.RWMutex
	aspects  []*Aspect // sorted by (Order, registration)
	regSeq   map[*Aspect]int
	nextReg  int
	disabled map[string]bool // component name -> woven interception off
	gen      atomic.Int64

	cacheMu sync.RWMutex
	cache   map[string]*chainEntry

	joinPoints atomic.Int64
}

type chainEntry struct {
	gen     int64
	aspects []*Aspect
}

// NewWeaver creates a weaver stamping join points with clock (WallClock
// when nil).
func NewWeaver(clock sim.Clock) *Weaver {
	if clock == nil {
		clock = sim.WallClock{}
	}
	return &Weaver{
		clock:    clock,
		regSeq:   make(map[*Aspect]int),
		disabled: make(map[string]bool),
		cache:    make(map[string]*chainEntry),
	}
}

// Register adds an aspect. The aspect starts enabled. Registering two
// aspects with the same name is an error.
func (w *Weaver) Register(a *Aspect) error {
	if err := a.Validate(); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, ex := range w.aspects {
		if ex.Name == a.Name {
			return fmt.Errorf("aspect: aspect %q already registered", a.Name)
		}
	}
	a.SetEnabled(true)
	w.regSeq[a] = w.nextReg
	w.nextReg++
	w.aspects = append(w.aspects, a)
	sort.SliceStable(w.aspects, func(i, j int) bool {
		if w.aspects[i].Order != w.aspects[j].Order {
			return w.aspects[i].Order < w.aspects[j].Order
		}
		return w.regSeq[w.aspects[i]] < w.regSeq[w.aspects[j]]
	})
	w.gen.Add(1)
	return nil
}

// Unregister removes the named aspect; it reports whether it was present.
func (w *Weaver) Unregister(name string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, a := range w.aspects {
		if a.Name == name {
			delete(w.regSeq, a)
			w.aspects = append(w.aspects[:i], w.aspects[i+1:]...)
			w.gen.Add(1)
			return true
		}
	}
	return false
}

// Aspects returns the registered aspects in precedence order.
func (w *Weaver) Aspects() []*Aspect {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return append([]*Aspect(nil), w.aspects...)
}

// Find returns the registered aspect with the given name.
func (w *Weaver) Find(name string) (*Aspect, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	for _, a := range w.aspects {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// SetComponentEnabled switches interception for one component on or off at
// runtime — the per-AC activation of the paper. While off, woven handles
// of the component call straight through with near-zero overhead.
func (w *Weaver) SetComponentEnabled(component string, on bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if on {
		delete(w.disabled, component)
	} else {
		w.disabled[component] = true
	}
}

// ComponentEnabled reports whether interception is active for component.
func (w *Weaver) ComponentEnabled(component string) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return !w.disabled[component]
}

// JoinPoints returns the total number of advised executions so far.
func (w *Weaver) JoinPoints() int64 { return w.joinPoints.Load() }

// Clock returns the weaver's time source.
func (w *Weaver) Clock() sim.Clock { return w.clock }

// Weave wraps fn so that every invocation becomes a join point advised by
// the matching aspects. The depth argument of the returned function is
// managed by Invoke; use the returned Func through Invoke or call it with
// the raw args directly (depth 0).
func (w *Weaver) Weave(component, method string, fn Func) Func {
	if fn == nil {
		panic("aspect: weave of nil func")
	}
	sig := component + "." + method
	return func(args ...any) (any, error) {
		return w.dispatch(sig, component, method, fn, args, 0)
	}
}

// WeaveDepth is like Weave but produces a handle whose invocations carry
// an explicit nesting depth, used by the container when one woven
// component calls another.
func (w *Weaver) WeaveDepth(component, method string, fn Func) func(depth int, args ...any) (any, error) {
	if fn == nil {
		panic("aspect: weave of nil func")
	}
	sig := component + "." + method
	return func(depth int, args ...any) (any, error) {
		return w.dispatch(sig, component, method, fn, args, depth)
	}
}

func (w *Weaver) dispatch(sig, component, method string, fn Func, args []any, depth int) (any, error) {
	if !w.ComponentEnabled(component) {
		return fn(args...)
	}
	chain := w.chainFor(sig, component, method)
	if len(chain) == 0 {
		return fn(args...)
	}
	w.joinPoints.Add(1)
	jp := &JoinPoint{
		Component: component,
		Method:    method,
		Args:      args,
		Start:     w.clock.Now(),
		Depth:     depth,
	}
	res, err := w.runChain(jp, chain, 0, fn)
	jp.End = w.clock.Now()
	return res, err
}

// runChain executes the advice layers from index i outward-in, ending at
// the component function.
func (w *Weaver) runChain(jp *JoinPoint, chain []*Aspect, i int, fn Func) (res any, err error) {
	if i == len(chain) {
		return fn(jp.Args...)
	}
	a := chain[i]
	if !a.Enabled() {
		return w.runChain(jp, chain, i+1, fn)
	}
	a.executions.Add(1)

	// After advice is exception-safe: it runs even if an inner layer or
	// the component panics, like AspectJ's after() finally semantics.
	if a.After != nil {
		defer a.After(jp)
	}
	if a.Before != nil {
		a.Before(jp)
	}
	proceed := func() (any, error) {
		return w.runChain(jp, chain, i+1, fn)
	}
	if a.Around != nil {
		res, err = a.Around(jp, proceed)
	} else {
		res, err = proceed()
	}
	jp.Result, jp.Err = res, err
	if err == nil {
		if a.AfterReturning != nil {
			a.AfterReturning(jp)
		}
	} else if a.AfterThrowing != nil {
		a.AfterThrowing(jp)
	}
	return res, err
}

// chainFor resolves and caches the matching aspects for a join point.
func (w *Weaver) chainFor(sig, component, method string) []*Aspect {
	gen := w.gen.Load()
	w.cacheMu.RLock()
	e, ok := w.cache[sig]
	w.cacheMu.RUnlock()
	if ok && e.gen == gen {
		return e.aspects
	}
	w.mu.RLock()
	var matched []*Aspect
	for _, a := range w.aspects {
		if a.Pointcut.Matches(component, method) {
			matched = append(matched, a)
		}
	}
	w.mu.RUnlock()
	w.cacheMu.Lock()
	w.cache[sig] = &chainEntry{gen: gen, aspects: matched}
	w.cacheMu.Unlock()
	return matched
}

package aspect

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentDispatchWithRegistration hammers woven handles from many
// goroutines while aspects register and unregister — the real-time
// container mode exercises exactly this. Run with -race.
func TestConcurrentDispatchWithRegistration(t *testing.T) {
	w := NewWeaver(nil)
	var calls atomic.Int64
	handles := make([]Func, 8)
	for i := range handles {
		handles[i] = w.Weave(fmt.Sprintf("svc.c%d", i), "Service",
			func(args ...any) (any, error) { calls.Add(1); return nil, nil })
	}
	var advice atomic.Int64
	var wg sync.WaitGroup
	for _, fn := range handles {
		wg.Add(1)
		go func(fn Func) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if _, err := fn(); err != nil {
					t.Error(err)
					return
				}
			}
		}(fn)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 50; round++ {
			name := fmt.Sprintf("probe-%d", round)
			if err := w.Register(&Aspect{
				Name:     name,
				Pointcut: MustPointcut("within(svc.*)"),
				Before:   func(*JoinPoint) { advice.Add(1) },
			}); err != nil {
				t.Error(err)
				return
			}
			w.SetComponentEnabled("svc.c0", round%2 == 0)
			if !w.Unregister(name) {
				t.Error("unregister failed")
				return
			}
		}
	}()
	wg.Wait()
	if calls.Load() != 8*2000 {
		t.Fatalf("calls = %d, want %d", calls.Load(), 8*2000)
	}
}

// TestConcurrentEnableDisable toggles an aspect under dispatch load.
func TestConcurrentEnableDisable(t *testing.T) {
	w := NewWeaver(nil)
	a := &Aspect{
		Name:     "toggler",
		Pointcut: MustPointcut("within(*)"),
		Before:   func(*JoinPoint) {},
	}
	if err := w.Register(a); err != nil {
		t.Fatal(err)
	}
	fn := w.Weave("svc.x", "Service", func(args ...any) (any, error) { return nil, nil })
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if g == 0 {
					a.SetEnabled(i%2 == 0)
				} else {
					fn()
				}
			}
		}(g)
	}
	wg.Wait()
}

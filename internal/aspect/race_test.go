package aspect

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentDispatchWithRegistration hammers woven handles from many
// goroutines while aspects register and unregister — the real-time
// container mode exercises exactly this. Run with -race.
func TestConcurrentDispatchWithRegistration(t *testing.T) {
	w := NewWeaver(nil)
	var calls atomic.Int64
	handles := make([]Func, 8)
	for i := range handles {
		handles[i] = w.Weave(fmt.Sprintf("svc.c%d", i), "Service",
			func(args ...any) (any, error) { calls.Add(1); return nil, nil })
	}
	var advice atomic.Int64
	var wg sync.WaitGroup
	for _, fn := range handles {
		wg.Add(1)
		go func(fn Func) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if _, err := fn(); err != nil {
					t.Error(err)
					return
				}
			}
		}(fn)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 50; round++ {
			name := fmt.Sprintf("probe-%d", round)
			if err := w.Register(&Aspect{
				Name:     name,
				Pointcut: MustPointcut("within(svc.*)"),
				Before:   func(*JoinPoint) { advice.Add(1) },
			}); err != nil {
				t.Error(err)
				return
			}
			w.SetComponentEnabled("svc.c0", round%2 == 0)
			if !w.Unregister(name) {
				t.Error("unregister failed")
				return
			}
		}
	}()
	wg.Wait()
	if calls.Load() != 8*2000 {
		t.Fatalf("calls = %d, want %d", calls.Load(), 8*2000)
	}
}

// TestConcurrentCopyOnWriteCache hammers the copy-on-write chain cache:
// background goroutines dispatch through woven handles while the main
// goroutine churns the aspect set, asserting after every generation bump
// that handles resolve exactly the current chain — a registered probe
// fires on the very next call, an unregistered one never fires again. The
// probe advises a component only the mutator calls, so the assertions are
// deterministic; the background load shares the weaver and its snapshots,
// which is what makes stale-chain bugs surface under -race.
func TestConcurrentCopyOnWriteCache(t *testing.T) {
	w := NewWeaver(nil)
	base := &Aspect{
		Name:     "base",
		Pointcut: MustPointcut("within(svc.*)"),
		Before:   func(*JoinPoint) {},
	}
	if err := w.Register(base); err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		fn := w.Weave(fmt.Sprintf("svc.c%d", i), "Service",
			func(args ...any) (any, error) { calls.Add(1); return nil, nil })
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if _, err := fn(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}

	gate := w.Weave("gate.x", "Service", func(args ...any) (any, error) { return nil, nil })
	for round := 0; round < 100; round++ {
		var fired atomic.Int64
		name := fmt.Sprintf("probe-%d", round)
		genBefore := w.Generation()
		if err := w.Register(&Aspect{
			Name:     name,
			Pointcut: MustPointcut("within(gate.*)"),
			Before:   func(*JoinPoint) { fired.Add(1) },
		}); err != nil {
			t.Fatal(err)
		}
		if gen := w.Generation(); gen != genBefore+1 {
			t.Fatalf("round %d: generation %d after register, want %d", round, gen, genBefore+1)
		}
		if _, err := gate(); err != nil {
			t.Fatal(err)
		}
		if got := fired.Load(); got != 1 {
			t.Fatalf("round %d: probe fired %d times after register, want 1", round, got)
		}
		if !w.Unregister(name) {
			t.Fatalf("round %d: unregister failed", round)
		}
		for i := 0; i < 3; i++ {
			if _, err := gate(); err != nil {
				t.Fatal(err)
			}
		}
		if got := fired.Load(); got != 1 {
			t.Fatalf("round %d: stale chain survived generation bump: probe fired %d times after unregister", round, got)
		}
	}

	close(stop)
	wg.Wait()
	// Every background dispatch went through the base aspect's chain.
	if base.Executions() != calls.Load() {
		t.Fatalf("base advised %d of %d calls", base.Executions(), calls.Load())
	}
}

// TestConcurrentComponentToggle flips per-component interception while
// the component dispatches from other goroutines; the copy-on-write
// snapshot must make every toggle a clean generation transition.
func TestConcurrentComponentToggle(t *testing.T) {
	w := NewWeaver(nil)
	if err := w.Register(&Aspect{
		Name:     "obs",
		Pointcut: MustPointcut("within(*)"),
		Before:   func(*JoinPoint) {},
	}); err != nil {
		t.Fatal(err)
	}
	fn := w.Weave("svc.t", "Service", func(args ...any) (any, error) { return nil, nil })
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if g == 0 {
					w.SetComponentEnabled("svc.t", i%2 == 0)
				} else if _, err := fn(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	w.SetComponentEnabled("svc.t", true)
	before := w.JoinPoints()
	if _, err := fn(); err != nil {
		t.Fatal(err)
	}
	if w.JoinPoints() != before+1 {
		t.Fatal("re-enabled component not advised")
	}
}

// TestConcurrentEnableDisable toggles an aspect under dispatch load.
func TestConcurrentEnableDisable(t *testing.T) {
	w := NewWeaver(nil)
	a := &Aspect{
		Name:     "toggler",
		Pointcut: MustPointcut("within(*)"),
		Before:   func(*JoinPoint) {},
	}
	if err := w.Register(a); err != nil {
		t.Fatal(err)
	}
	fn := w.Weave("svc.x", "Service", func(args ...any) (any, error) { return nil, nil })
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if g == 0 {
					a.SetEnabled(i%2 == 0)
				} else {
					fn()
				}
			}
		}(g)
	}
	wg.Wait()
}

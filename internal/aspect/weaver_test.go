package aspect

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func okFunc(ret any) Func {
	return func(args ...any) (any, error) { return ret, nil }
}

func TestWeaveNoAspectsPassesThrough(t *testing.T) {
	w := NewWeaver(nil)
	fn := w.Weave("c", "M", okFunc(42))
	got, err := fn()
	if err != nil || got.(int) != 42 {
		t.Fatalf("passthrough = %v, %v", got, err)
	}
	if w.JoinPoints() != 0 {
		t.Fatal("unadvised call counted as join point")
	}
}

func TestAdviceOrderSingleAspect(t *testing.T) {
	w := NewWeaver(nil)
	var log []string
	err := w.Register(&Aspect{
		Name:     "tracer",
		Pointcut: MustPointcut("execution(c.M)"),
		Before:   func(*JoinPoint) { log = append(log, "before") },
		AfterReturning: func(jp *JoinPoint) {
			log = append(log, "afterReturning")
		},
		After: func(*JoinPoint) { log = append(log, "after") },
	})
	if err != nil {
		t.Fatal(err)
	}
	fn := w.Weave("c", "M", func(args ...any) (any, error) {
		log = append(log, "body")
		return nil, nil
	})
	if _, err := fn(); err != nil {
		t.Fatal(err)
	}
	want := "before,body,afterReturning,after"
	if got := strings.Join(log, ","); got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
	if w.JoinPoints() != 1 {
		t.Fatalf("join points = %d", w.JoinPoints())
	}
}

func TestAfterThrowing(t *testing.T) {
	w := NewWeaver(nil)
	boom := errors.New("boom")
	var threw, returned bool
	if err := w.Register(&Aspect{
		Name:           "x",
		Pointcut:       MustPointcut("within(c)"),
		AfterReturning: func(*JoinPoint) { returned = true },
		AfterThrowing: func(jp *JoinPoint) {
			threw = true
			if !errors.Is(jp.Err, boom) {
				t.Errorf("jp.Err = %v", jp.Err)
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	fn := w.Weave("c", "M", func(args ...any) (any, error) { return nil, boom })
	if _, err := fn(); !errors.Is(err, boom) {
		t.Fatalf("woven error = %v", err)
	}
	if !threw || returned {
		t.Fatalf("threw=%v returned=%v", threw, returned)
	}
}

func TestAroundCanSkipExecution(t *testing.T) {
	w := NewWeaver(nil)
	if err := w.Register(&Aspect{
		Name:     "guard",
		Pointcut: MustPointcut("within(c)"),
		Around: func(jp *JoinPoint, proceed Proceed) (any, error) {
			return "short-circuit", nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	ran := false
	fn := w.Weave("c", "M", func(args ...any) (any, error) { ran = true; return 1, nil })
	got, err := fn()
	if err != nil || got.(string) != "short-circuit" {
		t.Fatalf("around = %v, %v", got, err)
	}
	if ran {
		t.Fatal("component ran despite skipping around")
	}
}

func TestAroundWrapsResult(t *testing.T) {
	w := NewWeaver(nil)
	if err := w.Register(&Aspect{
		Name:     "doubler",
		Pointcut: MustPointcut("within(c)"),
		Around: func(jp *JoinPoint, proceed Proceed) (any, error) {
			v, err := proceed()
			if err != nil {
				return nil, err
			}
			return v.(int) * 2, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	fn := w.Weave("c", "M", okFunc(21))
	got, _ := fn()
	if got.(int) != 42 {
		t.Fatalf("around result = %v", got)
	}
}

func TestPrecedenceNesting(t *testing.T) {
	w := NewWeaver(nil)
	var log []string
	mk := func(name string, order int) *Aspect {
		return &Aspect{
			Name: name, Order: order,
			Pointcut: MustPointcut("within(c)"),
			Before:   func(*JoinPoint) { log = append(log, name+".before") },
			After:    func(*JoinPoint) { log = append(log, name+".after") },
		}
	}
	if err := w.Register(mk("inner", 10)); err != nil {
		t.Fatal(err)
	}
	if err := w.Register(mk("outer", 0)); err != nil {
		t.Fatal(err)
	}
	fn := w.Weave("c", "M", okFunc(nil))
	if _, err := fn(); err != nil {
		t.Fatal(err)
	}
	want := "outer.before,inner.before,inner.after,outer.after"
	if got := strings.Join(log, ","); got != want {
		t.Fatalf("nesting = %s, want %s", got, want)
	}
}

func TestRuntimeDisableAspect(t *testing.T) {
	w := NewWeaver(nil)
	count := 0
	a := &Aspect{
		Name:     "counter",
		Pointcut: MustPointcut("within(c)"),
		Before:   func(*JoinPoint) { count++ },
	}
	if err := w.Register(a); err != nil {
		t.Fatal(err)
	}
	fn := w.Weave("c", "M", okFunc(nil))
	fn()
	a.SetEnabled(false)
	fn()
	fn()
	a.SetEnabled(true)
	fn()
	if count != 2 {
		t.Fatalf("advice fired %d times, want 2", count)
	}
	if a.Executions() != 2 {
		t.Fatalf("Executions = %d", a.Executions())
	}
}

func TestRuntimeDisableComponent(t *testing.T) {
	w := NewWeaver(nil)
	count := 0
	if err := w.Register(&Aspect{
		Name:     "counter",
		Pointcut: MustPointcut("within(*)"),
		Before:   func(*JoinPoint) { count++ },
	}); err != nil {
		t.Fatal(err)
	}
	fn := w.Weave("c", "M", okFunc(nil))
	fn()
	w.SetComponentEnabled("c", false)
	if w.ComponentEnabled("c") {
		t.Fatal("ComponentEnabled true after disable")
	}
	fn()
	w.SetComponentEnabled("c", true)
	fn()
	if count != 2 {
		t.Fatalf("advice fired %d times, want 2", count)
	}
}

func TestLateRegistrationAffectsWovenComponents(t *testing.T) {
	// The paper injects monitoring at runtime over already-deployed
	// components; late aspects must apply to handles woven earlier.
	w := NewWeaver(nil)
	fn := w.Weave("c", "M", okFunc(nil))
	fn() // resolve and cache the empty chain
	count := 0
	if err := w.Register(&Aspect{
		Name:     "late",
		Pointcut: MustPointcut("within(c)"),
		Before:   func(*JoinPoint) { count++ },
	}); err != nil {
		t.Fatal(err)
	}
	fn()
	if count != 1 {
		t.Fatal("late-registered aspect did not fire on woven handle")
	}
	w.Unregister("late")
	fn()
	if count != 1 {
		t.Fatal("unregistered aspect still firing")
	}
}

func TestJoinPointTimesFromClock(t *testing.T) {
	clock := sim.NewVirtualClock()
	w := NewWeaver(clock)
	var seen *JoinPoint
	if err := w.Register(&Aspect{
		Name:     "timer",
		Pointcut: MustPointcut("within(c)"),
		Around: func(jp *JoinPoint, proceed Proceed) (any, error) {
			seen = jp
			clock.Advance(5 * time.Millisecond) // simulated service time
			return proceed()
		},
	}); err != nil {
		t.Fatal(err)
	}
	fn := w.Weave("c", "M", okFunc(nil))
	if _, err := fn(); err != nil {
		t.Fatal(err)
	}
	if seen.Duration() != 5*time.Millisecond {
		t.Fatalf("Duration = %v", seen.Duration())
	}
	if seen.Signature() != "c.M" {
		t.Fatalf("Signature = %q", seen.Signature())
	}
}

func TestAfterRunsOnPanic(t *testing.T) {
	w := NewWeaver(nil)
	ran := false
	if err := w.Register(&Aspect{
		Name:     "finally",
		Pointcut: MustPointcut("within(c)"),
		After:    func(*JoinPoint) { ran = true },
	}); err != nil {
		t.Fatal(err)
	}
	fn := w.Weave("c", "M", func(args ...any) (any, error) { panic("die") })
	func() {
		defer func() { recover() }()
		fn()
	}()
	if !ran {
		t.Fatal("after advice skipped on panic")
	}
}

func TestRegisterValidation(t *testing.T) {
	w := NewWeaver(nil)
	cases := []*Aspect{
		{},
		{Name: "x"},
		{Name: "x", Pointcut: MustPointcut("within(c)")},
	}
	for i, a := range cases {
		if err := w.Register(a); err == nil {
			t.Errorf("case %d: invalid aspect registered", i)
		}
	}
	ok := &Aspect{Name: "x", Pointcut: MustPointcut("within(c)"), Before: func(*JoinPoint) {}}
	if err := w.Register(ok); err != nil {
		t.Fatal(err)
	}
	dup := &Aspect{Name: "x", Pointcut: MustPointcut("within(c)"), Before: func(*JoinPoint) {}}
	if err := w.Register(dup); err == nil {
		t.Fatal("duplicate name registered")
	}
}

func TestFindAndAspects(t *testing.T) {
	w := NewWeaver(nil)
	a := &Aspect{Name: "a", Pointcut: MustPointcut("within(c)"), Before: func(*JoinPoint) {}}
	if err := w.Register(a); err != nil {
		t.Fatal(err)
	}
	got, ok := w.Find("a")
	if !ok || got != a {
		t.Fatal("Find failed")
	}
	if _, ok := w.Find("nope"); ok {
		t.Fatal("Find found ghost")
	}
	if len(w.Aspects()) != 1 {
		t.Fatal("Aspects count wrong")
	}
	if !w.Unregister("a") || w.Unregister("a") {
		t.Fatal("Unregister bookkeeping wrong")
	}
}

func TestWeaveDepthPropagates(t *testing.T) {
	w := NewWeaver(nil)
	var depths []int
	if err := w.Register(&Aspect{
		Name:     "d",
		Pointcut: MustPointcut("within(*)"),
		Before:   func(jp *JoinPoint) { depths = append(depths, jp.Depth) },
	}); err != nil {
		t.Fatal(err)
	}
	inner := w.WeaveDepth("dao", "Get", okFunc(nil))
	outer := w.WeaveDepth("servlet", "Service", func(args ...any) (any, error) {
		return inner(1)
	})
	if _, err := outer(0); err != nil {
		t.Fatal(err)
	}
	if len(depths) != 2 || depths[0] != 0 || depths[1] != 1 {
		t.Fatalf("depths = %v", depths)
	}
}

func TestWeaveNilPanics(t *testing.T) {
	w := NewWeaver(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Weave(nil) did not panic")
		}
	}()
	w.Weave("c", "M", nil)
}

func TestMultipleAspectsShareJoinPoint(t *testing.T) {
	w := NewWeaver(nil)
	var first, second *JoinPoint
	mk := func(name string, dst **JoinPoint, order int) *Aspect {
		return &Aspect{
			Name: name, Order: order,
			Pointcut: MustPointcut("within(c)"),
			Before:   func(jp *JoinPoint) { *dst = jp },
		}
	}
	if err := w.Register(mk("a", &first, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Register(mk("b", &second, 1)); err != nil {
		t.Fatal(err)
	}
	fn := w.Weave("c", "M", okFunc(nil))
	fn()
	if first == nil || first != second {
		t.Fatal("aspects saw different join points")
	}
}

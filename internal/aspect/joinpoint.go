// Package aspect provides the Aspect-Oriented Programming substrate of the
// reproduction: join points, a pointcut expression language, advice kinds
// and a weaver that wraps component invocation handles.
//
// AspectJ rewrites JVM bytecode at load time; Go has no such facility, so
// weaving happens when a component registers its invocation handle with the
// container. The observable semantics the paper relies on are preserved:
// advice executes before/after/around every matched component execution,
// aspects can be added and (de)activated at runtime without touching
// application code, and the interception cost is real and measurable.
//
// Concurrency contract: woven handles may be invoked from any number of
// goroutines concurrently with configuration changes. Dispatch is
// lock-free — it reads an immutable configuration snapshot through an
// atomic pointer and revalidates a generation-stamped per-handle advice
// chain cache; mutations (Register, Unregister, SetComponentEnabled) copy
// and swap the snapshot under a mutex dispatch never touches, and every
// handle observes a configuration change on its very next call. Advice
// bodies themselves must be safe for concurrent execution; the weaver
// gives them no serialisation.
//
// JoinPoint lifetime contract: the JoinPoint passed to advice is pooled
// and recycled as soon as the advised execution completes — exactly
// AspectJ's thisJoinPoint semantics, which is only meaningful during the
// advised execution. Advice must not retain the JoinPoint (or its Args
// slice) past its own return; copy out whatever outlives the execution.
package aspect

import (
	"time"
)

// Func is a component invocation handle: the unit the weaver wraps. The
// servlet container adapts each component method to this signature before
// weaving.
type Func func(args ...any) (any, error)

// JoinPoint describes one intercepted execution. A single JoinPoint value
// is shared by all advice bodies that fire for the execution, mirroring
// AspectJ's thisJoinPoint.
type JoinPoint struct {
	// Component is the logical component name, e.g. "tpcw.TPCW_home".
	Component string
	// Method is the executed method name, e.g. "Service".
	Method string
	// Args are the invocation arguments.
	Args []any
	// Start and End bound the execution including inner advice. End is
	// zero until the execution completes.
	Start, End time.Time
	// Result and Err hold the outcome once the execution has proceeded.
	Result any
	Err    error
	// Depth is the nesting depth of woven calls on this goroutine-less
	// invocation chain: 0 for a top-level component execution, 1 for a
	// component invoked by another woven component, and so on. Trace
	// aspects use it to reconstruct per-request component paths.
	Depth int
}

// Keyed is implemented by invocation arguments that can identify the
// request flow they belong to. The container's request and the database
// connection bound to it return the same key, which lets trace-collecting
// aspects stitch a servlet execution and its nested DAO executions into
// one per-request component path without any explicit context plumbing.
type Keyed interface {
	// TraceKey returns a comparable identity for the current flow.
	TraceKey() any
}

// Key extracts the flow key from the join point's arguments (nil when no
// argument is Keyed).
func (jp *JoinPoint) Key() any {
	for _, a := range jp.Args {
		if k, ok := a.(Keyed); ok {
			return k.TraceKey()
		}
	}
	return nil
}

// Signature returns "component.method", the form pointcuts match against.
func (jp *JoinPoint) Signature() string { return jp.Component + "." + jp.Method }

// Duration returns the observed execution time (zero until complete).
func (jp *JoinPoint) Duration() time.Duration {
	if jp.End.IsZero() {
		return 0
	}
	return jp.End.Sub(jp.Start)
}

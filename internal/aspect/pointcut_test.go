package aspect

import (
	"errors"
	"testing"
)

func TestExecutionPointcut(t *testing.T) {
	pc := MustPointcut("execution(tpcw.home.Service)")
	if !pc.Matches("tpcw.home", "Service") {
		t.Fatal("exact execution did not match")
	}
	if pc.Matches("tpcw.home", "Init") || pc.Matches("tpcw.search", "Service") {
		t.Fatal("execution over-matched")
	}
}

func TestExecutionWildcards(t *testing.T) {
	pc := MustPointcut("execution(tpcw.*.Service)")
	if !pc.Matches("tpcw.home", "Service") || !pc.Matches("tpcw.search", "Service") {
		t.Fatal("component wildcard failed")
	}
	if pc.Matches("dao.cart", "Service") {
		t.Fatal("component wildcard over-matched")
	}
	all := MustPointcut("execution(*.*)")
	if !all.Matches("anything", "Anything") {
		t.Fatal("universal execution failed")
	}
}

func TestWithinPointcut(t *testing.T) {
	pc := MustPointcut("within(tpcw.*)")
	if !pc.Matches("tpcw.home", "Service") || !pc.Matches("tpcw.home", "Init") {
		t.Fatal("within should match every method")
	}
	if pc.Matches("dao.cart", "Service") {
		t.Fatal("within over-matched")
	}
}

func TestBooleanOperators(t *testing.T) {
	pc := MustPointcut("within(tpcw.*) && !execution(*.Init)")
	if !pc.Matches("tpcw.home", "Service") {
		t.Fatal("and/not combination failed")
	}
	if pc.Matches("tpcw.home", "Init") {
		t.Fatal("negation failed")
	}
	or := MustPointcut("within(a.*) || within(b.*)")
	if !or.Matches("a.x", "M") || !or.Matches("b.y", "M") || or.Matches("c.z", "M") {
		t.Fatal("or failed")
	}
}

func TestPrecedence(t *testing.T) {
	// || binds looser than &&: a || b && c  ==  a || (b && c)
	pc := MustPointcut("within(a.*) || within(b.*) && within(none.*)")
	if !pc.Matches("a.x", "M") {
		t.Fatal("precedence: left or-branch should match")
	}
	if pc.Matches("b.x", "M") {
		t.Fatal("precedence: b && none should not match")
	}
	grouped := MustPointcut("(within(a.*) || within(b.*)) && execution(*.Service)")
	if !grouped.Matches("b.x", "Service") || grouped.Matches("b.x", "Init") {
		t.Fatal("grouping failed")
	}
}

func TestDoubleNegation(t *testing.T) {
	pc := MustPointcut("!!within(a.*)")
	if !pc.Matches("a.x", "M") || pc.Matches("b.x", "M") {
		t.Fatal("double negation failed")
	}
}

func TestWhitespaceTolerance(t *testing.T) {
	pc := MustPointcut("  within( tpcw.* )   &&  ! execution( *.Init ) ")
	if !pc.Matches("tpcw.home", "Service") || pc.Matches("tpcw.home", "Init") {
		t.Fatal("whitespace handling failed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"execution",
		"execution(",
		"execution()",
		"execution(nodot)",
		"execution(trailingdot.)",
		"execution(.leading)",
		"within",
		"within()",
		"bogus(a.b)",
		"within(a) &&",
		"within(a) && ",
		"(within(a)",
		"within(a) within(b)",
		"execution(sp ace.M)",
		"execution(a.b) garbage",
		"within(a;b)",
	}
	for _, src := range bad {
		if _, err := ParsePointcut(src); err == nil {
			t.Errorf("ParsePointcut(%q) succeeded, want error", src)
		} else if !errors.Is(err, ErrBadPointcut) {
			t.Errorf("ParsePointcut(%q) error %v is not ErrBadPointcut", src, err)
		}
	}
}

func TestMustPointcutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPointcut did not panic")
		}
	}()
	MustPointcut("not valid")
}

func TestStringRoundTrip(t *testing.T) {
	src := "within(tpcw.*) && !execution(*.Init)"
	pc := MustPointcut(src)
	if pc.String() != src {
		t.Fatalf("String = %q", pc.String())
	}
	re := MustPointcut(pc.String())
	for _, probe := range []struct{ c, m string }{
		{"tpcw.home", "Service"}, {"tpcw.home", "Init"}, {"x", "Y"},
	} {
		if pc.Matches(probe.c, probe.m) != re.Matches(probe.c, probe.m) {
			t.Fatalf("reparse changed semantics for %v", probe)
		}
	}
}

func TestMethodPartIsLastDot(t *testing.T) {
	pc := MustPointcut("execution(a.b.c.Method)")
	if !pc.Matches("a.b.c", "Method") {
		t.Fatal("multi-dot component failed")
	}
	if pc.Matches("a.b", "c.Method") {
		t.Fatal("method must be the last segment only")
	}
}

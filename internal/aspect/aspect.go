package aspect

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Proceed continues an around-advised execution with the original
// arguments, running inner advice layers and finally the component itself.
type Proceed func() (any, error)

// Aspect bundles a pointcut with advice bodies, mirroring an AspectJ
// aspect. Any subset of the advice fields may be set. Aspects are enabled
// on registration and can be switched at runtime — this is the paper's
// "activate or deactivate the AC in runtime" capability that keeps
// monitoring overhead controllable.
type Aspect struct {
	// Name identifies the aspect in the weaver and over JMX.
	Name string
	// Pointcut selects the join points this aspect advises.
	Pointcut *Pointcut
	// Order sets precedence: lower values are outermost (their Before
	// runs first, their After runs last). Equal orders apply in
	// registration order.
	Order int

	// Before runs before the execution proceeds.
	Before func(*JoinPoint)
	// Around wraps the execution; it must call proceed (directly or
	// not at all, in which case the execution is skipped and the
	// advice's return is used).
	Around func(*JoinPoint, Proceed) (any, error)
	// AfterReturning runs after a successful execution.
	AfterReturning func(*JoinPoint)
	// AfterThrowing runs after a failed execution (non-nil error).
	AfterThrowing func(*JoinPoint)
	// After runs after the execution regardless of outcome (finally).
	After func(*JoinPoint)

	enabled    atomic.Bool
	executions atomic.Int64
}

// Validate reports whether the aspect is well-formed: a name, a pointcut
// and at least one advice body.
func (a *Aspect) Validate() error {
	if a.Name == "" {
		return errors.New("aspect: aspect without name")
	}
	if a.Pointcut == nil {
		return fmt.Errorf("aspect: aspect %q without pointcut", a.Name)
	}
	if a.Before == nil && a.Around == nil && a.AfterReturning == nil &&
		a.AfterThrowing == nil && a.After == nil {
		return fmt.Errorf("aspect: aspect %q has no advice", a.Name)
	}
	return nil
}

// Enabled reports whether the aspect's advice currently fires.
func (a *Aspect) Enabled() bool { return a.enabled.Load() }

// SetEnabled switches the aspect at runtime. Woven components observe the
// change on their next invocation; no re-weaving happens.
func (a *Aspect) SetEnabled(on bool) { a.enabled.Store(on) }

// Executions returns how many join points this aspect has advised.
func (a *Aspect) Executions() int64 { return a.executions.Load() }

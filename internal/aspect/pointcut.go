package aspect

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/glob"
)

// Pointcut is a compiled pointcut expression. It decides which join points
// an aspect's advice applies to.
//
// The expression language is the subset of AspectJ the paper's framework
// needs, with '*' wildcards:
//
//	execution(component.method)   matches executions of a method
//	within(component)             matches any method of a component
//	expr && expr                  both match
//	expr || expr                  either matches
//	!expr                         negation
//	(expr)                        grouping
//
// Component names may contain dots; the method part of an execution
// designator is everything after the last dot.
type Pointcut struct {
	expr pcNode
	src  string
}

// ErrBadPointcut reports a syntactically invalid pointcut expression.
var ErrBadPointcut = errors.New("aspect: bad pointcut")

// ParsePointcut compiles src into a Pointcut.
func ParsePointcut(src string) (*Pointcut, error) {
	p := &pcParser{src: src}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("%w: trailing input at %d in %q", ErrBadPointcut, p.pos, src)
	}
	return &Pointcut{expr: expr, src: src}, nil
}

// MustPointcut compiles src and panics on error; for constants.
func MustPointcut(src string) *Pointcut {
	pc, err := ParsePointcut(src)
	if err != nil {
		panic(err)
	}
	return pc
}

// Matches reports whether the pointcut selects the given component.method
// join point.
func (pc *Pointcut) Matches(component, method string) bool {
	return pc.expr.matches(component, method)
}

// String returns the source expression.
func (pc *Pointcut) String() string { return pc.src }

type pcNode interface {
	matches(component, method string) bool
}

type pcExecution struct{ comp, method string }

func (n pcExecution) matches(c, m string) bool {
	return glob.Match(n.comp, c) && glob.Match(n.method, m)
}

type pcWithin struct{ comp string }

func (n pcWithin) matches(c, _ string) bool { return glob.Match(n.comp, c) }

type pcNot struct{ inner pcNode }

func (n pcNot) matches(c, m string) bool { return !n.inner.matches(c, m) }

type pcAnd struct{ l, r pcNode }

func (n pcAnd) matches(c, m string) bool { return n.l.matches(c, m) && n.r.matches(c, m) }

type pcOr struct{ l, r pcNode }

func (n pcOr) matches(c, m string) bool { return n.l.matches(c, m) || n.r.matches(c, m) }

// pcParser is a recursive-descent parser with precedence ! > && > ||.
type pcParser struct {
	src string
	pos int
}

func (p *pcParser) parseExpr() (pcNode, error) { // '||' level
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if !p.eat("||") {
			return left, nil
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = pcOr{l: left, r: right}
	}
}

func (p *pcParser) parseAnd() (pcNode, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if !p.eat("&&") {
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = pcAnd{l: left, r: right}
	}
}

func (p *pcParser) parseUnary() (pcNode, error) {
	p.skipSpace()
	if p.eat("!") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return pcNot{inner: inner}, nil
	}
	if p.eat("(") {
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if !p.eat(")") {
			return nil, fmt.Errorf("%w: missing ')' at %d in %q", ErrBadPointcut, p.pos, p.src)
		}
		return inner, nil
	}
	return p.parseDesignator()
}

func (p *pcParser) parseDesignator() (pcNode, error) {
	p.skipSpace()
	switch {
	case p.eat("execution"):
		arg, err := p.parseParenArg()
		if err != nil {
			return nil, err
		}
		dot := strings.LastIndexByte(arg, '.')
		if dot <= 0 || dot == len(arg)-1 {
			return nil, fmt.Errorf("%w: execution wants component.method, got %q", ErrBadPointcut, arg)
		}
		return pcExecution{comp: arg[:dot], method: arg[dot+1:]}, nil
	case p.eat("within"):
		arg, err := p.parseParenArg()
		if err != nil {
			return nil, err
		}
		return pcWithin{comp: arg}, nil
	default:
		return nil, fmt.Errorf("%w: expected designator at %d in %q", ErrBadPointcut, p.pos, p.src)
	}
}

func (p *pcParser) parseParenArg() (string, error) {
	p.skipSpace()
	if !p.eat("(") {
		return "", fmt.Errorf("%w: missing '(' at %d in %q", ErrBadPointcut, p.pos, p.src)
	}
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != ')' {
		p.pos++
	}
	if p.pos == len(p.src) {
		return "", fmt.Errorf("%w: missing ')' in %q", ErrBadPointcut, p.src)
	}
	arg := strings.TrimSpace(p.src[start:p.pos])
	p.pos++ // consume ')'
	if arg == "" {
		return "", fmt.Errorf("%w: empty designator argument in %q", ErrBadPointcut, p.src)
	}
	for _, r := range arg {
		if !isNameRune(r) {
			return "", fmt.Errorf("%w: bad character %q in argument %q", ErrBadPointcut, r, arg)
		}
	}
	return arg, nil
}

func isNameRune(r rune) bool {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		return true
	case r == '_', r == '*', r == '.', r == '-':
		return true
	}
	return false
}

func (p *pcParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *pcParser) eat(tok string) bool {
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

package objsize

import (
	"testing"
	"testing/quick"
	"unsafe"
)

func TestNilMeasuresZero(t *testing.T) {
	for _, p := range []Policy{Shallow, OneLevel, TwoLevel, Transitive} {
		if got := New(p).Of(nil); got != 0 {
			t.Fatalf("policy %v: Of(nil) = %d", p, got)
		}
	}
}

func TestScalarSizes(t *testing.T) {
	s := New(Shallow)
	if got := s.Of(int64(1)); got != 8 {
		t.Fatalf("int64 = %d", got)
	}
	if got := s.Of(byte(1)); got != 1 {
		t.Fatalf("byte = %d", got)
	}
	if got := s.Of(3.14); got != 8 {
		t.Fatalf("float64 = %d", got)
	}
}

func TestStringPolicies(t *testing.T) {
	str := "hello, world" // 12 bytes payload
	header := int64(unsafe.Sizeof(""))
	if got := New(Shallow).Of(str); got != header {
		t.Fatalf("shallow string = %d, want %d", got, header)
	}
	if got := New(OneLevel).Of(str); got != header+12 {
		t.Fatalf("one-level string = %d, want %d", got, header+12)
	}
}

func TestByteSlicePolicies(t *testing.T) {
	buf := make([]byte, 1000)
	header := int64(unsafe.Sizeof([]byte(nil)))
	if got := New(Shallow).Of(buf); got != header {
		t.Fatalf("shallow = %d, want header %d", got, header)
	}
	if got := New(OneLevel).Of(buf); got != header+1000 {
		t.Fatalf("one-level = %d, want %d", got, header+1000)
	}
}

func TestSliceCapacityCounted(t *testing.T) {
	buf := make([]byte, 10, 1000)
	header := int64(unsafe.Sizeof([]byte(nil)))
	if got := New(OneLevel).Of(buf); got != header+1000 {
		t.Fatalf("capacity not charged: %d, want %d", got, header+1000)
	}
}

func TestNestedSliceDepth(t *testing.T) {
	// [][]byte: outer backing array at level 1 holds inner headers;
	// inner payloads live at level 2.
	chunks := [][]byte{make([]byte, 100), make([]byte, 100)}
	hdr := int64(unsafe.Sizeof([]byte(nil)))
	one := New(OneLevel).Of(chunks)
	wantOne := hdr + 2*hdr // outer header + backing array of two headers
	if one != wantOne {
		t.Fatalf("one-level nested = %d, want %d (payloads excluded)", one, wantOne)
	}
	two := New(TwoLevel).Of(chunks)
	if two != wantOne+200 {
		t.Fatalf("two-level nested = %d, want %d", two, wantOne+200)
	}
}

type leaky struct {
	id   int64
	leak []byte
}

func TestStructWithLeakBuffer(t *testing.T) {
	// The fault injector retains leaks as a flat []byte precisely so the
	// paper's one-level policy sees them. This is that contract.
	l := &leaky{id: 7, leak: make([]byte, 100*1024)}
	got := New(OneLevel).Of(l)
	if got < 100*1024 {
		t.Fatalf("one-level leak measurement = %d, want >= 100KiB", got)
	}
	if delta := got - 100*1024; delta > 256 {
		t.Fatalf("overhead beyond payload = %d bytes, suspicious", delta)
	}
}

func TestGrowthIsMonotone(t *testing.T) {
	// Retained size charges slice capacity (the backing array really is
	// retained), so growth is stepwise: non-decreasing every step and
	// strictly larger over the whole run.
	l := &leaky{}
	s := New(Transitive)
	initial := s.Of(l)
	prev := initial
	for i := 0; i < 10; i++ {
		l.leak = append(l.leak, make([]byte, 10*1024)...)
		cur := s.Of(l)
		if cur < prev {
			t.Fatalf("size shrank after leak: %d -> %d", prev, cur)
		}
		prev = cur
	}
	if prev < initial+100*1024 {
		t.Fatalf("size grew %d bytes over 100KiB of leaks", prev-initial)
	}
}

type node struct {
	payload [64]byte
	next    *node
}

func TestCycleSafe(t *testing.T) {
	a, b := &node{}, &node{}
	a.next, b.next = b, a
	got := New(Transitive).Of(a)
	nodeSz := int64(unsafe.Sizeof(node{}))
	ptr := int64(unsafe.Sizeof(uintptr(0)))
	want := ptr + 2*nodeSz // the interface holds *node (counted as pointer) -> a -> b, cycle stops
	_ = want
	if got < 2*nodeSz || got > 2*nodeSz+2*ptr {
		t.Fatalf("cyclic size = %d, want about %d", got, 2*nodeSz)
	}
}

func TestSharedBackingCountedOnce(t *testing.T) {
	buf := make([]byte, 1024)
	type holder struct{ a, b []byte }
	h := holder{a: buf, b: buf}
	got := New(Transitive).Of(h)
	hdr := int64(unsafe.Sizeof([]byte(nil)))
	want := 2*hdr + 1024
	if got != want {
		t.Fatalf("shared backing = %d, want %d (counted once)", got, want)
	}
}

func TestMapMeasurement(t *testing.T) {
	m := map[int64]int64{1: 1, 2: 2, 3: 3}
	got := New(OneLevel).Of(m)
	// map header (pointer-sized) + 3*(overhead + 8 + 8)
	min := int64(3 * (mapEntryOverhead + 16))
	if got < min {
		t.Fatalf("map size = %d, want >= %d", got, min)
	}
	if got := New(Shallow).Of(m); got != int64(unsafe.Sizeof(uintptr(0))) {
		t.Fatalf("shallow map = %d", got)
	}
}

func TestInterfaceField(t *testing.T) {
	type box struct{ v any }
	b := box{v: [256]byte{}}
	got := New(OneLevel).Of(b)
	if got < 256 {
		t.Fatalf("interface payload not counted: %d", got)
	}
}

func TestNilPointerAndSlice(t *testing.T) {
	type s struct {
		p *int64
		b []byte
		m map[int]int
	}
	v := s{}
	got := New(Transitive).Of(v)
	if want := int64(unsafe.Sizeof(v)); got != want {
		t.Fatalf("all-nil struct = %d, want %d", got, want)
	}
}

func TestPolicyString(t *testing.T) {
	cases := map[Policy]string{
		Shallow: "shallow", OneLevel: "one-level",
		TwoLevel: "two-level", Transitive: "transitive", Policy(99): "unknown",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Fatalf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestDefaultOfIsTransitive(t *testing.T) {
	chunks := [][]byte{make([]byte, 100)}
	if Of(chunks) <= New(OneLevel).Of(chunks) {
		t.Fatal("package-level Of should follow deeper than one level")
	}
}

func TestTransitiveAtLeastOneLevel(t *testing.T) {
	// Property: deeper policies never report less than shallower ones.
	f := func(payload []byte, n uint8) bool {
		type wrap struct {
			bufs [][]byte
			m    map[uint8][]byte
		}
		w := wrap{m: map[uint8][]byte{n: payload}}
		for i := 0; i < int(n%8); i++ {
			w.bufs = append(w.bufs, payload)
		}
		sh := New(Shallow).Of(w)
		one := New(OneLevel).Of(w)
		two := New(TwoLevel).Of(w)
		tr := New(Transitive).Of(w)
		return sh <= one && one <= two && two <= tr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArrayElementsInline(t *testing.T) {
	var a [4][]byte
	for i := range a {
		a[i] = make([]byte, 10)
	}
	got := New(OneLevel).Of(a)
	hdr := int64(unsafe.Sizeof([]byte(nil)))
	want := 4*hdr + 40 // array is inline; payloads are one hop away
	if got != want {
		t.Fatalf("array = %d, want %d", got, want)
	}
}

func BenchmarkTransitiveSize(b *testing.B) {
	l := &leaky{leak: make([]byte, 1<<20)}
	s := New(Transitive)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Of(l)
	}
}

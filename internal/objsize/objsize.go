// Package objsize estimates the retained memory size of live Go values by
// reflection. It stands in for the paper's JMX monitoring agent that reports
// "the real size of a Java Object": the size of the object under monitoring
// including the objects it references directly, but without following the
// references of those referenced objects (one level of indirection), so the
// measurement never walks the entire object graph of the application.
//
// The depth policy is configurable because the paper's one-level rule is a
// pragmatic cut-off, not a law: Shallow counts only the inline
// representation, OneLevel reproduces the paper, TwoLevel follows one more
// hop, and Transitive walks the full reachable graph with cycle detection.
package objsize

import (
	"reflect"
	"sync"
)

// Policy selects how many levels of indirection a measurement follows.
type Policy int

// Available measurement policies.
const (
	// Shallow counts only the inline representation of the value.
	Shallow Policy = iota
	// OneLevel additionally counts data reachable through one
	// indirection (pointee, slice backing array, string payload, map
	// contents, interface dynamic value). This is the paper's policy.
	OneLevel
	// TwoLevel follows two levels of indirection.
	TwoLevel
	// Transitive walks the full reachable graph, visiting every
	// referenced object exactly once (cycle- and sharing-safe).
	Transitive
)

func (p Policy) String() string {
	switch p {
	case Shallow:
		return "shallow"
	case OneLevel:
		return "one-level"
	case TwoLevel:
		return "two-level"
	case Transitive:
		return "transitive"
	default:
		return "unknown"
	}
}

func (p Policy) depth() int {
	switch p {
	case Shallow:
		return 0
	case OneLevel:
		return 1
	case TwoLevel:
		return 2
	default:
		return 1 << 30
	}
}

// mapEntryOverhead approximates the per-entry bucket overhead of the Go
// runtime map implementation. The exact constant is irrelevant to the
// experiments; it only needs to scale linearly with entries.
const mapEntryOverhead = 16

// Sizer measures values under a fixed policy. The zero value measures with
// the Shallow policy; construct with New for other policies. A Sizer is
// stateless between calls and safe for concurrent use.
type Sizer struct {
	policy Policy
}

// New returns a Sizer with the given policy.
func New(policy Policy) *Sizer { return &Sizer{policy: policy} }

// Policy returns the sizer's policy.
func (s *Sizer) Policy() Policy { return s.policy }

// walkerPool recycles the cycle-detection state between measurements.
// The sampling round measures every instrumented component once per
// round, forever; allocating a fresh visited table per measurement was
// the last steady-state garbage on that path. Entries are cleared on
// put, which keeps the map's buckets.
var walkerPool = sync.Pool{
	New: func() any { return &walker{visited: make(map[visit]bool)} },
}

// Of returns the estimated retained size of v in bytes under the sizer's
// policy. A nil value measures zero.
func (s *Sizer) Of(v any) int64 {
	if v == nil {
		return 0
	}
	w := walkerPool.Get().(*walker)
	defer func() {
		clear(w.visited)
		walkerPool.Put(w)
	}()
	rv := reflect.ValueOf(v)
	// The interface passed in is a transparency device, not part of the
	// object: measuring starts at the dynamic value without charging an
	// indirection level. Likewise, root pointers dereference for free —
	// a Go pointer to the component is how the caller names the object
	// under monitoring, just as a Java reference names the monitored
	// object — so the policy budget applies to the object's own
	// references, matching the paper's semantics.
	var total int64
	depth := s.policy.depth()
	for rv.Kind() == reflect.Pointer && !rv.IsNil() {
		total += int64(rv.Type().Size())
		if !w.mark(rv.Pointer(), rv.Type().Elem()) {
			return total
		}
		rv = rv.Elem()
	}
	return total + w.size(rv, depth)
}

// Of measures v with the Transitive policy, the convenient default for
// callers that want the full retained size.
func Of(v any) int64 { return New(Transitive).Of(v) }

// visit identifies an already-counted referenced region so shared and
// cyclic structures are counted once.
type visit struct {
	ptr uintptr
	typ reflect.Type
}

type walker struct {
	visited map[visit]bool
}

// size returns the inline size of v plus referenced data reachable within
// the given remaining indirection budget.
func (w *walker) size(v reflect.Value, depth int) int64 {
	if !v.IsValid() {
		return 0
	}
	total := int64(v.Type().Size())
	total += w.indirect(v, depth)
	return total
}

// indirect returns the size of data reachable from v through indirections,
// without counting v's own inline representation. Struct fields and array
// elements are part of the inline representation, so they are traversed at
// the same depth; pointers, slices, strings, maps and interfaces consume
// one level of the budget.
func (w *walker) indirect(v reflect.Value, depth int) int64 {
	switch v.Kind() {
	case reflect.Struct:
		if !hasIndirections(v.Type()) {
			return 0
		}
		var sum int64
		for i := 0; i < v.NumField(); i++ {
			sum += w.indirect(v.Field(i), depth)
		}
		return sum

	case reflect.Array:
		if !hasIndirections(v.Type().Elem()) {
			return 0
		}
		var sum int64
		for i := 0; i < v.Len(); i++ {
			sum += w.indirect(v.Index(i), depth)
		}
		return sum

	case reflect.Pointer:
		if v.IsNil() || depth <= 0 {
			return 0
		}
		if !w.mark(v.Pointer(), v.Type().Elem()) {
			return 0
		}
		return w.size(v.Elem(), depth-1)

	case reflect.String:
		if depth <= 0 {
			return 0
		}
		return int64(v.Len())

	case reflect.Slice:
		if v.IsNil() || depth <= 0 {
			return 0
		}
		if v.Cap() > 0 && !w.mark(v.Pointer(), v.Type().Elem()) {
			return 0
		}
		elemType := v.Type().Elem()
		// The backing array is charged for its full capacity; element
		// payloads beyond len are unreachable and counted inline only.
		sum := int64(elemType.Size()) * int64(v.Cap())
		// Skip the reflective element walk entirely for pointer-free
		// element types (e.g. the flat []byte leak buffers): nothing
		// beyond the backing array can be reachable through them, and a
		// megabyte buffer must not cost a million reflect calls.
		if hasIndirections(elemType) {
			for i := 0; i < v.Len(); i++ {
				sum += w.indirect(v.Index(i), depth-1)
			}
		}
		return sum

	case reflect.Map:
		if v.IsNil() || depth <= 0 {
			return 0
		}
		if !w.mark(v.Pointer(), v.Type()) {
			return 0
		}
		var sum int64
		iter := v.MapRange()
		for iter.Next() {
			sum += mapEntryOverhead
			sum += w.size(iter.Key(), depth-1)
			sum += w.size(iter.Value(), depth-1)
		}
		return sum

	case reflect.Interface:
		if v.IsNil() || depth <= 0 {
			return 0
		}
		return w.size(v.Elem(), depth-1)

	default:
		// Chans, funcs and unsafe pointers are opaque: header only.
		return 0
	}
}

func (w *walker) mark(ptr uintptr, typ reflect.Type) bool {
	key := visit{ptr: ptr, typ: typ}
	if w.visited[key] {
		return false
	}
	w.visited[key] = true
	return true
}

// indirCache memoizes hasIndirections per type; the type set of a program
// is small and fixed, so a global cache is both safe and effective.
var indirCache sync.Map // reflect.Type -> bool

// hasIndirections reports whether values of type t can reference data
// outside their inline representation.
func hasIndirections(t reflect.Type) bool {
	if v, ok := indirCache.Load(t); ok {
		return v.(bool)
	}
	// Mark in-progress types as false to terminate recursive types; the
	// final value overwrites it below.
	indirCache.Store(t, false)
	res := false
	switch t.Kind() {
	case reflect.Pointer, reflect.String, reflect.Slice, reflect.Map,
		reflect.Interface, reflect.Chan, reflect.Func, reflect.UnsafePointer:
		res = true
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasIndirections(t.Field(i).Type) {
				res = true
				break
			}
		}
	case reflect.Array:
		res = hasIndirections(t.Elem())
	}
	indirCache.Store(t, res)
	return res
}

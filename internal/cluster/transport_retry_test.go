package cluster

import (
	"errors"
	"testing"
	"time"
)

// flakyConn fails each write with zero bytes on the stream until failures
// is exhausted, then writes cleanly — the retryable error class.
type flakyConn struct {
	discardConn
	failures int
	writes   int
}

func (c *flakyConn) Write(p []byte) (int, error) {
	c.writes++
	if c.failures > 0 {
		c.failures--
		return 0, errors.New("transient: sink full")
	}
	return len(p), nil
}

// partialConn accepts half of every write and then errors — the
// unretryable class: bytes reached the stream.
type partialConn struct {
	discardConn
}

func (c *partialConn) Write(p []byte) (int, error) {
	return len(p) / 2, errors.New("broken pipe")
}

func TestRetryPolicyBackoffBounds(t *testing.T) {
	p := RetryPolicy{Attempts: 5, Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	var rng uint64
	for attempt := 0; attempt < 8; attempt++ {
		want := p.Base << attempt
		if want > p.Max {
			want = p.Max
		}
		for i := 0; i < 32; i++ {
			d := p.backoff(attempt, &rng)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
	// Defaults apply when the policy leaves durations zero.
	var rng2 uint64
	if d := (RetryPolicy{Attempts: 2}).backoff(0, &rng2); d < 5*time.Millisecond || d > 10*time.Millisecond {
		t.Fatalf("default backoff %v outside [5ms, 10ms]", d)
	}
}

// TestBinaryWireRetryRecoversTransient pins satellite behaviour: a write
// failing with nothing on the stream retries under the policy and the
// round is delivered, not dropped.
func TestBinaryWireRetryRecoversTransient(t *testing.T) {
	c := &flakyConn{failures: 2}
	w := NewBinaryWire(c)
	w.SetRetry(RetryPolicy{Attempts: 3, Base: time.Microsecond, Max: time.Microsecond})
	gen := newRoundGen("node1")
	if err := w.Publish(gen.next()); err != nil {
		t.Fatalf("publish did not recover: %v", err)
	}
	if c.writes != 3 {
		t.Fatalf("writes = %d, want 3 (two retries)", c.writes)
	}
	if w.DroppedRounds() != 0 {
		t.Fatalf("dropped = %d, want 0", w.DroppedRounds())
	}
	// The wire is healthy: later rounds flow without retries.
	if err := w.Publish(gen.next()); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryWireRetryExhaustedDropsAndLatches pins that exhausting the
// retry budget counts the lost rounds and latches the wire broken — the
// delta chains already reflect the lost frame.
func TestBinaryWireRetryExhaustedDropsAndLatches(t *testing.T) {
	c := &flakyConn{failures: 100}
	w := NewBinaryWire(c)
	w.SetRetry(RetryPolicy{Attempts: 3, Base: time.Microsecond, Max: time.Microsecond})
	gen := newRoundGen("node1")
	if err := w.Publish(gen.next()); err == nil {
		t.Fatal("exhausted retries did not surface")
	}
	if c.writes != 3 {
		t.Fatalf("writes = %d, want 3 attempts", c.writes)
	}
	if w.DroppedRounds() != 1 {
		t.Fatalf("dropped = %d, want 1", w.DroppedRounds())
	}
	c.failures = 0 // conn heals, but the codec state is unrecoverable
	if err := w.Publish(gen.next()); err == nil {
		t.Fatal("wire did not latch broken")
	}
	if w.DroppedRounds() != 2 {
		t.Fatalf("dropped after latch = %d, want 2", w.DroppedRounds())
	}
}

// TestBinaryWireBatchedRetryDropCountsRounds pins that a lost BATCH frame
// counts every round it carried, not one per frame.
func TestBinaryWireBatchedRetryDropCountsRounds(t *testing.T) {
	c := &flakyConn{failures: 100}
	w := NewBinaryWire(c)
	if err := w.SetBatch(3, 0); err != nil {
		t.Fatal(err)
	}
	gen := newRoundGen("node1")
	if err := w.Publish(gen.next()); err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(gen.next()); err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(gen.next()); err == nil { // third round ships the frame
		t.Fatal("failed flush did not surface")
	}
	if w.DroppedRounds() != 3 {
		t.Fatalf("dropped = %d, want 3 (the whole batch)", w.DroppedRounds())
	}
}

// TestGobWireRetryRecoversTransient mirrors the binary test for the gob
// wire.
func TestGobWireRetryRecoversTransient(t *testing.T) {
	c := &flakyConn{failures: 1}
	w := NewWire(c)
	w.SetRetry(RetryPolicy{Attempts: 2, Base: time.Microsecond, Max: time.Microsecond})
	gen := newRoundGen("node1")
	if err := w.Publish(gen.next()); err != nil {
		t.Fatalf("publish did not recover: %v", err)
	}
	if w.DroppedRounds() != 0 {
		t.Fatalf("dropped = %d, want 0", w.DroppedRounds())
	}
}

// TestGobWireDropsNonFirstFrame pins the gob wire's looser loss
// discipline: losing a whole non-first frame is survivable (fields are
// absolute), so the wire counts the drop and keeps publishing.
func TestGobWireDropsNonFirstFrame(t *testing.T) {
	c := &flakyConn{}
	w := NewWire(c)
	gen := newRoundGen("node1")
	if err := w.Publish(gen.next()); err != nil {
		t.Fatal(err)
	}
	c.failures = 1
	if err := w.Publish(gen.next()); err == nil {
		t.Fatal("lost frame not surfaced")
	}
	if w.DroppedRounds() != 1 {
		t.Fatalf("dropped = %d, want 1", w.DroppedRounds())
	}
	if err := w.Publish(gen.next()); err != nil {
		t.Fatalf("gob wire latched broken on a survivable frame loss: %v", err)
	}
}

// TestGobWireFirstFrameLossLatches pins that losing the first frame — the
// one carrying gob's type definitions — latches the wire broken.
func TestGobWireFirstFrameLossLatches(t *testing.T) {
	c := &flakyConn{failures: 1}
	w := NewWire(c)
	gen := newRoundGen("node1")
	if err := w.Publish(gen.next()); err == nil {
		t.Fatal("lost first frame not surfaced")
	}
	c.failures = 0
	if err := w.Publish(gen.next()); err == nil {
		t.Fatal("wire did not latch broken after losing the type-definition frame")
	}
}

// TestPartialWriteNeverRetried pins that once any byte reaches the
// stream, both wires fail immediately — a retry would corrupt the peer's
// framing — even with a generous retry budget.
func TestPartialWriteNeverRetried(t *testing.T) {
	bw := NewBinaryWire(&partialConn{})
	bw.SetRetry(RetryPolicy{Attempts: 10, Base: time.Microsecond})
	gen := newRoundGen("node1")
	if err := bw.Publish(gen.next()); err == nil {
		t.Fatal("partial write not surfaced")
	}
	if err := bw.Publish(gen.next()); err == nil {
		t.Fatal("binary wire not latched after a partial write")
	}

	gw := NewWire(&partialConn{})
	gw.SetRetry(RetryPolicy{Attempts: 10, Base: time.Microsecond})
	gen2 := newRoundGen("node1")
	if err := gw.Publish(gen2.next()); err == nil {
		t.Fatal("partial write not surfaced")
	}
	if err := gw.Publish(gen2.next()); err == nil {
		t.Fatal("gob wire not latched after a partial write")
	}
}

package cluster

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"
)

// TestSnapshotFrameRoundTrip pins the SNAPSHOT frame layout and its
// corruption guards.
func TestSnapshotFrameRoundTrip(t *testing.T) {
	in := StandbySnapshot{Generation: 7, Aggregator: []byte("agg-state"), Controller: []byte("ctl")}
	frame := AppendSnapshotFrame(nil, in)
	// Strip the length prefix the read loop consumes.
	p := &byteParser{b: frame}
	n, err := p.uvarint()
	if err != nil || n != uint64(len(frame)-p.i) {
		t.Fatalf("frame length prefix: n=%d err=%v", n, err)
	}
	payload := frame[p.i:]
	out, err := DecodeSnapshotFrame(payload)
	if err != nil {
		t.Fatalf("DecodeSnapshotFrame: %v", err)
	}
	if out.Generation != 7 || string(out.Aggregator) != "agg-state" || string(out.Controller) != "ctl" {
		t.Fatalf("round trip = %+v", out)
	}

	// Controller-less snapshots round-trip with a zero-length blob.
	frame = AppendSnapshotFrame(nil, StandbySnapshot{Generation: 1, Aggregator: []byte("a")})
	p = &byteParser{b: frame}
	if _, err := p.uvarint(); err != nil {
		t.Fatal(err)
	}
	out, err = DecodeSnapshotFrame(frame[p.i:])
	if err != nil || len(out.Controller) != 0 {
		t.Fatalf("controller-less round trip: %+v err=%v", out, err)
	}

	// Corruption: wrong type, truncations, trailing bytes.
	if _, err := DecodeSnapshotFrame([]byte{frameBatch, 1}); err == nil {
		t.Fatal("wrong frame type accepted")
	}
	for cut := 1; cut < len(payload); cut++ {
		if _, err := DecodeSnapshotFrame(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeSnapshotFrame(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// staticSnapshotter stands in for the rejuvenation controller (cluster
// cannot import rejuv); the real pairing is exercised by the experiment
// scenarios.
type staticSnapshotter struct{ blob []byte }

func (s staticSnapshotter) AppendSnapshot(dst []byte) []byte { return append(dst, s.blob...) }

// TestStandbyShipAndPromote is the failover tentpole at codec level: the
// active aggregator ships a snapshot every epoch; killing it and
// promoting a fresh aggregator from the receiver's latest generation
// yields a plane whose subsequent state is byte-identical to the
// uninterrupted reference.
func TestStandbyShipAndPromote(t *testing.T) {
	cfg := Config{Detect: testDetect(), IngestLanes: 2}
	nodes := []string{"node1", "node2", "node3"}
	leaks := map[string]int64{"node2": 2048}
	const n, m = 12, 10

	ref := New(cfg)
	ref.Expect(nodes...)
	feedSnap(ref, nodes, leaks, 1, n+m)

	active := New(cfg)
	active.Expect(nodes...)
	ctlBlob := []byte("controller-snapshot-stand-in")
	shipConn, recvConn := net.Pipe()
	recv := NewStandbyReceiver()
	served := make(chan error, 1)
	go func() { served <- recv.Serve(recvConn) }()
	shipper := NewStandbyShipper(shipConn, active, staticSnapshotter{ctlBlob}, 1)
	active.SubscribeEpochs(shipper.ObserveEpoch)

	feedSnap(active, nodes, leaks, 1, n)
	waitFor(t, func() bool { return recv.Received() >= n })
	if got := shipper.Shipped(); got < n {
		t.Fatalf("shipped %d generations, want >= %d", got, n)
	}

	// The active dies mid-epoch: its connection drops with it.
	_ = shipper.Close()
	if err := <-served; err != nil {
		t.Fatalf("receiver serve: %v", err)
	}

	latest, ok := recv.Latest()
	if !ok {
		t.Fatal("no snapshot retained at promotion time")
	}
	if latest.Generation != n {
		t.Fatalf("latest generation = %d, want %d", latest.Generation, n)
	}
	if !bytes.Equal(latest.Controller, ctlBlob) {
		t.Fatal("controller blob did not ride the frame")
	}

	promoted := New(cfg)
	if err := promoted.Restore(latest.Aggregator); err != nil {
		t.Fatalf("promote: %v", err)
	}
	feedSnap(promoted, nodes, leaks, n+1, n+m)
	if !bytes.Equal(promoted.Snapshot(), ref.Snapshot()) {
		t.Fatal("promoted plane diverged from the uninterrupted reference")
	}
}

// TestStandbyShipperEveryEpochs pins the shipping cadence: every=3 ships
// on epochs 3, 6, 9, ...
func TestStandbyShipperEveryEpochs(t *testing.T) {
	cfg := Config{Detect: testDetect()}
	active := New(cfg)
	active.Expect("node1")
	shipConn, recvConn := net.Pipe()
	recv := NewStandbyReceiver()
	go func() { _ = recv.Serve(recvConn) }()
	shipper := NewStandbyShipper(shipConn, active, nil, 3)
	active.SubscribeEpochs(shipper.ObserveEpoch)

	feedSnap(active, []string{"node1"}, nil, 1, 10)
	waitFor(t, func() bool { return recv.Received() >= 3 })
	if got := shipper.Shipped(); got != 3 {
		t.Fatalf("shipped = %d after 10 epochs at every=3, want 3", got)
	}
	_ = shipper.Close()
}

// TestStandbyShipperFailStop pins the broken latch: a dead standby
// connection fails the ship, counts the error, and never wedges the
// epoch path.
func TestStandbyShipperFailStop(t *testing.T) {
	active := New(Config{Detect: testDetect()})
	active.Expect("node1")
	shipConn, recvConn := net.Pipe()
	_ = recvConn.Close() // standby is gone before the first ship
	shipper := NewStandbyShipper(shipConn, active, nil, 1)
	shipper.SetTimeout(50 * time.Millisecond)
	active.SubscribeEpochs(shipper.ObserveEpoch)

	feedSnap(active, []string{"node1"}, nil, 1, 3)
	if shipper.Errors() < 3 {
		t.Fatalf("errors = %d, want one per attempted ship", shipper.Errors())
	}
	if shipper.Shipped() != 0 {
		t.Fatalf("shipped = %d into a closed pipe", shipper.Shipped())
	}
	if err := shipper.Ship(); err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("ship after latch: %v, want broken error", err)
	}
}

// TestStandbyReceiverRejectsRegression pins that a stale or duplicate
// generation drops the stream — an out-of-order snapshot must never
// silently become "latest".
func TestStandbyReceiverRejectsRegression(t *testing.T) {
	var stream []byte
	stream = append(stream, wireMagic[:]...)
	stream = AppendSnapshotFrame(stream, StandbySnapshot{Generation: 2, Aggregator: []byte("x")})
	stream = AppendSnapshotFrame(stream, StandbySnapshot{Generation: 2, Aggregator: []byte("y")})

	client, server := net.Pipe()
	errs := make(chan error, 1)
	recv := NewStandbyReceiver()
	go func() { errs <- recv.Serve(server) }()
	go func() { _, _ = client.Write(stream) }()
	select {
	case err := <-errs:
		if err == nil || !strings.Contains(err.Error(), "regressed") {
			t.Fatalf("serve = %v, want generation-regression error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver did not reject the regressing generation")
	}
	latest, ok := recv.Latest()
	if !ok || string(latest.Aggregator) != "x" {
		t.Fatalf("latest = %+v ok=%v, want the first generation retained", latest, ok)
	}
	_ = client.Close()
}

// TestStandbyReceiverRejectsWrongMagic pins the version gate.
func TestStandbyReceiverRejectsWrongMagic(t *testing.T) {
	client, server := net.Pipe()
	errs := make(chan error, 1)
	go func() { errs <- NewStandbyReceiver().Serve(server) }()
	go func() { _, _ = client.Write([]byte{'A', 'G', 'M', 5, 0}) }()
	select {
	case err := <-errs:
		if err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("serve = %v, want magic error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver accepted a v5 stream")
	}
	_ = client.Close()
}

// waitFor polls cond until it holds or the deadline trips.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

package cluster

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestControlFrameRoundTrip pins that commands and acks survive the wire
// byte for byte, across all kinds and field shapes.
func TestControlFrameRoundTrip(t *testing.T) {
	cmds := []ControlCommand{
		{Seq: 1, Kind: ControlDrain, Node: "node1"},
		{Seq: 7, Kind: ControlRejuvenate, Node: "node2", Component: "home"},
		{Seq: 1 << 40, Kind: ControlReadmit, Node: "n", Weight: 4},
		{Seq: 0, Kind: ControlReadmit, Node: "", Component: "", Weight: -3},
	}
	for _, want := range cmds {
		frame := AppendControlFrame(nil, want)
		n, w := binary.Uvarint(frame)
		if w <= 0 || int(n) != len(frame)-w {
			t.Fatalf("%+v: bad length prefix", want)
		}
		got, err := DecodeControlCommand(frame[w:])
		if err != nil {
			t.Fatalf("%+v: decode: %v", want, err)
		}
		if got != want {
			t.Fatalf("command round trip: got %+v, want %+v", got, want)
		}
	}
	acks := []ControlAck{
		{Seq: 1, Kind: ControlDrain, OK: true},
		{Seq: 7, Kind: ControlRejuvenate, OK: true, Freed: 1 << 33},
		{Seq: 9, Kind: ControlRejuvenate, OK: false, Err: "no such component"},
		{Seq: 0, Kind: ControlReadmit, Freed: -1},
	}
	for _, want := range acks {
		frame := AppendControlAckFrame(nil, want)
		n, w := binary.Uvarint(frame)
		if w <= 0 || int(n) != len(frame)-w {
			t.Fatalf("%+v: bad length prefix", want)
		}
		got, err := DecodeControlAck(frame[w:])
		if err != nil {
			t.Fatalf("%+v: decode: %v", want, err)
		}
		if got != want {
			t.Fatalf("ack round trip: got %+v, want %+v", got, want)
		}
	}
}

// TestControlFrameGolden pins the CONTROL/ACK frame layout byte for byte,
// the counterpart of TestBinaryCodecGolden for the actuation direction.
func TestControlFrameGolden(t *testing.T) {
	cmd := ControlCommand{Seq: 7, Kind: ControlRejuvenate, Node: "node2", Component: "home"}
	if got := hex.EncodeToString(AppendControlFrame(nil, cmd)); got != "0f010207056e6f64653204686f6d6500" {
		t.Fatalf("CONTROL frame drifted: %s", got)
	}
	ack := ControlAck{Seq: 7, Kind: ControlRejuvenate, OK: true, Freed: 4096}
	if got := hex.EncodeToString(AppendControlAckFrame(nil, ack)); got != "0702020701804000" {
		t.Fatalf("ACK frame drifted: %s", got)
	}
}

// TestControlFrameRejectsCorruption drives the control decoders with
// malformed payloads; every one must error, never panic or mis-decode.
func TestControlFrameRejectsCorruption(t *testing.T) {
	frame := AppendControlFrame(nil, ControlCommand{Seq: 3, Kind: ControlDrain, Node: "node1"})
	_, w := binary.Uvarint(frame)
	payload := frame[w:]

	cases := map[string][]byte{
		"empty":           nil,
		"wrong type":      append([]byte{frameBatch}, payload[1:]...),
		"unknown kind":    {frameControl, 0x09, 0x01, 0x00, 0x00, 0x00},
		"truncated":       payload[:len(payload)-2],
		"trailing":        append(append([]byte(nil), payload...), 0x00),
		"oversize string": {frameControl, 0x01, 0x01, 0xFF, 0xFF, 0x03},
	}
	for name, b := range cases {
		if _, err := DecodeControlCommand(b); err == nil {
			t.Fatalf("%s command decoded without error", name)
		}
	}

	ackFrame := AppendControlAckFrame(nil, ControlAck{Seq: 3, Kind: ControlDrain, OK: true})
	_, w = binary.Uvarint(ackFrame)
	ackPayload := ackFrame[w:]
	badFlag := append([]byte(nil), ackPayload...)
	badFlag[3] = 0x07 // the ok byte
	ackCases := map[string][]byte{
		"empty":     nil,
		"batch":     append([]byte{frameBatch}, ackPayload[1:]...),
		"bad flag":  badFlag,
		"truncated": ackPayload[:2],
		"trailing":  append(append([]byte(nil), ackPayload...), 0x01),
	}
	for name, b := range ackCases {
		if _, err := DecodeControlAck(b); err == nil {
			t.Fatalf("%s ack decoded without error", name)
		}
	}
}

// TestLocalControlBinding pins the in-process route: a bound handler runs
// synchronously inside SendControl, and an unbound node fails immediately
// with a route error instead of hanging.
func TestLocalControlBinding(t *testing.T) {
	agg := New(Config{Detect: testDetect()})
	var got ControlCommand
	agg.BindLocalControl("node1", func(cmd ControlCommand) ControlAck {
		got = cmd
		return ControlAck{OK: true, Freed: 123}
	})

	var ack ControlAck
	var ackErr error
	fired := false
	agg.SendControl("node1", ControlRejuvenate, "home", 0, func(a ControlAck, err error) {
		ack, ackErr, fired = a, err, true
	})
	if !fired {
		t.Fatal("local control did not complete synchronously")
	}
	if ackErr != nil || !ack.OK || ack.Freed != 123 {
		t.Fatalf("local ack = %+v err=%v", ack, ackErr)
	}
	if ack.Seq == 0 || ack.Kind != ControlRejuvenate {
		t.Fatalf("plumbing did not stamp seq/kind: %+v", ack)
	}
	if got.Node != "node1" || got.Component != "home" || got.Kind != ControlRejuvenate {
		t.Fatalf("handler saw %+v", got)
	}

	agg.BindLocalControl("node1", nil) // unbind
	fired = false
	agg.SendControl("node1", ControlDrain, "", 0, func(a ControlAck, err error) {
		ackErr, fired = err, true
	})
	if !fired || ackErr == nil || !strings.Contains(ackErr.Error(), "no control route") {
		t.Fatalf("unrouted command: fired=%v err=%v", fired, ackErr)
	}
}

// TestWireControlRoundTrip drives the full actuation path over a pipe:
// the aggregator learns the node's route from its published rounds, sends
// a rejuvenate command down the same connection, the node's ServeControl
// executes it and acks, and round publishing keeps working with ACK
// frames interleaved in the stream.
func TestWireControlRoundTrip(t *testing.T) {
	agg := New(Config{Detect: testDetect()})
	agg.Expect("node1")
	client, server := net.Pipe()
	go func() { _ = agg.ServeBinaryConn(server) }()
	w := NewBinaryWire(client)
	defer w.Close()

	handled := make(chan ControlCommand, 1)
	go func() {
		_ = w.ServeControl(func(cmd ControlCommand) ControlAck {
			handled <- cmd
			return ControlAck{OK: true, Freed: 2048}
		})
	}()

	gen := newRoundGen("node1")
	if err := w.Publish(gen.next()); err != nil {
		t.Fatal(err)
	}
	// The route is learned when the aggregator decodes the round; poll
	// until the command stops failing with "no route".
	acks := make(chan ControlAck, 1)
	deadline := time.After(5 * time.Second)
	for {
		sent := make(chan error, 1)
		agg.SendControl("node1", ControlRejuvenate, "leaky", 0, func(a ControlAck, err error) {
			if err != nil {
				sent <- err
				return
			}
			sent <- nil
			acks <- a
		})
		var err error
		select {
		case err = <-sent:
		case <-deadline:
			t.Fatal("command never completed")
		}
		if err == nil {
			break
		}
		if !strings.Contains(err.Error(), "no control route") {
			t.Fatalf("send failed: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case cmd := <-handled:
		if cmd.Node != "node1" || cmd.Component != "leaky" || cmd.Kind != ControlRejuvenate {
			t.Fatalf("node handled %+v", cmd)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("node never saw the command")
	}
	select {
	case ack := <-acks:
		if !ack.OK || ack.Freed != 2048 {
			t.Fatalf("ack = %+v", ack)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("aggregator never saw the ack")
	}
	// The round direction survives the interleaved ACK frame.
	for i := 0; i < 3; i++ {
		if err := w.Publish(gen.next()); err != nil {
			t.Fatalf("publish after ack: %v", err)
		}
	}
}

// TestWireControlConnCloseFailsPending pins that commands in flight on a
// dying connection fail loudly instead of waiting forever for an ack the
// node can never send.
func TestWireControlConnCloseFailsPending(t *testing.T) {
	agg := New(Config{Detect: testDetect()})
	agg.Expect("node1")
	client, server := net.Pipe()
	served := make(chan struct{})
	go func() { _ = agg.ServeBinaryConn(server); close(served) }()
	w := NewBinaryWire(client)

	// The node side drains control frames without ever acking.
	var drain sync.WaitGroup
	drain.Add(1)
	go func() { defer drain.Done(); _, _ = io.Copy(io.Discard, client) }()

	gen := newRoundGen("node1")
	if err := w.Publish(gen.next()); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 1)
	deadline := time.After(5 * time.Second)
	for {
		sent := make(chan error, 1)
		agg.SendControl("node1", ControlRejuvenate, "leaky", 0, func(a ControlAck, err error) {
			sent <- err
		})
		select {
		case err := <-sent:
			if err == nil {
				t.Fatal("ack arrived from a node that never acks")
			}
			if strings.Contains(err.Error(), "no control route") {
				time.Sleep(time.Millisecond)
				continue
			}
			errs <- err
		case <-time.After(100 * time.Millisecond):
			// Command written, pending: now kill the connection.
			_ = client.Close()
			select {
			case err := <-sent:
				errs <- err
			case <-time.After(5 * time.Second):
				t.Fatal("pending command never failed after connection close")
			}
		case <-deadline:
			t.Fatal("command never reached the pending state")
		}
		break
	}
	err := <-errs
	if err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("pending command error = %v, want a closed-connection error", err)
	}
	<-served
	drain.Wait()
}

// TestServeBinaryConnRejectsUnknownFrame pins that a frame with an
// unassigned type byte drops the connection instead of being skipped —
// skipping would hide a version mismatch.
func TestServeBinaryConnRejectsUnknownFrame(t *testing.T) {
	agg := New(Config{})
	client, server := net.Pipe()
	errs := make(chan error, 1)
	go func() { errs <- agg.ServeBinaryConn(server) }()
	var stream []byte
	stream = append(stream, wireMagic[:]...)
	stream = append(stream, 0x03, 0x7F, 0x00, 0x00) // 3-byte frame, type 0x7F
	if _, err := client.Write(stream); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		if err == nil || !strings.Contains(err.Error(), "frame type") {
			t.Fatalf("serve returned %v, want a frame-type error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serving loop did not reject the unknown frame")
	}
	_ = client.Close()
}

// errAfterConn fails writes after the first n bytes have been accepted.
type errAfterConn struct {
	discardConn
	accepted int
	limit    int
}

func (c *errAfterConn) Write(p []byte) (int, error) {
	if c.accepted >= c.limit {
		return 0, errors.New("sink full")
	}
	c.accepted += len(p)
	return len(p), nil
}

// TestSendControlAckWriteFailureLatchesWire pins that a failed ACK write
// breaks the wire like a failed round write: a lost ack means the
// controller's deadline fires and the stream owner reconnects fresh.
func TestSendControlAckWriteFailureLatchesWire(t *testing.T) {
	c := &errAfterConn{limit: 0} // every write fails
	w := NewBinaryWire(c)
	if err := w.sendControlAck(ControlAck{Seq: 1, Kind: ControlDrain, OK: true}); err == nil {
		t.Fatal("ack write failure not surfaced")
	}
	gen := newRoundGen("node1")
	if err := w.Publish(gen.next()); err == nil {
		t.Fatal("wire did not latch broken after a failed ack write")
	}
}

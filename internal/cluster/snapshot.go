// Aggregator snapshot/restore: the durable-state surface that lets the
// monitoring plane survive its own death. Snapshot captures the exact
// verdict-bearing state — per-node detector banks, epoch watermarks,
// clock-normalisation state, churn/stale bookkeeping, alarm latches —
// as one versioned binary blob; Restore rebuilds a fresh aggregator
// from it so the restored plane folds the next epoch exactly as the
// dead one would have. The encoding is canonical (key-sorted maps,
// node-sorted order): Snapshot∘Restore∘Snapshot is byte-identical.
//
// What is deliberately NOT captured: the merged-round log and the
// published report map (operator-facing history, rebuilt by the first
// post-restore fold), pending notifications and epoch events (transient
// deliveries), wire routes and in-flight control commands (connection
// state that dies with the process), and the lane seed (lane striping
// is verdict-invariant, so a restored aggregator re-stripes freely).
//
// Locking: Snapshot holds foldMu and visits each node under its lane
// lock, so it rides the fold stage's locks and never the ingest fast
// path — call it from an epoch subscriber (after the fold lock is
// released), never from inside a fold. Restore requires a fresh
// aggregator (no rounds ingested, no nodes registered) built with the
// same resource set and detector config; on error the aggregator is
// partially populated and must be discarded.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/binc"
	"repro/internal/core"
	"repro/internal/detect"
)

// aggSnapMagic distinguishes an aggregator snapshot from the wire
// codec's frames and from the detect-layer snapshots it embeds.
var aggSnapMagic = [4]byte{'A', 'G', 'S', 'N'}

// aggSnapVersion versions the aggregator snapshot format.
const aggSnapVersion = 1

// Decode bounds: a corrupt or hostile snapshot may not declare counts
// that drive allocation beyond these.
const (
	maxAggSnapStr       = 4096
	maxAggSnapResources = 256
	maxAggSnapNodes     = 1 << 16
	maxAggSnapComps     = 1 << 16
	maxAggSnapSamples   = 1 << 16
	maxAggSnapPending   = 1 << 12
	maxAggSnapChurn     = 1 << 20
	// maxAggSnapCounter bounds epochs, sequences and round totals. Far
	// above any reachable state (2^40 rounds at one per 30s is 10^6
	// years) while keeping epoch arithmetic on untrusted values safely
	// inside int64.
	maxAggSnapCounter = int64(1) << 40
)

func aggFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// AppendSnapshot appends the aggregator's durable state to dst and
// returns the extended buffer. It takes the fold lock, so it must not
// be called from inside a fold (an epoch subscriber is safe: events
// deliver after the fold lock is released).
func (a *Aggregator) AppendSnapshot(dst []byte) []byte {
	a.foldMu.Lock()
	defer a.foldMu.Unlock()

	dst = append(dst, aggSnapMagic[:]...)
	dst = append(dst, aggSnapVersion)

	dst = binc.AppendUvarint(dst, uint64(len(a.resources)))
	for _, res := range a.resources {
		dst = binc.AppendString(dst, res)
	}

	dst = binc.AppendVarint(dst, a.epochFolded)
	dst = binc.AppendVarint(dst, a.total.Load())
	dst = binc.AppendUvarint(dst, uint64(a.churnLeft))
	dst = binc.AppendVarint(dst, a.shiftEp)
	dst = a.guard.AppendSnapshot(dst)

	a.tlMu.Lock()
	haveBase, base, lastMerged := a.haveBase, a.base, a.lastMerged
	a.tlMu.Unlock()
	dst = binc.AppendBool(dst, haveBase)
	if haveBase {
		dst = binc.AppendVarint(dst, base.UnixNano())
		dst = binc.AppendVarint(dst, lastMerged.UnixNano())
	}

	// Alarm latches, per resource in resource order, component-sorted.
	var comps []string
	for _, res := range a.resources {
		latched := a.alarmed[res]
		comps = comps[:0]
		for c := range latched {
			comps = append(comps, c)
		}
		sort.Strings(comps)
		dst = binc.AppendUvarint(dst, uint64(len(comps)))
		for _, c := range comps {
			dst = binc.AppendString(dst, c)
			dst = binc.AppendBool(dst, latched[c].clusterWide)
		}
	}

	a.ctlMu.Lock()
	ctlSeq := a.ctlSeq
	a.ctlMu.Unlock()
	dst = binc.AppendUvarint(dst, ctlSeq)

	// Nodes in name order (a.all is the fold's sorted mirror). Each
	// node's lane-owned state is captured under its lane lock, so a
	// concurrently ingesting node contributes either all or none of its
	// in-flight round — both valid states to restore into.
	dst = binc.AppendUvarint(dst, uint64(len(a.all)))
	for _, st := range a.all {
		st.lane.mu.Lock()
		dst = a.appendNodeSnapshot(dst, st)
		st.lane.mu.Unlock()
	}
	return dst
}

// Snapshot returns the aggregator's versioned binary state.
func (a *Aggregator) Snapshot() []byte { return a.AppendSnapshot(nil) }

// appendNodeSnapshot serialises one node. Caller holds a.foldMu (for
// the fold-owned fields) and st.lane.mu (for the lane-owned fields).
func (a *Aggregator) appendNodeSnapshot(dst []byte, st *nodeState) []byte {
	dst = binc.AppendString(dst, st.name)
	dst = binc.AppendBool(dst, st.active.Load())
	dst = binc.AppendVarint(dst, st.seq)
	dst = binc.AppendBool(dst, st.haveOffset)
	if st.haveOffset {
		dst = binc.AppendVarint(dst, int64(st.offset))
		dst = binc.AppendVarint(dst, st.lastNorm.UnixNano())
	}
	dst = binc.AppendVarint(dst, st.epochBase)
	dst = binc.AppendFloat(dst, st.prevUsage)

	// Per-component size baselines, key-sorted.
	comps := make([]string, 0, len(st.firstSize))
	for c := range st.firstSize {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	dst = binc.AppendUvarint(dst, uint64(len(comps)))
	for _, c := range comps {
		dst = binc.AppendString(dst, c)
		dst = binc.AppendVarint(dst, st.firstSize[c])
	}

	// The node's latest round snapshot, in round order.
	dst = binc.AppendUvarint(dst, uint64(len(st.lastSamples)))
	for i := range st.lastSamples {
		dst = appendSampleSnapshot(dst, &st.lastSamples[i])
	}

	// First-alarm latches, per resource in resource order, key-sorted.
	for ri := range a.resources {
		m := st.firstAlarm[ri]
		comps = comps[:0]
		for c := range m {
			comps = append(comps, c)
		}
		sort.Strings(comps)
		dst = binc.AppendUvarint(dst, uint64(len(comps)))
		for _, c := range comps {
			dst = binc.AppendString(dst, c)
			dst = binc.AppendVarint(dst, m[c])
		}
	}

	// The detector bank, in resource order.
	for _, res := range a.resources {
		dst = st.monitors[res].AppendSnapshot(dst)
	}

	// Unconsumed per-round report snapshots and usage totals — the
	// rounds the next fold will read — in sequence order.
	seqs := make([]int64, 0, len(st.reportsAtSeq))
	for s := range st.reportsAtSeq {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	dst = binc.AppendUvarint(dst, uint64(len(seqs)))
	for _, s := range seqs {
		dst = binc.AppendVarint(dst, s)
		reps := st.reportsAtSeq[s]
		dst = binc.AppendUvarint(dst, uint64(len(reps)))
		for _, rep := range reps {
			dst = rep.AppendSnapshot(dst)
		}
	}

	seqs = seqs[:0]
	for s := range st.usageAtSeq {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	dst = binc.AppendUvarint(dst, uint64(len(seqs)))
	for _, s := range seqs {
		dst = binc.AppendVarint(dst, s)
		dst = binc.AppendFloat(dst, st.usageAtSeq[s])
	}
	return dst
}

func appendSampleSnapshot(dst []byte, s *core.ComponentSample) []byte {
	dst = binc.AppendString(dst, s.Component)
	dst = binc.AppendVarint(dst, s.Size)
	dst = binc.AppendBool(dst, s.SizeOK)
	dst = binc.AppendVarint(dst, s.Usage)
	dst = binc.AppendFloat(dst, s.CPUSeconds)
	dst = binc.AppendVarint(dst, s.Threads)
	dst = binc.AppendVarint(dst, s.Handles)
	dst = binc.AppendFloat(dst, s.LatencySeconds)
	dst = binc.AppendVarint(dst, s.Delta)
	return dst
}

// Restore rebuilds the aggregator's durable state from a Snapshot
// buffer. The receiver must be fresh — same construction Config family
// (resource set and detector config) as the snapshotted aggregator, no
// rounds ingested, no nodes registered — because Restore builds node
// state through the normal registration path and then overwrites it.
// On error the aggregator may be partially populated and must be
// discarded; the error never aliases the input buffer.
//
// Not restored (rebuilt by normal operation): the merged-round log
// (MergedRounds is empty until new rounds arrive), the published
// reports (Report returns nil until the first post-restore fold),
// pending notifications and epoch events, and wire/control routes.
func (a *Aggregator) Restore(data []byte) error {
	a.foldMu.Lock()
	defer a.foldMu.Unlock()

	if a.total.Load() != 0 || a.epochFolded != 0 || len(a.all) != 0 {
		return fmt.Errorf("cluster: Restore requires a fresh aggregator (rounds=%d nodes=%d)",
			a.total.Load(), len(a.all))
	}

	p := binc.NewParser(data)
	var magic [4]byte
	for i := range magic {
		magic[i] = p.Byte()
	}
	if p.Err() == nil && magic != aggSnapMagic {
		return fmt.Errorf("cluster: not an aggregator snapshot (magic %x)", magic)
	}
	if v := p.Byte(); p.Err() == nil && v != aggSnapVersion {
		return fmt.Errorf("cluster: aggregator snapshot v%d: %w", v, binc.ErrVersion)
	}

	nres := p.Count(maxAggSnapResources)
	if err := p.Err(); err != nil {
		return err
	}
	if nres != len(a.resources) {
		return fmt.Errorf("cluster: snapshot has %d resources, aggregator watches %d", nres, len(a.resources))
	}
	for _, res := range a.resources {
		if got := p.String(maxAggSnapStr); p.Err() == nil && got != res {
			return fmt.Errorf("cluster: snapshot resource %q, aggregator watches %q", got, res)
		}
	}

	epochFolded := p.Varint()
	total := p.Varint()
	churnLeft := p.Count(maxAggSnapChurn)
	shiftEp := p.Varint()
	if err := p.Err(); err != nil {
		return err
	}
	if epochFolded < 0 || epochFolded > maxAggSnapCounter ||
		total < 0 || total > maxAggSnapCounter ||
		shiftEp < 0 || shiftEp > maxAggSnapCounter {
		return fmt.Errorf("cluster: snapshot counter out of range (epoch=%d rounds=%d shift=%d)",
			epochFolded, total, shiftEp)
	}
	if err := a.guard.RestoreSnapshot(p); err != nil {
		return err
	}

	haveBase := p.Bool()
	var base, lastMerged time.Time
	if haveBase {
		base = time.Unix(0, p.Varint()).UTC()
		lastMerged = time.Unix(0, p.Varint()).UTC()
		if p.Err() == nil && lastMerged.Before(base) {
			return fmt.Errorf("cluster: merged timeline runs backwards in snapshot")
		}
	}

	type latchKey struct{ res, comp string }
	latches := make(map[latchKey]bool)
	for _, res := range a.resources {
		n := p.Count(maxAggSnapComps)
		prev := ""
		for i := 0; i < n; i++ {
			c := p.String(maxAggSnapStr)
			cw := p.Bool()
			if p.Err() != nil {
				return p.Err()
			}
			if i > 0 && c <= prev {
				return fmt.Errorf("cluster: alarm latches not sorted (%q after %q)", c, prev)
			}
			prev = c
			latches[latchKey{res, c}] = cw
		}
	}

	ctlSeq := p.Uvarint()
	nnodes := p.Count(maxAggSnapNodes)
	if err := p.Err(); err != nil {
		return err
	}

	// Header validated: apply, then build nodes through the normal
	// registration path and overwrite their state.
	a.epochFolded = epochFolded
	a.epoch.Store(epochFolded)
	a.total.Store(total)
	a.churnLeft = churnLeft
	a.shiftEp = shiftEp
	a.tlMu.Lock()
	a.haveBase, a.base, a.lastMerged = haveBase, base, lastMerged
	a.tlMu.Unlock()
	for k, cw := range latches {
		a.alarmed[k.res][k.comp] = &latchedAlarm{clusterWide: cw}
	}
	a.ctlMu.Lock()
	a.ctlSeq = ctlSeq
	a.ctlMu.Unlock()

	prev := ""
	for i := 0; i < nnodes; i++ {
		name := p.String(maxAggSnapStr)
		if err := p.Err(); err != nil {
			return err
		}
		if name == "" || (i > 0 && name <= prev) {
			return fmt.Errorf("cluster: snapshot nodes not name-sorted (%q after %q)", name, prev)
		}
		prev = name
		st := a.newNodeState(name)
		st.lane.mu.Lock()
		err := a.restoreNodeLocked(p, st)
		st.lane.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return p.Done()
}

// restoreNodeLocked rebuilds one freshly registered node from the
// parser. Caller holds a.foldMu and st.lane.mu.
func (a *Aggregator) restoreNodeLocked(p *binc.Parser, st *nodeState) error {
	active := p.Bool()
	seq := p.Varint()
	if p.Err() == nil && (seq < 0 || seq > maxAggSnapCounter) {
		return fmt.Errorf("cluster: node %s: round sequence %d out of range", st.name, seq)
	}
	haveOffset := p.Bool()
	if p.Err() == nil && haveOffset != (seq > 0) {
		return fmt.Errorf("cluster: node %s: clock offset state inconsistent with %d rounds", st.name, seq)
	}
	var offset time.Duration
	var lastNorm time.Time
	if haveOffset {
		offset = time.Duration(p.Varint())
		lastNorm = time.Unix(0, p.Varint()).UTC()
	}
	epochBase := p.Varint()
	if p.Err() == nil {
		// Bound the node's cluster epoch: non-negative, and for an
		// active node never far enough past the fold watermark that the
		// restored plane would spin folding a fabricated epoch gap. Real
		// snapshots sit well inside both bounds (an active node can only
		// run ahead of the watermark while another lags, and laggards
		// are evicted after StaleEpochs).
		epoch := epochBase + seq
		if epochBase < -maxAggSnapCounter || epochBase > maxAggSnapCounter || epoch < 0 {
			return fmt.Errorf("cluster: node %s: epoch base %d out of range", st.name, epochBase)
		}
		if active && epoch > a.epochFolded+maxAggSnapPending {
			return fmt.Errorf("cluster: node %s: epoch %d implausibly far past watermark %d",
				st.name, epoch, a.epochFolded)
		}
	}
	prevUsage := p.Float()
	if p.Err() == nil && !aggFinite(prevUsage) {
		return fmt.Errorf("cluster: node %s: non-finite usage baseline", st.name)
	}

	nsz := p.Count(maxAggSnapComps)
	prevComp := ""
	for i := 0; i < nsz; i++ {
		c := p.String(maxAggSnapStr)
		v := p.Varint()
		if p.Err() != nil {
			return p.Err()
		}
		if i > 0 && c <= prevComp {
			return fmt.Errorf("cluster: node %s: size baselines not sorted", st.name)
		}
		prevComp = c
		st.firstSize[c] = v
	}

	nsam := p.Count(maxAggSnapSamples)
	if p.Err() == nil && nsam > 0 {
		st.lastSamples = make([]core.ComponentSample, nsam)
		for i := range st.lastSamples {
			if err := restoreSampleSnapshot(p, &st.lastSamples[i]); err != nil {
				return fmt.Errorf("cluster: node %s: %w", st.name, err)
			}
		}
	}

	for ri := range a.resources {
		n := p.Count(maxAggSnapComps)
		prevComp = ""
		var m map[string]int64
		if p.Err() == nil && n > 0 {
			m = make(map[string]int64, n)
		}
		for i := 0; i < n; i++ {
			c := p.String(maxAggSnapStr)
			ep := p.Varint()
			if p.Err() != nil {
				return p.Err()
			}
			if i > 0 && c <= prevComp {
				return fmt.Errorf("cluster: node %s: first-alarm latches not sorted", st.name)
			}
			prevComp = c
			m[c] = ep
		}
		st.firstAlarm[ri] = m
	}

	for _, res := range a.resources {
		mon, err := detect.RestoreMonitorSnapshot(p)
		if err != nil {
			return fmt.Errorf("cluster: node %s monitor %s: %w", st.name, res, err)
		}
		if mon.Resource() != res {
			return fmt.Errorf("cluster: node %s: snapshot monitor watches %q, want %q", st.name, mon.Resource(), res)
		}
		if mon.Config() != a.monitorConfig(res).Canonical() {
			return fmt.Errorf("cluster: node %s monitor %s: snapshot detector config differs from the aggregator's", st.name, res)
		}
		st.monitors[res] = mon
	}

	nrep := p.Count(maxAggSnapPending)
	prevSeq := int64(0)
	for i := 0; i < nrep; i++ {
		s := p.Varint()
		if p.Err() != nil {
			return p.Err()
		}
		if s <= prevSeq || s > seq {
			return fmt.Errorf("cluster: node %s: pending report seq %d out of order (prev %d, head %d)",
				st.name, s, prevSeq, seq)
		}
		prevSeq = s
		nr := p.Count(len(a.resources))
		if p.Err() == nil && nr != len(a.resources) {
			return fmt.Errorf("cluster: node %s seq %d: %d reports for %d resources", st.name, s, nr, len(a.resources))
		}
		reps := make([]*detect.Report, 0, len(a.resources))
		for _, res := range a.resources {
			rep, err := detect.RestoreReportSnapshot(p)
			if err != nil {
				return fmt.Errorf("cluster: node %s seq %d: %w", st.name, s, err)
			}
			if rep.Resource != res {
				return fmt.Errorf("cluster: node %s seq %d: report for %q, want %q", st.name, s, rep.Resource, res)
			}
			reps = append(reps, rep)
		}
		st.reportsAtSeq[s] = reps
	}

	nuse := p.Count(maxAggSnapPending)
	prevSeq = 0
	for i := 0; i < nuse; i++ {
		s := p.Varint()
		u := p.Float()
		if p.Err() != nil {
			return p.Err()
		}
		if s <= prevSeq || s > seq {
			return fmt.Errorf("cluster: node %s: pending usage seq %d out of order", st.name, s)
		}
		if !aggFinite(u) {
			return fmt.Errorf("cluster: node %s seq %d: non-finite usage total", st.name, s)
		}
		prevSeq = s
		st.usageAtSeq[s] = u
	}
	if err := p.Err(); err != nil {
		return err
	}

	st.seq = seq
	st.offset = offset
	st.haveOffset = haveOffset
	st.lastNorm = lastNorm
	st.epochBase = epochBase
	st.prevUsage = prevUsage
	st.active.Store(active)
	st.seqA.Store(seq)
	st.epochA.Store(epochBase + seq)
	return nil
}

func restoreSampleSnapshot(p *binc.Parser, s *core.ComponentSample) error {
	s.Component = p.String(maxAggSnapStr)
	s.Size = p.Varint()
	s.SizeOK = p.Bool()
	s.Usage = p.Varint()
	s.CPUSeconds = p.Float()
	s.Threads = p.Varint()
	s.Handles = p.Varint()
	s.LatencySeconds = p.Float()
	s.Delta = p.Varint()
	if err := p.Err(); err != nil {
		return err
	}
	if !aggFinite(s.CPUSeconds) || !aggFinite(s.LatencySeconds) {
		return fmt.Errorf("cluster: non-finite sample measurement for %q", s.Component)
	}
	return nil
}

package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Transport carries sampling rounds from a node's collector to an
// aggregator. Implementations must preserve per-node publish order;
// nothing else is assumed — the in-process transport is a direct call,
// the wire transport is gob frames over a net.Conn, and other codecs
// (JSON, protobuf) can slot in without the collector or the aggregator
// noticing.
type Transport interface {
	// Publish ships one round. It may block briefly (wire flow control)
	// but must not be called concurrently for the same node. The round's
	// Samples are borrowed from the publishing collector: Publish must
	// finish consuming them (encode the frame, or ingest in-process)
	// before returning, and must copy if it buffers the round for later.
	Publish(Round) error
	// Close releases the transport. Publishing after Close fails.
	Close() error
}

// WireCodec names a wire serialisation for callers that assemble
// clusters generically (the experiment stack, the simulator front-end).
type WireCodec int

// Available wire codecs.
const (
	// CodecGob is the reflective stdlib codec: self-describing, format-
	// stable across field additions, ~2.5× the bytes and an order of
	// magnitude more decode work than the binary codec.
	CodecGob WireCodec = iota
	// CodecBinary is the hand-rolled delta codec of codec.go.
	CodecBinary
)

func (c WireCodec) String() string {
	switch c {
	case CodecBinary:
		return "binary"
	default:
		return "gob"
	}
}

// InProc is the zero-copy transport for nodes living in the aggregator's
// process (the simulated cluster, tests, single-binary deployments):
// Publish ingests synchronously, so by the time a node's sampling round
// returns, the cluster state already reflects it.
type InProc struct {
	mu     sync.Mutex
	agg    *Aggregator
	closed bool
}

// NewInProc creates an in-process transport feeding agg.
func NewInProc(agg *Aggregator) *InProc { return &InProc{agg: agg} }

// Publish implements Transport by direct ingestion.
func (p *InProc) Publish(r Round) error {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return errors.New("cluster: transport closed")
	}
	p.agg.Ingest(r)
	return nil
}

// Close implements Transport.
func (p *InProc) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	return nil
}

// DefaultWireTimeout bounds one Publish's write. Publish runs under the
// collector's round lock, so an unbounded write to a stalled aggregator
// (dead peer, full TCP buffer) would wedge the node's sampling forever —
// the forwarder's contract is that a node keeps sampling locally when
// its aggregator link is down, which requires Publish to fail, not hang.
const DefaultWireTimeout = 5 * time.Second

// RetryPolicy bounds how a wire publish retries transient connection
// errors. A frame write that fails with zero bytes on the stream is
// retried up to Attempts total tries, sleeping an exponentially growing,
// jittered backoff between tries; the zero value (Attempts <= 1) keeps
// the historical fail-on-first-error behaviour. Retrying is safe exactly
// because nothing reached the peer — the identical frame goes out again,
// so neither gob's type-definition stream nor the binary codec's delta
// chains can desynchronise. A write that fails after placing bytes on
// the stream is never retried: the peer's framing is already corrupt.
type RetryPolicy struct {
	Attempts int           // total write attempts per frame (<= 1: no retry)
	Base     time.Duration // backoff before the first retry (default 10ms)
	Max      time.Duration // backoff cap (default 1s)
}

// backoff computes the jittered exponential delay before retry number
// attempt (0-based). The jitter rides a per-wire xorshift stream — no
// global rand, no lock — and spreads a fleet of publishers retrying
// against the same recovering aggregator over [d/2, d].
func (p RetryPolicy) backoff(attempt int, rng *uint64) time.Duration {
	d := p.Base
	if d <= 0 {
		d = 10 * time.Millisecond
	}
	lim := p.Max
	if lim <= 0 {
		lim = time.Second
	}
	for i := 0; i < attempt && d < lim; i++ {
		d *= 2
	}
	if d > lim {
		d = lim
	}
	if *rng == 0 {
		*rng = 0x9e3779b97f4a7c15
	}
	x := *rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*rng = x
	half := int64(d / 2)
	return time.Duration(half + int64(x%uint64(half+1)))
}

// writeFrameRetry writes one whole frame under the policy. Only an error
// with zero bytes written is retried — nothing reached the stream, so
// the identical frame can go again. Once any byte is on the wire a retry
// would corrupt the peer's framing: the write fails immediately with
// partial=true and the caller must latch the stream broken.
func writeFrameRetry(conn net.Conn, frame []byte, timeout time.Duration, p RetryPolicy, rng *uint64) (partial bool, err error) {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 0; ; attempt++ {
		if timeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(timeout))
		}
		n, werr := conn.Write(frame)
		if timeout > 0 {
			_ = conn.SetWriteDeadline(time.Time{})
		}
		if werr == nil {
			return false, nil
		}
		if n > 0 {
			return true, werr
		}
		if attempt+1 >= attempts {
			return false, werr
		}
		time.Sleep(p.backoff(attempt, rng))
	}
}

// Wire ships rounds as gob frames over a net.Conn, so a node can live in
// a different process (or host) from its aggregator. The encoder is
// guarded by a mutex in case one process multiplexes several nodes'
// forwarders onto one connection; per-node ordering is then the caller's
// sampling order, which the collector already serialises.
//
// Each round gob-encodes into a staging buffer and ships as one whole
// write, so a publish failure never leaves a partially encoded frame on
// the stream. A zero-byte write failure retries under the RetryPolicy;
// when retries exhaust, the frame is dropped and counted — gob fields
// are absolute, so the receiver survives a lost frame — unless it was
// the first frame (which carries the type definitions every later frame
// references) or the write was partial, either of which latches the
// wire broken.
type Wire struct {
	mu       sync.Mutex
	conn     net.Conn
	enc      *gob.Encoder
	buf      bytes.Buffer // frame staging: enc writes here, Publish ships it whole
	timeout  time.Duration
	retry    RetryPolicy
	rng      uint64
	sentOnce bool
	broken   bool
	dropped  atomic.Int64
}

// NewWire wraps an established connection (one end of a net.Pipe, a
// dialed TCP/unix socket, ...) as a publishing transport with the
// default write timeout.
func NewWire(conn net.Conn) *Wire {
	w := &Wire{conn: conn, timeout: DefaultWireTimeout}
	w.enc = gob.NewEncoder(&w.buf)
	return w
}

// SetTimeout overrides the per-publish write bound (0 disables it).
func (w *Wire) SetTimeout(d time.Duration) {
	w.mu.Lock()
	w.timeout = d
	w.mu.Unlock()
}

// SetRetry installs the transient-write retry policy.
func (w *Wire) SetRetry(p RetryPolicy) {
	w.mu.Lock()
	w.retry = p
	w.mu.Unlock()
}

// DroppedRounds reports rounds this wire accepted but never delivered:
// frames dropped when a write exhausted its retries, plus every publish
// refused after the broken latch.
func (w *Wire) DroppedRounds() int64 { return w.dropped.Load() }

// DialWire connects to an aggregator's wire listener and returns the
// publishing end.
func DialWire(network, addr string) (*Wire, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewWire(conn), nil
}

// Publish implements Transport: one gob frame per round, staged in the
// frame buffer and shipped as a single bounded write under the retry
// policy.
func (w *Wire) Publish(r Round) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken {
		w.dropped.Add(1)
		return errors.New("cluster: wire broken by an earlier failed write")
	}
	w.buf.Reset()
	if err := w.enc.Encode(r); err != nil {
		// The encoder's type-definition state may now disagree with what
		// the buffer (and so the stream) will carry; nothing safe follows.
		w.broken = true
		w.dropped.Add(1)
		_ = w.conn.Close()
		return err
	}
	partial, err := writeFrameRetry(w.conn, w.buf.Bytes(), w.timeout, w.retry, &w.rng)
	if err != nil {
		w.dropped.Add(1)
		if partial || !w.sentOnce {
			// A partial write corrupts the peer's framing; a lost first
			// frame loses the gob type definitions every later frame
			// references. Either way the stream is unrecoverable.
			w.broken = true
			_ = w.conn.Close()
		}
		return err
	}
	w.sentOnce = true
	return nil
}

// Close implements Transport.
func (w *Wire) Close() error { return w.conn.Close() }

// BinaryWire ships rounds as delta-encoded binary frames (see codec.go)
// over a net.Conn — the high-density counterpart of the gob Wire, behind
// the same Transport interface, for deployments where bytes-on-wire and
// per-round garbage matter: names are interned per connection and every
// numeric field rides as a small varint delta, cutting a steady-state
// round several-fold versus gob, and Publish reuses one frame buffer so
// it allocates nothing. SetBatch turns on multi-round BATCH frames with
// a count/deadline flush policy for fleet fan-in. Like Wire, the publish
// mutex admits several forwarders multiplexed onto one connection, and a
// timed-out write may leave a partial frame after which the receiver
// errors and drops the connection — fail-stop, never wedged.
type BinaryWire struct {
	mu      sync.Mutex
	conn    net.Conn
	enc     *BinaryEncoder
	frame   []byte
	timeout time.Duration
	retry   RetryPolicy
	rng     uint64
	broken  bool
	dropped atomic.Int64

	batchRounds int           // flush when this many rounds are buffered (<=1: every round)
	batchDelay  time.Duration // flush a partial batch this long after its first round (0: never)
	timer       *time.Timer   // pending deadline flush, nil when none armed
	gen         uint64        // flush generation; a stale deadline flush no-ops
}

// NewBinaryWire wraps an established connection as a binary-codec
// publishing transport with the default write timeout. The peer must
// serve it with ServeBinaryConn/ServeBinary — the gob and binary stream
// formats are not interchangeable (the stream header makes a mismatch
// fail at connect time).
func NewBinaryWire(conn net.Conn) *BinaryWire {
	return &BinaryWire{conn: conn, enc: NewBinaryEncoder(), timeout: DefaultWireTimeout}
}

// DialBinaryWire connects to an aggregator's binary listener and returns
// the publishing end.
func DialBinaryWire(network, addr string) (*BinaryWire, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewBinaryWire(conn), nil
}

// SetTimeout overrides the per-publish write bound (0 disables it).
func (w *BinaryWire) SetTimeout(d time.Duration) {
	w.mu.Lock()
	w.timeout = d
	w.mu.Unlock()
}

// SetRetry installs the transient-write retry policy. Only zero-byte
// write failures retry; when retries exhaust, the batch is lost and the
// wire latches broken — the encoder's delta state already reflects
// rounds the decoder will never see, so no later frame could decode
// correctly anyway.
func (w *BinaryWire) SetRetry(p RetryPolicy) {
	w.mu.Lock()
	w.retry = p
	w.mu.Unlock()
}

// DroppedRounds reports rounds this wire accepted (or was offered) but
// never delivered: the batch lost when a flush exhausted its retries,
// plus every publish refused after the broken latch.
func (w *BinaryWire) DroppedRounds() int64 { return w.dropped.Load() }

// SetBatch sets the BATCH flush policy: buffer up to rounds rounds per
// frame, flushing earlier when a partial batch has waited delay since
// its first round (delay 0 means only the count flushes). rounds <= 1
// restores the unbatched one-frame-per-round behaviour. Any currently
// buffered rounds are flushed first, so the policy change never reorders
// the stream.
//
// Batching trades verdict latency for wire efficiency: the aggregator
// sees a buffered round only when its frame flushes, so delay bounds the
// staleness a batch can add and should stay well under the sampling
// interval times the aggregator's staleness window.
func (w *BinaryWire) SetBatch(rounds int, delay time.Duration) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.flushLocked(); err != nil {
		return err
	}
	w.batchRounds = rounds
	w.batchDelay = delay
	return nil
}

// Publish implements Transport: the round is encoded onto the pending
// BATCH frame immediately (consuming the borrowed Samples before
// returning), and the frame ships when the batch policy says so — at
// once when unbatched, else on the count or deadline trigger. The frame
// buffer is reused across publishes.
//
// A failed or short write breaks the transport permanently: unlike gob
// (whose fields are absolute, so the receiver survives a lost frame),
// the binary codec's deltas and XOR chains assume the decoder saw every
// frame the encoder produced — the encoder's state already reflects the
// lost round, so continuing would make every later round decode to
// silently wrong values. The wire latches the error, closes the
// connection, and fails every subsequent Publish; the owner reconnects
// with a fresh wire (and therefore fresh codec state on both ends).
// Under batching a write error surfaces on the Publish (or Flush, or
// deadline flush) that ships the frame; earlier buffering publishes have
// already returned nil, and the latch fails everything after.
func (w *BinaryWire) Publish(r Round) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken {
		w.dropped.Add(1)
		return errors.New("cluster: binary wire broken by an earlier failed write")
	}
	w.enc.BufferRound(r)
	if w.batchRounds > 1 && w.enc.PendingRounds() < w.batchRounds {
		if w.batchDelay > 0 && w.timer == nil {
			gen := w.gen
			w.timer = time.AfterFunc(w.batchDelay, func() { w.deadlineFlush(gen) })
		}
		return nil
	}
	return w.flushLocked()
}

// Flush ships any buffered rounds now, regardless of the batch policy.
func (w *BinaryWire) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken {
		return errors.New("cluster: binary wire broken by an earlier failed write")
	}
	return w.flushLocked()
}

// deadlineFlush is the timer callback: it ships the batch the deadline
// was armed for, unless a count flush (or Flush, or Close) already did.
func (w *BinaryWire) deadlineFlush(gen uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.gen != gen || w.broken {
		return
	}
	_ = w.flushLocked() // a write error is latched in broken for the next Publish
}

// flushLocked ships the pending frame under w.mu, disarming any deadline
// timer. No-op when nothing is buffered.
func (w *BinaryWire) flushLocked() error {
	w.gen++
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	if w.enc.PendingRounds() == 0 {
		return nil
	}
	rounds := int64(w.enc.PendingRounds())
	w.frame = w.enc.FlushFrame(w.frame[:0])
	if _, err := writeFrameRetry(w.conn, w.frame, w.timeout, w.retry, &w.rng); err != nil {
		w.broken = true
		w.dropped.Add(rounds)
		_ = w.conn.Close()
		return err
	}
	return nil
}

// Close implements Transport, flushing any buffered rounds first (best
// effort — a flush failure is reported after the connection is closed).
func (w *BinaryWire) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var flushErr error
	if !w.broken {
		flushErr = w.flushLocked()
	}
	err := w.conn.Close()
	if flushErr != nil {
		return flushErr
	}
	return err
}

// maxBinaryFrame bounds one decoded frame; a length prefix beyond it is
// stream corruption, not a huge round (a 16 MB frame would be ~500k
// samples).
const maxBinaryFrame = 16 << 20

// ServeBinaryConn decodes binary-codec frames from conn into the
// aggregator until the connection closes: BATCH frames ingest their
// rounds, ACK frames resolve pending control commands. Every node name
// seen in a round registers conn as that node's control route, so the
// aggregator can push drain/rejuvenate/re-admit commands back down the
// same connection (see control.go); the routes are torn down — and any
// in-flight commands failed — when the serving loop ends. It returns nil
// on a clean EOF and an error on a stream it does not speak (wrong magic
// or version) or a corrupt frame — and then closes the connection, so a
// publisher behind a broken stream fail-stops on its next write instead
// of wedging against a reader that gave up. Run it on its own goroutine,
// one per node connection. The decode buffers are reused; Ingest copies
// what it retains.
func (a *Aggregator) ServeBinaryConn(conn net.Conn) (err error) {
	cc := &controlConn{conn: conn}
	routed := make(map[string]bool)
	defer func() {
		a.unregisterControlConn(cc, routed)
		if err != nil {
			_ = conn.Close()
		}
	}()
	br := bufio.NewReader(conn)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
			return nil
		}
		return err
	}
	if magic != wireMagic {
		return fmt.Errorf("cluster: not a binary round stream (magic %x)", magic)
	}
	dec := NewBinaryDecoder()
	var payload []byte
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if n > maxBinaryFrame {
			return fmt.Errorf("cluster: frame of %d bytes exceeds limit", n)
		}
		if uint64(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if len(payload) == 0 {
			return errors.New("cluster: empty frame")
		}
		switch payload[0] {
		case frameBatch:
			err = dec.DecodeBatch(payload, func(r Round) error {
				a.Ingest(r)
				if !routed[r.Node] {
					routed[r.Node] = true
					a.registerControlConn(r.Node, cc)
				}
				return nil
			})
			if err != nil {
				return err
			}
		case frameControlAck:
			ack, aerr := DecodeControlAck(payload)
			if aerr != nil {
				return aerr
			}
			a.resolveControlAck(ack)
		default:
			return fmt.Errorf("cluster: unknown frame type %d", payload[0])
		}
	}
}

// ServeBinary accepts binary-codec node connections from ln and serves
// each on its own goroutine until the listener closes, closing each
// connection when its serving loop ends. It blocks; run it on a
// goroutine.
func (a *Aggregator) ServeBinary(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			_ = a.ServeBinaryConn(conn)
		}()
	}
}

// ServeConn decodes rounds from conn into the aggregator until the
// connection closes. It returns nil on a clean EOF; on a decode error it
// closes the connection (fail-stop for the publisher) and returns the
// error. Run it on its own goroutine, one per node connection — per-node
// ordering is then the connection's byte order.
func (a *Aggregator) ServeConn(conn net.Conn) error {
	dec := gob.NewDecoder(conn)
	for {
		var r Round
		if err := dec.Decode(&r); err != nil {
			if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
				return nil
			}
			_ = conn.Close()
			return err
		}
		a.Ingest(r)
	}
}

// Serve accepts node connections from ln and serves each on its own
// goroutine until the listener closes, closing each connection when its
// serving loop ends. It blocks; run it on a goroutine.
func (a *Aggregator) Serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			_ = a.ServeConn(conn)
		}()
	}
}

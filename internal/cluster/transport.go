package cluster

import (
	"encoding/gob"
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// Transport carries sampling rounds from a node's collector to an
// aggregator. Implementations must preserve per-node publish order;
// nothing else is assumed — the in-process transport is a direct call,
// the wire transport is gob frames over a net.Conn, and other codecs
// (JSON, protobuf) can slot in without the collector or the aggregator
// noticing.
type Transport interface {
	// Publish ships one round. It may block briefly (wire flow control)
	// but must not be called concurrently for the same node.
	Publish(Round) error
	// Close releases the transport. Publishing after Close fails.
	Close() error
}

// InProc is the zero-copy transport for nodes living in the aggregator's
// process (the simulated cluster, tests, single-binary deployments):
// Publish ingests synchronously, so by the time a node's sampling round
// returns, the cluster state already reflects it.
type InProc struct {
	mu     sync.Mutex
	agg    *Aggregator
	closed bool
}

// NewInProc creates an in-process transport feeding agg.
func NewInProc(agg *Aggregator) *InProc { return &InProc{agg: agg} }

// Publish implements Transport by direct ingestion.
func (p *InProc) Publish(r Round) error {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return errors.New("cluster: transport closed")
	}
	p.agg.Ingest(r)
	return nil
}

// Close implements Transport.
func (p *InProc) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	return nil
}

// DefaultWireTimeout bounds one Publish's write. Publish runs under the
// collector's round lock, so an unbounded write to a stalled aggregator
// (dead peer, full TCP buffer) would wedge the node's sampling forever —
// the forwarder's contract is that a node keeps sampling locally when
// its aggregator link is down, which requires Publish to fail, not hang.
const DefaultWireTimeout = 5 * time.Second

// Wire ships rounds as gob frames over a net.Conn, so a node can live in
// a different process (or host) from its aggregator. The encoder is
// guarded by a mutex in case one process multiplexes several nodes'
// forwarders onto one connection; per-node ordering is then the caller's
// sampling order, which the collector already serialises.
//
// A write that exceeds Timeout fails the Publish; note a timed-out
// encode may leave a partial frame on the stream, after which the
// receiving decoder errors and drops the connection — fail-stop, never
// wedged.
type Wire struct {
	mu      sync.Mutex
	conn    net.Conn
	enc     *gob.Encoder
	timeout time.Duration
}

// NewWire wraps an established connection (one end of a net.Pipe, a
// dialed TCP/unix socket, ...) as a publishing transport with the
// default write timeout.
func NewWire(conn net.Conn) *Wire {
	return &Wire{conn: conn, enc: gob.NewEncoder(conn), timeout: DefaultWireTimeout}
}

// SetTimeout overrides the per-publish write bound (0 disables it).
func (w *Wire) SetTimeout(d time.Duration) {
	w.mu.Lock()
	w.timeout = d
	w.mu.Unlock()
}

// DialWire connects to an aggregator's wire listener and returns the
// publishing end.
func DialWire(network, addr string) (*Wire, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewWire(conn), nil
}

// Publish implements Transport: one gob frame per round, bounded by the
// write timeout.
func (w *Wire) Publish(r Round) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.timeout > 0 {
		_ = w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
		defer func() { _ = w.conn.SetWriteDeadline(time.Time{}) }()
	}
	return w.enc.Encode(r)
}

// Close implements Transport.
func (w *Wire) Close() error { return w.conn.Close() }

// ServeConn decodes rounds from conn into the aggregator until the
// connection closes. It returns nil on a clean EOF. Run it on its own
// goroutine, one per node connection — per-node ordering is then the
// connection's byte order.
func (a *Aggregator) ServeConn(conn net.Conn) error {
	dec := gob.NewDecoder(conn)
	for {
		var r Round
		if err := dec.Decode(&r); err != nil {
			if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		a.Ingest(r)
	}
}

// Serve accepts node connections from ln and serves each on its own
// goroutine until the listener closes. It blocks; run it on a goroutine.
func (a *Aggregator) Serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func() { _ = a.ServeConn(conn) }()
	}
}

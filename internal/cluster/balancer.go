package cluster

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/servlet"
)

// Policy selects how the balancer spreads new sessions across nodes.
type Policy int

// Balancing policies.
const (
	// RoundRobin assigns new sessions to nodes in rotation.
	RoundRobin Policy = iota
	// LeastLoaded assigns new sessions to the node with the fewest
	// in-flight requests.
	LeastLoaded
	// Weighted assigns new sessions by smooth weighted round-robin over
	// the per-node weights (nginx's algorithm), so a skewed weight
	// vector concentrates traffic without starving anyone entirely.
	Weighted
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case Weighted:
		return "weighted"
	default:
		return "unknown"
	}
}

// Backend is the surface the balancer forwards to — satisfied by
// *servlet.Container.
type Backend interface {
	Submit(req *servlet.Request, done servlet.Completion)
	Throughput() float64
}

// member is one balanced node.
type member struct {
	name     string
	backend  Backend
	weight   int
	current  int // smooth-WRR accumulator
	inflight int
	// draining: no new sticky assignments; existing sessions still route
	// here until CompleteDrain unpins them (or they go idle). Set by the
	// rejuvenation controller before a micro-reboot.
	draining bool
}

// Balancer fronts a set of servlet containers the way a load balancer
// fronts a cluster of application servers. Sessions are sticky: a
// session's first request picks a node by policy and every later request
// follows it, because session state (carts, logins) lives in one node's
// container. It satisfies the eb package's driver target, so the
// existing emulated-browser load generator drives a whole cluster
// unchanged.
type Balancer struct {
	mu       sync.Mutex
	policy   Policy
	members  []*member
	sessions map[string]*member
	// nextLL rotates LeastLoaded's tie-break start: under think-time-
	// dominated load the in-flight counts are almost always all zero at
	// assignment time, and a fixed tie-break would pin every session to
	// the first node.
	nextLL int
}

// NewBalancer creates an empty balancer with the given policy.
func NewBalancer(policy Policy) *Balancer {
	return &Balancer{policy: policy, sessions: make(map[string]*member)}
}

// AddNode adds a backend with the given weight (minimum 1; only the
// Weighted policy reads it). Adding a duplicate name replaces the
// backend.
func (b *Balancer) AddNode(name string, backend Backend, weight int) {
	if weight < 1 {
		weight = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range b.members {
		if m.name == name {
			m.backend = backend
			m.weight = weight
			return
		}
	}
	b.members = append(b.members, &member{name: name, backend: backend, weight: weight})
}

// RemoveNode removes a node and unpins its sessions; their next request
// is assigned a fresh node by policy (session state on the removed node
// is lost, as with a real backend failure). It reports whether the node
// was present.
func (b *Balancer) RemoveNode(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, m := range b.members {
		if m.name == name {
			b.members = append(b.members[:i], b.members[i+1:]...)
			for sid, owner := range b.sessions {
				if owner == m {
					delete(b.sessions, sid)
				}
			}
			return true
		}
	}
	return false
}

// Drain marks a node draining: pick() stops assigning new sessions to
// it, while already-pinned sessions keep routing there — session state
// (carts, logins) lives in the node's container, so draining honours it
// instead of severing it. It reports whether the node is present.
func (b *Balancer) Drain(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.byName(name)
	if m == nil {
		return false
	}
	m.draining = true
	return true
}

// CompleteDrain force-unpins the sessions still stuck to a draining
// node (their next request is assigned a fresh node by policy; session
// state on the drained node is lost, as with RemoveNode) and returns
// how many were unpinned. The node stays draining until Readmit.
func (b *Balancer) CompleteDrain(name string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.byName(name)
	if m == nil {
		return 0
	}
	n := 0
	for sid, owner := range b.sessions {
		if owner == m {
			delete(b.sessions, sid)
			n++
		}
	}
	return n
}

// Readmit clears a node's draining state and sets its weight (minimum
// 1) — probation re-admits at reduced weight, a clean probation
// restores the full one. It reports whether the node is present.
func (b *Balancer) Readmit(name string, weight int) bool {
	if weight < 1 {
		weight = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.byName(name)
	if m == nil {
		return false
	}
	m.draining = false
	m.weight = weight
	return true
}

// Draining reports whether a node is currently draining.
func (b *Balancer) Draining(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.byName(name)
	return m != nil && m.draining
}

// PinnedSessions counts the sessions currently stuck to a node — the
// drain-progress signal the rejuvenation controller watches.
func (b *Balancer) PinnedSessions(name string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.byName(name)
	if m == nil {
		return 0
	}
	n := 0
	for _, owner := range b.sessions {
		if owner == m {
			n++
		}
	}
	return n
}

// Inflight reports a node's requests currently in its backend.
func (b *Balancer) Inflight(name string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.byName(name)
	if m == nil {
		return 0
	}
	return m.inflight
}

// byName finds a member. Caller holds b.mu.
func (b *Balancer) byName(name string) *member {
	for _, m := range b.members {
		if m.name == name {
			return m
		}
	}
	return nil
}

// SetWeights updates per-node weights (Weighted policy). Unknown names
// are ignored; missing names keep their weight.
func (b *Balancer) SetWeights(weights map[string]int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range b.members {
		if w, ok := weights[m.name]; ok && w >= 1 {
			m.weight = w
		}
	}
}

// Rebalance unpins every session, so each session's next request is
// re-assigned by the current policy and weights — how an operator drains
// traffic onto (or off) nodes mid-run. Session state does not move.
func (b *Balancer) Rebalance() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sessions = make(map[string]*member)
}

// SetPolicy switches the assignment policy for future (re-)assignments.
func (b *Balancer) SetPolicy(p Policy) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.policy = p
}

// NodeNames lists the balanced nodes in assignment order.
func (b *Balancer) NodeNames() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, len(b.members))
	for i, m := range b.members {
		out[i] = m.name
	}
	return out
}

// Assignments returns how many sessions are currently pinned to each
// node.
func (b *Balancer) Assignments() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int, len(b.members))
	for _, m := range b.members {
		out[m.name] = 0
	}
	for _, m := range b.sessions {
		out[m.name]++
	}
	return out
}

// Submit routes one request: sticky to its session's node when pinned,
// otherwise assigned by policy and pinned. With no members the request
// completes immediately with 503, like a balancer with an empty upstream
// pool.
func (b *Balancer) Submit(req *servlet.Request, done servlet.Completion) {
	b.mu.Lock()
	m := b.route(req.SessionID)
	if m == nil {
		b.mu.Unlock()
		if done != nil {
			done(req, &servlet.Response{Status: servlet.StatusUnavailable})
		}
		// The balancer owns a pooled request from Submit on, exactly like
		// the container it stands in for: end the borrow once the
		// completion has run.
		servlet.ReleaseRequest(req)
		return
	}
	m.inflight++
	// Snapshot the backend under the lock: AddNode may replace a
	// member's backend concurrently.
	backend := m.backend
	b.mu.Unlock()

	backend.Submit(req, func(req *servlet.Request, resp *servlet.Response) {
		b.mu.Lock()
		m.inflight--
		b.mu.Unlock()
		if done != nil {
			done(req, resp)
		}
	})
}

// route picks the member for a session, pinning new sessions. Caller
// holds b.mu.
func (b *Balancer) route(sessionID string) *member {
	if len(b.members) == 0 {
		return nil
	}
	if sessionID != "" {
		if m, ok := b.sessions[sessionID]; ok {
			return m
		}
	}
	m := b.pick()
	if sessionID != "" {
		b.sessions[sessionID] = m
	}
	return m
}

// pick selects a member by policy, skipping draining members. When
// every member is draining it routes anyway — a drain steers sessions
// away from a node, it never turns the balancer into a 503 wall. Caller
// holds b.mu.
func (b *Balancer) pick() *member {
	skipDraining := false
	for _, m := range b.members {
		if !m.draining {
			skipDraining = true
			break
		}
	}
	switch b.policy {
	case LeastLoaded:
		n := len(b.members)
		best := -1
		for i := 0; i < n; i++ {
			idx := (b.nextLL + i) % n
			if skipDraining && b.members[idx].draining {
				continue
			}
			if best < 0 || b.members[idx].inflight < b.members[best].inflight {
				best = idx
			}
		}
		b.nextLL = (best + 1) % n
		return b.members[best]
	default:
		// Smooth weighted round-robin; with equal weights it degenerates
		// to plain rotation, so it serves RoundRobin too.
		var total int
		var best *member
		for _, m := range b.members {
			if skipDraining && m.draining {
				continue
			}
			w := m.weight
			if b.policy == RoundRobin {
				w = 1
			}
			m.current += w
			total += w
			if best == nil || m.current > best.current {
				best = m
			}
		}
		best.current -= total
		return best
	}
}

// Throughput sums the balanced backends' completion rates; it is what
// the driver's WIPS sampler reads.
func (b *Balancer) Throughput() float64 {
	b.mu.Lock()
	backends := make([]Backend, len(b.members))
	for i, m := range b.members {
		backends[i] = m.backend
	}
	b.mu.Unlock()
	var sum float64
	for _, be := range backends {
		sum += be.Throughput()
	}
	return sum
}

// Spread summarises the current pin distribution as "node=count" pairs in
// name order (observability for tests and reports).
func (b *Balancer) Spread() []string {
	counts := b.Assignments()
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = fmt.Sprintf("%s=%d", n, counts[n])
	}
	return out
}

package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
)

// testDetect is a fast-reacting detector tuning for synthetic rounds.
func testDetect() detect.Config {
	return detect.Config{Window: 20, MinSamples: 4, Consecutive: 2}
}

// syntheticRound builds one round for a node: component "leaky" grows by
// leak bytes per round, component "ok" stays flat, both accrue usage.
func syntheticRound(node string, seq int64, at time.Time, leak int64) Round {
	return Round{
		Node: node,
		Seq:  seq,
		Time: at,
		Samples: []core.ComponentSample{
			{Component: "leaky", Size: 1000 + leak*seq, SizeOK: true, Usage: 100 * seq, CPUSeconds: 0.1 * float64(seq), Threads: 2},
			{Component: "ok", Size: 1000, SizeOK: true, Usage: 100 * seq, CPUSeconds: 0.1 * float64(seq), Threads: 2},
		},
	}
}

// driveCluster feeds `rounds` synchronized rounds for the given nodes,
// with per-node clock offsets and per-node leak rates.
func driveCluster(a *Aggregator, nodes []string, offsets map[string]time.Duration, leaks map[string]int64, rounds int64) {
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for seq := int64(1); seq <= rounds; seq++ {
		at := t0.Add(time.Duration(seq) * 30 * time.Second)
		for _, n := range nodes {
			a.Ingest(syntheticRound(n, seq, at.Add(offsets[n]), leaks[n]))
		}
	}
}

func TestAggregatorSingleNodeLeakIsNodeLocal(t *testing.T) {
	a := New(Config{Detect: testDetect()})
	nodes := []string{"node1", "node2", "node3"}
	a.Expect(nodes...)
	driveCluster(a, nodes, nil, map[string]int64{"node2": 4096}, 20)

	if got := a.Epoch(); got != 20 {
		t.Fatalf("epoch = %d, want 20", got)
	}
	rep := a.Report(core.ResourceMemory)
	if rep == nil || !rep.Alarming() {
		t.Fatalf("no memory verdict: %v", rep)
	}
	top, _ := rep.Top()
	if top.Component != "leaky" || top.ClusterWide {
		t.Fatalf("want node-local leaky verdict, got %+v", top)
	}
	if len(top.Nodes) != 1 || top.Nodes[0] != "node2" {
		t.Fatalf("verdict names nodes %v, want [node2]", top.Nodes)
	}
	if top.Pair() != "node2/leaky" {
		t.Fatalf("Pair() = %q", top.Pair())
	}
	if top.FirstEpoch <= 0 || top.FirstEpoch > 20 {
		t.Fatalf("FirstEpoch = %d", top.FirstEpoch)
	}
	// The healthy nodes must not be flagged.
	for _, n := range []string{"node1", "node3"} {
		nr := a.NodeReport(n, core.ResourceMemory)
		if nr == nil {
			t.Fatalf("no node report for %s", n)
		}
		if len(nr.Alarms()) != 0 {
			t.Fatalf("healthy node %s alarms: %s", n, nr)
		}
	}
}

func TestAggregatorUniformLeakIsClusterWide(t *testing.T) {
	a := New(Config{Detect: testDetect()})
	nodes := []string{"node1", "node2", "node3"}
	a.Expect(nodes...)
	leaks := map[string]int64{"node1": 4096, "node2": 4096, "node3": 4096}
	driveCluster(a, nodes, nil, leaks, 20)

	rep := a.Report(core.ResourceMemory)
	top, ok := rep.Top()
	if !ok || top.Component != "leaky" {
		t.Fatalf("no leaky verdict: %v", rep)
	}
	if !top.ClusterWide {
		t.Fatalf("3/3 alarming nodes should be cluster-wide: %+v", top)
	}
	if len(top.Nodes) != 3 {
		t.Fatalf("want all nodes alarming, got %v", top.Nodes)
	}
	if !strings.Contains(rep.String(), "cluster-wide") {
		t.Fatalf("report does not render scope:\n%s", rep)
	}
}

// TestAggregatorSkewedClocksStayOrdered is the regression test for the
// sampling-round timestamp contract: three nodes whose sim clocks
// disagree by minutes (one in the future, one in the past) must still
// produce a time-ordered merged round log and per-node detector series,
// with verdicts identical to the unskewed run.
func TestAggregatorSkewedClocksStayOrdered(t *testing.T) {
	nodes := []string{"node1", "node2", "node3"}
	leaks := map[string]int64{"node2": 4096}

	skewed := New(Config{Detect: testDetect()})
	skewed.Expect(nodes...)
	driveCluster(skewed, nodes, map[string]time.Duration{
		"node1": 0,
		"node2": 17 * time.Minute,  // clock running ahead
		"node3": -11 * time.Minute, // clock running behind
	}, leaks, 20)

	merged := skewed.MergedRounds()
	if len(merged) != 60 {
		t.Fatalf("merged log holds %d rounds, want 60", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Time.Before(merged[i-1].Time) {
			t.Fatalf("merged rounds out of order at %d: %v after %v (nodes %s, %s)",
				i, merged[i].Time, merged[i-1].Time, merged[i-1].Node, merged[i].Node)
		}
	}

	flat := New(Config{Detect: testDetect()})
	flat.Expect(nodes...)
	driveCluster(flat, nodes, nil, leaks, 20)

	sk, fl := skewed.Report(core.ResourceMemory), flat.Report(core.ResourceMemory)
	skTop, ok1 := sk.Top()
	flTop, ok2 := fl.Top()
	if !ok1 || !ok2 {
		t.Fatalf("missing verdicts: skewed=%v flat=%v", sk, fl)
	}
	if skTop.Component != flTop.Component || skTop.Pair() != flTop.Pair() ||
		skTop.FirstEpoch != flTop.FirstEpoch {
		t.Fatalf("skew changed the verdict: skewed=%+v flat=%+v", skTop, flTop)
	}
}

func TestAggregatorStaleNodeIsEvictedWithoutStallingOrAlarming(t *testing.T) {
	a := New(Config{Detect: testDetect(), StaleEpochs: 3})
	nodes := []string{"node1", "node2", "node3"}
	a.Expect(nodes...)
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	// All three report for 8 epochs, then node3 goes silent.
	for seq := int64(1); seq <= 20; seq++ {
		at := t0.Add(time.Duration(seq) * 30 * time.Second)
		for _, n := range nodes {
			if n == "node3" && seq > 8 {
				continue
			}
			a.Ingest(syntheticRound(n, seq, at, 0))
		}
	}
	if got := a.Epoch(); got != 20 {
		t.Fatalf("cluster stalled on the dead node: epoch=%d, want 20", got)
	}
	var st NodeStatus
	for _, s := range a.Nodes() {
		if s.Node == "node3" {
			st = s
		}
	}
	if st.Active {
		t.Fatalf("dead node still active: %+v", st)
	}
	rep := a.Report(core.ResourceMemory)
	if rep.Active != 2 || rep.Total != 3 {
		t.Fatalf("membership wrong: %+v", rep)
	}
	if rep.Alarming() {
		t.Fatalf("node death raised aging verdicts:\n%s", rep)
	}
	// No alarm notifications either — only membership math changed.
	for _, n := range a.DrainNotifications() {
		t.Fatalf("unexpected notification: %s", n.Message)
	}
}

func TestAggregatorJoinHoldsPromotionDown(t *testing.T) {
	a := New(Config{Detect: testDetect(), ChurnHold: 4})
	nodes := []string{"node1", "node2"}
	a.Expect(nodes...)
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for seq := int64(1); seq <= 10; seq++ {
		at := t0.Add(time.Duration(seq) * 30 * time.Second)
		for _, n := range nodes {
			a.Ingest(syntheticRound(n, seq, at, 0))
		}
	}
	// node3 joins at epoch 10 and the cluster runs on.
	for seq := int64(1); seq <= 6; seq++ {
		at := t0.Add(time.Duration(10+seq) * 30 * time.Second)
		a.Ingest(syntheticRound("node1", 10+seq, at, 0))
		a.Ingest(syntheticRound("node2", 10+seq, at, 0))
		a.Ingest(syntheticRound("node3", seq, at, 0))
	}
	if got := a.Epoch(); got != 16 {
		t.Fatalf("epoch=%d, want 16", got)
	}
	var joined NodeStatus
	for _, s := range a.Nodes() {
		if s.Node == "node3" {
			joined = s
		}
	}
	// The joiner's first round counts toward the epoch after the join
	// point, so after 6 rounds it sits one epoch ahead of the fold line.
	if !joined.Active || joined.Epoch != 17 {
		t.Fatalf("joined node misaligned: %+v", joined)
	}
	rep := a.Report(core.ResourceMemory)
	if rep.Active != 3 {
		t.Fatalf("active=%d, want 3", rep.Active)
	}
	if rep.Alarming() {
		t.Fatalf("join raised verdicts:\n%s", rep)
	}
}

func TestAggregatorNotificationTransitions(t *testing.T) {
	a := New(Config{Detect: testDetect()})
	nodes := []string{"node1", "node2"}
	a.Expect(nodes...)
	driveCluster(a, nodes, nil, map[string]int64{"node1": 8192}, 20)

	var alarmMsgs []string
	for _, n := range a.DrainNotifications() {
		if n.Type != NotifClusterAlarm {
			t.Fatalf("unexpected type %q", n.Type)
		}
		alarmMsgs = append(alarmMsgs, n.Message)
	}
	if len(alarmMsgs) == 0 {
		t.Fatal("no cluster alarm notifications")
	}
	found := false
	for _, m := range alarmMsgs {
		if strings.Contains(m, "leaky") && strings.Contains(m, "node1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no (node1, leaky) alarm in %v", alarmMsgs)
	}
	// Draining again yields nothing.
	if rest := a.DrainNotifications(); len(rest) != 0 {
		t.Fatalf("queue not drained: %v", rest)
	}
}

func TestAggregatorLiveRankNamesNodeComponentPairs(t *testing.T) {
	a := New(Config{Detect: testDetect()})
	nodes := []string{"node1", "node2", "node3"}
	a.Expect(nodes...)
	driveCluster(a, nodes, nil, map[string]int64{"node2": 4096}, 20)

	ranking := a.LiveRank(core.ResourceMemory)
	if len(ranking.Entries) != 6 {
		t.Fatalf("want 6 (node, component) entries, got %d", len(ranking.Entries))
	}
	top, _ := ranking.Top()
	if top.Name != "leaky" || top.Node != "node2" || !top.Alarm {
		t.Fatalf("live rank top = %+v, want alarming (node2, leaky)", top)
	}
	if !strings.Contains(ranking.String(), "node2/leaky") {
		t.Fatalf("rendered ranking lacks the pair:\n%s", ranking.String())
	}
}

func TestAggregatorUnknownResourceQueriesAreSafe(t *testing.T) {
	a := New(Config{Detect: testDetect()})
	nodes := []string{"node1", "node2"}
	a.Expect(nodes...)
	driveCluster(a, nodes, nil, nil, 5)
	if got := a.Verdicts("bogus"); got != nil {
		t.Fatalf("verdicts for unknown resource: %v", got)
	}
	ranking := a.LiveRank("bogus")
	for _, e := range ranking.Entries {
		if e.Alarm {
			t.Fatalf("unknown resource produced an alarm: %+v", e)
		}
	}
	if rep := a.Report("bogus"); rep != nil {
		t.Fatalf("report for unknown resource: %v", rep)
	}
	if rep := a.NodeReport("node1", "bogus"); rep != nil {
		t.Fatalf("node report for unknown resource: %v", rep)
	}
}

func TestAggregatorDuplicateRoundCannotUndoLeave(t *testing.T) {
	a := New(Config{Detect: testDetect()})
	nodes := []string{"node1", "node2"}
	a.Expect(nodes...)
	driveCluster(a, nodes, nil, nil, 5)
	a.Leave("node2")
	// A stale in-flight frame (seq already seen) must not rejoin the
	// node it would have been dropped for anyway.
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	a.Ingest(syntheticRound("node2", 5, t0.Add(5*30*time.Second), 0))
	for _, s := range a.Nodes() {
		if s.Node == "node2" && s.Active {
			t.Fatal("duplicate round reactivated a departed node")
		}
	}
	// A genuinely new round is the documented rejoin path.
	a.Ingest(syntheticRound("node2", 6, t0.Add(6*30*time.Second), 0))
	for _, s := range a.Nodes() {
		if s.Node == "node2" && !s.Active {
			t.Fatal("new round did not rejoin the node")
		}
	}
}

func TestAggregatorDuplicateAndStaleRoundsDropped(t *testing.T) {
	a := New(Config{Detect: testDetect()})
	a.Expect("node1")
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	r := syntheticRound("node1", 1, t0, 0)
	a.Ingest(r)
	a.Ingest(r)                                 // duplicate
	a.Ingest(syntheticRound("node1", 0, t0, 0)) // invalid seq
	if a.TotalRounds() != 1 {
		t.Fatalf("total=%d, want 1", a.TotalRounds())
	}
}

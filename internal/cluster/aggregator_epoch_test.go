package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestSubscribeEpochsDeliversVerdicts pins the epoch-event subscription:
// each completed fold delivers exactly one event, in epoch order, with
// the fold's verdicts, after the fold lock is released.
func TestSubscribeEpochsDeliversVerdicts(t *testing.T) {
	a := New(Config{Detect: testDetect()})
	nodes := []string{"node1", "node2", "node3"}
	a.Expect(nodes...)
	var events []EpochEvent
	a.SubscribeEpochs(func(ev EpochEvent) {
		events = append(events, ev)
		// Re-entering the aggregator from a subscriber must not deadlock:
		// this is the controller's ResetNode path.
		_ = a.Epoch()
	})
	driveCluster(a, nodes, nil, map[string]int64{"node2": 4096}, 20)

	if len(events) != 20 {
		t.Fatalf("%d epoch events, want 20", len(events))
	}
	for i, ev := range events {
		if ev.Epoch != int64(i+1) {
			t.Fatalf("event %d has epoch %d: out of order", i, ev.Epoch)
		}
		if ev.Active != 3 {
			t.Fatalf("event %d active=%d, want 3", i, ev.Active)
		}
	}
	// The detector's verdicts surface on the late events.
	last := events[len(events)-1]
	var found bool
	for _, v := range last.Verdicts {
		if v.Component == "leaky" && len(v.Nodes) == 1 && v.Nodes[0] == "node2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("final epoch event carries no node2/leaky verdict: %+v", last.Verdicts)
	}
}

// TestResetNodeClearsDetectionHistory pins the post-reboot reset: a node
// whose leak alarmed, once reset, needs a fresh MinSamples+Consecutive
// run of leaking rounds before it alarms again — its old trend is gone.
func TestResetNodeClearsDetectionHistory(t *testing.T) {
	a := New(Config{Detect: testDetect()})
	nodes := []string{"node1", "node2", "node3"}
	a.Expect(nodes...)
	leaks := map[string]int64{"node2": 4096}
	driveCluster(a, nodes, nil, leaks, 20)
	rep := a.NodeReport("node2", core.ResourceMemory)
	if rep == nil || len(rep.Alarms()) == 0 {
		t.Fatal("node2 not alarming before the reset; test setup broken")
	}
	if !a.ResetNode("node2") {
		t.Fatal("ResetNode refused a known node")
	}
	if a.ResetNode("ghost") {
		t.Fatal("ResetNode accepted an unknown node")
	}
	// The node keeps publishing, now healthy (leak fixed by the reboot).
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for seq := int64(21); seq <= 24; seq++ {
		at := t0.Add(time.Duration(seq) * 30 * time.Second)
		for _, n := range nodes {
			a.Ingest(syntheticRound(n, seq, at, 0))
		}
	}
	rep = a.NodeReport("node2", core.ResourceMemory)
	if rep != nil && len(rep.Alarms()) > 0 {
		t.Fatalf("node2 still alarming after reset + healthy rounds: %+v", rep.Components)
	}
	if got := a.Epoch(); got != 24 {
		t.Fatalf("epoch stalled at %d after reset, want 24", got)
	}
	// A fresh leak must still be detectable after the reset.
	for seq := int64(25); seq <= 44; seq++ {
		at := t0.Add(time.Duration(seq) * 30 * time.Second)
		for _, n := range nodes {
			a.Ingest(syntheticRound(n, seq, at, leaks[n]))
		}
	}
	rep = a.NodeReport("node2", core.ResourceMemory)
	if rep == nil || len(rep.Alarms()) == 0 {
		t.Fatal("reset killed future detection on node2")
	}
}

// TestDrainNotificationsUnderConcurrentIngest hammers DrainNotifications
// while many publishers ingest — the satellite's -race pin: the
// notification queue and the ingest lanes must never race, and every
// published notification must be drained exactly once.
func TestDrainNotificationsUnderConcurrentIngest(t *testing.T) {
	a := New(Config{Detect: testDetect()})
	const nodes = 8
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i)
	}
	a.Expect(names...)

	var wg sync.WaitGroup
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, n := range names {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			for seq := int64(1); seq <= 40; seq++ {
				a.Ingest(syntheticRound(node, seq, t0.Add(time.Duration(seq)*30*time.Second), 4096))
			}
		}(n)
	}
	publishersDone := make(chan struct{})
	go func() { wg.Wait(); close(publishersDone) }()
	total := 0
	for draining := true; draining; {
		select {
		case <-time.After(time.Millisecond):
		case <-publishersDone:
			draining = false
		}
		total += len(a.DrainNotifications())
	}
	if total == 0 {
		t.Fatal("cluster-wide leak produced no notifications")
	}
	if rest := a.DrainNotifications(); len(rest) != 0 {
		t.Fatalf("%d notifications left after the final drain", len(rest))
	}
}

package cluster

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jmx"
)

// shardedParityScenario drives one eventful cluster history — skewed
// clocks, a sick replica, a mid-run join and a mid-run leave — into an
// aggregator and returns everything externally observable: the drained
// notification stream, the final per-resource reports (times stripped:
// the merged timeline's high-water mark depends on arrival interleaving
// by design, verdicts must not), and the final membership.
func shardedParityScenario(a *Aggregator) ([]jmx.Notification, map[string][]ClusterVerdict, []NodeStatus) {
	nodes := []string{"node1", "node2", "node3"}
	a.Expect(nodes...)
	offsets := map[string]time.Duration{"node2": 90 * time.Minute, "node3": -45 * time.Second}
	leaks := map[string]int64{"node2": 4096}
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	var notifs []jmx.Notification
	for seq := int64(1); seq <= 40; seq++ {
		at := t0.Add(time.Duration(seq) * 30 * time.Second)
		for _, n := range nodes {
			a.Ingest(syntheticRound(n, seq, at.Add(offsets[n]), leaks[n]))
		}
		if seq == 12 {
			// node4 joins with a fresh local sequence.
			nodes = append(nodes, "node4")
		}
		if seq >= 12 {
			a.Ingest(syntheticRound("node4", seq-11, at, 0))
		}
		if seq == 25 {
			a.Leave("node3")
			nodes = []string{"node1", "node2", "node4"}
		}
		notifs = append(notifs, a.DrainNotifications()...)
	}
	verdicts := make(map[string][]ClusterVerdict)
	for _, res := range core.DetectorResources {
		if rep := a.Report(res); rep != nil {
			verdicts[res] = append([]ClusterVerdict(nil), rep.Verdicts...)
		}
	}
	return notifs, verdicts, a.Nodes()
}

// TestAggregatorShardedFoldMatchesSerial pins the tentpole contract: the
// lane-sharded aggregator with a parallel fold pool produces the same
// notification stream, verdicts and membership as the serial reference
// configuration (one lane, inline fold), byte for byte.
func TestAggregatorShardedFoldMatchesSerial(t *testing.T) {
	serial := New(Config{Detect: testDetect(), IngestLanes: 1, FoldWorkers: 1})
	sharded := New(Config{Detect: testDetect(), IngestLanes: 8, FoldWorkers: 4})

	wantNotifs, wantVerdicts, wantNodes := shardedParityScenario(serial)
	gotNotifs, gotVerdicts, gotNodes := shardedParityScenario(sharded)

	if !reflect.DeepEqual(gotNotifs, wantNotifs) {
		t.Errorf("notification streams diverge:\nserial:  %+v\nsharded: %+v", wantNotifs, gotNotifs)
	}
	if !reflect.DeepEqual(gotVerdicts, wantVerdicts) {
		t.Errorf("verdicts diverge:\nserial:  %+v\nsharded: %+v", wantVerdicts, gotVerdicts)
	}
	if !reflect.DeepEqual(gotNodes, wantNodes) {
		t.Errorf("membership diverges:\nserial:  %+v\nsharded: %+v", wantNodes, gotNodes)
	}
	if len(wantNotifs) == 0 || len(wantVerdicts[core.ResourceMemory]) == 0 {
		t.Fatalf("scenario produced no alarms to compare (notifs=%d)", len(wantNotifs))
	}
}

// TestAggregatorConcurrentPublishersSoak is the -race soak: N forwarders
// publish into one aggregator from their own goroutines (the wire
// deployment's shape) while monitoring goroutines hammer every read path.
// Verdict correctness is asserted at the end; the race detector asserts
// the rest.
func TestAggregatorConcurrentPublishersSoak(t *testing.T) {
	const nodes, rounds = 8, 60
	a := New(Config{Detect: testDetect()})
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i+1)
	}
	a.Expect(names...)

	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		var drained []jmx.Notification
		for {
			select {
			case <-done:
				// A final drain below picks up anything still queued.
				_ = drained
				return
			default:
			}
			a.Epoch()
			a.TotalRounds()
			a.Nodes()
			a.Report(core.ResourceMemory)
			a.NodeReport("node3", core.ResourceMemory)
			a.MergedRounds()
			a.LiveRank(core.ResourceMemory)
			drained = append(drained, a.DrainNotifications()...)
		}
	}()

	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	var barrier sync.WaitGroup
	feeds := make([]chan int64, nodes)
	var pubs sync.WaitGroup
	for i, n := range names {
		feeds[i] = make(chan int64, 1)
		leak := int64(0)
		if n == "node3" {
			leak = 4096
		}
		fw := NewForwarder(n, NewInProc(a))
		pubs.Add(1)
		go func(feed <-chan int64, node string, leak int64) {
			defer pubs.Done()
			for seq := range feed {
				r := syntheticRound(node, seq, t0.Add(time.Duration(seq)*30*time.Second), leak)
				fw.ObserveSample(r.Time, r.Samples)
				barrier.Done()
			}
		}(feeds[i], n, leak)
	}
	for seq := int64(1); seq <= rounds; seq++ {
		// The per-round barrier models the shared sampling cadence and
		// keeps node drift inside the staleness window.
		barrier.Add(nodes)
		for _, feed := range feeds {
			feed <- seq
		}
		barrier.Wait()
	}
	for _, feed := range feeds {
		close(feed)
	}
	pubs.Wait()
	close(done)
	readers.Wait()

	if got := a.TotalRounds(); got != nodes*rounds {
		t.Fatalf("TotalRounds = %d, want %d", got, nodes*rounds)
	}
	if got := a.Epoch(); got != rounds {
		t.Fatalf("epoch = %d, want %d", got, rounds)
	}
	rep := a.Report(core.ResourceMemory)
	if rep == nil || !rep.Alarming() {
		t.Fatalf("no memory verdict after soak: %v", rep)
	}
	top, _ := rep.Top()
	if top.Pair() != "node3/leaky" {
		t.Fatalf("top verdict = %q, want node3/leaky", top.Pair())
	}
}

// TestLeaveResetRaceParallelFold hammers the administrative membership
// surface — Leave and ResetNode, the operations a rejuvenation
// controller or an operator issues — against in-flight parallel folds
// and concurrent publishers. The race detector asserts the locking; the
// test asserts the plane comes out coherent: nodes that kept publishing
// rejoin, epochs advance, and every admission slot is released.
func TestLeaveResetRaceParallelFold(t *testing.T) {
	const nodes, rounds = 6, 80
	a := New(Config{Detect: testDetect(), IngestLanes: 4, FoldWorkers: 4})
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i+1)
	}
	a.Expect(names...)

	done := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			a.Leave(names[i%nodes])
			a.ResetNode(names[(i+1)%nodes])
			a.Nodes()
			a.Report(core.ResourceMemory)
		}
	}()

	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	var barrier sync.WaitGroup
	feeds := make([]chan int64, nodes)
	var pubs sync.WaitGroup
	for i, n := range names {
		feeds[i] = make(chan int64, 1)
		pubs.Add(1)
		go func(feed <-chan int64, node string) {
			defer pubs.Done()
			for seq := range feed {
				// Publishing straight through Leave exercises the rejoin
				// path against the fold in flight.
				a.Ingest(syntheticRound(node, seq, t0.Add(time.Duration(seq)*30*time.Second), 0))
				barrier.Done()
			}
		}(feeds[i], n)
	}
	for seq := int64(1); seq <= rounds; seq++ {
		barrier.Add(nodes)
		for _, feed := range feeds {
			feed <- seq
		}
		barrier.Wait()
	}
	for _, feed := range feeds {
		close(feed)
	}
	pubs.Wait()
	close(done)
	churn.Wait()

	// Quiesce: everyone publishes a few more lockstep rounds with the
	// churn stopped, after which the whole membership must be active
	// and the epoch line moving again.
	before := a.Epoch()
	for seq := int64(rounds + 1); seq <= rounds+10; seq++ {
		at := t0.Add(time.Duration(seq) * 30 * time.Second)
		for _, n := range names {
			a.Ingest(syntheticRound(n, seq, at, 0))
		}
	}
	if got := a.Epoch(); got <= before {
		t.Fatalf("epoch stuck at %d after churn stopped", got)
	}
	for _, st := range a.Nodes() {
		if !st.Active {
			t.Fatalf("node %s never rejoined after churn: %+v", st.Node, st)
		}
	}
	for i := range a.lanes {
		if got := a.lanes[i].queued.Load(); got != 0 {
			t.Fatalf("lane %d admission counter = %d after quiesce, want 0", i, got)
		}
	}
	if a.ShedRounds() != 0 {
		// Publishers were barriered, never more than one in flight per
		// node against the default 1024-deep lanes: nothing may shed.
		t.Fatalf("ShedRounds = %d under a paced load", a.ShedRounds())
	}
}

package cluster

import (
	"fmt"
	"testing"

	"repro/internal/servlet"
)

// stubBackend records submissions and completes them synchronously.
type stubBackend struct {
	name string
	hits int
	// hold, when set, delays completions until release is called.
	hold    bool
	pending []func()
}

func (s *stubBackend) Submit(req *servlet.Request, done servlet.Completion) {
	s.hits++
	finish := func() {
		if done != nil {
			done(req, &servlet.Response{Status: servlet.StatusOK})
		}
	}
	if s.hold {
		s.pending = append(s.pending, finish)
		return
	}
	finish()
}

func (s *stubBackend) release() {
	for _, f := range s.pending {
		f()
	}
	s.pending = nil
}

func (s *stubBackend) Throughput() float64 { return float64(s.hits) }

func reqFor(session string) *servlet.Request {
	return &servlet.Request{Interaction: "home", SessionID: session}
}

func threeNodeBalancer(p Policy) (*Balancer, map[string]*stubBackend) {
	b := NewBalancer(p)
	backends := make(map[string]*stubBackend)
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("node%d", i)
		be := &stubBackend{name: name}
		backends[name] = be
		b.AddNode(name, be, 1)
	}
	return b, backends
}

func TestBalancerRoundRobinSpreadsSessions(t *testing.T) {
	b, backends := threeNodeBalancer(RoundRobin)
	for i := 0; i < 9; i++ {
		b.Submit(reqFor(fmt.Sprintf("s%d", i)), nil)
	}
	for name, be := range backends {
		if be.hits != 3 {
			t.Fatalf("%s got %d requests, want 3 (assignments %v)", name, be.hits, b.Assignments())
		}
	}
}

func TestBalancerSessionsAreSticky(t *testing.T) {
	b, backends := threeNodeBalancer(RoundRobin)
	for i := 0; i < 12; i++ {
		b.Submit(reqFor("one-session"), nil)
	}
	var nonZero int
	for _, be := range backends {
		if be.hits > 0 {
			nonZero++
			if be.hits != 12 {
				t.Fatalf("sticky session split: %v", b.Assignments())
			}
		}
	}
	if nonZero != 1 {
		t.Fatalf("session touched %d nodes", nonZero)
	}
}

func TestBalancerLeastLoadedSpreadsIdleNodes(t *testing.T) {
	// Under think-time-dominated load every assignment sees all-zero
	// in-flight counts; the rotating tie-break must still spread
	// sessions instead of pinning them all to the first node.
	b, backends := threeNodeBalancer(LeastLoaded)
	for i := 0; i < 9; i++ {
		b.Submit(reqFor(fmt.Sprintf("s%d", i)), nil)
	}
	for name, be := range backends {
		if be.hits != 3 {
			t.Fatalf("%s got %d requests, want 3 (assignments %v)", name, be.hits, b.Assignments())
		}
	}
}

func TestBalancerLeastLoadedAvoidsBusyNode(t *testing.T) {
	b, backends := threeNodeBalancer(LeastLoaded)
	backends["node1"].hold = true
	// Pin three sessions while node1 holds its request open.
	b.Submit(reqFor("a"), nil) // node1, stays in flight
	b.Submit(reqFor("b"), nil)
	b.Submit(reqFor("c"), nil)
	b.Submit(reqFor("d"), nil) // must avoid node1 (inflight 1 vs 0)
	if backends["node1"].hits != 1 {
		t.Fatalf("busy node got %d, want 1", backends["node1"].hits)
	}
	backends["node1"].release()
}

func TestBalancerWeightedSkewsTraffic(t *testing.T) {
	b, backends := threeNodeBalancer(Weighted)
	b.SetWeights(map[string]int{"node1": 8, "node2": 1, "node3": 1})
	for i := 0; i < 100; i++ {
		b.Submit(reqFor(fmt.Sprintf("s%d", i)), nil)
	}
	if h := backends["node1"].hits; h != 80 {
		t.Fatalf("weighted node1 got %d/100, want 80", h)
	}
}

func TestBalancerRemoveNodeUnpinsAndRebalanceClears(t *testing.T) {
	b, backends := threeNodeBalancer(RoundRobin)
	for i := 0; i < 6; i++ {
		b.Submit(reqFor(fmt.Sprintf("s%d", i)), nil)
	}
	if !b.RemoveNode("node2") {
		t.Fatal("node2 not removed")
	}
	if b.RemoveNode("node2") {
		t.Fatal("second removal succeeded")
	}
	before := backends["node2"].hits
	for i := 0; i < 6; i++ {
		b.Submit(reqFor(fmt.Sprintf("s%d", i)), nil)
	}
	if backends["node2"].hits != before {
		t.Fatal("removed node still receives traffic")
	}
	b.Rebalance()
	if n := len(b.Assignments()); n != 2 {
		t.Fatalf("assignments over %d nodes after rebalance", n)
	}
	for node, pins := range b.Assignments() {
		if pins != 0 {
			t.Fatalf("%s still pinned %d sessions after Rebalance", node, pins)
		}
	}
}

func TestBalancerEmptyPoolRejects(t *testing.T) {
	b := NewBalancer(RoundRobin)
	var status int
	b.Submit(reqFor("s"), func(_ *servlet.Request, resp *servlet.Response) {
		status = resp.Status
	})
	if status != servlet.StatusUnavailable {
		t.Fatalf("status=%d, want 503", status)
	}
}

func TestBalancerThroughputSums(t *testing.T) {
	b, _ := threeNodeBalancer(RoundRobin)
	for i := 0; i < 9; i++ {
		b.Submit(reqFor(fmt.Sprintf("s%d", i)), nil)
	}
	if got := b.Throughput(); got != 9 {
		t.Fatalf("throughput=%v, want 9", got)
	}
	if got := b.Spread(); len(got) != 3 {
		t.Fatalf("spread=%v", got)
	}
}

package cluster

import (
	"fmt"
	"testing"

	"repro/internal/servlet"
)

// stubBackend records submissions and completes them synchronously.
type stubBackend struct {
	name string
	hits int
	// hold, when set, delays completions until release is called.
	hold    bool
	pending []func()
}

func (s *stubBackend) Submit(req *servlet.Request, done servlet.Completion) {
	s.hits++
	finish := func() {
		if done != nil {
			done(req, &servlet.Response{Status: servlet.StatusOK})
		}
	}
	if s.hold {
		s.pending = append(s.pending, finish)
		return
	}
	finish()
}

func (s *stubBackend) release() {
	for _, f := range s.pending {
		f()
	}
	s.pending = nil
}

func (s *stubBackend) Throughput() float64 { return float64(s.hits) }

func reqFor(session string) *servlet.Request {
	return &servlet.Request{Interaction: "home", SessionID: session}
}

func threeNodeBalancer(p Policy) (*Balancer, map[string]*stubBackend) {
	b := NewBalancer(p)
	backends := make(map[string]*stubBackend)
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("node%d", i)
		be := &stubBackend{name: name}
		backends[name] = be
		b.AddNode(name, be, 1)
	}
	return b, backends
}

func TestBalancerRoundRobinSpreadsSessions(t *testing.T) {
	b, backends := threeNodeBalancer(RoundRobin)
	for i := 0; i < 9; i++ {
		b.Submit(reqFor(fmt.Sprintf("s%d", i)), nil)
	}
	for name, be := range backends {
		if be.hits != 3 {
			t.Fatalf("%s got %d requests, want 3 (assignments %v)", name, be.hits, b.Assignments())
		}
	}
}

func TestBalancerSessionsAreSticky(t *testing.T) {
	b, backends := threeNodeBalancer(RoundRobin)
	for i := 0; i < 12; i++ {
		b.Submit(reqFor("one-session"), nil)
	}
	var nonZero int
	for _, be := range backends {
		if be.hits > 0 {
			nonZero++
			if be.hits != 12 {
				t.Fatalf("sticky session split: %v", b.Assignments())
			}
		}
	}
	if nonZero != 1 {
		t.Fatalf("session touched %d nodes", nonZero)
	}
}

func TestBalancerLeastLoadedSpreadsIdleNodes(t *testing.T) {
	// Under think-time-dominated load every assignment sees all-zero
	// in-flight counts; the rotating tie-break must still spread
	// sessions instead of pinning them all to the first node.
	b, backends := threeNodeBalancer(LeastLoaded)
	for i := 0; i < 9; i++ {
		b.Submit(reqFor(fmt.Sprintf("s%d", i)), nil)
	}
	for name, be := range backends {
		if be.hits != 3 {
			t.Fatalf("%s got %d requests, want 3 (assignments %v)", name, be.hits, b.Assignments())
		}
	}
}

func TestBalancerLeastLoadedAvoidsBusyNode(t *testing.T) {
	b, backends := threeNodeBalancer(LeastLoaded)
	backends["node1"].hold = true
	// Pin three sessions while node1 holds its request open.
	b.Submit(reqFor("a"), nil) // node1, stays in flight
	b.Submit(reqFor("b"), nil)
	b.Submit(reqFor("c"), nil)
	b.Submit(reqFor("d"), nil) // must avoid node1 (inflight 1 vs 0)
	if backends["node1"].hits != 1 {
		t.Fatalf("busy node got %d, want 1", backends["node1"].hits)
	}
	backends["node1"].release()
}

func TestBalancerWeightedSkewsTraffic(t *testing.T) {
	b, backends := threeNodeBalancer(Weighted)
	b.SetWeights(map[string]int{"node1": 8, "node2": 1, "node3": 1})
	for i := 0; i < 100; i++ {
		b.Submit(reqFor(fmt.Sprintf("s%d", i)), nil)
	}
	if h := backends["node1"].hits; h != 80 {
		t.Fatalf("weighted node1 got %d/100, want 80", h)
	}
}

func TestBalancerRemoveNodeUnpinsAndRebalanceClears(t *testing.T) {
	b, backends := threeNodeBalancer(RoundRobin)
	for i := 0; i < 6; i++ {
		b.Submit(reqFor(fmt.Sprintf("s%d", i)), nil)
	}
	if !b.RemoveNode("node2") {
		t.Fatal("node2 not removed")
	}
	if b.RemoveNode("node2") {
		t.Fatal("second removal succeeded")
	}
	before := backends["node2"].hits
	for i := 0; i < 6; i++ {
		b.Submit(reqFor(fmt.Sprintf("s%d", i)), nil)
	}
	if backends["node2"].hits != before {
		t.Fatal("removed node still receives traffic")
	}
	b.Rebalance()
	if n := len(b.Assignments()); n != 2 {
		t.Fatalf("assignments over %d nodes after rebalance", n)
	}
	for node, pins := range b.Assignments() {
		if pins != 0 {
			t.Fatalf("%s still pinned %d sessions after Rebalance", node, pins)
		}
	}
}

func TestBalancerEmptyPoolRejects(t *testing.T) {
	b := NewBalancer(RoundRobin)
	var status int
	b.Submit(reqFor("s"), func(_ *servlet.Request, resp *servlet.Response) {
		status = resp.Status
	})
	if status != servlet.StatusUnavailable {
		t.Fatalf("status=%d, want 503", status)
	}
}

func TestBalancerThroughputSums(t *testing.T) {
	b, _ := threeNodeBalancer(RoundRobin)
	for i := 0; i < 9; i++ {
		b.Submit(reqFor(fmt.Sprintf("s%d", i)), nil)
	}
	if got := b.Throughput(); got != 9 {
		t.Fatalf("throughput=%v, want 9", got)
	}
	if got := b.Spread(); len(got) != 3 {
		t.Fatalf("spread=%v", got)
	}
}

// TestBalancerRemoveNodeEvictsStaleSessions is the regression pin for
// sticky-session eviction: after RemoveNode, a session that was pinned to
// the removed member must be re-assigned to a live node on its next
// request — not routed into the void or left pointing at freed state.
func TestBalancerRemoveNodeEvictsStaleSessions(t *testing.T) {
	b, backends := threeNodeBalancer(RoundRobin)
	sessions := []string{"s0", "s1", "s2", "s3", "s4", "s5"}
	for _, s := range sessions {
		b.Submit(reqFor(s), nil)
	}
	// Find the sessions node2 owns before it goes away.
	owned := map[string]bool{}
	for _, s := range sessions {
		pre := backends["node2"].hits
		b.Submit(reqFor(s), nil)
		if backends["node2"].hits > pre {
			owned[s] = true
		}
	}
	if len(owned) == 0 {
		t.Fatal("no sessions pinned to node2; test setup broken")
	}
	if !b.RemoveNode("node2") {
		t.Fatal("node2 not removed")
	}
	if got := b.PinnedSessions("node2"); got != 0 {
		t.Fatalf("%d sessions still pinned to the removed node", got)
	}
	for s := range owned {
		var status int
		b.Submit(reqFor(s), func(_ *servlet.Request, resp *servlet.Response) {
			status = resp.Status
		})
		if status != servlet.StatusOK {
			t.Fatalf("session %s got status %d after its node was removed", s, status)
		}
	}
	// The evicted sessions re-pinned onto survivors only, and the removed
	// backend saw none of the re-homed traffic.
	if pins := b.Assignments()["node2"]; pins != 0 {
		t.Fatalf("removed node re-acquired %d sessions", pins)
	}
	if backends["node2"].hits != 2*len(owned) {
		t.Fatalf("removed backend hits = %d, want the pre-removal %d", backends["node2"].hits, 2*len(owned))
	}
}

// TestBalancerDrainStopsNewSessionsKeepsSticky pins the drain contract:
// no new sticky assignments land on a draining member, but sessions it
// already owns keep routing to it until CompleteDrain.
func TestBalancerDrainStopsNewSessionsKeepsSticky(t *testing.T) {
	b, backends := threeNodeBalancer(RoundRobin)
	for i := 0; i < 6; i++ {
		b.Submit(reqFor(fmt.Sprintf("s%d", i)), nil)
	}
	if !b.Drain("node2") {
		t.Fatal("drain refused")
	}
	if !b.Draining("node2") {
		t.Fatal("node2 not reported draining")
	}
	stuck := b.PinnedSessions("node2")
	if stuck == 0 {
		t.Fatal("no sessions pinned to node2; test setup broken")
	}
	// New sessions avoid the draining node...
	before := backends["node2"].hits
	for i := 0; i < 9; i++ {
		b.Submit(reqFor(fmt.Sprintf("new%d", i)), nil)
	}
	if backends["node2"].hits != before {
		t.Fatalf("draining node got %d new requests", backends["node2"].hits-before)
	}
	// ...but existing sessions stay sticky to it: re-submitting all six
	// original sessions must land node2 exactly its pinned share again.
	for i := 0; i < 6; i++ {
		b.Submit(reqFor(fmt.Sprintf("s%d", i)), nil)
	}
	if got := backends["node2"].hits - before; got != stuck {
		t.Fatalf("draining node got %d sticky requests, want %d", got, stuck)
	}
	// CompleteDrain unpins; the sessions re-home on their next request.
	if got := b.CompleteDrain("node2"); got != stuck {
		t.Fatalf("CompleteDrain unpinned %d, want %d", got, stuck)
	}
	if got := b.PinnedSessions("node2"); got != 0 {
		t.Fatalf("%d sessions still pinned after CompleteDrain", got)
	}
	before = backends["node2"].hits
	for i := 0; i < 6; i++ {
		b.Submit(reqFor(fmt.Sprintf("s%d", i)), nil)
	}
	if backends["node2"].hits != before {
		t.Fatal("drained node still receives re-homed sessions")
	}
}

// TestBalancerReadmitRestoresRotation pins the probation re-entry path:
// a re-admitted node takes new traffic again at the given weight.
func TestBalancerReadmitRestoresRotation(t *testing.T) {
	b, backends := threeNodeBalancer(Weighted)
	b.SetWeights(map[string]int{"node1": 1, "node2": 1, "node3": 1})
	b.Drain("node2")
	b.CompleteDrain("node2")
	if !b.Readmit("node2", 2) {
		t.Fatal("readmit refused")
	}
	if b.Draining("node2") {
		t.Fatal("node2 still draining after readmit")
	}
	for i := 0; i < 100; i++ {
		b.Submit(reqFor(fmt.Sprintf("r%d", i)), nil)
	}
	if h := backends["node2"].hits; h != 50 {
		t.Fatalf("re-admitted node2 got %d/100 at weight 2 of 4, want 50", h)
	}
}

// TestBalancerAllDrainingStillRoutes pins the safety valve: draining
// every member must not turn the balancer into a 503 wall — a drain
// steers sessions, it never refuses service.
func TestBalancerAllDrainingStillRoutes(t *testing.T) {
	b, _ := threeNodeBalancer(RoundRobin)
	for _, n := range []string{"node1", "node2", "node3"} {
		b.Drain(n)
	}
	var status int
	b.Submit(reqFor("s"), func(_ *servlet.Request, resp *servlet.Response) {
		status = resp.Status
	})
	if status != servlet.StatusOK {
		t.Fatalf("all-draining pool returned %d, want 200", status)
	}
}

package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/jmx"
	"repro/internal/sim"
)

// TestIngestShedsAtFullLane pins the admission gate: a round arriving at
// a saturated lane is shed and counted, never parked; a drained lane
// admits again, and an admitted round releases its slot.
func TestIngestShedsAtFullLane(t *testing.T) {
	a := New(Config{Detect: testDetect(), IngestLanes: 1, LaneQueueDepth: 2})
	a.Expect("node1")
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

	lane := a.laneFor("node1")
	lane.queued.Add(2) // saturate the lane as two parked publishers would
	a.Ingest(syntheticRound("node1", 1, t0, 0))
	if got := a.ShedRounds(); got != 1 {
		t.Fatalf("ShedRounds = %d after ingest at a full lane, want 1", got)
	}
	if got := a.TotalRounds(); got != 0 {
		t.Fatalf("shed round was ingested anyway (total = %d)", got)
	}

	lane.queued.Add(-2) // the parked publishers drain
	a.Ingest(syntheticRound("node1", 1, t0, 0))
	if got := a.TotalRounds(); got != 1 {
		t.Fatalf("total = %d after the lane drained, want 1", got)
	}
	if got := lane.queued.Load(); got != 0 {
		t.Fatalf("admission slot leaked: queued = %d after Ingest returned", got)
	}
	if got := a.ShedRounds(); got != 1 {
		t.Fatalf("ShedRounds = %d, want still 1", got)
	}
}

// TestIngestStormAccounting floods one tiny lane from concurrent
// publishers and pins the storm invariant: every offered round is either
// ingested or shed — none lost to unaccounted paths — and the lane's
// admission counter returns to zero.
func TestIngestStormAccounting(t *testing.T) {
	a := New(Config{Detect: testDetect(), IngestLanes: 1, LaneQueueDepth: 1})
	const publishers, rounds = 8, 50
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

	var wg sync.WaitGroup
	wg.Add(publishers)
	for p := 0; p < publishers; p++ {
		go func(p int) {
			defer wg.Done()
			node := fmt.Sprintf("node%d", p)
			for seq := int64(1); seq <= rounds; seq++ {
				a.Ingest(syntheticRound(node, seq, t0.Add(time.Duration(seq)*30*time.Second), 0))
			}
		}(p)
	}
	wg.Wait()

	if got := a.TotalRounds() + a.ShedRounds(); got != publishers*rounds {
		t.Fatalf("ingested %d + shed %d = %d, want %d offered",
			a.TotalRounds(), a.ShedRounds(), got, publishers*rounds)
	}
	if got := a.laneFor("node0").queued.Load(); got != 0 {
		t.Fatalf("admission counter = %d after the storm, want 0", got)
	}
}

// TestRoundStormShedsAndVerdictsSurvive is the overload tentpole at the
// aggregator surface: a faultinject.RoundStorm of phantom publishers
// against a tiny lane sheds (counted, accounted), and the plane still
// attributes a real leak correctly afterwards — overload degrades
// coverage, never correctness.
func TestRoundStormShedsAndVerdictsSurvive(t *testing.T) {
	a := New(Config{Detect: testDetect(), IngestLanes: 1, LaneQueueDepth: 1, StaleEpochs: 2, ChurnHold: 1})
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

	storm := &faultinject.RoundStorm[Round]{
		Publishers: 16,
		Rounds:     20,
		Seed:       42,
		Make: func(_, p, i int, _ *sim.Stream) Round {
			seq := int64(i + 1)
			return syntheticRound(fmt.Sprintf("phantom%02d", p), seq,
				t0.Add(time.Duration(seq)*30*time.Second), 0)
		},
	}
	// Stall the lane while the storm rages, as a slow fold would: the
	// first publisher through the gate parks on the lane lock holding
	// the only admission slot, and every other offer sheds.
	lane := &a.lanes[0]
	lane.mu.Lock()
	done := make(chan int64, 1)
	go func() { done <- storm.Fire(a) }()
	waitFor(t, func() bool { return a.ShedRounds() >= 1 })
	lane.mu.Unlock()
	offered := <-done
	if offered != 16*20 || storm.Offered() != offered || storm.Storms() != 1 {
		t.Fatalf("storm bookkeeping: offered=%d Offered()=%d Storms()=%d",
			offered, storm.Offered(), storm.Storms())
	}
	if got := a.TotalRounds() + a.ShedRounds(); got != offered {
		t.Fatalf("ingested %d + shed %d = %d, want %d offered",
			a.TotalRounds(), a.ShedRounds(), got, offered)
	}
	if a.ShedRounds() == 0 {
		t.Fatal("16 concurrent publishers against a depth-1 lane shed nothing")
	}

	// The storm passes; real nodes publish on and the leak attribution
	// must come through (the stale phantoms evict, epochs resume).
	nodes := []string{"real1", "real2", "real3"}
	leaks := map[string]int64{"real2": 8192}
	for seq := int64(1); seq <= 40; seq++ {
		at := t0.Add(time.Duration(30+seq) * 30 * time.Second)
		for _, n := range nodes {
			a.Ingest(syntheticRound(n, seq, at, leaks[n]))
		}
	}
	rep := a.Report(core.ResourceMemory)
	if rep == nil || !rep.Alarming() {
		t.Fatalf("no memory verdict after the storm: %v", rep)
	}
	top, _ := rep.Top()
	if top.Component != "leaky" || len(top.Nodes) != 1 || top.Nodes[0] != "real2" {
		t.Fatalf("post-storm attribution wrong: %+v", top)
	}
}

// TestNotificationQueueBounded pins satellite 1: an undrained
// notification backlog stops growing at NotifCap, the overflow is
// counted, and draining reopens the queue for later transitions.
func TestNotificationQueueBounded(t *testing.T) {
	a := New(Config{Detect: testDetect(), NotifCap: 2})
	nodes := []string{"node1", "node2"}
	a.Expect(nodes...)

	// Saturate the queue as an owner that stopped draining would.
	a.notifMu.Lock()
	a.pending = append(a.pending, jmx.Notification{}, jmx.Notification{})
	a.notifMu.Unlock()

	driveCluster(a, nodes, nil, map[string]int64{"node1": 8192}, 20)
	if got := a.DroppedNotifications(); got == 0 {
		t.Fatal("alarm transitions at a full queue were not counted as dropped")
	}
	a.notifMu.Lock()
	n := len(a.pending)
	a.notifMu.Unlock()
	if n != 2 {
		t.Fatalf("pending queue grew past NotifCap: %d", n)
	}

	// Draining reopens the queue: the leak stops, and the clear
	// transition must land.
	a.DrainNotifications()
	feedSnap(a, nodes, nil, 21, 50)
	var cleared bool
	for _, nf := range a.DrainNotifications() {
		if nf.Type == NotifClusterAlarm {
			cleared = true
		}
	}
	if !cleared {
		t.Fatal("no transition landed after the queue was drained")
	}
}

// TestOverloadCountersOnBean pins the operator surface for the new
// counters.
func TestOverloadCountersOnBean(t *testing.T) {
	a := New(Config{Detect: testDetect(), IngestLanes: 1, LaneQueueDepth: 1})
	a.Expect("node1")
	lane := a.laneFor("node1")
	lane.queued.Add(1)
	a.Ingest(syntheticRound("node1", 1, time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC), 0))
	lane.queued.Add(-1)

	b := a.Bean()
	shed, err := b.GetAttribute("ShedRounds")
	if err != nil || shed.(int64) != 1 {
		t.Fatalf("ShedRounds attr = %v, %v", shed, err)
	}
	dropped, err := b.GetAttribute("DroppedNotifications")
	if err != nil || dropped.(int64) != 0 {
		t.Fatalf("DroppedNotifications attr = %v, %v", dropped, err)
	}
}

package cluster

import (
	"encoding/binary"
	"math"
	"testing"
	"time"

	"repro/internal/core"
)

// fuzzReader derives structured values from the fuzzer's byte stream,
// yielding zeros once exhausted so every input maps to a valid (possibly
// trivial) round sequence.
type fuzzReader struct {
	b []byte
	i int
}

func (f *fuzzReader) byte() byte {
	if f.i >= len(f.b) {
		return 0
	}
	v := f.b[f.i]
	f.i++
	return v
}

func (f *fuzzReader) u64() uint64 {
	var v uint64
	for k := 0; k < 8; k++ {
		v = v<<8 | uint64(f.byte())
	}
	return v
}

func (f *fuzzReader) name(prefix string) string {
	n := int(f.byte() % 8)
	out := make([]byte, n)
	for k := range out {
		out[k] = f.byte()
	}
	return prefix + string(out)
}

// roundsFromFuzz builds an arbitrary round sequence from fuzz bytes: up
// to 16 rounds over up to 4 nodes, each with up to 8 samples of arbitrary
// names and values. Sampling instants are arbitrary int64 nanoseconds —
// the codec's documented domain.
func roundsFromFuzz(data []byte) []Round {
	f := &fuzzReader{b: data}
	nRounds := int(f.byte()%16) + 1
	out := make([]Round, 0, nRounds)
	for i := 0; i < nRounds; i++ {
		r := Round{
			Node: f.name("n"),
			Seq:  int64(f.u64()),
			Time: time.Unix(0, int64(f.u64())),
		}
		nSamples := int(f.byte() % 8)
		for j := 0; j < nSamples; j++ {
			r.Samples = append(r.Samples, core.ComponentSample{
				Component:  f.name("c"),
				Size:       int64(f.u64()),
				SizeOK:     f.byte()%2 == 0,
				Usage:      int64(f.u64()),
				CPUSeconds: math.Float64frombits(f.u64()),
				Threads:    int64(f.u64()),
				Delta:      int64(f.u64()),
			})
		}
		out = append(out, r)
	}
	return out
}

// sameRound fails the test unless got reproduces want exactly (field for
// field, float bits included).
func sameRound(t *testing.T, tag string, i int, got, want Round) {
	t.Helper()
	if got.Node != want.Node || got.Seq != want.Seq {
		t.Fatalf("%s round %d: header %q/%d, want %q/%d", tag, i, got.Node, got.Seq, want.Node, want.Seq)
	}
	if got.Time.UnixNano() != want.Time.UnixNano() {
		t.Fatalf("%s round %d: time %d, want %d", tag, i, got.Time.UnixNano(), want.Time.UnixNano())
	}
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("%s round %d: %d samples, want %d", tag, i, len(got.Samples), len(want.Samples))
	}
	for j, ws := range want.Samples {
		gs := got.Samples[j]
		if gs.Component != ws.Component || gs.Size != ws.Size || gs.SizeOK != ws.SizeOK ||
			gs.Usage != ws.Usage || gs.Threads != ws.Threads || gs.Delta != ws.Delta ||
			gs.Handles != ws.Handles ||
			math.Float64bits(gs.LatencySeconds) != math.Float64bits(ws.LatencySeconds) ||
			math.Float64bits(gs.CPUSeconds) != math.Float64bits(ws.CPUSeconds) {
			t.Fatalf("%s round %d sample %d: %+v, want %+v", tag, i, j, gs, ws)
		}
	}
}

// FuzzBinaryCodec drives the binary codec with arbitrary round sequences:
// every encode→decode round trip must reproduce the rounds exactly
// (field for field, CPU bits included), through the stream's full
// interning and delta state — both one frame per round and regrouped
// into v5 BATCH frames of every shape the flush policy can produce.
func FuzzBinaryCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 'a', 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 2})
	// A seed resembling real traffic: same node, advancing seq/time.
	seed := []byte{4}
	for i := 0; i < 4; i++ {
		seed = append(seed, 2, 'n', '1')
		seed = append(seed, 0, 0, 0, 0, 0, 0, 0, byte(i+1)) // seq
		seed = append(seed, 0, 0, 0, 30, 0, 0, 0, byte(i))  // time
		seed = append(seed, 2)                              // two samples
		for j := 0; j < 2; j++ {
			seed = append(seed, 1, byte('a'+j))
			seed = append(seed, 0, 0, 0, 0, 0, 1, 0, byte(i)) // size
			seed = append(seed, 0)                            // SizeOK
			seed = append(seed, 0, 0, 0, 0, 0, 0, 1, byte(i)) // usage
			seed = append(seed, 63, 200, 0, 0, 0, 0, 0, 0)    // cpu bits
			seed = append(seed, 0, 0, 0, 0, 0, 0, 0, 3)       // threads
			seed = append(seed, 0, 0, 0, 0, 0, 0, 0, 0)       // delta
		}
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		rounds := roundsFromFuzz(data)
		enc := NewBinaryEncoder()
		dec := NewBinaryDecoder()
		var stream []byte
		for _, r := range rounds {
			stream = enc.AppendRound(stream, r)
		}
		if len(rounds) > 0 && [4]byte(stream[:4]) != wireMagic {
			t.Fatal("stream does not start with the wire magic")
		}
		rest := stream
		if len(rounds) > 0 {
			rest = rest[4:]
		}
		for i, want := range rounds {
			n, w := binary.Uvarint(rest)
			if w <= 0 || n > uint64(len(rest)-w) {
				t.Fatalf("round %d: bad frame length", i)
			}
			got, err := dec.DecodeFrame(rest[w : w+int(n)])
			if err != nil {
				t.Fatalf("round %d: decode: %v", i, err)
			}
			rest = rest[w+int(n):]
			sameRound(t, "frame", i, got, want)
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing stream bytes", len(rest))
		}

		// The same sequence regrouped into BATCH frames — a fuzz-derived
		// flush size, pairs, and one frame for the whole run — must decode
		// to the identical rounds: batching repackages frames, it never
		// touches the stream-level interning or delta chains.
		kFuzz := 2
		if len(data) > 0 {
			kFuzz = int(data[len(data)/2]%5) + 1
		}
		for _, k := range []int{kFuzz, 3, len(rounds)} {
			benc := NewBinaryEncoder()
			var stream []byte
			for i, r := range rounds {
				benc.BufferRound(r)
				if (i+1)%k == 0 {
					stream = benc.FlushFrame(stream)
				}
			}
			stream = benc.FlushFrame(stream)
			bdec := NewBinaryDecoder()
			brest := stream[4:]
			idx := 0
			for len(brest) > 0 {
				n, w := binary.Uvarint(brest)
				if w <= 0 || n > uint64(len(brest)-w) {
					t.Fatalf("batch k=%d: bad frame length at round %d", k, idx)
				}
				err := bdec.DecodeBatch(brest[w:w+int(n)], func(got Round) error {
					sameRound(t, "batch", idx, got, rounds[idx])
					idx++
					return nil
				})
				if err != nil {
					t.Fatalf("batch k=%d: decode: %v", k, err)
				}
				brest = brest[w+int(n):]
			}
			if idx != len(rounds) {
				t.Fatalf("batch k=%d: decoded %d rounds, want %d", k, idx, len(rounds))
			}
		}
	})
}

// FuzzBinaryDecoderRobustness throws arbitrary bytes at the frame
// decoder: it must reject or accept them without panicking, whatever the
// input (the serving loop turns any error into a dropped connection).
func FuzzBinaryDecoderRobustness(f *testing.F) {
	enc := NewBinaryEncoder()
	frame := enc.AppendRound(nil, Round{Node: "n", Seq: 1, Time: time.Unix(0, 0), Samples: []core.ComponentSample{{Component: "c", Usage: 1}}})
	f.Add(frame[4:]) // a valid single-round payload (sans stream header)
	// A valid multi-round BATCH payload, and corrupt count prefixes (zero
	// rounds; count far past the frame size).
	benc := NewBinaryEncoder()
	for seq := int64(1); seq <= 3; seq++ {
		benc.BufferRound(Round{Node: "n", Seq: seq, Time: time.Unix(0, seq), Samples: []core.ComponentSample{{Component: "c", Usage: seq}}})
	}
	batch := benc.FlushFrame(nil)
	f.Add(batch[4:])
	f.Add(append([]byte{0x00}, frame[4:]...))
	f.Add(append([]byte{0xFF, 0xFF, 0x03}, frame[4:]...))
	f.Add([]byte{0x00, 0x01, 0x61, 0x02, 0x02, 0x00})
	// Valid v5 CONTROL and CONTROL-ACK payloads (sans length prefix): the
	// round decoders must reject the foreign frame types cleanly, and the
	// control decoders must survive round payloads just the same.
	ctl := AppendControlFrame(nil, ControlCommand{Seq: 9, Kind: ControlRejuvenate, Node: "node2", Component: "home"})
	_, cw := binary.Uvarint(ctl)
	f.Add(ctl[cw:])
	ack := AppendControlAckFrame(nil, ControlAck{Seq: 9, Kind: ControlRejuvenate, OK: true, Freed: 4096})
	_, aw := binary.Uvarint(ack)
	f.Add(ack[aw:])
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewBinaryDecoder()
		_, _ = dec.DecodeFrame(data)
		// Feeding a second arbitrary frame exercises carried stream state,
		// and the batch entry point must hold up on the same bytes.
		_, _ = dec.DecodeFrame(data)
		_ = dec.DecodeBatch(data, func(Round) error { return nil })
		// The stateless control decoders share the wire: same robustness bar.
		_, _ = DecodeControlCommand(data)
		_, _ = DecodeControlAck(data)
	})
}

// FuzzControlCodec round-trips arbitrary control commands and acks
// through the v5 CONTROL/CONTROL-ACK frames: whatever the field values,
// encode→decode must reproduce them exactly, and the length prefix must
// cover the payload precisely.
func FuzzControlCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendControlFrame(nil, ControlCommand{Seq: 7, Kind: ControlRejuvenate, Node: "node2", Component: "home"}))
	f.Add(AppendControlAckFrame(nil, ControlAck{Seq: 7, Kind: ControlRejuvenate, OK: true, Freed: 4096}))
	f.Fuzz(func(t *testing.T, data []byte) {
		fz := &fuzzReader{b: data}
		cmd := ControlCommand{
			Seq:       fz.u64(),
			Kind:      ControlKind(fz.byte()%3 + 1),
			Node:      fz.name("n"),
			Component: fz.name("c"),
			Weight:    int64(fz.u64()),
		}
		frame := AppendControlFrame(nil, cmd)
		n, w := binary.Uvarint(frame)
		if w <= 0 || int(n) != len(frame)-w {
			t.Fatalf("command length prefix %d does not cover the %d payload bytes", n, len(frame)-w)
		}
		got, err := DecodeControlCommand(frame[w:])
		if err != nil {
			t.Fatalf("decode command: %v", err)
		}
		if got != cmd {
			t.Fatalf("command round trip: %+v, want %+v", got, cmd)
		}

		ack := ControlAck{
			Seq:   fz.u64(),
			Kind:  ControlKind(fz.byte()%3 + 1),
			OK:    fz.byte()%2 == 0,
			Freed: int64(fz.u64()),
			Err:   fz.name("e"),
		}
		aframe := AppendControlAckFrame(nil, ack)
		an, aw := binary.Uvarint(aframe)
		if aw <= 0 || int(an) != len(aframe)-aw {
			t.Fatalf("ack length prefix %d does not cover the %d payload bytes", an, len(aframe)-aw)
		}
		gotAck, err := DecodeControlAck(aframe[aw:])
		if err != nil {
			t.Fatalf("decode ack: %v", err)
		}
		if gotAck != ack {
			t.Fatalf("ack round trip: %+v, want %+v", gotAck, ack)
		}
	})
}

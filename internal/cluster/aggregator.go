package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/jmx"
	"repro/internal/rootcause"
)

// NotifClusterAlarm is the notification type the aggregator emits when a
// (node, component) pair starts or stops alarming, or when a verdict is
// promoted to cluster-wide.
const NotifClusterAlarm = "aging.cluster.alarm"

// Config tunes an Aggregator. The zero value selects the documented
// defaults.
type Config struct {
	// Detect tunes the per-node detector banks (same semantics as the
	// single-node manager: see core.ResourceDetectorConfigs). Its
	// Shift* fields also tune the cluster-level node-mix guard.
	Detect detect.Config
	// Quorum is the fraction of active nodes that must alarm on the same
	// component before the verdict is cluster-wide rather than
	// node-local (default 0.5: strictly more than half). Cluster-wide
	// promotion needs at least two active nodes.
	Quorum float64
	// StaleEpochs is how many epochs a node may lag behind the most
	// advanced node before it is considered gone and marked inactive
	// (default 3). Epoch completion never stalls on a dead node.
	StaleEpochs int
	// ChurnHold is how many completed epochs cluster verdict promotion
	// stays suppressed after a membership change — a join or leave
	// redistributes traffic, which must not read as aging (default 5).
	ChurnHold int
	// MergedLogCap bounds the retained merged-round log (default 256).
	MergedLogCap int
}

func (c Config) withDefaults() Config {
	if c.Quorum <= 0 || c.Quorum >= 1 {
		c.Quorum = 0.5
	}
	if c.StaleEpochs <= 0 {
		c.StaleEpochs = 3
	}
	if c.ChurnHold <= 0 {
		c.ChurnHold = 5
	}
	if c.MergedLogCap <= 0 {
		c.MergedLogCap = 256
	}
	return c
}

// nodeState is the aggregator's view of one node.
type nodeState struct {
	name   string
	active bool
	seq    int64 // highest node-local round ingested
	// epochBase aligns the node's local sequence with the cluster epoch
	// counter: node round s carries cluster epoch epochBase + s.
	epochBase int64
	// offset normalises the node's local clock onto the aggregator's
	// merged timeline; it is fixed at the node's first round.
	offset     time.Duration
	haveOffset bool
	lastNorm   time.Time

	monitors map[string]*detect.Monitor
	// reportsAtSeq snapshots each round's per-resource reports (indexed
	// in the aggregator's resource order) until the epoch that consumes
	// them completes, so verdict assembly reads every node at the same
	// epoch no matter how transports interleave. The monitors' report
	// retention is sized to cover the longest an epoch can lag
	// (StaleEpochs), so the snapshots stay valid without cloning; the
	// slices themselves recycle through repsFree.
	reportsAtSeq map[int64][]*detect.Report
	repsFree     [][]*detect.Report
	// usageAtSeq records the round's total cumulative usage, the input
	// to the cluster-level node-mix guard.
	usageAtSeq map[int64]float64
	prevUsage  float64 // usage total at the last completed epoch

	// lastSamples is the node's reusable copy of its latest round;
	// obsScratch is the per-round observation projection buffer. Both
	// are owned by a.mu.
	lastSamples []core.ComponentSample
	obsScratch  []detect.Observation
	firstSize   map[string]int64 // per-component size baseline
	// firstAlarmEpoch latches, per resource and component, the cluster
	// epoch at which the node's verdict first alarmed — recorded at fold
	// time, because deriving it from the detector's round counter breaks
	// whenever the epoch base moves (rejoin) or the sequence gaps
	// (publish failures).
	firstAlarmEpoch map[string]map[string]int64
}

func (n *nodeState) epoch() int64 { return n.epochBase + n.seq }

// NodeStatus is one node's externally visible state.
type NodeStatus struct {
	// Node is the node identity.
	Node string
	// Active reports whether the node is currently part of the cluster
	// (publishing rounds and counted in quorums).
	Active bool
	// Rounds is how many rounds the node has contributed.
	Rounds int64
	// Epoch is the cluster epoch of the node's latest round.
	Epoch int64
}

// ClusterVerdict is one alarming component across the cluster.
type ClusterVerdict struct {
	// Resource names the watched resource.
	Resource string
	// Component is the alarming component.
	Component string
	// Nodes lists the alarming nodes, sorted.
	Nodes []string
	// ActiveNodes is the cluster size the quorum was taken over.
	ActiveNodes int
	// ClusterWide is true when more than the quorum fraction of active
	// nodes alarm on the component — uniform aging, not a sick replica.
	ClusterWide bool
	// Score is the highest per-node detector score.
	Score float64
	// FirstEpoch is the earliest cluster epoch at which any node first
	// alarmed on the component.
	FirstEpoch int64
	// ChangePoint is true when any alarming node attributes the alarm to
	// a level shift rather than a trend.
	ChangePoint bool
}

// Pair renders the verdict's (node, component) attribution: the single
// sick node for a node-local verdict, "cluster" when cluster-wide.
func (v ClusterVerdict) Pair() string {
	if v.ClusterWide {
		return "cluster/" + v.Component
	}
	return strings.Join(v.Nodes, "+") + "/" + v.Component
}

// ClusterReport is the aggregator's published state for one resource
// after a completed epoch.
type ClusterReport struct {
	// Resource names the watched resource.
	Resource string
	// Epoch is the completed cluster epoch the report reflects.
	Epoch int64
	// Time is the epoch's instant on the merged (normalised) timeline.
	Time time.Time
	// Active and Total count cluster membership.
	Active, Total int
	// Suppressed is true while cluster verdict promotion is held down by
	// the node-mix guard or a recent membership change.
	Suppressed bool
	// ShiftDistance is the node-mix guard's latest total-variation
	// distance (how much the balancer's traffic split moved).
	ShiftDistance float64
	// ShiftEpochs counts epochs spent suppressed by the node-mix guard.
	ShiftEpochs int64
	// Churning is true while a recent join/leave holds promotion down.
	Churning bool
	// Verdicts lists alarming components, highest score first.
	Verdicts []ClusterVerdict
}

// Alarming reports whether any verdict is present.
func (r *ClusterReport) Alarming() bool { return len(r.Verdicts) > 0 }

// Top returns the highest-scoring verdict.
func (r *ClusterReport) Top() (ClusterVerdict, bool) {
	if len(r.Verdicts) == 0 {
		return ClusterVerdict{}, false
	}
	return r.Verdicts[0], true
}

// String renders the report.
func (r *ClusterReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster[%s] epoch=%d nodes=%d/%d suppressed=%v shift=%.3f\n",
		r.Resource, r.Epoch, r.Active, r.Total, r.Suppressed, r.ShiftDistance)
	for i, v := range r.Verdicts {
		scope := "node-local"
		if v.ClusterWide {
			scope = "cluster-wide"
		}
		cp := ""
		if v.ChangePoint {
			cp = " level-shift"
		}
		fmt.Fprintf(&b, "%2d. %-34s %-12s score=%10.4g since-epoch=%d%s\n",
			i+1, v.Pair(), scope, v.Score, v.FirstEpoch, cp)
	}
	return b.String()
}

// Aggregator merges sampling rounds from N node collectors into per-node
// and cluster-level aging verdicts. See the package comment for the
// concurrency contract; everything below one mutex, nothing on any hot
// path.
type Aggregator struct {
	cfg       Config
	resources []string
	configs   map[string]detect.Config

	mu    sync.Mutex
	nodes map[string]*nodeState
	order []string

	base       time.Time // merged-timeline origin (first round's instant)
	haveBase   bool
	lastMerged time.Time
	mergedLog  []Round
	total      int64

	epoch     int64
	guard     *detect.ShiftGuard
	churnLeft int
	shiftEp   int64

	reports map[string]*ClusterReport

	// reportRing recycles the published per-resource ClusterReports the
	// way detect.Monitor recycles its Reports: foldEpoch rotates each
	// resource's reports through a fixed ring instead of allocating one
	// per epoch, which keeps the fold allocation-free no matter how many
	// detector streams the bank carries. A *ClusterReport from Report
	// stays valid for retention-1 further epochs; a consumer keeping one
	// longer must copy it. Owned by a.mu.
	reportRing map[string][]*ClusterReport
	ringIdx    map[string]int
	retention  int

	// samplePool recycles the owned per-round sample copies that cycle
	// through the merged log: Ingest borrows a buffer for the round's
	// copy, the log eviction reclaims it. Owned by a.mu.
	samplePool [][]core.ComponentSample

	// alarm bookkeeping for notification transitions: resource ->
	// component -> latched scope. Latched by component, not by the
	// alarming node set — the set of flagged nodes may churn while the
	// component keeps aging, and that must not read as clear/raise.
	alarmed map[string]map[string]*latchedAlarm
	pending []jmx.Notification
}

// borrowSamples takes a pooled sample buffer of length n (caller holds
// a.mu).
func (a *Aggregator) borrowSamples(n int) []core.ComponentSample {
	if k := len(a.samplePool); k > 0 {
		buf := a.samplePool[k-1]
		a.samplePool = a.samplePool[:k-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]core.ComponentSample, n)
}

// reclaimSamples returns a sample buffer to the pool (caller holds a.mu).
func (a *Aggregator) reclaimSamples(buf []core.ComponentSample) {
	if cap(buf) > 0 {
		a.samplePool = append(a.samplePool, buf[:0])
	}
}

// latchedAlarm is the notification latch for one alarming component.
type latchedAlarm struct {
	clusterWide bool
}

// New creates an aggregator.
func New(cfg Config) *Aggregator {
	cfg = cfg.withDefaults()
	d := cfg.Detect
	// Cluster reports recycle on the same retention terms as the node
	// monitors' rings (see newNodeState).
	retention := d.ReportRetention
	if retention <= 0 {
		retention = detect.DefaultReportRetention
	}
	if min := cfg.StaleEpochs + 3; retention < min {
		retention = min
	}
	return &Aggregator{
		cfg:        cfg,
		resources:  append([]string(nil), core.DetectorResources...),
		configs:    core.ResourceDetectorConfigs(d),
		nodes:      make(map[string]*nodeState),
		guard:      detect.NewShiftGuardMargin(d.ShiftThreshold, d.ShiftHold, d.ShiftEWMA, d.ShiftNoiseMargin),
		reports:    make(map[string]*ClusterReport),
		reportRing: make(map[string][]*ClusterReport),
		ringIdx:    make(map[string]int),
		retention:  retention,
		alarmed:    make(map[string]map[string]*latchedAlarm),
	}
}

// nextReport rotates a resource's report ring and returns the next slot
// reset for the coming epoch (the Verdicts buffer is kept). Caller holds
// a.mu.
func (a *Aggregator) nextReport(res string) *ClusterReport {
	ring := a.reportRing[res]
	if ring == nil {
		ring = make([]*ClusterReport, a.retention)
		for i := range ring {
			ring[i] = &ClusterReport{}
		}
		a.reportRing[res] = ring
	}
	i := a.ringIdx[res]
	a.ringIdx[res] = (i + 1) % len(ring)
	rep := ring[i]
	*rep = ClusterReport{Resource: res, Verdicts: rep.Verdicts[:0]}
	return rep
}

// newNodeState creates the aggregator's state for one node. Caller holds
// a.mu.
func (a *Aggregator) newNodeState(name string) *nodeState {
	st := &nodeState{
		name:            name,
		monitors:        make(map[string]*detect.Monitor, len(a.resources)),
		reportsAtSeq:    make(map[int64][]*detect.Report),
		usageAtSeq:      make(map[int64]float64),
		firstSize:       make(map[string]int64),
		firstAlarmEpoch: make(map[string]map[string]int64),
	}
	for _, res := range a.resources {
		cfg := a.configs[res]
		// The epoch fold reads reports snapshotted up to StaleEpochs
		// rounds ago; size the monitors' recycled report rings so those
		// snapshots are still within their retention window at fold time.
		if cfg.ReportRetention <= 0 {
			cfg.ReportRetention = detect.DefaultReportRetention
		}
		if min := a.cfg.StaleEpochs + 3; cfg.ReportRetention < min {
			cfg.ReportRetention = min
		}
		st.monitors[res] = detect.NewMonitor(res, cfg)
	}
	a.nodes[name] = st
	a.order = append(a.order, name)
	sort.Strings(a.order)
	return st
}

// Expect pre-registers the cluster's initial membership as active nodes.
// Without it a node joins on its first round and is aligned to whatever
// epoch the cluster has already reached — correct, but dependent on
// arrival order, so two transports could align the same nodes one epoch
// apart. Pre-registering pins every expected node to epoch base zero,
// making epoch alignment (and therefore every cluster verdict) a pure
// function of the rounds, not of transport timing. Call it before the
// first round arrives; expecting an already-known node is a no-op.
func (a *Aggregator) Expect(nodes ...string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, name := range nodes {
		if name == "" || a.nodes[name] != nil {
			continue
		}
		st := a.newNodeState(name)
		st.active = true
	}
}

// Ingest absorbs one node round: it normalises the node's clock onto the
// merged timeline, feeds the node's detector bank, and completes any
// cluster epochs the round finishes. Safe for concurrent use; per-node
// rounds must arrive in order (stale sequence numbers are dropped).
func (a *Aggregator) Ingest(r Round) {
	if r.Node == "" || r.Seq <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	st := a.nodes[r.Node]
	if st == nil {
		st = a.newNodeState(r.Node)
	}
	if r.Seq <= st.seq {
		// Duplicate or reordered round; per-node order is the contract.
		// Checked before the rejoin branch so a stale frame can never
		// undo a Leave.
		return
	}
	if !st.active {
		// Join (or rejoin): align the node's sequence with the current
		// epoch and hold cluster promotion down while traffic resettles.
		st.active = true
		st.epochBase = a.epoch - st.seq
		a.churnLeft = a.cfg.ChurnHold
	}
	st.seq = r.Seq

	// Clock normalisation: the node's first round pins its offset to the
	// merged timeline (the cluster "present" for late joiners), after
	// which its own monotone clock carries it. A defensive clamp keeps
	// both the per-node and the merged sequences ordered even if a node
	// clock misbehaves.
	if !a.haveBase {
		a.base = r.Time
		a.lastMerged = r.Time
		a.haveBase = true
	}
	if !st.haveOffset {
		st.offset = r.Time.Sub(a.lastMerged)
		st.haveOffset = true
		st.lastNorm = a.lastMerged
	}
	norm := r.Time.Add(-st.offset)
	if !norm.After(st.lastNorm) {
		norm = st.lastNorm.Add(time.Millisecond)
	}
	st.lastNorm = norm
	merged := norm
	if merged.Before(a.lastMerged) {
		merged = a.lastMerged
	}
	a.lastMerged = merged

	// Feed the node's detectors and snapshot the reports for the epoch
	// that will consume this round. The report-slice snapshots and the
	// observation projection recycle through node/aggregator-owned
	// buffers; the monitors themselves are allocation-free per round.
	var reps []*detect.Report
	if k := len(st.repsFree); k > 0 {
		reps = st.repsFree[k-1][:0]
		st.repsFree = st.repsFree[:k-1]
	} else {
		reps = make([]*detect.Report, 0, len(a.resources))
	}
	for _, res := range a.resources {
		st.obsScratch = core.AppendObservations(st.obsScratch[:0], res, r.Samples)
		reps = append(reps, st.monitors[res].Observe(norm, st.obsScratch))
	}
	st.reportsAtSeq[r.Seq] = reps

	var usageTotal float64
	for _, s := range r.Samples {
		usageTotal += float64(s.Usage)
		if s.SizeOK {
			if _, ok := st.firstSize[s.Component]; !ok {
				st.firstSize[s.Component] = s.Size
			}
		}
	}
	st.usageAtSeq[r.Seq] = usageTotal

	// The round's samples are borrowed (a collector round buffer or a
	// wire decoder's reuse buffer): copy once into a pooled buffer for
	// the merged log, and once into the node's reusable last-round
	// snapshot. The pooled copy is reclaimed when the log evicts it.
	st.lastSamples = append(st.lastSamples[:0], r.Samples...)
	logged := r
	logged.Time = merged
	logged.Samples = a.borrowSamples(len(r.Samples))
	copy(logged.Samples, r.Samples)
	a.mergedLog = append(a.mergedLog, logged)
	if n := len(a.mergedLog) - a.cfg.MergedLogCap; n > 0 {
		for _, old := range a.mergedLog[:n] {
			a.reclaimSamples(old.Samples)
		}
		a.mergedLog = a.mergedLog[n:]
	}
	a.total++

	a.completeEpochs()
}

// completeEpochs folds finished epochs, under a.mu. Epoch k is complete
// when every active node has delivered its round for k; nodes lagging
// more than StaleEpochs behind the most advanced node are marked inactive
// so a dead node never stalls the cluster.
func (a *Aggregator) completeEpochs() {
	for {
		next := a.epoch + 1
		var maxEpoch int64
		ready := true
		for _, name := range a.order {
			st := a.nodes[name]
			if !st.active {
				continue
			}
			if e := st.epoch(); e > maxEpoch {
				maxEpoch = e
			}
			if st.epoch() < next {
				ready = false
			}
		}
		if !ready && maxEpoch-next >= int64(a.cfg.StaleEpochs) {
			// Evict laggards and re-check: the cluster has moved on.
			for _, name := range a.order {
				st := a.nodes[name]
				if st.active && st.epoch() < next {
					a.deactivate(st)
				}
			}
			continue
		}
		if !ready || maxEpoch == 0 {
			return
		}
		a.foldEpoch(next)
	}
}

// deactivate marks a node inactive (leave or staleness eviction) and
// starts the churn hold-down. Caller holds a.mu.
func (a *Aggregator) deactivate(st *nodeState) {
	if !st.active {
		return
	}
	st.active = false
	a.churnLeft = a.cfg.ChurnHold
}

// foldEpoch completes cluster epoch k: feeds the node-mix guard with the
// per-node usage deltas, advances the churn hold, and publishes fresh
// cluster reports. Caller holds a.mu.
func (a *Aggregator) foldEpoch(k int64) {
	a.epoch = k

	deltas := make(map[string]float64)
	for _, name := range a.order {
		st := a.nodes[name]
		if !st.active {
			continue
		}
		seq := k - st.epochBase
		usage, ok := st.usageAtSeq[seq]
		if !ok {
			continue
		}
		deltas[name] = usage - st.prevUsage
		st.prevUsage = usage
		delete(st.usageAtSeq, seq)
	}
	guardSuppressed := a.guard.Observe(deltas)
	churning := a.churnLeft > 0
	if churning {
		a.churnLeft--
	}
	suppressed := guardSuppressed || churning
	if guardSuppressed {
		a.shiftEp++
	}

	active, total := 0, len(a.order)
	for _, name := range a.order {
		if a.nodes[name].active {
			active++
		}
	}

	for ri, res := range a.resources {
		rep := a.nextReport(res)
		rep.Epoch = k
		rep.Time = a.lastMerged
		rep.Active = active
		rep.Total = total
		rep.Suppressed = suppressed
		rep.ShiftDistance = a.guard.Distance()
		rep.ShiftEpochs = a.shiftEp
		rep.Churning = churning
		type agg struct {
			nodes       []string
			score       float64
			firstEpoch  int64
			changePoint bool
		}
		byComponent := make(map[string]*agg)
		var compOrder []string
		for _, name := range a.order {
			st := a.nodes[name]
			if !st.active {
				continue
			}
			seq := k - st.epochBase
			reps := st.reportsAtSeq[seq]
			if ri >= len(reps) {
				continue
			}
			nodeRep := reps[ri]
			if nodeRep == nil {
				continue
			}
			for _, v := range nodeRep.Components {
				if !v.Alarm {
					continue
				}
				c := byComponent[v.Component]
				if c == nil {
					c = &agg{}
					byComponent[v.Component] = c
					compOrder = append(compOrder, v.Component)
				}
				c.nodes = append(c.nodes, name)
				if v.Score > c.score {
					c.score = v.Score
				}
				firstByComp := st.firstAlarmEpoch[res]
				if firstByComp == nil {
					firstByComp = make(map[string]int64)
					st.firstAlarmEpoch[res] = firstByComp
				}
				first, seen := firstByComp[v.Component]
				if !seen {
					first = k
					firstByComp[v.Component] = k
				}
				if c.firstEpoch == 0 || first < c.firstEpoch {
					c.firstEpoch = first
				}
				c.changePoint = c.changePoint || v.ChangePoint
			}
		}
		for _, comp := range compOrder {
			c := byComponent[comp]
			v := ClusterVerdict{
				Resource:    res,
				Component:   comp,
				Nodes:       c.nodes,
				ActiveNodes: active,
				Score:       c.score,
				FirstEpoch:  c.firstEpoch,
				ChangePoint: c.changePoint,
			}
			if !suppressed && active >= 2 &&
				float64(len(c.nodes)) > a.cfg.Quorum*float64(active) {
				v.ClusterWide = true
			}
			rep.Verdicts = append(rep.Verdicts, v)
		}
		sort.SliceStable(rep.Verdicts, func(i, j int) bool {
			if rep.Verdicts[i].Score != rep.Verdicts[j].Score {
				return rep.Verdicts[i].Score > rep.Verdicts[j].Score
			}
			return rep.Verdicts[i].Component < rep.Verdicts[j].Component
		})
		a.reports[res] = rep
		a.queueTransitions(rep, suppressed)
	}

	// Release the per-seq snapshots this epoch consumed (≤ guards against
	// stale keys surviving an epoch-base change across a rejoin). The
	// report slices go back on the node's freelist.
	for _, name := range a.order {
		st := a.nodes[name]
		seq := k - st.epochBase
		for s, reps := range st.reportsAtSeq {
			if s <= seq {
				st.repsFree = append(st.repsFree, reps[:0])
				delete(st.reportsAtSeq, s)
			}
		}
		for s := range st.usageAtSeq {
			if s <= seq {
				delete(st.usageAtSeq, s)
			}
		}
	}
}

// queueTransitions diffs a fresh report against the latched alarm set and
// queues one notification per transition: a raise when a component first
// alarms, a promotion when its verdict turns cluster-wide, a clear when
// no node flags it any more. The alarming-node set may otherwise churn
// without spamming the stream. New alarms and promotions are not
// announced while suppressed (churn or node-mix shift); clears always
// are. Caller holds a.mu.
func (a *Aggregator) queueTransitions(rep *ClusterReport, suppressed bool) {
	was := a.alarmed[rep.Resource]
	if was == nil {
		was = make(map[string]*latchedAlarm)
		a.alarmed[rep.Resource] = was
	}
	seen := make(map[string]bool)
	for _, v := range rep.Verdicts {
		seen[v.Component] = true
		latch := was[v.Component]
		if latch == nil {
			if suppressed {
				continue
			}
			was[v.Component] = &latchedAlarm{clusterWide: v.ClusterWide}
			scope := "node-local"
			if v.ClusterWide {
				scope = "cluster-wide"
			}
			a.pending = append(a.pending, jmx.Notification{
				Type:   NotifClusterAlarm,
				Source: AggregatorName(),
				Message: fmt.Sprintf("%s aging: %s on %s (%d/%d nodes, score %.4g, epoch %d)",
					scope, v.Component, strings.Join(v.Nodes, "+"), len(v.Nodes), v.ActiveNodes, v.Score, rep.Epoch),
				Data: v,
			})
			continue
		}
		if v.ClusterWide && !latch.clusterWide && !suppressed {
			latch.clusterWide = true
			a.pending = append(a.pending, jmx.Notification{
				Type:   NotifClusterAlarm,
				Source: AggregatorName(),
				Message: fmt.Sprintf("aging on %s promoted to cluster-wide (%s on %d/%d nodes, epoch %d)",
					v.Component, rep.Resource, len(v.Nodes), v.ActiveNodes, rep.Epoch),
				Data: v,
			})
		}
	}
	cleared := make([]string, 0)
	for comp := range was {
		if !seen[comp] {
			cleared = append(cleared, comp)
		}
	}
	sort.Strings(cleared)
	for _, comp := range cleared {
		delete(was, comp)
		a.pending = append(a.pending, jmx.Notification{
			Type:    NotifClusterAlarm,
			Source:  AggregatorName(),
			Message: fmt.Sprintf("cluster alarm cleared: %s (%s, epoch %d)", comp, rep.Resource, rep.Epoch),
		})
	}
}

// DrainNotifications returns and clears the queued cluster alarm
// transitions; the owner (a cluster stack's notification pump, a serving
// binary) emits them on its MBeanServer.
func (a *Aggregator) DrainNotifications() []jmx.Notification {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.pending
	a.pending = nil
	return out
}

// Leave marks a node as having left the cluster: it stops counting
// toward quorums and epoch completion, and the churn hold keeps cluster
// promotion quiet while the balancer redistributes its traffic. A node
// that publishes again after Leave rejoins automatically.
func (a *Aggregator) Leave(node string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st := a.nodes[node]; st != nil {
		a.deactivate(st)
		a.completeEpochs()
	}
}

// Epoch returns the latest completed cluster epoch.
func (a *Aggregator) Epoch() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// TotalRounds returns how many rounds have been ingested.
func (a *Aggregator) TotalRounds() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Nodes returns the cluster membership, sorted by name.
func (a *Aggregator) Nodes() []NodeStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]NodeStatus, 0, len(a.order))
	for _, name := range a.order {
		st := a.nodes[name]
		out = append(out, NodeStatus{
			Node:   name,
			Active: st.active,
			Rounds: st.seq,
			Epoch:  st.epoch(),
		})
	}
	return out
}

// Report returns the latest cluster report for a resource (nil before the
// first completed epoch). Reports publish from a recycled ring sized like
// the node monitors' (Config.Detect.ReportRetention, floored at
// StaleEpochs+3): the returned pointer stays valid for retention-1
// further epochs, and a consumer that keeps one longer must copy it.
func (a *Aggregator) Report(resource string) *ClusterReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reports[resource]
}

// NodeReport returns a node's latest per-node detection report for a
// resource (nil for unknown nodes or before the node's first round).
// Unlike cluster verdicts it reflects every round ingested so far, not
// just completed epochs.
func (a *Aggregator) NodeReport(node, resource string) *detect.Report {
	a.mu.Lock()
	st := a.nodes[node]
	a.mu.Unlock()
	if st == nil {
		return nil
	}
	if mon, ok := st.monitors[resource]; ok {
		return mon.Latest()
	}
	return nil
}

// MergedRounds returns a copy of the retained merged-round log, whose
// times are normalised onto the aggregator's timeline and are guaranteed
// non-decreasing regardless of node clock skew. The samples are deep
// copies: the log's own buffers recycle as the log rolls, and a caller's
// snapshot must not roll with them.
func (a *Aggregator) MergedRounds() []Round {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := append([]Round(nil), a.mergedLog...)
	for i := range out {
		out[i].Samples = append([]core.ComponentSample(nil), out[i].Samples...)
	}
	return out
}

// Verdicts adapts the latest per-node reports to the live root-cause
// strategy's verdict type: one entry per (node, component) pair.
func (a *Aggregator) Verdicts(resource string) []rootcause.LiveVerdict {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []rootcause.LiveVerdict
	for _, name := range a.order {
		st := a.nodes[name]
		if !st.active {
			continue
		}
		mon, ok := st.monitors[resource]
		if !ok {
			continue
		}
		rep := mon.Latest()
		if rep == nil {
			continue
		}
		for _, v := range rep.Components {
			out = append(out, rootcause.LiveVerdict{
				Component: v.Component,
				Node:      name,
				Alarm:     v.Alarm,
				Score:     v.Score,
			})
		}
	}
	return out
}

// LiveRank ranks (node, component) pairs with the live strategy: detector
// verdicts give scores and alarms, the latest round's measurements give
// the map coordinates — so the Live strategy can say "component X on
// node 2".
func (a *Aggregator) LiveRank(resource string) rootcause.Ranking {
	a.mu.Lock()
	var data []rootcause.ComponentData
	for _, name := range a.order {
		st := a.nodes[name]
		if !st.active {
			continue
		}
		for _, s := range st.lastSamples {
			d := rootcause.ComponentData{Name: s.Component, Node: name, Usage: s.Usage}
			switch resource {
			case core.ResourceMemory:
				if s.SizeOK {
					if c := float64(s.Size - st.firstSize[s.Component]); c > 0 {
						d.Consumption = c
					}
				}
			case core.ResourceCPU:
				d.Consumption = s.CPUSeconds
			case core.ResourceThreads:
				d.Consumption = float64(s.Threads)
			case core.ResourceLatency:
				d.Consumption = s.LatencySeconds
			case core.ResourceHandles:
				d.Consumption = float64(s.Handles)
			}
			data = append(data, d)
		}
	}
	a.mu.Unlock()
	return rootcause.Live{Source: a.Verdicts}.Rank(resource, data)
}

package cluster

import (
	"fmt"
	"hash/maphash"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/jmx"
	"repro/internal/rootcause"
)

// NotifClusterAlarm is the notification type the aggregator emits when a
// (node, component) pair starts or stops alarming, or when a verdict is
// promoted to cluster-wide.
const NotifClusterAlarm = "aging.cluster.alarm"

// Config tunes an Aggregator. The zero value selects the documented
// defaults.
type Config struct {
	// Detect tunes the per-node detector banks (same semantics as the
	// single-node manager: see core.ResourceDetectorConfigs). Its
	// Shift* fields also tune the cluster-level node-mix guard.
	Detect detect.Config
	// Quorum is the fraction of active nodes that must alarm on the same
	// component before the verdict is cluster-wide rather than
	// node-local (default 0.5: strictly more than half). Cluster-wide
	// promotion needs at least two active nodes.
	Quorum float64
	// StaleEpochs is how many epochs a node may lag behind the most
	// advanced node before it is considered gone and marked inactive
	// (default 3). Epoch completion never stalls on a dead node.
	StaleEpochs int
	// ChurnHold is how many completed epochs cluster verdict promotion
	// stays suppressed after a membership change — a join or leave
	// redistributes traffic, which must not read as aging (default 5).
	ChurnHold int
	// MergedLogCap bounds the retained merged-round log (default 256).
	MergedLogCap int
	// IngestLanes is how many hash-striped ingest lanes node state is
	// spread over (default 32). Concurrent publishers contend only when
	// their nodes share a lane; 1 degenerates to a single ingest lock,
	// the serial reference configuration for parity tests. Verdicts do
	// not depend on the lane count.
	IngestLanes int
	// FoldWorkers bounds the worker pool the epoch fold spreads its
	// per-resource verdict assembly over (default GOMAXPROCS, capped at
	// the resource count). 1 folds inline on the completing publisher's
	// goroutine. Verdicts do not depend on the worker count.
	FoldWorkers int
	// LaneQueueDepth bounds how many publishers may occupy one ingest
	// lane at once — admitted and executing, or parked on the lane lock
	// (default 1024). A round arriving at a full lane is shed and
	// counted (ShedRounds) instead of parking another goroutine: under
	// a round storm the monitoring plane's memory stays bounded, and a
	// shed round looks to the rest of the plane exactly like a lost
	// frame — the node's sequence gaps and the epoch folds without it.
	LaneQueueDepth int
	// NotifCap bounds the pending cluster-alarm notification queue
	// (the DrainNotifications backlog, default 4096). When the owner
	// stops draining, transitions beyond the cap are dropped newest
	// and counted (DroppedNotifications) — the queue must never become
	// the unbounded buffer that takes the monitor down with its
	// consumer.
	NotifCap int
}

func (c Config) withDefaults() Config {
	if c.Quorum <= 0 || c.Quorum >= 1 {
		c.Quorum = 0.5
	}
	if c.StaleEpochs <= 0 {
		c.StaleEpochs = 3
	}
	if c.ChurnHold <= 0 {
		c.ChurnHold = 5
	}
	if c.MergedLogCap <= 0 {
		c.MergedLogCap = 256
	}
	if c.IngestLanes <= 0 {
		c.IngestLanes = 32
	}
	if c.FoldWorkers <= 0 {
		c.FoldWorkers = runtime.GOMAXPROCS(0)
	}
	if n := len(core.DetectorResources); c.FoldWorkers > n {
		c.FoldWorkers = n
	}
	if c.LaneQueueDepth <= 0 {
		c.LaneQueueDepth = 1024
	}
	if c.NotifCap <= 0 {
		c.NotifCap = 4096
	}
	return c
}

// ingestLane is one stripe of the sharded ingest plane: the node states
// whose names hash onto it, behind the lane lock their rounds are folded
// in under. Publishes for nodes on different lanes never contend.
type ingestLane struct {
	mu    sync.Mutex
	nodes map[string]*nodeState
	// queued is the lane's admission counter: publishers currently
	// admitted (executing or parked on mu). Ingest increments it before
	// taking the lock and sheds the round when it would exceed
	// Config.LaneQueueDepth, bounding how many goroutines a storm can
	// pile onto one lane.
	queued atomic.Int64
}

// nodeState is the aggregator's view of one node.
//
// Ownership: fields in the first block are written only during the
// node's own Ingest under the owning lane's lock (the fold stage takes
// the lane lock too when it reads or releases per-seq snapshots); fields
// in the second block are written only under the aggregator's fold lock;
// the atomics publish the node's externally visible counters to lock-free
// readers.
type nodeState struct {
	name string
	lane *ingestLane

	// Lane-owned (written by the node's Ingest under lane.mu).
	seq int64 // highest node-local round ingested
	// offset normalises the node's local clock onto the aggregator's
	// merged timeline; it is fixed at the node's first round.
	offset     time.Duration
	haveOffset bool
	lastNorm   time.Time

	monitors map[string]*detect.Monitor
	// reportsAtSeq snapshots each round's per-resource reports (indexed
	// in the aggregator's resource order) until the epoch that consumes
	// them completes, so verdict assembly reads every node at the same
	// epoch no matter how transports interleave. The monitors' report
	// retention is sized to cover the longest an epoch can lag
	// (StaleEpochs), so the snapshots stay valid without cloning; the
	// slices themselves recycle through repsFree.
	reportsAtSeq map[int64][]*detect.Report
	repsFree     [][]*detect.Report
	// usageAtSeq records the round's total cumulative usage, the input
	// to the cluster-level node-mix guard.
	usageAtSeq map[int64]float64

	// lastSamples is the node's reusable copy of its latest round;
	// obsScratch is the per-round observation projection buffer.
	lastSamples []core.ComponentSample
	obsScratch  []detect.Observation
	firstSize   map[string]int64 // per-component size baseline

	// Fold-owned (written only under the aggregator's foldMu).
	//
	// epochBase aligns the node's local sequence with the cluster epoch
	// counter: node round s carries cluster epoch epochBase + s. It is
	// written under foldMu AND the lane lock (join/rejoin happen on the
	// slow ingest path, which holds both), so either lock alone makes it
	// safe to read.
	epochBase int64
	prevUsage float64 // usage total at the last completed epoch
	// firstAlarm latches, per resource (aggregator resource order) and
	// component, the cluster epoch at which the node's verdict first
	// alarmed — recorded at fold time, because deriving it from the
	// detector's round counter breaks whenever the epoch base moves
	// (rejoin) or the sequence gaps (publish failures). Indexed by
	// resource so parallel fold workers touch disjoint maps.
	firstAlarm []map[string]int64

	// Lock-free views for read paths and the epoch watermark check.
	// active flips only under foldMu (join/rejoin on the slow ingest
	// path, Leave, staleness eviction); seqA/epochA publish at the end
	// of each ingested round, after the round's snapshots are recorded.
	active atomic.Bool
	seqA   atomic.Int64
	epochA atomic.Int64
}

// NodeStatus is one node's externally visible state.
type NodeStatus struct {
	// Node is the node identity.
	Node string
	// Active reports whether the node is currently part of the cluster
	// (publishing rounds and counted in quorums).
	Active bool
	// Rounds is how many rounds the node has contributed.
	Rounds int64
	// Epoch is the cluster epoch of the node's latest round.
	Epoch int64
}

// ClusterVerdict is one alarming component across the cluster.
type ClusterVerdict struct {
	// Resource names the watched resource.
	Resource string
	// Component is the alarming component.
	Component string
	// Nodes lists the alarming nodes, sorted.
	Nodes []string
	// ActiveNodes is the cluster size the quorum was taken over.
	ActiveNodes int
	// ClusterWide is true when more than the quorum fraction of active
	// nodes alarm on the component — uniform aging, not a sick replica.
	ClusterWide bool
	// Score is the highest per-node detector score.
	Score float64
	// FirstEpoch is the earliest cluster epoch at which any node first
	// alarmed on the component.
	FirstEpoch int64
	// ChangePoint is true when any alarming node attributes the alarm to
	// a level shift rather than a trend.
	ChangePoint bool
}

// Pair renders the verdict's (node, component) attribution: the single
// sick node for a node-local verdict, "cluster" when cluster-wide.
func (v ClusterVerdict) Pair() string {
	if v.ClusterWide {
		return "cluster/" + v.Component
	}
	return strings.Join(v.Nodes, "+") + "/" + v.Component
}

// ClusterReport is the aggregator's published state for one resource
// after a completed epoch.
type ClusterReport struct {
	// Resource names the watched resource.
	Resource string
	// Epoch is the completed cluster epoch the report reflects.
	Epoch int64
	// Time is the epoch's instant on the merged (normalised) timeline.
	Time time.Time
	// Active and Total count cluster membership.
	Active, Total int
	// Suppressed is true while cluster verdict promotion is held down by
	// the node-mix guard or a recent membership change.
	Suppressed bool
	// ShiftDistance is the node-mix guard's latest total-variation
	// distance (how much the balancer's traffic split moved).
	ShiftDistance float64
	// ShiftEpochs counts epochs spent suppressed by the node-mix guard.
	ShiftEpochs int64
	// Churning is true while a recent join/leave holds promotion down.
	Churning bool
	// Verdicts lists alarming components, highest score first.
	Verdicts []ClusterVerdict
}

// Alarming reports whether any verdict is present.
func (r *ClusterReport) Alarming() bool { return len(r.Verdicts) > 0 }

// Top returns the highest-scoring verdict.
func (r *ClusterReport) Top() (ClusterVerdict, bool) {
	if len(r.Verdicts) == 0 {
		return ClusterVerdict{}, false
	}
	return r.Verdicts[0], true
}

// String renders the report.
func (r *ClusterReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster[%s] epoch=%d nodes=%d/%d suppressed=%v shift=%.3f\n",
		r.Resource, r.Epoch, r.Active, r.Total, r.Suppressed, r.ShiftDistance)
	for i, v := range r.Verdicts {
		scope := "node-local"
		if v.ClusterWide {
			scope = "cluster-wide"
		}
		cp := ""
		if v.ChangePoint {
			cp = " level-shift"
		}
		fmt.Fprintf(&b, "%2d. %-34s %-12s score=%10.4g since-epoch=%d%s\n",
			i+1, v.Pair(), scope, v.Score, v.FirstEpoch, cp)
	}
	return b.String()
}

// Aggregator merges sampling rounds from N node collectors into per-node
// and cluster-level aging verdicts. See the package comment for the
// concurrency contract.
//
// Lock hierarchy (acquire strictly downward, release before acquiring a
// peer):
//
//	epochDeliverMu > foldMu (epoch events deliver after the fold lock is
//	                         released, so a subscriber may re-enter the
//	                         aggregator — ResetNode, SendControl)
//	foldMu > lane.mu > tlMu
//	foldMu > regMu(W)
//	regMu(R) > lane.mu (read paths only; nothing holding a lane lock
//	                    ever waits on regMu)
//	ctlMu and epochSubMu are leaves: nothing is acquired under them
//
// The steady-state ingest path touches only its node's lane lock and the
// short tlMu merged-timeline section; foldMu is taken only by the round
// that completes an epoch (the watermark gate), by joins/leaves, and by
// staleness eviction.
type Aggregator struct {
	cfg       Config
	resources []string
	configs   map[string]detect.Config

	lanes    []ingestLane
	laneSeed maphash.Seed

	// regMu guards the read-side membership registry (sorted order and
	// name lookup). Written only at node creation (under foldMu).
	regMu  sync.RWMutex
	byName map[string]*nodeState
	order  []string

	// foldMu serialises epoch-watermark advancement: completing epochs,
	// folding them into cluster reports, and every membership
	// transition (join, rejoin, leave, eviction). all is the fold's
	// sorted mirror of the registry — foldMu-owned, so the fold loop
	// iterates it without touching regMu.
	foldMu      sync.Mutex
	all         []*nodeState
	epochFolded int64
	guard       *detect.ShiftGuard
	churnLeft   int
	shiftEp     int64
	foldNodes   []foldNode // per-epoch scratch: active nodes' snapshots
	foldDeltas  map[string]float64
	foldScratch []resourceFold // per-resource reusable verdict-assembly state

	// Lock-free counters for the read paths and the watermark gate.
	epoch atomic.Int64 // latest folded epoch (mirrors epochFolded)
	total atomic.Int64 // rounds ingested

	// Overload-protection counters: rounds shed at a full ingest lane
	// and notifications dropped at a full pending queue. Transient
	// operational stats, deliberately outside the snapshot format — a
	// restored plane starts its overload history fresh.
	shed         atomic.Int64
	notifDropped atomic.Int64

	// Verdict-publication latency: wall nanoseconds from an epoch's
	// completion to its reports being published (one foldEpoch call).
	// Written only under foldMu; read lock-free by FoldLatency.
	foldLastNanos atomic.Int64
	foldMaxNanos  atomic.Int64

	// tlMu guards the merged timeline: the normalisation base, the
	// high-water merged instant, and the bounded merged-round log with
	// its recycled sample buffers.
	tlMu       sync.Mutex
	base       time.Time // merged-timeline origin (first round's instant)
	haveBase   bool
	lastMerged time.Time
	mergedLog  []Round
	samplePool [][]core.ComponentSample

	// repMu guards the published per-resource report map. The rings the
	// reports recycle through are foldMu-owned.
	repMu   sync.RWMutex
	reports map[string]*ClusterReport

	// reportRing recycles the published per-resource ClusterReports the
	// way detect.Monitor recycles its Reports: foldEpoch rotates each
	// resource's reports through a fixed ring instead of allocating one
	// per epoch. A *ClusterReport from Report stays valid for
	// retention-1 further epochs; a consumer keeping one longer must
	// copy it. Indexed by resource index so parallel fold workers touch
	// disjoint slots. Owned by foldMu.
	reportRing [][]*ClusterReport
	ringIdx    []int
	retention  int

	// alarm bookkeeping for notification transitions: resource ->
	// component -> latched scope. Latched by component, not by the
	// alarming node set — the set of flagged nodes may churn while the
	// component keeps aging, and that must not read as clear/raise.
	// Owned by foldMu (the outer map is pre-populated per resource so
	// parallel fold workers touch disjoint inner maps); the pending
	// queue has its own mutex so DrainNotifications never blocks on a
	// fold in progress.
	alarmed map[string]map[string]*latchedAlarm

	notifMu sync.Mutex
	pending []jmx.Notification

	// Epoch-event subscription: the actuation controller's verdict feed.
	// Events queue under foldMu — only when subscribers exist, so plain
	// deployments' folds stay allocation-free — and deliver after foldMu
	// is released, in epoch order under the delivery mutex.
	epochSubMu     sync.Mutex
	epochSubs      []func(EpochEvent)
	epochPending   []EpochEvent
	epochDeliverMu sync.Mutex

	// Control plane (control.go): command sequencing, local handler
	// bindings, learned wire routes and in-flight wire commands.
	ctlMu      sync.Mutex
	ctlSeq     uint64
	ctlLocal   map[string]ControlHandler
	ctlConns   map[string]*controlConn
	ctlPending map[uint64]*pendingControl
}

// foldNode is one active node's snapshot for the epoch being folded.
type foldNode struct {
	st   *nodeState
	seq  int64
	reps []*detect.Report
}

// verdictAgg accumulates one component's per-node alarms during verdict
// assembly. Recycled per resource via resourceFold.
type verdictAgg struct {
	nodes       []string
	score       float64
	firstEpoch  int64
	changePoint bool
}

// resourceFold is one resource's reusable verdict-assembly scratch, so
// the steady-state fold allocates nothing beyond the verdicts it
// publishes.
type resourceFold struct {
	byComponent map[string]*verdictAgg
	aggFree     []*verdictAgg
	compOrder   []string
	seen        map[string]bool
	cleared     []string
	notifs      []jmx.Notification
	rep         *ClusterReport // the report this epoch's fold assembled
}

// borrowSamples takes a pooled sample buffer of length n (caller holds
// a.tlMu).
func (a *Aggregator) borrowSamples(n int) []core.ComponentSample {
	if k := len(a.samplePool); k > 0 {
		buf := a.samplePool[k-1]
		a.samplePool = a.samplePool[:k-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]core.ComponentSample, n)
}

// reclaimSamples returns a sample buffer to the pool (caller holds
// a.tlMu).
func (a *Aggregator) reclaimSamples(buf []core.ComponentSample) {
	if cap(buf) > 0 {
		a.samplePool = append(a.samplePool, buf[:0])
	}
}

// latchedAlarm is the notification latch for one alarming component.
type latchedAlarm struct {
	clusterWide bool
}

// New creates an aggregator.
func New(cfg Config) *Aggregator {
	cfg = cfg.withDefaults()
	d := cfg.Detect
	// Cluster reports recycle on the same retention terms as the node
	// monitors' rings (see newNodeState).
	retention := d.ReportRetention
	if retention <= 0 {
		retention = detect.DefaultReportRetention
	}
	if min := cfg.StaleEpochs + 3; retention < min {
		retention = min
	}
	a := &Aggregator{
		cfg:       cfg,
		resources: append([]string(nil), core.DetectorResources...),
		configs:   core.ResourceDetectorConfigs(d),
		lanes:     make([]ingestLane, cfg.IngestLanes),
		laneSeed:  maphash.MakeSeed(),
		byName:    make(map[string]*nodeState),
		guard:     detect.NewShiftGuardMargin(d.ShiftThreshold, d.ShiftHold, d.ShiftEWMA, d.ShiftNoiseMargin),
		reports:   make(map[string]*ClusterReport),
		retention: retention,
		alarmed:   make(map[string]map[string]*latchedAlarm),

		ctlLocal:   make(map[string]ControlHandler),
		ctlConns:   make(map[string]*controlConn),
		ctlPending: make(map[uint64]*pendingControl),
	}
	for i := range a.lanes {
		a.lanes[i].nodes = make(map[string]*nodeState)
	}
	a.foldDeltas = make(map[string]float64)
	a.reportRing = make([][]*ClusterReport, len(a.resources))
	a.ringIdx = make([]int, len(a.resources))
	a.foldScratch = make([]resourceFold, len(a.resources))
	for ri, res := range a.resources {
		ring := make([]*ClusterReport, retention)
		for i := range ring {
			ring[i] = &ClusterReport{}
		}
		a.reportRing[ri] = ring
		a.alarmed[res] = make(map[string]*latchedAlarm)
		a.foldScratch[ri] = resourceFold{
			byComponent: make(map[string]*verdictAgg),
			seen:        make(map[string]bool),
		}
	}
	return a
}

// laneFor maps a node name onto its ingest lane.
func (a *Aggregator) laneFor(node string) *ingestLane {
	h := maphash.String(a.laneSeed, node)
	return &a.lanes[h%uint64(len(a.lanes))]
}

// nextReport rotates a resource's report ring and returns the next slot
// reset for the coming epoch (the Verdicts buffer is kept). Caller holds
// a.foldMu; parallel fold workers call it for disjoint resource indices.
func (a *Aggregator) nextReport(ri int) *ClusterReport {
	ring := a.reportRing[ri]
	i := a.ringIdx[ri]
	a.ringIdx[ri] = (i + 1) % len(ring)
	rep := ring[i]
	*rep = ClusterReport{Resource: a.resources[ri], Verdicts: rep.Verdicts[:0]}
	return rep
}

// monitorConfig returns one resource's detector config with the report
// retention floored so the epoch fold can still read snapshots up to
// StaleEpochs rounds old when they are consumed.
func (a *Aggregator) monitorConfig(res string) detect.Config {
	cfg := a.configs[res]
	if cfg.ReportRetention <= 0 {
		cfg.ReportRetention = detect.DefaultReportRetention
	}
	if min := a.cfg.StaleEpochs + 3; cfg.ReportRetention < min {
		cfg.ReportRetention = min
	}
	return cfg
}

// newNodeState creates and registers the aggregator's state for one
// node. Caller holds a.foldMu (and not the node's lane lock — the
// registry and lane insertions take their own locks here).
func (a *Aggregator) newNodeState(name string) *nodeState {
	lane := a.laneFor(name)
	st := &nodeState{
		name:         name,
		lane:         lane,
		monitors:     make(map[string]*detect.Monitor, len(a.resources)),
		reportsAtSeq: make(map[int64][]*detect.Report),
		usageAtSeq:   make(map[int64]float64),
		firstSize:    make(map[string]int64),
		firstAlarm:   make([]map[string]int64, len(a.resources)),
	}
	for _, res := range a.resources {
		st.monitors[res] = detect.NewMonitor(res, a.monitorConfig(res))
	}
	i := sort.SearchStrings(a.order, name)
	a.all = append(a.all, nil)
	copy(a.all[i+1:], a.all[i:])
	a.all[i] = st

	a.regMu.Lock()
	a.byName[name] = st
	a.order = append(a.order, "")
	copy(a.order[i+1:], a.order[i:])
	a.order[i] = name
	a.regMu.Unlock()

	lane.mu.Lock()
	lane.nodes[name] = st
	lane.mu.Unlock()
	return st
}

// Expect pre-registers the cluster's initial membership as active nodes.
// Without it a node joins on its first round and is aligned to whatever
// epoch the cluster has already reached — correct, but dependent on
// arrival order, so two transports could align the same nodes one epoch
// apart. Pre-registering pins every expected node to epoch base zero,
// making epoch alignment (and therefore every cluster verdict) a pure
// function of the rounds, not of transport timing. Call it before the
// first round arrives; expecting an already-known node is a no-op.
func (a *Aggregator) Expect(nodes ...string) {
	a.foldMu.Lock()
	defer a.foldMu.Unlock()
	for _, name := range nodes {
		if name == "" {
			continue
		}
		a.regMu.RLock()
		known := a.byName[name] != nil
		a.regMu.RUnlock()
		if known {
			continue
		}
		st := a.newNodeState(name)
		st.active.Store(true)
	}
}

// Ingest absorbs one node round: it normalises the node's clock onto the
// merged timeline, feeds the node's detector bank, and completes any
// cluster epochs the round finishes. Safe for concurrent use across
// nodes; per-node rounds must arrive in order (stale sequence numbers
// are dropped). The steady-state path runs entirely on the node's
// ingest lane; only the round that completes an epoch takes the fold
// lock.
func (a *Aggregator) Ingest(r Round) {
	if r.Node == "" || r.Seq <= 0 {
		return
	}
	lane := a.laneFor(r.Node)
	// Admission gate: bound the publishers one lane can absorb. The
	// slot is held until this call returns — through a fold, if this
	// round completes an epoch — so the counter reflects true
	// occupancy, and a storm sheds instead of parking goroutines
	// without bound.
	if lane.queued.Add(1) > int64(a.cfg.LaneQueueDepth) {
		lane.queued.Add(-1)
		a.shed.Add(1)
		return
	}
	defer lane.queued.Add(-1)
	lane.mu.Lock()
	st := lane.nodes[r.Node]
	if st != nil && r.Seq <= st.seq {
		// Duplicate or reordered round; per-node order is the contract.
		// Checked before the rejoin branch so a stale frame can never
		// undo a Leave.
		lane.mu.Unlock()
		return
	}
	if st == nil || !st.active.Load() {
		lane.mu.Unlock()
		a.ingestSlow(lane, r)
		return
	}
	epoch := a.ingestLocked(st, r)
	lane.mu.Unlock()
	a.maybeFold(epoch)
}

// ingestSlow handles the rare ingest cases that change membership — a
// node's first-ever round, or a round that rejoins a left/evicted node —
// under the fold lock, since epoch alignment and the churn hold are fold
// state.
func (a *Aggregator) ingestSlow(lane *ingestLane, r Round) {
	a.foldMu.Lock()
	a.ingestSlowLocked(lane, r)
	a.foldMu.Unlock()
	a.deliverEpochEvents()
}

func (a *Aggregator) ingestSlowLocked(lane *ingestLane, r Round) {
	lane.mu.Lock()
	st := lane.nodes[r.Node]
	lane.mu.Unlock()
	if st == nil {
		st = a.newNodeState(r.Node)
	}

	lane.mu.Lock()
	if r.Seq <= st.seq {
		lane.mu.Unlock()
		return
	}
	if !st.active.Load() {
		// Join (or rejoin): align the node's sequence with the current
		// epoch and hold cluster promotion down while traffic resettles.
		st.active.Store(true)
		st.epochBase = a.epochFolded - st.seq
		a.churnLeft = a.cfg.ChurnHold
	}
	a.ingestLocked(st, r)
	lane.mu.Unlock()
	a.completeEpochs()
}

// ingestLocked folds one in-order round into the node's lane state and
// returns the cluster epoch the round carries. Caller holds the node's
// lane lock; the foldMu-owned epochBase is stable here because
// join/rejoin (its only writers) hold this lane lock too.
func (a *Aggregator) ingestLocked(st *nodeState, r Round) int64 {
	st.seq = r.Seq

	// Clock normalisation: the node's first round pins its offset to the
	// merged timeline (the cluster "present" for late joiners), after
	// which its own monotone clock carries it. A defensive clamp keeps
	// both the per-node and the merged sequences ordered even if a node
	// clock misbehaves.
	if !st.haveOffset {
		a.tlMu.Lock()
		if !a.haveBase {
			a.base = r.Time
			a.lastMerged = r.Time
			a.haveBase = true
		}
		st.offset = r.Time.Sub(a.lastMerged)
		st.haveOffset = true
		st.lastNorm = a.lastMerged
		a.tlMu.Unlock()
	}
	norm := r.Time.Add(-st.offset)
	if !norm.After(st.lastNorm) {
		norm = st.lastNorm.Add(time.Millisecond)
	}
	st.lastNorm = norm

	// Feed the node's detectors and snapshot the reports for the epoch
	// that will consume this round. The report-slice snapshots and the
	// observation projection recycle through node-owned buffers; the
	// monitors themselves are allocation-free per round.
	var reps []*detect.Report
	if k := len(st.repsFree); k > 0 {
		reps = st.repsFree[k-1][:0]
		st.repsFree = st.repsFree[:k-1]
	} else {
		reps = make([]*detect.Report, 0, len(a.resources))
	}
	for _, res := range a.resources {
		st.obsScratch = core.AppendObservations(st.obsScratch[:0], res, r.Samples)
		reps = append(reps, st.monitors[res].Observe(norm, st.obsScratch))
	}
	st.reportsAtSeq[r.Seq] = reps

	var usageTotal float64
	for _, s := range r.Samples {
		usageTotal += float64(s.Usage)
		if s.SizeOK {
			if _, ok := st.firstSize[s.Component]; !ok {
				st.firstSize[s.Component] = s.Size
			}
		}
	}
	st.usageAtSeq[r.Seq] = usageTotal

	// The round's samples are borrowed (a collector round buffer or a
	// wire decoder's reuse buffer): copy once into a pooled buffer for
	// the merged log, and once into the node's reusable last-round
	// snapshot. The pooled copy is reclaimed when the log evicts it.
	st.lastSamples = append(st.lastSamples[:0], r.Samples...)

	a.tlMu.Lock()
	merged := norm
	if merged.Before(a.lastMerged) {
		merged = a.lastMerged
	}
	a.lastMerged = merged
	logged := r
	logged.Time = merged
	logged.Samples = a.borrowSamples(len(r.Samples))
	copy(logged.Samples, r.Samples)
	a.mergedLog = append(a.mergedLog, logged)
	if n := len(a.mergedLog) - a.cfg.MergedLogCap; n > 0 {
		for _, old := range a.mergedLog[:n] {
			a.reclaimSamples(old.Samples)
		}
		a.mergedLog = a.mergedLog[n:]
	}
	a.tlMu.Unlock()

	a.total.Add(1)

	// Publish the node's epoch watermark last, after the round's
	// snapshots are recorded: a fold that sees the new epoch will also
	// find the snapshots it implies (it re-synchronises on this lane's
	// lock before reading them).
	epoch := st.epochBase + r.Seq
	st.seqA.Store(r.Seq)
	st.epochA.Store(epoch)
	return epoch
}

// maybeFold takes the fold lock and completes epochs only when the round
// that just ingested can have made an epoch completable: it carries the
// epoch right after the watermark, or it has run far enough ahead to
// trigger staleness eviction. Everything else returns without touching
// shared fold state — the gate is what shrinks the old global mutex to
// epoch-watermark advancement.
//
// The gate is race-free without the lock: the publisher stores its
// node's epochA before loading the watermark, and the folder stores the
// watermark before re-scanning the nodes' epochA values, so for any
// interleaving at least one side observes the other (both are
// sequentially consistent atomics) and no completable epoch is ever
// left unfolded.
func (a *Aggregator) maybeFold(epoch int64) {
	next := a.epoch.Load() + 1
	if epoch != next && epoch-next < int64(a.cfg.StaleEpochs) {
		return
	}
	a.foldMu.Lock()
	a.completeEpochs()
	a.foldMu.Unlock()
	a.deliverEpochEvents()
}

// completeEpochs folds finished epochs, under a.foldMu. Epoch k is
// complete when every active node has delivered its round for k; nodes
// lagging more than StaleEpochs behind the most advanced node are marked
// inactive so a dead node never stalls the cluster.
func (a *Aggregator) completeEpochs() {
	for {
		next := a.epochFolded + 1
		var maxEpoch int64
		ready := true
		for _, st := range a.all {
			if !st.active.Load() {
				continue
			}
			e := st.epochA.Load()
			if e > maxEpoch {
				maxEpoch = e
			}
			if e < next {
				ready = false
			}
		}
		if !ready && maxEpoch-next >= int64(a.cfg.StaleEpochs) {
			// Evict laggards and re-check: the cluster has moved on.
			for _, st := range a.all {
				if st.active.Load() && st.epochA.Load() < next {
					a.deactivate(st)
				}
			}
			continue
		}
		if !ready || maxEpoch == 0 {
			return
		}
		a.foldEpoch(next)
	}
}

// deactivate marks a node inactive (leave or staleness eviction) and
// starts the churn hold-down. Caller holds a.foldMu.
func (a *Aggregator) deactivate(st *nodeState) {
	if !st.active.Load() {
		return
	}
	st.active.Store(false)
	a.churnLeft = a.cfg.ChurnHold
}

// foldEpoch completes cluster epoch k: feeds the node-mix guard with the
// per-node usage deltas, advances the churn hold, and publishes fresh
// cluster reports, assembling the per-resource verdicts on the bounded
// worker pool. Caller holds a.foldMu. The fold reads each node's per-seq
// snapshots under that node's lane lock, so it never races the node's
// next ingest; everything else it touches is fold-owned.
func (a *Aggregator) foldEpoch(k int64) {
	foldStart := time.Now()
	defer func() {
		d := time.Since(foldStart).Nanoseconds()
		a.foldLastNanos.Store(d)
		if d > a.foldMaxNanos.Load() { // single writer under foldMu
			a.foldMaxNanos.Store(d)
		}
	}()
	a.epochFolded = k
	a.epoch.Store(k)

	// Snapshot the epoch's inputs from the lanes: each active node's
	// report bank for k and its usage total (consumed here, so the
	// guard's delta baseline advances exactly once per epoch).
	nodes := a.foldNodes[:0]
	deltas := a.foldDeltas
	clear(deltas)
	for _, st := range a.all {
		if !st.active.Load() {
			continue
		}
		seq := k - st.epochBase
		st.lane.mu.Lock()
		if usage, ok := st.usageAtSeq[seq]; ok {
			deltas[st.name] = usage - st.prevUsage
			st.prevUsage = usage
			delete(st.usageAtSeq, seq)
		}
		reps := st.reportsAtSeq[seq]
		st.lane.mu.Unlock()
		// The report snapshots stay readable without the lane lock: their
		// ring slots cannot recycle until the node runs retention rounds
		// ahead, and the watermark gate blocks any node from outrunning
		// the fold by more than StaleEpochs (< retention) epochs.
		nodes = append(nodes, foldNode{st: st, seq: seq, reps: reps})
	}
	a.foldNodes = nodes

	guardSuppressed := a.guard.Observe(deltas)
	churning := a.churnLeft > 0
	if churning {
		a.churnLeft--
	}
	suppressed := guardSuppressed || churning
	if guardSuppressed {
		a.shiftEp++
	}

	active := len(nodes)
	total := len(a.all)

	a.tlMu.Lock()
	at := a.lastMerged
	a.tlMu.Unlock()

	shared := foldEpochState{
		k: k, at: at, active: active, total: total,
		suppressed: suppressed, churning: churning,
		shiftDistance: a.guard.Distance(), shiftEpochs: a.shiftEp,
	}
	if w := a.cfg.FoldWorkers; w > 1 {
		var wg sync.WaitGroup
		var cursor atomic.Int64
		wg.Add(w)
		for i := 0; i < w; i++ {
			go func() {
				defer wg.Done()
				for {
					ri := int(cursor.Add(1)) - 1
					if ri >= len(a.resources) {
						return
					}
					a.foldResource(ri, shared)
				}
			}()
		}
		wg.Wait()
	} else {
		for ri := range a.resources {
			a.foldResource(ri, shared)
		}
	}

	// Publish the fresh reports and queued notification transitions in
	// resource order — identical to the serial fold's output order.
	a.repMu.Lock()
	for ri, res := range a.resources {
		a.reports[res] = a.foldScratch[ri].rep
	}
	a.repMu.Unlock()
	a.notifMu.Lock()
	for ri := range a.resources {
		sc := &a.foldScratch[ri]
		for i := range sc.notifs {
			if len(a.pending) >= a.cfg.NotifCap {
				// Undrained backlog at the cap: drop newest, keep the
				// oldest transitions (the raise that started the story).
				a.notifDropped.Add(int64(len(sc.notifs) - i))
				break
			}
			a.pending = append(a.pending, sc.notifs[i])
		}
		sc.notifs = sc.notifs[:0]
	}
	a.notifMu.Unlock()

	// Queue the epoch for verdict subscribers (the rejuvenation
	// controller). Skipped entirely with no subscribers, keeping plain
	// deployments' folds allocation-free; delivery happens once foldMu is
	// released (deliverEpochEvents), so a subscriber can call back into
	// the aggregator.
	a.epochSubMu.Lock()
	if len(a.epochSubs) > 0 {
		ev := EpochEvent{Epoch: k, Suppressed: suppressed, Active: active}
		for ri := range a.resources {
			ev.Verdicts = append(ev.Verdicts, a.foldScratch[ri].rep.Verdicts...)
		}
		a.epochPending = append(a.epochPending, ev)
	}
	a.epochSubMu.Unlock()

	// Release the per-seq snapshots this epoch consumed (≤ guards
	// against stale keys surviving an epoch-base change across a
	// rejoin). The report slices go back on the node's freelist.
	for _, st := range a.all {
		seq := k - st.epochBase
		st.lane.mu.Lock()
		for s, reps := range st.reportsAtSeq {
			if s <= seq {
				st.repsFree = append(st.repsFree, reps[:0])
				delete(st.reportsAtSeq, s)
			}
		}
		for s := range st.usageAtSeq {
			if s <= seq {
				delete(st.usageAtSeq, s)
			}
		}
		st.lane.mu.Unlock()
	}
}

// foldEpochState is the epoch-constant context shared by the
// per-resource fold workers.
type foldEpochState struct {
	k             int64
	at            time.Time
	active, total int
	suppressed    bool
	churning      bool
	shiftDistance float64
	shiftEpochs   int64
}

// foldResource assembles one resource's cluster report and verdicts for
// the epoch. Callers (the fold's worker pool) pass disjoint resource
// indices, and everything touched is either indexed by ri or owned by
// this node+resource pair, so workers never share mutable state.
func (a *Aggregator) foldResource(ri int, ep foldEpochState) {
	res := a.resources[ri]
	rep := a.nextReport(ri)
	rep.Epoch = ep.k
	rep.Time = ep.at
	rep.Active = ep.active
	rep.Total = ep.total
	rep.Suppressed = ep.suppressed
	rep.ShiftDistance = ep.shiftDistance
	rep.ShiftEpochs = ep.shiftEpochs
	rep.Churning = ep.churning

	sc := &a.foldScratch[ri]
	for comp, agg := range sc.byComponent {
		agg.nodes = agg.nodes[:0]
		*agg = verdictAgg{nodes: agg.nodes}
		sc.aggFree = append(sc.aggFree, agg)
		delete(sc.byComponent, comp)
	}
	sc.compOrder = sc.compOrder[:0]

	for _, fn := range a.foldNodes {
		if ri >= len(fn.reps) {
			continue
		}
		nodeRep := fn.reps[ri]
		if nodeRep == nil {
			continue
		}
		st := fn.st
		for _, v := range nodeRep.Components {
			if !v.Alarm {
				continue
			}
			c := sc.byComponent[v.Component]
			if c == nil {
				if k := len(sc.aggFree); k > 0 {
					c = sc.aggFree[k-1]
					sc.aggFree = sc.aggFree[:k-1]
				} else {
					c = &verdictAgg{}
				}
				sc.byComponent[v.Component] = c
				sc.compOrder = append(sc.compOrder, v.Component)
			}
			c.nodes = append(c.nodes, st.name)
			if v.Score > c.score {
				c.score = v.Score
			}
			firstByComp := st.firstAlarm[ri]
			if firstByComp == nil {
				firstByComp = make(map[string]int64)
				st.firstAlarm[ri] = firstByComp
			}
			first, seen := firstByComp[v.Component]
			if !seen {
				first = ep.k
				firstByComp[v.Component] = ep.k
			}
			if c.firstEpoch == 0 || first < c.firstEpoch {
				c.firstEpoch = first
			}
			c.changePoint = c.changePoint || v.ChangePoint
		}
	}
	for _, comp := range sc.compOrder {
		c := sc.byComponent[comp]
		v := ClusterVerdict{
			Resource:    res,
			Component:   comp,
			Nodes:       append([]string(nil), c.nodes...),
			ActiveNodes: ep.active,
			Score:       c.score,
			FirstEpoch:  c.firstEpoch,
			ChangePoint: c.changePoint,
		}
		if !ep.suppressed && ep.active >= 2 &&
			float64(len(c.nodes)) > a.cfg.Quorum*float64(ep.active) {
			v.ClusterWide = true
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}
	sort.SliceStable(rep.Verdicts, func(i, j int) bool {
		if rep.Verdicts[i].Score != rep.Verdicts[j].Score {
			return rep.Verdicts[i].Score > rep.Verdicts[j].Score
		}
		return rep.Verdicts[i].Component < rep.Verdicts[j].Component
	})
	sc.rep = rep
	a.queueTransitions(sc, rep, ep.suppressed)
}

// queueTransitions diffs a fresh report against the latched alarm set and
// queues one notification per transition: a raise when a component first
// alarms, a promotion when its verdict turns cluster-wide, a clear when
// no node flags it any more. The alarming-node set may otherwise churn
// without spamming the stream. New alarms and promotions are not
// announced while suppressed (churn or node-mix shift); clears always
// are. Caller is a fold worker: the latch map and scratch are owned by
// this resource, and the notifications queue into the resource's scratch
// so the fold can publish them in deterministic resource order.
func (a *Aggregator) queueTransitions(sc *resourceFold, rep *ClusterReport, suppressed bool) {
	was := a.alarmed[rep.Resource]
	clear(sc.seen)
	for _, v := range rep.Verdicts {
		sc.seen[v.Component] = true
		latch := was[v.Component]
		if latch == nil {
			if suppressed {
				continue
			}
			was[v.Component] = &latchedAlarm{clusterWide: v.ClusterWide}
			scope := "node-local"
			if v.ClusterWide {
				scope = "cluster-wide"
			}
			sc.notifs = append(sc.notifs, jmx.Notification{
				Type:   NotifClusterAlarm,
				Source: AggregatorName(),
				Message: fmt.Sprintf("%s aging: %s on %s (%d/%d nodes, score %.4g, epoch %d)",
					scope, v.Component, strings.Join(v.Nodes, "+"), len(v.Nodes), v.ActiveNodes, v.Score, rep.Epoch),
				Data: v,
			})
			continue
		}
		if v.ClusterWide && !latch.clusterWide && !suppressed {
			latch.clusterWide = true
			sc.notifs = append(sc.notifs, jmx.Notification{
				Type:   NotifClusterAlarm,
				Source: AggregatorName(),
				Message: fmt.Sprintf("aging on %s promoted to cluster-wide (%s on %d/%d nodes, epoch %d)",
					v.Component, rep.Resource, len(v.Nodes), v.ActiveNodes, rep.Epoch),
				Data: v,
			})
		}
	}
	sc.cleared = sc.cleared[:0]
	for comp := range was {
		if !sc.seen[comp] {
			sc.cleared = append(sc.cleared, comp)
		}
	}
	sort.Strings(sc.cleared)
	for _, comp := range sc.cleared {
		delete(was, comp)
		sc.notifs = append(sc.notifs, jmx.Notification{
			Type:    NotifClusterAlarm,
			Source:  AggregatorName(),
			Message: fmt.Sprintf("cluster alarm cleared: %s (%s, epoch %d)", comp, rep.Resource, rep.Epoch),
		})
	}
}

// SyncFolds folds every epoch completable from the rounds already
// ingested and blocks until any in-flight fold has published its
// reports. The ingest path never needs it — maybeFold's gate guarantees
// no completable epoch is left unfolded *eventually* — but a caller
// that has just barriered on TotalRounds and is about to read reports
// needs a synchronous point: a round is counted before the fold it
// completes runs (and that fold may even be executed by another
// publisher's in-flight completeEpochs loop), so "all rounds ingested"
// does not mean "all epochs published" until this returns.
func (a *Aggregator) SyncFolds() {
	a.foldMu.Lock()
	a.completeEpochs()
	a.foldMu.Unlock()
	a.deliverEpochEvents()
}

// ShedRounds reports how many rounds the admission gate shed at a full
// ingest lane (Config.LaneQueueDepth).
func (a *Aggregator) ShedRounds() int64 { return a.shed.Load() }

// DroppedNotifications reports how many cluster-alarm notifications
// were dropped at a full pending queue (Config.NotifCap).
func (a *Aggregator) DroppedNotifications() int64 { return a.notifDropped.Load() }

// DrainNotifications returns and clears the queued cluster alarm
// transitions; the owner (a cluster stack's notification pump, a serving
// binary) emits them on its MBeanServer. It takes only the queue's own
// mutex, so polling never contends with ingest or a fold in progress.
func (a *Aggregator) DrainNotifications() []jmx.Notification {
	a.notifMu.Lock()
	defer a.notifMu.Unlock()
	out := a.pending
	a.pending = nil
	return out
}

// Leave marks a node as having left the cluster: it stops counting
// toward quorums and epoch completion, and the churn hold keeps cluster
// promotion quiet while the balancer redistributes its traffic. A node
// that publishes again after Leave rejoins automatically.
func (a *Aggregator) Leave(node string) {
	a.foldMu.Lock()
	a.regMu.RLock()
	st := a.byName[node]
	a.regMu.RUnlock()
	if st != nil {
		a.deactivate(st)
		a.completeEpochs()
	}
	a.foldMu.Unlock()
	a.deliverEpochEvents()
}

// EpochEvent is one completed cluster epoch as delivered to verdict
// subscribers: every resource's verdicts for the epoch, flattened in
// resource order. The event is the subscriber's to keep — the verdict
// values are copies and their Nodes slices are freshly allocated per
// fold, never recycled.
type EpochEvent struct {
	Epoch      int64
	Suppressed bool // churn hold or workload-shift guard active
	Active     int  // nodes contributing to the epoch
	Verdicts   []ClusterVerdict
}

// SubscribeEpochs registers fn on the epoch-event feed: it is called
// once per completed epoch, in epoch order, on the goroutine whose
// ingest completed the epoch — after the fold lock is released, so fn
// may call back into the aggregator (ResetNode, SendControl, reports).
// fn must not block: it runs on the ingest path of whichever node's
// round completed the epoch. Subscribe before rounds flow; there is no
// unsubscribe.
func (a *Aggregator) SubscribeEpochs(fn func(EpochEvent)) {
	a.epochSubMu.Lock()
	a.epochSubs = append(a.epochSubs, fn)
	a.epochSubMu.Unlock()
}

// deliverEpochEvents drains queued epoch events to the subscribers. It
// runs with foldMu released; the delivery mutex keeps events in epoch
// order when two ingests complete epochs back to back.
func (a *Aggregator) deliverEpochEvents() {
	a.epochDeliverMu.Lock()
	defer a.epochDeliverMu.Unlock()
	for {
		a.epochSubMu.Lock()
		events := a.epochPending
		a.epochPending = nil
		subs := a.epochSubs
		a.epochSubMu.Unlock()
		if len(events) == 0 {
			return
		}
		for _, ev := range events {
			for _, fn := range subs {
				fn(ev)
			}
		}
	}
}

// ResetNode clears a node's detection history — monitors, first-alarm
// latches and pending per-seq snapshots — while keeping its sequence
// numbering and epoch alignment. The rejuvenation controller calls it
// right after a micro-reboot: the component restarts from a fresh
// baseline, and trend state accumulated before the reboot would misread
// the recovery cliff as signal (or keep the old alarm latched through
// probation). Reports false for unknown nodes.
func (a *Aggregator) ResetNode(node string) bool {
	a.foldMu.Lock()
	defer a.foldMu.Unlock()
	a.regMu.RLock()
	st := a.byName[node]
	a.regMu.RUnlock()
	if st == nil {
		return false
	}
	for ri := range st.firstAlarm {
		st.firstAlarm[ri] = nil
	}
	st.lane.mu.Lock()
	for res := range st.monitors {
		st.monitors[res] = detect.NewMonitor(res, a.monitorConfig(res))
	}
	for s, reps := range st.reportsAtSeq {
		st.repsFree = append(st.repsFree, reps[:0])
		delete(st.reportsAtSeq, s)
	}
	for s := range st.usageAtSeq {
		delete(st.usageAtSeq, s)
	}
	clear(st.firstSize)
	st.lane.mu.Unlock()
	return true
}

// Epoch returns the latest completed cluster epoch (lock-free).
func (a *Aggregator) Epoch() int64 { return a.epoch.Load() }

// TotalRounds returns how many rounds have been ingested (lock-free).
func (a *Aggregator) TotalRounds() int64 { return a.total.Load() }

// FoldLatency reports the verdict-publication latency — wall time from
// an epoch's completion (its watermark-advancing round ingested) to its
// reports and verdicts being published — for the most recent epoch and
// the worst epoch so far. Zero until the first epoch folds. Lock-free.
func (a *Aggregator) FoldLatency() (last, max time.Duration) {
	return time.Duration(a.foldLastNanos.Load()), time.Duration(a.foldMaxNanos.Load())
}

// Nodes returns the cluster membership, sorted by name. It reads the
// registry and the nodes' published counters without touching any ingest
// lane or the fold lock, so monitoring the membership never stalls
// ingest.
func (a *Aggregator) Nodes() []NodeStatus {
	a.regMu.RLock()
	defer a.regMu.RUnlock()
	out := make([]NodeStatus, 0, len(a.order))
	for _, name := range a.order {
		st := a.byName[name]
		out = append(out, NodeStatus{
			Node:   name,
			Active: st.active.Load(),
			Rounds: st.seqA.Load(),
			Epoch:  st.epochA.Load(),
		})
	}
	return out
}

// Report returns the latest cluster report for a resource (nil before the
// first completed epoch). Reports publish from a recycled ring sized like
// the node monitors' (Config.Detect.ReportRetention, floored at
// StaleEpochs+3): the returned pointer stays valid for retention-1
// further epochs, and a consumer that keeps one longer must copy it.
func (a *Aggregator) Report(resource string) *ClusterReport {
	a.repMu.RLock()
	defer a.repMu.RUnlock()
	return a.reports[resource]
}

// NodeReport returns a node's latest per-node detection report for a
// resource (nil for unknown nodes or before the node's first round).
// Unlike cluster verdicts it reflects every round ingested so far, not
// just completed epochs. The returned report is a copy the caller owns:
// the monitor's own reports recycle through a ring as rounds flow, and a
// cluster's rounds keep flowing while monitoring reads — the copy is
// taken under the node's lane lock, so it is a consistent snapshot.
func (a *Aggregator) NodeReport(node, resource string) *detect.Report {
	a.regMu.RLock()
	st := a.byName[node]
	a.regMu.RUnlock()
	if st == nil {
		return nil
	}
	mon, ok := st.monitors[resource]
	if !ok {
		return nil
	}
	st.lane.mu.Lock()
	defer st.lane.mu.Unlock()
	rep := mon.Latest()
	if rep == nil {
		return nil
	}
	return rep.Clone()
}

// MergedRounds returns a copy of the retained merged-round log, whose
// times are normalised onto the aggregator's timeline and are guaranteed
// non-decreasing regardless of node clock skew. The samples are deep
// copies: the log's own buffers recycle as the log rolls, and a caller's
// snapshot must not roll with them. It takes only the timeline mutex —
// the short tail of the ingest path — never an ingest lane or the fold
// lock.
func (a *Aggregator) MergedRounds() []Round {
	a.tlMu.Lock()
	defer a.tlMu.Unlock()
	out := append([]Round(nil), a.mergedLog...)
	for i := range out {
		out[i].Samples = append([]core.ComponentSample(nil), out[i].Samples...)
	}
	return out
}

// Verdicts adapts the latest per-node reports to the live root-cause
// strategy's verdict type: one entry per (node, component) pair. Each
// node's report is read under its lane lock, so the projection never
// races the node's next round.
func (a *Aggregator) Verdicts(resource string) []rootcause.LiveVerdict {
	a.regMu.RLock()
	defer a.regMu.RUnlock()
	var out []rootcause.LiveVerdict
	for _, name := range a.order {
		st := a.byName[name]
		if !st.active.Load() {
			continue
		}
		mon, ok := st.monitors[resource]
		if !ok {
			continue
		}
		st.lane.mu.Lock()
		if rep := mon.Latest(); rep != nil {
			for _, v := range rep.Components {
				out = append(out, rootcause.LiveVerdict{
					Component: v.Component,
					Node:      name,
					Alarm:     v.Alarm,
					Score:     v.Score,
				})
			}
		}
		st.lane.mu.Unlock()
	}
	return out
}

// LiveRank ranks (node, component) pairs with the live strategy: detector
// verdicts give scores and alarms, the latest round's measurements give
// the map coordinates — so the Live strategy can say "component X on
// node 2". It briefly takes each node's lane lock to snapshot the
// latest samples, never the fold lock.
func (a *Aggregator) LiveRank(resource string) rootcause.Ranking {
	a.regMu.RLock()
	var data []rootcause.ComponentData
	for _, name := range a.order {
		st := a.byName[name]
		if !st.active.Load() {
			continue
		}
		st.lane.mu.Lock()
		for _, s := range st.lastSamples {
			d := rootcause.ComponentData{Name: s.Component, Node: name, Usage: s.Usage}
			switch resource {
			case core.ResourceMemory:
				if s.SizeOK {
					if c := float64(s.Size - st.firstSize[s.Component]); c > 0 {
						d.Consumption = c
					}
				}
			case core.ResourceCPU:
				d.Consumption = s.CPUSeconds
			case core.ResourceThreads:
				d.Consumption = float64(s.Threads)
			case core.ResourceLatency:
				d.Consumption = s.LatencySeconds
			case core.ResourceHandles:
				d.Consumption = float64(s.Handles)
			}
			data = append(data, d)
		}
		st.lane.mu.Unlock()
	}
	a.regMu.RUnlock()
	return rootcause.Live{Source: a.Verdicts}.Rank(resource, data)
}

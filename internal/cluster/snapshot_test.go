package cluster

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/binc"
	"repro/internal/core"
	"repro/internal/detect"
)

// feedSnap drives seqs [from, to] of the synthetic three-component
// workload into a, all nodes in lockstep.
func feedSnap(a *Aggregator, nodes []string, leaks map[string]int64, from, to int64) {
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for seq := from; seq <= to; seq++ {
		at := t0.Add(time.Duration(seq) * 30 * time.Second)
		for _, n := range nodes {
			a.Ingest(syntheticRound(n, seq, at, leaks[n]))
		}
	}
}

// recordEpochs subscribes a renderer that captures every epoch event as
// a string (the event's verdict slices recycle with the report rings,
// so retaining them raw would alias).
func recordEpochs(a *Aggregator, into *[]string) {
	a.SubscribeEpochs(func(ev EpochEvent) {
		*into = append(*into, fmt.Sprintf("%+v", ev))
	})
}

// TestAggregatorSnapshotParity is the tentpole guarantee: run N epochs,
// snapshot, restore into a fresh plane, run M more — every verdict,
// report and epoch event must be identical to an uninterrupted N+M run,
// and the final durable state must match bit for bit.
func TestAggregatorSnapshotParity(t *testing.T) {
	cfg := Config{Detect: testDetect(), IngestLanes: 4}
	nodes := []string{"node1", "node2", "node3"}
	leaks := map[string]int64{"node2": 4096}
	const N, M = 25, 15

	ref := New(cfg)
	var refEvents []string
	recordEpochs(ref, &refEvents)
	ref.Expect(nodes...)
	feedSnap(ref, nodes, leaks, 1, N+M)

	live := New(cfg)
	live.Expect(nodes...)
	feedSnap(live, nodes, leaks, 1, N)
	snap := live.Snapshot()

	restored := New(cfg)
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := restored.Epoch(); got != N {
		t.Fatalf("restored epoch = %d, want %d", got, N)
	}
	if got := restored.TotalRounds(); got != int64(N*len(nodes)) {
		t.Fatalf("restored rounds = %d, want %d", got, N*len(nodes))
	}
	var gotEvents []string
	recordEpochs(restored, &gotEvents)
	feedSnap(restored, nodes, leaks, N+1, N+M)

	if len(refEvents) != N+M {
		t.Fatalf("reference produced %d epoch events, want %d", len(refEvents), N+M)
	}
	if len(gotEvents) != M {
		t.Fatalf("restored produced %d epoch events, want %d", len(gotEvents), M)
	}
	for i, want := range refEvents[N:] {
		if gotEvents[i] != want {
			t.Fatalf("epoch event %d diverged after restore:\n got %s\nwant %s", N+1+i, gotEvents[i], want)
		}
	}

	for _, res := range core.DetectorResources {
		if got, want := clusterVerdictsOf(restored.Report(res)), clusterVerdictsOf(ref.Report(res)); !reflect.DeepEqual(got, want) {
			t.Errorf("%s report diverged after restore:\n got %+v\nwant %+v", res, got, want)
		}
		for _, n := range nodes {
			got, want := restored.NodeReport(n, res), ref.NodeReport(n, res)
			if (got == nil) != (want == nil) || (got != nil && got.String() != want.String()) {
				t.Errorf("%s/%s node report diverged after restore:\n got %v\nwant %v", n, res, got, want)
			}
		}
	}
	if got, want := restored.Nodes(), ref.Nodes(); !reflect.DeepEqual(got, want) {
		t.Errorf("node status diverged: %+v vs %+v", got, want)
	}

	// The decisive check: the two planes' durable state is bit-identical.
	if !bytes.Equal(restored.Snapshot(), ref.Snapshot()) {
		t.Fatalf("final snapshots differ between restored and uninterrupted runs")
	}
}

// TestAggregatorSnapshotParityMembership exercises restore with a left
// node and a mid-stream joiner in the snapshot — churn hold, the
// inactive node's retained state, and the joiner's epoch alignment must
// all survive.
func TestAggregatorSnapshotParityMembership(t *testing.T) {
	cfg := Config{Detect: testDetect(), StaleEpochs: 4, ChurnHold: 3}
	base := []string{"node1", "node2", "node3"}
	leaks := map[string]int64{"node2": 4096}
	const N, M = 22, 14

	drive := func(a *Aggregator) func(from, to int64) {
		return func(from, to int64) {
			t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
			for seq := from; seq <= to; seq++ {
				at := t0.Add(time.Duration(seq) * 30 * time.Second)
				for _, n := range base {
					if n == "node3" && seq > 15 {
						continue // node3 dies at seq 15
					}
					a.Ingest(syntheticRound(n, seq, at, leaks[n]))
				}
				if seq > 18 { // node4 joins late
					a.Ingest(syntheticRound("node4", seq-18, at, 0))
				}
			}
		}
	}

	ref := New(cfg)
	ref.Expect(base...)
	drive(ref)(1, N+M)

	live := New(cfg)
	live.Expect(base...)
	drive(live)(1, N)
	snap := live.Snapshot()

	restored := New(cfg)
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	drive(restored)(N+1, N+M)

	if !bytes.Equal(restored.Snapshot(), ref.Snapshot()) {
		t.Fatalf("final snapshots differ with membership churn in play")
	}
	for _, res := range core.DetectorResources {
		if got, want := clusterVerdictsOf(restored.Report(res)), clusterVerdictsOf(ref.Report(res)); !reflect.DeepEqual(got, want) {
			t.Errorf("%s report diverged: %+v vs %+v", res, got, want)
		}
	}
}

// TestAggregatorSnapshotCanonical pins Snapshot∘Restore∘Snapshot as the
// identity on bytes.
func TestAggregatorSnapshotCanonical(t *testing.T) {
	a := New(Config{Detect: testDetect()})
	nodes := []string{"node1", "node2", "node3"}
	a.Expect(nodes...)
	feedSnap(a, nodes, map[string]int64{"node2": 4096}, 1, 18)
	a.Leave("node3")
	snap := a.Snapshot()

	restored := New(Config{Detect: testDetect()})
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if again := restored.Snapshot(); !bytes.Equal(again, snap) {
		t.Fatalf("snapshot not canonical: %d vs %d bytes", len(again), len(snap))
	}
}

// TestAggregatorSnapshotEmpty covers the degenerate fresh-to-fresh copy.
func TestAggregatorSnapshotEmpty(t *testing.T) {
	snap := New(Config{Detect: testDetect()}).Snapshot()
	restored := New(Config{Detect: testDetect()})
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !bytes.Equal(restored.Snapshot(), snap) {
		t.Fatal("empty snapshot not canonical")
	}
}

func TestAggregatorRestoreRejectsUsedAggregator(t *testing.T) {
	snap := New(Config{Detect: testDetect()}).Snapshot()

	used := New(Config{Detect: testDetect()})
	used.Expect("node1")
	if err := used.Restore(snap); err == nil || !strings.Contains(err.Error(), "fresh") {
		t.Fatalf("restore into expecting aggregator: %v", err)
	}

	fed := New(Config{Detect: testDetect()})
	feedSnap(fed, []string{"node1"}, nil, 1, 2)
	if err := fed.Restore(snap); err == nil || !strings.Contains(err.Error(), "fresh") {
		t.Fatalf("restore into fed aggregator: %v", err)
	}
}

func TestAggregatorRestoreRejectsConfigMismatch(t *testing.T) {
	a := New(Config{Detect: testDetect()})
	a.Expect("node1")
	feedSnap(a, []string{"node1"}, nil, 1, 3)
	snap := a.Snapshot()

	other := New(Config{Detect: detect.Config{Window: 30, MinSamples: 4, Consecutive: 2}})
	err := other.Restore(snap)
	if err == nil || !strings.Contains(err.Error(), "config") {
		t.Fatalf("config mismatch not rejected: %v", err)
	}
}

func TestAggregatorRestoreRejectsCorruption(t *testing.T) {
	a := New(Config{Detect: testDetect()})
	a.Expect("node1", "node2")
	feedSnap(a, []string{"node1", "node2"}, map[string]int64{"node1": 2048}, 1, 6)
	snap := a.Snapshot()

	fresh := func() *Aggregator { return New(Config{Detect: testDetect()}) }

	if err := fresh().Restore(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
	bad := append([]byte(nil), snap...)
	bad[0] = 'X'
	if err := fresh().Restore(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}
	bad = append([]byte(nil), snap...)
	bad[4] = 99
	if err := fresh().Restore(bad); !errors.Is(err, binc.ErrVersion) {
		t.Fatalf("bad version: %v", err)
	}
	for _, cut := range []int{5, len(snap) / 4, len(snap) / 2, len(snap) - 1} {
		if err := fresh().Restore(snap[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if err := fresh().Restore(append(append([]byte(nil), snap...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// TestAggregatorSnapshotGolden pins the on-disk format: if this breaks,
// the format changed and aggSnapVersion must be bumped.
func TestAggregatorSnapshotGolden(t *testing.T) {
	a := New(Config{Detect: testDetect()})
	a.Expect("n1")
	feedSnap(a, []string{"n1"}, map[string]int64{"n1": 512}, 1, 3)
	got := hex.EncodeToString(a.Snapshot())
	want := strings.Join(aggSnapshotGoldenHex, "")
	if got != want {
		t.Fatalf("snapshot format changed — bump aggSnapVersion and re-pin.\ngot:\n%s", chunk80(got))
	}
}

// chunk80 renders a hex string in 80-char lines for re-pinning.
func chunk80(s string) string {
	var b strings.Builder
	for len(s) > 80 {
		fmt.Fprintf(&b, "\t%q,\n", s[:80])
		s = s[80:]
	}
	fmt.Fprintf(&b, "\t%q,\n", s)
	return b.String()
}

var aggSnapshotGoldenHex = []string{
	"4147534e0105066d656d6f7279036370750774687265616473076c6174656e63790768616e646c65",
	"730606000001333333333333c33f059a9999999999c93f000000000000f83f0101026e3100000000",
	"0000f03f0000000000000000333333333333c33f000006000180b08dabf9b4cd84238090c8afb8b8",
	"cd842300000000000001026e31010601008090c8afb8b8cd8423000000000000c0824002056c6561",
	"6b79d017026f6bd00f02056c65616b79d02701d804343333333333d33f0400000000000000000000",
	"026f6bd00f01d804343333333333d33f0400000000000000000000000000000001066d656d6f7279",
	"147b14ae47e17a843f0000000000000000040200333333333333c33f059a9999999999c93f000000",
	"000000f83f0000000000000000000000000000000000000806000001333333333333c33f059a9999",
	"999999c93f000000000000f83f0102056c65616b79000000000000e03f026f6b000000000000e03f",
	"0000000000000000333333333333c33f000006000101147b14ae47e17a843f80e0aaedd8b6cd8423",
	"0402000000000000000000000000000000000000000000003e400000000000000000000000000000",
	"00000102056c65616b7901147b14ae47e17a843f80e0aaedd8b6cd84230402000000000000000000",
	"00000000a09f400000000000003e400000000000d0a340000000000000d0a3400000000000c07240",
	"0100000bd7a3703d0ad73f026f6b01147b14ae47e17a843f80e0aaedd8b6cd842304020000000000",
	"0000000000000000408f400000000000003e400000000000408f40000000000000408f4000000000",
	"00c0724001000000000000000000000103637075147b14ae47e17a843ffca9f1d24d62403f040201",
	"333333333333c33f059a9999999999c93f000000000000f83f000000000000000000000000000000",
	"0000000806000001333333333333c33f059a9999999999c93f000000000000f83f0102056c65616b",
	"79000000000000e03f026f6b000000000000e03f0000000000000000333333333333c33f00000600",
	"0101147b14ae47e17a843f80e0aaedd8b6cd842304020000000000000000000000000000f03f0000",
	"000000003e40000000000000f03f000000000000f03f0102056c65616b7901147b14ae47e17a843f",
	"80e0aaedd8b6cd842304020000000000000000fca9f1d24d62503f0000000000003e40fda9f1d24d",
	"62503f00343333333333d33f0000000000c072400100000bd7a3703d0ac73f026f6b01147b14ae47",
	"e17a843f80e0aaedd8b6cd842304020000000000000000fca9f1d24d62503f0000000000003e40fd",
	"a9f1d24d62503f00343333333333d33f0000000000c072400100000bd7a3703d0ac73f0107746872",
	"65616473147b14ae47e17a843f0000000000000000040200333333333333c33f059a9999999999c9",
	"3f000000000000f83f0000000000000000000000000000000000000806000001333333333333c33f",
	"059a9999999999c93f000000000000f83f0102056c65616b79000000000000e03f026f6b00000000",
	"0000e03f0000000000000000333333333333c33f000006000101147b14ae47e17a843f0000000000",
	"0000000000000002056c65616b7901147b14ae47e17a843f80e0aaedd8b6cd842304020000000000",
	"00000000000000000000400000000000003e40000000000000004000000000000000004000000000",
	"00c072400100000000000000000000026f6b01147b14ae47e17a843f80e0aaedd8b6cd8423040200",
	"0000000000000000000000000000400000000000003e400000000000000040000000000000000040",
	"0000000000c07240010000000000000000000001076c6174656e6379147b14ae47e17a843ffca9f1",
	"d24d62403f040201333333333333c33f059a9999999999c93f000000000000f83f00000000000000",
	"00000000000000000000000806000001333333333333c33f059a9999999999c93f000000000000f8",
	"3f0102056c65616b79000000000000e03f026f6b000000000000e03f000000000000000033333333",
	"3333c33f000006000101147b14ae47e17a843f00000000000000000000000002056c65616b790114",
	"7b14ae47e17a843f80e0aaedd8b6cd84230402000000000000000000000000000000000000000000",
	"003e4000000000000000000000000000000000000000000000c07240010000000000000000000002",
	"6f6b01147b14ae47e17a843f80e0aaedd8b6cd842304020000000000000000000000000000000000",
	"00000000003e4000000000000000000000000000000000000000000000c072400100000000000000",
	"000000010768616e646c6573147b14ae47e17a843f0000000000000000040200333333333333c33f",
	"059a9999999999c93f000000000000f83f0000000000000000000000000000000000000806000001",
	"333333333333c33f059a9999999999c93f000000000000f83f0102056c65616b79000000000000e0",
	"3f026f6b000000000000e03f0000000000000000333333333333c33f000006000101147b14ae47e1",
	"7a843f00000000000000000000000002056c65616b7901147b14ae47e17a843f80e0aaedd8b6cd84",
	"230402000000000000000000000000000000000000000000003e4000000000000000000000000000",
	"000000000000000000c072400100000000000000000000026f6b01147b14ae47e17a843f80e0aaed",
	"d8b6cd84230402000000000000000000000000000000000000000000003e40000000000000000000",
	"00000000000000000000000000c0724001000000000000000000000000",
}

func FuzzAggregatorSnapshot(f *testing.F) {
	seed := New(Config{Detect: testDetect()})
	seed.Expect("node1", "node2")
	feedSnap(seed, []string{"node1", "node2"}, map[string]int64{"node1": 2048}, 1, 6)
	f.Add(seed.Snapshot())
	f.Add(New(Config{Detect: testDetect()}).Snapshot())

	f.Fuzz(func(t *testing.T, data []byte) {
		a := New(Config{Detect: testDetect()})
		if err := a.Restore(data); err != nil {
			return
		}
		// Accepted snapshots must be canonical and leave a servable plane.
		if !bytes.Equal(a.Snapshot(), data) {
			t.Fatal("accepted snapshot is not canonical")
		}
		t0 := time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)
		for _, ns := range a.Nodes() {
			for i := int64(1); i <= 2; i++ {
				a.Ingest(syntheticRound(ns.Node, ns.Rounds+i, t0.Add(time.Duration(i)*30*time.Second), 0))
			}
		}
		a.Snapshot()
	})
}

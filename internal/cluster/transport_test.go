package cluster

import (
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// feedCluster publishes `rounds` synchronized rounds for every node over
// its own transport: per round, the nodes publish concurrently (arbitrary
// cross-node interleaving, which the epoch fold must absorb), and the
// next round starts only after the aggregator has ingested the current
// one — nodes sample at the same cadence in a real cluster, they do not
// run minutes ahead of each other.
func feedCluster(t *testing.T, agg *Aggregator, trs map[string]Transport, leaks map[string]int64, rounds int64) {
	t.Helper()
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for seq := int64(1); seq <= rounds; seq++ {
		at := t0.Add(time.Duration(seq) * 30 * time.Second)
		var wg sync.WaitGroup
		for node, tr := range trs {
			wg.Add(1)
			go func(node string, tr Transport) {
				defer wg.Done()
				if err := tr.Publish(syntheticRound(node, seq, at, leaks[node])); err != nil {
					t.Errorf("publish %s/%d: %v", node, seq, err)
				}
			}(node, tr)
		}
		wg.Wait()
		waitRounds(t, agg, int64(len(trs))*seq)
	}
}

// waitRounds blocks until the aggregator has ingested n rounds (wire
// delivery is asynchronous) or the deadline passes.
func waitRounds(t *testing.T, a *Aggregator, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.TotalRounds() < n {
		if time.Now().After(deadline) {
			t.Fatalf("aggregator ingested %d/%d rounds before deadline", a.TotalRounds(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// clusterVerdictsOf strips the transport-dependent fields (times) from a
// report for comparison.
func clusterVerdictsOf(rep *ClusterReport) any {
	if rep == nil {
		return nil
	}
	c := *rep
	c.Time = time.Time{}
	return c
}

// TestWireAndInProcProduceIdenticalVerdicts runs the same three-node
// round set through the in-process transport and through both wire
// codecs (gob and binary) over net pipes with concurrent per-node
// publishers, and requires byte-identical cluster and per-node verdicts:
// the epoch fold must absorb arbitrary cross-node interleaving, and the
// codec choice must be invisible to detection.
func TestWireAndInProcProduceIdenticalVerdicts(t *testing.T) {
	nodes := []string{"node1", "node2", "node3"}
	leaks := map[string]int64{"node1": 0, "node2": 4096, "node3": 0}
	const rounds = 20

	inproc := New(Config{Detect: testDetect()})
	inproc.Expect(nodes...)
	tr := NewInProc(inproc)
	// Interleave in engine order: all nodes publish round k before k+1.
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for seq := int64(1); seq <= rounds; seq++ {
		for _, n := range nodes {
			if err := tr.Publish(syntheticRound(n, seq, t0.Add(time.Duration(seq)*30*time.Second), leaks[n])); err != nil {
				t.Fatal(err)
			}
		}
	}

	for _, codec := range []string{"gob", "binary"} {
		t.Run(codec, func(t *testing.T) {
			wired := New(Config{Detect: testDetect()})
			wired.Expect(nodes...)
			trs := make(map[string]Transport, len(nodes))
			for _, n := range nodes {
				client, server := net.Pipe()
				if codec == "gob" {
					go func() { _ = wired.ServeConn(server) }()
					w := NewWire(client)
					defer w.Close()
					trs[n] = w
				} else {
					go func() { _ = wired.ServeBinaryConn(server) }()
					w := NewBinaryWire(client)
					defer w.Close()
					trs[n] = w
				}
			}
			feedCluster(t, wired, trs, leaks, rounds)

			for _, res := range core.DetectorResources {
				a, b := clusterVerdictsOf(inproc.Report(res)), clusterVerdictsOf(wired.Report(res))
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s cluster reports differ:\ninproc: %+v\nwire:   %+v", res, a, b)
				}
			}
			// Per-node verdict streams must agree too.
			for _, n := range nodes {
				for _, res := range core.DetectorResources {
					ra, rb := inproc.NodeReport(n, res), wired.NodeReport(n, res)
					if (ra == nil) != (rb == nil) {
						t.Fatalf("%s/%s: one transport missing a report", n, res)
					}
					if ra == nil {
						continue
					}
					va, vb := ra.Components, rb.Components
					if !reflect.DeepEqual(va, vb) {
						t.Fatalf("%s/%s verdicts differ:\ninproc: %+v\nwire:   %+v", n, res, va, vb)
					}
				}
			}
			// And the wire run must still name the sick pair.
			top, ok := wired.Report(core.ResourceMemory).Top()
			if !ok || top.Pair() != "node2/leaky" {
				t.Fatalf("wire top = %+v", top)
			}
		})
	}
}

// TestBinaryWireOverTCP exercises the binary codec on a real socket: an
// aggregator serving a TCP listener with ServeBinary, three dialed node
// connections.
func TestBinaryWireOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer ln.Close()

	agg := New(Config{Detect: testDetect()})
	nodes := []string{"node1", "node2", "node3"}
	agg.Expect(nodes...)
	go agg.ServeBinary(ln)

	const rounds = 12
	trs := make(map[string]Transport, len(nodes))
	for _, n := range nodes {
		w, err := DialBinaryWire("tcp", ln.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer w.Close()
		trs[n] = w
	}
	feedCluster(t, agg, trs, map[string]int64{"node1": 4096, "node2": 4096, "node3": 4096}, rounds)

	rep := agg.Report(core.ResourceMemory)
	top, ok := rep.Top()
	if !ok || top.Component != "leaky" || !top.ClusterWide {
		t.Fatalf("binary TCP cluster verdict wrong: %v", rep)
	}
}

// TestWireOverTCP exercises the real-socket path end to end: an
// aggregator serving a TCP listener, three dialed node connections.
func TestWireOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer ln.Close()

	agg := New(Config{Detect: testDetect()})
	nodes := []string{"node1", "node2", "node3"}
	agg.Expect(nodes...)
	go agg.Serve(ln)

	const rounds = 12
	trs := make(map[string]Transport, len(nodes))
	for _, n := range nodes {
		w, err := DialWire("tcp", ln.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer w.Close()
		trs[n] = w
	}
	feedCluster(t, agg, trs, map[string]int64{"node1": 4096, "node2": 4096, "node3": 4096}, rounds)

	rep := agg.Report(core.ResourceMemory)
	top, ok := rep.Top()
	if !ok || top.Component != "leaky" || !top.ClusterWide {
		t.Fatalf("TCP cluster verdict wrong: %v", rep)
	}
}

func TestForwarderShipsCollectorRounds(t *testing.T) {
	agg := New(Config{Detect: testDetect()})
	agg.Expect("nodeX")
	fw := NewForwarder("nodeX", NewInProc(agg))
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		fw.ObserveSample(t0.Add(time.Duration(i)*30*time.Second), []core.ComponentSample{
			{Component: "c", Size: int64(1000 + i), SizeOK: true, Usage: int64(10 * i)},
		})
	}
	if fw.Rounds() != 5 || fw.Errors() != 0 {
		t.Fatalf("rounds=%d errs=%d", fw.Rounds(), fw.Errors())
	}
	if agg.TotalRounds() != 5 {
		t.Fatalf("aggregator saw %d rounds", agg.TotalRounds())
	}
	var status NodeStatus
	for _, s := range agg.Nodes() {
		if s.Node == "nodeX" {
			status = s
		}
	}
	if status.Rounds != 5 {
		t.Fatalf("node status %+v", status)
	}
}

func TestTransportClosedPublishFails(t *testing.T) {
	agg := New(Config{})
	p := NewInProc(agg)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Publish(Round{Node: "n", Seq: 1}); err == nil {
		t.Fatal("publish after close succeeded")
	}

	client, server := net.Pipe()
	done := make(chan struct{})
	go func() { _ = agg.ServeConn(server); close(done) }()
	w := NewWire(client)
	if err := w.Publish(Round{Node: "n", Seq: 1, Time: time.Unix(0, 0)}); err != nil {
		t.Fatalf("publish on open pipe: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(Round{Node: "n", Seq: 2}); err == nil {
		t.Fatal("publish after close succeeded")
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("server loop did not exit on close")
	}
}

package cluster

import (
	"errors"
	"fmt"

	"repro/internal/jmx"
)

// AggregatorName returns the aggregator's JMX object name.
func AggregatorName() jmx.ObjectName {
	return jmx.MustObjectName("aging:type=Aggregator")
}

// Bean exposes the aggregator over JMX, so the HTTP protocol adapter and
// the agingmon front-end reach the cluster plane the same way they reach
// a single node's manager.
func (a *Aggregator) Bean() *jmx.Bean {
	return jmx.NewBean("Cluster aggregator: merged per-node sampling rounds, quorum/outlier aging verdicts").
		Attr("Nodes", "cluster membership with per-node status", func() any { return a.Nodes() }).
		Attr("Epoch", "latest completed cluster epoch", func() any { return a.Epoch() }).
		Attr("TotalRounds", "rounds ingested across all nodes", func() any { return a.TotalRounds() }).
		Attr("ShedRounds", "rounds shed by the ingest admission gate under overload", func() any { return a.ShedRounds() }).
		Attr("DroppedNotifications", "cluster-alarm notifications dropped at the bounded pending queue", func() any { return a.DroppedNotifications() }).
		Attr("FoldLatency", "verdict latency: wall nanoseconds from epoch completion to published reports", func() any {
			last, max := a.FoldLatency()
			return map[string]int64{"LastNanos": last.Nanoseconds(), "MaxNanos": max.Nanoseconds()}
		}).
		Op("ClusterReport", "latest cluster verdict report for a resource", func(args ...any) (any, error) {
			resource, err := oneString(args)
			if err != nil {
				return nil, err
			}
			rep := a.Report(resource)
			if rep == nil {
				return nil, fmt.Errorf("cluster: no completed epoch yet for %q", resource)
			}
			return rep, nil
		}).
		Op("NodeVerdicts", "a node's latest per-node detection report for a resource", func(args ...any) (any, error) {
			node, resource, err := twoStrings(args)
			if err != nil {
				return nil, err
			}
			rep := a.NodeReport(node, resource)
			if rep == nil {
				return nil, fmt.Errorf("cluster: no report for node %q on %q", node, resource)
			}
			return rep, nil
		}).
		Op("ClusterLive", "rank (node, component) pairs with the live strategy", func(args ...any) (any, error) {
			resource, err := oneString(args)
			if err != nil {
				return nil, err
			}
			return a.LiveRank(resource), nil
		}).
		Op("Leave", "mark a node as having left the cluster", func(args ...any) (any, error) {
			node, err := oneString(args)
			if err != nil {
				return nil, err
			}
			a.Leave(node)
			return true, nil
		}).
		Op("ResetNode", "clear a node's detection history after a rejuvenation", func(args ...any) (any, error) {
			node, err := oneString(args)
			if err != nil {
				return nil, err
			}
			return a.ResetNode(node), nil
		})
}

func oneString(args []any) (string, error) {
	if len(args) != 1 {
		return "", errors.New("cluster: want exactly one string argument")
	}
	s, ok := args[0].(string)
	if !ok {
		return "", errors.New("cluster: want a string argument")
	}
	return s, nil
}

func twoStrings(args []any) (string, string, error) {
	if len(args) != 2 {
		return "", "", errors.New("cluster: want exactly two string arguments")
	}
	a, ok1 := args[0].(string)
	b, ok2 := args[1].(string)
	if !ok1 || !ok2 {
		return "", "", errors.New("cluster: want string arguments")
	}
	return a, b, nil
}

package cluster

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
)

// This file implements the hand-rolled binary wire codec for sampling
// rounds — the high-density alternative to the gob transport. The format
// is specified in docs/architecture.md ("Binary wire format"); the golden
// test in codec_test.go pins the bytes so the format cannot drift
// silently between versions, and FuzzBinaryCodec exercises the round-trip
// over arbitrary rounds.
//
// Design, in one paragraph: a stream starts with a 4-byte magic+version;
// rounds travel in length-prefixed BATCH frames — a uvarint round count,
// then that many rounds back to back, one per frame unless the publisher
// batches (see BinaryWire.SetBatch). Strings (node and component
// names) are interned per stream — sent once, then referenced by dense
// id — and every numeric field is delta-encoded against the previous
// round of the same node, to second order (delta-of-delta, Gorilla's
// timestamp trick): a steady-state monitoring stream advances every field
// at a constant rate — sequence numbers by one, sampling instants by the
// interval, cumulative consumption counters by their per-round growth —
// so the residual after subtracting the previous round's delta is
// (near-)zero and its zigzag varint is one byte where the raw value costs
// eight. CPU seconds (a float64) are quantised to integer nanoseconds and
// ride the same double-delta chain whenever the quantisation is bit-exact
// — which it is for every duration-derived consumption figure — with a
// per-sample flag falling back to XOR-against-previous raw bits for
// floats outside the nanosecond grid, so the codec stays lossless over
// the full float64 domain. A steady-state round of N samples costs
// roughly 4 + 7·N bytes on the wire, an order of magnitude under the
// equivalent gob frame — and both encoder and decoder reuse their
// buffers, so neither end allocates at steady state.
//
// The codec deliberately carries less generality than gob: sampling
// instants must be within the int64-nanosecond Unix range (years
// 1678–2262; monitoring timestamps always are), and decoded times carry
// the UTC location. Verdicts are unaffected — the aggregator consumes
// instants, not locations — and TestClusterTransportParity holds the gob
// and binary transports to byte-identical verdicts.

// wireMagic opens every binary round stream: three identifying bytes and
// one format version byte. Bump the version on any incompatible change;
// the decoder refuses streams it does not speak so cross-version nodes
// fail loudly at connect time, not subtly at fold time.
//
// Version history: 1 — initial first-order delta/XOR format; 2 — all
// integer chains move to second-order deltas (delta-of-delta), and CPU
// seconds ride the same chain as zigzag-encoded nanosecond residuals when
// the quantisation is bit-exact (flagCPUNanos), falling back to the XOR'd
// raw bits otherwise; 3 — samples carry the live handle count (a
// double-delta int64 chain) and cumulative latency seconds (quantised
// nanoseconds under flagLatNanos, XOR fallback otherwise, exactly the CPU
// scheme) for the non-heap aging indicators; 4 — every frame is a BATCH
// frame: the payload opens with a uvarint round count and carries that
// many encoded rounds back to back, so a publisher flushing every K
// rounds amortises the frame prefix and the peer's read across the batch
// at fleet fan-in (an unbatched publisher ships batches of one); 5 —
// every frame payload opens with a one-byte frame type discriminating
// BATCH round frames from the CONTROL command/ack frames of the actuation
// plane (control.go), which makes the stream bidirectional: rounds and
// acks flow node→aggregator, drain/rejuvenate/re-admit commands flow
// aggregator→node on the same connection; 6 — adds the SNAPSHOT frame
// kind (standby.go): an active aggregator periodically ships its (and
// its rejuvenation controller's) durable-state snapshot to a warm
// standby, which can be promoted mid-epoch when the active dies.
// SNAPSHOT frames travel only on dedicated standby connections, never on
// node round streams.
var wireMagic = [4]byte{'A', 'G', 'M', 6}

// Frame types: the first byte of every v6 frame payload.
const (
	// frameBatch carries sampling rounds (uvarint count + rounds).
	frameBatch = 0x00
	// frameControl carries one actuation command (aggregator → node).
	frameControl = 0x01
	// frameControlAck carries one command acknowledgement (node →
	// aggregator).
	frameControlAck = 0x02
	// frameSnapshot carries one durable-state snapshot (active
	// aggregator → warm standby; see standby.go).
	frameSnapshot = 0x03
)

// prevSample is the per-component delta-encoding state: the previous
// round's values for one component on one node, plus the previous deltas
// the second-order encoding subtracts.
type prevSample struct {
	size     int64
	usage    int64
	threads  int64
	handles  int64
	delta    int64
	cpuBits  uint64
	cpuNanos int64
	latBits  uint64
	latNanos int64

	dSize     int64
	dUsage    int64
	dThreads  int64
	dHandles  int64
	dDelta    int64
	dCPUNanos int64
	dLatNanos int64
}

// step advances one double-delta chain: given the new value, it returns
// the second-order residual to encode and updates value and delta state.
// The decoder runs the inverse (unstep). Overflow wraps identically on
// both ends, so the chain stays lossless over the full int64 domain.
func step(value, delta *int64, v int64) int64 {
	d := v - *value
	res := d - *delta
	*value, *delta = v, d
	return res
}

// unstep is step's decoding inverse: it folds a received residual into
// the chain and returns the reconstructed value.
func unstep(value, delta *int64, res int64) int64 {
	*delta += res
	*value += *delta
	return *value
}

// cpuNanosBound bounds the quantisable CPU range: beyond it v*1e9 cannot
// be held in an int64 (≈292 years of CPU time, far past any monitoring
// horizon — such values take the raw-bits fallback).
const cpuNanosBound = 9.0e18

const nanosPerSecond = int64(1e9)

// cpuFromNanos reconstructs CPU seconds from integer nanoseconds with
// exactly time.Duration.Seconds' arithmetic (split at the second, divide
// the remainder) — the computation every live consumption figure was
// born from, so quantise-then-reconstruct reproduces the original float
// bit for bit.
func cpuFromNanos(n int64) float64 {
	return float64(n/nanosPerSecond) + float64(n%nanosPerSecond)/1e9
}

// cpuNanos quantises CPU seconds to integer nanoseconds, reporting
// whether the round trip is bit-exact. Real consumption figures are
// duration-derived (Duration.Seconds), so the check passes for
// essentially every live sample and the mantissa-dense XOR fallback is
// reserved for adversarial inputs (fuzzing, hand-built rounds). Both
// codec ends derive the delta state through this same function, so a
// fallback sample never desynchronises the nanosecond chain.
func cpuNanos(v float64) (int64, bool) {
	scaled := v * 1e9
	if !(scaled > -cpuNanosBound && scaled < cpuNanosBound) { // NaN and ±Inf fail too
		return 0, false
	}
	n := int64(math.Round(scaled))
	if math.Float64bits(cpuFromNanos(n)) != math.Float64bits(v) {
		return 0, false
	}
	return n, true
}

// nodeCodecState is one node's delta-encoding state on a stream. One
// connection may multiplex several nodes' forwarders, so the state is
// keyed by interned node id on both ends.
type nodeCodecState struct {
	prevSeq  int64
	prevTime int64
	dSeq     int64
	dTime    int64
	prev     map[uint32]*prevSample // interned component id -> last values
}

func newNodeCodecState() *nodeCodecState {
	return &nodeCodecState{prev: make(map[uint32]*prevSample)}
}

// sample flag bits.
const (
	flagSizeOK   = 1 << 0
	flagCPUNanos = 1 << 1 // CPU field is a zigzag nanosecond delta, not XOR'd bits
	flagLatNanos = 1 << 2 // latency field is a zigzag nanosecond delta, not XOR'd bits
)

// BinaryEncoder encodes rounds into the binary wire format. It owns the
// stream-level interning and delta state, so one encoder serves exactly
// one stream; the batch buffer is reused across frames. Not safe for
// concurrent use (the BinaryWire transport serialises on its publish
// mutex).
//
// Rounds accumulate with BufferRound and leave as one BATCH frame on
// FlushFrame; AppendRound is the unbatched shorthand (buffer one round,
// flush immediately — a batch of one). Buffering encodes eagerly: the
// round's borrowed Samples are consumed before BufferRound returns, so
// the publisher's borrow contract holds however long the batch lingers.
type BinaryEncoder struct {
	started bool
	names   map[string]uint32
	nodes   map[uint32]*nodeCodecState
	batch   []byte // encoded rounds of the pending frame
	pending int    // rounds in batch
}

// NewBinaryEncoder creates an encoder for one fresh stream.
func NewBinaryEncoder() *BinaryEncoder {
	return &BinaryEncoder{
		names: make(map[string]uint32),
		nodes: make(map[uint32]*nodeCodecState),
	}
}

// appendUvarint/appendZigzag are the primitive writers.
func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// appendString writes a string reference: uvarint(id+1) for an interned
// name, or 0 followed by the raw bytes for a first sighting (which
// implicitly assigns the next dense id on both ends).
func (e *BinaryEncoder) appendString(dst []byte, s string) ([]byte, uint32) {
	if id, ok := e.names[s]; ok {
		return appendUvarint(dst, uint64(id)+1), id
	}
	id := uint32(len(e.names))
	e.names[s] = id
	dst = appendUvarint(dst, 0)
	dst = appendUvarint(dst, uint64(len(s)))
	dst = append(dst, s...)
	return dst, id
}

// AppendRound appends one single-round frame (preceded by the stream
// header on the first call) to dst and returns the extended slice — the
// unbatched path, equivalent to BufferRound followed by FlushFrame.
func (e *BinaryEncoder) AppendRound(dst []byte, r Round) []byte {
	e.BufferRound(r)
	return e.FlushFrame(dst)
}

// PendingRounds reports how many buffered rounds the next FlushFrame
// will ship.
func (e *BinaryEncoder) PendingRounds() int { return e.pending }

// BufferRound encodes one round onto the pending BATCH frame. The
// round's Samples are fully consumed before it returns.
func (e *BinaryEncoder) BufferRound(r Round) {
	p := e.batch
	var nodeID uint32
	p, nodeID = e.appendString(p, r.Node)
	st := e.nodes[nodeID]
	if st == nil {
		st = newNodeCodecState()
		e.nodes[nodeID] = st
	}
	p = appendZigzag(p, step(&st.prevSeq, &st.dSeq, r.Seq))
	p = appendZigzag(p, step(&st.prevTime, &st.dTime, r.Time.UnixNano()))
	p = appendUvarint(p, uint64(len(r.Samples)))
	for _, s := range r.Samples {
		var compID uint32
		p, compID = e.appendString(p, s.Component)
		prev := st.prev[compID]
		if prev == nil {
			prev = &prevSample{}
			st.prev[compID] = prev
		}
		var flags byte
		if s.SizeOK {
			flags |= flagSizeOK
		}
		nanos, quantised := cpuNanos(s.CPUSeconds)
		if quantised {
			flags |= flagCPUNanos
		}
		latN, latQuantised := cpuNanos(s.LatencySeconds)
		if latQuantised {
			flags |= flagLatNanos
		}
		p = append(p, flags)
		p = appendZigzag(p, step(&prev.size, &prev.dSize, s.Size))
		p = appendZigzag(p, step(&prev.usage, &prev.dUsage, s.Usage))
		p = appendZigzag(p, step(&prev.threads, &prev.dThreads, s.Threads))
		p = appendZigzag(p, step(&prev.handles, &prev.dHandles, s.Handles))
		p = appendZigzag(p, step(&prev.delta, &prev.dDelta, s.Delta))
		cpuBits := math.Float64bits(s.CPUSeconds)
		if quantised {
			// Steady-state CPU advances by a near-constant per-round
			// nanosecond delta: the second-order residual is a one-byte
			// zigzag where the XOR of two entropy-dense mantissas costs
			// 8-10 bytes.
			p = appendZigzag(p, step(&prev.cpuNanos, &prev.dCPUNanos, nanos))
		} else {
			p = appendUvarint(p, cpuBits^prev.cpuBits)
			// Reset the nanosecond chain at the (identically derived)
			// fallback base so a later quantised sample deltas against the
			// same state on both ends.
			prev.cpuNanos, _ = cpuNanos(s.CPUSeconds)
			prev.dCPUNanos = 0
		}
		prev.cpuBits = cpuBits
		latBits := math.Float64bits(s.LatencySeconds)
		if latQuantised {
			p = appendZigzag(p, step(&prev.latNanos, &prev.dLatNanos, latN))
		} else {
			p = appendUvarint(p, latBits^prev.latBits)
			prev.latNanos, _ = cpuNanos(s.LatencySeconds)
			prev.dLatNanos = 0
		}
		prev.latBits = latBits
	}
	e.batch = p
	e.pending++
}

// FlushFrame appends the pending BATCH frame — frame-type byte, uvarint
// round count, then the buffered rounds back to back, the whole payload
// length-prefixed and preceded by the stream header on the first flush —
// to dst and returns the extended slice. With nothing buffered it returns
// dst unchanged (no empty frames on the wire). The batch buffer is reused
// by subsequent rounds.
func (e *BinaryEncoder) FlushFrame(dst []byte) []byte {
	if e.pending == 0 {
		return dst
	}
	if !e.started {
		dst = append(dst, wireMagic[:]...)
		e.started = true
	}
	var cnt [binary.MaxVarintLen64]byte
	cn := binary.PutUvarint(cnt[:], uint64(e.pending))
	dst = appendUvarint(dst, uint64(1+cn+len(e.batch)))
	dst = append(dst, frameBatch)
	dst = append(dst, cnt[:cn]...)
	dst = append(dst, e.batch...)
	e.batch = e.batch[:0]
	e.pending = 0
	return dst
}

// byteParser is a bounds-checked cursor over one frame payload.
type byteParser struct {
	b []byte
	i int
}

func (p *byteParser) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.i:])
	if n <= 0 {
		return 0, fmt.Errorf("cluster: truncated uvarint at offset %d", p.i)
	}
	p.i += n
	return v, nil
}

func (p *byteParser) zigzag() (int64, error) {
	v, n := binary.Varint(p.b[p.i:])
	if n <= 0 {
		return 0, fmt.Errorf("cluster: truncated varint at offset %d", p.i)
	}
	p.i += n
	return v, nil
}

func (p *byteParser) byte() (byte, error) {
	if p.i >= len(p.b) {
		return 0, fmt.Errorf("cluster: truncated frame at offset %d", p.i)
	}
	b := p.b[p.i]
	p.i++
	return b, nil
}

func (p *byteParser) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(p.b)-p.i) {
		return nil, fmt.Errorf("cluster: string of %d bytes overruns frame", n)
	}
	out := p.b[p.i : p.i+int(n)]
	p.i += int(n)
	return out, nil
}

// BinaryDecoder decodes frames produced by a BinaryEncoder over one
// stream. The returned Round's Samples slice is owned by the decoder and
// valid until the next Decode — exactly the borrow contract
// Aggregator.Ingest honours by copying what it retains. Not safe for
// concurrent use.
type BinaryDecoder struct {
	names   []string
	nodes   map[uint32]*nodeCodecState
	samples []core.ComponentSample
}

// NewBinaryDecoder creates a decoder for one fresh stream.
func NewBinaryDecoder() *BinaryDecoder {
	return &BinaryDecoder{nodes: make(map[uint32]*nodeCodecState)}
}

// readString resolves a string reference, interning first sightings.
func (d *BinaryDecoder) readString(p *byteParser) (string, uint32, error) {
	ref, err := p.uvarint()
	if err != nil {
		return "", 0, err
	}
	if ref == 0 {
		n, err := p.uvarint()
		if err != nil {
			return "", 0, err
		}
		raw, err := p.bytes(n)
		if err != nil {
			return "", 0, err
		}
		id := uint32(len(d.names))
		d.names = append(d.names, string(raw))
		return d.names[id], id, nil
	}
	id := ref - 1
	if id >= uint64(len(d.names)) {
		return "", 0, fmt.Errorf("cluster: dangling string reference %d", id)
	}
	return d.names[id], uint32(id), nil
}

// DecodeFrame decodes one frame payload (without its length prefix)
// carrying exactly one round — the unbatched shorthand for DecodeBatch,
// for peers that flush every round. The result's Samples slice is reused
// by the next decode.
func (d *BinaryDecoder) DecodeFrame(payload []byte) (Round, error) {
	var out Round
	got := false
	err := d.DecodeBatch(payload, func(r Round) error {
		if got {
			return fmt.Errorf("cluster: BATCH frame carries several rounds; decode with DecodeBatch")
		}
		out, got = r, true
		return nil
	})
	if err == nil && !got {
		err = fmt.Errorf("cluster: empty BATCH frame")
	}
	return out, err
}

// DecodeBatch decodes one BATCH frame payload (without its length
// prefix, including its leading frame-type byte), calling emit once per
// round in publish order. Each round's Samples slice is the decoder's
// reused buffer, valid only until emit returns — exactly the borrow
// contract Aggregator.Ingest honours by copying what it retains. A
// non-nil error from emit aborts the batch.
func (d *BinaryDecoder) DecodeBatch(payload []byte, emit func(Round) error) error {
	if len(payload) == 0 {
		return fmt.Errorf("cluster: empty frame")
	}
	if payload[0] != frameBatch {
		return fmt.Errorf("cluster: frame type %d is not a BATCH frame", payload[0])
	}
	p := &byteParser{b: payload, i: 1}
	count, err := p.uvarint()
	if err != nil {
		return err
	}
	if count == 0 || count > uint64(len(payload)) {
		// Empty batches are never sent, and a round costs well over one
		// byte: either way the count is corruption, not a big batch.
		return fmt.Errorf("cluster: BATCH round count %d is corrupt for a %d-byte frame", count, len(payload))
	}
	for i := uint64(0); i < count; i++ {
		r, err := d.decodeRound(p)
		if err != nil {
			return err
		}
		if err := emit(r); err != nil {
			return err
		}
	}
	if p.i != len(payload) {
		return fmt.Errorf("cluster: %d trailing bytes in frame", len(payload)-p.i)
	}
	return nil
}

// decodeRound decodes one round at the parser's cursor. The round's
// Samples slice is reused by the next call.
func (d *BinaryDecoder) decodeRound(p *byteParser) (Round, error) {
	var r Round
	node, nodeID, err := d.readString(p)
	if err != nil {
		return r, err
	}
	r.Node = node
	st := d.nodes[nodeID]
	if st == nil {
		st = newNodeCodecState()
		d.nodes[nodeID] = st
	}
	dseq, err := p.zigzag()
	if err != nil {
		return r, err
	}
	r.Seq = unstep(&st.prevSeq, &st.dSeq, dseq)
	dt, err := p.zigzag()
	if err != nil {
		return r, err
	}
	r.Time = time.Unix(0, unstep(&st.prevTime, &st.dTime, dt)).UTC()
	n, err := p.uvarint()
	if err != nil {
		return r, err
	}
	if n > uint64(len(p.b)-p.i) {
		// Each sample needs at least a handful of bytes; a count larger
		// than the frame's remaining bytes is corruption, not a big round.
		return r, fmt.Errorf("cluster: sample count %d exceeds frame size", n)
	}
	samples := d.samples[:0]
	for i := uint64(0); i < n; i++ {
		comp, compID, err := d.readString(p)
		if err != nil {
			return r, err
		}
		prev := st.prev[compID]
		if prev == nil {
			prev = &prevSample{}
			st.prev[compID] = prev
		}
		flags, err := p.byte()
		if err != nil {
			return r, err
		}
		ds, err := p.zigzag()
		if err != nil {
			return r, err
		}
		du, err := p.zigzag()
		if err != nil {
			return r, err
		}
		dth, err := p.zigzag()
		if err != nil {
			return r, err
		}
		dh, err := p.zigzag()
		if err != nil {
			return r, err
		}
		dd, err := p.zigzag()
		if err != nil {
			return r, err
		}
		var cpu float64
		if flags&flagCPUNanos != 0 {
			dn, err := p.zigzag()
			if err != nil {
				return r, err
			}
			cpu = cpuFromNanos(unstep(&prev.cpuNanos, &prev.dCPUNanos, dn))
			prev.cpuBits = math.Float64bits(cpu)
		} else {
			cpuXor, err := p.uvarint()
			if err != nil {
				return r, err
			}
			prev.cpuBits ^= cpuXor
			cpu = math.Float64frombits(prev.cpuBits)
			// Mirror the encoder's state transition so a later quantised
			// sample deltas against the same nanosecond base on both ends.
			prev.cpuNanos, _ = cpuNanos(cpu)
			prev.dCPUNanos = 0
		}
		var lat float64
		if flags&flagLatNanos != 0 {
			dn, err := p.zigzag()
			if err != nil {
				return r, err
			}
			lat = cpuFromNanos(unstep(&prev.latNanos, &prev.dLatNanos, dn))
			prev.latBits = math.Float64bits(lat)
		} else {
			latXor, err := p.uvarint()
			if err != nil {
				return r, err
			}
			prev.latBits ^= latXor
			lat = math.Float64frombits(prev.latBits)
			prev.latNanos, _ = cpuNanos(lat)
			prev.dLatNanos = 0
		}
		samples = append(samples, core.ComponentSample{
			Component:      comp,
			Size:           unstep(&prev.size, &prev.dSize, ds),
			SizeOK:         flags&flagSizeOK != 0,
			Usage:          unstep(&prev.usage, &prev.dUsage, du),
			CPUSeconds:     cpu,
			Threads:        unstep(&prev.threads, &prev.dThreads, dth),
			Handles:        unstep(&prev.handles, &prev.dHandles, dh),
			LatencySeconds: lat,
			Delta:          unstep(&prev.delta, &prev.dDelta, dd),
		})
	}
	d.samples = samples
	r.Samples = samples
	return r, nil
}

// Warm-standby failover: surviving the monitor's own death.
//
// The aggregator is the cluster's single point of memory — per-node
// detector banks, epoch watermarks, rejuvenation state machines. The
// paper's argument for lightweight always-on instrumentation cuts both
// ways: the monitor must also survive its own failures, or the first
// aggregator crash erases exactly the slow-trend history the approach
// exists to accumulate. This file closes that gap with v6's SNAPSHOT
// frame: an active aggregator periodically encodes its durable state
// (snapshot.go) — and its rejuvenation controller's (internal/rejuv) —
// and ships both, atomically in one frame, to a warm standby. When the
// active dies, the standby restores the latest generation into a fresh
// plane and takes over mid-epoch; the controller then reconciles any
// actuation the dead aggregator left in flight (rejuv.ReconcileOrphans).
//
// The shipper rides the epoch-delivery goroutine (SubscribeEpochs): the
// fold stage is where state changes, so snapshotting there captures a
// consistent post-fold view, and the ingest hot path never sees a
// snapshot. Shipping is fail-stop like every other wire here: a failed
// write latches the shipper broken, and the operator (or the experiment
// harness) attaches a fresh one — snapshots are idempotent full states,
// so a re-attached shipper needs no catch-up protocol.

package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// StandbySnapshot is one shipped durable-state generation: the
// aggregator's snapshot and (optionally, length zero when absent) its
// rejuvenation controller's, paired atomically so the standby never
// promotes a torn aggregator/controller combination.
type StandbySnapshot struct {
	Generation uint64 // shipper-assigned, strictly increasing per stream
	Aggregator []byte
	Controller []byte
}

// AppendSnapshotFrame appends one length-prefixed SNAPSHOT frame to dst.
func AppendSnapshotFrame(dst []byte, s StandbySnapshot) []byte {
	n := 1 + binary.MaxVarintLen64 + // type + generation
		binary.MaxVarintLen64 + len(s.Aggregator) +
		binary.MaxVarintLen64 + len(s.Controller)
	p := make([]byte, 0, n)
	p = append(p, frameSnapshot)
	p = appendUvarint(p, s.Generation)
	p = appendUvarint(p, uint64(len(s.Aggregator)))
	p = append(p, s.Aggregator...)
	p = appendUvarint(p, uint64(len(s.Controller)))
	p = append(p, s.Controller...)
	dst = appendUvarint(dst, uint64(len(p)))
	return append(dst, p...)
}

// DecodeSnapshotFrame decodes one SNAPSHOT frame payload (without its
// length prefix, including the leading frame-type byte). The returned
// blobs alias payload; callers that retain them past the read loop's
// buffer reuse must copy.
func DecodeSnapshotFrame(payload []byte) (StandbySnapshot, error) {
	var s StandbySnapshot
	if len(payload) == 0 || payload[0] != frameSnapshot {
		return s, fmt.Errorf("cluster: not a SNAPSHOT frame")
	}
	p := &byteParser{b: payload, i: 1}
	var err error
	if s.Generation, err = p.uvarint(); err != nil {
		return s, err
	}
	n, err := p.uvarint()
	if err != nil {
		return s, err
	}
	if s.Aggregator, err = p.bytes(n); err != nil {
		return s, err
	}
	if n, err = p.uvarint(); err != nil {
		return s, err
	}
	if s.Controller, err = p.bytes(n); err != nil {
		return s, err
	}
	if p.i != len(payload) {
		return s, fmt.Errorf("cluster: %d trailing bytes in SNAPSHOT frame", len(payload)-p.i)
	}
	return s, nil
}

// Snapshotter is the durable-state surface a shipper bundles alongside
// the aggregator's — satisfied by *rejuv.Controller (which cluster
// cannot import: rejuv sits above it).
type Snapshotter interface {
	AppendSnapshot(dst []byte) []byte
}

// StandbyShipper periodically ships the active plane's snapshots over
// one connection to a StandbyReceiver. Wire it to the aggregator with
// SubscribeEpochs(shipper.ObserveEpoch): every EveryEpochs-th epoch
// event triggers a ship on the delivery goroutine, after the fold
// released its locks — never on the ingest path.
type StandbyShipper struct {
	agg   *Aggregator
	ctl   Snapshotter // optional; nil ships aggregator state only
	every int

	mu      sync.Mutex
	conn    net.Conn
	timeout time.Duration
	retry   RetryPolicy
	rng     uint64
	started bool
	broken  bool
	gen     uint64
	sinceOK int // epochs since the last ship
	payload []byte
	scratch []byte // one snapshot blob at a time, reused
	frame   []byte

	shipped atomic.Int64
	errs    atomic.Int64
}

// NewStandbyShipper creates a shipper for agg's state over conn, shipping
// every everyEpochs epochs (min 1). ctl may be nil.
func NewStandbyShipper(conn net.Conn, agg *Aggregator, ctl Snapshotter, everyEpochs int) *StandbyShipper {
	if everyEpochs < 1 {
		everyEpochs = 1
	}
	return &StandbyShipper{
		agg: agg, ctl: ctl, every: everyEpochs,
		conn: conn, timeout: DefaultWireTimeout,
	}
}

// SetTimeout overrides the per-ship write bound (0 disables it).
func (s *StandbyShipper) SetTimeout(d time.Duration) {
	s.mu.Lock()
	s.timeout = d
	s.mu.Unlock()
}

// SetRetry installs the transient-write retry policy.
func (s *StandbyShipper) SetRetry(p RetryPolicy) {
	s.mu.Lock()
	s.retry = p
	s.mu.Unlock()
}

// Shipped reports snapshot generations delivered to the connection.
func (s *StandbyShipper) Shipped() int64 { return s.shipped.Load() }

// Errors reports failed ship attempts (after the first, the shipper is
// latched broken and every ObserveEpoch tick counts one more).
func (s *StandbyShipper) Errors() int64 { return s.errs.Load() }

// ObserveEpoch counts epochs and ships on every-th one. Subscribe it
// after the consumers that advance state (the rejuvenation controller),
// so a shipped snapshot reflects the epoch it is stamped with.
func (s *StandbyShipper) ObserveEpoch(EpochEvent) {
	s.mu.Lock()
	s.sinceOK++
	due := s.sinceOK >= s.every
	if due {
		s.sinceOK = 0
	}
	s.mu.Unlock()
	if due {
		_ = s.Ship() // errors are latched and counted; epochs keep flowing
	}
}

// Ship captures and sends one snapshot generation now. Safe from the
// epoch-delivery goroutine (the aggregator's fold locks are free there);
// must not be called from inside Aggregator.Ingest or a fold.
func (s *StandbyShipper) Ship() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken {
		s.errs.Add(1)
		return errors.New("cluster: standby shipper broken by an earlier failed write")
	}

	s.gen++
	p := s.payload[:0]
	p = append(p, frameSnapshot)
	p = appendUvarint(p, s.gen)
	s.scratch = s.agg.AppendSnapshot(s.scratch[:0])
	p = appendUvarint(p, uint64(len(s.scratch)))
	p = append(p, s.scratch...)
	if s.ctl != nil {
		s.scratch = s.ctl.AppendSnapshot(s.scratch[:0])
		p = appendUvarint(p, uint64(len(s.scratch)))
		p = append(p, s.scratch...)
	} else {
		p = appendUvarint(p, 0)
	}
	s.payload = p

	f := s.frame[:0]
	if !s.started {
		f = append(f, wireMagic[:]...)
	}
	f = appendUvarint(f, uint64(len(p)))
	f = append(f, p...)
	s.frame = f

	if _, err := writeFrameRetry(s.conn, f, s.timeout, s.retry, &s.rng); err != nil {
		s.broken = true
		s.errs.Add(1)
		_ = s.conn.Close()
		return err
	}
	s.started = true
	s.shipped.Add(1)
	return nil
}

// Close closes the shipper's connection.
func (s *StandbyShipper) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.broken = true
	return s.conn.Close()
}

// StandbyReceiver is the warm standby's receiving end: it retains the
// latest snapshot generation, ready for promotion at any instant.
type StandbyReceiver struct {
	mu     sync.Mutex
	latest StandbySnapshot
	have   bool

	received atomic.Int64
}

// NewStandbyReceiver creates an empty receiver.
func NewStandbyReceiver() *StandbyReceiver { return &StandbyReceiver{} }

// Received reports snapshot generations accepted.
func (r *StandbyReceiver) Received() int64 { return r.received.Load() }

// Latest returns a copy of the most recent snapshot generation, and
// whether one has arrived yet. The copy is the caller's to keep — a
// promotion decided on it cannot be mutated by a later frame.
func (r *StandbyReceiver) Latest() (StandbySnapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.have {
		return StandbySnapshot{}, false
	}
	out := StandbySnapshot{
		Generation: r.latest.Generation,
		Aggregator: append([]byte(nil), r.latest.Aggregator...),
		Controller: append([]byte(nil), r.latest.Controller...),
	}
	return out, true
}

// Serve reads SNAPSHOT frames from conn until it closes, retaining the
// latest generation. It returns nil on a clean EOF and an error on a
// stream it does not speak or a corrupt or regressing frame (and then
// closes the connection). Run it on its own goroutine.
func (r *StandbyReceiver) Serve(conn net.Conn) (err error) {
	defer func() {
		if err != nil {
			_ = conn.Close()
		}
	}()
	br := bufio.NewReader(conn)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
			return nil
		}
		return err
	}
	if magic != wireMagic {
		return fmt.Errorf("cluster: not a snapshot stream (magic %x)", magic)
	}
	var payload []byte
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if n > maxBinaryFrame {
			return fmt.Errorf("cluster: snapshot frame of %d bytes exceeds limit", n)
		}
		if uint64(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		snap, err := DecodeSnapshotFrame(payload)
		if err != nil {
			return err
		}
		r.mu.Lock()
		if r.have && snap.Generation <= r.latest.Generation {
			r.mu.Unlock()
			return fmt.Errorf("cluster: snapshot generation regressed (%d after %d)",
				snap.Generation, r.latest.Generation)
		}
		// Copy out of the reused read buffer before retaining.
		r.latest = StandbySnapshot{
			Generation: snap.Generation,
			Aggregator: append(r.latest.Aggregator[:0], snap.Aggregator...),
			Controller: append(r.latest.Controller[:0], snap.Controller...),
		}
		r.have = true
		r.mu.Unlock()
		r.received.Add(1)
	}
}

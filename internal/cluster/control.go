// Control channel: the actuation direction of the cluster wire.
//
// Sampling rounds flow node → aggregator; closing the rejuvenation loop
// needs the opposite direction — the controller (internal/rejuv) sitting
// next to the aggregator must drain, micro-reboot and re-admit components
// on remote nodes. Codec v5 makes the binary stream bidirectional: the
// aggregator pushes CONTROL frames (one command each) down the same
// connection a node publishes rounds on, and the node answers with ACK
// frames interleaved between its BATCH frames. Control frames are
// stateless — no interning, no deltas — so they never interact with the
// round codec's per-stream state, and either side may drop one without
// desynchronising the stream.
//
// Routing is learned, not configured: ServeBinaryConn registers each node
// name it decodes rounds for against that connection, so a command to
// node N rides whatever connection N last published on. In-process nodes
// (InProc or gob transports, tests, the simulated cluster) register a
// ControlHandler directly with BindLocalControl; local handlers run
// synchronously on the sender's goroutine, which keeps single-process
// scenarios deterministic.
package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

// ControlKind enumerates the actuation commands.
type ControlKind uint8

// Control command kinds.
const (
	// ControlDrain tells a node it is being drained (advisory: the
	// balancer's drain state lives cluster-side; the node may shed
	// caches or refuse new local work).
	ControlDrain ControlKind = 1
	// ControlRejuvenate micro-reboots the named component on the node.
	ControlRejuvenate ControlKind = 2
	// ControlReadmit tells a node it is back in rotation at Weight.
	ControlReadmit ControlKind = 3
)

func (k ControlKind) String() string {
	switch k {
	case ControlDrain:
		return "drain"
	case ControlRejuvenate:
		return "rejuvenate"
	case ControlReadmit:
		return "readmit"
	default:
		return fmt.Sprintf("control(%d)", uint8(k))
	}
}

// ControlCommand is one actuation order, aggregator → node.
type ControlCommand struct {
	Seq       uint64 // correlates the ack; unique per aggregator
	Kind      ControlKind
	Node      string
	Component string // rejuvenate target; empty for drain/re-admit
	Weight    int64  // re-admit weight; 0 otherwise
}

// ControlAck is a node's answer to one command, node → aggregator.
type ControlAck struct {
	Seq   uint64
	Kind  ControlKind
	OK    bool
	Freed int64 // bytes released by a rejuvenation
	Err   string
}

// ControlHandler executes one command on a node and returns its ack (Seq
// and Kind are filled in by the plumbing).
type ControlHandler func(ControlCommand) ControlAck

// maxControlString bounds node/component/error strings in control
// frames; anything longer is corruption, not a long name.
const maxControlString = 4096

func appendControlString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func parseControlString(p *byteParser) (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxControlString {
		return "", fmt.Errorf("cluster: control string of %d bytes exceeds limit", n)
	}
	raw, err := p.bytes(n)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// AppendControlFrame appends one length-prefixed CONTROL frame to dst.
// Control frames carry no stream state, so they need no header and may
// interleave anywhere between BATCH frames.
func AppendControlFrame(dst []byte, cmd ControlCommand) []byte {
	var p []byte
	p = append(p, frameControl, byte(cmd.Kind))
	p = appendUvarint(p, cmd.Seq)
	p = appendControlString(p, cmd.Node)
	p = appendControlString(p, cmd.Component)
	p = appendZigzag(p, cmd.Weight)
	dst = appendUvarint(dst, uint64(len(p)))
	return append(dst, p...)
}

// AppendControlAckFrame appends one length-prefixed ACK frame to dst.
func AppendControlAckFrame(dst []byte, ack ControlAck) []byte {
	var p []byte
	p = append(p, frameControlAck, byte(ack.Kind))
	p = appendUvarint(p, ack.Seq)
	ok := byte(0)
	if ack.OK {
		ok = 1
	}
	p = append(p, ok)
	p = appendZigzag(p, ack.Freed)
	p = appendControlString(p, ack.Err)
	dst = appendUvarint(dst, uint64(len(p)))
	return append(dst, p...)
}

func controlKindValid(k ControlKind) bool {
	return k == ControlDrain || k == ControlRejuvenate || k == ControlReadmit
}

// DecodeControlCommand decodes one CONTROL frame payload (without its
// length prefix, including the leading frame-type byte).
func DecodeControlCommand(payload []byte) (ControlCommand, error) {
	var cmd ControlCommand
	if len(payload) == 0 || payload[0] != frameControl {
		return cmd, fmt.Errorf("cluster: not a CONTROL frame")
	}
	p := &byteParser{b: payload, i: 1}
	kind, err := p.byte()
	if err != nil {
		return cmd, err
	}
	cmd.Kind = ControlKind(kind)
	if !controlKindValid(cmd.Kind) {
		return cmd, fmt.Errorf("cluster: unknown control kind %d", kind)
	}
	if cmd.Seq, err = p.uvarint(); err != nil {
		return cmd, err
	}
	if cmd.Node, err = parseControlString(p); err != nil {
		return cmd, err
	}
	if cmd.Component, err = parseControlString(p); err != nil {
		return cmd, err
	}
	if cmd.Weight, err = p.zigzag(); err != nil {
		return cmd, err
	}
	if p.i != len(payload) {
		return cmd, fmt.Errorf("cluster: %d trailing bytes in CONTROL frame", len(payload)-p.i)
	}
	return cmd, nil
}

// DecodeControlAck decodes one ACK frame payload (without its length
// prefix, including the leading frame-type byte).
func DecodeControlAck(payload []byte) (ControlAck, error) {
	var ack ControlAck
	if len(payload) == 0 || payload[0] != frameControlAck {
		return ack, fmt.Errorf("cluster: not an ACK frame")
	}
	p := &byteParser{b: payload, i: 1}
	kind, err := p.byte()
	if err != nil {
		return ack, err
	}
	ack.Kind = ControlKind(kind)
	if !controlKindValid(ack.Kind) {
		return ack, fmt.Errorf("cluster: unknown control kind %d", kind)
	}
	if ack.Seq, err = p.uvarint(); err != nil {
		return ack, err
	}
	okb, err := p.byte()
	if err != nil {
		return ack, err
	}
	if okb > 1 {
		return ack, fmt.Errorf("cluster: corrupt ack flag %d", okb)
	}
	ack.OK = okb == 1
	if ack.Freed, err = p.zigzag(); err != nil {
		return ack, err
	}
	if ack.Err, err = parseControlString(p); err != nil {
		return ack, err
	}
	if p.i != len(payload) {
		return ack, fmt.Errorf("cluster: %d trailing bytes in ACK frame", len(payload)-p.i)
	}
	return ack, nil
}

// controlConn is the aggregator's writing half of one node connection's
// control channel. Writes are serialised on their own mutex — they
// interleave with nothing (the aggregator only reads the round
// direction), but several commands may target nodes multiplexed onto the
// same connection.
type controlConn struct {
	wmu  sync.Mutex
	conn net.Conn
	buf  []byte
}

// write ships one command frame with a bounded write. It runs on the
// sender's goroutine (SendControl spawns one per wire command), so a
// slow or dead peer stalls only this command, never the fold path.
func (cc *controlConn) write(cmd ControlCommand) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	cc.buf = AppendControlFrame(cc.buf[:0], cmd)
	_ = cc.conn.SetWriteDeadline(time.Now().Add(DefaultWireTimeout))
	_, err := cc.conn.Write(cc.buf)
	_ = cc.conn.SetWriteDeadline(time.Time{})
	return err
}

// pendingControl tracks one in-flight wire command awaiting its ack.
type pendingControl struct {
	done func(ControlAck, error)
	cc   *controlConn
}

// BindLocalControl registers a synchronous in-process control handler
// for node — the actuation route for nodes sharing the aggregator's
// process (InProc and gob transports, whose streams carry no control
// frames). A local binding takes precedence over a learned wire route.
func (a *Aggregator) BindLocalControl(node string, h ControlHandler) {
	a.ctlMu.Lock()
	if h == nil {
		delete(a.ctlLocal, node)
	} else {
		a.ctlLocal[node] = h
	}
	a.ctlMu.Unlock()
}

// registerControlConn learns (or refreshes) node's wire control route.
func (a *Aggregator) registerControlConn(node string, cc *controlConn) {
	a.ctlMu.Lock()
	a.ctlConns[node] = cc
	a.ctlMu.Unlock()
}

// unregisterControlConn tears down the routes a closing connection owns
// and fails its in-flight commands — their acks can never arrive.
func (a *Aggregator) unregisterControlConn(cc *controlConn, routed map[string]bool) {
	a.ctlMu.Lock()
	for node := range routed {
		if a.ctlConns[node] == cc {
			delete(a.ctlConns, node)
		}
	}
	var orphaned []*pendingControl
	for seq, pc := range a.ctlPending {
		if pc.cc == cc {
			orphaned = append(orphaned, pc)
			delete(a.ctlPending, seq)
		}
	}
	a.ctlMu.Unlock()
	for _, pc := range orphaned {
		pc.done(ControlAck{}, fmt.Errorf("cluster: control connection closed before ack"))
	}
}

// resolveControlAck completes the pending command an ACK frame answers.
// Unmatched acks (command already failed by a closing connection) are
// dropped.
func (a *Aggregator) resolveControlAck(ack ControlAck) {
	a.ctlMu.Lock()
	pc := a.ctlPending[ack.Seq]
	delete(a.ctlPending, ack.Seq)
	a.ctlMu.Unlock()
	if pc != nil {
		pc.done(ack, nil)
	}
}

// failControl fails one pending command (its write never reached the
// node).
func (a *Aggregator) failControl(seq uint64, err error) {
	a.ctlMu.Lock()
	pc := a.ctlPending[seq]
	delete(a.ctlPending, seq)
	a.ctlMu.Unlock()
	if pc != nil {
		pc.done(ControlAck{}, err)
	}
}

// SendControl routes one actuation command to a node and reports the
// outcome through done (which may be nil for fire-and-forget advisory
// commands). Local handlers run synchronously before SendControl
// returns; wire commands are written on their own goroutine and done
// fires later from the ack-reading loop — from the caller's point of
// view the call never blocks on the network. A node with neither a local
// binding nor a learned wire route fails immediately: the controller's
// deadline fallback, not a silent drop, decides what happens next.
func (a *Aggregator) SendControl(node string, kind ControlKind, component string, weight int, done func(ControlAck, error)) {
	a.ctlMu.Lock()
	a.ctlSeq++
	cmd := ControlCommand{Seq: a.ctlSeq, Kind: kind, Node: node, Component: component, Weight: int64(weight)}
	if h, ok := a.ctlLocal[node]; ok {
		a.ctlMu.Unlock()
		ack := h(cmd)
		ack.Seq, ack.Kind = cmd.Seq, cmd.Kind
		if done != nil {
			done(ack, nil)
		}
		return
	}
	cc := a.ctlConns[node]
	if cc == nil {
		a.ctlMu.Unlock()
		if done != nil {
			done(ControlAck{}, fmt.Errorf("cluster: no control route to node %q", node))
		}
		return
	}
	if done != nil {
		a.ctlPending[cmd.Seq] = &pendingControl{done: done, cc: cc}
	}
	a.ctlMu.Unlock()
	go func() {
		if err := cc.write(cmd); err != nil {
			if done != nil {
				a.failControl(cmd.Seq, err)
			}
		}
	}()
}

// ServeControl reads CONTROL frames arriving on the wire's connection —
// the aggregator → node direction of the stream this wire publishes
// rounds on — dispatches each to h, and answers with an ACK frame. Acks
// share the publish mutex with round frames, so they interleave at frame
// granularity, never inside one. It blocks until the connection closes
// (returning nil) or a frame is corrupt; run it on its own goroutine.
func (w *BinaryWire) ServeControl(h ControlHandler) error {
	br := bufio.NewReader(w.conn)
	var payload []byte
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if n > maxBinaryFrame {
			return fmt.Errorf("cluster: control frame of %d bytes exceeds limit", n)
		}
		if uint64(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		cmd, err := DecodeControlCommand(payload)
		if err != nil {
			return err
		}
		ack := h(cmd)
		ack.Seq, ack.Kind = cmd.Seq, cmd.Kind
		if err := w.sendControlAck(ack); err != nil {
			return err
		}
	}
}

// sendControlAck writes one ACK frame under the publish mutex. If no
// round has shipped yet, the stream header goes first — the serving
// aggregator reads the magic before any frame, whichever direction
// speaks first.
func (w *BinaryWire) sendControlAck(ack ControlAck) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken {
		return errors.New("cluster: binary wire broken by an earlier failed write")
	}
	var frame []byte
	if !w.enc.started {
		frame = append(frame, wireMagic[:]...)
		w.enc.started = true
	}
	frame = AppendControlAckFrame(frame, ack)
	if _, err := writeFrameRetry(w.conn, frame, w.timeout, w.retry, &w.rng); err != nil {
		w.broken = true
		_ = w.conn.Close()
		return err
	}
	return nil
}

// FrameworkControlHandler adapts a node's core.Framework to the control
// channel: rejuvenate commands fire Framework.MicroReboot on the named
// component; drain and re-admit commands are acknowledged as advisory —
// the balancer state machine driving them lives cluster-side with the
// controller, and the node itself has nothing to tear down.
func FrameworkControlHandler(f *core.Framework) ControlHandler {
	return func(cmd ControlCommand) ControlAck {
		switch cmd.Kind {
		case ControlRejuvenate:
			return ControlAck{OK: true, Freed: f.MicroReboot(cmd.Component)}
		case ControlDrain, ControlReadmit:
			return ControlAck{OK: true}
		default:
			return ControlAck{Err: fmt.Sprintf("cluster: unknown control kind %d", cmd.Kind)}
		}
	}
}

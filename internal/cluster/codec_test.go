package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// decodeStream decodes a whole encoded byte stream (header + frames) with
// one decoder, failing the test on any error.
func decodeStream(t *testing.T, stream []byte) []Round {
	t.Helper()
	if len(stream) < 4 || [4]byte(stream[:4]) != wireMagic {
		t.Fatalf("stream does not open with the wire magic: %x", stream[:min(8, len(stream))])
	}
	dec := NewBinaryDecoder()
	rest := stream[4:]
	var out []Round
	for len(rest) > 0 {
		n, w := binary.Uvarint(rest)
		if w <= 0 || n > uint64(len(rest)-w) {
			t.Fatalf("bad frame length prefix at offset %d", len(stream)-len(rest))
		}
		err := dec.DecodeBatch(rest[w:w+int(n)], func(r Round) error {
			// The decoder reuses its samples buffer; keep a copy like Ingest.
			r.Samples = append([]core.ComponentSample(nil), r.Samples...)
			out = append(out, r)
			return nil
		})
		if err != nil {
			t.Fatalf("decode frame: %v", err)
		}
		rest = rest[w+int(n):]
	}
	return out
}

func sampleRounds() []Round {
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	mk := func(node string, seq int64, leak int64) Round {
		at := t0.Add(time.Duration(seq) * 30 * time.Second)
		return Round{
			Node: node, Seq: seq, Time: at,
			Samples: []core.ComponentSample{
				{Component: "leaky", Size: 1 << 20, SizeOK: true, Usage: 100 * seq,
					CPUSeconds: 0.25 * float64(seq), Threads: 3, Handles: 2 + seq,
					LatencySeconds: 0.5 * float64(seq), Delta: leak * seq},
				{Component: "steady", Size: 4096, SizeOK: true, Usage: 240 * seq,
					CPUSeconds: 0.5 * float64(seq), Threads: 5, Handles: 2,
					LatencySeconds: 0.75 * float64(seq)},
				{Component: "unsized", Usage: 7 * seq},
			},
		}
	}
	return []Round{
		mk("node1", 1, 0), mk("node2", 1, 4096),
		mk("node1", 2, 0), mk("node2", 2, 4096),
		mk("node1", 3, 0),
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	enc := NewBinaryEncoder()
	var stream []byte
	rounds := sampleRounds()
	for _, r := range rounds {
		stream = append(stream, enc.AppendRound(nil, r)...)
	}
	got := decodeStream(t, stream)
	if len(got) != len(rounds) {
		t.Fatalf("decoded %d rounds, want %d", len(got), len(rounds))
	}
	for i, want := range rounds {
		g := got[i]
		if g.Node != want.Node || g.Seq != want.Seq || !g.Time.Equal(want.Time) {
			t.Fatalf("round %d header mismatch: %+v", i, g)
		}
		if len(g.Samples) != len(want.Samples) {
			t.Fatalf("round %d: %d samples, want %d", i, len(g.Samples), len(want.Samples))
		}
		for j, ws := range want.Samples {
			if g.Samples[j] != ws {
				t.Fatalf("round %d sample %d: %+v, want %+v", i, j, g.Samples[j], ws)
			}
		}
	}
}

// TestBinaryCodecSteadyStateDensity pins the codec's reason to exist: at
// steady state (names interned, deltas small) a round must cost a small
// fraction of its gob equivalent — the acceptance bar is 2×, the codec
// does far better.
func TestBinaryCodecSteadyStateDensity(t *testing.T) {
	enc := NewBinaryEncoder()
	var gobBytes, binBytes int
	var gobBuf bytes.Buffer
	gobEnc := gob.NewEncoder(&gobBuf)
	rounds := manyRounds("node1", 50, 14)
	for i, r := range rounds {
		frame := enc.AppendRound(nil, r)
		if err := gobEnc.Encode(r); err != nil {
			t.Fatal(err)
		}
		if i >= 25 { // steady state: second half of the run
			binBytes += len(frame)
			gobBytes += gobBuf.Len()
		}
		gobBuf.Reset()
	}
	if binBytes*2 > gobBytes {
		t.Fatalf("binary codec not ≥2× denser than gob at steady state: %d vs %d bytes over 25 rounds",
			binBytes, gobBytes)
	}
	t.Logf("steady-state bytes per round: binary %d, gob %d (%.1fx)",
		binBytes/25, gobBytes/25, float64(gobBytes)/float64(binBytes))
}

// TestBinaryCodecGolden pins the wire format byte for byte, so a future
// change that would break cross-version node/aggregator pairs fails
// loudly here instead of silently at decode time. If you change the
// format intentionally, bump the version byte in wireMagic and re-pin.
func TestBinaryCodecGolden(t *testing.T) {
	enc := NewBinaryEncoder()
	var stream []byte
	rounds := sampleRounds()
	for _, r := range rounds[:3] {
		stream = append(stream, enc.AppendRound(nil, r)...)
	}
	// The last two rounds ship as one BATCH frame on the same stream,
	// pinning the multi-round frame layout alongside the batch-of-one
	// frames above.
	enc.BufferRound(rounds[3])
	enc.BufferRound(rounds[4])
	stream = enc.FlushFrame(stream)
	// The stream: 4-byte header (magic "AGM", version 6), then
	// length-prefixed frames, each opening with its frame-type byte (0x00
	// = BATCH; CONTROL/ACK frames are pinned in control_test.go) and its
	// uvarint round count (0x01 for the unbatched frames, 0x02 for the
	// final pair).
	// The first frame carries every name verbatim (first sightings) and
	// full values (the double-delta chains start at zero); names intern
	// per stream, so the node2 frame already references the component
	// names by 1-byte id and only introduces "node2" itself; the third
	// frame is node1's second — linear counters collapse to zero
	// second-order residuals (single 0x00 bytes) and the time chain pays
	// its one-time large residual. The sample CPU and latency figures
	// (multiples of 0.25s) quantise exactly, so every sample carries
	// flagCPUNanos|flagLatNanos and rides the nanosecond double-delta
	// chains instead of the v1 XOR'd float bits. The final frame (0x4b
	// bytes, type 0x00, count 0x02) carries node2's second round — paying
	// its one-time time residual like node1 did — and node1's third, fully
	// steady round, whose linear chains are almost all single zero bytes.
	const want = "41474d065a000100056e6f6465310280b08dabf9b4cd84230300056c65616b7907" +
		"80808001c80106060080cab5ee018094ebdc030006737465616479078040e0030a" +
		"04008094ebdc0380dea0cb050007756e73697a656406000e000000000046000100" +
		"056e6f6465320280b08dabf9b4cd842303020780808001c8010606804080cab5ee" +
		"018094ebdc0303078040e0030a04008094ebdc0380dea0cb050406000e00000000" +
		"002c00010100ffffefe899b3cd8423030207ffff7f0005030000000307ff3f0009" +
		"030000000406000000000000004b00020500ffffefe899b3cd8423030207ffff7f" +
		"0005030000000307ff3f0009030000000406000000000000000100000302070000" +
		"0000000000030700000000000000040600000000000000"
	got := hex.EncodeToString(stream)
	if got != normalizeHex(want) {
		t.Fatalf("wire format drifted.\n got: %s\nwant: %s", got, normalizeHex(want))
	}
}

func normalizeHex(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\n' || c == ' ' {
			continue
		}
		out = append(out, c)
	}
	return string(out)
}

// manyRounds builds a deterministic steady-state stream: cumulative
// counters grow by fixed per-round deltas. CPU figures are derived the
// way the CPU agent derives them — Duration.Seconds over an accumulated
// nanosecond count — so the stream exercises the codec's quantised CPU
// path exactly as live rounds do.
func manyRounds(node string, rounds, comps int) []Round {
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	names := make([]string, comps)
	for c := range names {
		names[c] = "component-" + string(rune('a'+c))
	}
	out := make([]Round, 0, rounds)
	for seq := int64(1); seq <= int64(rounds); seq++ {
		r := Round{Node: node, Seq: seq, Time: t0.Add(time.Duration(seq) * 30 * time.Second)}
		for c := 0; c < comps; c++ {
			cpu := time.Duration(seq) * time.Duration(c+1) * 10 * time.Millisecond
			lat := time.Duration(seq) * time.Duration(c+1) * 15 * time.Millisecond
			r.Samples = append(r.Samples, core.ComponentSample{
				Component:      names[c],
				Size:           int64(10000*(c+1)) + 512*seq,
				SizeOK:         true,
				Usage:          seq * int64(100+c),
				CPUSeconds:     cpu.Seconds(),
				Threads:        int64(2 + c%3),
				Handles:        int64(1 + c%2),
				LatencySeconds: lat.Seconds(),
				Delta:          64 * seq,
			})
		}
		out = append(out, r)
	}
	return out
}

// failingConn writes successfully until told to fail.
type failingConn struct {
	discardConn
	fail bool
}

func (c *failingConn) Write(p []byte) (int, error) {
	if c.fail {
		return 0, errors.New("sink full")
	}
	return len(p), nil
}

// TestBinaryWireFailStopsAfterWriteError pins the codec's loss
// discipline: a lost frame desynchronises the delta/XOR chains, so after
// one failed write the wire must refuse every further publish (the owner
// reconnects with fresh codec state) instead of silently shipping
// undecodable-as-intended rounds.
func TestBinaryWireFailStopsAfterWriteError(t *testing.T) {
	c := &failingConn{}
	w := NewBinaryWire(c)
	gen := newRoundGen("node1")
	if err := w.Publish(gen.next()); err != nil {
		t.Fatalf("healthy publish failed: %v", err)
	}
	c.fail = true
	if err := w.Publish(gen.next()); err == nil {
		t.Fatal("failed write not surfaced")
	}
	c.fail = false
	if err := w.Publish(gen.next()); err == nil {
		t.Fatal("wire did not latch the broken state after a lost frame")
	}
}

func TestBinaryDecoderRejectsCorruption(t *testing.T) {
	enc := NewBinaryEncoder()
	frame := enc.AppendRound(nil, sampleRounds()[0])
	payloadStart := 4 // skip magic
	n, w := binary.Uvarint(frame[payloadStart:])
	payload := frame[payloadStart+w : payloadStart+w+int(n)]

	dec := NewBinaryDecoder()
	if _, err := dec.DecodeFrame(payload[:len(payload)/2]); err == nil {
		t.Fatal("truncated frame decoded without error")
	}
	// A dangling string reference: id 200 was never defined.
	bad := append([]byte{frameBatch}, binary.AppendUvarint(nil, 1)...)
	bad = append(bad, binary.AppendUvarint(nil, 201)...)
	if _, err := NewBinaryDecoder().DecodeFrame(bad); err == nil {
		t.Fatal("dangling string reference decoded without error")
	}
	// Trailing garbage after a valid frame.
	full := append(append([]byte(nil), payload...), 0xFF)
	if _, err := NewBinaryDecoder().DecodeFrame(full); err == nil {
		t.Fatal("trailing bytes decoded without error")
	}
	// A frame whose type byte names no known frame kind.
	if _, err := NewBinaryDecoder().DecodeFrame(append([]byte{0x7F}, payload[1:]...)); err == nil {
		t.Fatal("unknown frame type decoded without error")
	}
	// Corrupt BATCH counts: empty payload, missing count, zero rounds,
	// and a count past the frame size.
	if err := NewBinaryDecoder().DecodeBatch(nil, discardRound); err == nil {
		t.Fatal("empty frame decoded without error")
	}
	if err := NewBinaryDecoder().DecodeBatch([]byte{frameBatch}, discardRound); err == nil {
		t.Fatal("countless batch decoded without error")
	}
	if err := NewBinaryDecoder().DecodeBatch([]byte{frameBatch, 0x00}, discardRound); err == nil {
		t.Fatal("zero-round batch decoded without error")
	}
	huge := append([]byte{frameBatch}, binary.AppendUvarint(nil, 1<<20)...)
	huge = append(huge, payload[2:]...)
	if err := NewBinaryDecoder().DecodeBatch(huge, discardRound); err == nil {
		t.Fatal("oversized batch count decoded without error")
	}
	// A multi-round batch must be rejected by the single-round shorthand.
	enc2 := NewBinaryEncoder()
	rounds := sampleRounds()
	enc2.BufferRound(rounds[0])
	enc2.BufferRound(rounds[2])
	batch := enc2.FlushFrame(nil)
	n, w = binary.Uvarint(batch[payloadStart:])
	if _, err := NewBinaryDecoder().DecodeFrame(batch[payloadStart+w : payloadStart+w+int(n)]); err == nil {
		t.Fatal("DecodeFrame accepted a multi-round batch")
	}
}

func discardRound(Round) error { return nil }

// TestBinaryCodecBatchRoundTrip drives the BATCH path across flush sizes
// that tile the stream unevenly: every grouping must reproduce the same
// round sequence, because batching only repackages frames — the
// interning and delta chains run over the stream, not the frame.
func TestBinaryCodecBatchRoundTrip(t *testing.T) {
	rounds := append(sampleRounds(), manyRounds("node3", 10, 5)...)
	for _, k := range []int{2, 3, len(rounds)} {
		enc := NewBinaryEncoder()
		var stream []byte
		for i, r := range rounds {
			enc.BufferRound(r)
			if (i+1)%k == 0 {
				stream = enc.FlushFrame(stream)
			}
		}
		stream = enc.FlushFrame(stream)
		if enc.PendingRounds() != 0 {
			t.Fatalf("k=%d: %d rounds left buffered after flush", k, enc.PendingRounds())
		}
		if extra := enc.FlushFrame(nil); len(extra) != 0 {
			t.Fatalf("k=%d: empty flush produced %d bytes", k, len(extra))
		}
		got := decodeStream(t, stream)
		if len(got) != len(rounds) {
			t.Fatalf("k=%d: decoded %d rounds, want %d", k, len(got), len(rounds))
		}
		for i, want := range rounds {
			g := got[i]
			if g.Node != want.Node || g.Seq != want.Seq || !g.Time.Equal(want.Time) {
				t.Fatalf("k=%d round %d header mismatch: %+v", k, i, g)
			}
			for j, ws := range want.Samples {
				if g.Samples[j] != ws {
					t.Fatalf("k=%d round %d sample %d: %+v, want %+v", k, i, j, g.Samples[j], ws)
				}
			}
		}
	}
}

// TestBinaryWireBatchFlushPolicy pins the transport-side flush triggers:
// count, explicit Flush, deadline, and Close — and that a partial batch
// never hits the wire before one of them fires.
func TestBinaryWireBatchFlushPolicy(t *testing.T) {
	c := &countingConn{}
	w := NewBinaryWire(c)
	if err := w.SetBatch(3, 0); err != nil {
		t.Fatal(err)
	}
	gen := newRoundGen("node1")
	publish := func() {
		t.Helper()
		if err := w.Publish(gen.next()); err != nil {
			t.Fatal(err)
		}
	}
	publish()
	publish()
	if got := c.writes.Load(); got != 0 {
		t.Fatalf("partial batch hit the wire: %d writes", got)
	}
	publish() // third round: count trigger
	if got := c.writes.Load(); got != 1 {
		t.Fatalf("count flush: %d writes, want 1", got)
	}
	publish()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := c.writes.Load(); got != 2 {
		t.Fatalf("explicit flush: %d writes, want 2", got)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := c.writes.Load(); got != 2 {
		t.Fatalf("empty flush wrote a frame: %d writes", got)
	}

	// Deadline trigger: one buffered round must ship without further
	// publishes once the delay elapses.
	if err := w.SetBatch(8, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	publish()
	deadline := time.Now().Add(5 * time.Second)
	for c.writes.Load() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("deadline flush never fired: %d writes", c.writes.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// Close ships the remainder.
	if err := w.SetBatch(8, 0); err != nil {
		t.Fatal(err)
	}
	publish()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c.writes.Load(); got != 4 {
		t.Fatalf("close flush: %d writes, want 4", got)
	}
}

// TestBinaryWireBatchReducesOverhead pins the acceptance bar for the
// BATCH frame: at fan-in flush sizes, batching must cut both the frames
// and the bytes a round costs on the wire versus flush-every-round.
func TestBinaryWireBatchReducesOverhead(t *testing.T) {
	const rounds = 64
	run := func(batch int) (wireBytes, frames int64) {
		c := &countingConn{}
		w := NewBinaryWire(c)
		if batch > 1 {
			if err := w.SetBatch(batch, 0); err != nil {
				t.Fatal(err)
			}
		}
		gen := newRoundGen("node1")
		for i := 0; i < rounds; i++ {
			if err := w.Publish(gen.next()); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return c.n.Load(), c.writes.Load()
	}
	plainBytes, plainFrames := run(1)
	batchBytes, batchFrames := run(8)
	if batchFrames != plainFrames/8 {
		t.Fatalf("batch=8 shipped %d frames for %d rounds (unbatched: %d)", batchFrames, rounds, plainFrames)
	}
	if batchBytes >= plainBytes {
		t.Fatalf("batching did not reduce bytes: %d vs %d", batchBytes, plainBytes)
	}
	t.Logf("%d rounds: unbatched %d bytes / %d frames, batch=8 %d bytes / %d frames",
		rounds, plainBytes, plainFrames, batchBytes, batchFrames)
}

package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// decodeStream decodes a whole encoded byte stream (header + frames) with
// one decoder, failing the test on any error.
func decodeStream(t *testing.T, stream []byte) []Round {
	t.Helper()
	if len(stream) < 4 || [4]byte(stream[:4]) != wireMagic {
		t.Fatalf("stream does not open with the wire magic: %x", stream[:min(8, len(stream))])
	}
	dec := NewBinaryDecoder()
	rest := stream[4:]
	var out []Round
	for len(rest) > 0 {
		n, w := binary.Uvarint(rest)
		if w <= 0 || n > uint64(len(rest)-w) {
			t.Fatalf("bad frame length prefix at offset %d", len(stream)-len(rest))
		}
		r, err := dec.DecodeFrame(rest[w : w+int(n)])
		if err != nil {
			t.Fatalf("decode frame: %v", err)
		}
		// The decoder reuses its samples buffer; keep a copy like Ingest.
		r.Samples = append([]core.ComponentSample(nil), r.Samples...)
		out = append(out, r)
		rest = rest[w+int(n):]
	}
	return out
}

func sampleRounds() []Round {
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	mk := func(node string, seq int64, leak int64) Round {
		at := t0.Add(time.Duration(seq) * 30 * time.Second)
		return Round{
			Node: node, Seq: seq, Time: at,
			Samples: []core.ComponentSample{
				{Component: "leaky", Size: 1 << 20, SizeOK: true, Usage: 100 * seq,
					CPUSeconds: 0.25 * float64(seq), Threads: 3, Handles: 2 + seq,
					LatencySeconds: 0.5 * float64(seq), Delta: leak * seq},
				{Component: "steady", Size: 4096, SizeOK: true, Usage: 240 * seq,
					CPUSeconds: 0.5 * float64(seq), Threads: 5, Handles: 2,
					LatencySeconds: 0.75 * float64(seq)},
				{Component: "unsized", Usage: 7 * seq},
			},
		}
	}
	return []Round{
		mk("node1", 1, 0), mk("node2", 1, 4096),
		mk("node1", 2, 0), mk("node2", 2, 4096),
		mk("node1", 3, 0),
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	enc := NewBinaryEncoder()
	var stream []byte
	rounds := sampleRounds()
	for _, r := range rounds {
		stream = append(stream, enc.AppendRound(nil, r)...)
	}
	got := decodeStream(t, stream)
	if len(got) != len(rounds) {
		t.Fatalf("decoded %d rounds, want %d", len(got), len(rounds))
	}
	for i, want := range rounds {
		g := got[i]
		if g.Node != want.Node || g.Seq != want.Seq || !g.Time.Equal(want.Time) {
			t.Fatalf("round %d header mismatch: %+v", i, g)
		}
		if len(g.Samples) != len(want.Samples) {
			t.Fatalf("round %d: %d samples, want %d", i, len(g.Samples), len(want.Samples))
		}
		for j, ws := range want.Samples {
			if g.Samples[j] != ws {
				t.Fatalf("round %d sample %d: %+v, want %+v", i, j, g.Samples[j], ws)
			}
		}
	}
}

// TestBinaryCodecSteadyStateDensity pins the codec's reason to exist: at
// steady state (names interned, deltas small) a round must cost a small
// fraction of its gob equivalent — the acceptance bar is 2×, the codec
// does far better.
func TestBinaryCodecSteadyStateDensity(t *testing.T) {
	enc := NewBinaryEncoder()
	var gobBytes, binBytes int
	var gobBuf bytes.Buffer
	gobEnc := gob.NewEncoder(&gobBuf)
	rounds := manyRounds("node1", 50, 14)
	for i, r := range rounds {
		frame := enc.AppendRound(nil, r)
		if err := gobEnc.Encode(r); err != nil {
			t.Fatal(err)
		}
		if i >= 25 { // steady state: second half of the run
			binBytes += len(frame)
			gobBytes += gobBuf.Len()
		}
		gobBuf.Reset()
	}
	if binBytes*2 > gobBytes {
		t.Fatalf("binary codec not ≥2× denser than gob at steady state: %d vs %d bytes over 25 rounds",
			binBytes, gobBytes)
	}
	t.Logf("steady-state bytes per round: binary %d, gob %d (%.1fx)",
		binBytes/25, gobBytes/25, float64(gobBytes)/float64(binBytes))
}

// TestBinaryCodecGolden pins the wire format byte for byte, so a future
// change that would break cross-version node/aggregator pairs fails
// loudly here instead of silently at decode time. If you change the
// format intentionally, bump the version byte in wireMagic and re-pin.
func TestBinaryCodecGolden(t *testing.T) {
	enc := NewBinaryEncoder()
	var stream []byte
	for _, r := range sampleRounds()[:3] {
		stream = append(stream, enc.AppendRound(nil, r)...)
	}
	// The stream: 4-byte header (magic "AGM", version 3), then one
	// length-prefixed frame per round. The first frame carries every
	// name verbatim (first sightings) and full values (the double-delta
	// chains start at zero); names intern per stream, so the node2 frame
	// already references the component names by 1-byte id and only
	// introduces "node2" itself; the third frame is node1's second —
	// linear counters collapse to zero second-order residuals (single
	// 0x00 bytes) and the time chain pays its one-time large residual.
	// The sample CPU and latency figures (multiples of 0.25s) quantise
	// exactly, so every sample carries flagCPUNanos|flagLatNanos and
	// rides the nanosecond double-delta chains instead of the v1 XOR'd
	// float bits.
	const want = "41474d035800056e6f6465310280b08dabf9b4cd84230300056c65616b79078080" +
		"8001c80106060080cab5ee018094ebdc030006737465616479078040e0030a0400" +
		"8094ebdc0380dea0cb050007756e73697a656406000e00000000004400056e6f64" +
		"65320280b08dabf9b4cd842303020780808001c8010606804080cab5ee018094eb" +
		"dc0303078040e0030a04008094ebdc0380dea0cb050406000e00000000002a0100" +
		"ffffefe899b3cd8423030207ffff7f0005030000000307ff3f0009030000000406" +
		"00000000000000"
	got := hex.EncodeToString(stream)
	if got != normalizeHex(want) {
		t.Fatalf("wire format drifted.\n got: %s\nwant: %s", got, normalizeHex(want))
	}
}

func normalizeHex(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\n' || c == ' ' {
			continue
		}
		out = append(out, c)
	}
	return string(out)
}

// manyRounds builds a deterministic steady-state stream: cumulative
// counters grow by fixed per-round deltas. CPU figures are derived the
// way the CPU agent derives them — Duration.Seconds over an accumulated
// nanosecond count — so the stream exercises the codec's quantised CPU
// path exactly as live rounds do.
func manyRounds(node string, rounds, comps int) []Round {
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	names := make([]string, comps)
	for c := range names {
		names[c] = "component-" + string(rune('a'+c))
	}
	out := make([]Round, 0, rounds)
	for seq := int64(1); seq <= int64(rounds); seq++ {
		r := Round{Node: node, Seq: seq, Time: t0.Add(time.Duration(seq) * 30 * time.Second)}
		for c := 0; c < comps; c++ {
			cpu := time.Duration(seq) * time.Duration(c+1) * 10 * time.Millisecond
			lat := time.Duration(seq) * time.Duration(c+1) * 15 * time.Millisecond
			r.Samples = append(r.Samples, core.ComponentSample{
				Component:      names[c],
				Size:           int64(10000*(c+1)) + 512*seq,
				SizeOK:         true,
				Usage:          seq * int64(100+c),
				CPUSeconds:     cpu.Seconds(),
				Threads:        int64(2 + c%3),
				Handles:        int64(1 + c%2),
				LatencySeconds: lat.Seconds(),
				Delta:          64 * seq,
			})
		}
		out = append(out, r)
	}
	return out
}

// failingConn writes successfully until told to fail.
type failingConn struct {
	discardConn
	fail bool
}

func (c *failingConn) Write(p []byte) (int, error) {
	if c.fail {
		return 0, errors.New("sink full")
	}
	return len(p), nil
}

// TestBinaryWireFailStopsAfterWriteError pins the codec's loss
// discipline: a lost frame desynchronises the delta/XOR chains, so after
// one failed write the wire must refuse every further publish (the owner
// reconnects with fresh codec state) instead of silently shipping
// undecodable-as-intended rounds.
func TestBinaryWireFailStopsAfterWriteError(t *testing.T) {
	c := &failingConn{}
	w := NewBinaryWire(c)
	gen := newRoundGen("node1")
	if err := w.Publish(gen.next()); err != nil {
		t.Fatalf("healthy publish failed: %v", err)
	}
	c.fail = true
	if err := w.Publish(gen.next()); err == nil {
		t.Fatal("failed write not surfaced")
	}
	c.fail = false
	if err := w.Publish(gen.next()); err == nil {
		t.Fatal("wire did not latch the broken state after a lost frame")
	}
}

func TestBinaryDecoderRejectsCorruption(t *testing.T) {
	enc := NewBinaryEncoder()
	frame := enc.AppendRound(nil, sampleRounds()[0])
	payloadStart := 4 // skip magic
	n, w := binary.Uvarint(frame[payloadStart:])
	payload := frame[payloadStart+w : payloadStart+w+int(n)]

	dec := NewBinaryDecoder()
	if _, err := dec.DecodeFrame(payload[:len(payload)/2]); err == nil {
		t.Fatal("truncated frame decoded without error")
	}
	// A dangling string reference: id 200 was never defined.
	bad := binary.AppendUvarint(nil, 201)
	if _, err := NewBinaryDecoder().DecodeFrame(bad); err == nil {
		t.Fatal("dangling string reference decoded without error")
	}
	// Trailing garbage after a valid frame.
	full := append(append([]byte(nil), payload...), 0xFF)
	if _, err := NewBinaryDecoder().DecodeFrame(full); err == nil {
		t.Fatal("trailing bytes decoded without error")
	}
}

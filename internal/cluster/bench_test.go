package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The monitoring-plane wire benchmarks: what one steady-state sampling
// round costs to ship (encode+write), to decode, and to fold into the
// aggregator. Every benchmark pre-warms past the cold start (name
// interning, window fill) so the numbers are the forever-after cost the
// cluster pays at sampling cadence. BENCH_baseline.json records the
// before/after history.

// discardConn is a net.Conn that swallows writes — the transports' write
// path without kernel noise.
type discardConn struct{ net.Conn }

func (discardConn) Write(p []byte) (int, error)      { return len(p), nil }
func (discardConn) Close() error                     { return nil }
func (discardConn) SetWriteDeadline(time.Time) error { return nil }

// roundGen yields successive steady-state rounds of a fixed
// 14-component node, mutating one Round in place so generating the next
// round costs no allocation inside a timed loop. Consumers must respect
// the borrow contract (every Transport and Ingest does).
type roundGen struct {
	r Round
}

func newRoundGen(node string) *roundGen {
	g := &roundGen{r: manyRounds(node, 1, 14)[0]}
	g.r.Seq = 0
	return g
}

// at mutates the generator's round to sequence seq and returns it.
func (g *roundGen) at(seq int64) Round {
	g.r.Seq = seq
	g.r.Time = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(seq) * 30 * time.Second)
	for i := range g.r.Samples {
		g.r.Samples[i].Size = int64(10000*(i+1)) + 512*seq
		g.r.Samples[i].Usage = seq * int64(100+i)
		g.r.Samples[i].CPUSeconds = (time.Duration(seq) * time.Duration(i+1) * 10 * time.Millisecond).Seconds()
		g.r.Samples[i].Delta = 64 * seq
	}
	return g.r
}

// next advances and returns the following round.
func (g *roundGen) next() Round { return g.at(g.r.Seq + 1) }

// BenchmarkWirePublish measures shipping one steady-state round through
// each wire transport (encode + write to a discarded connection), and
// reports the steady-state cost on the wire as bytes/round and
// frames/round. The binary-batch8 case is the fleet fan-in flush policy
// (8 rounds per BATCH frame), amortising the frame prefix and write
// call across the batch.
func BenchmarkWirePublish(b *testing.B) {
	for _, codec := range []string{"gob", "binary", "binary-batch8"} {
		b.Run(codec, func(b *testing.B) {
			var counter countingConn
			var tr Transport
			switch codec {
			case "gob":
				tr = NewWire(&counter)
			case "binary":
				tr = NewBinaryWire(&counter)
			case "binary-batch8":
				bw := NewBinaryWire(&counter)
				if err := bw.SetBatch(8, 0); err != nil {
					b.Fatal(err)
				}
				tr = bw
			}
			gen := newRoundGen("node1")
			publish := func() {
				if err := tr.Publish(gen.next()); err != nil {
					b.Fatal(err)
				}
			}
			for gen.r.Seq < 32 { // warm: names interned, gob types sent
				publish()
			}
			if bw, ok := tr.(*BinaryWire); ok {
				if err := bw.Flush(); err != nil {
					b.Fatal(err)
				}
			}
			startBytes, startWrites := counter.n.Load(), counter.writes.Load()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				publish()
			}
			b.StopTimer()
			// Flush the tail so a partial batch's bytes are accounted.
			if bw, ok := tr.(*BinaryWire); ok {
				if err := bw.Flush(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(counter.n.Load()-startBytes)/float64(b.N), "wire-bytes/round")
			b.ReportMetric(float64(counter.writes.Load()-startWrites)/float64(b.N), "frames/round")
		})
	}
}

// countingConn counts written bytes and write calls (frames) and
// discards the data. Counters are atomic so tests can observe a
// deadline flush from the wire's timer goroutine.
type countingConn struct {
	discardConn
	n      atomic.Int64
	writes atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.n.Add(int64(len(p)))
	c.writes.Add(1)
	return len(p), nil
}

// BenchmarkWireDecode measures decoding one steady-state round with each
// codec, from a pre-encoded stream (the serving loop's work per round,
// minus the socket).
func BenchmarkWireDecode(b *testing.B) {
	const chunk = 512
	b.Run("gob", func(b *testing.B) {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		gen := newRoundGen("node1")
		for seq := int64(1); seq <= chunk; seq++ {
			if err := enc.Encode(gen.next()); err != nil {
				b.Fatal(err)
			}
		}
		stream := buf.Bytes()
		var dec *gob.Decoder
		var rd *bytes.Reader
		reset := func() {
			rd = bytes.NewReader(stream)
			dec = gob.NewDecoder(rd)
		}
		reset()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%chunk == 0 {
				reset()
			}
			var r Round
			if err := dec.Decode(&r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		enc := NewBinaryEncoder()
		gen := newRoundGen("node1")
		var stream []byte
		for seq := int64(1); seq <= chunk; seq++ {
			stream = enc.AppendRound(stream, gen.next())
		}
		var dec *BinaryDecoder
		var pos int
		reset := func() {
			dec = NewBinaryDecoder()
			pos = 4 // past the stream header
		}
		reset()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%chunk == 0 {
				reset()
			}
			n, w := binary.Uvarint(stream[pos:])
			if w <= 0 {
				b.Fatal("bad frame")
			}
			if _, err := dec.DecodeFrame(stream[pos+w : pos+w+int(n)]); err != nil {
				b.Fatal(err)
			}
			pos += w + int(n)
		}
	})
}

// BenchmarkAggregatorIngest measures folding one node round into the
// aggregator: per-node detector banks, epoch fold, merged log — the
// aggregator-side cost of one round at steady state.
func BenchmarkAggregatorIngest(b *testing.B) {
	for _, nodes := range []int{1, 3, 32, 128} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			a := New(Config{Detect: testDetect()})
			names := make([]string, nodes)
			for i := range names {
				names[i] = fmt.Sprintf("node%d", i+1)
			}
			a.Expect(names...)
			gens := make([]*roundGen, nodes)
			for i, n := range names {
				gens[i] = newRoundGen(n)
			}
			seq := int64(0)
			round := func() {
				seq++
				for _, g := range gens {
					a.Ingest(g.at(seq))
				}
			}
			for seq < 64 { // past window fill and first epochs
				round()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				round()
			}
			b.StopTimer()
			if a.Epoch() < int64(64+b.N-4) {
				b.Fatalf("epochs did not keep up: %d", a.Epoch())
			}
		})
	}
}

// BenchmarkAggregatorParallelIngest measures the aggregator under fleet
// fan-in: one publisher goroutine per node (the shape a wire deployment
// produces — one serving goroutine per node connection), all ingesting
// their round for the same epoch concurrently. One benchmark op is one
// full cluster round (N concurrent ingests plus the epoch fold they
// complete); the per-round barrier models the shared sampling cadence
// and keeps per-node drift below the staleness eviction window.
func BenchmarkAggregatorParallelIngest(b *testing.B) {
	for _, nodes := range []int{8, 32} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			a := New(Config{Detect: testDetect()})
			names := make([]string, nodes)
			for i := range names {
				names[i] = fmt.Sprintf("node%d", i+1)
			}
			a.Expect(names...)
			feeds := make([]chan int64, nodes)
			var done sync.WaitGroup
			for i, n := range names {
				feeds[i] = make(chan int64, 1)
				gen := newRoundGen(n)
				go func(feed <-chan int64, g *roundGen) {
					for seq := range feed {
						a.Ingest(g.at(seq))
						done.Done()
					}
				}(feeds[i], gen)
			}
			seq := int64(0)
			round := func() {
				seq++
				done.Add(nodes)
				for _, feed := range feeds {
					feed <- seq
				}
				done.Wait()
			}
			for seq < 64 { // past window fill and first epochs
				round()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				round()
			}
			b.StopTimer()
			for _, feed := range feeds {
				close(feed)
			}
			if a.Epoch() < seq-4 {
				b.Fatalf("epochs did not keep up: %d of %d", a.Epoch(), seq)
			}
		})
	}
}

// BenchmarkForwarderObserve measures the node-side cost of shipping a
// sampling round: the forwarder wrapping the collector's borrowed batch
// and the transport consuming it. The in-proc case includes the full
// aggregator ingest; the wire cases are pure encode+write.
func BenchmarkForwarderObserve(b *testing.B) {
	cases := []struct {
		name string
		tr   func() Transport
	}{
		{"inproc", func() Transport {
			a := New(Config{Detect: testDetect()})
			a.Expect("node1")
			return NewInProc(a)
		}},
		{"wire-gob", func() Transport { return NewWire(discardConn{}) }},
		{"wire-binary", func() Transport { return NewBinaryWire(&countingConn{}) }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			fw := NewForwarder("node1", tc.tr())
			gen := newRoundGen("node1")
			now := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
			observe := func() {
				r := gen.at(fw.Rounds() + 1)
				now = now.Add(30 * time.Second)
				fw.ObserveSample(now, r.Samples)
			}
			for fw.Rounds() < 48 {
				observe()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				observe()
			}
			if fw.Errors() > 0 {
				b.Fatalf("%d publish errors", fw.Errors())
			}
		})
	}
}

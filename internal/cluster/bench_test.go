package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"net"
	"testing"
	"time"
)

// The monitoring-plane wire benchmarks: what one steady-state sampling
// round costs to ship (encode+write), to decode, and to fold into the
// aggregator. Every benchmark pre-warms past the cold start (name
// interning, window fill) so the numbers are the forever-after cost the
// cluster pays at sampling cadence. BENCH_baseline.json records the
// before/after history.

// discardConn is a net.Conn that swallows writes — the transports' write
// path without kernel noise.
type discardConn struct{ net.Conn }

func (discardConn) Write(p []byte) (int, error)      { return len(p), nil }
func (discardConn) Close() error                     { return nil }
func (discardConn) SetWriteDeadline(time.Time) error { return nil }

// roundGen yields successive steady-state rounds of a fixed
// 14-component node, mutating one Round in place so generating the next
// round costs no allocation inside a timed loop. Consumers must respect
// the borrow contract (every Transport and Ingest does).
type roundGen struct {
	r Round
}

func newRoundGen(node string) *roundGen {
	g := &roundGen{r: manyRounds(node, 1, 14)[0]}
	g.r.Seq = 0
	return g
}

// at mutates the generator's round to sequence seq and returns it.
func (g *roundGen) at(seq int64) Round {
	g.r.Seq = seq
	g.r.Time = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(seq) * 30 * time.Second)
	for i := range g.r.Samples {
		g.r.Samples[i].Size = int64(10000*(i+1)) + 512*seq
		g.r.Samples[i].Usage = seq * int64(100+i)
		g.r.Samples[i].CPUSeconds = (time.Duration(seq) * time.Duration(i+1) * 10 * time.Millisecond).Seconds()
		g.r.Samples[i].Delta = 64 * seq
	}
	return g.r
}

// next advances and returns the following round.
func (g *roundGen) next() Round { return g.at(g.r.Seq + 1) }

// BenchmarkWirePublish measures shipping one steady-state round through
// each wire transport (encode + write to a discarded connection), and
// reports the steady-state frame size as bytes/round.
func BenchmarkWirePublish(b *testing.B) {
	for _, codec := range []string{"gob", "binary"} {
		b.Run(codec, func(b *testing.B) {
			var tr Transport
			var measure func() int64
			switch codec {
			case "gob":
				var counter countingConn
				tr = NewWire(&counter)
				measure = func() int64 { return counter.n }
			case "binary":
				var counter countingConn
				tr = NewBinaryWire(&counter)
				measure = func() int64 { return counter.n }
			}
			gen := newRoundGen("node1")
			publish := func() {
				if err := tr.Publish(gen.next()); err != nil {
					b.Fatal(err)
				}
			}
			for gen.r.Seq < 32 { // warm: names interned, gob types sent
				publish()
			}
			start := measure()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				publish()
			}
			b.StopTimer()
			b.ReportMetric(float64(measure()-start)/float64(b.N), "wire-bytes/round")
		})
	}
}

// countingConn counts written bytes and discards them.
type countingConn struct {
	discardConn
	n int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// BenchmarkWireDecode measures decoding one steady-state round with each
// codec, from a pre-encoded stream (the serving loop's work per round,
// minus the socket).
func BenchmarkWireDecode(b *testing.B) {
	const chunk = 512
	b.Run("gob", func(b *testing.B) {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		gen := newRoundGen("node1")
		for seq := int64(1); seq <= chunk; seq++ {
			if err := enc.Encode(gen.next()); err != nil {
				b.Fatal(err)
			}
		}
		stream := buf.Bytes()
		var dec *gob.Decoder
		var rd *bytes.Reader
		reset := func() {
			rd = bytes.NewReader(stream)
			dec = gob.NewDecoder(rd)
		}
		reset()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%chunk == 0 {
				reset()
			}
			var r Round
			if err := dec.Decode(&r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		enc := NewBinaryEncoder()
		gen := newRoundGen("node1")
		var stream []byte
		for seq := int64(1); seq <= chunk; seq++ {
			stream = enc.AppendRound(stream, gen.next())
		}
		var dec *BinaryDecoder
		var pos int
		reset := func() {
			dec = NewBinaryDecoder()
			pos = 4 // past the stream header
		}
		reset()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%chunk == 0 {
				reset()
			}
			n, w := binary.Uvarint(stream[pos:])
			if w <= 0 {
				b.Fatal("bad frame")
			}
			if _, err := dec.DecodeFrame(stream[pos+w : pos+w+int(n)]); err != nil {
				b.Fatal(err)
			}
			pos += w + int(n)
		}
	})
}

// BenchmarkAggregatorIngest measures folding one node round into the
// aggregator: per-node detector banks, epoch fold, merged log — the
// aggregator-side cost of one round at steady state.
func BenchmarkAggregatorIngest(b *testing.B) {
	for _, nodes := range []int{1, 3} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			a := New(Config{Detect: testDetect()})
			names := make([]string, nodes)
			for i := range names {
				names[i] = fmt.Sprintf("node%d", i+1)
			}
			a.Expect(names...)
			gens := make([]*roundGen, nodes)
			for i, n := range names {
				gens[i] = newRoundGen(n)
			}
			seq := int64(0)
			round := func() {
				seq++
				for _, g := range gens {
					a.Ingest(g.at(seq))
				}
			}
			for seq < 64 { // past window fill and first epochs
				round()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				round()
			}
			b.StopTimer()
			if a.Epoch() < int64(64+b.N-4) {
				b.Fatalf("epochs did not keep up: %d", a.Epoch())
			}
		})
	}
}

// BenchmarkForwarderObserve measures the node-side cost of shipping a
// sampling round: the forwarder wrapping the collector's borrowed batch
// and the transport consuming it. The in-proc case includes the full
// aggregator ingest; the wire cases are pure encode+write.
func BenchmarkForwarderObserve(b *testing.B) {
	cases := []struct {
		name string
		tr   func() Transport
	}{
		{"inproc", func() Transport {
			a := New(Config{Detect: testDetect()})
			a.Expect("node1")
			return NewInProc(a)
		}},
		{"wire-gob", func() Transport { return NewWire(discardConn{}) }},
		{"wire-binary", func() Transport { return NewBinaryWire(&countingConn{}) }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			fw := NewForwarder("node1", tc.tr())
			gen := newRoundGen("node1")
			now := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
			observe := func() {
				r := gen.at(fw.Rounds() + 1)
				now = now.Add(30 * time.Second)
				fw.ObserveSample(now, r.Samples)
			}
			for fw.Rounds() < 48 {
				observe()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				observe()
			}
			if fw.Errors() > 0 {
				b.Fatalf("%d publish errors", fw.Errors())
			}
		})
	}
}

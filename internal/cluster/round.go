// Package cluster scales the monitoring pipeline from one process to a
// cluster of application-server nodes: each node runs the usual framework
// (weaver, agents, a core.Collector sampling its own components) and
// ships every sampling round through a Transport to an Aggregator, which
// merges the per-node streams, runs the online detectors per node, and
// derives cluster-level (quorum/outlier) verdicts — "component X is aging
// on node 2" or "component X is aging cluster-wide". A Balancer fronts
// the nodes' servlet containers so the existing emulated-browser load
// generator drives the whole cluster unchanged.
//
// Concurrency contract: the Aggregator shards ingestion across
// hash-striped per-node lanes — concurrent Publish calls from N
// forwarder connections contend only when their nodes share a lane, and
// the former global mutex survives only as the fold lock, taken by the
// one round per epoch that advances the watermark (plus joins, leaves
// and staleness eviction). Epoch folding runs off the ingest critical
// section on a bounded worker pool, and the read paths (Epoch,
// TotalRounds, Nodes, Report, DrainNotifications) ride atomics and
// snapshots so monitoring the monitor never stalls ingest; see the lock
// hierarchy on Aggregator. Wire transports deliver each node's rounds in
// order on a dedicated goroutine; cross-node interleaving is absorbed by
// the epoch logic, which folds rounds by per-node sequence number and
// therefore produces transport-independent verdicts — byte-identical
// whatever the lane count, worker count or transport. The Balancer takes
// its own small mutex per request; requests are emulated-browser
// interactions (think-time scale), not join points.
//
// The wire also carries the actuation direction (codec v5, control.go):
// the aggregator pushes drain/rejuvenate/re-admit CONTROL frames down
// the connection a node publishes rounds on, and the node's BinaryWire
// answers with ACK frames interleaved between its BATCH frames. Control
// traffic is command-rate (epochs, not rounds), stateless on the wire,
// and never touches the ingest lanes — SendControl and the ack dispatch
// ride their own leaf mutex.
package cluster

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/jmx"
)

// Round is one node's sampling round as shipped to the aggregator: the
// node identity, the node-local 1-based sequence number, the node-local
// sampling instant, and the per-component measurements. All fields are
// exported so rounds cross process boundaries unchanged (gob over net).
//
// Samples is borrowed along the whole shipping path: the forwarder passes
// the collector's round buffer through Publish, and the wire decoders
// hand the aggregator a reused decode buffer — a Round's samples are only
// valid for the duration of the call that delivers them, and every
// retainer (the aggregator, a custom Transport that buffers) copies.
type Round struct {
	// Node is the reporting node's identity.
	Node string
	// Seq is the node-local 1-based round number. Transports must
	// preserve per-node order; the aggregator drops stale or duplicate
	// sequence numbers.
	Seq int64
	// Time is the node's local sampling instant. Node clocks may
	// disagree (different virtual-clock offsets, unsynchronised hosts);
	// the aggregator normalises per node so merged rounds stay
	// time-ordered.
	Time time.Time
	// Samples holds the round's per-component measurements.
	Samples []core.ComponentSample
}

// Shifted returns the round with its timestamp displaced by d (the
// Samples are shared, not copied). Chaos harnesses use it to model a
// skewed node clock without reaching into the struct.
func (r Round) Shifted(d time.Duration) Round {
	r.Time = r.Time.Add(d)
	return r
}

// Forwarder ships a collector's sampling rounds to a transport. It
// implements core.SampleObserver, so wiring a node into a cluster is one
// Subscribe call (see Attach); it runs under the collector's round lock
// and therefore needs no synchronisation of its own beyond the error
// counter, which other goroutines may read.
type Forwarder struct {
	node string
	tr   Transport
	seq  int64
	errs atomic.Int64
}

// NewForwarder creates a forwarder publishing rounds for node over tr.
func NewForwarder(node string, tr Transport) *Forwarder {
	return &Forwarder{node: node, tr: tr}
}

// Attach subscribes a forwarder to the framework's collector, so every
// future sampling round is shipped to the transport stamped with the
// framework's node identity.
func Attach(f *core.Framework, tr Transport) *Forwarder {
	fw := NewForwarder(f.Node(), tr)
	f.Collector().Subscribe(fw)
	return fw
}

// ObserveSample implements core.SampleObserver: it wraps the batch into a
// Round and publishes it. Publish errors are counted, not propagated —
// a node must keep sampling locally even when its aggregator link is
// down.
//
// The batch is the collector's borrowed round buffer and is handed to the
// transport as-is, without a copy: every Transport consumes the round
// before Publish returns (the in-proc transport ingests synchronously and
// the aggregator copies what it retains; the wire transports finish
// encoding the frame inside Publish), so the forwarder ships a round with
// zero per-round garbage. An out-of-tree Transport that buffers rounds
// for later must copy Samples itself — see Transport's contract.
func (f *Forwarder) ObserveSample(now time.Time, batch []core.ComponentSample) {
	f.seq++
	r := Round{
		Node:    f.node,
		Seq:     f.seq,
		Time:    now,
		Samples: batch,
	}
	if err := f.tr.Publish(r); err != nil {
		f.errs.Add(1)
	}
}

// Errors returns how many rounds failed to publish.
func (f *Forwarder) Errors() int64 { return f.errs.Load() }

// Rounds returns how many rounds the forwarder has published (attempted).
func (f *Forwarder) Rounds() int64 { return f.seq }

// roundDropper is the optional transport facet reporting rounds the
// transport accepted but never delivered (both wire transports implement
// it; see RetryPolicy).
type roundDropper interface {
	DroppedRounds() int64
}

// Dropped returns how many rounds the underlying transport dropped after
// exhausting its write retries (0 for transports without the counter).
func (f *Forwarder) Dropped() int64 {
	if d, ok := f.tr.(roundDropper); ok {
		return d.DroppedRounds()
	}
	return 0
}

// ForwarderName returns the JMX object name of a node's forwarder bean.
func ForwarderName(node string) jmx.ObjectName {
	return jmx.MustObjectName("aging:type=Forwarder,node=" + node)
}

// Bean exposes the forwarder's publish counters — rounds attempted,
// publish errors, and rounds dropped by the transport's retry policy.
func (f *Forwarder) Bean() *jmx.Bean {
	return jmx.NewBean("cluster round forwarder: publish and drop counters").
		Attr("Rounds", "rounds published (attempted)", func() any { return f.Rounds() }).
		Attr("Errors", "rounds that failed to publish", func() any { return f.Errors() }).
		Attr("DroppedRounds", "rounds dropped after the transport exhausted its retries", func() any { return f.Dropped() })
}

package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"time"
)

func TestWheelInterleavedReference(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 7))
		e := NewEngine()
		type rev struct {
			atNs int64
			seq  int
			id   int
		}
		var pending []rev
		var got, want []int
		handles := map[int]uint64{}
		seq := 0
		nextID := 0
		spans := []int64{int64(200 * time.Millisecond), int64(30 * time.Second), int64(2 * time.Hour), int64(60 * 24 * time.Hour)}
		for op := 0; op < 400; op++ {
			switch rng.IntN(4) {
			case 0, 1: // schedule
				d := time.Duration(rng.Int64N(spans[rng.IntN(len(spans))]))
				if rng.IntN(8) == 0 {
					d = d / time.Second * time.Second
				}
				at := e.Now().Add(d)
				id := nextID
				nextID++
				seq++
				handles[id] = e.Schedule(at, func(time.Time) { got = append(got, id) })
				pending = append(pending, rev{atNs: at.Sub(Epoch).Nanoseconds(), seq: seq, id: id})
			case 2: // cancel random pending
				if len(pending) > 0 {
					k := rng.IntN(len(pending))
					victim := pending[k]
					if e.Cancel(handles[victim.id]) {
						pending = append(pending[:k], pending[k+1:]...)
					} else {
						t.Fatalf("trial %d: Cancel false for pending id %d", trial, victim.id)
					}
				}
			case 3: // run forward
				d := time.Duration(rng.Int64N(int64(90 * time.Second)))
				deadline := e.Now().Add(d)
				dn := deadline.Sub(Epoch).Nanoseconds()
				e.RunUntil(deadline)
				// reference: all pending with at <= deadline run in order
				sort.Slice(pending, func(i, j int) bool {
					if pending[i].atNs != pending[j].atNs {
						return pending[i].atNs < pending[j].atNs
					}
					return pending[i].seq < pending[j].seq
				})
				k := 0
				for k < len(pending) && pending[k].atNs <= dn {
					want = append(want, pending[k].id)
					k++
				}
				pending = pending[k:]
			}
		}
		e.Drain()
		sort.Slice(pending, func(i, j int) bool {
			if pending[i].atNs != pending[j].atNs {
				return pending[i].atNs < pending[j].atNs
			}
			return pending[i].seq < pending[j].seq
		})
		for _, p := range pending {
			want = append(want, p.id)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: executed %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pos %d got %d want %d", trial, i, got[i], want[i])
			}
		}
	}
}

package sim

import (
	"fmt"
	"time"
)

// Event is a callback scheduled at a virtual instant. Events run on the
// engine goroutine; they may schedule further events.
type Event func(now time.Time)

// Engine is a single-threaded discrete-event executor over a VirtualClock.
// It is intentionally not safe for concurrent scheduling: all experiment
// logic runs inside event callbacks on one goroutine, which is what makes
// runs deterministic.
//
// Timers are kept in a hierarchical timing wheel (see wheel.go), so
// Schedule and Cancel are O(1) and the steady-state event path allocates
// nothing. Execution order is strictly (instant, schedule-sequence): FIFO
// within an instant, which the reproducibility of every experiment depends
// on.
type Engine struct {
	clock    *VirtualClock
	wheel    wheel
	seq      uint64
	live     int
	executed uint64
	stopped  bool
}

// NewEngine returns an engine driving a fresh VirtualClock set to Epoch.
func NewEngine() *Engine {
	e := &Engine{clock: NewVirtualClock()}
	e.wheel.init()
	return e
}

// Clock returns the engine's virtual clock.
func (e *Engine) Clock() *VirtualClock { return e.clock }

// Now returns the current virtual instant.
func (e *Engine) Now() time.Time { return e.clock.Now() }

// Len reports the number of pending (non-cancelled) events.
func (e *Engine) Len() int { return e.live }

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Reserve pre-sizes the event arena for an expected live-event population,
// so bulk scheduling (a million session timers) grows the arena once at
// setup instead of doubling through the run.
func (e *Engine) Reserve(n int) { e.wheel.reserve(n) }

// Schedule runs fn at the given absolute virtual instant and returns a
// handle that can cancel it. Scheduling in the past panics — it would be a
// logic bug in the caller, not a recoverable condition.
func (e *Engine) Schedule(at time.Time, fn Event) uint64 {
	if fn == nil {
		panic("sim: Schedule with nil event")
	}
	idx := e.scheduleEntry(at)
	e.wheel.entries[idx].fn = fn
	id := e.wheel.handle(idx)
	e.wheel.insert(idx)
	return id
}

// ScheduleAfter runs fn after delay d from the current instant. A negative
// delay is clamped to zero.
func (e *Engine) ScheduleAfter(d time.Duration, fn Event) uint64 {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.clock.Now().Add(d), fn)
}

// ScheduleArg runs fn(now, arg) at the given absolute instant. It exists
// for high-fan-out callers (a million sessions each scheduling their next
// fire): the callback is shared and the distinguishing state rides in arg,
// so no per-event closure is ever allocated.
func (e *Engine) ScheduleArg(at time.Time, fn func(now time.Time, arg int64), arg int64) uint64 {
	if fn == nil {
		panic("sim: ScheduleArg with nil event")
	}
	idx := e.scheduleEntry(at)
	en := &e.wheel.entries[idx]
	en.argFn = fn
	en.arg = arg
	id := e.wheel.handle(idx)
	e.wheel.insert(idx)
	return id
}

// ScheduleArgAfter is ScheduleArg with a delay relative to the current
// instant. A negative delay is clamped to zero.
func (e *Engine) ScheduleArgAfter(d time.Duration, fn func(now time.Time, arg int64), arg int64) uint64 {
	if d < 0 {
		d = 0
	}
	return e.ScheduleArg(e.clock.Now().Add(d), fn, arg)
}

// scheduleEntry validates the instant, allocates an arena entry stamped
// with it, and counts it live. The caller sets the callback and inserts.
func (e *Engine) scheduleEntry(at time.Time) int32 {
	if at.Before(e.clock.Now()) {
		panic(fmt.Sprintf("sim: Schedule at %v before now %v", at, e.clock.Now()))
	}
	e.seq++
	idx := e.wheel.alloc()
	en := &e.wheel.entries[idx]
	en.atNs = at.Sub(Epoch).Nanoseconds()
	en.seq = e.seq
	en.state = entryPending
	e.live++
	return idx
}

// Cancel prevents the event with the given handle from running. Cancelling
// an already-run or unknown handle is a no-op and reports false. Cost is
// O(1): a wheel-resident entry is unlinked from its (doubly linked) slot
// chain and reclaimed on the spot; batch- and overflow-resident entries
// are marked dead and skipped on drain.
func (e *Engine) Cancel(id uint64) bool {
	idx, ok := e.wheel.resolve(id)
	if !ok {
		return false
	}
	en := &e.wheel.entries[idx]
	e.live--
	if en.level >= 0 {
		e.wheel.unlink(idx)
		e.wheel.free(idx)
		return true
	}
	en.state = entryCancelled
	en.fn = nil
	en.argFn = nil
	return true
}

// Stop makes the current Run return after the in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event, advancing the clock to
// its instant. It reports whether an event ran.
func (e *Engine) Step() bool {
	idx, ok := e.next()
	if !ok {
		return false
	}
	e.wheel.batchHead++
	en := &e.wheel.entries[idx]
	at := Epoch.Add(time.Duration(en.atNs))
	fn, argFn, arg := en.fn, en.argFn, en.arg
	// Recycle before running: the event may schedule follow-ups (the
	// completion → next-job chain), which can then reuse this entry.
	e.wheel.free(idx)
	e.live--
	e.clock.SetNow(at)
	e.executed++
	if fn != nil {
		fn(at)
	} else {
		argFn(at, arg)
	}
	return true
}

// next exposes the earliest pending entry, advancing the wheel cursor as
// needed. The entry stays at the batch head until Step consumes it.
func (e *Engine) next() (int32, bool) {
	for {
		if idx, ok := e.wheel.batchNext(); ok {
			return idx, true
		}
		if e.live == 0 || !e.wheel.loadNext() {
			return 0, false
		}
	}
}

// RunUntil executes events in order until the queue is empty, Stop is
// called, or the next event lies strictly after deadline. The clock is left
// at deadline when the horizon is reached with events still pending, so
// time-series recorded against the clock have a well-defined end.
func (e *Engine) RunUntil(deadline time.Time) {
	e.stopped = false
	deadlineNs := deadline.Sub(Epoch).Nanoseconds()
	for !e.stopped {
		idx, ok := e.next()
		if !ok {
			break
		}
		if e.wheel.entries[idx].atNs > deadlineNs {
			e.clock.SetNow(deadline)
			return
		}
		e.Step()
	}
	if e.clock.Now().Before(deadline) && !e.stopped {
		e.clock.SetNow(deadline)
	}
}

// RunFor is RunUntil with a horizon relative to the current instant.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.clock.Now().Add(d))
}

// Drain executes every pending event regardless of horizon.
func (e *Engine) Drain() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Every schedules fn to run at the given period until the returned stop
// function is invoked or the engine drains. The first firing happens one
// period from now. It is the virtual-time analogue of time.Ticker and is
// used by sampling monitors. Stopping cancels the pending tick, so a
// stopped ticker holds no queue slot.
func (e *Engine) Every(period time.Duration, fn Event) (stop func()) {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	stopped := false
	var id uint64
	var tick Event
	tick = func(now time.Time) {
		if stopped {
			return
		}
		fn(now)
		if !stopped {
			id = e.ScheduleAfter(period, tick)
		}
	}
	id = e.ScheduleAfter(period, tick)
	return func() {
		if stopped {
			return
		}
		stopped = true
		e.Cancel(id)
	}
}

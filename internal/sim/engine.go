package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a callback scheduled at a virtual instant. Events run on the
// engine goroutine; they may schedule further events.
type Event func(now time.Time)

// scheduled is one pending event. seq breaks ties between events scheduled
// for the same instant so execution order is deterministic (FIFO within an
// instant), which the reproducibility of every experiment depends on.
type scheduled struct {
	at  time.Time
	seq uint64
	fn  Event
	id  uint64
}

type eventQueue []*scheduled

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*scheduled)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Engine is a single-threaded discrete-event executor over a VirtualClock.
// It is intentionally not safe for concurrent scheduling: all experiment
// logic runs inside event callbacks on one goroutine, which is what makes
// runs deterministic.
type Engine struct {
	clock     *VirtualClock
	queue     eventQueue
	free      []*scheduled // recycled entries; Schedule reuses before allocating
	seq       uint64
	nextID    uint64
	cancelled map[uint64]bool
	executed  uint64
	stopped   bool
}

// NewEngine returns an engine driving a fresh VirtualClock set to Epoch.
func NewEngine() *Engine {
	return &Engine{
		clock:     NewVirtualClock(),
		cancelled: make(map[uint64]bool),
	}
}

// Clock returns the engine's virtual clock.
func (e *Engine) Clock() *VirtualClock { return e.clock }

// Now returns the current virtual instant.
func (e *Engine) Now() time.Time { return e.clock.Now() }

// Len reports the number of pending (non-cancelled) events.
func (e *Engine) Len() int { return len(e.queue) - len(e.cancelled) }

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Schedule runs fn at the given absolute virtual instant and returns a
// handle that can cancel it. Scheduling in the past panics — it would be a
// logic bug in the caller, not a recoverable condition.
func (e *Engine) Schedule(at time.Time, fn Event) uint64 {
	if at.Before(e.clock.Now()) {
		panic(fmt.Sprintf("sim: Schedule at %v before now %v", at, e.clock.Now()))
	}
	if fn == nil {
		panic("sim: Schedule with nil event")
	}
	e.seq++
	e.nextID++
	var it *scheduled
	if n := len(e.free); n > 0 {
		it, e.free = e.free[n-1], e.free[:n-1]
		*it = scheduled{at: at, seq: e.seq, fn: fn, id: e.nextID}
	} else {
		it = &scheduled{at: at, seq: e.seq, fn: fn, id: e.nextID}
	}
	heap.Push(&e.queue, it)
	return e.nextID
}

// ScheduleAfter runs fn after delay d from the current instant. A negative
// delay is clamped to zero.
func (e *Engine) ScheduleAfter(d time.Duration, fn Event) uint64 {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.clock.Now().Add(d), fn)
}

// Cancel prevents the event with the given handle from running. Cancelling
// an already-run or unknown handle is a no-op and reports false.
func (e *Engine) Cancel(id uint64) bool {
	for _, s := range e.queue {
		if s.id == id && !e.cancelled[id] {
			e.cancelled[id] = true
			return true
		}
	}
	return false
}

// Stop makes the current Run return after the in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event, advancing the clock to
// its instant. It reports whether an event ran.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		it := heap.Pop(&e.queue).(*scheduled)
		if e.cancelled[it.id] {
			delete(e.cancelled, it.id)
			e.recycle(it)
			continue
		}
		e.clock.SetNow(it.at)
		e.executed++
		fn, at := it.fn, it.at
		// Recycle before running: the event may schedule follow-ups (the
		// completion → next-job chain), which can then reuse this entry.
		e.recycle(it)
		fn(at)
		return true
	}
	return false
}

// recycle returns a popped queue entry to the free list, dropping its
// closure reference so the list pins no callback state.
func (e *Engine) recycle(it *scheduled) {
	it.fn = nil
	e.free = append(e.free, it)
}

// RunUntil executes events in order until the queue is empty, Stop is
// called, or the next event lies strictly after deadline. The clock is left
// at deadline when the horizon is reached with events still pending, so
// time-series recorded against the clock have a well-defined end.
func (e *Engine) RunUntil(deadline time.Time) {
	e.stopped = false
	for !e.stopped {
		next, ok := e.peek()
		if !ok {
			break
		}
		if next.After(deadline) {
			e.clock.SetNow(deadline)
			return
		}
		e.Step()
	}
	if e.clock.Now().Before(deadline) && !e.stopped {
		e.clock.SetNow(deadline)
	}
}

// RunFor is RunUntil with a horizon relative to the current instant.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.clock.Now().Add(d))
}

// Drain executes every pending event regardless of horizon.
func (e *Engine) Drain() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

func (e *Engine) peek() (time.Time, bool) {
	for len(e.queue) > 0 {
		it := e.queue[0]
		if e.cancelled[it.id] {
			heap.Pop(&e.queue)
			delete(e.cancelled, it.id)
			continue
		}
		return it.at, true
	}
	return time.Time{}, false
}

// Every schedules fn to run at the given period until the returned stop
// function is invoked or the engine drains. The first firing happens one
// period from now. It is the virtual-time analogue of time.Ticker and is
// used by sampling monitors.
func (e *Engine) Every(period time.Duration, fn Event) (stop func()) {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	stopped := false
	var tick Event
	tick = func(now time.Time) {
		if stopped {
			return
		}
		fn(now)
		if !stopped {
			e.ScheduleAfter(period, tick)
		}
	}
	e.ScheduleAfter(period, tick)
	return func() { stopped = true }
}

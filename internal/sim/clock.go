// Package sim provides a deterministic discrete-event simulation substrate:
// a virtual clock, an event engine with stable ordering, and seeded random
// number streams with the distributions the workload generators need.
//
// The paper's experiments are one-hour wall-clock executions on a 2010-era
// testbed. The reproduction runs those experiments in virtual time so they
// are fast and bit-reproducible; components that need a time source accept
// the Clock interface so the same code also runs against the wall clock.
//
// Concurrency contract: the Engine is deliberately single-threaded — all
// scheduling and event execution happen on one goroutine, which is what
// makes experiments deterministic; it must never be driven from two
// goroutines. The clocks are the exception: VirtualClock (RWMutex) and
// WallClock may be read from any goroutine, because monitoring agents and
// benchmarks sample time concurrently in the real-time container mode.
// Streams (random numbers) and LoadProfiles are single-owner like the
// engine that draws from them.
package sim

import (
	"sync"
	"time"
)

// Epoch is the instant at which every virtual clock starts. The concrete
// date is arbitrary; experiments only ever use durations relative to it.
var Epoch = time.Date(2010, time.January, 1, 0, 0, 0, 0, time.UTC)

// Clock is a minimal time source. Both the virtual clock and the wall clock
// implement it, so instrumented code is oblivious to which one drives it.
type Clock interface {
	// Now returns the current instant of this clock.
	Now() time.Time
}

// WallClock is the real-time Clock backed by time.Now.
type WallClock struct{}

// Now implements Clock using the operating system clock.
func (WallClock) Now() time.Time { return time.Now() }

// VirtualClock is a manually advanced Clock. The zero value is not ready to
// use; create one with NewVirtualClock. It is safe for concurrent use, which
// matters because monitoring agents may sample it from multiple goroutines
// in the real-time container mode used by benchmarks.
type VirtualClock struct {
	mu  sync.RWMutex
	now time.Time
}

// NewVirtualClock returns a virtual clock set to Epoch.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: Epoch}
}

// Now returns the current virtual instant.
func (c *VirtualClock) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

// Advance moves the clock forward by d. Advancing by a negative duration
// panics: virtual time is monotone by construction and a backwards step
// would silently corrupt every time series recorded against the clock.
func (c *VirtualClock) Advance(d time.Duration) {
	if d < 0 {
		panic("sim: negative Advance on VirtualClock")
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// SetNow jumps the clock to t. Like Advance, moving backwards panics.
func (c *VirtualClock) SetNow(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Before(c.now) {
		panic("sim: SetNow would move VirtualClock backwards")
	}
	c.now = t
}

// Since returns the virtual duration elapsed since t.
func (c *VirtualClock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

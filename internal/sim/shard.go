package sim

import (
	"fmt"
	"sync"
	"time"
)

// ShardGroup runs N independent engines in bounded-lag lockstep: virtual
// time advances in fixed windows, every shard runs one window concurrently
// on its own goroutine, and a barrier closes the window before the next
// begins. No shard's clock ever leads another's by more than one window —
// the conservative-synchronisation contract of parallel discrete-event
// simulation.
//
// Shards share nothing during a window; cross-shard effects (telemetry
// merges, load rebalancing, coordinated phase changes) belong in the
// onWindow hook, which runs serially on the caller's goroutine with
// exclusive access to every shard. Because each engine is deterministic
// and windows only exchange state at barriers in shard order, a run's
// merged outcome is a pure function of (seed, workload, window) — the
// shard count and goroutine scheduling change wall-clock speed, never
// results. The load tier's golden tests pin exactly that.
type ShardGroup struct {
	shards []*Engine
	window time.Duration
}

// NewShardGroup creates n engines, all at Epoch, stepped in windows of the
// given size. Window choice trades barrier overhead against lag bound; the
// load tier uses 100 ms — coarse enough to amortise the barrier, fine
// enough that per-window merges feel continuous at WIPS timescales.
func NewShardGroup(n int, window time.Duration) *ShardGroup {
	if n < 1 {
		panic(fmt.Sprintf("sim: ShardGroup with %d shards", n))
	}
	if window <= 0 {
		panic("sim: ShardGroup with non-positive window")
	}
	g := &ShardGroup{window: window, shards: make([]*Engine, n)}
	for i := range g.shards {
		g.shards[i] = NewEngine()
	}
	return g
}

// N returns the shard count.
func (g *ShardGroup) N() int { return len(g.shards) }

// Shard returns shard i's engine. Outside RunUntil the caller owns every
// shard; during a window only the shard's own events may touch it.
func (g *ShardGroup) Shard(i int) *Engine { return g.shards[i] }

// Window returns the pacing window.
func (g *ShardGroup) Window() time.Duration { return g.window }

// Now returns the group's committed virtual time — the instant every shard
// has reached. Between windows all shard clocks agree.
func (g *ShardGroup) Now() time.Time { return g.shards[0].Now() }

// RunUntil drives every shard to deadline in window-sized rounds. After
// each barrier, onWindow (if non-nil) observes the group at the window's
// end instant. The final window is truncated to land exactly on deadline.
func (g *ShardGroup) RunUntil(deadline time.Time, onWindow func(now time.Time)) {
	var wg sync.WaitGroup
	for now := g.Now(); now.Before(deadline); {
		end := now.Add(g.window)
		if end.After(deadline) {
			end = deadline
		}
		if len(g.shards) == 1 {
			// Single shard needs no fan-out; keep the hot path free of
			// goroutine churn so shards=1 matches a plain Engine run.
			g.shards[0].RunUntil(end)
		} else {
			wg.Add(len(g.shards))
			for _, sh := range g.shards {
				// end is a parameter, not a capture: a captured loop-local
				// would be heap-moved and cost one allocation per window.
				go func(sh *Engine, end time.Time) {
					defer wg.Done()
					sh.RunUntil(end)
				}(sh, end)
			}
			wg.Wait()
		}
		if onWindow != nil {
			onWindow(end)
		}
		now = end
	}
}

// RunFor is RunUntil with a horizon relative to the group's committed
// time.
func (g *ShardGroup) RunFor(d time.Duration, onWindow func(now time.Time)) {
	g.RunUntil(g.Now().Add(d), onWindow)
}

package sim

import (
	"math/bits"
	"time"
)

// This file implements the engine's hierarchical timing wheel — the O(1)
// replacement for the binary heap the event queue started life as. The
// workload it is shaped for is the load tier's: millions of think-time
// timers clustering around TPC-W's 7-second mean, scheduled and fired (or
// cancelled) at a rate that made the heap's O(log n) pushes and the
// O(queue) Cancel scan the dominant cost of driving large populations.
//
// Layout: virtual time is measured in ticks of 2^20 ns (~1.05 ms) since
// Epoch. Four levels of 256 slots each cover spans of 2^8, 2^16, 2^24 and
// 2^32 ticks (~268 ms, ~69 s, ~4.9 h, ~52 d): an event lands in the level
// whose span covers its distance from the cursor, in the slot indexed by
// its tick's bits for that level. Think times land in level 1; only
// far-future events (beyond ~52 days) spill into a small overflow heap.
// Scheduling is therefore O(1): pick level by delta, prepend to an
// intrusive slot chain. Cancellation is O(1): entries live in a
// generation-stamped arena, so a handle resolves to its entry directly and
// cancellation just marks it dead (lazy removal on drain, exactly like the
// heap engine's skip-on-pop).
//
// Execution order is unchanged from the heap engine: strictly (instant,
// schedule-sequence), FIFO within an instant. Slot chains are unordered,
// so when the cursor reaches a level-0 slot its entries are drained into
// a sorted "batch" (sorted by (at, seq)); higher-level slots cascade their
// entries down a level as the cursor enters their window. Each entry
// cascades at most numLevels-1 times in its life, so amortised cost per
// event stays O(1).
//
// The cursor may run ahead of the engine clock (peeking for the next event
// jumps it to that event's tick while RunUntil may leave the clock at an
// earlier deadline). Events scheduled into that gap — legal, since only
// the clock bounds Schedule — go straight into the sorted batch, which
// always holds everything at or before the cursor. The invariant that
// makes ordering correct: batch entries ≤ cursor ≤ every wheel entry.
//
// Everything here is single-goroutine by the Engine's contract, and
// allocation-free at steady state: entries recycle through the arena's
// free list, slot chains are intrusive, and the batch reuses its backing.

const (
	// tickShiftNs sets the wheel resolution: one tick = 2^20 ns ≈ 1.05 ms.
	// Events inside the same tick are still executed in exact (at, seq)
	// order — the tick only decides slot placement, the batch sort decides
	// execution order.
	tickShiftNs = 20
	levelBits   = 8
	levelSlots  = 1 << levelBits
	levelMask   = levelSlots - 1
	numLevels   = 4
	occWords    = levelSlots / 64
	// wheelSpanTicks is the horizon the wheel covers; events further out
	// wait in the overflow heap until the cursor draws within range.
	wheelSpanTicks = int64(1) << (levelBits * numLevels)
)

// Entry lifecycle states.
const (
	entryFree uint8 = iota
	entryPending
	entryCancelled
)

// Entry locations: which container currently holds a pending entry.
// Values ≥ 0 name a wheel level (with slot below); the slot chains there
// are doubly linked, so cancellation unlinks and reclaims immediately.
// Batch and overflow entries are cancelled lazily (marked, skipped on
// drain) — both containers are transient or tiny, so nothing accumulates.
const (
	locBatch int8 = -1
	locHeap  int8 = -2
)

// wentry is one scheduled event in the arena. next/prev thread the
// intrusive slot chains (next alone threads the free list). gen stamps
// handles: a Cancel with a stale generation (the slot was recycled) is a
// no-op, which is what makes O(1) cancel safe against handle reuse.
type wentry struct {
	atNs  int64 // virtual instant, nanoseconds since Epoch
	seq   uint64
	fn    Event
	argFn func(time.Time, int64)
	arg   int64
	next  int32
	prev  int32
	gen   uint32
	level int8
	slot  uint8
	state uint8
}

// wheel is the engine's timer store. It is embedded in Engine; all methods
// run on the engine goroutine.
type wheel struct {
	entries  []wentry
	freeHead int32

	slots [numLevels][levelSlots]int32
	occ   [numLevels][occWords]uint64

	// batch holds due (and gap) entries sorted ascending by (at, seq);
	// batch[batchHead:] is the live window, consumed from the front.
	batch     []int32
	batchHead int

	// overflow is a min-heap (by (at, seq)) of entries beyond the wheel
	// span.
	overflow []int32

	// curTick is the cursor: every tick before it has been drained. It
	// never moves past an undrained event and may run ahead of the clock.
	curTick int64

	// scratch is reused by level-0 drains.
	scratch []int32
}

func (w *wheel) init() {
	w.freeHead = -1
	for l := range w.slots {
		for s := range w.slots[l] {
			w.slots[l][s] = -1
		}
	}
}

// reserve grows the arena's backing capacity so the next n-len(entries)
// allocations append without reallocating. Entries are index-addressed, so
// moving the backing array between events is safe.
func (w *wheel) reserve(n int) {
	if n <= cap(w.entries) {
		return
	}
	grown := make([]wentry, len(w.entries), n)
	copy(grown, w.entries)
	w.entries = grown
}

// alloc takes an entry from the free list (or grows the arena) and returns
// its index. The entry keeps its generation from previous lives.
func (w *wheel) alloc() int32 {
	if w.freeHead >= 0 {
		idx := w.freeHead
		w.freeHead = w.entries[idx].next
		return idx
	}
	w.entries = append(w.entries, wentry{gen: 1})
	return int32(len(w.entries) - 1)
}

// free recycles an entry: bump the generation so stale handles miss, drop
// callback references so the arena pins no closure state, and push it onto
// the free list.
func (w *wheel) free(idx int32) {
	en := &w.entries[idx]
	en.gen++
	en.state = entryFree
	en.fn = nil
	en.argFn = nil
	en.next = w.freeHead
	w.freeHead = idx
}

// handle packs an entry reference into the public uint64 id.
func (w *wheel) handle(idx int32) uint64 {
	return uint64(w.entries[idx].gen)<<32 | uint64(uint32(idx))
}

// resolve returns the entry index for a handle if it still names a pending
// entry.
func (w *wheel) resolve(id uint64) (int32, bool) {
	idx := int32(uint32(id))
	if idx < 0 || int(idx) >= len(w.entries) {
		return 0, false
	}
	en := &w.entries[idx]
	if en.gen != uint32(id>>32) || en.state != entryPending {
		return 0, false
	}
	return idx, true
}

// insert places a pending entry by its distance from the cursor: into the
// sorted batch when at or behind it, into the level whose span covers the
// delta, or into the overflow heap beyond the wheel horizon.
func (w *wheel) insert(idx int32) {
	tick := w.entries[idx].atNs >> tickShiftNs
	delta := tick - w.curTick
	switch {
	case delta <= 0:
		w.batchInsert(idx)
	case delta < 1<<levelBits:
		w.slotPush(0, int(tick&levelMask), idx)
	case delta < 1<<(2*levelBits):
		w.slotPush(1, int((tick>>levelBits)&levelMask), idx)
	case delta < 1<<(3*levelBits):
		w.slotPush(2, int((tick>>(2*levelBits))&levelMask), idx)
	case delta < wheelSpanTicks:
		w.slotPush(3, int((tick>>(3*levelBits))&levelMask), idx)
	default:
		w.heapPush(idx)
	}
}

func (w *wheel) slotPush(level, slot int, idx int32) {
	en := &w.entries[idx]
	head := w.slots[level][slot]
	en.next = head
	en.prev = -1
	en.level = int8(level)
	en.slot = uint8(slot)
	if head >= 0 {
		w.entries[head].prev = idx
	}
	w.slots[level][slot] = idx
	w.occ[level][slot>>6] |= 1 << uint(slot&63)
}

// unlink removes a wheel-resident entry from its slot chain in O(1),
// clearing the occupancy bit when the chain empties. The caller must have
// checked the entry's level is ≥ 0.
func (w *wheel) unlink(idx int32) {
	en := &w.entries[idx]
	level, slot := int(en.level), int(en.slot)
	if en.prev >= 0 {
		w.entries[en.prev].next = en.next
	} else {
		w.slots[level][slot] = en.next
	}
	if en.next >= 0 {
		w.entries[en.next].prev = en.prev
	}
	if w.slots[level][slot] < 0 {
		w.occ[level][slot>>6] &^= 1 << uint(slot&63)
	}
}

// batchInsert places an entry into the sorted batch at its (at, seq)
// position. The batch is small (one tick's worth of events, plus whatever
// lands in the clock/cursor gap), so the memmove is cheap.
func (w *wheel) batchInsert(idx int32) {
	en := &w.entries[idx]
	en.level = locBatch
	lo, hi := w.batchHead, len(w.batch)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		m := &w.entries[w.batch[mid]]
		if m.atNs < en.atNs || (m.atNs == en.atNs && m.seq < en.seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.batch = append(w.batch, 0)
	copy(w.batch[lo+1:], w.batch[lo:])
	w.batch[lo] = idx
}

// batchNext returns the index of the earliest live batched entry, freeing
// cancelled ones as it passes them. It reports false when the batch is
// exhausted (and resets it so the backing array is reused).
func (w *wheel) batchNext() (int32, bool) {
	for w.batchHead < len(w.batch) {
		idx := w.batch[w.batchHead]
		if w.entries[idx].state == entryCancelled {
			w.batchHead++
			w.free(idx)
			continue
		}
		return idx, true
	}
	w.batch = w.batch[:0]
	w.batchHead = 0
	return 0, false
}

// nextOccupied scans level l's occupancy ring for the first set slot at or
// after from, wrapping. wrapped reports that the found slot lies before
// from (i.e. in the level's next window epoch).
func (w *wheel) nextOccupied(l, from int) (slot int, wrapped, ok bool) {
	occ := &w.occ[l]
	word := from >> 6
	b := occ[word] &^ ((1 << uint(from&63)) - 1)
	for {
		if b != 0 {
			s := word<<6 + bits.TrailingZeros64(b)
			return s, false, true
		}
		word++
		if word == occWords {
			break
		}
		b = occ[word]
	}
	for word = 0; word <= from>>6; word++ {
		b = occ[word]
		if word == from>>6 {
			b &= (1 << uint(from&63)) - 1
		}
		if b != 0 {
			s := word<<6 + bits.TrailingZeros64(b)
			return s, true, true
		}
	}
	return 0, false, false
}

// loadNext advances the cursor to the next pending event and loads its
// level-0 slot into the sorted batch. It reports false when no events
// remain anywhere. Higher-level slots encountered on the way cascade their
// entries down; overflow entries are pulled into the wheel as the cursor
// brings them within span.
func (w *wheel) loadNext() bool {
	for {
		// Pull overflow entries that the cursor's progress brought within
		// the wheel horizon.
		for len(w.overflow) > 0 {
			top := w.overflow[0]
			if w.entries[top].atNs>>tickShiftNs-w.curTick >= wheelSpanTicks {
				break
			}
			w.heapPop()
			if w.entries[top].state == entryCancelled {
				w.free(top)
				continue
			}
			w.insert(top)
		}
		// Draining overflow can land entries directly in the batch (their
		// tick equals the cursor after a jump); that already is progress.
		if w.batchHead < len(w.batch) {
			return true
		}

		// Candidate next tick from every level. Level 0 scans from the
		// cursor's own slot (drained slots clear their bit, and no new
		// entry can land in the cursor's current-window slot); higher
		// levels scan from the slot after the cursor's (their cursor slot
		// cascaded when the window was entered). A wrapped hit belongs to
		// the level's next window epoch.
		best := int64(-1)
		bestLevel := -1
		for l := 0; l < numLevels; l++ {
			shift := uint(levelBits * l)
			curL := w.curTick >> shift
			from := int(curL & levelMask)
			if l > 0 {
				from++
				if from == levelSlots {
					// Cursor sits in this level's last slot: the whole
					// window is behind it, every live entry is wrapped.
					from = 0
					if s, _, ok := w.nextOccupied(l, 0); ok {
						cand := ((curL &^ int64(levelMask)) + int64(levelSlots) + int64(s)) << shift
						if best < 0 || cand <= best {
							best, bestLevel = cand, l
						}
					}
					continue
				}
			}
			if s, wrapped, ok := w.nextOccupied(l, from); ok {
				slotTick := (curL &^ int64(levelMask)) + int64(s)
				if wrapped {
					slotTick += int64(levelSlots)
				}
				cand := slotTick << shift
				// <= : a coarser level tying a finer one must win, so its
				// slot cascades before the finer slot drains. Jumping into
				// a coarse slot's span without cascading it would strand
				// that slot's entries for a full wheel revolution.
				if best < 0 || cand <= best {
					best, bestLevel = cand, l
				}
			}
		}
		// The overflow heap can undercut a wrapped high-level candidate,
		// so it competes too; winning just moves the cursor so the next
		// iteration drains it into the wheel.
		if len(w.overflow) > 0 {
			if t := w.entries[w.overflow[0]].atNs >> tickShiftNs; best < 0 || t < best {
				w.jumpTo(t)
				continue
			}
		}
		if bestLevel < 0 {
			return false
		}
		// jumpTo cascades every cursor slot the jump enters — including
		// (bestLevel, bestSlot) itself when bestLevel > 0, and any coarser
		// slot that tied it. Entries landing exactly on the new cursor
		// tick go straight to the batch. The level-0 slot at the cursor
		// tick (if occupied, its entries are exactly at the cursor tick)
		// must merge into the batch before returning, or a cascade-batched
		// entry could fire ahead of an earlier same-tick wheel entry.
		w.jumpTo(best)
		if s0 := int(w.curTick & levelMask); w.slots[0][s0] >= 0 {
			w.drainSlot0(s0)
		}
		if w.batchHead < len(w.batch) {
			return true
		}
	}
}

// jumpTo moves the cursor and re-establishes the invariant the scans rely
// on: at every level, the slot the cursor now occupies holds only
// next-window entries. Any current-window entries that were waiting there
// (the jump entered their span) cascade downward immediately; processing
// levels coarse-to-fine lets each cascade's output be caught by the next.
// Without this, a jump triggered by one level (or the overflow heap) would
// strand another level's entries for a full wheel revolution.
func (w *wheel) jumpTo(tick int64) {
	w.curTick = tick
	for l := numLevels - 1; l >= 1; l-- {
		s := int((tick >> uint(levelBits*l)) & levelMask)
		if w.slots[l][s] >= 0 {
			w.cascade(l, s)
		}
	}
}

// drainSlot0 empties a level-0 slot into the batch in (at, seq) order,
// freeing cancelled entries on the way. It merges with whatever the batch
// already holds (a preceding cascade may have batched same-tick entries).
func (w *wheel) drainSlot0(slot int) {
	idx := w.slots[0][slot]
	w.slots[0][slot] = -1
	w.occ[0][slot>>6] &^= 1 << uint(slot&63)
	w.scratch = w.scratch[:0]
	for idx >= 0 {
		next := w.entries[idx].next
		if w.entries[idx].state == entryCancelled {
			w.free(idx)
		} else {
			w.entries[idx].level = locBatch
			w.scratch = append(w.scratch, idx)
		}
		idx = next
	}
	if len(w.scratch) == 0 {
		return
	}
	w.sortScratch()
	if w.batchHead == len(w.batch) {
		w.batch = append(w.batch[:0], w.scratch...)
		w.batchHead = 0
		return
	}
	for _, id := range w.scratch {
		w.batchInsert(id)
	}
}

// cascade redistributes a higher-level slot's entries now that the cursor
// has entered their window; each lands a level (or more) down, or in the
// batch when its tick equals the cursor's.
func (w *wheel) cascade(level, slot int) {
	idx := w.slots[level][slot]
	w.slots[level][slot] = -1
	w.occ[level][slot>>6] &^= 1 << uint(slot&63)
	for idx >= 0 {
		next := w.entries[idx].next
		if w.entries[idx].state == entryCancelled {
			w.free(idx)
		} else {
			w.insert(idx)
		}
		idx = next
	}
}

// sortScratch orders the drained slot by (at, seq) with a hand-rolled
// insertion/quick hybrid: the stdlib's closure-taking sorts are avoided so
// the drain path provably never allocates.
func (w *wheel) sortScratch() {
	w.quickSort(0, len(w.scratch)-1)
}

func (w *wheel) entryLess(a, b int32) bool {
	ea, eb := &w.entries[a], &w.entries[b]
	return ea.atNs < eb.atNs || (ea.atNs == eb.atNs && ea.seq < eb.seq)
}

func (w *wheel) quickSort(lo, hi int) {
	for hi-lo > 12 {
		// Median-of-three pivot, then partition.
		mid := int(uint(lo+hi) >> 1)
		s := w.scratch
		if w.entryLess(s[mid], s[lo]) {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if w.entryLess(s[hi], s[mid]) {
			s[hi], s[mid] = s[mid], s[hi]
			if w.entryLess(s[mid], s[lo]) {
				s[mid], s[lo] = s[lo], s[mid]
			}
		}
		pivot := s[mid]
		i, j := lo, hi
		for i <= j {
			for w.entryLess(s[i], pivot) {
				i++
			}
			for w.entryLess(pivot, s[j]) {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		// Recurse into the smaller side, loop on the larger.
		if j-lo < hi-i {
			w.quickSort(lo, j)
			lo = i
		} else {
			w.quickSort(i, hi)
			hi = j
		}
	}
	// Insertion sort for small ranges.
	s := w.scratch
	for i := lo + 1; i <= hi; i++ {
		v := s[i]
		j := i - 1
		for j >= lo && w.entryLess(v, s[j]) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// heapPush / heapPop maintain the far-future overflow min-heap by
// (at, seq) without container/heap's interface boxing.
func (w *wheel) heapPush(idx int32) {
	w.entries[idx].level = locHeap
	w.overflow = append(w.overflow, idx)
	i := len(w.overflow) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !w.entryLess(w.overflow[i], w.overflow[parent]) {
			break
		}
		w.overflow[i], w.overflow[parent] = w.overflow[parent], w.overflow[i]
		i = parent
	}
}

func (w *wheel) heapPop() int32 {
	top := w.overflow[0]
	last := len(w.overflow) - 1
	w.overflow[0] = w.overflow[last]
	w.overflow = w.overflow[:last]
	i := 0
	for {
		left := 2*i + 1
		if left >= last {
			break
		}
		smallest := left
		if right := left + 1; right < last && w.entryLess(w.overflow[right], w.overflow[left]) {
			smallest = right
		}
		if !w.entryLess(w.overflow[smallest], w.overflow[i]) {
			break
		}
		w.overflow[i], w.overflow[smallest] = w.overflow[smallest], w.overflow[i]
		i = smallest
	}
	return top
}

package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a, b := NewStream(42), NewStream(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	a, b := NewStream(1), NewStream(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds coincided %d/1000 times", same)
	}
}

func TestDeriveStableDoesNotPerturbParent(t *testing.T) {
	a, b := NewStream(7), NewStream(7)
	_ = DeriveStable(7, 99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("DeriveStable perturbed an unrelated stream")
		}
	}
}

func TestDeriveChildrenDiffer(t *testing.T) {
	parent := NewStream(3)
	c1 := parent.Derive(1)
	c2 := parent.Derive(2)
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("derived children produced identical draws")
	}
}

func TestExpMean(t *testing.T) {
	s := NewStream(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(7)
	}
	mean := sum / n
	if math.Abs(mean-7) > 0.15 {
		t.Fatalf("exponential mean = %.3f, want ~7", mean)
	}
}

func TestTruncExpCap(t *testing.T) {
	s := NewStream(5)
	for i := 0; i < 100000; i++ {
		if v := s.TruncExp(7, 70); v > 70 {
			t.Fatalf("truncated draw %v exceeds cap", v)
		}
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	s := NewStream(1)
	if s.Exp(0) != 0 || s.Exp(-1) != 0 {
		t.Fatal("Exp with non-positive mean should be 0")
	}
}

func TestZipfRange(t *testing.T) {
	s := NewStream(9)
	z := NewZipf(s, 100, 0.8)
	counts := make([]int, 101)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 1 || v > 100 {
			t.Fatalf("Zipf draw %d out of [1,100]", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[100] {
		t.Fatalf("Zipf not skewed: count(1)=%d count(100)=%d", counts[1], counts[100])
	}
}

func TestZipfPanics(t *testing.T) {
	s := NewStream(1)
	for _, tc := range []struct {
		n     int
		theta float64
	}{{0, 0.5}, {10, 0}, {10, 1}, {10, 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d,%v) did not panic", tc.n, tc.theta)
				}
			}()
			NewZipf(s, tc.n, tc.theta)
		}()
	}
}

func TestPickWeighted(t *testing.T) {
	s := NewStream(13)
	w := []float64{0, 1, 0}
	for i := 0; i < 1000; i++ {
		if got := s.PickWeighted(w); got != 1 {
			t.Fatalf("PickWeighted chose zero-weight index %d", got)
		}
	}
}

func TestPickWeightedUniformFallback(t *testing.T) {
	s := NewStream(17)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[s.PickWeighted([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("uniform fallback skewed: counts[%d]=%d", i, c)
		}
	}
}

func TestPickWeightedProportions(t *testing.T) {
	s := NewStream(19)
	counts := make([]int, 2)
	for i := 0; i < 100000; i++ {
		counts[s.PickWeighted([]float64{1, 3})]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weighted ratio = %.2f, want ~3", ratio)
	}
}

func TestPickWeightedNegativePanics(t *testing.T) {
	s := NewStream(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	s.PickWeighted([]float64{1, -1})
}

func TestSplitmixAvalanche(t *testing.T) {
	// Property: flipping one input bit changes many output bits.
	f := func(x uint64) bool {
		a, b := splitmix64(x), splitmix64(x^1)
		diff := a ^ b
		bits := 0
		for diff != 0 {
			bits += int(diff & 1)
			diff >>= 1
		}
		return bits >= 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformHelpers(t *testing.T) {
	s := NewStream(23)
	for i := 0; i < 1000; i++ {
		if v := s.IntN(10); v < 0 || v >= 10 {
			t.Fatalf("IntN out of range: %d", v)
		}
		if v := s.Int64N(10); v < 0 || v >= 10 {
			t.Fatalf("Int64N out of range: %d", v)
		}
		if v := s.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("Perm missing element %d", i)
		}
	}
}

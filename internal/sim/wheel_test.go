package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"time"
)

// refEvent mirrors a scheduled event in a trivially-correct reference
// model: a sorted slice ordered by (at, seq).
type refEvent struct {
	at  time.Time
	seq int
	id  int
}

// TestWheelMatchesReferenceOrder drives the wheel engine and a brute-force
// reference through the same randomized schedule/cancel workload — offsets
// spanning every wheel level and the overflow heap — and requires the
// exact same execution order.
func TestWheelMatchesReferenceOrder(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 99))
	e := NewEngine()
	var ref []refEvent
	var got, want []int

	// Offsets chosen to exercise level 0 (sub-268ms), level 1 (think
	// times), levels 2-3 (hours/days) and the overflow heap (beyond ~52
	// days), plus same-instant ties.
	spans := []time.Duration{
		100 * time.Millisecond,
		10 * time.Second,
		3 * time.Hour,
		20 * 24 * time.Hour,
		90 * 24 * time.Hour,
	}

	handles := make(map[int]uint64)
	seq := 0
	for i := 0; i < 2000; i++ {
		span := spans[rng.IntN(len(spans))]
		d := time.Duration(rng.Int64N(int64(span)))
		if rng.IntN(10) == 0 {
			d = d / time.Second * time.Second // force same-instant collisions
		}
		at := e.Now().Add(d)
		id := i
		seq++
		handles[id] = e.Schedule(at, func(time.Time) { got = append(got, id) })
		ref = append(ref, refEvent{at: at, seq: seq, id: id})

		// Randomly cancel a prior event through both models.
		if i%7 == 3 && len(ref) > 1 {
			victim := ref[rng.IntN(len(ref))].id
			if h, ok := handles[victim]; ok {
				if e.Cancel(h) {
					delete(handles, victim)
					for j, r := range ref {
						if r.id == victim {
							ref = append(ref[:j], ref[j+1:]...)
							break
						}
					}
				}
			}
		}
	}

	if e.Len() != len(ref) {
		t.Fatalf("Len = %d, reference has %d", e.Len(), len(ref))
	}
	e.Drain()

	sort.Slice(ref, func(i, j int) bool {
		if !ref[i].at.Equal(ref[j].at) {
			return ref[i].at.Before(ref[j].at)
		}
		return ref[i].seq < ref[j].seq
	})
	for _, r := range ref {
		want = append(want, r.id)
	}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got id %d, want %d", i, got[i], want[i])
		}
	}
}

// TestWheelFarFutureOverflow pins the overflow-heap path: events beyond
// the wheel horizon still fire, in order, interleaved with near events.
func TestWheelFarFutureOverflow(t *testing.T) {
	e := NewEngine()
	var order []int
	e.ScheduleAfter(365*24*time.Hour, func(time.Time) { order = append(order, 3) })
	e.ScheduleAfter(100*24*time.Hour, func(time.Time) { order = append(order, 2) })
	e.ScheduleAfter(time.Second, func(time.Time) { order = append(order, 1) })
	e.Drain()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("far-future order = %v, want [1 2 3]", order)
	}
	if want := Epoch.Add(365 * 24 * time.Hour); !e.Now().Equal(want) {
		t.Fatalf("clock at %v, want %v", e.Now(), want)
	}
}

// TestWheelCancelFarFuture cancels an overflow-heap event and one in a
// high wheel level; neither may fire and Len must account for both.
func TestWheelCancelFarFuture(t *testing.T) {
	e := NewEngine()
	ran := 0
	far := e.ScheduleAfter(400*24*time.Hour, func(time.Time) { ran++ })
	high := e.ScheduleAfter(30*24*time.Hour, func(time.Time) { ran++ })
	e.ScheduleAfter(time.Second, func(time.Time) { ran++ })
	if !e.Cancel(far) || !e.Cancel(high) {
		t.Fatal("Cancel reported false for pending events")
	}
	if e.Len() != 1 {
		t.Fatalf("Len = %d after cancels, want 1", e.Len())
	}
	e.Drain()
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
}

// TestWheelHandleReuseIsSafe verifies generation stamping: a handle for an
// executed event must stay dead even after its arena slot is recycled by
// later scheduling.
func TestWheelHandleReuseIsSafe(t *testing.T) {
	e := NewEngine()
	stale := e.ScheduleAfter(time.Millisecond, func(time.Time) {})
	e.Drain()
	// Recycle the slot: the next Schedule reuses the freed entry.
	ran := false
	fresh := e.ScheduleAfter(time.Millisecond, func(time.Time) { ran = true })
	if e.Cancel(stale) {
		t.Fatal("stale handle cancelled a recycled entry")
	}
	e.Drain()
	if !ran {
		t.Fatal("recycled entry's event did not run")
	}
	if e.Cancel(fresh) {
		t.Fatal("Cancel after execution reported true")
	}
}

// TestWheelScheduleIntoClockCursorGap pins the batch-insert path: after
// RunUntil leaves the clock behind the wheel cursor (the cursor peeked
// ahead to a future event), scheduling into the gap must still execute in
// correct order.
func TestWheelScheduleIntoClockCursorGap(t *testing.T) {
	e := NewEngine()
	var order []int
	e.ScheduleAfter(10*time.Second, func(time.Time) { order = append(order, 3) })
	// RunFor peeks the 10s event (cursor jumps to its tick) but stops the
	// clock at 1s.
	e.RunFor(time.Second)
	// These land between clock (1s) and cursor (10s): the gap.
	e.ScheduleAfter(5*time.Second, func(time.Time) { order = append(order, 2) })
	e.ScheduleAfter(2*time.Second, func(time.Time) { order = append(order, 1) })
	e.Drain()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("gap scheduling order = %v, want [1 2 3]", order)
	}
}

// TestEngineEveryStopDuringTickReleasesSlot is the regression test for
// Every's stop cancelling its pending reschedule: stopping from inside the
// tick callback must leave no pending event behind.
func TestEngineEveryStopDuringTickReleasesSlot(t *testing.T) {
	e := NewEngine()
	count := 0
	var stop func()
	stop = e.Every(time.Second, func(time.Time) {
		count++
		if count == 2 {
			stop()
		}
	})
	e.RunFor(10 * time.Second)
	if count != 2 {
		t.Fatalf("ticks after stop: count = %d, want 2", count)
	}
	if e.Len() != 0 {
		t.Fatalf("stopped ticker left %d pending events", e.Len())
	}
}

// TestEngineEveryStopOutsideTickCancelsPending stops a ticker between
// firings and checks the queued tick is released immediately.
func TestEngineEveryStopOutsideTickCancelsPending(t *testing.T) {
	e := NewEngine()
	count := 0
	stop := e.Every(time.Second, func(time.Time) { count++ })
	e.RunFor(2500 * time.Millisecond)
	if count != 2 {
		t.Fatalf("count = %d before stop, want 2", count)
	}
	if e.Len() != 1 {
		t.Fatalf("Len = %d with ticker armed, want 1", e.Len())
	}
	stop()
	if e.Len() != 0 {
		t.Fatalf("Len = %d after stop, want 0", e.Len())
	}
	e.RunFor(10 * time.Second)
	if count != 2 {
		t.Fatalf("ticker fired after stop: count = %d", count)
	}
}

// TestScheduleArgSharedCallback exercises the closure-free scheduling path
// used by the load tier: one shared callback, state in arg.
func TestScheduleArgSharedCallback(t *testing.T) {
	e := NewEngine()
	var got []int64
	fn := func(_ time.Time, arg int64) { got = append(got, arg) }
	e.ScheduleArgAfter(2*time.Second, fn, 20)
	e.ScheduleArgAfter(1*time.Second, fn, 10)
	id := e.ScheduleArgAfter(3*time.Second, fn, 30)
	if !e.Cancel(id) {
		t.Fatal("Cancel of ScheduleArg handle reported false")
	}
	e.Drain()
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("args = %v, want [10 20]", got)
	}
}

// TestWheelSteadyStateNoAlloc checks the core load-tier invariant: a
// schedule→fire→reschedule churn loop at think-time scale allocates
// nothing once warm.
func TestWheelSteadyStateNoAlloc(t *testing.T) {
	e := NewEngine()
	const sessions = 512
	fired := 0
	var fn func(time.Time, int64)
	fn = func(now time.Time, arg int64) {
		fired++
		e.ScheduleArgAfter(time.Duration(1+arg%13)*time.Second, fn, arg)
	}
	for i := int64(0); i < sessions; i++ {
		e.ScheduleArgAfter(time.Duration(1+i%13)*time.Second, fn, i)
	}
	// Warm up: populate arena, batch and scratch to steady-state size.
	e.RunFor(5 * time.Minute)

	allocs := testing.AllocsPerRun(10, func() {
		e.RunFor(30 * time.Second)
	})
	if allocs != 0 {
		t.Fatalf("steady-state churn allocated %.1f allocs/run, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("no events fired")
	}
}

// BenchmarkEngineSchedule measures the hot schedule→fire→reschedule cycle
// (one event per op) with a live population keeping every wheel level
// warm. Gate: zero allocs/op.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	const sessions = 100_000
	var fn func(time.Time, int64)
	fn = func(now time.Time, arg int64) {
		// Deterministic pseudo think time in [1s, 14s): the TPC-W band.
		h := splitmix64(uint64(arg) + e.Executed())
		d := time.Second + time.Duration(h%(13*uint64(time.Second)))
		e.ScheduleArgAfter(d, fn, arg)
	}
	for i := int64(0); i < sessions; i++ {
		e.ScheduleArgAfter(time.Duration(1+i%9973)*time.Millisecond, fn, i)
	}
	// Warm the arena and cursor machinery.
	for i := 0; i < sessions; i++ {
		e.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineCancel measures schedule+cancel pairs — the path that was
// O(queue) under the heap engine.
func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine()
	// A large standing population the old linear-scan Cancel would walk.
	for i := int64(0); i < 100_000; i++ {
		e.ScheduleArgAfter(time.Duration(1+i)*time.Millisecond, func(time.Time, int64) {}, i)
	}
	fn := func(time.Time, int64) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := e.ScheduleArgAfter(time.Hour, fn, int64(i))
		e.Cancel(id)
	}
}

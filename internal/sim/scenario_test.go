package sim

import (
	"testing"
	"time"
)

func TestDiurnalProfile(t *testing.T) {
	p := DiurnalProfile(100, 50, 24*time.Hour)
	if got := p(0); got != 50 {
		t.Fatalf("trough = %v, want 50", got)
	}
	if got := p(12 * time.Hour); got != 150 {
		t.Fatalf("peak = %v, want 150", got)
	}
	if got := p(24 * time.Hour); got != 50 {
		t.Fatalf("full period = %v, want 50", got)
	}
	// Amplitude larger than base floors at zero.
	floor := DiurnalProfile(10, 50, time.Hour)
	if got := floor(0); got != 0 {
		t.Fatalf("floored trough = %v, want 0", got)
	}
}

func TestBurstAndStepProfiles(t *testing.T) {
	b := BurstProfile(50, 300, 10*time.Minute, 5*time.Minute)
	for _, tc := range []struct {
		at   time.Duration
		want float64
	}{
		{0, 50}, {10 * time.Minute, 300}, {14 * time.Minute, 300}, {15 * time.Minute, 50},
	} {
		if got := b(tc.at); got != tc.want {
			t.Fatalf("burst(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	s := StepShiftProfile(100, 25, time.Hour)
	if s(time.Hour-time.Second) != 100 || s(time.Hour) != 25 {
		t.Fatal("step shift edge wrong")
	}
}

func TestDiscretizeProfileMergesEqualLevels(t *testing.T) {
	p := StepShiftProfile(100, 200, 30*time.Minute)
	steps := DiscretizeProfile(p, time.Hour, 10*time.Minute)
	if len(steps) != 2 {
		t.Fatalf("steps = %d, want 2 (merged): %+v", len(steps), steps)
	}
	if steps[0].Level != 100 || steps[0].Duration != 30*time.Minute {
		t.Fatalf("first step wrong: %+v", steps[0])
	}
	if steps[1].Level != 200 || steps[1].Offset != 30*time.Minute {
		t.Fatalf("second step wrong: %+v", steps[1])
	}

	// Total durations always cover the horizon exactly.
	var sum time.Duration
	for _, st := range DiscretizeProfile(DiurnalProfile(60, 40, time.Hour), 95*time.Minute, 10*time.Minute) {
		sum += st.Duration
	}
	if sum != 95*time.Minute {
		t.Fatalf("coverage = %v, want 95m", sum)
	}
}

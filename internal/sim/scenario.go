package sim

import (
	"math"
	"time"
)

// LoadProfile describes a time-varying load level: given the elapsed time
// since the scenario started it returns a non-negative intensity. The
// unit is up to the caller — the emulated-browser driver interprets it as
// a concurrent browser population. Profiles compose the workload-shape
// scenarios the online detectors must not mistake for aging: diurnal
// cycles, traffic bursts and step shifts.
type LoadProfile func(elapsed time.Duration) float64

// ConstantProfile holds one level forever.
func ConstantProfile(level float64) LoadProfile {
	return func(time.Duration) float64 { return level }
}

// DiurnalProfile models a day/night cycle: a sinusoid around base with the
// given amplitude and period, floored at zero. At elapsed 0 the load is at
// its trough (night), peaking half a period in.
func DiurnalProfile(base, amplitude float64, period time.Duration) LoadProfile {
	if period <= 0 {
		panic("sim: DiurnalProfile with non-positive period")
	}
	return func(elapsed time.Duration) float64 {
		phase := 2 * math.Pi * float64(elapsed) / float64(period)
		v := base - amplitude*math.Cos(phase)
		if v < 0 {
			return 0
		}
		return v
	}
}

// BurstProfile holds base except during [start, start+width), where the
// level jumps to burst — a flash crowd.
func BurstProfile(base, burst float64, start, width time.Duration) LoadProfile {
	return func(elapsed time.Duration) float64 {
		if elapsed >= start && elapsed < start+width {
			return burst
		}
		return base
	}
}

// StepShiftProfile holds before until at, then after — the abrupt
// workload shift of the adaptive-detection literature.
func StepShiftProfile(before, after float64, at time.Duration) LoadProfile {
	return func(elapsed time.Duration) float64 {
		if elapsed < at {
			return before
		}
		return after
	}
}

// ProfileStep is one discretised segment of a LoadProfile.
type ProfileStep struct {
	// Offset is the segment's start, relative to the scenario start.
	Offset time.Duration
	// Duration is the segment length.
	Duration time.Duration
	// Level is the profile value sampled at the segment's start.
	Level float64
}

// DiscretizeProfile samples a profile every step over total and merges
// adjacent segments whose levels round to the same integer, yielding the
// piecewise-constant schedule event-driven load generators need. step
// must be positive and no larger than total.
func DiscretizeProfile(p LoadProfile, total, step time.Duration) []ProfileStep {
	if p == nil {
		panic("sim: DiscretizeProfile with nil profile")
	}
	if step <= 0 || total <= 0 || step > total {
		panic("sim: DiscretizeProfile needs 0 < step <= total")
	}
	var out []ProfileStep
	for off := time.Duration(0); off < total; off += step {
		d := step
		if off+d > total {
			d = total - off
		}
		level := p(off)
		if n := len(out); n > 0 && math.Round(out[n-1].Level) == math.Round(level) {
			out[n-1].Duration += d
			continue
		}
		out = append(out, ProfileStep{Offset: off, Duration: d, Level: level})
	}
	return out
}

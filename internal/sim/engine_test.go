package sim

import (
	"testing"
	"time"
)

func TestVirtualClockAdvance(t *testing.T) {
	c := NewVirtualClock()
	if got := c.Now(); !got.Equal(Epoch) {
		t.Fatalf("new clock at %v, want %v", got, Epoch)
	}
	c.Advance(3 * time.Second)
	if got := c.Since(Epoch); got != 3*time.Second {
		t.Fatalf("Since = %v, want 3s", got)
	}
}

func TestVirtualClockBackwardsPanics(t *testing.T) {
	c := NewVirtualClock()
	c.Advance(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("SetNow backwards did not panic")
		}
	}()
	c.SetNow(Epoch)
}

func TestVirtualClockNegativeAdvancePanics(t *testing.T) {
	c := NewVirtualClock()
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	c.Advance(-time.Second)
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.ScheduleAfter(2*time.Second, func(time.Time) { order = append(order, 2) })
	e.ScheduleAfter(1*time.Second, func(time.Time) { order = append(order, 1) })
	e.ScheduleAfter(3*time.Second, func(time.Time) { order = append(order, 3) })
	e.Drain()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineFIFOWithinInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	at := e.Now().Add(time.Second)
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(at, func(time.Time) { order = append(order, i) })
	}
	e.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events ran out of order: %v", order)
		}
	}
}

func TestEngineClockTracksEvents(t *testing.T) {
	e := NewEngine()
	var seen time.Time
	e.ScheduleAfter(5*time.Second, func(now time.Time) { seen = now })
	e.Drain()
	if want := Epoch.Add(5 * time.Second); !seen.Equal(want) {
		t.Fatalf("event saw now=%v, want %v", seen, want)
	}
	if !e.Now().Equal(Epoch.Add(5 * time.Second)) {
		t.Fatalf("clock at %v after drain", e.Now())
	}
}

func TestEngineRunUntilHorizon(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.ScheduleAfter(1*time.Second, func(time.Time) { ran++ })
	e.ScheduleAfter(10*time.Second, func(time.Time) { ran++ })
	e.RunFor(5 * time.Second)
	if ran != 1 {
		t.Fatalf("ran %d events inside horizon, want 1", ran)
	}
	if got := e.Now(); !got.Equal(Epoch.Add(5 * time.Second)) {
		t.Fatalf("clock left at %v, want horizon", got)
	}
	if e.Len() != 1 {
		t.Fatalf("pending = %d, want 1", e.Len())
	}
}

func TestEngineRunUntilAdvancesEmptyQueueToDeadline(t *testing.T) {
	e := NewEngine()
	e.RunFor(time.Minute)
	if got := e.Now(); !got.Equal(Epoch.Add(time.Minute)) {
		t.Fatalf("clock at %v, want deadline even with no events", got)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	id := e.ScheduleAfter(time.Second, func(time.Time) { ran = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel reported false for pending event")
	}
	if e.Cancel(id) {
		t.Fatal("second Cancel reported true")
	}
	e.Drain()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Executed() != 0 {
		t.Fatalf("executed = %d, want 0", e.Executed())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.ScheduleAfter(time.Second, func(time.Time) { ran++; e.Stop() })
	e.ScheduleAfter(2*time.Second, func(time.Time) { ran++ })
	e.Drain()
	if ran != 1 {
		t.Fatalf("ran = %d after Stop, want 1", ran)
	}
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine()
	var ticks []time.Duration
	stop := e.Every(10*time.Second, func(now time.Time) {
		ticks = append(ticks, now.Sub(Epoch))
		if len(ticks) == 3 {
			e.Stop()
		}
	})
	defer stop()
	e.RunFor(time.Hour)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3", len(ticks))
	}
	for i, d := range ticks {
		if want := time.Duration(i+1) * 10 * time.Second; d != want {
			t.Fatalf("tick %d at %v, want %v", i, d, want)
		}
	}
}

func TestEngineEveryStopHaltsTicks(t *testing.T) {
	e := NewEngine()
	count := 0
	var stop func()
	stop = e.Every(time.Second, func(time.Time) {
		count++
		if count == 2 {
			stop()
		}
	})
	e.RunFor(10 * time.Second)
	if count != 2 {
		t.Fatalf("ticks after stop: count = %d, want 2", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Clock().Advance(time.Hour)
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule in the past did not panic")
		}
	}()
	e.Schedule(Epoch, func(time.Time) {})
}

func TestScheduleNilPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	e.ScheduleAfter(time.Second, nil)
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse Event
	recurse = func(time.Time) {
		depth++
		if depth < 100 {
			e.ScheduleAfter(time.Millisecond, recurse)
		}
	}
	e.ScheduleAfter(time.Millisecond, recurse)
	e.Drain()
	if depth != 100 {
		t.Fatalf("nested depth = %d, want 100", depth)
	}
	if want := Epoch.Add(100 * time.Millisecond); !e.Now().Equal(want) {
		t.Fatalf("clock at %v, want %v", e.Now(), want)
	}
}

package sim

import (
	"math"
	"math/rand/v2"
)

// Stream is a deterministic random number stream. Independent subsystems
// (each emulated browser, each fault injector) draw from their own streams
// so that adding one consumer never perturbs the draws seen by another —
// the property that keeps whole experiments reproducible as they grow.
type Stream struct {
	r *rand.Rand
}

// NewStream returns a stream seeded from seed. Equal seeds yield equal
// sequences on every platform (PCG is used underneath).
func NewStream(seed uint64) *Stream {
	return &Stream{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Derive returns a child stream whose seed combines the parent seed space
// with the given label, mixing with SplitMix64 so related labels produce
// unrelated streams.
func (s *Stream) Derive(label uint64) *Stream {
	return NewStream(splitmix64(s.r.Uint64() ^ splitmix64(label)))
}

// DeriveStable returns a child stream from seed and label without consuming
// state from the parent, for call sites that must not perturb the parent
// sequence.
func DeriveStable(seed, label uint64) *Stream {
	return NewStream(splitmix64(seed ^ splitmix64(label)))
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Stream) Uint64() uint64 { return s.r.Uint64() }

// Float64 returns a uniform value in [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// IntN returns a uniform value in [0,n). n must be positive.
func (s *Stream) IntN(n int) int { return s.r.IntN(n) }

// Int64N returns a uniform value in [0,n). n must be positive.
func (s *Stream) Int64N(n int64) int64 { return s.r.Int64N(n) }

// Perm returns a random permutation of [0,n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Exp returns a draw from the exponential distribution with the given mean.
// A non-positive mean returns 0, which callers use to disable think time.
func (s *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.r.ExpFloat64() * mean
}

// TruncExp returns an exponential draw with the given mean truncated to at
// most limit. TPC-W specifies think time this way: negative-exponential,
// mean 7 s, capped at 70 s.
func (s *Stream) TruncExp(mean, limit float64) float64 {
	v := s.Exp(mean)
	if limit > 0 && v > limit {
		return limit
	}
	return v
}

// Normal returns a draw from the normal distribution N(mean, stddev²).
func (s *Stream) Normal(mean, stddev float64) float64 {
	return s.r.NormFloat64()*stddev + mean
}

// Zipf returns draws in [1,n] following a Zipf-like distribution with
// exponent theta in (0,1). TPC-W item popularity and search terms are
// Zipf-skewed; this uses the classic CDF-inversion approximation from the
// TPC benchmarks.
type Zipf struct {
	n     int
	alpha float64
	zetan float64
	eta   float64
	src   *Stream
}

// NewZipf creates a Zipf generator over [1,n] with skew theta (0 < theta < 1).
func NewZipf(src *Stream, n int, theta float64) *Zipf {
	if n < 1 {
		panic("sim: Zipf over empty range")
	}
	if theta <= 0 || theta >= 1 {
		panic("sim: Zipf theta must lie in (0,1)")
	}
	z := &Zipf{n: n, alpha: 1 / (1 - theta), src: src}
	for i := 1; i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1.0
	if n >= 2 {
		zeta2 += 1 / math.Pow(2, theta)
	}
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

// Next returns the next Zipf draw in [1,n].
func (z *Zipf) Next() int {
	u := z.src.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 1
	}
	if uz < 1+math.Pow(0.5, (z.alpha-1)/z.alpha) {
		return 2
	}
	v := 1 + int(float64(z.n)*math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v > z.n {
		v = z.n
	}
	if v < 1 {
		v = 1
	}
	return v
}

// PickWeighted returns an index in [0,len(weights)) chosen with probability
// proportional to weights[i]. All-zero weights pick uniformly.
func (s *Stream) PickWeighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("sim: negative weight")
		}
		total += w
	}
	if total == 0 {
		return s.IntN(len(weights))
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

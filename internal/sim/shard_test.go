package sim

import (
	"testing"
	"time"
)

func TestShardGroupLockstep(t *testing.T) {
	g := NewShardGroup(4, 100*time.Millisecond)
	fired := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		sh := g.Shard(i)
		sh.Every(time.Duration(i+1)*time.Second, func(time.Time) { fired[i]++ })
	}
	windows := 0
	var lastEnd time.Time
	g.RunFor(10*time.Second, func(now time.Time) {
		windows++
		lastEnd = now
		for i := 0; i < 4; i++ {
			if !g.Shard(i).Now().Equal(now) {
				t.Fatalf("shard %d at %v, window end %v", i, g.Shard(i).Now(), now)
			}
		}
	})
	if windows != 100 {
		t.Fatalf("windows = %d, want 100", windows)
	}
	if !lastEnd.Equal(Epoch.Add(10 * time.Second)) {
		t.Fatalf("last window ended at %v", lastEnd)
	}
	for i, n := range fired {
		if want := 10 / (i + 1); n != want {
			t.Fatalf("shard %d fired %d ticks, want %d", i, n, want)
		}
	}
	if !g.Now().Equal(Epoch.Add(10 * time.Second)) {
		t.Fatalf("group now = %v", g.Now())
	}
}

func TestShardGroupTruncatesFinalWindow(t *testing.T) {
	g := NewShardGroup(2, time.Second)
	g.RunFor(2500*time.Millisecond, nil)
	if want := Epoch.Add(2500 * time.Millisecond); !g.Now().Equal(want) {
		t.Fatalf("group now = %v, want %v", g.Now(), want)
	}
}

func TestShardGroupDeterministicAcrossRuns(t *testing.T) {
	// The same seeded per-shard workload must produce identical per-shard
	// event counts on every run, regardless of goroutine interleaving.
	run := func() [8]uint64 {
		g := NewShardGroup(8, 50*time.Millisecond)
		for i := 0; i < 8; i++ {
			sh := g.Shard(i)
			rng := DeriveRand64(7, uint64(i))
			var loop func(time.Time, int64)
			loop = func(_ time.Time, arg int64) {
				d := time.Duration(1+rng.Uint64()%uint64(400*time.Millisecond)) * 1
				sh.ScheduleArgAfter(d, loop, arg)
			}
			sh.ScheduleArgAfter(time.Millisecond, loop, int64(i))
		}
		g.RunFor(30*time.Second, nil)
		var out [8]uint64
		for i := 0; i < 8; i++ {
			out[i] = g.Shard(i).Executed()
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("shard executions diverged: %v vs %v", a, b)
	}
}

func TestShardGroupPanicsOnBadConfig(t *testing.T) {
	for _, f := range []func(){
		func() { NewShardGroup(0, time.Second) },
		func() { NewShardGroup(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad ShardGroup config did not panic")
				}
			}()
			f()
		}()
	}
}

func TestRand64Deterministic(t *testing.T) {
	a, b := DeriveRand64(9, 4), DeriveRand64(9, 4)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal-seeded Rand64 diverged")
		}
	}
	c := DeriveRand64(9, 5)
	same := 0
	for i := 0; i < 100; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("neighbouring labels correlated: %d/100 equal draws", same)
	}
}

func TestRand64Distributions(t *testing.T) {
	r := NewRand64(31)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean = %v", mean)
	}
	sum = 0
	for i := 0; i < n; i++ {
		v := r.TruncExp(7, 70)
		if v < 0 || v > 70 {
			t.Fatalf("TruncExp out of range: %v", v)
		}
		sum += v
	}
	// Truncation at 10x the mean trims ~0.4%% of mass; mean ≈ 6.7-7.
	if mean := sum / n; mean < 6.4 || mean > 7.3 {
		t.Fatalf("TruncExp mean = %v, want ≈7", mean)
	}
}

func TestZipfTableMatchesZipf(t *testing.T) {
	// ZipfTable must reproduce Zipf's draw for the same uniform input: the
	// shared table is a refactor of the per-stream generator, not a new
	// distribution.
	src := NewStream(5)
	z := NewZipf(NewStream(5), 1000, 0.8)
	table := NewZipfTable(1000, 0.8)
	for i := 0; i < 10000; i++ {
		u := src.Float64()
		want := z.Next() // consumes the same underlying sequence
		if got := table.Next(u); got != want {
			t.Fatalf("draw %d: table %d, zipf %d", i, got, want)
		}
	}
}

func TestZipfTableSkew(t *testing.T) {
	table := NewZipfTable(1000, 0.8)
	r := NewRand64(77)
	counts := make([]int, 1001)
	for i := 0; i < 100000; i++ {
		counts[table.Next(r.Float64())]++
	}
	if counts[1] < counts[500]*5 {
		t.Fatalf("head not Zipf-heavy: counts[1]=%d counts[500]=%d", counts[1], counts[500])
	}
}

package sim

import "math"

// Rand64 is a compact value-type random stream for struct-of-arrays hot
// state: 8 bytes, no pointer, no heap. A million sessions embed one each,
// where a *Stream per session would cost two allocations and a cache miss
// per draw. The generator is SplitMix64 — a full-period 64-bit stream with
// output quality far beyond what load modelling needs, and the same mixer
// the package already uses for seed derivation, so derived streams stay
// stable across refactors.
//
// The zero value is a valid stream (seed 0); use NewRand64 to seed.
type Rand64 struct {
	state uint64
}

// NewRand64 returns a stream whose sequence is a pure function of seed.
func NewRand64(seed uint64) Rand64 {
	return Rand64{state: seed}
}

// DeriveRand64 seeds a stream from (seed, label) with the same mixing rule
// as DeriveStable, so a session keyed by id draws an unrelated sequence
// from its neighbours.
func DeriveRand64(seed, label uint64) Rand64 {
	return Rand64{state: splitmix64(seed ^ splitmix64(label))}
}

// Uint64 returns the next 64-bit value.
func (r *Rand64) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *Rand64) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// IntN returns a uniform value in [0,n). n must be positive.
func (r *Rand64) IntN(n int) int {
	if n <= 0 {
		panic("sim: Rand64.IntN with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns a draw from the exponential distribution with the given
// mean. A non-positive mean returns 0 (think time disabled).
func (r *Rand64) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	return -math.Log(1-u) * mean
}

// TruncExp is Exp truncated to at most limit — TPC-W think time: mean 7 s,
// capped at 70 s.
func (r *Rand64) TruncExp(mean, limit float64) float64 {
	v := r.Exp(mean)
	if limit > 0 && v > limit {
		return limit
	}
	return v
}

// ZipfTable holds the precomputed constants of the TPC CDF-inversion Zipf
// over [1,n] with skew theta. Unlike Zipf it carries no stream: Next is a
// pure function of a uniform draw, so one table is shared by any number of
// sessions, each supplying u from its own Rand64. Building the table is
// O(n) (the zetan sum); sharing it removes that cost from session arrival,
// which matters when sessions arrive in an open-loop Poisson stream.
type ZipfTable struct {
	n     int
	alpha float64
	zetan float64
	eta   float64
}

// NewZipfTable precomputes the constants for range [1,n] and skew theta in
// (0,1). The draw sequence for a given u matches Zipf exactly.
func NewZipfTable(n int, theta float64) *ZipfTable {
	if n < 1 {
		panic("sim: ZipfTable over empty range")
	}
	if theta <= 0 || theta >= 1 {
		panic("sim: ZipfTable theta must lie in (0,1)")
	}
	z := &ZipfTable{n: n, alpha: 1 / (1 - theta)}
	for i := 1; i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1.0
	if n >= 2 {
		zeta2 += 1 / math.Pow(2, theta)
	}
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

// N returns the table's range upper bound.
func (z *ZipfTable) N() int { return z.n }

// Next maps a uniform u in [0,1) to a Zipf draw in [1,n].
func (z *ZipfTable) Next(u float64) int {
	uz := u * z.zetan
	if uz < 1 {
		return 1
	}
	if uz < 1+math.Pow(0.5, (z.alpha-1)/z.alpha) {
		return 2
	}
	v := 1 + int(float64(z.n)*math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v > z.n {
		v = z.n
	}
	if v < 1 {
		v = 1
	}
	return v
}

package jmxhttp

import (
	"sync"

	"repro/internal/jmx"
)

// NotificationBuffer retains the most recent notifications of an
// MBeanServer so remote front-ends can poll them — the reproduction of a
// JMX connector's notification forwarding. Attach one with
// NewNotificationBuffer, then serve it through the handler's
// /api/notifications route by constructing the handler with
// NewHandlerWithNotifications.
type NotificationBuffer struct {
	mu       sync.Mutex
	capacity int
	entries  []jmx.Notification
	detach   func()
}

// NotificationWire is the JSON form of a notification.
type NotificationWire struct {
	Type    string `json:"type"`
	Source  string `json:"source"`
	Seq     uint64 `json:"seq"`
	Time    string `json:"time"`
	Message string `json:"message"`
}

// NewNotificationBuffer subscribes to server and retains up to capacity
// notifications (default 1024). Call Close to detach.
func NewNotificationBuffer(server *jmx.Server, capacity int) *NotificationBuffer {
	if capacity <= 0 {
		capacity = 1024
	}
	b := &NotificationBuffer{capacity: capacity}
	id := server.AddListener(func(n jmx.Notification) {
		b.mu.Lock()
		b.entries = append(b.entries, n)
		if len(b.entries) > b.capacity {
			b.entries = b.entries[len(b.entries)-b.capacity:]
		}
		b.mu.Unlock()
	})
	b.detach = func() { server.RemoveListener(id) }
	return b
}

// Close detaches the buffer from the server.
func (b *NotificationBuffer) Close() {
	if b.detach != nil {
		b.detach()
		b.detach = nil
	}
}

// Len returns the number of retained notifications.
func (b *NotificationBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// Since returns the retained notifications with Seq strictly greater than
// seq, oldest first.
func (b *NotificationBuffer) Since(seq uint64) []jmx.Notification {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []jmx.Notification
	for _, n := range b.entries {
		if n.Seq > seq {
			out = append(out, n)
		}
	}
	return out
}

// wire converts notifications to their JSON form.
func wire(ns []jmx.Notification) []NotificationWire {
	out := make([]NotificationWire, len(ns))
	for i, n := range ns {
		out[i] = NotificationWire{
			Type:    n.Type,
			Source:  n.Source.String(),
			Seq:     n.Seq,
			Time:    n.Time.UTC().Format("2006-01-02T15:04:05.000Z"),
			Message: n.Message,
		}
	}
	return out
}

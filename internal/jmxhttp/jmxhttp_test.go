package jmxhttp

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/jmx"
)

func newStack(t *testing.T) (*jmx.Server, *Client) {
	t.Helper()
	server := jmx.NewServer(nil)
	var mu sync.Mutex
	value := 7
	bean := jmx.NewBean("a test bean").
		AttrRW("Value", "the value",
			func() any { mu.Lock(); defer mu.Unlock(); return value },
			func(v any) error {
				f, ok := v.(float64) // JSON numbers arrive as float64
				if !ok {
					return jmx.ErrReadOnly
				}
				mu.Lock()
				value = int(f)
				mu.Unlock()
				return nil
			}).
		Op("Echo", "returns its argument", func(args ...any) (any, error) {
			if len(args) != 1 {
				return nil, jmx.ErrNoSuchOperation
			}
			return args[0], nil
		})
	if err := server.Register(jmx.MustObjectName("test:name=A"), bean); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(server))
	t.Cleanup(ts.Close)
	return server, NewClient(ts.URL, nil)
}

func TestNames(t *testing.T) {
	_, c := newStack(t)
	names, err := c.Names("")
	if err != nil || len(names) != 1 || names[0] != "test:name=A" {
		t.Fatalf("Names = %v, %v", names, err)
	}
	names, err = c.Names("test:*")
	if err != nil || len(names) != 1 {
		t.Fatalf("pattern Names = %v, %v", names, err)
	}
	none, err := c.Names("other:*")
	if err != nil || len(none) != 0 {
		t.Fatalf("non-matching Names = %v, %v", none, err)
	}
	if _, err := c.Names("%%%bad"); err == nil {
		t.Fatal("bad pattern accepted")
	}
}

func TestDescribe(t *testing.T) {
	_, c := newStack(t)
	d, err := c.DescribeBean("test:name=A")
	if err != nil {
		t.Fatal(err)
	}
	if d.Description != "a test bean" {
		t.Fatalf("description = %q", d.Description)
	}
	if v, ok := d.Attributes["Value"]; !ok || v.(float64) != 7 {
		t.Fatalf("attributes = %v", d.Attributes)
	}
	if len(d.Operations) != 1 || d.Operations[0] != "Echo" {
		t.Fatalf("operations = %v", d.Operations)
	}
	if _, err := c.DescribeBean("test:name=Ghost"); err == nil {
		t.Fatal("describe of ghost bean succeeded")
	}
}

func TestGetSetAttr(t *testing.T) {
	_, c := newStack(t)
	v, err := c.Get("test:name=A", "Value")
	if err != nil || v.(float64) != 7 {
		t.Fatalf("Get = %v, %v", v, err)
	}
	if err := c.Set("test:name=A", "Value", 42); err != nil {
		t.Fatal(err)
	}
	v, _ = c.Get("test:name=A", "Value")
	if v.(float64) != 42 {
		t.Fatalf("after Set, Value = %v", v)
	}
	if _, err := c.Get("test:name=A", "Ghost"); err == nil {
		t.Fatal("Get ghost attr succeeded")
	}
	if err := c.Set("test:name=Ghost", "Value", 1); err == nil {
		t.Fatal("Set on ghost bean succeeded")
	}
}

func TestInvoke(t *testing.T) {
	_, c := newStack(t)
	out, err := c.Invoke("test:name=A", "Echo", "hello")
	if err != nil || out.(string) != "hello" {
		t.Fatalf("Invoke = %v, %v", out, err)
	}
	if _, err := c.Invoke("test:name=A", "Ghost"); err == nil {
		t.Fatal("ghost op succeeded")
	}
	if _, err := c.Invoke("test:name=Ghost", "Echo", 1); err == nil {
		t.Fatal("ghost bean invoke succeeded")
	}
	// Remote errors carry the server-side message.
	_, err = c.Invoke("test:name=A", "Echo")
	if err == nil || !strings.Contains(err.Error(), "remote error") {
		t.Fatalf("error shape = %v", err)
	}
}

func TestInvokeNoArgs(t *testing.T) {
	server, _ := newStack(t)
	counter := 0
	bean := jmx.NewBean("counter").Op("Tick", "", func(args ...any) (any, error) {
		counter++
		return counter, nil
	})
	if err := server.Register(jmx.MustObjectName("test:name=B"), bean); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(server))
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	if _, err := c.Invoke("test:name=B", "Tick"); err != nil {
		t.Fatal(err)
	}
	if counter != 1 {
		t.Fatal("no-arg invoke did not reach bean")
	}
}

func TestEscape(t *testing.T) {
	if got := escape("aging:type=ACProxy,component=tpcw.home"); strings.ContainsAny(got, ":=,") {
		t.Fatalf("escape left specials: %q", got)
	}
}

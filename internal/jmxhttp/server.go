// Package jmxhttp is the Remote Management Level of the reproduction's JMX
// architecture: an HTTP+JSON protocol adapter over an MBeanServer, plus a
// Go client. The paper's External Front-end talks to the JMX Manager Agent
// through exactly this kind of connector.
//
// Values cross the wire as JSON, so clients observe JSON's type system
// (numbers arrive as float64, integer attribute values included).
package jmxhttp

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/jmx"
)

// response is the uniform JSON envelope.
type response struct {
	OK    bool   `json:"ok"`
	Value any    `json:"value,omitempty"`
	Error string `json:"error,omitempty"`
}

// Describe is the wire form of an MBean's self-description.
type Describe struct {
	Name        string         `json:"name"`
	Description string         `json:"description"`
	Attributes  map[string]any `json:"attributes"`
	Operations  []string       `json:"operations"`
}

// NewHandler adapts server to HTTP. Routes (all JSON):
//
//	GET  /api/names?pattern=<objectname-pattern>   -> []string
//	GET  /api/describe?name=<objectname>           -> Describe
//	GET  /api/attr?name=<objectname>&attr=<name>   -> value
//	PUT  /api/attr    {"name","attr","value"}      -> true
//	POST /api/invoke  {"name","op","args":[...]}   -> result
func NewHandler(server *jmx.Server) http.Handler {
	return newHandler(server, nil)
}

// NewHandlerWithNotifications is NewHandler plus a notification polling
// route:
//
//	GET /api/notifications?since=<seq>  -> []NotificationWire
//
// The buffer must be attached to the same server.
func NewHandlerWithNotifications(server *jmx.Server, buf *NotificationBuffer) http.Handler {
	return newHandler(server, buf)
}

func newHandler(server *jmx.Server, buf *NotificationBuffer) http.Handler {
	mux := http.NewServeMux()

	if buf != nil {
		mux.HandleFunc("GET /api/notifications", func(w http.ResponseWriter, r *http.Request) {
			var since uint64
			if s := r.URL.Query().Get("since"); s != "" {
				if _, err := fmt.Sscanf(s, "%d", &since); err != nil {
					writeErr(w, http.StatusBadRequest, err)
					return
				}
			}
			writeOK(w, wire(buf.Since(since)))
		})
	}

	mux.HandleFunc("GET /api/names", func(w http.ResponseWriter, r *http.Request) {
		pat := r.URL.Query().Get("pattern")
		if pat == "" {
			pat = "*:*"
		}
		pattern, err := jmx.ParseObjectName(pat)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		names := server.Query(pattern)
		out := make([]string, len(names))
		for i, n := range names {
			out[i] = n.String()
		}
		writeOK(w, out)
	})

	mux.HandleFunc("GET /api/describe", func(w http.ResponseWriter, r *http.Request) {
		name, bean, err := lookup(server, r.URL.Query().Get("name"))
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		d := Describe{
			Name:        name.String(),
			Description: bean.Description(),
			Attributes:  make(map[string]any),
			Operations:  bean.OperationNames(),
		}
		for _, a := range bean.AttributeNames() {
			if v, err := bean.GetAttribute(a); err == nil {
				d.Attributes[a] = v
			}
		}
		writeOK(w, d)
	})

	mux.HandleFunc("GET /api/attr", func(w http.ResponseWriter, r *http.Request) {
		_, bean, err := lookup(server, r.URL.Query().Get("name"))
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		v, err := bean.GetAttribute(r.URL.Query().Get("attr"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeOK(w, v)
	})

	mux.HandleFunc("PUT /api/attr", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Name  string `json:"name"`
			Attr  string `json:"attr"`
			Value any    `json:"value"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		_, bean, err := lookup(server, body.Name)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		if err := bean.SetAttribute(body.Attr, body.Value); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeOK(w, true)
	})

	mux.HandleFunc("POST /api/invoke", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Name string `json:"name"`
			Op   string `json:"op"`
			Args []any  `json:"args"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		_, bean, err := lookup(server, body.Name)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		v, err := bean.Invoke(body.Op, body.Args...)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeOK(w, v)
	})

	return mux
}

func lookup(server *jmx.Server, rawName string) (jmx.ObjectName, jmx.DynamicMBean, error) {
	if rawName == "" {
		return jmx.ObjectName{}, nil, errors.New("jmxhttp: missing name")
	}
	name, err := jmx.ParseObjectName(rawName)
	if err != nil {
		return jmx.ObjectName{}, nil, err
	}
	bean, err := server.Lookup(name)
	if err != nil {
		return jmx.ObjectName{}, nil, err
	}
	return name, bean, nil
}

func writeOK(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(response{OK: true, Value: v}); err != nil {
		// The connection failed mid-write; nothing sensible remains.
		return
	}
}

func writeErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(response{OK: false, Error: fmt.Sprint(err)})
}

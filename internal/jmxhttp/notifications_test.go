package jmxhttp

import (
	"net/http/httptest"
	"testing"

	"repro/internal/jmx"
)

func TestNotificationBuffer(t *testing.T) {
	server := jmx.NewServer(nil)
	buf := NewNotificationBuffer(server, 3)
	defer buf.Close()
	for i := 0; i < 5; i++ {
		server.Emit(jmx.Notification{Type: "tick"})
	}
	if buf.Len() != 3 {
		t.Fatalf("capacity not enforced: %d", buf.Len())
	}
	// Seqs 1..5 emitted; only 3..5 retained.
	got := buf.Since(0)
	if len(got) != 3 || got[0].Seq != 3 || got[2].Seq != 5 {
		t.Fatalf("Since(0) = %+v", got)
	}
	if len(buf.Since(4)) != 1 {
		t.Fatalf("Since(4) = %v", buf.Since(4))
	}
	if len(buf.Since(99)) != 0 {
		t.Fatal("Since beyond head returned entries")
	}
}

func TestNotificationBufferClose(t *testing.T) {
	server := jmx.NewServer(nil)
	buf := NewNotificationBuffer(server, 0)
	buf.Close()
	buf.Close() // idempotent
	server.Emit(jmx.Notification{Type: "tick"})
	if buf.Len() != 0 {
		t.Fatal("closed buffer still recording")
	}
}

func TestNotificationsOverHTTP(t *testing.T) {
	server := jmx.NewServer(nil)
	buf := NewNotificationBuffer(server, 0)
	defer buf.Close()
	ts := httptest.NewServer(NewHandlerWithNotifications(server, buf))
	defer ts.Close()
	client := NewClient(ts.URL, nil)

	// Registration events flow into the buffer.
	if err := server.Register(jmx.MustObjectName("test:name=A"), jmx.NewBean("a")); err != nil {
		t.Fatal(err)
	}
	server.Emit(jmx.Notification{
		Type:    "aging.suspect",
		Source:  jmx.MustObjectName("aging:type=Manager"),
		Message: "top aging suspect: x",
	})

	ns, err := client.Notifications(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 {
		t.Fatalf("notifications = %d, want 2", len(ns))
	}
	if ns[0].Type != jmx.NotifRegistered || ns[1].Type != "aging.suspect" {
		t.Fatalf("types = %v, %v", ns[0].Type, ns[1].Type)
	}
	if ns[1].Source != "aging:type=Manager" || ns[1].Message == "" {
		t.Fatalf("wire form = %+v", ns[1])
	}
	// Incremental polling.
	ns2, err := client.Notifications(ns[1].Seq)
	if err != nil || len(ns2) != 0 {
		t.Fatalf("incremental poll = %v, %v", ns2, err)
	}
	// Bad cursor rejected.
	if _, err := client.Notifications(0); err != nil {
		t.Fatal(err)
	}
}

func TestNotificationsRouteAbsentWithoutBuffer(t *testing.T) {
	server := jmx.NewServer(nil)
	ts := httptest.NewServer(NewHandler(server))
	defer ts.Close()
	client := NewClient(ts.URL, nil)
	if _, err := client.Notifications(0); err == nil {
		t.Fatal("notifications served without a buffer")
	}
}

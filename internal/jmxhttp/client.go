package jmxhttp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client talks to a jmxhttp adapter — the reproduction's JMX connector.
type Client struct {
	base string
	http *http.Client
}

// NewClient creates a client for the adapter at base (e.g.
// "http://localhost:9999"). A nil httpClient uses http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, http: httpClient}
}

// Notifications polls the adapter's notification buffer for entries with
// sequence numbers above since. The adapter must have been constructed
// with NewHandlerWithNotifications.
func (c *Client) Notifications(since uint64) ([]NotificationWire, error) {
	var out []NotificationWire
	err := c.get(fmt.Sprintf("%s/api/notifications?since=%d", c.base, since), &out)
	return out, err
}

// Names lists object names matching pattern ("" for all).
func (c *Client) Names(pattern string) ([]string, error) {
	var out []string
	url := c.base + "/api/names"
	if pattern != "" {
		url += "?pattern=" + escape(pattern)
	}
	if err := c.get(url, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// DescribeBean returns an MBean's description, attributes and operations.
func (c *Client) DescribeBean(name string) (Describe, error) {
	var out Describe
	err := c.get(c.base+"/api/describe?name="+escape(name), &out)
	return out, err
}

// Get reads one attribute.
func (c *Client) Get(name, attr string) (any, error) {
	var out any
	err := c.get(c.base+"/api/attr?name="+escape(name)+"&attr="+escape(attr), &out)
	return out, err
}

// Set writes one attribute.
func (c *Client) Set(name, attr string, value any) error {
	body, err := json.Marshal(map[string]any{"name": name, "attr": attr, "value": value})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, c.base+"/api/attr", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var out any
	return c.do(req, &out)
}

// Invoke calls an operation.
func (c *Client) Invoke(name, op string, args ...any) (any, error) {
	if args == nil {
		args = []any{}
	}
	body, err := json.Marshal(map[string]any{"name": name, "op": op, "args": args})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/api/invoke", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	var out any
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Client) get(url string, out any) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var envelope struct {
		OK    bool            `json:"ok"`
		Value json.RawMessage `json:"value"`
		Error string          `json:"error"`
	}
	if err := json.Unmarshal(data, &envelope); err != nil {
		return fmt.Errorf("jmxhttp: bad response (%s): %w", resp.Status, err)
	}
	if !envelope.OK {
		return fmt.Errorf("jmxhttp: remote error: %s", envelope.Error)
	}
	if out != nil && len(envelope.Value) > 0 {
		return json.Unmarshal(envelope.Value, out)
	}
	return nil
}

// escape percent-encodes the few characters object names use that are
// significant in URLs.
func escape(s string) string {
	var b bytes.Buffer
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '=', ',', ':', '*', '&', '?', '#', '+', '%', ' ':
			fmt.Fprintf(&b, "%%%02X", c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

package tpcw

import (
	"fmt"
	"strconv"

	"repro/internal/faultinject"
	"repro/internal/servlet"
)

// Component names of the fourteen TPC-W web interactions.
const (
	CompHome          = "tpcw.home"
	CompNewProducts   = "tpcw.new_products"
	CompBestSellers   = "tpcw.best_sellers"
	CompProductDetail = "tpcw.product_detail"
	CompSearchRequest = "tpcw.search_request"
	CompSearchResults = "tpcw.search_results"
	CompShoppingCart  = "tpcw.shopping_cart"
	CompCustomerReg   = "tpcw.customer_registration"
	CompBuyRequest    = "tpcw.buy_request"
	CompBuyConfirm    = "tpcw.buy_confirm"
	CompOrderInquiry  = "tpcw.order_inquiry"
	CompOrderDisplay  = "tpcw.order_display"
	CompAdminRequest  = "tpcw.admin_request"
	CompAdminConfirm  = "tpcw.admin_confirm"
)

// Interactions lists the fourteen interaction component names in a stable
// order.
var Interactions = []string{
	CompHome, CompNewProducts, CompBestSellers, CompProductDetail,
	CompSearchRequest, CompSearchResults, CompShoppingCart, CompCustomerReg,
	CompBuyRequest, CompBuyConfirm, CompOrderInquiry, CompOrderDisplay,
	CompAdminRequest, CompAdminConfirm,
}

// Session attribute keys.
const (
	sessCart     = "cart"
	sessCustomer = "c_id"
)

// base carries what every TPC-W servlet shares: the application handle and
// the leak store that makes the component injectable (the reproduction of
// the paper's "modified TPC-W implementation").
type base struct {
	faultinject.LeakStore
	app *App
}

func (b *base) Init(*servlet.Context) error { return nil }
func (b *base) Destroy()                    {}

func (b *base) cart(req *servlet.Request) *Cart {
	if req.Session == nil {
		return &Cart{} // throwaway cart for sessionless probes
	}
	if c, ok := req.Session.Get(sessCart).(*Cart); ok {
		return c
	}
	c := &Cart{}
	req.Session.Set(sessCart, c)
	return c
}

func (b *base) customerID(req *servlet.Request) (int64, bool) {
	if req.Session == nil {
		return 0, false
	}
	id, ok := req.Session.Get(sessCustomer).(int64)
	return id, ok
}

// itemParam reads the I_ID parameter (typed fast path first, so requests
// built with SetInt64Param never touch strconv), falling back to a
// deterministic rotating id so parameterless probes still exercise the
// catalogue.
func (b *base) itemParam(req *servlet.Request) int64 {
	if id, ok := req.Int64Param("I_ID"); ok {
		return id
	}
	return b.app.nextFallbackItem()
}

func (b *base) subjectParam(req *servlet.Request) string {
	if s := req.Param("SUBJECT"); s != "" {
		return s
	}
	return Subjects[0]
}

// setItems publishes navigable item ids on the response for the EBs,
// through the response's typed (recycled) id store — no per-request slice.
func setItems(resp *servlet.Response, items []Item) {
	for i := range items {
		resp.AddItemID(items[i].ID)
	}
}

// homeServlet is the entry page: greets the customer and shows promotions.
type homeServlet struct{ base }

func (s *homeServlet) Service(req *servlet.Request, resp *servlet.Response) error {
	if cid, ok := s.customerID(req); ok {
		c, err := s.app.Customers.ByID(req.Conn, cid)
		if err != nil {
			return err
		}
		resp.Set("customer", c.Uname)
	}
	// The promotional slate is always computed: home is permanently
	// coupled to the Promo service.
	promos, err := s.app.Promo.Related(req.Conn, s.itemParam(req))
	if err != nil {
		return err
	}
	setItems(resp, promos)
	return nil
}

// newProductsServlet lists the newest items of a subject.
type newProductsServlet struct{ base }

func (s *newProductsServlet) Service(req *servlet.Request, resp *servlet.Response) error {
	items, err := s.app.Catalog.NewProducts(req.Conn, s.subjectParam(req))
	if err != nil {
		return err
	}
	setItems(resp, items)
	return nil
}

// bestSellersServlet aggregates recent sales — the heavy interaction.
type bestSellersServlet struct{ base }

func (s *bestSellersServlet) Service(req *servlet.Request, resp *servlet.Response) error {
	items, err := s.app.Catalog.BestSellers(req.Conn, s.subjectParam(req))
	if err != nil {
		return err
	}
	setItems(resp, items)
	return nil
}

// productDetailServlet shows one item.
type productDetailServlet struct{ base }

func (s *productDetailServlet) Service(req *servlet.Request, resp *servlet.Response) error {
	it, err := s.app.Catalog.ItemByID(req.Conn, s.itemParam(req))
	if err != nil {
		return err
	}
	resp.Set("item", it.ID)
	resp.AddItemID(it.Related1)
	resp.AddItemID(it.Related2)
	return nil
}

// searchRequestServlet renders the search form (no database work).
type searchRequestServlet struct{ base }

func (s *searchRequestServlet) Service(req *servlet.Request, resp *servlet.Response) error {
	resp.Set("subjects", Subjects)
	return nil
}

// searchResultsServlet executes a title or author search.
type searchResultsServlet struct{ base }

func (s *searchResultsServlet) Service(req *servlet.Request, resp *servlet.Response) error {
	field := req.Param("FIELD")
	if field == "" {
		field = "title"
	}
	term := req.Param("TERM")
	if term == "" {
		term = "Book"
	}
	items, err := s.app.Catalog.Search(req.Conn, field, term)
	if err != nil {
		return err
	}
	setItems(resp, items)
	return nil
}

// shoppingCartServlet adds to, updates, or displays the session cart.
type shoppingCartServlet struct{ base }

func (s *shoppingCartServlet) Service(req *servlet.Request, resp *servlet.Response) error {
	cart := s.cart(req)
	switch req.Param("ACTION") {
	case "add", "":
		id := s.itemParam(req)
		it, err := s.app.Catalog.ItemByID(req.Conn, id)
		if err != nil {
			return err
		}
		qty := int64(1)
		if v, ok := req.Int64Param("QTY"); ok && v > 0 {
			qty = v
		}
		cart.Add(it.ID, qty, it.Cost)
	case "update":
		id := s.itemParam(req)
		qty := int64(0)
		if v, ok := req.Int64Param("QTY"); ok {
			qty = v
		}
		cart.Update(id, qty)
	case "refresh":
		// Display only.
	default:
		return fmt.Errorf("tpcw: unknown cart action %q", req.Param("ACTION"))
	}
	resp.Set("cart_lines", len(cart.Lines))
	resp.Set("cart_total", cart.Total())
	return nil
}

// customerRegServlet renders the registration/login page.
type customerRegServlet struct{ base }

func (s *customerRegServlet) Service(req *servlet.Request, resp *servlet.Response) error {
	resp.Set("returning", req.Param("UNAME") != "")
	return nil
}

// buyRequestServlet resolves or creates the customer and shows the order
// preview.
type buyRequestServlet struct{ base }

func (s *buyRequestServlet) Service(req *servlet.Request, resp *servlet.Response) error {
	var cid int64
	if uname := req.Param("UNAME"); uname != "" {
		c, err := s.app.Customers.ByUname(req.Conn, uname)
		if err != nil {
			return err
		}
		cid = c.ID
	} else if existing, ok := s.customerID(req); ok {
		cid = existing
	} else {
		id, err := s.app.Customers.Register(req.Conn, s.app.freshUname())
		if err != nil {
			return err
		}
		cid = id
	}
	if req.Session != nil {
		req.Session.Set(sessCustomer, cid)
	}
	cart := s.cart(req)
	resp.Set("cart_total", cart.Total())
	resp.Set("customer_id", cid)
	return nil
}

// buyConfirmServlet turns the session cart into a persisted order.
type buyConfirmServlet struct{ base }

func (s *buyConfirmServlet) Service(req *servlet.Request, resp *servlet.Response) error {
	cid, ok := s.customerID(req)
	if !ok {
		return fmt.Errorf("tpcw: buy_confirm without customer in session")
	}
	cart := s.cart(req)
	if cart.Empty() {
		// An empty-cart confirm renders an apology page; it is not a
		// component failure.
		resp.Set("order_id", int64(0))
		return nil
	}
	date := s.app.clockSeconds(req)
	oid, err := s.app.Orders.Create(req.Conn, cid, cart, date)
	if err != nil {
		return err
	}
	cart.Lines = nil
	resp.Set("order_id", oid)
	return nil
}

// orderInquiryServlet renders the order-lookup form.
type orderInquiryServlet struct{ base }

func (s *orderInquiryServlet) Service(req *servlet.Request, resp *servlet.Response) error {
	resp.Set("form", "order_inquiry")
	return nil
}

// orderDisplayServlet shows the customer's most recent order.
type orderDisplayServlet struct{ base }

func (s *orderDisplayServlet) Service(req *servlet.Request, resp *servlet.Response) error {
	var cid int64
	if uname := req.Param("UNAME"); uname != "" {
		c, err := s.app.Customers.ByUname(req.Conn, uname)
		if err != nil {
			return err
		}
		cid = c.ID
	} else if existing, ok := s.customerID(req); ok {
		cid = existing
	} else {
		resp.Set("order_id", int64(0))
		return nil
	}
	order, lines, err := s.app.Orders.MostRecentByCustomer(req.Conn, cid)
	if err != nil {
		// No order history renders an empty page, not a failure.
		resp.Set("order_id", int64(0))
		return nil
	}
	resp.Set("order_id", order.ID)
	resp.Set("order_lines", len(lines))
	return nil
}

// adminRequestServlet shows the item-edit form.
type adminRequestServlet struct{ base }

func (s *adminRequestServlet) Service(req *servlet.Request, resp *servlet.Response) error {
	it, err := s.app.Catalog.ItemByID(req.Conn, s.itemParam(req))
	if err != nil {
		return err
	}
	resp.Set("item", it.ID)
	return nil
}

// adminConfirmServlet applies an item update (price, image, related
// items), TPC-W's only catalogue write.
type adminConfirmServlet struct{ base }

func (s *adminConfirmServlet) Service(req *servlet.Request, resp *servlet.Response) error {
	id := s.itemParam(req)
	it, err := s.app.Catalog.ItemByID(req.Conn, id)
	if err != nil {
		return err
	}
	newCost := it.SRP * 0.9
	if c := req.Param("COST"); c != "" {
		if v, err := strconv.ParseFloat(c, 64); err == nil && v > 0 {
			newCost = v
		}
	}
	set := map[string]any{
		"i_cost":      newCost,
		"i_thumbnail": fmt.Sprintf("img/thumb_%d_v2.gif", id),
		"i_pub_date":  s.app.clockSeconds(req),
	}
	if err := req.Conn.Update(TableItem, id, set); err != nil {
		return err
	}
	resp.Set("item", id)
	return nil
}

package tpcw

import (
	"strconv"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/jvmheap"
	"repro/internal/servlet"
	"repro/internal/sim"
	"repro/internal/sqldb"
)

func newTestApp(t *testing.T) (*sim.Engine, *servlet.Container, *App) {
	t.Helper()
	engine := sim.NewEngine()
	weaver := aspect.NewWeaver(engine.Clock())
	db := sqldb.NewDB()
	app, err := NewApp(db, weaver, engine.Clock(), Scale{Items: 200, Customers: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	heap := jvmheap.New(1<<28, engine.Clock())
	c := servlet.NewContainer(engine, weaver, db, heap, servlet.Config{})
	if err := app.DeployAll(c); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	return engine, c, app
}

// run submits one request and returns its response.
func run(t *testing.T, engine *sim.Engine, c *servlet.Container, req *servlet.Request) *servlet.Response {
	t.Helper()
	var resp *servlet.Response
	engine.ScheduleAfter(0, func(time.Time) {
		c.Submit(req, func(_ *servlet.Request, r *servlet.Response) { resp = r })
	})
	engine.RunFor(10 * time.Second)
	if resp == nil {
		t.Fatal("request did not complete")
	}
	return resp
}

func TestPopulationCardinalities(t *testing.T) {
	_, _, app := newTestApp(t)
	for table, want := range map[string]int{
		TableItem:     200,
		TableCustomer: 100,
		TableOrders:   90,
		TableCountry:  16,
		TableAddress:  200,
		TableAuthor:   51,
	} {
		tb, err := app.DB().Table(table)
		if err != nil {
			t.Fatal(err)
		}
		if tb.Len() != want {
			t.Errorf("%s rows = %d, want %d", table, tb.Len(), want)
		}
	}
	// Order lines: 1-5 per order.
	ol, _ := app.DB().Table(TableOrderLine)
	if n := ol.Len(); n < 90 || n > 450 {
		t.Errorf("order_line rows = %d, want 90..450", n)
	}
}

func TestPopulationDeterministic(t *testing.T) {
	mk := func() []sqldb.Row {
		db := sqldb.NewDB()
		w := aspect.NewWeaver(nil)
		if _, err := NewApp(db, w, nil, Scale{Items: 50, Customers: 20, Seed: 11}); err != nil {
			t.Fatal(err)
		}
		tb, _ := db.Table(TableItem)
		var rows []sqldb.Row
		for i := int64(1); i <= 50; i++ {
			r, _ := tb.Get(i)
			rows = append(rows, r)
		}
		return rows
	}
	a, b := mk(), mk()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("population not deterministic at row %d col %d", i, j)
			}
		}
	}
}

func TestHomeInteraction(t *testing.T) {
	engine, c, _ := newTestApp(t)
	resp := run(t, engine, c, &servlet.Request{
		Interaction: CompHome, SessionID: "eb1",
		Params: map[string]string{"I_ID": "5"},
	})
	if !resp.OK() {
		t.Fatalf("home failed: %+v", resp)
	}
	ids := resp.Get("item_ids").([]int64)
	if len(ids) != 2 {
		t.Fatalf("promo ids = %v", ids)
	}
}

func TestProductDetailAndRelated(t *testing.T) {
	engine, c, _ := newTestApp(t)
	resp := run(t, engine, c, &servlet.Request{
		Interaction: CompProductDetail, SessionID: "eb1",
		Params: map[string]string{"I_ID": "7"},
	})
	if !resp.OK() || resp.Get("item").(int64) != 7 {
		t.Fatalf("product_detail = %+v", resp)
	}
	if ids := resp.Get("item_ids").([]int64); len(ids) != 2 {
		t.Fatalf("related ids = %v", ids)
	}
}

func TestNewProductsAndBestSellers(t *testing.T) {
	engine, c, _ := newTestApp(t)
	np := run(t, engine, c, &servlet.Request{
		Interaction: CompNewProducts, SessionID: "eb1",
		Params: map[string]string{"SUBJECT": "ARTS"},
	})
	if !np.OK() {
		t.Fatalf("new_products failed: %+v", np)
	}
	bs := run(t, engine, c, &servlet.Request{
		Interaction: CompBestSellers, SessionID: "eb1",
		Params: map[string]string{"SUBJECT": ""},
	})
	if !bs.OK() {
		t.Fatalf("best_sellers failed: %+v", bs)
	}
	if ids := bs.Get("item_ids").([]int64); len(ids) == 0 {
		t.Fatal("best_sellers returned nothing despite order history")
	}
}

func TestSearchFlow(t *testing.T) {
	engine, c, _ := newTestApp(t)
	form := run(t, engine, c, &servlet.Request{Interaction: CompSearchRequest, SessionID: "eb1"})
	if !form.OK() || len(form.Get("subjects").([]string)) != len(Subjects) {
		t.Fatalf("search_request = %+v", form)
	}
	res := run(t, engine, c, &servlet.Request{
		Interaction: CompSearchResults, SessionID: "eb1",
		Params: map[string]string{"FIELD": "title", "TERM": "Book"},
	})
	if !res.OK() || len(res.Get("item_ids").([]int64)) == 0 {
		t.Fatalf("title search = %+v", res)
	}
	byAuthor := run(t, engine, c, &servlet.Request{
		Interaction: CompSearchResults, SessionID: "eb1",
		Params: map[string]string{"FIELD": "author", "TERM": "AuthorL1"},
	})
	if !byAuthor.OK() {
		t.Fatalf("author search = %+v", byAuthor)
	}
}

func TestFullPurchaseFlow(t *testing.T) {
	engine, c, app := newTestApp(t)
	sid := "buyer"
	add := run(t, engine, c, &servlet.Request{
		Interaction: CompShoppingCart, SessionID: sid,
		Params: map[string]string{"ACTION": "add", "I_ID": "3", "QTY": "2"},
	})
	if !add.OK() || add.Get("cart_lines").(int) != 1 {
		t.Fatalf("cart add = %+v", add)
	}
	buyReq := run(t, engine, c, &servlet.Request{
		Interaction: CompBuyRequest, SessionID: sid,
		Params: map[string]string{"UNAME": Uname(1)},
	})
	if !buyReq.OK() || buyReq.Get("customer_id").(int64) != 1 {
		t.Fatalf("buy_request = %+v", buyReq)
	}
	confirm := run(t, engine, c, &servlet.Request{Interaction: CompBuyConfirm, SessionID: sid})
	if !confirm.OK() {
		t.Fatalf("buy_confirm = %+v", confirm)
	}
	oid := confirm.Get("order_id").(int64)
	if oid == 0 {
		t.Fatal("no order created")
	}
	// The order must be in the database with its line and transaction.
	orders, _ := app.DB().Table(TableOrders)
	if _, ok := orders.Get(oid); !ok {
		t.Fatal("order row missing")
	}
	display := run(t, engine, c, &servlet.Request{Interaction: CompOrderDisplay, SessionID: sid})
	if !display.OK() || display.Get("order_id").(int64) != oid {
		t.Fatalf("order_display = %+v", display)
	}
	// The cart is cleared after purchase.
	refresh := run(t, engine, c, &servlet.Request{
		Interaction: CompShoppingCart, SessionID: sid,
		Params: map[string]string{"ACTION": "refresh"},
	})
	if refresh.Get("cart_lines").(int) != 0 {
		t.Fatal("cart not cleared after purchase")
	}
}

func TestBuyRequestRegistersNewCustomer(t *testing.T) {
	engine, c, app := newTestApp(t)
	before, _ := app.DB().Table(TableCustomer)
	n := before.Len()
	resp := run(t, engine, c, &servlet.Request{Interaction: CompBuyRequest, SessionID: "new"})
	if !resp.OK() {
		t.Fatalf("buy_request = %+v", resp)
	}
	if before.Len() != n+1 {
		t.Fatal("registration did not insert customer")
	}
}

func TestBuyConfirmWithoutSessionFails(t *testing.T) {
	engine, c, _ := newTestApp(t)
	resp := run(t, engine, c, &servlet.Request{Interaction: CompBuyConfirm, SessionID: "anon"})
	if resp.OK() {
		t.Fatal("buy_confirm without customer should fail")
	}
}

func TestCartUpdateAndRemove(t *testing.T) {
	engine, c, _ := newTestApp(t)
	sid := "cartupd"
	run(t, engine, c, &servlet.Request{
		Interaction: CompShoppingCart, SessionID: sid,
		Params: map[string]string{"ACTION": "add", "I_ID": "3"},
	})
	upd := run(t, engine, c, &servlet.Request{
		Interaction: CompShoppingCart, SessionID: sid,
		Params: map[string]string{"ACTION": "update", "I_ID": "3", "QTY": "5"},
	})
	if !upd.OK() || upd.Get("cart_lines").(int) != 1 {
		t.Fatalf("cart update = %+v", upd)
	}
	rm := run(t, engine, c, &servlet.Request{
		Interaction: CompShoppingCart, SessionID: sid,
		Params: map[string]string{"ACTION": "update", "I_ID": "3", "QTY": "0"},
	})
	if rm.Get("cart_lines").(int) != 0 {
		t.Fatal("cart line not removed")
	}
	bad := run(t, engine, c, &servlet.Request{
		Interaction: CompShoppingCart, SessionID: sid,
		Params: map[string]string{"ACTION": "explode"},
	})
	if bad.OK() {
		t.Fatal("unknown cart action accepted")
	}
}

func TestAdminFlow(t *testing.T) {
	engine, c, app := newTestApp(t)
	reqResp := run(t, engine, c, &servlet.Request{
		Interaction: CompAdminRequest, SessionID: "adm",
		Params: map[string]string{"I_ID": "9"},
	})
	if !reqResp.OK() {
		t.Fatalf("admin_request = %+v", reqResp)
	}
	conf := run(t, engine, c, &servlet.Request{
		Interaction: CompAdminConfirm, SessionID: "adm",
		Params: map[string]string{"I_ID": "9", "COST": "42.5"},
	})
	if !conf.OK() {
		t.Fatalf("admin_confirm = %+v", conf)
	}
	items, _ := app.DB().Table(TableItem)
	row, _ := items.Get(int64(9))
	if row[6].(float64) != 42.5 {
		t.Fatalf("cost not updated: %v", row[6])
	}
}

func TestOrderInquiryAndRegistrationPages(t *testing.T) {
	engine, c, _ := newTestApp(t)
	if resp := run(t, engine, c, &servlet.Request{Interaction: CompOrderInquiry, SessionID: "x"}); !resp.OK() {
		t.Fatalf("order_inquiry = %+v", resp)
	}
	if resp := run(t, engine, c, &servlet.Request{Interaction: CompCustomerReg, SessionID: "x"}); !resp.OK() {
		t.Fatalf("customer_registration = %+v", resp)
	}
	// order_display without session renders empty, not failure.
	if resp := run(t, engine, c, &servlet.Request{Interaction: CompOrderDisplay, SessionID: "y"}); !resp.OK() {
		t.Fatalf("anon order_display = %+v", resp)
	}
}

func TestDAOJoinPointsRecorded(t *testing.T) {
	engine, c, _ := newTestApp(t)
	var components []string
	if err := c.Weaver().Register(&aspect.Aspect{
		Name:     "tracer",
		Pointcut: aspect.MustPointcut("within(tpcw.*)"),
		Before: func(jp *aspect.JoinPoint) {
			components = append(components, jp.Component)
		},
	}); err != nil {
		t.Fatal(err)
	}
	run(t, engine, c, &servlet.Request{
		Interaction: CompHome, SessionID: "t",
		Params: map[string]string{"I_ID": "5"},
	})
	// home always crosses the Promo service: the coupled pair.
	var sawHome, sawPromo bool
	for _, comp := range components {
		if comp == CompHome {
			sawHome = true
		}
		if comp == CompPromoSvc {
			sawPromo = true
		}
	}
	if !sawHome || !sawPromo {
		t.Fatalf("trace = %v, want home and promo", components)
	}
}

func TestAllInteractionsComplete(t *testing.T) {
	engine, c, _ := newTestApp(t)
	for i, name := range Interactions {
		req := &servlet.Request{
			Interaction: name,
			SessionID:   "all" + strconv.Itoa(i),
			Params:      map[string]string{"I_ID": "11", "SUBJECT": "ARTS", "UNAME": Uname(2)},
		}
		resp := run(t, engine, c, req)
		if name == CompBuyConfirm {
			continue // requires a prior buy_request in the session
		}
		if !resp.OK() {
			t.Errorf("%s failed: %v", name, resp.Err)
		}
	}
}

func TestServletAccessors(t *testing.T) {
	_, _, app := newTestApp(t)
	if _, ok := app.Servlet(CompHome); !ok {
		t.Fatal("Servlet(home) missing")
	}
	if _, ok := app.Servlet("ghost"); ok {
		t.Fatal("ghost servlet found")
	}
	if app.Scale().Items != 200 {
		t.Fatalf("Scale = %+v", app.Scale())
	}
	if len(Interactions) != 14 {
		t.Fatalf("interactions = %d, want 14", len(Interactions))
	}
}

func TestCartModel(t *testing.T) {
	c := &Cart{}
	if !c.Empty() {
		t.Fatal("new cart not empty")
	}
	c.Add(1, 2, 10)
	c.Add(1, 1, 10) // merges
	c.Add(2, 1, 5)
	if len(c.Lines) != 2 || c.Lines[0].Qty != 3 {
		t.Fatalf("cart lines = %+v", c.Lines)
	}
	if c.Total() != 35 {
		t.Fatalf("total = %v", c.Total())
	}
	if !c.Update(2, 4) || c.Total() != 50 {
		t.Fatalf("update failed: %v", c.Total())
	}
	if c.Update(99, 1) {
		t.Fatal("update of missing line reported true")
	}
	if !c.Update(1, 0) || len(c.Lines) != 1 {
		t.Fatal("remove failed")
	}
}

func TestFallbackItemRotation(t *testing.T) {
	_, _, app := newTestApp(t)
	seen := make(map[int64]bool)
	for i := 0; i < 400; i++ {
		id := app.nextFallbackItem()
		if id < 1 || id > 200 {
			t.Fatalf("fallback id %d out of range", id)
		}
		seen[id] = true
	}
	if len(seen) != 200 {
		t.Fatalf("rotation covered %d items, want 200", len(seen))
	}
}

package tpcw

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/aspect"
	"repro/internal/sqldb"
)

// DAO component names. DAOs are woven components like servlets, so every
// request's component path includes the data-access components it crossed
// — the structure the Pinpoint-style baseline needs and the coupling the
// paper's related-work section discusses.
const (
	CompCatalogDAO  = "tpcw.dao.Catalog"
	CompCustomerDAO = "tpcw.dao.Customer"
	CompOrderDAO    = "tpcw.dao.Order"
	CompPromoSvc    = "tpcw.svc.Promo"
)

// ErrNotFound reports a missing entity.
var ErrNotFound = errors.New("tpcw: not found")

// bestSellerWindow is how many recent orders the best-sellers interaction
// aggregates over (TPC-W uses the latest 3333 orders).
const bestSellerWindow int64 = 3333

// weave wraps fn as a depth-1 woven component method.
func weave(w *aspect.Weaver, comp, method string, fn aspect.Func) func(args ...any) (any, error) {
	h := w.WeaveDepth(comp, method, fn)
	return func(args ...any) (any, error) { return h(1, args...) }
}

// daoScratch is the reusable result storage of the TPC-W DAOs, stashed on
// the database connection they execute through (one scratch per pooled
// connection, so its buffers warm up once and serve every request that
// later borrows the connection). Result slices and structs returned by
// DAO methods point into this scratch and follow the connection's borrow
// contract: they are valid until the next DAO call on the same
// connection. Inner (woven) DAO functions return pointers into the
// scratch, which keeps the any-typed advice boundary from boxing a fresh
// copy of every result.
type daoScratch struct {
	items  []Item
	ids    []int64
	sold   map[int64]int64
	sorter soldSorter
	item   Item
	cust   Customer
	order  OrderWithLines
	id64   int64
}

// soldSorter orders the best-sellers id list by quantity sold (desc, id
// asc on ties) without sort.Slice's per-call closure and reflection
// swapper — the same move as sqldb's rowSorter, kept in the scratch so
// the interface conversion costs nothing.
type soldSorter struct {
	ids  []int64
	sold map[int64]int64
}

func (s *soldSorter) Len() int      { return len(s.ids) }
func (s *soldSorter) Swap(i, j int) { s.ids[i], s.ids[j] = s.ids[j], s.ids[i] }
func (s *soldSorter) Less(i, j int) bool {
	if s.sold[s.ids[i]] != s.sold[s.ids[j]] {
		return s.sold[s.ids[i]] > s.sold[s.ids[j]]
	}
	return s.ids[i] < s.ids[j]
}

// OrderWithLines bundles an order and its lines — the result unit of
// OrderDAO.MostRecentByCustomer.
type OrderWithLines struct {
	Order Order
	Lines []OrderLine
}

// scratchFor returns the connection's DAO scratch, attaching one on first
// use.
func scratchFor(conn *sqldb.Conn) *daoScratch {
	if sc, ok := conn.Stash().(*daoScratch); ok {
		return sc
	}
	sc := &daoScratch{sold: make(map[int64]int64)}
	conn.SetStash(sc)
	return sc
}

// CatalogDAO reads the item catalogue.
type CatalogDAO struct {
	itemByID    func(args ...any) (any, error)
	newProducts func(args ...any) (any, error)
	bestSellers func(args ...any) (any, error)
	search      func(args ...any) (any, error)
}

// NewCatalogDAO weaves a catalogue DAO through w.
func NewCatalogDAO(w *aspect.Weaver) *CatalogDAO {
	d := &CatalogDAO{}
	d.itemByID = weave(w, CompCatalogDAO, "ItemByID", func(args ...any) (any, error) {
		conn, id := args[0].(*sqldb.Conn), args[1].(int64)
		row, ok, err := conn.Get(TableItem, id)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("%w: item %d", ErrNotFound, id)
		}
		sc := scratchFor(conn)
		sc.item = itemFromRow(row)
		return &sc.item, nil
	})
	d.newProducts = weave(w, CompCatalogDAO, "NewProducts", func(args ...any) (any, error) {
		conn, subject := args[0].(*sqldb.Conn), args[1].(string)
		rows, err := conn.Select(TableItem,
			sqldb.Where("i_subject", sqldb.Eq, subject).Ordered("i_pub_date", true).Limited(50))
		if err != nil {
			return nil, err
		}
		sc := scratchFor(conn)
		itemsFromRows(&sc.items, rows)
		return &sc.items, nil
	})
	d.bestSellers = weave(w, CompCatalogDAO, "BestSellers", func(args ...any) (any, error) {
		conn, subject := args[0].(*sqldb.Conn), args[1].(string)
		return bestSellers(conn, subject)
	})
	d.search = weave(w, CompCatalogDAO, "Search", func(args ...any) (any, error) {
		conn, field, term := args[0].(*sqldb.Conn), args[1].(string), args[2].(string)
		return searchItems(conn, field, term)
	})
	return d
}

// ItemByID fetches one item.
func (d *CatalogDAO) ItemByID(conn *sqldb.Conn, id int64) (Item, error) {
	v, err := d.itemByID(conn.Args2(conn, id)...)
	if err != nil {
		return Item{}, err
	}
	return *v.(*Item), nil
}

// NewProducts returns the newest items of a subject. The returned slice
// is borrowed from the connection's scratch: valid until the next DAO
// call on conn.
func (d *CatalogDAO) NewProducts(conn *sqldb.Conn, subject string) ([]Item, error) {
	v, err := d.newProducts(conn.Args2(conn, subject)...)
	if err != nil {
		return nil, err
	}
	return *v.(*[]Item), nil
}

// BestSellers aggregates recent order lines into the subject's top sellers
// — deliberately the most expensive interaction, as in TPC-W. The
// returned slice is borrowed (see NewProducts).
func (d *CatalogDAO) BestSellers(conn *sqldb.Conn, subject string) ([]Item, error) {
	v, err := d.bestSellers(conn.Args2(conn, subject)...)
	if err != nil {
		return nil, err
	}
	return *v.(*[]Item), nil
}

// Search finds items by "title" or "author" term. The returned slice is
// borrowed (see NewProducts).
func (d *CatalogDAO) Search(conn *sqldb.Conn, field, term string) ([]Item, error) {
	v, err := d.search(conn.Args3(conn, field, term)...)
	if err != nil {
		return nil, err
	}
	return *v.(*[]Item), nil
}

// itemsFromRows decodes rows into *dst, reusing its capacity.
func itemsFromRows(dst *[]Item, rows []sqldb.Row) {
	out := (*dst)[:0]
	for _, r := range rows {
		out = append(out, itemFromRow(r))
	}
	*dst = out
}

func bestSellers(conn *sqldb.Conn, subject string) (*[]Item, error) {
	// Latest order id bounds the window.
	latest, err := conn.Select(TableOrders, sqldb.Query{}.Ordered("o_id", true).Limited(1))
	if err != nil {
		return nil, err
	}
	sc := scratchFor(conn)
	sc.items = sc.items[:0]
	if len(latest) == 0 {
		return &sc.items, nil
	}
	minOrder := latest[0][0].(int64) - bestSellerWindow
	lines, err := conn.Select(TableOrderLine, sqldb.Where("ol_o_id", sqldb.Gt, minOrder))
	if err != nil {
		return nil, err
	}
	sold := sc.sold
	clear(sold)
	for _, l := range lines {
		sold[l[2].(int64)] += l[3].(int64)
	}
	ids := sc.ids[:0]
	for id := range sold {
		ids = append(ids, id)
	}
	sc.ids = ids
	sc.sorter = soldSorter{ids: ids, sold: sold}
	sort.Sort(&sc.sorter)
	sc.sorter.ids, sc.sorter.sold = nil, nil
	for _, id := range ids {
		// Point reads reuse the connection's row buffer; itemFromRow copies
		// what it keeps before the next read.
		row, ok, err := conn.Get(TableItem, id)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		it := itemFromRow(row)
		if subject != "" && it.Subject != subject {
			continue
		}
		sc.items = append(sc.items, it)
		if len(sc.items) == 50 {
			break
		}
	}
	return &sc.items, nil
}

func searchItems(conn *sqldb.Conn, field, term string) (*[]Item, error) {
	sc := scratchFor(conn)
	switch field {
	case "title":
		rows, err := conn.Select(TableItem,
			sqldb.Where("i_title", sqldb.Contains, term).Limited(50))
		if err != nil {
			return nil, err
		}
		itemsFromRows(&sc.items, rows)
		return &sc.items, nil
	case "author":
		authors, err := conn.Select(TableAuthor,
			sqldb.Where("a_lname", sqldb.Contains, term).Limited(10))
		if err != nil {
			return nil, err
		}
		// The author rows live in the connection's select scratch, which
		// the per-author item queries below reuse — extract the ids first.
		ids := sc.ids[:0]
		for _, a := range authors {
			ids = append(ids, a[0].(int64))
		}
		sc.ids = ids
		sc.items = sc.items[:0]
		for _, aid := range ids {
			rows, err := conn.Select(TableItem,
				sqldb.Where("i_a_id", sqldb.Eq, aid).Limited(50))
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				sc.items = append(sc.items, itemFromRow(r))
			}
			if len(sc.items) >= 50 {
				sc.items = sc.items[:50]
				break
			}
		}
		return &sc.items, nil
	default:
		return nil, fmt.Errorf("tpcw: unknown search field %q", field)
	}
}

// CustomerDAO reads and writes customers.
type CustomerDAO struct {
	byUname  func(args ...any) (any, error)
	byID     func(args ...any) (any, error)
	register func(args ...any) (any, error)
}

// NewCustomerDAO weaves a customer DAO through w.
func NewCustomerDAO(w *aspect.Weaver) *CustomerDAO {
	d := &CustomerDAO{}
	d.byUname = weave(w, CompCustomerDAO, "ByUname", func(args ...any) (any, error) {
		conn, uname := args[0].(*sqldb.Conn), args[1].(string)
		rows, err := conn.Select(TableCustomer, sqldb.Where("c_uname", sqldb.Eq, uname).Limited(1))
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			return nil, fmt.Errorf("%w: customer %q", ErrNotFound, uname)
		}
		sc := scratchFor(conn)
		sc.cust = customerFromRow(rows[0])
		return &sc.cust, nil
	})
	d.byID = weave(w, CompCustomerDAO, "ByID", func(args ...any) (any, error) {
		conn, id := args[0].(*sqldb.Conn), args[1].(int64)
		row, ok, err := conn.Get(TableCustomer, id)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("%w: customer %d", ErrNotFound, id)
		}
		sc := scratchFor(conn)
		sc.cust = customerFromRow(row)
		return &sc.cust, nil
	})
	d.register = weave(w, CompCustomerDAO, "Register", func(args ...any) (any, error) {
		conn, uname := args[0].(*sqldb.Conn), args[1].(string)
		pk, err := conn.Insert(TableCustomer, sqldb.Row{
			nil, uname, "password", "New", "Customer", int64(1), int64(0), 0.0,
		})
		if err != nil {
			return nil, err
		}
		sc := scratchFor(conn)
		sc.id64 = pk.(int64)
		return &sc.id64, nil
	})
	return d
}

// ByUname fetches a customer by user name.
func (d *CustomerDAO) ByUname(conn *sqldb.Conn, uname string) (Customer, error) {
	v, err := d.byUname(conn.Args2(conn, uname)...)
	if err != nil {
		return Customer{}, err
	}
	return *v.(*Customer), nil
}

// ByID fetches a customer by id.
func (d *CustomerDAO) ByID(conn *sqldb.Conn, id int64) (Customer, error) {
	v, err := d.byID(conn.Args2(conn, id)...)
	if err != nil {
		return Customer{}, err
	}
	return *v.(*Customer), nil
}

// Register creates a new customer and returns its id.
func (d *CustomerDAO) Register(conn *sqldb.Conn, uname string) (int64, error) {
	v, err := d.register(conn.Args2(conn, uname)...)
	if err != nil {
		return 0, err
	}
	return *v.(*int64), nil
}

// OrderDAO reads and writes orders.
type OrderDAO struct {
	mostRecent func(args ...any) (any, error)
	create     func(args ...any) (any, error)
}

// NewOrderDAO weaves an order DAO through w.
func NewOrderDAO(w *aspect.Weaver) *OrderDAO {
	d := &OrderDAO{}
	d.mostRecent = weave(w, CompOrderDAO, "MostRecentByCustomer", func(args ...any) (any, error) {
		conn, cid := args[0].(*sqldb.Conn), args[1].(int64)
		rows, err := conn.Select(TableOrders,
			sqldb.Where("o_c_id", sqldb.Eq, cid).Ordered("o_date", true).Limited(1))
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			return nil, fmt.Errorf("%w: no orders for customer %d", ErrNotFound, cid)
		}
		sc := scratchFor(conn)
		sc.order.Order = orderFromRow(rows[0])
		lineRows, err := conn.Select(TableOrderLine, sqldb.Where("ol_o_id", sqldb.Eq, sc.order.Order.ID))
		if err != nil {
			return nil, err
		}
		lines := sc.order.Lines[:0]
		for _, r := range lineRows {
			lines = append(lines, orderLineFromRow(r))
		}
		sc.order.Lines = lines
		return &sc.order, nil
	})
	d.create = weave(w, CompOrderDAO, "Create", func(args ...any) (any, error) {
		conn := args[0].(*sqldb.Conn)
		cid := args[1].(int64)
		cart := args[2].(*Cart)
		date := args[3].(int64)
		oid, err := conn.Insert(TableOrders, sqldb.Row{nil, cid, date, cart.Total(), "PENDING"})
		if err != nil {
			return nil, err
		}
		for _, l := range cart.Lines {
			if _, err := conn.Insert(TableOrderLine,
				sqldb.Row{nil, oid.(int64), l.ItemID, l.Qty, 0.0}); err != nil {
				return nil, err
			}
			// Decrement stock, restocking when exhausted (TPC-W rule).
			row, ok, err := conn.Get(TableItem, l.ItemID)
			if err != nil || !ok {
				continue
			}
			stock := row[8].(int64) - l.Qty
			if stock < 0 {
				stock += 21
			}
			if err := conn.UpdateCol(TableItem, l.ItemID, "i_stock", stock); err != nil {
				return nil, err
			}
		}
		if _, err := conn.Insert(TableCCXacts,
			sqldb.Row{nil, oid.(int64), "VISA", cart.Total(), date}); err != nil {
			return nil, err
		}
		sc := scratchFor(conn)
		sc.id64 = oid.(int64)
		return &sc.id64, nil
	})
	return d
}

// MostRecentByCustomer returns the customer's latest order and its lines.
// The lines slice is borrowed from the connection's scratch: valid until
// the next DAO call on conn.
func (d *OrderDAO) MostRecentByCustomer(conn *sqldb.Conn, cid int64) (Order, []OrderLine, error) {
	v, err := d.mostRecent(conn.Args2(conn, cid)...)
	if err != nil {
		return Order{}, nil, err
	}
	res := v.(*OrderWithLines)
	return res.Order, res.Lines, nil
}

// Create persists the cart as a new order and returns the order id.
func (d *OrderDAO) Create(conn *sqldb.Conn, cid int64, cart *Cart, date int64) (int64, error) {
	v, err := d.create(conn.Args4(conn, cid, cart, date)...)
	if err != nil {
		return 0, err
	}
	return *v.(*int64), nil
}

// PromoSvc computes the promotional slate shown on the home and product
// pages. The home servlet always invokes it — the "coupled components"
// situation the paper argues Pinpoint cannot disentangle.
type PromoSvc struct {
	related func(args ...any) (any, error)
}

// NewPromoSvc weaves a promotion service through w.
func NewPromoSvc(w *aspect.Weaver) *PromoSvc {
	s := &PromoSvc{}
	s.related = weave(w, CompPromoSvc, "Related", func(args ...any) (any, error) {
		conn, itemID := args[0].(*sqldb.Conn), args[1].(int64)
		sc := scratchFor(conn)
		sc.items = sc.items[:0]
		row, ok, err := conn.Get(TableItem, itemID)
		if err != nil {
			return nil, err
		}
		if !ok {
			return &sc.items, nil
		}
		it := itemFromRow(row)
		for _, rid := range [2]int64{it.Related1, it.Related2} {
			rrow, ok, err := conn.Get(TableItem, rid)
			if err != nil {
				return nil, err
			}
			if ok {
				sc.items = append(sc.items, itemFromRow(rrow))
			}
		}
		return &sc.items, nil
	})
	return s
}

// Related returns the promotional items for the given anchor item. The
// returned slice is borrowed from the connection's scratch: valid until
// the next DAO call on conn.
func (s *PromoSvc) Related(conn *sqldb.Conn, itemID int64) ([]Item, error) {
	v, err := s.related(conn.Args2(conn, itemID)...)
	if err != nil {
		return nil, err
	}
	return *v.(*[]Item), nil
}

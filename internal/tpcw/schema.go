// Package tpcw implements the evaluation application of the paper: the
// TPC-W on-line bookstore, as servlets over the sqldb engine, matching the
// Java servlet edition the paper runs on Tomcat. All fourteen web
// interactions are present, backed by DAO components that are themselves
// woven through the aspect layer, so per-request component paths include
// the servlet and the data-access components it touches.
package tpcw

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/sqldb"
)

// Table names.
const (
	TableCountry   = "country"
	TableAddress   = "address"
	TableCustomer  = "customer"
	TableAuthor    = "author"
	TableItem      = "item"
	TableOrders    = "orders"
	TableOrderLine = "order_line"
	TableCCXacts   = "cc_xacts"
)

// Subjects is the TPC-W book subject list.
var Subjects = []string{
	"ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
	"HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
	"NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION",
	"ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION", "SPORTS",
	"YOUTH", "TRAVEL",
}

// Scale configures database population. The TPC-W cardinality ratios are
// preserved at a laptop-friendly default size.
type Scale struct {
	Items     int // catalogue size (default 1000)
	Customers int // registered customers (default 1440)
	Seed      uint64
}

func (s Scale) withDefaults() Scale {
	if s.Items <= 0 {
		s.Items = 1000
	}
	if s.Customers <= 0 {
		s.Customers = 1440
	}
	if s.Seed == 0 {
		s.Seed = 20100419 // IPDPS 2010 week; any fixed value works
	}
	return s
}

// CreateSchema creates the TPC-W tables and indexes in db.
func CreateSchema(db *sqldb.DB) error {
	specs := []struct {
		schema  sqldb.Schema
		indexes []string
	}{
		{
			schema: sqldb.Schema{Name: TableCountry, PrimaryKey: "co_id", Columns: []sqldb.Column{
				{Name: "co_id", Type: sqldb.Int64},
				{Name: "co_name", Type: sqldb.String},
			}},
		},
		{
			schema: sqldb.Schema{Name: TableAddress, PrimaryKey: "addr_id", Columns: []sqldb.Column{
				{Name: "addr_id", Type: sqldb.Int64},
				{Name: "addr_street", Type: sqldb.String},
				{Name: "addr_city", Type: sqldb.String},
				{Name: "addr_co_id", Type: sqldb.Int64},
			}},
		},
		{
			schema: sqldb.Schema{Name: TableCustomer, PrimaryKey: "c_id", Columns: []sqldb.Column{
				{Name: "c_id", Type: sqldb.Int64},
				{Name: "c_uname", Type: sqldb.String},
				{Name: "c_passwd", Type: sqldb.String},
				{Name: "c_fname", Type: sqldb.String},
				{Name: "c_lname", Type: sqldb.String},
				{Name: "c_addr_id", Type: sqldb.Int64},
				{Name: "c_since", Type: sqldb.Int64},
				{Name: "c_discount", Type: sqldb.Float64},
			}},
			indexes: []string{"c_uname"},
		},
		{
			schema: sqldb.Schema{Name: TableAuthor, PrimaryKey: "a_id", Columns: []sqldb.Column{
				{Name: "a_id", Type: sqldb.Int64},
				{Name: "a_fname", Type: sqldb.String},
				{Name: "a_lname", Type: sqldb.String},
			}},
		},
		{
			schema: sqldb.Schema{Name: TableItem, PrimaryKey: "i_id", Columns: []sqldb.Column{
				{Name: "i_id", Type: sqldb.Int64},
				{Name: "i_title", Type: sqldb.String},
				{Name: "i_a_id", Type: sqldb.Int64},
				{Name: "i_pub_date", Type: sqldb.Int64},
				{Name: "i_subject", Type: sqldb.String},
				{Name: "i_desc", Type: sqldb.String},
				{Name: "i_cost", Type: sqldb.Float64},
				{Name: "i_srp", Type: sqldb.Float64},
				{Name: "i_stock", Type: sqldb.Int64},
				{Name: "i_related1", Type: sqldb.Int64},
				{Name: "i_related2", Type: sqldb.Int64},
				{Name: "i_thumbnail", Type: sqldb.String},
			}},
			indexes: []string{"i_subject", "i_a_id"},
		},
		{
			schema: sqldb.Schema{Name: TableOrders, PrimaryKey: "o_id", Columns: []sqldb.Column{
				{Name: "o_id", Type: sqldb.Int64},
				{Name: "o_c_id", Type: sqldb.Int64},
				{Name: "o_date", Type: sqldb.Int64},
				{Name: "o_total", Type: sqldb.Float64},
				{Name: "o_status", Type: sqldb.String},
			}},
			indexes: []string{"o_c_id"},
		},
		{
			schema: sqldb.Schema{Name: TableOrderLine, PrimaryKey: "ol_id", Columns: []sqldb.Column{
				{Name: "ol_id", Type: sqldb.Int64},
				{Name: "ol_o_id", Type: sqldb.Int64},
				{Name: "ol_i_id", Type: sqldb.Int64},
				{Name: "ol_qty", Type: sqldb.Int64},
				{Name: "ol_discount", Type: sqldb.Float64},
			}},
			indexes: []string{"ol_o_id"},
		},
		{
			schema: sqldb.Schema{Name: TableCCXacts, PrimaryKey: "cx_id", Columns: []sqldb.Column{
				{Name: "cx_id", Type: sqldb.Int64},
				{Name: "cx_o_id", Type: sqldb.Int64},
				{Name: "cx_type", Type: sqldb.String},
				{Name: "cx_amt", Type: sqldb.Float64},
				{Name: "cx_auth_date", Type: sqldb.Int64},
			}},
			indexes: []string{"cx_o_id"},
		},
	}
	for _, spec := range specs {
		table, err := db.CreateTable(spec.schema)
		if err != nil {
			return fmt.Errorf("tpcw: create %s: %w", spec.schema.Name, err)
		}
		for _, col := range spec.indexes {
			if err := table.CreateIndex(col); err != nil {
				return fmt.Errorf("tpcw: index %s.%s: %w", spec.schema.Name, col, err)
			}
		}
	}
	return nil
}

// Populate fills db with TPC-W-ratio data at the given scale. It is
// deterministic for a fixed seed.
func Populate(db *sqldb.DB, scale Scale) error {
	scale = scale.withDefaults()
	rng := sim.NewStream(scale.Seed)

	countries := []string{
		"United States", "United Kingdom", "Canada", "Germany", "France",
		"Japan", "Netherlands", "Italy", "Switzerland", "Australia",
		"Spain", "Brazil", "Mexico", "India", "China", "South Korea",
	}
	country, err := db.Table(TableCountry)
	if err != nil {
		return err
	}
	for _, name := range countries {
		if _, err := country.Insert(sqldb.Row{nil, name}); err != nil {
			return err
		}
	}

	address, err := db.Table(TableAddress)
	if err != nil {
		return err
	}
	numAddresses := 2 * scale.Customers
	for i := 0; i < numAddresses; i++ {
		row := sqldb.Row{
			nil,
			fmt.Sprintf("%d Main Street", 1+rng.IntN(9999)),
			fmt.Sprintf("City%03d", rng.IntN(500)),
			int64(1 + rng.IntN(len(countries))),
		}
		if _, err := address.Insert(row); err != nil {
			return err
		}
	}

	customer, err := db.Table(TableCustomer)
	if err != nil {
		return err
	}
	for i := 1; i <= scale.Customers; i++ {
		row := sqldb.Row{
			nil,
			Uname(i),
			"password",
			fmt.Sprintf("First%d", i),
			fmt.Sprintf("Last%d", i),
			int64(1 + rng.IntN(numAddresses)),
			int64(rng.IntN(1 << 20)),
			float64(rng.IntN(51)) / 100, // 0..0.50 discount
		}
		if _, err := customer.Insert(row); err != nil {
			return err
		}
	}

	author, err := db.Table(TableAuthor)
	if err != nil {
		return err
	}
	numAuthors := scale.Items/4 + 1
	for i := 1; i <= numAuthors; i++ {
		row := sqldb.Row{nil, fmt.Sprintf("AuthorF%d", i), fmt.Sprintf("AuthorL%d", i)}
		if _, err := author.Insert(row); err != nil {
			return err
		}
	}

	item, err := db.Table(TableItem)
	if err != nil {
		return err
	}
	for i := 1; i <= scale.Items; i++ {
		srp := 1 + float64(rng.IntN(9999))/100
		row := sqldb.Row{
			nil,
			fmt.Sprintf("Book Title %d %s", i, Subjects[rng.IntN(len(Subjects))]),
			int64(1 + rng.IntN(numAuthors)),
			int64(rng.IntN(1 << 20)),
			Subjects[rng.IntN(len(Subjects))],
			fmt.Sprintf("Description of book %d", i),
			srp * (0.5 + rng.Float64()/2),
			srp,
			int64(10 + rng.IntN(21)),
			int64(1 + rng.IntN(scale.Items)),
			int64(1 + rng.IntN(scale.Items)),
			fmt.Sprintf("img/thumb_%d.gif", i),
		}
		if _, err := item.Insert(row); err != nil {
			return err
		}
	}

	// Historical orders: 0.9 × customers, 1-5 lines each.
	orders, err := db.Table(TableOrders)
	if err != nil {
		return err
	}
	orderLine, err := db.Table(TableOrderLine)
	if err != nil {
		return err
	}
	numOrders := scale.Customers * 9 / 10
	for i := 1; i <= numOrders; i++ {
		// Historical orders predate the simulation epoch (negative
		// seconds) so orders placed during an experiment always sort as
		// most recent.
		oid, err := orders.Insert(sqldb.Row{
			nil,
			int64(1 + rng.IntN(scale.Customers)),
			-int64(1 + rng.IntN(1<<20)),
			float64(10 + rng.IntN(500)),
			"SHIPPED",
		})
		if err != nil {
			return err
		}
		lines := 1 + rng.IntN(5)
		for l := 0; l < lines; l++ {
			row := sqldb.Row{
				nil,
				oid.(int64),
				int64(1 + rng.IntN(scale.Items)),
				int64(1 + rng.IntN(5)),
				float64(rng.IntN(21)) / 100,
			}
			if _, err := orderLine.Insert(row); err != nil {
				return err
			}
		}
	}
	return nil
}

// Uname returns the deterministic user name of customer i, mirroring
// TPC-W's derived usernames.
func Uname(i int) string { return fmt.Sprintf("user%06d", i) }

package tpcw

import (
	"repro/internal/sqldb"
)

// Item is one catalogue entry.
type Item struct {
	ID       int64
	Title    string
	AuthorID int64
	PubDate  int64
	Subject  string
	Desc     string
	Cost     float64
	SRP      float64
	Stock    int64
	Related1 int64
	Related2 int64
}

func itemFromRow(r sqldb.Row) Item {
	return Item{
		ID:       r[0].(int64),
		Title:    r[1].(string),
		AuthorID: r[2].(int64),
		PubDate:  r[3].(int64),
		Subject:  r[4].(string),
		Desc:     r[5].(string),
		Cost:     r[6].(float64),
		SRP:      r[7].(float64),
		Stock:    r[8].(int64),
		Related1: r[9].(int64),
		Related2: r[10].(int64),
	}
}

// Customer is one registered user.
type Customer struct {
	ID       int64
	Uname    string
	FName    string
	LName    string
	AddrID   int64
	Since    int64
	Discount float64
}

func customerFromRow(r sqldb.Row) Customer {
	return Customer{
		ID:       r[0].(int64),
		Uname:    r[1].(string),
		FName:    r[3].(string),
		LName:    r[4].(string),
		AddrID:   r[5].(int64),
		Since:    r[6].(int64),
		Discount: r[7].(float64),
	}
}

// Order is one order header.
type Order struct {
	ID       int64
	Customer int64
	Date     int64
	Total    float64
	Status   string
}

func orderFromRow(r sqldb.Row) Order {
	return Order{
		ID:       r[0].(int64),
		Customer: r[1].(int64),
		Date:     r[2].(int64),
		Total:    r[3].(float64),
		Status:   r[4].(string),
	}
}

// OrderLine is one line of an order.
type OrderLine struct {
	ID       int64
	OrderID  int64
	ItemID   int64
	Qty      int64
	Discount float64
}

func orderLineFromRow(r sqldb.Row) OrderLine {
	return OrderLine{
		ID:       r[0].(int64),
		OrderID:  r[1].(int64),
		ItemID:   r[2].(int64),
		Qty:      r[3].(int64),
		Discount: r[4].(float64),
	}
}

// CartLine is one entry of a session shopping cart.
type CartLine struct {
	ItemID int64
	Qty    int64
	Cost   float64
}

// Cart is the session shopping cart. It lives in the HTTP session (as in
// the servlet edition of TPC-W) and is not safe for concurrent use beyond
// the session's own synchronisation.
type Cart struct {
	Lines []CartLine
}

// Add inserts or increments a line.
func (c *Cart) Add(itemID int64, qty int64, cost float64) {
	for i := range c.Lines {
		if c.Lines[i].ItemID == itemID {
			c.Lines[i].Qty += qty
			return
		}
	}
	c.Lines = append(c.Lines, CartLine{ItemID: itemID, Qty: qty, Cost: cost})
}

// Update sets the quantity of an existing line; qty <= 0 removes it. It
// reports whether the line existed.
func (c *Cart) Update(itemID, qty int64) bool {
	for i := range c.Lines {
		if c.Lines[i].ItemID == itemID {
			if qty <= 0 {
				c.Lines = append(c.Lines[:i], c.Lines[i+1:]...)
			} else {
				c.Lines[i].Qty = qty
			}
			return true
		}
	}
	return false
}

// Total returns the cart total cost.
func (c *Cart) Total() float64 {
	var t float64
	for _, l := range c.Lines {
		t += float64(l.Qty) * l.Cost
	}
	return t
}

// Empty reports whether the cart has no lines.
func (c *Cart) Empty() bool { return len(c.Lines) == 0 }

package tpcw

import (
	"fmt"
	"sync/atomic"

	"repro/internal/aspect"
	"repro/internal/servlet"
	"repro/internal/sim"
	"repro/internal/sqldb"
)

// App assembles the TPC-W application: the database, the woven DAO
// components, and the fourteen interaction servlets. One App deploys into
// one container.
type App struct {
	// Catalog, Customers, Orders and Promo are the woven data-access
	// components servlets execute through.
	Catalog   *CatalogDAO
	Customers *CustomerDAO
	Orders    *OrderDAO
	Promo     *PromoSvc

	db       *sqldb.DB
	clock    sim.Clock
	scale    Scale
	servlets map[string]servlet.Servlet

	fallbackItem atomic.Int64
	unameSeq     atomic.Int64
}

// NewApp creates the schema, populates it at the given scale, weaves the
// DAOs and instantiates the servlets. The clock stamps order dates
// (WallClock when nil).
func NewApp(db *sqldb.DB, weaver *aspect.Weaver, clock sim.Clock, scale Scale) (*App, error) {
	if clock == nil {
		clock = sim.WallClock{}
	}
	scale = scale.withDefaults()
	if err := CreateSchema(db); err != nil {
		return nil, err
	}
	if err := Populate(db, scale); err != nil {
		return nil, err
	}
	a := &App{
		Catalog:   NewCatalogDAO(weaver),
		Customers: NewCustomerDAO(weaver),
		Orders:    NewOrderDAO(weaver),
		Promo:     NewPromoSvc(weaver),
		db:        db,
		clock:     clock,
		scale:     scale,
	}
	a.unameSeq.Store(int64(scale.Customers))
	a.servlets = map[string]servlet.Servlet{
		CompHome:          &homeServlet{base{app: a}},
		CompNewProducts:   &newProductsServlet{base{app: a}},
		CompBestSellers:   &bestSellersServlet{base{app: a}},
		CompProductDetail: &productDetailServlet{base{app: a}},
		CompSearchRequest: &searchRequestServlet{base{app: a}},
		CompSearchResults: &searchResultsServlet{base{app: a}},
		CompShoppingCart:  &shoppingCartServlet{base{app: a}},
		CompCustomerReg:   &customerRegServlet{base{app: a}},
		CompBuyRequest:    &buyRequestServlet{base{app: a}},
		CompBuyConfirm:    &buyConfirmServlet{base{app: a}},
		CompOrderInquiry:  &orderInquiryServlet{base{app: a}},
		CompOrderDisplay:  &orderDisplayServlet{base{app: a}},
		CompAdminRequest:  &adminRequestServlet{base{app: a}},
		CompAdminConfirm:  &adminConfirmServlet{base{app: a}},
	}
	return a, nil
}

// DeployAll deploys every interaction servlet into c.
func (a *App) DeployAll(c *servlet.Container) error {
	for _, name := range Interactions {
		if err := c.Deploy(name, a.servlets[name]); err != nil {
			return fmt.Errorf("tpcw: deploy %s: %w", name, err)
		}
	}
	return nil
}

// Servlet returns the servlet instance of an interaction — the live object
// the ObjectSizeAgent measures and the fault injectors retain into.
func (a *App) Servlet(name string) (servlet.Servlet, bool) {
	s, ok := a.servlets[name]
	return s, ok
}

// DB returns the application database.
func (a *App) DB() *sqldb.DB { return a.db }

// Scale returns the population scale in effect.
func (a *App) Scale() Scale { return a.scale }

// nextFallbackItem rotates deterministically through the catalogue for
// requests that arrive without an I_ID parameter.
func (a *App) nextFallbackItem() int64 {
	n := a.fallbackItem.Add(1)
	return (n-1)%int64(a.scale.Items) + 1
}

// freshUname allocates a unique user name for ad-hoc registration.
func (a *App) freshUname() string {
	return Uname(int(a.unameSeq.Add(1)))
}

// clockSeconds returns the current clock time in whole seconds since the
// simulation epoch, used as order/publication dates.
func (a *App) clockSeconds(*servlet.Request) int64 {
	return int64(a.clock.Now().Sub(sim.Epoch).Seconds())
}

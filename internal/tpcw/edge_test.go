package tpcw

import (
	"errors"
	"testing"

	"repro/internal/aspect"
	"repro/internal/servlet"
	"repro/internal/sqldb"
)

func newDAOFixture(t *testing.T) (*sqldb.Pool, *App) {
	t.Helper()
	db := sqldb.NewDB()
	w := aspect.NewWeaver(nil)
	app, err := NewApp(db, w, nil, Scale{Items: 60, Customers: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return sqldb.NewPool(db, 2), app
}

func TestCatalogDAOEdges(t *testing.T) {
	pool, app := newDAOFixture(t)
	conn := pool.Acquire()
	defer pool.Release(conn)

	if _, err := app.Catalog.ItemByID(conn, 99999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing item err = %v", err)
	}
	if _, err := app.Catalog.Search(conn, "isbn", "x"); err == nil {
		t.Fatal("unknown search field accepted")
	}
	// Subject with no items yields an empty (not error) result.
	items, err := app.Catalog.NewProducts(conn, "NO-SUCH-SUBJECT")
	if err != nil || len(items) != 0 {
		t.Fatalf("empty subject = %v, %v", items, err)
	}
	// Best sellers respect the subject filter.
	arts, err := app.Catalog.BestSellers(conn, "ARTS")
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range arts {
		if it.Subject != "ARTS" {
			t.Fatalf("best seller with wrong subject: %+v", it)
		}
	}
}

func TestBestSellersEmptyOrderHistory(t *testing.T) {
	db := sqldb.NewDB()
	if err := CreateSchema(db); err != nil {
		t.Fatal(err)
	}
	w := aspect.NewWeaver(nil)
	dao := NewCatalogDAO(w)
	pool := sqldb.NewPool(db, 1)
	conn := pool.Acquire()
	defer pool.Release(conn)
	items, err := dao.BestSellers(conn, "")
	if err != nil || items != nil {
		t.Fatalf("empty history best sellers = %v, %v", items, err)
	}
}

func TestCustomerDAOEdges(t *testing.T) {
	pool, app := newDAOFixture(t)
	conn := pool.Acquire()
	defer pool.Release(conn)

	if _, err := app.Customers.ByUname(conn, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing customer err = %v", err)
	}
	if _, err := app.Customers.ByID(conn, 99999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing id err = %v", err)
	}
	c, err := app.Customers.ByUname(conn, Uname(1))
	if err != nil || c.ID != 1 {
		t.Fatalf("ByUname = %+v, %v", c, err)
	}
	id, err := app.Customers.Register(conn, "newuser01")
	if err != nil || id == 0 {
		t.Fatalf("Register = %d, %v", id, err)
	}
	got, err := app.Customers.ByID(conn, id)
	if err != nil || got.Uname != "newuser01" {
		t.Fatalf("registered lookup = %+v, %v", got, err)
	}
}

func TestOrderDAOEdges(t *testing.T) {
	pool, app := newDAOFixture(t)
	conn := pool.Acquire()
	defer pool.Release(conn)

	// A customer registered fresh has no orders.
	id, err := app.Customers.Register(conn, "freshbuyer")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := app.Orders.MostRecentByCustomer(conn, id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("no-orders err = %v", err)
	}
	// Creating an order decrements stock and restocks at zero.
	itemRow, _, err := conn.Get(TableItem, int64(1))
	if err != nil {
		t.Fatal(err)
	}
	before := itemRow[8].(int64)
	cart := &Cart{}
	cart.Add(1, before+1, 10) // force a restock (stock goes negative then +21)
	oid, err := app.Orders.Create(conn, id, cart, 100)
	if err != nil {
		t.Fatal(err)
	}
	after, _, _ := conn.Get(TableItem, int64(1))
	want := before - (before + 1) + 21
	if after[8].(int64) != want {
		t.Fatalf("restock: stock = %d, want %d", after[8].(int64), want)
	}
	order, lines, err := app.Orders.MostRecentByCustomer(conn, id)
	if err != nil || order.ID != oid || len(lines) != 1 {
		t.Fatalf("recent order = %+v, %d lines, %v", order, len(lines), err)
	}
	// The credit-card transaction row exists.
	xacts, err := conn.Select(TableCCXacts, sqldb.Where("cx_o_id", sqldb.Eq, oid))
	if err != nil || len(xacts) != 1 {
		t.Fatalf("cc_xacts = %d, %v", len(xacts), err)
	}
}

func TestPromoSvcMissingAnchor(t *testing.T) {
	pool, app := newDAOFixture(t)
	conn := pool.Acquire()
	defer pool.Release(conn)
	items, err := app.Promo.Related(conn, 99999)
	if err != nil || len(items) != 0 {
		t.Fatalf("missing anchor promo = %v, %v", items, err)
	}
}

func TestServletBaseHelpers(t *testing.T) {
	_, app := newDAOFixture(t)
	s, _ := app.Servlet(CompHome)
	home := s.(*homeServlet)

	// Sessionless cart is a throwaway.
	req := &servlet.Request{Interaction: CompHome}
	if c := home.cart(req); c == nil || !c.Empty() {
		t.Fatal("sessionless cart wrong")
	}
	if _, ok := home.customerID(req); ok {
		t.Fatal("sessionless customer found")
	}
	// Bad I_ID falls back to rotation.
	req.Params = map[string]string{"I_ID": "not-a-number"}
	if id := home.itemParam(req); id < 1 || id > 60 {
		t.Fatalf("fallback id = %d", id)
	}
	// Empty subject falls back to the first subject.
	if got := home.subjectParam(&servlet.Request{}); got != Subjects[0] {
		t.Fatalf("subject fallback = %q", got)
	}
}

func TestUnameStable(t *testing.T) {
	if Uname(7) != "user000007" {
		t.Fatalf("Uname = %q", Uname(7))
	}
}

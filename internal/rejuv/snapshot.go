package rejuv

// Durable actuation state. The controller is the second half of the
// monitor's brain (the aggregator being the first): losing it mid-cycle
// strands nodes out of rotation — a drain nobody completes, a reboot
// nobody re-admits. Snapshot captures every per-node FSM (state,
// suspect, hold-down streak, cooldown, ack landing zone), the cumulative
// counters, the cluster-wide veto latches and the bounded transition
// history, in the canonical binc encoding: snapshotting a restored
// controller yields byte-identical output.
//
// Not captured, by design:
//
//   - pending notifications (transient; the promoted plane re-emits its
//     own), and
//   - the balancer / command-sender / detector-reset bindings — those
//     belong to the plane the controller runs on, not to its state.
//
// After restoring on a promoted standby, call ReconcileOrphans to
// re-anchor in-flight actuation against the new plane: the old
// aggregator's control routes died with it, so a drain is re-asserted,
// an unacked rejuvenate is treated as control lost (re-admit under
// cooldown — never a second reboot), and a probation weight is
// re-applied.

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/binc"
	"repro/internal/cluster"
	"repro/internal/jmx"
)

// rejuvSnapMagic distinguishes a controller snapshot from the
// aggregator's ("AGSN") when both ride the same SNAPSHOT frame.
var rejuvSnapMagic = [4]byte{'R', 'J', 'S', 'N'}

const rejuvSnapVersion = 1

// Decode bounds: a corrupt or hostile snapshot can never drive an
// allocation or a counter beyond these.
const (
	maxRejuvStr     = 4096
	maxRejuvNodes   = 1 << 16
	maxRejuvHold    = 1 << 20
	maxRejuvHistory = 1 << 20
	maxRejuvCounter = int64(1) << 40
)

// AppendSnapshot appends the controller's durable state to dst.
func (c *Controller) AppendSnapshot(dst []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()

	dst = append(dst, rejuvSnapMagic[:]...)
	dst = append(dst, rejuvSnapVersion)

	dst = binc.AppendUvarint(dst, uint64(c.cfg.HoldDownEpochs))
	dst = binc.AppendUvarint(dst, uint64(c.cfg.MaxConcurrent))
	dst = binc.AppendUvarint(dst, uint64(c.cfg.DrainEpochs))
	dst = binc.AppendUvarint(dst, uint64(c.cfg.RebootEpochs))
	dst = binc.AppendUvarint(dst, uint64(c.cfg.ProbationEpochs))
	dst = binc.AppendUvarint(dst, uint64(c.cfg.ProbationWeight))
	dst = binc.AppendUvarint(dst, uint64(c.cfg.HealthyWeight))
	dst = binc.AppendUvarint(dst, uint64(c.cfg.CooldownEpochs))
	dst = binc.AppendUvarint(dst, uint64(c.cfg.HistoryCap))

	dst = binc.AppendVarint(dst, c.epoch)
	dst = binc.AppendVarint(dst, c.counters.Rejuvenations)
	dst = binc.AppendVarint(dst, c.counters.FreedBytes)
	dst = binc.AppendVarint(dst, c.counters.Rollbacks)
	dst = binc.AppendVarint(dst, c.counters.ControlLost)
	dst = binc.AppendVarint(dst, c.counters.ForcedDrains)
	dst = binc.AppendVarint(dst, c.counters.ClusterWideVetoes)

	cw := make([]string, 0, len(c.cwSeen))
	for comp := range c.cwSeen {
		cw = append(cw, comp)
	}
	sort.Strings(cw)
	dst = binc.AppendUvarint(dst, uint64(len(cw)))
	for _, comp := range cw {
		dst = binc.AppendString(dst, comp)
	}

	dst = binc.AppendUvarint(dst, uint64(len(c.order)))
	for _, name := range c.order {
		n := c.nodes[name]
		dst = binc.AppendString(dst, n.name)
		dst = append(dst, byte(n.state))
		dst = binc.AppendString(dst, n.suspect)
		dst = binc.AppendUvarint(dst, uint64(n.hold))
		dst = binc.AppendVarint(dst, n.since)
		dst = binc.AppendVarint(dst, n.cooldownUntil)
		dst = binc.AppendVarint(dst, n.cycles)
		dst = binc.AppendVarint(dst, n.freed)
		dst = binc.AppendBool(dst, n.ackDone)
		dst = binc.AppendBool(dst, n.ackOK)
		dst = binc.AppendString(dst, n.ackErr)
		dst = binc.AppendVarint(dst, n.ackFree)
	}

	dst = binc.AppendUvarint(dst, uint64(len(c.history)))
	for _, ev := range c.history {
		dst = binc.AppendVarint(dst, ev.Epoch)
		dst = binc.AppendString(dst, ev.Node)
		dst = binc.AppendString(dst, ev.Component)
		dst = append(dst, byte(ev.From), byte(ev.To))
		dst = binc.AppendString(dst, ev.Note)
	}
	return dst
}

// Snapshot returns the controller's durable state as a fresh buffer.
func (c *Controller) Snapshot() []byte { return c.AppendSnapshot(nil) }

// Restore loads a snapshot into a freshly constructed controller (same
// Config, new plane bindings). On error the controller must be
// discarded: state may be partially populated.
func (c *Controller) Restore(data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != 0 || len(c.nodes) != 0 || len(c.history) != 0 {
		return errors.New("rejuv: restore target is not a fresh controller")
	}

	p := binc.NewParser(data)
	var magic [4]byte
	for i := range magic {
		magic[i] = p.Byte()
	}
	if p.Err() == nil && magic != rejuvSnapMagic {
		return fmt.Errorf("rejuv: bad snapshot magic %q", magic[:])
	}
	if v := p.Byte(); p.Err() == nil && v != rejuvSnapVersion {
		return fmt.Errorf("rejuv: %w: %d", binc.ErrVersion, v)
	}

	var cfg Config
	for _, f := range []*int{
		&cfg.HoldDownEpochs, &cfg.MaxConcurrent, &cfg.DrainEpochs,
		&cfg.RebootEpochs, &cfg.ProbationEpochs, &cfg.ProbationWeight,
		&cfg.HealthyWeight, &cfg.CooldownEpochs, &cfg.HistoryCap,
	} {
		v := p.Uvarint()
		if p.Err() != nil {
			return p.Err()
		}
		if v == 0 || v > maxRejuvHold {
			return fmt.Errorf("rejuv: snapshot config field %d out of range", v)
		}
		*f = int(v)
	}
	if cfg != c.cfg {
		return fmt.Errorf("rejuv: snapshot config %+v does not match controller config %+v", cfg, c.cfg)
	}

	epoch := p.Varint()
	var counters Counters
	for _, f := range []*int64{
		&counters.Rejuvenations, &counters.FreedBytes, &counters.Rollbacks,
		&counters.ControlLost, &counters.ForcedDrains, &counters.ClusterWideVetoes,
	} {
		*f = p.Varint()
		if p.Err() == nil && (*f < 0 || *f > maxRejuvCounter) {
			return fmt.Errorf("rejuv: snapshot counter %d out of range", *f)
		}
	}
	if p.Err() == nil && (epoch < 0 || epoch > maxRejuvCounter) {
		return fmt.Errorf("rejuv: snapshot epoch %d out of range", epoch)
	}

	cwSeen := make(map[string]bool)
	nCW := p.Count(maxRejuvNodes)
	prev := ""
	for i := 0; i < nCW; i++ {
		comp := p.String(maxRejuvStr)
		if p.Err() != nil {
			return p.Err()
		}
		if comp == "" || (i > 0 && comp <= prev) {
			return fmt.Errorf("rejuv: snapshot veto latches not canonical at %q", comp)
		}
		prev = comp
		cwSeen[comp] = true
	}

	nNodes := p.Count(maxRejuvNodes)
	nodes := make(map[string]*nodeFSM, nNodes)
	order := make([]string, 0, nNodes)
	prev = ""
	for i := 0; i < nNodes; i++ {
		n := &nodeFSM{}
		n.name = p.String(maxRejuvStr)
		n.state = State(p.Byte())
		n.suspect = p.String(maxRejuvStr)
		hold := p.Uvarint()
		n.since = p.Varint()
		n.cooldownUntil = p.Varint()
		n.cycles = p.Varint()
		n.freed = p.Varint()
		n.ackDone = p.Bool()
		n.ackOK = p.Bool()
		n.ackErr = p.String(maxRejuvStr)
		n.ackFree = p.Varint()
		if p.Err() != nil {
			return p.Err()
		}
		if n.name == "" || (i > 0 && n.name <= prev) {
			return fmt.Errorf("rejuv: snapshot nodes not canonical at %q", n.name)
		}
		prev = n.name
		if n.state > Probation {
			return fmt.Errorf("rejuv: node %s has invalid state %d", n.name, n.state)
		}
		if hold > maxRejuvHold {
			return fmt.Errorf("rejuv: node %s hold %d out of range", n.name, hold)
		}
		n.hold = int(hold)
		for _, v := range []int64{n.since, n.cooldownUntil, n.cycles, n.freed, n.ackFree} {
			if v < 0 || v > maxRejuvCounter {
				return fmt.Errorf("rejuv: node %s counter %d out of range", n.name, v)
			}
		}
		nodes[n.name] = n
		order = append(order, n.name)
	}

	nHist := p.Count(maxRejuvHistory)
	if p.Err() == nil && nHist > cfg.HistoryCap {
		return fmt.Errorf("rejuv: snapshot history %d exceeds cap %d", nHist, cfg.HistoryCap)
	}
	history := make([]Event, 0, nHist)
	for i := 0; i < nHist; i++ {
		var ev Event
		ev.Epoch = p.Varint()
		ev.Node = p.String(maxRejuvStr)
		ev.Component = p.String(maxRejuvStr)
		ev.From = State(p.Byte())
		ev.To = State(p.Byte())
		ev.Note = p.String(maxRejuvStr)
		if p.Err() != nil {
			return p.Err()
		}
		if ev.Node == "" || ev.From > Probation || ev.To > Probation ||
			ev.Epoch < 0 || ev.Epoch > maxRejuvCounter {
			return fmt.Errorf("rejuv: snapshot history event %d not valid", i)
		}
		history = append(history, ev)
	}
	if err := p.Done(); err != nil {
		return err
	}

	c.epoch = epoch
	c.counters = counters
	c.cwSeen = cwSeen
	c.nodes = nodes
	c.order = order
	c.history = history
	return nil
}

// ReconcileOrphans re-anchors in-flight actuation after a standby
// promotion. The aggregator that issued this controller's outstanding
// commands is dead, along with its control connections and any pending
// acks, so every node caught mid-cycle is resolved against the new
// plane:
//
//   - Draining: the drain is re-asserted on the balancer and re-sent to
//     the node; the FSM resumes its drain deadline where it left off.
//   - Rejuvenating without a recorded ack: whether the micro-reboot
//     landed is unknowable, so the node takes the control-lost path —
//     re-admitted un-rebooted at probation weight under a cooldown. A
//     second rejuvenate is never sent: never double-reboot.
//   - Rejuvenating with the ack already landed: the outcome is known;
//     the next ObserveEpoch consumes it normally.
//   - Probation: the reduced weight is re-asserted in case the balancer
//     was promoted alongside the controller and lost it.
//
// Call once, after Restore and before the first ObserveEpoch.
func (c *Controller) ReconcileOrphans() {
	var sends []pendingCommand
	c.mu.Lock()
	for _, name := range c.order {
		n := c.nodes[name]
		switch n.state {
		case Draining:
			c.bal.Drain(name)
			c.notify(jmx.Notification{
				Type:    NotifRejuvAction,
				Source:  Name(),
				Message: fmt.Sprintf("%s: resuming drain of %s after failover (epoch %d)", name, n.suspect, c.epoch),
				Data:    Event{Epoch: c.epoch, Node: name, Component: n.suspect, From: Draining, To: Draining, Note: "drain re-asserted after failover"},
			})
			sends = append(sends, pendingCommand{node: name, comp: n.suspect, kind: cluster.ControlDrain})
		case Rejuvenating:
			if n.ackDone {
				break
			}
			c.counters.ControlLost++
			n.cooldownUntil = c.epoch + int64(c.cfg.CooldownEpochs)
			c.bal.Readmit(name, c.cfg.ProbationWeight)
			c.transition(n, Probation, n.suspect,
				"rejuvenate ack orphaned by failover; re-admitted un-rebooted (control lost)")
		case Probation:
			c.bal.Readmit(name, c.cfg.ProbationWeight)
			c.notify(jmx.Notification{
				Type:    NotifRejuvAction,
				Source:  Name(),
				Message: fmt.Sprintf("%s: probation weight %d re-asserted after failover (epoch %d)", name, c.cfg.ProbationWeight, c.epoch),
				Data:    Event{Epoch: c.epoch, Node: name, Component: n.suspect, From: Probation, To: Probation, Note: "probation re-asserted after failover"},
			})
			sends = append(sends, pendingCommand{node: name, comp: "", kind: cluster.ControlReadmit, weight: c.cfg.ProbationWeight})
		}
	}
	c.mu.Unlock()
	for _, s := range sends {
		c.ctl.SendControl(s.node, s.kind, s.comp, s.weight, nil)
	}
}

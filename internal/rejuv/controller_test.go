package rejuv

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
)

// fakeBalancer records drain/readmit traffic and lets tests script the
// pinned/inflight drain-progress signals.
type fakeBalancer struct {
	draining map[string]bool
	weights  map[string]int
	pinned   map[string]int
	inflight map[string]int
	calls    []string
}

func newFakeBalancer() *fakeBalancer {
	return &fakeBalancer{
		draining: map[string]bool{},
		weights:  map[string]int{},
		pinned:   map[string]int{},
		inflight: map[string]int{},
	}
}

func (b *fakeBalancer) Drain(node string) bool {
	b.draining[node] = true
	b.calls = append(b.calls, "drain:"+node)
	return true
}

func (b *fakeBalancer) CompleteDrain(node string) int {
	n := b.pinned[node]
	b.pinned[node] = 0
	b.calls = append(b.calls, fmt.Sprintf("complete:%s:%d", node, n))
	return n
}

func (b *fakeBalancer) Readmit(node string, weight int) bool {
	b.draining[node] = false
	b.weights[node] = weight
	b.calls = append(b.calls, fmt.Sprintf("readmit:%s:%d", node, weight))
	return true
}

func (b *fakeBalancer) PinnedSessions(node string) int { return b.pinned[node] }
func (b *fakeBalancer) Inflight(node string) int       { return b.inflight[node] }

// fakeSender acks every command synchronously (like a local handler),
// with optional scripted failures per node.
type fakeSender struct {
	sent  []cluster.ControlCommand
	fail  map[string]bool // swallow rejuvenate: done never fires
	errOn map[string]bool // rejuvenate acks with an error
	freed int64
}

func (s *fakeSender) SendControl(node string, kind cluster.ControlKind, component string, weight int, done func(cluster.ControlAck, error)) {
	s.sent = append(s.sent, cluster.ControlCommand{Kind: kind, Node: node, Component: component, Weight: int64(weight)})
	if done == nil {
		return
	}
	if s.fail[node] {
		return // command lost in flight: no ack, no error
	}
	if s.errOn[node] {
		done(cluster.ControlAck{}, errors.New("conn reset"))
		return
	}
	done(cluster.ControlAck{OK: true, Freed: s.freed}, nil)
}

type fakeReset struct{ nodes []string }

func (r *fakeReset) ResetNode(node string) bool {
	r.nodes = append(r.nodes, node)
	return true
}

// alarmEpoch builds an epoch event flagging component comp on the given
// nodes (node-local).
func alarmEpoch(epoch int64, comp string, nodes ...string) cluster.EpochEvent {
	ev := cluster.EpochEvent{Epoch: epoch, Active: 3}
	if len(nodes) > 0 {
		ev.Verdicts = []cluster.ClusterVerdict{{
			Resource: "memory", Component: comp, Nodes: nodes, ActiveNodes: 3, Score: 5,
		}}
	}
	return ev
}

func quietEpoch(epoch int64) cluster.EpochEvent {
	return cluster.EpochEvent{Epoch: epoch, Active: 3}
}

func newTestController(bal *fakeBalancer, snd *fakeSender) *Controller {
	c := New(Config{
		HoldDownEpochs:  3,
		MaxConcurrent:   1,
		DrainEpochs:     2,
		RebootEpochs:    3,
		ProbationEpochs: 4,
		ProbationWeight: 1,
		HealthyWeight:   4,
		CooldownEpochs:  5,
	}, bal, snd)
	return c
}

// TestFullCycle drives one node through the complete
// Healthy→Draining→Rejuvenating→Probation→Healthy cycle.
func TestFullCycle(t *testing.T) {
	bal := newFakeBalancer()
	snd := &fakeSender{freed: 4096}
	reset := &fakeReset{}
	c := newTestController(bal, snd)
	c.SetDetectorReset(reset)

	epoch := int64(0)
	// Hold-down: two alarming epochs are not enough.
	for i := 0; i < 2; i++ {
		epoch++
		c.ObserveEpoch(alarmEpoch(epoch, "home", "node2"))
	}
	if got := c.NodeState("node2"); got != Healthy {
		t.Fatalf("after 2 alarming epochs state = %v, want healthy", got)
	}
	// Third consecutive alarm: drain.
	epoch++
	bal.pinned["node2"] = 2 // sessions still stuck
	c.ObserveEpoch(alarmEpoch(epoch, "home", "node2"))
	if got := c.NodeState("node2"); got != Draining {
		t.Fatalf("after hold-down state = %v, want draining", got)
	}
	if !bal.draining["node2"] {
		t.Fatalf("balancer not draining node2")
	}
	// Sessions drain away: next epoch fires the micro-reboot, whose
	// synchronous ack is consumed one epoch later.
	bal.pinned["node2"] = 0
	epoch++
	c.ObserveEpoch(alarmEpoch(epoch, "home", "node2"))
	if got := c.NodeState("node2"); got != Rejuvenating {
		t.Fatalf("after idle drain state = %v, want rejuvenating", got)
	}
	epoch++
	c.ObserveEpoch(quietEpoch(epoch))
	if got := c.NodeState("node2"); got != Probation {
		t.Fatalf("after acked reboot state = %v, want probation", got)
	}
	if bal.weights["node2"] != 1 {
		t.Fatalf("probation weight = %d, want 1", bal.weights["node2"])
	}
	if len(reset.nodes) != 1 || reset.nodes[0] != "node2" {
		t.Fatalf("detector resets = %v, want [node2]", reset.nodes)
	}
	// Clean probation: restored to full weight.
	for i := 0; i < 4; i++ {
		epoch++
		c.ObserveEpoch(quietEpoch(epoch))
	}
	if got := c.NodeState("node2"); got != Healthy {
		t.Fatalf("after clean probation state = %v, want healthy", got)
	}
	if bal.weights["node2"] != 4 {
		t.Fatalf("restored weight = %d, want 4", bal.weights["node2"])
	}
	st := c.Stats()
	if st.Rejuvenations != 1 || st.FreedBytes != 4096 {
		t.Fatalf("counters = %+v, want 1 rejuvenation / 4096 freed", st)
	}
	// Rejuvenate command carried the suspect component.
	var sawReboot bool
	for _, cmd := range snd.sent {
		if cmd.Kind == cluster.ControlRejuvenate {
			sawReboot = true
			if cmd.Node != "node2" || cmd.Component != "home" {
				t.Fatalf("rejuvenate command = %+v, want node2/home", cmd)
			}
		}
	}
	if !sawReboot {
		t.Fatalf("no rejuvenate command sent: %+v", snd.sent)
	}
}

// TestFlappingAlarmHeldByHysteresis pins that an alarm flapping on/off
// never accumulates the hold-down, so the node is never drained.
func TestFlappingAlarmHeldByHysteresis(t *testing.T) {
	bal := newFakeBalancer()
	snd := &fakeSender{}
	c := newTestController(bal, snd)
	epoch := int64(0)
	for i := 0; i < 20; i++ {
		epoch++
		if i%2 == 0 {
			c.ObserveEpoch(alarmEpoch(epoch, "home", "node1"))
		} else {
			c.ObserveEpoch(quietEpoch(epoch))
		}
	}
	if got := c.NodeState("node1"); got != Healthy {
		t.Fatalf("flapping alarm drove state to %v, want healthy", got)
	}
	if len(bal.calls) != 0 {
		t.Fatalf("flapping alarm touched the balancer: %v", bal.calls)
	}
	if len(snd.sent) != 0 {
		t.Fatalf("flapping alarm sent commands: %v", snd.sent)
	}
}

// TestSuppressedEpochsDoNotAccumulate pins that churn/shift-suppressed
// epochs freeze (not grow, not reset) the hold-down.
func TestSuppressedEpochsDoNotAccumulate(t *testing.T) {
	bal := newFakeBalancer()
	c := newTestController(bal, &fakeSender{})
	epoch := int64(0)
	for i := 0; i < 10; i++ {
		epoch++
		ev := alarmEpoch(epoch, "home", "node1")
		ev.Suppressed = true
		c.ObserveEpoch(ev)
	}
	if got := c.NodeState("node1"); got != Healthy {
		t.Fatalf("suppressed alarms drove state to %v, want healthy", got)
	}
	// Two clean-signal alarming epochs: still below the hold-down of 3.
	for i := 0; i < 2; i++ {
		epoch++
		c.ObserveEpoch(alarmEpoch(epoch, "home", "node1"))
	}
	if got := c.NodeState("node1"); got != Healthy {
		t.Fatalf("state = %v after 2 unsuppressed alarms, want healthy", got)
	}
	epoch++
	c.ObserveEpoch(alarmEpoch(epoch, "home", "node1"))
	if got := c.NodeState("node1"); got != Draining {
		t.Fatalf("state = %v after 3 unsuppressed alarms, want draining", got)
	}
}

// TestConcurrencyCap pins that with two nodes past hold-down only one is
// taken out of rotation at a time (MaxConcurrent=1), and the second
// follows once the first completes its cycle.
func TestConcurrencyCap(t *testing.T) {
	bal := newFakeBalancer()
	snd := &fakeSender{freed: 100}
	c := newTestController(bal, snd)
	epoch := int64(0)
	for i := 0; i < 3; i++ {
		epoch++
		c.ObserveEpoch(alarmEpoch(epoch, "home", "node1", "node2"))
	}
	if got := c.NodeState("node1"); got != Draining {
		t.Fatalf("node1 state = %v, want draining (first in name order)", got)
	}
	if got := c.NodeState("node2"); got != Healthy {
		t.Fatalf("node2 state = %v, want healthy (cap respected)", got)
	}
	// Drive node1 through its cycle; node2 keeps alarming and must enter
	// its own drain only after node1 leaves the busy set (enters
	// probation).
	for i := 0; i < 12 && c.NodeState("node1") != Probation; i++ {
		epoch++
		c.ObserveEpoch(alarmEpoch(epoch, "home", "node2"))
	}
	if got := c.NodeState("node1"); got != Probation {
		t.Fatalf("node1 never reached probation")
	}
	// node2's hold-down was already met; the next unsuppressed alarming
	// epoch with a free slot drains it.
	epoch++
	c.ObserveEpoch(alarmEpoch(epoch, "home", "node2"))
	if got := c.NodeState("node2"); got != Draining {
		t.Fatalf("node2 state = %v after slot freed, want draining", got)
	}
}

// TestProbationRollback pins that the same component re-alarming during
// probation rolls the node back to Draining.
func TestProbationRollback(t *testing.T) {
	bal := newFakeBalancer()
	snd := &fakeSender{freed: 100}
	c := newTestController(bal, snd)
	epoch := int64(0)
	for i := 0; i < 5 && c.NodeState("node1") != Probation; i++ {
		epoch++
		c.ObserveEpoch(alarmEpoch(epoch, "home", "node1"))
	}
	if got := c.NodeState("node1"); got != Probation {
		t.Fatalf("node1 state = %v, want probation", got)
	}
	epoch++
	c.ObserveEpoch(alarmEpoch(epoch, "home", "node1"))
	if got := c.NodeState("node1"); got != Draining {
		t.Fatalf("probation re-alarm state = %v, want draining", got)
	}
	if st := c.Stats(); st.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d, want 1", st.Rollbacks)
	}
}

// TestControlLossFallsBackBounded pins the control-loss path: a
// rejuvenate command that never acks re-admits the node within
// RebootEpochs instead of keeping it out of rotation forever.
func TestControlLossFallsBackBounded(t *testing.T) {
	bal := newFakeBalancer()
	snd := &fakeSender{fail: map[string]bool{"node1": true}}
	c := newTestController(bal, snd)
	epoch := int64(0)
	for i := 0; i < 5 && c.NodeState("node1") != Rejuvenating; i++ {
		epoch++
		c.ObserveEpoch(alarmEpoch(epoch, "home", "node1"))
	}
	if got := c.NodeState("node1"); got != Rejuvenating {
		t.Fatalf("node1 state = %v, want rejuvenating", got)
	}
	// RebootEpochs=3 without an ack: fallback re-admission.
	for i := 0; i < 3; i++ {
		epoch++
		c.ObserveEpoch(quietEpoch(epoch))
	}
	if got := c.NodeState("node1"); got != Probation {
		t.Fatalf("state = %v after reboot deadline, want probation (fallback)", got)
	}
	st := c.Stats()
	if st.ControlLost != 1 {
		t.Fatalf("control lost = %d, want 1", st.ControlLost)
	}
	if st.Rejuvenations != 0 {
		t.Fatalf("rejuvenations = %d, want 0 (command was lost)", st.Rejuvenations)
	}
	if bal.draining["node1"] {
		t.Fatalf("node1 still draining after fallback re-admission")
	}
}

// TestControlErrorFallsBack pins that an erroring control channel (not
// just a silent one) takes the same safe fallback.
func TestControlErrorFallsBack(t *testing.T) {
	bal := newFakeBalancer()
	snd := &fakeSender{errOn: map[string]bool{"node1": true}}
	c := newTestController(bal, snd)
	epoch := int64(0)
	for i := 0; i < 6 && c.NodeState("node1") != Probation; i++ {
		epoch++
		c.ObserveEpoch(alarmEpoch(epoch, "home", "node1"))
	}
	if got := c.NodeState("node1"); got != Probation {
		t.Fatalf("node1 state = %v, want probation via error fallback", got)
	}
	if st := c.Stats(); st.ControlLost != 1 {
		t.Fatalf("control lost = %d, want 1", st.ControlLost)
	}
}

// TestClusterWideVeto pins that a cluster-wide verdict actuates nothing
// and surfaces a veto instead — mass micro-reboots are the outage.
func TestClusterWideVeto(t *testing.T) {
	bal := newFakeBalancer()
	snd := &fakeSender{}
	c := newTestController(bal, snd)
	for epoch := int64(1); epoch <= 10; epoch++ {
		c.ObserveEpoch(cluster.EpochEvent{Epoch: epoch, Active: 3, Verdicts: []cluster.ClusterVerdict{{
			Resource: "memory", Component: "home", Nodes: []string{"node1", "node2", "node3"},
			ActiveNodes: 3, ClusterWide: true, Score: 9,
		}}})
	}
	if len(bal.calls) != 0 || len(snd.sent) != 0 {
		t.Fatalf("cluster-wide verdict actuated: bal=%v sent=%v", bal.calls, snd.sent)
	}
	st := c.Stats()
	if st.ClusterWideVetoes != 1 {
		t.Fatalf("vetoes = %d, want 1 (latched, not per-epoch)", st.ClusterWideVetoes)
	}
	notifs := c.DrainNotifications()
	if len(notifs) != 1 {
		t.Fatalf("veto notifications = %d, want 1", len(notifs))
	}
}

// TestDrainDeadlineForcesUnpin pins that sessions refusing to go idle
// are force-unpinned at the drain deadline.
func TestDrainDeadlineForcesUnpin(t *testing.T) {
	bal := newFakeBalancer()
	snd := &fakeSender{freed: 1}
	c := newTestController(bal, snd)
	bal.pinned["node1"] = 7 // never drains on its own
	epoch := int64(0)
	for i := 0; i < 3; i++ {
		epoch++
		c.ObserveEpoch(alarmEpoch(epoch, "home", "node1"))
	}
	if got := c.NodeState("node1"); got != Draining {
		t.Fatalf("state = %v, want draining", got)
	}
	// DrainEpochs=2 past the transition: forced completion.
	for i := 0; i < 2; i++ {
		epoch++
		c.ObserveEpoch(alarmEpoch(epoch, "home", "node1"))
	}
	if got := c.NodeState("node1"); got != Rejuvenating {
		t.Fatalf("state = %v after drain deadline, want rejuvenating", got)
	}
	if st := c.Stats(); st.ForcedDrains != 1 {
		t.Fatalf("forced drains = %d, want 1", st.ForcedDrains)
	}
	if bal.pinned["node1"] != 0 {
		t.Fatalf("sessions still pinned after forced drain")
	}
}

// TestHistoryAndStatus sanity-checks the observability surfaces.
func TestHistoryAndStatus(t *testing.T) {
	bal := newFakeBalancer()
	snd := &fakeSender{freed: 10}
	c := newTestController(bal, snd)
	c.Track("node1", "node2")
	st := c.Status()
	if len(st) != 2 || st[0].Node != "node1" || st[0].State != Healthy {
		t.Fatalf("tracked status = %+v", st)
	}
	epoch := int64(0)
	for i := 0; i < 12 && c.NodeState("node1") != Probation; i++ {
		epoch++
		c.ObserveEpoch(alarmEpoch(epoch, "home", "node1"))
	}
	hist := c.History()
	if len(hist) < 3 {
		t.Fatalf("history has %d events, want >= 3 (drain, reboot, probation)", len(hist))
	}
	if hist[0].From != Healthy || hist[0].To != Draining {
		t.Fatalf("first transition = %+v, want healthy→draining", hist[0])
	}
	for _, e := range hist {
		if e.Node != "node1" {
			t.Fatalf("transition for unexpected node: %+v", e)
		}
	}
}

package rejuv

import (
	"repro/internal/jmx"
)

// Name returns the controller's JMX object name.
func Name() jmx.ObjectName {
	return jmx.MustObjectName("aging:type=Rejuvenator")
}

// Bean exposes the controller over JMX, so agingmon and the HTTP adapter
// reach the actuation plane the same way they reach the aggregator.
func (c *Controller) Bean() *jmx.Bean {
	return jmx.NewBean("Rejuvenation controller: verdict-driven drain / micro-reboot / probation / re-admit").
		Attr("Epoch", "last cluster epoch observed", func() any { return c.Epoch() }).
		Attr("Status", "per-node actuation state", func() any { return c.Status() }).
		Attr("Counters", "cumulative actuation totals", func() any { return c.Stats() }).
		Op("History", "state-machine transitions, oldest first", func(...any) (any, error) {
			return c.History(), nil
		})
}

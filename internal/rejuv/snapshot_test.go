package rejuv

import (
	"bytes"
	"encoding/hex"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/binc"
	"repro/internal/cluster"
)

// scriptEpoch deterministically scripts a varied verdict stream: steady
// node-local alarms with quiet gaps (full cycles for node1), a
// periodically suppressed alarm on node2, and a recurring cluster-wide
// verdict — every controller code path leaves state for the snapshot.
func scriptEpoch(epoch int64) cluster.EpochEvent {
	switch {
	case epoch%17 == 0:
		return cluster.EpochEvent{Epoch: epoch, Active: 3, Verdicts: []cluster.ClusterVerdict{{
			Resource: "memory", Component: "shared.cache", Nodes: []string{"node1", "node2", "node3"},
			ActiveNodes: 3, ClusterWide: true, Score: 9,
		}}}
	case epoch%11 == 5:
		ev := alarmEpoch(epoch, "cart", "node2")
		ev.Suppressed = true
		return ev
	case (epoch/4)%3 != 2:
		return alarmEpoch(epoch, "home", "node1")
	default:
		return quietEpoch(epoch)
	}
}

func driveScript(c *Controller, from, to int64) {
	for e := from; e <= to; e++ {
		c.ObserveEpoch(scriptEpoch(e))
	}
}

// TestControllerSnapshotParity is the controller-side restart-parity
// proof: run N epochs, snapshot, restore into a fresh controller on
// fresh plane fakes, run M more on both — every transition, balancer
// call, control command, status row and counter must match the
// uninterrupted run, and the final snapshots must be byte-identical.
func TestControllerSnapshotParity(t *testing.T) {
	const n, m = 30, 25
	balRef, sndRef := newFakeBalancer(), &fakeSender{freed: 2048}
	ref := newTestController(balRef, sndRef)
	driveScript(ref, 1, n)

	snap := ref.Snapshot()
	balCut, sndCut := len(balRef.calls), len(sndRef.sent)

	bal2, snd2 := newFakeBalancer(), &fakeSender{freed: 2048}
	restored := newTestController(bal2, snd2)
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}

	driveScript(ref, n+1, n+m)
	driveScript(restored, n+1, n+m)

	if got, want := restored.Epoch(), ref.Epoch(); got != want {
		t.Fatalf("epoch = %d, want %d", got, want)
	}
	if got, want := restored.Stats(), ref.Stats(); got != want {
		t.Fatalf("counters diverged:\nrestored %+v\nref      %+v", got, want)
	}
	if got, want := restored.Status(), ref.Status(); !reflect.DeepEqual(got, want) {
		t.Fatalf("status diverged:\nrestored %+v\nref      %+v", got, want)
	}
	if got, want := restored.History(), ref.History(); !reflect.DeepEqual(got, want) {
		t.Fatalf("history diverged:\nrestored %+v\nref      %+v", got, want)
	}
	if got, want := bal2.calls, balRef.calls[balCut:]; !reflect.DeepEqual(got, want) {
		t.Fatalf("balancer calls diverged:\nrestored %v\nref tail %v", got, want)
	}
	if got, want := snd2.sent, sndRef.sent[sndCut:]; !reflect.DeepEqual(got, want) {
		t.Fatalf("control commands diverged:\nrestored %+v\nref tail %+v", got, want)
	}
	if !bytes.Equal(restored.Snapshot(), ref.Snapshot()) {
		t.Fatal("final snapshots are not byte-identical")
	}
}

// TestControllerSnapshotMidCycleParity snapshots at every epoch of a
// full actuation cycle — mid-drain, mid-reboot, mid-probation — and
// checks each restore converges identically.
func TestControllerSnapshotMidCycleParity(t *testing.T) {
	const total = 20
	for cut := int64(1); cut < total; cut++ {
		balRef, sndRef := newFakeBalancer(), &fakeSender{freed: 512}
		ref := newTestController(balRef, sndRef)
		driveScript(ref, 1, cut)
		snap := ref.Snapshot()

		restored := newTestController(newFakeBalancer(), &fakeSender{freed: 512})
		if err := restored.Restore(snap); err != nil {
			t.Fatalf("cut %d: Restore: %v", cut, err)
		}
		driveScript(ref, cut+1, total)
		driveScript(restored, cut+1, total)
		if !bytes.Equal(restored.Snapshot(), ref.Snapshot()) {
			t.Errorf("cut %d: final snapshots diverge", cut)
		}
	}
}

// TestControllerSnapshotCanonical pins that restore→snapshot reproduces
// the input bytes exactly.
func TestControllerSnapshotCanonical(t *testing.T) {
	c := newTestController(newFakeBalancer(), &fakeSender{freed: 64})
	driveScript(c, 1, 40)
	snap := c.Snapshot()

	restored := newTestController(newFakeBalancer(), &fakeSender{})
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !bytes.Equal(restored.Snapshot(), snap) {
		t.Fatal("snapshot of restored controller differs from input")
	}
}

// TestControllerRestoreRejects pins the misuse and corruption guards.
func TestControllerRestoreRejects(t *testing.T) {
	c := newTestController(newFakeBalancer(), &fakeSender{freed: 64})
	driveScript(c, 1, 12)
	snap := c.Snapshot()

	// Used controller.
	used := newTestController(newFakeBalancer(), &fakeSender{})
	used.ObserveEpoch(quietEpoch(1))
	if err := used.Restore(snap); err == nil || !strings.Contains(err.Error(), "fresh") {
		t.Fatalf("restore into used controller: %v", err)
	}

	// Config mismatch.
	other := New(Config{HoldDownEpochs: 7}, newFakeBalancer(), &fakeSender{})
	if err := other.Restore(snap); err == nil || !strings.Contains(err.Error(), "config") {
		t.Fatalf("restore with different config: %v", err)
	}

	// Corruption.
	bad := append([]byte(nil), snap...)
	bad[0] = 'X'
	if err := newTestController(newFakeBalancer(), &fakeSender{}).Restore(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}
	bad = append([]byte(nil), snap...)
	bad[4] = 99
	if err := newTestController(newFakeBalancer(), &fakeSender{}).Restore(bad); !errors.Is(err, binc.ErrVersion) {
		t.Fatalf("bad version: %v", err)
	}
	for _, cut := range []int{0, 3, len(snap) / 2, len(snap) - 1} {
		if err := newTestController(newFakeBalancer(), &fakeSender{}).Restore(snap[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if err := newTestController(newFakeBalancer(), &fakeSender{}).Restore(append(append([]byte(nil), snap...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestReconcileDrainingOrphan pins that a node caught mid-drain at
// failover resumes its drain on the new plane and still reboots exactly
// once.
func TestReconcileDrainingOrphan(t *testing.T) {
	balRef, sndRef := newFakeBalancer(), &fakeSender{freed: 256}
	ref := newTestController(balRef, sndRef)
	balRef.pinned["node1"] = 3 // sessions hold the drain open
	driveScript(ref, 1, 3)
	if got := ref.NodeState("node1"); got != Draining {
		t.Fatalf("setup: state = %v, want draining", got)
	}
	snap := ref.Snapshot()

	bal2, snd2 := newFakeBalancer(), &fakeSender{freed: 256}
	c := newTestController(bal2, snd2)
	if err := c.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	c.ReconcileOrphans()

	if got := c.NodeState("node1"); got != Draining {
		t.Fatalf("state after reconcile = %v, want draining (resumed)", got)
	}
	if !bal2.draining["node1"] {
		t.Fatal("drain not re-asserted on the new balancer")
	}
	if len(snd2.sent) != 1 || snd2.sent[0].Kind != cluster.ControlDrain || snd2.sent[0].Node != "node1" {
		t.Fatalf("reconcile commands = %+v, want one drain for node1", snd2.sent)
	}
	if n := c.DrainNotifications(); len(n) == 0 {
		t.Fatal("reconcile emitted no notification")
	}

	// The drain completes on the new plane (the alarm clears once the
	// leak is gone): exactly one micro-reboot, issued by the promoted
	// controller.
	for e := int64(4); e <= 12; e++ {
		c.ObserveEpoch(quietEpoch(e))
	}
	reboots := 0
	for _, cmd := range snd2.sent {
		if cmd.Kind == cluster.ControlRejuvenate {
			reboots++
		}
	}
	if reboots != 1 {
		t.Fatalf("rejuvenate commands after failover = %d, want exactly 1", reboots)
	}
	if st := c.Stats(); st.Rejuvenations != 1 || st.ControlLost != 0 {
		t.Fatalf("counters = %+v, want 1 rejuvenation, 0 control lost", st)
	}
}

// TestReconcileRejuvenatingOrphanNeverDoubleReboots pins the critical
// invariant: a node whose rejuvenate ack died with the old aggregator is
// re-admitted under cooldown, and a second rejuvenate is never sent.
func TestReconcileRejuvenatingOrphanNeverDoubleReboots(t *testing.T) {
	// The old plane's command vanishes in flight: no ack ever lands.
	balRef, sndRef := newFakeBalancer(), &fakeSender{fail: map[string]bool{"node1": true}}
	ref := newTestController(balRef, sndRef)
	driveScript(ref, 1, 4)
	if got := ref.NodeState("node1"); got != Rejuvenating {
		t.Fatalf("setup: state = %v, want rejuvenating", got)
	}
	snap := ref.Snapshot()

	bal2, snd2 := newFakeBalancer(), &fakeSender{freed: 256}
	c := newTestController(bal2, snd2)
	if err := c.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	c.ReconcileOrphans()

	if got := c.NodeState("node1"); got != Probation {
		t.Fatalf("state after reconcile = %v, want probation (control lost)", got)
	}
	if st := c.Stats(); st.ControlLost != 1 || st.Rejuvenations != 0 {
		t.Fatalf("counters = %+v, want 1 control lost, 0 rejuvenations", st)
	}
	if bal2.weights["node1"] != 1 {
		t.Fatalf("probation weight = %d, want 1", bal2.weights["node1"])
	}
	for _, cmd := range snd2.sent {
		if cmd.Kind == cluster.ControlRejuvenate {
			t.Fatalf("reconcile sent a second rejuvenate: %+v", cmd)
		}
	}
	// The cooldown invariant holds: the same alarm cannot re-drain the
	// node until CooldownEpochs (5) pass.
	st := c.Status()[0]
	if st.CooldownUntil != c.Epoch()+5 {
		t.Fatalf("cooldownUntil = %d, want epoch+5 = %d", st.CooldownUntil, c.Epoch()+5)
	}
}

// TestReconcileAckedRejuvenationSurvives pins that an ack recorded
// before the snapshot is consumed normally after failover: the reboot
// happened, so it is counted, never repeated.
func TestReconcileAckedRejuvenationSurvives(t *testing.T) {
	balRef, sndRef := newFakeBalancer(), &fakeSender{freed: 4096}
	ref := newTestController(balRef, sndRef)
	driveScript(ref, 1, 4) // epoch 4: rejuvenate sent, synchronous ack lands
	if got := ref.NodeState("node1"); got != Rejuvenating {
		t.Fatalf("setup: state = %v, want rejuvenating", got)
	}
	snap := ref.Snapshot()

	bal2, snd2 := newFakeBalancer(), &fakeSender{}
	c := newTestController(bal2, snd2)
	if err := c.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	c.ReconcileOrphans()
	if got := c.NodeState("node1"); got != Rejuvenating {
		t.Fatalf("acked node disturbed by reconcile: %v", got)
	}
	c.ObserveEpoch(quietEpoch(5))
	if got := c.NodeState("node1"); got != Probation {
		t.Fatalf("state = %v, want probation via recorded ack", got)
	}
	st := c.Stats()
	if st.Rejuvenations != 1 || st.FreedBytes != 4096 || st.ControlLost != 0 {
		t.Fatalf("counters = %+v, want the pre-failover reboot counted once", st)
	}
	for _, cmd := range snd2.sent {
		if cmd.Kind == cluster.ControlRejuvenate {
			t.Fatalf("recorded ack replayed as a new rejuvenate: %+v", cmd)
		}
	}
}

// TestReconcileProbationOrphan pins that probation weight is re-applied
// on the new plane.
func TestReconcileProbationOrphan(t *testing.T) {
	balRef, sndRef := newFakeBalancer(), &fakeSender{freed: 128}
	ref := newTestController(balRef, sndRef)
	driveScript(ref, 1, 5)
	if got := ref.NodeState("node1"); got != Probation {
		t.Fatalf("setup: state = %v, want probation", got)
	}
	snap := ref.Snapshot()

	bal2, snd2 := newFakeBalancer(), &fakeSender{}
	c := newTestController(bal2, snd2)
	if err := c.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	c.ReconcileOrphans()
	if bal2.weights["node1"] != 1 {
		t.Fatalf("probation weight = %d, want 1", bal2.weights["node1"])
	}
	if len(snd2.sent) != 1 || snd2.sent[0].Kind != cluster.ControlReadmit {
		t.Fatalf("reconcile commands = %+v, want one readmit", snd2.sent)
	}
}

// rejuvSnapshotGoldenHex pins the version-1 controller snapshot format:
// one full cycle plus a cluster-wide veto. Regenerate (after a
// deliberate, version-bumped format change) with the chunked hex the
// failure message prints.
var rejuvSnapshotGoldenHex = strings.Join([]string{
	"524a534e01030102030401040580022208804006000002010c7368617265642e636163686502056e",
	"6f6465310304686f6d650322000080100101008010056e6f64653200000000000000000000000c06",
	"056e6f64653104686f6d6500012b686f6d6520616c61726d6564203320636f6e7365637574697665",
	"2065706f6368733b20647261696e696e6708056e6f64653104686f6d65010222647261696e656420",
	"69646c653b206d6963726f2d7265626f6f74696e6720686f6d650a056e6f64653104686f6d650203",
	"346d6963726f2d7265626f6f7420667265656420313032342062797465733b2070726f626174696f",
	"6e2061742077656967687420310c056e6f64653104686f6d65030137686f6d652072652d616c6172",
	"6d656420647572696e672070726f626174696f6e3b20726f6c6c696e67206261636b20746f206472",
	"61696e0e056e6f64653104686f6d65010222647261696e65642069646c653b206d6963726f2d7265",
	"626f6f74696e6720686f6d6510056e6f64653104686f6d650203346d6963726f2d7265626f6f7420",
	"667265656420313032342062797465733b2070726f626174696f6e20617420776569676874203118",
	"056e6f64653104686f6d65030137686f6d652072652d616c61726d656420647572696e672070726f",
	"626174696f6e3b20726f6c6c696e67206261636b20746f20647261696e1a056e6f64653104686f6d",
	"65010222647261696e65642069646c653b206d6963726f2d7265626f6f74696e6720686f6d651c05",
	"6e6f64653104686f6d650203346d6963726f2d7265626f6f74206672656564203130323420627974",
	"65733b2070726f626174696f6e2061742077656967687420311e056e6f64653104686f6d65030137",
	"686f6d652072652d616c61726d656420647572696e672070726f626174696f6e3b20726f6c6c696e",
	"67206261636b20746f20647261696e20056e6f64653104686f6d65010222647261696e6564206964",
	"6c653b206d6963726f2d7265626f6f74696e6720686f6d6522056e6f64653104686f6d650203346d",
	"6963726f2d7265626f6f7420667265656420313032342062797465733b2070726f626174696f6e20",
	"6174207765696768742031",
}, "")

// TestControllerSnapshotGolden drives a fixed script and compares
// against the pinned bytes.
func TestControllerSnapshotGolden(t *testing.T) {
	c := newTestController(newFakeBalancer(), &fakeSender{freed: 1024})
	driveScript(c, 1, 17)
	got := hex.EncodeToString(c.Snapshot())
	if got != rejuvSnapshotGoldenHex {
		t.Fatalf("golden mismatch; if the format changed on purpose, bump the version and re-pin:\n%s", chunkHex80(got))
	}
}

func chunkHex80(s string) string {
	var b strings.Builder
	for len(s) > 80 {
		b.WriteString("\t\"" + s[:80] + "\",\n")
		s = s[80:]
	}
	b.WriteString("\t\"" + s + "\",")
	return b.String()
}

// FuzzControllerSnapshot feeds arbitrary bytes to Restore: accepted
// inputs must be canonical (re-snapshot byte-identical) and leave a
// controller that can keep observing epochs.
func FuzzControllerSnapshot(f *testing.F) {
	seed := newTestController(newFakeBalancer(), &fakeSender{freed: 640})
	driveScript(seed, 1, 22)
	f.Add(seed.Snapshot())
	f.Add(newTestController(newFakeBalancer(), &fakeSender{}).Snapshot())

	f.Fuzz(func(t *testing.T, data []byte) {
		c := newTestController(newFakeBalancer(), &fakeSender{})
		if err := c.Restore(data); err != nil {
			return
		}
		if !bytes.Equal(c.Snapshot(), data) {
			t.Fatal("accepted snapshot is not canonical")
		}
		c.ReconcileOrphans()
		e := c.Epoch()
		for i := int64(1); i <= 3; i++ {
			c.ObserveEpoch(alarmEpoch(e+i, "home", "node1"))
		}
	})
}

// Package rejuv closes the detect → actuate loop the paper motivates:
// the aggregator names the aging (node, component) pair, and this
// controller acts on it with a surgical micro-reboot instead of a full
// restart. It subscribes to the aggregator's epoch verdicts and drives a
// per-node state machine
//
//	Healthy → Draining → Rejuvenating → Probation → Healthy
//
// through the cluster balancer (drain: stop new sticky assignments,
// honour pinned sessions until idle or deadline) and the cluster control
// channel (micro-reboot the named component, locally or over the wire's
// CONTROL frames).
//
// Safety invariants — a noisy detector can never take the cluster down:
//
//   - Hold-down with hysteresis: a node is drained only after its
//     component alarms HoldDownEpochs consecutive epochs; a flapping
//     alarm resets the count, and suppressed epochs (churn hold,
//     workload-shift guard) never accumulate.
//   - Concurrency cap: at most MaxConcurrent nodes are out of full
//     rotation (draining or rejuvenating) at once; further candidates
//     wait, still serving.
//   - Probation rollback: a re-admitted node serves at reduced weight
//     for ProbationEpochs; if the same component alarms again it rolls
//     back to Draining (a second micro-reboot) instead of flapping in
//     and out of rotation.
//   - Bounded control loss: a rejuvenate command that is neither acked
//     nor failed within RebootEpochs re-admits the node untouched (it
//     was healthy enough to serve) and backs off CooldownEpochs.
//   - Cluster-wide veto: a verdict flagging the component on a quorum
//     of nodes is never actuated — micro-rebooting every node at once
//     IS the outage the controller exists to prevent. It surfaces as a
//     notification for the operator instead.
//
// Concurrency contract: the controller runs on the aggregator's epoch
// delivery (one goroutine at a time, epoch order guaranteed), takes one
// mutex around its own state, and calls the balancer only under it (the
// balancer's mutex is a leaf). Control commands are sent after the state
// mutex is released; acks land back under it. Nothing here touches the
// request or recording paths — actuation rides the verdict plane only.
package rejuv

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/jmx"
)

// State is one node's position in the rejuvenation cycle.
type State uint8

// Node states.
const (
	Healthy State = iota
	Draining
	Rejuvenating
	Probation
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Draining:
		return "draining"
	case Rejuvenating:
		return "rejuvenating"
	case Probation:
		return "probation"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// MarshalText renders the state by name, so the JSON the management
// plane serves (Status, History) reads "draining", not 1.
func (s State) MarshalText() ([]byte, error) {
	return []byte(s.String()), nil
}

// NotifRejuvAction is emitted for every state-machine transition; Data
// carries the Event.
const NotifRejuvAction = "aging.rejuvenation.action"

// Config tunes the controller. All epoch counts are in cluster epochs
// (one per sampling round), so the loop is deterministic under the
// simulated clock at any time scale.
type Config struct {
	// HoldDownEpochs is how many consecutive alarming epochs a node's
	// component must accumulate before the node is drained (default 3).
	HoldDownEpochs int
	// MaxConcurrent caps nodes simultaneously out of full rotation —
	// draining or rejuvenating (default 1).
	MaxConcurrent int
	// DrainEpochs bounds the drain: after this many epochs any sessions
	// still pinned to the node are force-unpinned (default 2).
	DrainEpochs int
	// RebootEpochs bounds the wait for a rejuvenate ack; past it the
	// node is re-admitted un-rebooted and the loss counted (default 3).
	RebootEpochs int
	// ProbationEpochs is how long a re-admitted node serves at reduced
	// weight before being restored (default 6).
	ProbationEpochs int
	// ProbationWeight is the balancer weight during probation (default 1).
	ProbationWeight int
	// HealthyWeight is the weight restored after clean probation
	// (default 4).
	HealthyWeight int
	// CooldownEpochs holds a node's hold-down counter at zero after a
	// completed cycle or a control loss (default 10).
	CooldownEpochs int
	// HistoryCap bounds the transition history ring (default 256).
	HistoryCap int
}

func (c Config) withDefaults() Config {
	if c.HoldDownEpochs <= 0 {
		c.HoldDownEpochs = 3
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 1
	}
	if c.DrainEpochs <= 0 {
		c.DrainEpochs = 2
	}
	if c.RebootEpochs <= 0 {
		c.RebootEpochs = 3
	}
	if c.ProbationEpochs <= 0 {
		c.ProbationEpochs = 6
	}
	if c.ProbationWeight <= 0 {
		c.ProbationWeight = 1
	}
	if c.HealthyWeight <= 0 {
		c.HealthyWeight = 4
	}
	if c.CooldownEpochs <= 0 {
		c.CooldownEpochs = 10
	}
	if c.HistoryCap <= 0 {
		c.HistoryCap = 256
	}
	return c
}

// Balancer is the traffic-steering surface the controller drives —
// satisfied by *cluster.Balancer.
type Balancer interface {
	Drain(node string) bool
	CompleteDrain(node string) int
	Readmit(node string, weight int) bool
	PinnedSessions(node string) int
	Inflight(node string) int
}

// CommandSender routes actuation commands to nodes — satisfied by
// *cluster.Aggregator (local handler bindings and wire CONTROL frames).
type CommandSender interface {
	SendControl(node string, kind cluster.ControlKind, component string, weight int, done func(cluster.ControlAck, error))
}

// DetectorReset clears a node's detection history after a micro-reboot —
// satisfied by *cluster.Aggregator.
type DetectorReset interface {
	ResetNode(node string) bool
}

// Event is one state-machine transition.
type Event struct {
	Epoch     int64
	Node      string
	Component string
	From, To  State
	Note      string
}

// NodeStatus is one node's current actuation state.
type NodeStatus struct {
	Node          string
	State         State
	Component     string // suspect component driving the current cycle
	Hold          int    // consecutive alarming epochs accumulated
	SinceEpoch    int64  // epoch of the last transition
	CooldownUntil int64  // hold-down frozen through this epoch
	Cycles        int64  // completed drain→reboot→probation→healthy cycles
	FreedBytes    int64  // bytes reclaimed by this node's last reboot
}

// Counters are the controller's cumulative actuation totals.
type Counters struct {
	Rejuvenations     int64 // acked micro-reboots
	FreedBytes        int64 // bytes reclaimed across them
	Rollbacks         int64 // probation → draining re-alarms
	ControlLost       int64 // rejuvenate commands failed or timed out
	ForcedDrains      int64 // drains that hit the deadline with sessions pinned
	ClusterWideVetoes int64 // cluster-wide verdicts withheld from actuation
}

// nodeFSM is one node's state-machine instance. All fields are guarded
// by the controller mutex.
type nodeFSM struct {
	name          string
	state         State
	suspect       string // component driving the current cycle
	hold          int
	since         int64 // epoch of the last transition
	cooldownUntil int64
	cycles        int64
	freed         int64
	// rejuvenate-ack landing zone (written by the SendControl callback)
	ackDone bool
	ackOK   bool
	ackErr  string
	ackFree int64
}

// Controller is the rejuvenation actuation controller. Create with New,
// feed with ObserveEpoch (usually via Aggregator.SubscribeEpochs).
type Controller struct {
	cfg   Config
	bal   Balancer
	ctl   CommandSender
	reset DetectorReset

	mu       sync.Mutex
	epoch    int64
	nodes    map[string]*nodeFSM
	order    []string
	history  []Event
	notifs   []jmx.Notification
	counters Counters
	cwSeen   map[string]bool // cluster-wide components already vetoed
}

// New creates a controller driving bal and ctl. Call SetDetectorReset to
// wire post-reboot detector resets (recommended: without it the old
// trend state keeps the alarm latched through probation).
func New(cfg Config, bal Balancer, ctl CommandSender) *Controller {
	return &Controller{
		cfg:    cfg.withDefaults(),
		bal:    bal,
		ctl:    ctl,
		nodes:  make(map[string]*nodeFSM),
		cwSeen: make(map[string]bool),
	}
}

// SetDetectorReset wires the detector-history reset applied after an
// acked micro-reboot.
func (c *Controller) SetDetectorReset(r DetectorReset) {
	c.mu.Lock()
	c.reset = r
	c.mu.Unlock()
}

// Track pre-registers nodes so Status lists them (as Healthy) before
// they ever alarm. Purely observational.
func (c *Controller) Track(nodes ...string) {
	c.mu.Lock()
	for _, n := range nodes {
		if n != "" {
			c.fsm(n)
		}
	}
	c.mu.Unlock()
}

// fsm returns (creating if needed) a node's state machine. Caller holds
// c.mu.
func (c *Controller) fsm(node string) *nodeFSM {
	n := c.nodes[node]
	if n == nil {
		n = &nodeFSM{name: node, state: Healthy}
		c.nodes[node] = n
		i := sort.SearchStrings(c.order, node)
		c.order = append(c.order, "")
		copy(c.order[i+1:], c.order[i:])
		c.order[i] = node
	}
	return n
}

// pendingCommand is one control send decided under the mutex and fired
// after it is released.
type pendingCommand struct {
	node, comp string
	kind       cluster.ControlKind
	weight     int
}

// ObserveEpoch advances every node's state machine by one cluster epoch.
// Wire it with Aggregator.SubscribeEpochs; epochs arrive in order, one
// at a time. Balancer calls run under the controller mutex (the
// balancer's own mutex is a leaf); control sends and detector resets run
// after it is released, so an in-process synchronous control handler can
// never deadlock against the controller.
func (c *Controller) ObserveEpoch(ev cluster.EpochEvent) {
	var sends []pendingCommand
	var resets []string

	c.mu.Lock()
	c.epoch = ev.Epoch

	// Index this epoch's node-local alarms: node → strongest alarming
	// component. Cluster-wide verdicts are vetoed from actuation — a
	// quorum of "sick" nodes means the workload or a shared dependency,
	// and mass micro-reboots ARE the outage — and surfaced once per
	// component instead. Verdicts arrive score-descending per resource,
	// so first sighting wins as the strongest suspect.
	alarms := make(map[string]string)
	cwNow := make(map[string]bool)
	for _, v := range ev.Verdicts {
		if v.ClusterWide {
			cwNow[v.Component] = true
			if !c.cwSeen[v.Component] {
				c.cwSeen[v.Component] = true
				c.counters.ClusterWideVetoes++
				c.notify(jmx.Notification{
					Type:   NotifRejuvAction,
					Source: Name(),
					Message: fmt.Sprintf("cluster-wide aging on %s (%d/%d nodes, epoch %d): rejuvenation withheld, operator action required",
						v.Component, len(v.Nodes), v.ActiveNodes, ev.Epoch),
					Data: v,
				})
			}
			continue
		}
		for _, node := range v.Nodes {
			if _, ok := alarms[node]; !ok {
				alarms[node] = v.Component
			}
		}
	}
	for comp := range c.cwSeen {
		if !cwNow[comp] {
			delete(c.cwSeen, comp)
		}
	}
	for node := range alarms {
		c.fsm(node)
	}

	busy := 0
	for _, n := range c.nodes {
		if n.state == Draining || n.state == Rejuvenating {
			busy++
		}
	}

	// Iterate in sorted name order so concurrent-candidate arbitration
	// (the MaxConcurrent cap) is deterministic.
	for _, name := range c.order {
		n := c.nodes[name]
		comp, alarming := alarms[name]
		switch n.state {
		case Healthy:
			if !alarming {
				n.hold, n.suspect = 0, ""
				break
			}
			if ev.Suppressed || ev.Epoch <= n.cooldownUntil {
				break // frozen, not reset: suppression is not evidence of health
			}
			if n.suspect != comp {
				n.suspect, n.hold = comp, 0
			}
			n.hold++
			if n.hold >= c.cfg.HoldDownEpochs && busy < c.cfg.MaxConcurrent {
				busy++
				c.bal.Drain(name)
				c.transition(n, Draining, comp,
					fmt.Sprintf("%s alarmed %d consecutive epochs; draining", comp, n.hold))
				sends = append(sends, pendingCommand{node: name, comp: comp, kind: cluster.ControlDrain})
			}
		case Draining:
			pinned := c.bal.PinnedSessions(name)
			inflight := c.bal.Inflight(name)
			switch {
			case pinned == 0 && inflight == 0:
				n.ackDone, n.ackOK, n.ackErr, n.ackFree = false, false, "", 0
				c.transition(n, Rejuvenating, n.suspect, "drained idle; micro-rebooting "+n.suspect)
				sends = append(sends, pendingCommand{node: name, comp: n.suspect, kind: cluster.ControlRejuvenate})
			case ev.Epoch-n.since >= int64(c.cfg.DrainEpochs):
				unpinned := c.bal.CompleteDrain(name)
				c.counters.ForcedDrains++
				n.ackDone, n.ackOK, n.ackErr, n.ackFree = false, false, "", 0
				c.transition(n, Rejuvenating, n.suspect,
					fmt.Sprintf("drain deadline after %d epochs; unpinned %d sessions; micro-rebooting %s",
						c.cfg.DrainEpochs, unpinned, n.suspect))
				sends = append(sends, pendingCommand{node: name, comp: n.suspect, kind: cluster.ControlRejuvenate})
			}
		case Rejuvenating:
			switch {
			case n.ackDone && n.ackOK:
				c.counters.Rejuvenations++
				c.counters.FreedBytes += n.ackFree
				n.freed = n.ackFree
				resets = append(resets, name)
				c.bal.Readmit(name, c.cfg.ProbationWeight)
				c.transition(n, Probation, n.suspect,
					fmt.Sprintf("micro-reboot freed %d bytes; probation at weight %d", n.ackFree, c.cfg.ProbationWeight))
			case n.ackDone && !n.ackOK, ev.Epoch-n.since >= int64(c.cfg.RebootEpochs):
				// Control lost (errored, refused, or no ack in time): the
				// node kept serving through the drain, so re-admitting it
				// un-rebooted is strictly safer than keeping it out on a
				// command that may never land.
				c.counters.ControlLost++
				n.cooldownUntil = ev.Epoch + int64(c.cfg.CooldownEpochs)
				c.bal.Readmit(name, c.cfg.ProbationWeight)
				why := fmt.Sprintf("no rejuvenate ack within %d epochs", c.cfg.RebootEpochs)
				if n.ackDone {
					why = "rejuvenate failed: " + n.ackErr
				}
				c.transition(n, Probation, n.suspect, why+"; re-admitted un-rebooted (control lost)")
			}
		case Probation:
			switch {
			case alarming && comp == n.suspect && !ev.Suppressed && ev.Epoch > n.since:
				if busy < c.cfg.MaxConcurrent {
					busy++
					c.counters.Rollbacks++
					c.bal.Drain(name)
					c.transition(n, Draining, comp, comp+" re-alarmed during probation; rolling back to drain")
					sends = append(sends, pendingCommand{node: name, comp: comp, kind: cluster.ControlDrain})
				}
			case ev.Epoch-n.since >= int64(c.cfg.ProbationEpochs):
				n.cycles++
				n.cooldownUntil = ev.Epoch + int64(c.cfg.CooldownEpochs)
				c.bal.Readmit(name, c.cfg.HealthyWeight)
				c.transition(n, Healthy, n.suspect,
					fmt.Sprintf("probation clean for %d epochs; re-admitted at weight %d", c.cfg.ProbationEpochs, c.cfg.HealthyWeight))
				sends = append(sends, pendingCommand{node: name, comp: "", kind: cluster.ControlReadmit, weight: c.cfg.HealthyWeight})
				n.suspect, n.hold = "", 0
			}
		}
	}
	c.mu.Unlock()

	for _, s := range sends {
		if s.kind == cluster.ControlRejuvenate {
			node := s.node
			c.ctl.SendControl(s.node, s.kind, s.comp, s.weight, func(ack cluster.ControlAck, err error) {
				c.mu.Lock()
				if n := c.nodes[node]; n != nil && n.state == Rejuvenating && !n.ackDone {
					n.ackDone = true
					n.ackOK = err == nil && ack.OK
					n.ackFree = ack.Freed
					switch {
					case err != nil:
						n.ackErr = err.Error()
					default:
						n.ackErr = ack.Err
					}
				}
				c.mu.Unlock()
			})
		} else {
			// Drain/re-admit are advisory to the node (the balancer state
			// lives cluster-side): fire and forget.
			c.ctl.SendControl(s.node, s.kind, s.comp, s.weight, nil)
		}
	}
	for _, node := range resets {
		c.mu.Lock()
		r := c.reset
		c.mu.Unlock()
		if r != nil {
			r.ResetNode(node)
		}
	}
}

// transition records a state change with its event and notification.
// Caller holds c.mu.
func (c *Controller) transition(n *nodeFSM, to State, comp, note string) {
	ev := Event{Epoch: c.epoch, Node: n.name, Component: comp, From: n.state, To: to, Note: note}
	n.state = to
	n.since = c.epoch
	c.history = append(c.history, ev)
	if over := len(c.history) - c.cfg.HistoryCap; over > 0 {
		c.history = append(c.history[:0], c.history[over:]...)
	}
	c.notify(jmx.Notification{
		Type:    NotifRejuvAction,
		Source:  Name(),
		Message: fmt.Sprintf("%s: %s → %s (epoch %d): %s", n.name, ev.From, ev.To, ev.Epoch, note),
		Data:    ev,
	})
}

// notify queues a notification for DrainNotifications. Caller holds c.mu.
func (c *Controller) notify(n jmx.Notification) {
	c.notifs = append(c.notifs, n)
}

// DrainNotifications returns and clears the queued actuation
// notifications; the owner emits them on its MBeanServer.
func (c *Controller) DrainNotifications() []jmx.Notification {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.notifs
	c.notifs = nil
	return out
}

// Status returns every tracked node's actuation state, sorted by name.
func (c *Controller) Status() []NodeStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeStatus, 0, len(c.order))
	for _, name := range c.order {
		n := c.nodes[name]
		out = append(out, NodeStatus{
			Node:          name,
			State:         n.state,
			Component:     n.suspect,
			Hold:          n.hold,
			SinceEpoch:    n.since,
			CooldownUntil: n.cooldownUntil,
			Cycles:        n.cycles,
			FreedBytes:    n.freed,
		})
	}
	return out
}

// NodeState returns one node's current state (Healthy for unknown
// nodes — an untracked node is by definition in full rotation).
func (c *Controller) NodeState(node string) State {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.nodes[node]; n != nil {
		return n.state
	}
	return Healthy
}

// History returns a copy of the transition history, oldest first
// (bounded by Config.HistoryCap).
func (c *Controller) History() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.history...)
}

// Stats returns the cumulative actuation counters.
func (c *Controller) Stats() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters
}

// Epoch returns the last epoch observed.
func (c *Controller) Epoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

package servlet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/jvmheap"
	"repro/internal/sim"
)

// sessionOwner is the heap owner sessions are charged to.
const sessionOwner = "container.sessions"

// sessionFootprint is the simulated heap charge of one session.
const sessionFootprint int64 = 4096

// Session is one browser session: a mutable attribute bag with access
// times. Sessions are safe for concurrent use.
type Session struct {
	id string

	mu         sync.RWMutex
	values     map[string]any
	created    time.Time
	lastAccess time.Time
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Get reads an attribute (nil when absent).
func (s *Session) Get(key string) any {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.values[key]
}

// Set stores an attribute.
func (s *Session) Set(key string, v any) {
	s.mu.Lock()
	s.values[key] = v
	s.mu.Unlock()
}

// Created returns the creation instant.
func (s *Session) Created() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.created
}

// LastAccess returns the most recent access instant.
func (s *Session) LastAccess() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastAccess
}

func (s *Session) touch(now time.Time) {
	s.mu.Lock()
	s.lastAccess = now
	s.mu.Unlock()
}

// SessionManager creates, resolves and expires sessions, charging their
// simulated footprint to the heap so an unbounded session population is
// itself a visible aging vector.
type SessionManager struct {
	clock   sim.Clock
	heap    *jvmheap.Heap
	timeout time.Duration

	mu       sync.Mutex
	sessions map[string]*Session
	created  int64
	expired  int64
}

// NewSessionManager creates a manager with the given idle timeout
// (30 minutes when non-positive, Tomcat's default).
func NewSessionManager(clock sim.Clock, heap *jvmheap.Heap, timeout time.Duration) *SessionManager {
	if clock == nil {
		clock = sim.WallClock{}
	}
	if timeout <= 0 {
		timeout = 30 * time.Minute
	}
	return &SessionManager{
		clock:    clock,
		heap:     heap,
		timeout:  timeout,
		sessions: make(map[string]*Session),
	}
}

// GetOrCreate resolves id, creating the session on first use.
func (m *SessionManager) GetOrCreate(id string) *Session {
	if id == "" {
		panic("servlet: empty session id")
	}
	now := m.clock.Now()
	m.mu.Lock()
	s, ok := m.sessions[id]
	if !ok {
		s = &Session{
			id:         id,
			values:     make(map[string]any),
			created:    now,
			lastAccess: now,
		}
		m.sessions[id] = s
		m.created++
		if m.heap != nil {
			// Session memory that does not fit is a container-level
			// failure surfaced at request admission, not here.
			_ = m.heap.Allocate(sessionOwner, sessionFootprint)
		}
	}
	m.mu.Unlock()
	s.touch(now)
	return s
}

// Peek resolves id without creating or touching.
func (m *SessionManager) Peek(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// Live returns the number of live sessions.
func (m *SessionManager) Live() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Created returns how many sessions have ever been created.
func (m *SessionManager) Created() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.created
}

// Expired returns how many sessions have been expired.
func (m *SessionManager) Expired() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.expired
}

// ExpireIdle removes sessions idle beyond the timeout, returning how many
// were expired. The container sweeps periodically in simulation mode.
func (m *SessionManager) ExpireIdle() int {
	cut := m.clock.Now().Add(-m.timeout)
	m.mu.Lock()
	var victims []string
	for id, s := range m.sessions {
		if s.LastAccess().Before(cut) {
			victims = append(victims, id)
		}
	}
	for _, id := range victims {
		delete(m.sessions, id)
	}
	m.expired += int64(len(victims))
	m.mu.Unlock()
	if m.heap != nil {
		m.heap.Free(sessionOwner, int64(len(victims))*sessionFootprint)
	}
	return len(victims)
}

// String summarises the manager state.
func (m *SessionManager) String() string {
	return fmt.Sprintf("sessions{live=%d created=%d expired=%d}", m.Live(), m.Created(), m.Expired())
}

package servlet

import (
	"testing"
)

// TestPooledRequestResetsOnRelease pins the recycle contract: a released
// request must come back blank — parameters, session, flow mark and
// dispatch scratch cleared — while literal requests pass through
// ReleaseRequest untouched.
func TestPooledRequestResetsOnRelease(t *testing.T) {
	req := AcquireRequest()
	req.Interaction = "x"
	req.SessionID = "s"
	req.SetParam("A", "1")
	req.SetInt64Param("B", 2)
	req.SetFlowMark(42)
	ReleaseRequest(req)

	got := AcquireRequest()
	// The pool may or may not hand the same object back; either way a
	// fresh acquisition must be blank.
	if got.Interaction != "" || got.SessionID != "" || got.Param("A") != "" {
		t.Fatalf("acquired request carries stale state: %+v", got)
	}
	if _, ok := got.Int64Param("B"); ok {
		t.Fatal("acquired request carries stale int param")
	}
	if _, set := got.FlowMark(); set {
		t.Fatal("acquired request carries stale flow mark")
	}
	ReleaseRequest(got)

	literal := &Request{Interaction: "keep"}
	ReleaseRequest(literal) // must be a no-op
	if literal.Interaction != "keep" {
		t.Fatal("ReleaseRequest reset a literal request")
	}
}

// TestRequestParamStores exercises the three parameter surfaces together:
// the legacy map, the inline string store and the typed int store, with
// the map taking precedence and ints parsing both ways.
func TestRequestParamStores(t *testing.T) {
	req := &Request{Params: map[string]string{"K": "map"}}
	req.SetParam("K", "inline")
	if got := req.Param("K"); got != "map" {
		t.Fatalf("Params map should take precedence, got %q", got)
	}
	req.SetParam("S", "7")
	if v, ok := req.Int64Param("S"); !ok || v != 7 {
		t.Fatalf("Int64Param over string store = %d, %v", v, ok)
	}
	req.SetInt64Param("N", 9)
	if got := req.Param("N"); got != "9" {
		t.Fatalf("Param over int store = %q", got)
	}
	req.SetInt64Param("N", 10) // overwrite, not append
	if v, _ := req.Int64Param("N"); v != 10 {
		t.Fatalf("SetInt64Param overwrite = %d", v)
	}
	if _, ok := req.Int64Param("S2"); ok {
		t.Fatal("absent int param reported present")
	}
}

// TestResponseItemIDsBridge pins the two-way compatibility between the
// typed item-id store and the legacy Data key: ids added through
// AddItemID surface under Get("item_ids"), and ids stored via Set are
// returned by ItemIDs.
func TestResponseItemIDsBridge(t *testing.T) {
	typed := &Response{Status: StatusOK}
	typed.AddItemID(3)
	typed.AddItemID(5)
	if ids, ok := typed.Get("item_ids").([]int64); !ok || len(ids) != 2 || ids[0] != 3 {
		t.Fatalf("Get bridge = %v", typed.Get("item_ids"))
	}
	if ids := typed.ItemIDs(); len(ids) != 2 || ids[1] != 5 {
		t.Fatalf("ItemIDs = %v", typed.ItemIDs())
	}

	legacy := &Response{Status: StatusOK}
	legacy.Set("item_ids", []int64{8})
	if ids := legacy.ItemIDs(); len(ids) != 1 || ids[0] != 8 {
		t.Fatalf("ItemIDs over Data = %v", legacy.ItemIDs())
	}

	pooled := AcquireResponse()
	pooled.AddItemID(1)
	pooled.Set("k", "v")
	pooled.Status = StatusServerError
	ReleaseResponse(pooled)
	fresh := AcquireResponse()
	if fresh.Status != StatusOK || len(fresh.ItemIDs()) != 0 || fresh.Get("k") != nil {
		t.Fatalf("acquired response carries stale state: %+v", fresh)
	}
	ReleaseResponse(fresh)
}

// TestNameListingsAreCachedSnapshots pins the listing satellite: repeated
// polls of ServletNames/FilterNames return the same underlying snapshot
// (no per-call slice), and deployment or filter changes publish a new
// one.
func TestNameListingsAreCachedSnapshots(t *testing.T) {
	_, c, _ := newTestContainer(t, Config{})
	if err := c.Deploy("a.first", &testServlet{}); err != nil {
		t.Fatal(err)
	}
	n1, n2 := c.ServletNames(), c.ServletNames()
	if len(n1) != 2 || n1[0] != "a.first" || n1[1] != "tpcw.echo" {
		t.Fatalf("ServletNames = %v", n1)
	}
	if &n1[0] != &n2[0] {
		t.Fatal("repeated ServletNames polls rebuilt the listing")
	}
	if !c.Undeploy("a.first") {
		t.Fatal("undeploy failed")
	}
	if n3 := c.ServletNames(); len(n3) != 1 || n3[0] != "tpcw.echo" {
		t.Fatalf("ServletNames after undeploy = %v", n3)
	}
	// The pre-undeploy snapshot is immutable — still intact.
	if len(n1) != 2 {
		t.Fatalf("old snapshot mutated: %v", n1)
	}

	if err := c.AddFilter("f1", NewAccessLogFilter(nil)); err != nil {
		t.Fatal(err)
	}
	f1, f2 := c.FilterNames(), c.FilterNames()
	if len(f1) != 1 || f1[0] != "f1" {
		t.Fatalf("FilterNames = %v", f1)
	}
	if &f1[0] != &f2[0] {
		t.Fatal("repeated FilterNames polls rebuilt the listing")
	}
	if !c.RemoveFilter("f1") {
		t.Fatal("remove failed")
	}
	if len(c.FilterNames()) != 0 {
		t.Fatalf("FilterNames after remove = %v", c.FilterNames())
	}
}

package servlet

import (
	"time"

	"repro/internal/sqldb"
)

// CostModel converts the real work a request performed into simulated
// service time. The constants are calibrated so the TPC-W interaction mix
// lands in the single-digit-millisecond range the paper's 2010 testbed
// would produce, but only the *relative* costs matter for reproducing the
// experiments' shapes: heavier queries take longer, instrumentation adds a
// small per-advice tax (the source of Fig. 3's ~5% overhead), and injected
// CPU hogs inflate their component's share.
type CostModel struct {
	// PerRequest is the fixed dispatch cost of any request.
	PerRequest time.Duration
	// PerQuery is the per-statement overhead (parse, plan, round trip).
	PerQuery time.Duration
	// PerRowScanned charges storage-engine work.
	PerRowScanned time.Duration
	// PerRowReturned charges serialisation of result rows.
	PerRowReturned time.Duration
	// PerJoinPoint charges each advised (monitored) component execution
	// during the request — the AC's before+after advice plus the JMX
	// agent round trips it performs.
	PerJoinPoint time.Duration
}

// DefaultCostModel returns the calibrated model used by the experiments.
// PerJoinPoint is calibrated against the paper's Fig. 3: each advised
// execution performs the AC's before/after advice plus MBeanServer round
// trips to the monitoring agents, which on the paper's 2010 JVM costs on
// the order of 200µs; with the TPC-W shopping mix crossing 1-3 advised
// components per request this lands at the paper's ~5% throughput
// overhead.
func DefaultCostModel() CostModel {
	return CostModel{
		PerRequest:     1500 * time.Microsecond,
		PerQuery:       250 * time.Microsecond,
		PerRowScanned:  2 * time.Microsecond,
		PerRowReturned: 6 * time.Microsecond,
		PerJoinPoint:   200 * time.Microsecond,
	}
}

// ServiceTime computes the simulated duration of a request that issued the
// given database work, crossed joinPoints advised executions, and carries
// extra injected cost.
func (m CostModel) ServiceTime(cost sqldb.QueryCost, joinPoints int64, extra time.Duration) time.Duration {
	d := m.PerRequest +
		time.Duration(cost.Queries)*m.PerQuery +
		time.Duration(cost.RowsScanned)*m.PerRowScanned +
		time.Duration(cost.RowsReturned)*m.PerRowReturned +
		time.Duration(joinPoints)*m.PerJoinPoint +
		extra
	if d < 0 {
		panic("servlet: negative service time")
	}
	return d
}

package servlet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Filter mirrors javax.servlet.Filter: it wraps request processing before
// the servlet runs, may short-circuit, and must call chain.Next to
// proceed. Filters run in registration order, outside the aspect-woven
// servlet execution (as in a real container, where filters are container
// plumbing and weaving applies to application components).
type Filter interface {
	Init(ctx *Context) error
	DoFilter(req *Request, resp *Response, chain *FilterChain) error
	Destroy()
}

// FilterChain advances processing to the next filter or, at the end, the
// servlet itself. Each request's chain lives inline in the pooled request
// (no per-request chain allocation); it references the registry's
// immutable filter snapshot, so registration changes are observed by the
// next request without the serve path copying the filter list.
type FilterChain struct {
	filters   []registeredFilter
	index     int
	container *Container
	target    *deployed
}

// Next continues the chain.
func (c *FilterChain) Next(req *Request, resp *Response) error {
	if c.index < len(c.filters) {
		f := c.filters[c.index]
		c.index++
		return f.filter.DoFilter(req, resp, c)
	}
	return c.container.invokeServlet(c.target, req, resp)
}

type registeredFilter struct {
	name   string
	filter Filter
}

// filterSnapshot is the immutable published view of the filter chain:
// the registered filters in chain order and their (equally immutable)
// name listing. Never mutated after Store.
type filterSnapshot struct {
	filters []registeredFilter
	names   []string
}

// filterRegistry is the container-side bookkeeping. Mutations rebuild and
// swap the snapshot under mu; the per-request read path and the listing
// accessors only load the pointer. started mirrors the container's
// lifecycle under the registry's own lock, so the "init filters added
// after Start immediately" decision is made against the same state
// initFilters publishes — AddFilter never touches the container mutex,
// which also keeps the lock order acyclic (Start holds c.mu while
// calling initFilters).
type filterRegistry struct {
	mu      sync.Mutex
	started bool
	snap    atomic.Pointer[filterSnapshot]
}

func (r *filterRegistry) snapshot() *filterSnapshot {
	if s := r.snap.Load(); s != nil {
		return s
	}
	return &filterSnapshot{}
}

// publishLocked stores a rebuilt snapshot; the caller holds r.mu.
func (r *filterRegistry) publishLocked(filters []registeredFilter) {
	names := make([]string, len(filters))
	for i, rf := range filters {
		names[i] = rf.name
	}
	r.snap.Store(&filterSnapshot{filters: filters, names: names})
}

// AddFilter appends a filter to the container's chain. Filters added after
// Start are initialised immediately.
func (c *Container) AddFilter(name string, f Filter) error {
	if f == nil {
		return errors.New("servlet: nil filter")
	}
	c.filterReg.mu.Lock()
	defer c.filterReg.mu.Unlock()
	cur := c.filterReg.snapshot().filters
	for _, rf := range cur {
		if rf.name == name {
			return fmt.Errorf("servlet: filter %q already registered", name)
		}
	}
	if c.filterReg.started {
		if err := f.Init(c.context()); err != nil {
			return fmt.Errorf("servlet: init filter %q: %w", name, err)
		}
	}
	next := make([]registeredFilter, 0, len(cur)+1)
	next = append(next, cur...)
	next = append(next, registeredFilter{name: name, filter: f})
	c.filterReg.publishLocked(next)
	return nil
}

// RemoveFilter destroys and removes a filter, reporting whether it
// existed.
func (c *Container) RemoveFilter(name string) bool {
	c.filterReg.mu.Lock()
	defer c.filterReg.mu.Unlock()
	cur := c.filterReg.snapshot().filters
	for i, rf := range cur {
		if rf.name == name {
			next := make([]registeredFilter, 0, len(cur)-1)
			next = append(next, cur[:i]...)
			next = append(next, cur[i+1:]...)
			c.filterReg.publishLocked(next)
			rf.filter.Destroy()
			return true
		}
	}
	return false
}

// FilterNames lists registered filters in chain order. The returned slice
// is a shared snapshot rebuilt on registration changes; callers must not
// mutate it.
func (c *Container) FilterNames() []string {
	return c.filterReg.snapshot().names
}

// initFilters runs Init on all filters (called from Start). It holds the
// registry lock so a concurrent AddFilter either lands before the loop
// (and is initialised here) or observes started and initialises itself —
// a filter can never be published uninitialised.
func (c *Container) initFilters() error {
	c.filterReg.mu.Lock()
	defer c.filterReg.mu.Unlock()
	ctx := c.context()
	for _, rf := range c.filterReg.snapshot().filters {
		if err := rf.filter.Init(ctx); err != nil {
			return fmt.Errorf("servlet: init filter %q: %w", rf.name, err)
		}
	}
	c.filterReg.started = true
	return nil
}

// destroyFilters runs Destroy on all filters (called from Stop).
func (c *Container) destroyFilters() {
	c.filterReg.mu.Lock()
	defer c.filterReg.mu.Unlock()
	c.filterReg.started = false
	for _, rf := range c.filterReg.snapshot().filters {
		rf.filter.Destroy()
	}
}

// AccessLogFilter is a stock filter recording per-interaction hit counts
// and last-access times, the access.log of the miniature container.
// Recording is on the per-request hot path, so each interaction gets a
// striped hit counter and an atomic last-access cell behind a sync.Map —
// concurrent requests to the same interaction never serialise here.
type AccessLogFilter struct {
	clock sim.Clock

	entries sync.Map // interaction -> *accessEntry
}

type accessEntry struct {
	hits      *metrics.StripedCounter
	lastNanos atomic.Int64
}

// NewAccessLogFilter creates an access log against clock (wall clock when
// nil).
func NewAccessLogFilter(clock sim.Clock) *AccessLogFilter {
	if clock == nil {
		clock = sim.WallClock{}
	}
	return &AccessLogFilter{clock: clock}
}

// Init implements Filter.
func (f *AccessLogFilter) Init(*Context) error { return nil }

// Destroy implements Filter.
func (f *AccessLogFilter) Destroy() {}

// DoFilter implements Filter.
func (f *AccessLogFilter) DoFilter(req *Request, resp *Response, chain *FilterChain) error {
	e := metrics.LoadOrCreate(&f.entries, req.Interaction, func() *accessEntry {
		return &accessEntry{hits: metrics.NewStripedCounter()}
	})
	e.hits.Inc()
	now := f.clock.Now().UnixNano()
	for {
		last := e.lastNanos.Load()
		if now <= last || e.lastNanos.CompareAndSwap(last, now) {
			break
		}
	}
	return chain.Next(req, resp)
}

// Hits returns the recorded hit count of an interaction.
func (f *AccessLogFilter) Hits(interaction string) int64 {
	if v, ok := f.entries.Load(interaction); ok {
		return v.(*accessEntry).hits.Value()
	}
	return 0
}

// LastAccess returns the last access time of an interaction. A zero
// lastNanos means the entry was published but its first access time is
// still being recorded — reported as absent, like the pre-hit state.
func (f *AccessLogFilter) LastAccess(interaction string) (time.Time, bool) {
	v, ok := f.entries.Load(interaction)
	if !ok {
		return time.Time{}, false
	}
	n := v.(*accessEntry).lastNanos.Load()
	if n == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, n), true
}

// RateLimitFilter is a stock filter rejecting requests beyond a rate per
// second (sliding 1s window), useful for overload protection experiments.
type RateLimitFilter struct {
	clock  sim.Clock
	limit  float64
	window *metrics.RateWindow
}

// NewRateLimitFilter creates a limiter allowing limit requests/second.
func NewRateLimitFilter(clock sim.Clock, limit float64) *RateLimitFilter {
	if clock == nil {
		clock = sim.WallClock{}
	}
	if limit <= 0 {
		panic("servlet: non-positive rate limit")
	}
	return &RateLimitFilter{
		clock:  clock,
		limit:  limit,
		window: metrics.NewRateWindow(time.Second),
	}
}

// Init implements Filter.
func (f *RateLimitFilter) Init(*Context) error { return nil }

// Destroy implements Filter.
func (f *RateLimitFilter) Destroy() {}

// DoFilter implements Filter.
func (f *RateLimitFilter) DoFilter(req *Request, resp *Response, chain *FilterChain) error {
	now := f.clock.Now()
	if f.window.Rate(now) >= f.limit {
		resp.Status = StatusUnavailable
		resp.Err = ErrOverloaded
		return nil // handled, not a servlet error
	}
	f.window.Observe(now)
	return chain.Next(req, resp)
}

package servlet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Filter mirrors javax.servlet.Filter: it wraps request processing before
// the servlet runs, may short-circuit, and must call chain.Next to
// proceed. Filters run in registration order, outside the aspect-woven
// servlet execution (as in a real container, where filters are container
// plumbing and weaving applies to application components).
type Filter interface {
	Init(ctx *Context) error
	DoFilter(req *Request, resp *Response, chain *FilterChain) error
	Destroy()
}

// FilterChain advances processing to the next filter or, at the end, the
// servlet itself.
type FilterChain struct {
	filters []registeredFilter
	index   int
	final   func(req *Request, resp *Response) error
}

// Next continues the chain.
func (c *FilterChain) Next(req *Request, resp *Response) error {
	if c.index < len(c.filters) {
		f := c.filters[c.index]
		c.index++
		return f.filter.DoFilter(req, resp, c)
	}
	return c.final(req, resp)
}

type registeredFilter struct {
	name   string
	filter Filter
}

// filterRegistry is the container-side bookkeeping.
type filterRegistry struct {
	mu      sync.RWMutex
	filters []registeredFilter
	started bool
	ctx     *Context
}

// AddFilter appends a filter to the container's chain. Filters added after
// Start are initialised immediately.
func (c *Container) AddFilter(name string, f Filter) error {
	if f == nil {
		return errors.New("servlet: nil filter")
	}
	c.filterReg.mu.Lock()
	defer c.filterReg.mu.Unlock()
	for _, rf := range c.filterReg.filters {
		if rf.name == name {
			return fmt.Errorf("servlet: filter %q already registered", name)
		}
	}
	if c.Started() {
		if err := f.Init(c.context()); err != nil {
			return fmt.Errorf("servlet: init filter %q: %w", name, err)
		}
	}
	c.filterReg.filters = append(c.filterReg.filters, registeredFilter{name: name, filter: f})
	return nil
}

// RemoveFilter destroys and removes a filter, reporting whether it
// existed.
func (c *Container) RemoveFilter(name string) bool {
	c.filterReg.mu.Lock()
	defer c.filterReg.mu.Unlock()
	for i, rf := range c.filterReg.filters {
		if rf.name == name {
			c.filterReg.filters = append(c.filterReg.filters[:i], c.filterReg.filters[i+1:]...)
			rf.filter.Destroy()
			return true
		}
	}
	return false
}

// FilterNames lists registered filters in chain order.
func (c *Container) FilterNames() []string {
	c.filterReg.mu.RLock()
	defer c.filterReg.mu.RUnlock()
	out := make([]string, len(c.filterReg.filters))
	for i, rf := range c.filterReg.filters {
		out[i] = rf.name
	}
	return out
}

// newChain builds a chain snapshot ending at final.
func (c *Container) newChain(final func(req *Request, resp *Response) error) *FilterChain {
	c.filterReg.mu.RLock()
	filters := append([]registeredFilter(nil), c.filterReg.filters...)
	c.filterReg.mu.RUnlock()
	return &FilterChain{filters: filters, final: final}
}

// initFilters runs Init on all filters (called from Start).
func (c *Container) initFilters() error {
	c.filterReg.mu.RLock()
	defer c.filterReg.mu.RUnlock()
	ctx := c.context()
	for _, rf := range c.filterReg.filters {
		if err := rf.filter.Init(ctx); err != nil {
			return fmt.Errorf("servlet: init filter %q: %w", rf.name, err)
		}
	}
	return nil
}

// destroyFilters runs Destroy on all filters (called from Stop).
func (c *Container) destroyFilters() {
	c.filterReg.mu.RLock()
	defer c.filterReg.mu.RUnlock()
	for _, rf := range c.filterReg.filters {
		rf.filter.Destroy()
	}
}

// AccessLogFilter is a stock filter recording per-interaction hit counts
// and last-access times, the access.log of the miniature container.
// Recording is on the per-request hot path, so each interaction gets a
// striped hit counter and an atomic last-access cell behind a sync.Map —
// concurrent requests to the same interaction never serialise here.
type AccessLogFilter struct {
	clock sim.Clock

	entries sync.Map // interaction -> *accessEntry
}

type accessEntry struct {
	hits      *metrics.StripedCounter
	lastNanos atomic.Int64
}

// NewAccessLogFilter creates an access log against clock (wall clock when
// nil).
func NewAccessLogFilter(clock sim.Clock) *AccessLogFilter {
	if clock == nil {
		clock = sim.WallClock{}
	}
	return &AccessLogFilter{clock: clock}
}

// Init implements Filter.
func (f *AccessLogFilter) Init(*Context) error { return nil }

// Destroy implements Filter.
func (f *AccessLogFilter) Destroy() {}

// DoFilter implements Filter.
func (f *AccessLogFilter) DoFilter(req *Request, resp *Response, chain *FilterChain) error {
	e := metrics.LoadOrCreate(&f.entries, req.Interaction, func() *accessEntry {
		return &accessEntry{hits: metrics.NewStripedCounter()}
	})
	e.hits.Inc()
	now := f.clock.Now().UnixNano()
	for {
		last := e.lastNanos.Load()
		if now <= last || e.lastNanos.CompareAndSwap(last, now) {
			break
		}
	}
	return chain.Next(req, resp)
}

// Hits returns the recorded hit count of an interaction.
func (f *AccessLogFilter) Hits(interaction string) int64 {
	if v, ok := f.entries.Load(interaction); ok {
		return v.(*accessEntry).hits.Value()
	}
	return 0
}

// LastAccess returns the last access time of an interaction. A zero
// lastNanos means the entry was published but its first access time is
// still being recorded — reported as absent, like the pre-hit state.
func (f *AccessLogFilter) LastAccess(interaction string) (time.Time, bool) {
	v, ok := f.entries.Load(interaction)
	if !ok {
		return time.Time{}, false
	}
	n := v.(*accessEntry).lastNanos.Load()
	if n == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, n), true
}

// RateLimitFilter is a stock filter rejecting requests beyond a rate per
// second (sliding 1s window), useful for overload protection experiments.
type RateLimitFilter struct {
	clock  sim.Clock
	limit  float64
	window *metrics.RateWindow
}

// NewRateLimitFilter creates a limiter allowing limit requests/second.
func NewRateLimitFilter(clock sim.Clock, limit float64) *RateLimitFilter {
	if clock == nil {
		clock = sim.WallClock{}
	}
	if limit <= 0 {
		panic("servlet: non-positive rate limit")
	}
	return &RateLimitFilter{
		clock:  clock,
		limit:  limit,
		window: metrics.NewRateWindow(time.Second),
	}
}

// Init implements Filter.
func (f *RateLimitFilter) Init(*Context) error { return nil }

// Destroy implements Filter.
func (f *RateLimitFilter) Destroy() {}

// DoFilter implements Filter.
func (f *RateLimitFilter) DoFilter(req *Request, resp *Response, chain *FilterChain) error {
	now := f.clock.Now()
	if f.window.Rate(now) >= f.limit {
		resp.Status = StatusUnavailable
		resp.Err = ErrOverloaded
		return nil // handled, not a servlet error
	}
	f.window.Observe(now)
	return chain.Next(req, resp)
}

package servlet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/jvmheap"
	"repro/internal/sim"
	"repro/internal/sqldb"
)

// testServlet exercises the lifecycle and issues a configurable amount of
// database work per request.
type testServlet struct {
	inits, destroys int
	fail            error
	extra           time.Duration
	body            func(req *Request, resp *Response) error
}

func (s *testServlet) Init(*Context) error { s.inits++; return nil }
func (s *testServlet) Destroy()            { s.destroys++ }
func (s *testServlet) Service(req *Request, resp *Response) error {
	if s.fail != nil {
		return s.fail
	}
	if s.extra > 0 {
		req.AddCost(s.extra)
	}
	if s.body != nil {
		return s.body(req, resp)
	}
	rows, err := req.Conn.Select("item", sqldb.Where("i_subject", sqldb.Eq, "ARTS"))
	if err != nil {
		return err
	}
	resp.Set("rows", len(rows))
	return nil
}

func testDB(t *testing.T) *sqldb.DB {
	t.Helper()
	db := sqldb.NewDB()
	tb, err := db.CreateTable(sqldb.Schema{
		Name: "item",
		Columns: []sqldb.Column{
			{Name: "i_id", Type: sqldb.Int64},
			{Name: "i_subject", Type: sqldb.String},
		},
		PrimaryKey: "i_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		subject := "ARTS"
		if i%2 == 0 {
			subject = "COMPUTERS"
		}
		if _, err := tb.Insert(sqldb.Row{nil, subject}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func newTestContainer(t *testing.T, cfg Config) (*sim.Engine, *Container, *testServlet) {
	t.Helper()
	engine := sim.NewEngine()
	weaver := aspect.NewWeaver(engine.Clock())
	heap := jvmheap.New(1<<26, engine.Clock())
	c := NewContainer(engine, weaver, testDB(t), heap, cfg)
	s := &testServlet{}
	if err := c.Deploy("tpcw.echo", s); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	return engine, c, s
}

func TestLifecycle(t *testing.T) {
	_, c, s := newTestContainer(t, Config{})
	if s.inits != 1 {
		t.Fatalf("inits = %d", s.inits)
	}
	if !c.Started() {
		t.Fatal("not started")
	}
	if err := c.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	c.Stop()
	if s.destroys != 1 {
		t.Fatalf("destroys = %d", s.destroys)
	}
	c.Stop() // idempotent
	if s.destroys != 1 {
		t.Fatal("Stop not idempotent")
	}
}

func TestDeployErrors(t *testing.T) {
	_, c, _ := newTestContainer(t, Config{})
	if err := c.Deploy("tpcw.echo", &testServlet{}); err == nil {
		t.Fatal("duplicate deploy accepted")
	}
	if err := c.Deploy("x", nil); err == nil {
		t.Fatal("nil servlet accepted")
	}
	// Hot deployment initialises immediately.
	late := &testServlet{}
	if err := c.Deploy("tpcw.late", late); err != nil {
		t.Fatal(err)
	}
	if late.inits != 1 {
		t.Fatal("hot deploy did not init")
	}
	if names := c.ServletNames(); len(names) != 2 || names[0] != "tpcw.echo" {
		t.Fatalf("ServletNames = %v", names)
	}
	if _, ok := c.Servlet("tpcw.late"); !ok {
		t.Fatal("Servlet lookup failed")
	}
	if !c.Undeploy("tpcw.late") || late.destroys != 1 {
		t.Fatal("Undeploy did not destroy")
	}
	if c.Undeploy("tpcw.late") {
		t.Fatal("double Undeploy reported true")
	}
}

func TestSubmitCompletes(t *testing.T) {
	engine, c, _ := newTestContainer(t, Config{})
	var gotResp *Response
	var rt time.Duration
	engine.ScheduleAfter(0, func(time.Time) {
		req := &Request{Interaction: "tpcw.echo", SessionID: "s1"}
		c.Submit(req, func(r *Request, resp *Response) {
			gotResp = resp
			rt = engine.Now().Sub(r.Submitted())
		})
	})
	engine.RunFor(30 * time.Second)
	if gotResp == nil || !gotResp.OK() {
		t.Fatalf("resp = %+v", gotResp)
	}
	if gotResp.Get("rows").(int) != 3 {
		t.Fatalf("rows = %v", gotResp.Get("rows"))
	}
	if rt <= 0 {
		t.Fatalf("response time = %v, want positive virtual duration", rt)
	}
	st := c.Stats()
	if st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if c.InteractionCount("tpcw.echo") != 1 {
		t.Fatal("per-interaction count missing")
	}
	if c.Sessions().Live() != 1 {
		t.Fatal("session not created")
	}
}

func TestSubmitUnknownServlet(t *testing.T) {
	engine, c, _ := newTestContainer(t, Config{})
	var resp *Response
	engine.ScheduleAfter(0, func(time.Time) {
		c.Submit(&Request{Interaction: "ghost"}, func(_ *Request, r *Response) { resp = r })
	})
	engine.RunFor(30 * time.Second)
	if resp.Status != StatusServerError || !errors.Is(resp.Err, ErrNoSuchServlet) {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestServletErrorBecomes500(t *testing.T) {
	engine, c, s := newTestContainer(t, Config{})
	boom := errors.New("boom")
	s.fail = boom
	var resp *Response
	engine.ScheduleAfter(0, func(time.Time) {
		c.Submit(&Request{Interaction: "tpcw.echo"}, func(_ *Request, r *Response) { resp = r })
	})
	engine.RunFor(30 * time.Second)
	if resp.Status != StatusServerError || !errors.Is(resp.Err, boom) {
		t.Fatalf("resp = %+v", resp)
	}
	if c.Stats().Failed != 1 {
		t.Fatal("failure not counted")
	}
}

func TestQueueingUnderLoad(t *testing.T) {
	engine, c, s := newTestContainer(t, Config{Workers: 1})
	s.extra = 10 * time.Millisecond
	var order []time.Duration
	engine.ScheduleAfter(0, func(now time.Time) {
		for i := 0; i < 3; i++ {
			c.Submit(&Request{Interaction: "tpcw.echo"}, func(r *Request, _ *Response) {
				order = append(order, engine.Now().Sub(sim.Epoch))
			})
		}
	})
	engine.RunFor(30 * time.Second)
	if len(order) != 3 {
		t.Fatalf("completions = %d", len(order))
	}
	// With one worker, completions are serialised ~10ms apart.
	if order[1]-order[0] < 10*time.Millisecond || order[2]-order[1] < 10*time.Millisecond {
		t.Fatalf("no serialisation: %v", order)
	}
}

func TestQueueOverflowRejects(t *testing.T) {
	engine, c, s := newTestContainer(t, Config{Workers: 1, QueueCapacity: 1})
	s.extra = 10 * time.Millisecond
	rejected := 0
	engine.ScheduleAfter(0, func(time.Time) {
		for i := 0; i < 5; i++ {
			c.Submit(&Request{Interaction: "tpcw.echo"}, func(_ *Request, r *Response) {
				if r.Status == StatusUnavailable {
					rejected++
				}
			})
		}
	})
	engine.RunFor(30 * time.Second)
	if rejected != 3 {
		t.Fatalf("rejected = %d, want 3 (1 running + 1 queued)", rejected)
	}
	if c.Stats().Rejected != 3 {
		t.Fatalf("Rejected counter = %d", c.Stats().Rejected)
	}
}

func TestSubmitAfterStop(t *testing.T) {
	engine, c, _ := newTestContainer(t, Config{})
	c.Stop()
	var resp *Response
	engine.ScheduleAfter(0, func(time.Time) {
		c.Submit(&Request{Interaction: "tpcw.echo"}, func(_ *Request, r *Response) { resp = r })
	})
	engine.RunFor(30 * time.Second)
	if resp.Status != StatusUnavailable || !errors.Is(resp.Err, ErrStopped) {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestInvokeDirectMode(t *testing.T) {
	_, c, _ := newTestContainer(t, Config{})
	resp, elapsed := c.Invoke(&Request{Interaction: "tpcw.echo", SessionID: "d1"})
	if !resp.OK() {
		t.Fatalf("resp = %+v", resp)
	}
	if elapsed <= 0 {
		t.Fatal("no wall time measured")
	}
	if c.Stats().Completed != 1 {
		t.Fatal("Invoke not accounted")
	}
}

func TestServiceTimeGrowsWithWork(t *testing.T) {
	engine, c, s := newTestContainer(t, Config{})
	var light, heavy time.Duration
	s.body = func(req *Request, resp *Response) error {
		_, err := req.Conn.Select("item", sqldb.Where("i_subject", sqldb.Eq, "ARTS"))
		return err
	}
	engine.ScheduleAfter(0, func(time.Time) {
		c.Submit(&Request{Interaction: "tpcw.echo"}, func(r *Request, _ *Response) {
			light = r.ReportedCost()
		})
	})
	engine.RunFor(30 * time.Second)
	s.body = func(req *Request, resp *Response) error {
		for i := 0; i < 50; i++ {
			if _, err := req.Conn.Select("item", sqldb.Where("i_subject", sqldb.Eq, "ARTS")); err != nil {
				return err
			}
		}
		return nil
	}
	engine.ScheduleAfter(0, func(time.Time) {
		c.Submit(&Request{Interaction: "tpcw.echo"}, func(r *Request, _ *Response) {
			heavy = r.ReportedCost()
		})
	})
	engine.RunFor(30 * time.Second)
	if heavy <= light {
		t.Fatalf("service time did not grow with work: light=%v heavy=%v", light, heavy)
	}
}

func TestMonitoringAddsVirtualOverhead(t *testing.T) {
	engine, c, _ := newTestContainer(t, Config{})
	measure := func() time.Duration {
		var d time.Duration
		engine.ScheduleAfter(0, func(time.Time) {
			c.Submit(&Request{Interaction: "tpcw.echo"}, func(r *Request, _ *Response) {
				d = r.ReportedCost()
			})
		})
		engine.RunFor(30 * time.Second)
		return d
	}
	plain := measure()
	if err := c.Weaver().Register(&aspect.Aspect{
		Name:     "probe",
		Pointcut: aspect.MustPointcut("within(tpcw.*)"),
		Before:   func(*aspect.JoinPoint) {},
	}); err != nil {
		t.Fatal(err)
	}
	monitored := measure()
	if monitored <= plain {
		t.Fatalf("monitored %v not above plain %v", monitored, plain)
	}
	overhead := float64(monitored-plain) / float64(plain)
	if overhead > 0.20 {
		t.Fatalf("virtual overhead %.1f%%, suspiciously high", overhead*100)
	}
}

func TestThroughputAndHistogram(t *testing.T) {
	engine, c, _ := newTestContainer(t, Config{})
	engine.ScheduleAfter(0, func(time.Time) {
		for i := 0; i < 20; i++ {
			c.Submit(&Request{Interaction: "tpcw.echo"}, nil)
		}
	})
	// Stay inside the 10s rate window so the completions are visible.
	engine.RunFor(time.Second)
	if c.ResponseTimes().Count() != 20 {
		t.Fatalf("histogram count = %d", c.ResponseTimes().Count())
	}
	if c.Throughput() <= 0 {
		t.Fatal("zero throughput after completions")
	}
}

func TestSessionExpirySweep(t *testing.T) {
	engine, c, _ := newTestContainer(t, Config{SessionTimeout: time.Minute})
	engine.ScheduleAfter(0, func(time.Time) {
		c.Submit(&Request{Interaction: "tpcw.echo", SessionID: "old"}, nil)
	})
	engine.RunFor(5 * time.Minute)
	if c.Sessions().Live() != 0 {
		t.Fatalf("live sessions = %d after expiry window", c.Sessions().Live())
	}
	if c.Sessions().Expired() != 1 {
		t.Fatalf("expired = %d", c.Sessions().Expired())
	}
}

func TestSessionHeapAccounting(t *testing.T) {
	engine, c, _ := newTestContainer(t, Config{SessionTimeout: time.Minute})
	engine.ScheduleAfter(0, func(time.Time) {
		for i := 0; i < 10; i++ {
			id := string(rune('a' + i))
			c.Submit(&Request{Interaction: "tpcw.echo", SessionID: id}, nil)
		}
	})
	engine.RunFor(time.Second)
	if got := c.Heap().RetainedBy("container.sessions"); got != 10*4096 {
		t.Fatalf("session heap = %d", got)
	}
	engine.RunFor(5 * time.Minute)
	if got := c.Heap().RetainedBy("container.sessions"); got != 0 {
		t.Fatalf("session heap after expiry = %d", got)
	}
}

func TestNegativeAddCostPanics(t *testing.T) {
	req := &Request{}
	defer func() {
		if recover() == nil {
			t.Fatal("negative AddCost did not panic")
		}
	}()
	req.AddCost(-time.Second)
}

func TestSessionAttributes(t *testing.T) {
	m := NewSessionManager(nil, nil, 0)
	s := m.GetOrCreate("s1")
	s.Set("cart", 42)
	if s.Get("cart").(int) != 42 || s.Get("ghost") != nil {
		t.Fatal("session attribute roundtrip failed")
	}
	if s.ID() != "s1" {
		t.Fatalf("ID = %q", s.ID())
	}
	again := m.GetOrCreate("s1")
	if again != s {
		t.Fatal("GetOrCreate created duplicate")
	}
	if _, ok := m.Peek("s1"); !ok {
		t.Fatal("Peek missed live session")
	}
	if _, ok := m.Peek("ghost"); ok {
		t.Fatal("Peek found ghost")
	}
	if m.Created() != 1 {
		t.Fatalf("Created = %d", m.Created())
	}
	if m.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSessionEmptyIDPanics(t *testing.T) {
	m := NewSessionManager(nil, nil, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("empty session id did not panic")
		}
	}()
	m.GetOrCreate("")
}

func TestPanickingServletBecomes500(t *testing.T) {
	engine, c, s := newTestContainer(t, Config{})
	s.body = func(*Request, *Response) error { panic("servlet bug") }
	var resp *Response
	engine.ScheduleAfter(0, func(time.Time) {
		c.Submit(&Request{Interaction: "tpcw.echo"}, func(_ *Request, r *Response) { resp = r })
	})
	engine.RunFor(30 * time.Second)
	if resp == nil || resp.Status != StatusServerError {
		t.Fatalf("panic response = %+v", resp)
	}
	// The container keeps serving afterwards.
	s.body = nil
	var ok *Response
	engine.ScheduleAfter(0, func(time.Time) {
		c.Submit(&Request{Interaction: "tpcw.echo"}, func(_ *Request, r *Response) { ok = r })
	})
	engine.RunFor(30 * time.Second)
	if ok == nil || !ok.OK() {
		t.Fatalf("container dead after panic: %+v", ok)
	}
	// The pooled connection was released despite the panic.
	if c.Pool().Idle() != c.Pool().Size() {
		t.Fatalf("connection leaked on panic: idle=%d", c.Pool().Idle())
	}
}

func TestCostModelMonotone(t *testing.T) {
	m := DefaultCostModel()
	base := m.ServiceTime(sqldb.QueryCost{}, 0, 0)
	if base != m.PerRequest {
		t.Fatalf("base = %v", base)
	}
	more := m.ServiceTime(sqldb.QueryCost{Queries: 3, RowsScanned: 100, RowsReturned: 10}, 2, time.Millisecond)
	if more <= base {
		t.Fatal("cost model not monotone")
	}
}

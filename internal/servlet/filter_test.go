package servlet

import (
	"errors"
	"testing"
	"time"
)

// recordingFilter logs lifecycle and pass-through order.
type recordingFilter struct {
	name     string
	log      *[]string
	inits    int
	destroys int
	block    bool
	fail     error
}

func (f *recordingFilter) Init(*Context) error { f.inits++; return nil }
func (f *recordingFilter) Destroy()            { f.destroys++ }
func (f *recordingFilter) DoFilter(req *Request, resp *Response, chain *FilterChain) error {
	*f.log = append(*f.log, f.name+".in")
	if f.fail != nil {
		return f.fail
	}
	if f.block {
		resp.Status = StatusUnavailable
		return nil
	}
	err := chain.Next(req, resp)
	*f.log = append(*f.log, f.name+".out")
	return err
}

func TestFilterChainOrder(t *testing.T) {
	engine, c, _ := newTestContainer(t, Config{})
	var log []string
	if err := c.AddFilter("outer", &recordingFilter{name: "outer", log: &log}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddFilter("inner", &recordingFilter{name: "inner", log: &log}); err != nil {
		t.Fatal(err)
	}
	var resp *Response
	engine.ScheduleAfter(0, func(time.Time) {
		c.Submit(&Request{Interaction: "tpcw.echo"}, func(_ *Request, r *Response) { resp = r })
	})
	engine.RunFor(30 * time.Second)
	if !resp.OK() {
		t.Fatalf("resp = %+v", resp)
	}
	want := "outer.in,inner.in,inner.out,outer.out"
	got := ""
	for i, s := range log {
		if i > 0 {
			got += ","
		}
		got += s
	}
	if got != want {
		t.Fatalf("chain order = %s, want %s", got, want)
	}
}

func TestFilterShortCircuit(t *testing.T) {
	engine, c, s := newTestContainer(t, Config{})
	var log []string
	if err := c.AddFilter("gate", &recordingFilter{name: "gate", log: &log, block: true}); err != nil {
		t.Fatal(err)
	}
	var resp *Response
	engine.ScheduleAfter(0, func(time.Time) {
		c.Submit(&Request{Interaction: "tpcw.echo"}, func(_ *Request, r *Response) { resp = r })
	})
	engine.RunFor(30 * time.Second)
	if resp.Status != StatusUnavailable {
		t.Fatalf("resp = %+v", resp)
	}
	if s.inits == 0 {
		t.Fatal("servlet was never initialised")
	}
	// The servlet body must not have run: the echo servlet sets "rows".
	if resp.Get("rows") != nil {
		t.Fatal("servlet ran despite filter short-circuit")
	}
}

func TestFilterErrorBecomes500(t *testing.T) {
	engine, c, _ := newTestContainer(t, Config{})
	boom := errors.New("filter boom")
	var log []string
	if err := c.AddFilter("bad", &recordingFilter{name: "bad", log: &log, fail: boom}); err != nil {
		t.Fatal(err)
	}
	var resp *Response
	engine.ScheduleAfter(0, func(time.Time) {
		c.Submit(&Request{Interaction: "tpcw.echo"}, func(_ *Request, r *Response) { resp = r })
	})
	engine.RunFor(30 * time.Second)
	if resp.Status != StatusServerError || !errors.Is(resp.Err, boom) {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestFilterLifecycle(t *testing.T) {
	engine, c, _ := newTestContainer(t, Config{})
	_ = engine
	var log []string
	f := &recordingFilter{name: "f", log: &log}
	// Container already started: init happens at AddFilter.
	if err := c.AddFilter("f", f); err != nil {
		t.Fatal(err)
	}
	if f.inits != 1 {
		t.Fatalf("inits = %d", f.inits)
	}
	if err := c.AddFilter("f", f); err == nil {
		t.Fatal("duplicate filter accepted")
	}
	if err := c.AddFilter("nil", nil); err == nil {
		t.Fatal("nil filter accepted")
	}
	if names := c.FilterNames(); len(names) != 1 || names[0] != "f" {
		t.Fatalf("FilterNames = %v", names)
	}
	if !c.RemoveFilter("f") || f.destroys != 1 {
		t.Fatal("RemoveFilter did not destroy")
	}
	if c.RemoveFilter("f") {
		t.Fatal("double remove reported true")
	}
}

func TestAccessLogFilter(t *testing.T) {
	engine, c, _ := newTestContainer(t, Config{})
	alog := NewAccessLogFilter(engine.Clock())
	if err := c.AddFilter("access", alog); err != nil {
		t.Fatal(err)
	}
	engine.ScheduleAfter(0, func(time.Time) {
		for i := 0; i < 3; i++ {
			c.Submit(&Request{Interaction: "tpcw.echo"}, nil)
		}
	})
	engine.RunFor(30 * time.Second)
	if got := alog.Hits("tpcw.echo"); got != 3 {
		t.Fatalf("hits = %d", got)
	}
	if _, ok := alog.LastAccess("tpcw.echo"); !ok {
		t.Fatal("no last access recorded")
	}
	if _, ok := alog.LastAccess("ghost"); ok {
		t.Fatal("ghost access recorded")
	}
}

func TestRateLimitFilter(t *testing.T) {
	engine, c, _ := newTestContainer(t, Config{})
	if err := c.AddFilter("limit", NewRateLimitFilter(engine.Clock(), 2)); err != nil {
		t.Fatal(err)
	}
	rejected := 0
	engine.ScheduleAfter(0, func(time.Time) {
		for i := 0; i < 5; i++ {
			c.Submit(&Request{Interaction: "tpcw.echo"}, func(_ *Request, r *Response) {
				if r.Status == StatusUnavailable {
					rejected++
				}
			})
		}
	})
	engine.RunFor(time.Second)
	if rejected != 3 {
		t.Fatalf("rejected = %d, want 3 of 5 at 2/s", rejected)
	}
}

func TestRateLimitValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive limit did not panic")
		}
	}()
	NewRateLimitFilter(nil, 0)
}

// Package servlet is the reproduction's web application server — the role
// Apache Tomcat 5.5 plays in the paper's testbed. It hosts components
// implementing the Servlet interface, binds one database connection per
// request, manages sessions, bounds concurrency with a worker-pool model,
// and — critically for the paper — routes every component execution
// through the aspect weaver so that monitoring can be injected without the
// application noticing.
//
// The container runs in two modes. In simulation mode, requests are
// submitted at virtual instants, component code executes for real, and the
// observed database work is converted into simulated service time through
// the cost model; queueing and completion are scheduled on the
// discrete-event engine. In direct mode (used by the wall-clock overhead
// benchmarks), Invoke executes a request synchronously on the caller's
// goroutine.
package servlet

import (
	"time"

	"repro/internal/jvmheap"
	"repro/internal/sqldb"
)

// Servlet is the component contract, mirroring javax.servlet: Init once at
// deployment, Service per request, Destroy at undeployment.
type Servlet interface {
	Init(ctx *Context) error
	Service(req *Request, resp *Response) error
	Destroy()
}

// Context is what servlets receive at Init: the shared resources of the
// container.
type Context struct {
	// Pool is the container's database connection pool.
	Pool *sqldb.Pool
	// Sessions is the container's session manager.
	Sessions *SessionManager
	// Heap is the simulated JVM heap requests allocate from.
	Heap *jvmheap.Heap
}

// Request is one web interaction request.
type Request struct {
	// Interaction is the target component name (the servlet name).
	Interaction string
	// SessionID identifies the emulated browser's session ("" for none).
	SessionID string
	// Params carries the request parameters.
	Params map[string]string
	// Conn is the database connection the container bound to this
	// request; servlets and DAOs execute queries through it.
	Conn *sqldb.Conn
	// Session is resolved by the container before Service runs.
	Session *Session

	submitted   time.Time
	extraCost   time.Duration
	serviceTime time.Duration
	joinPoints  int64 // advised executions this request crossed, for overhead accounting
}

// Param returns the named parameter ("" when absent).
func (r *Request) Param(name string) string { return r.Params[name] }

// AddCost charges additional simulated CPU time to this request. The
// CPU-hog fault injector uses it to model computational aging bugs.
func (r *Request) AddCost(d time.Duration) {
	if d < 0 {
		panic("servlet: negative AddCost")
	}
	r.extraCost += d
}

// ReportedCost returns the simulated service time of the completed
// request. It implements the cost-reporting contract the monitoring
// aspects look for on join point arguments, which is how virtual durations
// reach the CPU and invocation agents even though the virtual clock stands
// still during component execution.
func (r *Request) ReportedCost() time.Duration { return r.serviceTime }

// Submitted returns when the request entered the container.
func (r *Request) Submitted() time.Time { return r.submitted }

// JoinPointCrossed implements the aspect package's JoinPointTap: the
// weaver calls it once per advised execution whose first argument is this
// request (the servlet's own Service join point). Together with the tap
// on the bound connection this gives each request an exact join point
// count even when many requests dispatch concurrently.
func (r *Request) JoinPointCrossed() { r.joinPoints++ }

// TraceKey identifies the request flow for trace-collecting aspects: the
// bound database connection, which nested DAO executions also carry. It
// falls back to the request itself before a connection is bound.
func (r *Request) TraceKey() any {
	if r.Conn != nil {
		return r.Conn
	}
	return r
}

// HTTP-ish response status codes the container uses.
const (
	StatusOK          = 200
	StatusServerError = 500
	StatusUnavailable = 503
)

// Response is the outcome of one request.
type Response struct {
	// Status is the response code (StatusOK on success).
	Status int
	// Err is the component error for StatusServerError responses.
	Err error
	// Data carries interaction results (the "page" content); the
	// emulated browsers read navigation state from it.
	Data map[string]any
}

// Set stores a result value, allocating the map on first use.
func (resp *Response) Set(key string, v any) {
	if resp.Data == nil {
		resp.Data = make(map[string]any)
	}
	resp.Data[key] = v
}

// Get reads a result value (nil when absent).
func (resp *Response) Get(key string) any {
	if resp.Data == nil {
		return nil
	}
	return resp.Data[key]
}

// OK reports whether the response succeeded.
func (resp *Response) OK() bool { return resp.Status == StatusOK }

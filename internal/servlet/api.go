// Package servlet is the reproduction's web application server — the role
// Apache Tomcat 5.5 plays in the paper's testbed. It hosts components
// implementing the Servlet interface, binds one database connection per
// request, manages sessions, bounds concurrency with a worker-pool model,
// and — critically for the paper — routes every component execution
// through the aspect weaver so that monitoring can be injected without the
// application noticing.
//
// The container runs in two modes. In simulation mode, requests are
// submitted at virtual instants, component code executes for real, and the
// observed database work is converted into simulated service time through
// the cost model; queueing and completion are scheduled on the
// discrete-event engine. In direct mode (used by the wall-clock overhead
// benchmarks), Invoke executes a request synchronously on the caller's
// goroutine.
//
// # Request lifecycle and pooling
//
// Requests and responses follow an explicit borrow/release contract so
// the serve path allocates nothing at steady state (the same discipline
// the monitoring plane applies to sampling rounds):
//
//   - AcquireRequest borrows a recycled request; fill it with SetParam /
//     SetInt64Param (or the plain exported fields) and hand it to Submit
//     or Invoke.
//   - In simulation mode the container owns a pooled request from Submit
//     on: after the Completion callback returns, the request and the
//     pooled response it was served with are recycled. A Completion for a
//     pooled request must therefore not retain the request, the response,
//     or any buffer reachable from them (Response.ItemIDs included) past
//     its own return — copy out what must survive.
//   - In direct mode Invoke returns the response to the caller, who
//     releases both with ReleaseRequest and ReleaseResponse when done.
//
// Requests constructed literally (&Request{...}) remain fully supported:
// they are never recycled, their responses are freshly allocated, and
// completions may retain them — the pre-pooling behaviour.
package servlet

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/jvmheap"
	"repro/internal/sqldb"
)

// Servlet is the component contract, mirroring javax.servlet: Init once at
// deployment, Service per request, Destroy at undeployment.
type Servlet interface {
	Init(ctx *Context) error
	Service(req *Request, resp *Response) error
	Destroy()
}

// Context is what servlets receive at Init: the shared resources of the
// container.
type Context struct {
	// Pool is the container's database connection pool.
	Pool *sqldb.Pool
	// Sessions is the container's session manager.
	Sessions *SessionManager
	// Heap is the simulated JVM heap requests allocate from.
	Heap *jvmheap.Heap
}

// param is one inline request parameter (the pooled, map-free store).
type param struct {
	key, val string
}

// intParam is one inline integer parameter; numeric identifiers (item
// ids, quantities) are carried typed so neither the browser emulator nor
// the servlet round-trips them through strconv per request.
type intParam struct {
	key string
	val int64
}

// Request is one web interaction request.
type Request struct {
	// Interaction is the target component name (the servlet name).
	Interaction string
	// SessionID identifies the emulated browser's session ("" for none).
	SessionID string
	// Params carries the request parameters. Pooled requests use the
	// inline SetParam/SetInt64Param store instead; Params remains for
	// literally-constructed requests and takes precedence when non-nil.
	Params map[string]string
	// Conn is the database connection the container bound to this
	// request; servlets and DAOs execute queries through it.
	Conn *sqldb.Conn
	// Session is resolved by the container before Service runs.
	Session *Session

	submitted   time.Time
	extraCost   time.Duration
	extraWait   time.Duration
	serviceTime time.Duration
	joinPoints  int64 // advised executions this request crossed, for overhead accounting

	// pooled marks requests born from AcquireRequest: the container
	// recycles them (and their responses) after completion.
	pooled  bool
	params  []param    // inline string parameters
	iparams []intParam // inline integer parameters

	// args is the woven-invocation scratch: the servlet's (req, resp)
	// argument slice lives here so dispatch builds no per-request slice.
	args [2]any
	// chain is the per-request filter chain scratch.
	chain FilterChain
	// dep is the resolved servlet entry, cached so completion accounting
	// reaches its per-interaction counter without a map lookup.
	dep *deployed

	// flowMark mirrors sqldb.Conn's per-flow monitoring scratch for the
	// window before a connection is bound.
	flowMark    int64
	flowMarkSet bool
}

var requestPool = sync.Pool{New: func() any { return &Request{pooled: true} }}

// AcquireRequest borrows a recycled request from the package pool. The
// caller fills it and passes it to Submit (the container releases it
// after the completion callback returns) or Invoke (the caller releases
// it with ReleaseRequest).
func AcquireRequest() *Request {
	return requestPool.Get().(*Request)
}

// ReleaseRequest resets a pooled request and returns it to the pool. It
// is a no-op for literally-constructed requests, so callers may release
// unconditionally. The request must not be used after release.
func ReleaseRequest(req *Request) {
	if req == nil || !req.pooled {
		return
	}
	req.reset()
	requestPool.Put(req)
}

// reset clears a request for reuse, keeping grown buffer capacity.
func (r *Request) reset() {
	r.Interaction = ""
	r.SessionID = ""
	r.Params = nil
	r.Conn = nil
	r.Session = nil
	r.submitted = time.Time{}
	r.extraCost = 0
	r.extraWait = 0
	r.serviceTime = 0
	r.joinPoints = 0
	r.params = r.params[:0]
	r.iparams = r.iparams[:0]
	r.args[0], r.args[1] = nil, nil
	r.chain = FilterChain{}
	r.dep = nil
	r.flowMarkSet = false
}

// SetParam stores a string parameter in the request's inline store,
// overwriting an existing value for the key.
func (r *Request) SetParam(name, value string) {
	for i := range r.params {
		if r.params[i].key == name {
			r.params[i].val = value
			return
		}
	}
	r.params = append(r.params, param{key: name, val: value})
}

// SetInt64Param stores an integer parameter in the request's inline
// store, overwriting an existing value for the key. Int64Param reads it
// back without a strconv round trip.
func (r *Request) SetInt64Param(name string, value int64) {
	for i := range r.iparams {
		if r.iparams[i].key == name {
			r.iparams[i].val = value
			return
		}
	}
	r.iparams = append(r.iparams, intParam{key: name, val: value})
}

// Param returns the named parameter ("" when absent). Integer parameters
// set via SetInt64Param are formatted on demand (an allocation — hot
// paths that expect numbers should use Int64Param).
func (r *Request) Param(name string) string {
	if r.Params != nil {
		if v, ok := r.Params[name]; ok {
			return v
		}
	}
	for i := range r.params {
		if r.params[i].key == name {
			return r.params[i].val
		}
	}
	for i := range r.iparams {
		if r.iparams[i].key == name {
			return strconv.FormatInt(r.iparams[i].val, 10)
		}
	}
	return ""
}

// Int64Param returns the named parameter as an integer, reporting whether
// it is present and numeric. Typed parameters are returned directly;
// string parameters are parsed.
func (r *Request) Int64Param(name string) (int64, bool) {
	for i := range r.iparams {
		if r.iparams[i].key == name {
			return r.iparams[i].val, true
		}
	}
	if s := r.Param(name); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v, true
		}
	}
	return 0, false
}

// AddCost charges additional simulated CPU time to this request. The
// CPU-hog fault injector uses it to model computational aging bugs.
func (r *Request) AddCost(d time.Duration) {
	if d < 0 {
		panic("servlet: negative AddCost")
	}
	r.extraCost += d
}

// AddWait charges additional simulated wait time to this request: time
// the caller spends blocked without consuming CPU (lock contention, pool
// queueing). It stretches the response latency the container schedules
// and the latency agents record, but — unlike AddCost — leaves the
// reported CPU cost untouched, so latency-only aging shows no resource
// growth. The lock-contention and pool-exhaustion fault injectors use it.
func (r *Request) AddWait(d time.Duration) {
	if d < 0 {
		panic("servlet: negative AddWait")
	}
	r.extraWait += d
}

// ReportedCost returns the simulated service time of the completed
// request. It implements the cost-reporting contract the monitoring
// aspects look for on join point arguments, which is how virtual durations
// reach the CPU and invocation agents even though the virtual clock stands
// still during component execution.
func (r *Request) ReportedCost() time.Duration { return r.serviceTime }

// ReportedLatency returns the simulated response latency of the completed
// request: the service time plus any injected wait. It implements the
// latency-reporting contract the monitoring aspects look for next to
// ReportedCost; for a healthy request the two coincide.
func (r *Request) ReportedLatency() time.Duration { return r.serviceTime + r.extraWait }

// Submitted returns when the request entered the container.
func (r *Request) Submitted() time.Time { return r.submitted }

// JoinPointCrossed implements the aspect package's JoinPointTap: the
// weaver calls it once per advised execution whose first argument is this
// request (the servlet's own Service join point). Together with the tap
// on the bound connection this gives each request an exact join point
// count even when many requests dispatch concurrently.
func (r *Request) JoinPointCrossed() { r.joinPoints++ }

// TraceKey identifies the request flow for trace-collecting aspects: the
// bound database connection, which nested DAO executions also carry. It
// falls back to the request itself before a connection is bound.
func (r *Request) TraceKey() any {
	if r.Conn != nil {
		return r.Conn
	}
	return r
}

// SetFlowMark stores a per-flow monitoring scratch value; see
// sqldb.Conn.SetFlowMark — the request carries the same slot for flows
// without a bound connection.
func (r *Request) SetFlowMark(v int64) { r.flowMark, r.flowMarkSet = v, true }

// FlowMark returns the stored per-flow mark and whether one is set.
func (r *Request) FlowMark() (int64, bool) { return r.flowMark, r.flowMarkSet }

// ClearFlowMark removes the per-flow mark.
func (r *Request) ClearFlowMark() { r.flowMarkSet = false }

// HTTP-ish response status codes the container uses.
const (
	StatusOK          = 200
	StatusServerError = 500
	StatusUnavailable = 503
)

// itemIDsKey is the Data key under which navigable item ids were
// historically published; the typed ItemIDs store replaces it on the hot
// path and Get/ItemIDs bridge the two for compatibility.
const itemIDsKey = "item_ids"

// Response is the outcome of one request.
type Response struct {
	// Status is the response code (StatusOK on success).
	Status int
	// Err is the component error for StatusServerError responses.
	Err error
	// Data carries interaction results (the "page" content); the
	// emulated browsers read navigation state from it.
	Data map[string]any

	// pooled marks responses born from AcquireResponse.
	pooled bool
	// itemIDs is the typed navigation-id store: every browsing
	// interaction publishes item ids, so they are first-class rather than
	// boxed into Data per request.
	itemIDs    []int64
	itemIDsSet bool
}

var responsePool = sync.Pool{New: func() any { return &Response{Status: StatusOK, pooled: true} }}

// AcquireResponse borrows a recycled response from the package pool.
// The container acquires one per pooled request; direct-mode callers
// release it with ReleaseResponse.
func AcquireResponse() *Response {
	return responsePool.Get().(*Response)
}

// ReleaseResponse resets a pooled response and returns it to the pool.
// It is a no-op for literally-constructed responses. The response (and
// any buffer obtained from it, ItemIDs included) must not be used after
// release.
func ReleaseResponse(resp *Response) {
	if resp == nil || !resp.pooled {
		return
	}
	resp.reset()
	responsePool.Put(resp)
}

// reset clears a response for reuse, keeping the Data map's buckets and
// the item-id buffer's capacity.
func (resp *Response) reset() {
	resp.Status = StatusOK
	resp.Err = nil
	clear(resp.Data)
	resp.itemIDs = resp.itemIDs[:0]
	resp.itemIDsSet = false
}

// Set stores a result value, allocating the map on first use.
func (resp *Response) Set(key string, v any) {
	if resp.Data == nil {
		resp.Data = make(map[string]any)
	}
	resp.Data[key] = v
}

// Get reads a result value (nil when absent). Item ids published through
// AddItemID surface under the "item_ids" key for compatibility.
func (resp *Response) Get(key string) any {
	if resp.Data != nil {
		if v, ok := resp.Data[key]; ok {
			return v
		}
	}
	if key == itemIDsKey && resp.itemIDsSet {
		return resp.itemIDs
	}
	return nil
}

// AddItemID publishes one navigable item id on the response. The typed
// store replaces Set("item_ids", []int64{...}) on the serve path: the
// backing buffer is recycled with the response, so steady-state requests
// publish their links without allocating.
func (resp *Response) AddItemID(id int64) {
	resp.itemIDs = append(resp.itemIDs, id)
	resp.itemIDsSet = true
}

// ItemIDs returns the navigable item ids of the page, from the typed
// store or, for responses filled via Set, the "item_ids" Data key. For a
// pooled response the returned slice is borrowed: it is valid until the
// response is released.
func (resp *Response) ItemIDs() []int64 {
	if resp.itemIDsSet {
		return resp.itemIDs
	}
	ids, _ := resp.Get(itemIDsKey).([]int64)
	return ids
}

// OK reports whether the response succeeded.
func (resp *Response) OK() bool { return resp.Status == StatusOK }

package servlet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aspect"
	"repro/internal/jvmheap"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sqldb"
)

// Dispatch errors.
var (
	ErrNoSuchServlet = errors.New("servlet: no such servlet")
	ErrOverloaded    = errors.New("servlet: accept queue full")
	ErrStopped       = errors.New("servlet: container is stopped")
)

// Config sizes a container.
type Config struct {
	// Workers bounds concurrent request execution (default 50).
	Workers int
	// QueueCapacity bounds the accept queue; requests beyond it are
	// rejected with StatusUnavailable (default 500).
	QueueCapacity int
	// DBConnections sizes the connection pool (default Workers).
	DBConnections int
	// SessionTimeout is the idle expiry (default 30m).
	SessionTimeout time.Duration
	// Cost is the service-time model (DefaultCostModel when zero).
	Cost CostModel
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 50
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 500
	}
	if c.DBConnections <= 0 {
		c.DBConnections = c.Workers
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCostModel()
	}
	return c
}

// Completion receives the outcome of a submitted request. For a pooled
// request (AcquireRequest) the callback is the end of the borrow: the
// container recycles the request and response as soon as it returns, so
// the callback must not retain either (copy out what survives).
type Completion func(req *Request, resp *Response)

type deployed struct {
	servlet Servlet
	woven   func(depth int, args ...any) (any, error)
	// completions counts this interaction's completed requests. It lives
	// on the deployed entry (shared with the perInter map) so completion
	// accounting needs no per-request map lookup or counter allocation.
	completions *metrics.Counter
}

type pending struct {
	req  *Request
	done Completion
}

// pendingQueue is a growable ring buffer of queued requests. The accept
// queue churns on every saturated instant; a ring reuses its backing
// array instead of the append-and-reslice pattern that re-allocates the
// whole queue as it slides. Engine-goroutine only, like all simulation
// worker state.
type pendingQueue struct {
	buf  []pending
	head int
	n    int
}

func (q *pendingQueue) len() int { return q.n }

func (q *pendingQueue) push(p pending) {
	if q.n == len(q.buf) {
		grown := make([]pending, max(16, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
}

func (q *pendingQueue) pop() (pending, bool) {
	if q.n == 0 {
		return pending{}, false
	}
	p := q.buf[q.head]
	q.buf[q.head] = pending{} // release references while the slot idles
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p, true
}

// Container hosts servlets. See the package comment for the two execution
// modes. All simulation-mode entry points (Submit and the completion
// events) must run on the engine goroutine; Invoke may be called from any
// goroutine once Start has returned.
type Container struct {
	engine *sim.Engine
	clock  sim.Clock
	weaver *aspect.Weaver
	cfg    Config

	pool     *sqldb.Pool
	sessions *SessionManager
	heap     *jvmheap.Heap

	mu       sync.RWMutex
	servlets map[string]*deployed
	started  bool

	// names is the cached sorted servlet listing, rebuilt on deploy and
	// undeploy: ServletNames sits on management-plane polling loops, so a
	// fresh sorted slice per call would be steady garbage for an answer
	// that changes only on (rare) deployment events.
	names atomic.Pointer[[]string]

	filterReg filterRegistry

	// Simulation-mode worker state (engine goroutine only).
	busyWorkers int
	queue       pendingQueue

	// cePool recycles the completion events startJob schedules, so a
	// simulated request costs no closure allocation on its way out.
	cePool sync.Pool

	completed  metrics.Counter
	failed     metrics.Counter
	rejected   metrics.Counter
	respTimes  *metrics.Histogram
	throughput *metrics.RateWindow
	perInter   sync.Map // interaction -> *metrics.Counter
}

// NewContainer assembles a container. engine may be nil for direct-mode
// use only (Submit then panics). The weaver must not be nil — weaving is
// the whole point.
func NewContainer(engine *sim.Engine, weaver *aspect.Weaver, db *sqldb.DB, heap *jvmheap.Heap, cfg Config) *Container {
	if weaver == nil {
		panic("servlet: nil weaver")
	}
	cfg = cfg.withDefaults()
	var clock sim.Clock
	if engine != nil {
		clock = engine.Clock()
	} else {
		clock = sim.WallClock{}
	}
	c := &Container{
		engine:     engine,
		clock:      clock,
		weaver:     weaver,
		cfg:        cfg,
		pool:       sqldb.NewPool(db, cfg.DBConnections),
		sessions:   NewSessionManager(clock, heap, cfg.SessionTimeout),
		heap:       heap,
		servlets:   make(map[string]*deployed),
		respTimes:  metrics.NewHistogram(metrics.ExponentialBounds(0.0005, 2, 16)),
		throughput: metrics.NewRateWindow(10 * time.Second),
	}
	c.names.Store(&[]string{})
	c.cePool.New = func() any {
		ce := &completionEvent{c: c}
		ce.fire = func(time.Time) { ce.run() }
		return ce
	}
	return c
}

// Weaver returns the aspect weaver components are woven through.
func (c *Container) Weaver() *aspect.Weaver { return c.weaver }

// Sessions returns the session manager.
func (c *Container) Sessions() *SessionManager { return c.sessions }

// Pool returns the database connection pool.
func (c *Container) Pool() *sqldb.Pool { return c.pool }

// Heap returns the simulated JVM heap (may be nil).
func (c *Container) Heap() *jvmheap.Heap { return c.heap }

// Clock returns the container's time source.
func (c *Container) Clock() sim.Clock { return c.clock }

// Deploy registers a servlet under the given component name and weaves its
// Service method. Deploying after Start initialises the servlet
// immediately — J2EE hot deployment.
func (c *Container) Deploy(name string, s Servlet) error {
	if s == nil {
		return errors.New("servlet: deploy of nil servlet")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.servlets[name]; dup {
		return fmt.Errorf("servlet: %q already deployed", name)
	}
	// The inner function computes the simulated service time immediately
	// after the servlet body returns, while still inside the advice
	// chain, so after-advice (the AC) observes the request's reported
	// cost. Join points are counted per flow — the request taps its own
	// Service join point, the bound connection taps the nested DAO ones —
	// so concurrent requests never cross-charge each other.
	inner := func(args ...any) (any, error) {
		req := args[0].(*Request)
		resp := args[1].(*Response)
		err := s.Service(req, resp)
		var cost sqldb.QueryCost
		jps := req.joinPoints
		if req.Conn != nil {
			cost = req.Conn.Cost()
			jps += req.Conn.JoinPointsCrossed()
		}
		req.serviceTime = c.cfg.Cost.ServiceTime(cost, jps, req.extraCost)
		return nil, err
	}
	// The per-interaction counter is shared with the perInter map and
	// survives redeployment, so InteractionCount keeps its full history.
	v, _ := c.perInter.LoadOrStore(name, &metrics.Counter{})
	d := &deployed{
		servlet:     s,
		woven:       c.weaver.WeaveDepth(name, "Service", inner),
		completions: v.(*metrics.Counter),
	}
	if c.started {
		if err := s.Init(c.context()); err != nil {
			return fmt.Errorf("servlet: init %q: %w", name, err)
		}
	}
	c.servlets[name] = d
	c.publishNamesLocked()
	return nil
}

// Undeploy destroys and removes a servlet, reporting whether it existed.
func (c *Container) Undeploy(name string) bool {
	c.mu.Lock()
	d, ok := c.servlets[name]
	delete(c.servlets, name)
	if ok {
		c.publishNamesLocked()
	}
	c.mu.Unlock()
	if ok {
		d.servlet.Destroy()
	}
	return ok
}

// publishNamesLocked rebuilds the cached sorted name listing; the caller
// holds c.mu.
func (c *Container) publishNamesLocked() {
	names := make([]string, 0, len(c.servlets))
	for n := range c.servlets {
		names = append(names, n)
	}
	sort.Strings(names)
	c.names.Store(&names)
}

// ServletNames lists deployed servlet component names, sorted. The
// returned slice is a shared snapshot rebuilt on deployment changes;
// callers must not mutate it.
func (c *Container) ServletNames() []string {
	return *c.names.Load()
}

// Servlet returns the deployed servlet instance for name.
func (c *Container) Servlet(name string) (Servlet, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.servlets[name]
	if !ok {
		return nil, false
	}
	return d.servlet, true
}

func (c *Container) context() *Context {
	return &Context{Pool: c.pool, Sessions: c.sessions, Heap: c.heap}
}

// Start initialises every deployed servlet and begins the session expiry
// sweep (simulation mode only).
func (c *Container) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return errors.New("servlet: already started")
	}
	ctx := c.context()
	for name, d := range c.servlets {
		if err := d.servlet.Init(ctx); err != nil {
			return fmt.Errorf("servlet: init %q: %w", name, err)
		}
	}
	if err := c.initFilters(); err != nil {
		return err
	}
	c.started = true
	if c.engine != nil {
		c.engine.Every(time.Minute, func(time.Time) { c.sessions.ExpireIdle() })
	}
	return nil
}

// Stop destroys every servlet. The container cannot be restarted.
func (c *Container) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		return
	}
	c.started = false
	for _, d := range c.servlets {
		d.servlet.Destroy()
	}
	c.destroyFilters()
}

// Started reports whether Start has completed.
func (c *Container) Started() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.started
}

// responseFor pairs a request with a response of matching lifecycle:
// pooled requests are served from the response pool (recycled after the
// completion returns), literal requests get a fresh response their owner
// may keep.
func responseFor(req *Request) *Response {
	if req.pooled {
		return AcquireResponse()
	}
	return &Response{Status: StatusOK}
}

// Submit enqueues a request at the current virtual instant; done fires
// when it completes (same instant semantics as the event engine). It must
// be called from the engine goroutine (an EB event). Pooled requests are
// owned by the container from this call on; see the package comment.
func (c *Container) Submit(req *Request, done Completion) {
	if c.engine == nil {
		panic("servlet: Submit on a container without an engine")
	}
	if !c.Started() {
		resp := responseFor(req)
		resp.Status, resp.Err = StatusUnavailable, ErrStopped
		c.finish(req, resp, done)
		return
	}
	req.submitted = c.clock.Now()
	if c.busyWorkers >= c.cfg.Workers {
		if c.queue.len() >= c.cfg.QueueCapacity {
			c.rejected.Inc()
			resp := responseFor(req)
			resp.Status, resp.Err = StatusUnavailable, ErrOverloaded
			c.finish(req, resp, done)
			return
		}
		c.queue.push(pending{req: req, done: done})
		return
	}
	c.startJob(pending{req: req, done: done})
}

// completionEvent carries one in-flight request's completion through the
// engine. The fire closure is bound to the event once at pool-insertion
// time, so scheduling a completion allocates nothing at steady state.
type completionEvent struct {
	c    *Container
	p    pending
	resp *Response
	fire sim.Event
}

func (ce *completionEvent) run() {
	c, p, resp := ce.c, ce.p, ce.resp
	ce.p, ce.resp = pending{}, nil
	c.cePool.Put(ce)
	c.busyWorkers--
	c.finish(p.req, resp, p.done)
	if c.busyWorkers < c.cfg.Workers {
		if next, ok := c.queue.pop(); ok {
			c.startJob(next)
		}
	}
}

// startJob executes the request now (in real code), then schedules its
// completion after the simulated service time.
func (c *Container) startJob(p pending) {
	c.busyWorkers++
	resp, serviceTime := c.execute(p.req)
	ce := c.cePool.Get().(*completionEvent)
	ce.p, ce.resp = p, resp
	c.engine.ScheduleAfter(serviceTime, ce.fire)
}

// Invoke executes a request synchronously (direct mode): no queueing, no
// virtual time. The response and the real execution duration are returned.
// This is what the wall-clock overhead benchmarks drive. For a pooled
// request the response is pooled too: the caller releases both with
// ReleaseRequest and ReleaseResponse when done with them.
func (c *Container) Invoke(req *Request) (*Response, time.Duration) {
	start := time.Now()
	resp, _ := c.execute(req)
	elapsed := time.Since(start)
	c.account(req, resp, elapsed)
	return resp, elapsed
}

// execute runs the servlet through its woven handle with a bound
// connection and session, returning the response and simulated service
// time.
func (c *Container) execute(req *Request) (*Response, time.Duration) {
	c.mu.RLock()
	d, ok := c.servlets[req.Interaction]
	c.mu.RUnlock()
	resp := responseFor(req)
	req.dep = d
	if !ok {
		resp.Status = StatusServerError
		resp.Err = fmt.Errorf("%w: %q", ErrNoSuchServlet, req.Interaction)
		return resp, c.cfg.Cost.ServiceTime(sqldb.QueryCost{}, 0, 0)
	}
	if req.SessionID != "" {
		req.Session = c.sessions.GetOrCreate(req.SessionID)
	}
	conn := c.pool.Acquire()
	req.Conn = conn
	req.joinPoints = 0
	req.chain = FilterChain{filters: c.filterReg.snapshot().filters, container: c, target: d}
	if err := c.safeChain(&req.chain, req, resp); err != nil {
		resp.Status = StatusServerError
		resp.Err = err
	}
	serviceTime := req.serviceTime
	if serviceTime == 0 {
		// A filter short-circuited before the servlet ran; charge the
		// fixed dispatch cost only.
		serviceTime = c.cfg.Cost.ServiceTime(sqldb.QueryCost{}, 0, req.extraCost)
	}
	req.Conn = nil
	req.args[0], req.args[1] = nil, nil
	c.pool.Release(conn)
	// Injected wait (lock contention, pool queueing) stretches the
	// scheduled completion — the worker stays busy and response times
	// genuinely degrade — without entering serviceTime, so the reported
	// CPU cost stays honest.
	return resp, serviceTime + req.extraWait
}

// invokeServlet is the filter chain's final hop: it dispatches the woven
// servlet with the request's argument scratch, so the variadic call
// builds no per-request slice.
func (c *Container) invokeServlet(d *deployed, req *Request, resp *Response) error {
	req.args[0], req.args[1] = req, resp
	_, err := d.woven(0, req.args[:]...)
	return err
}

// safeChain runs the filter chain converting servlet/filter panics into
// errors, as a J2EE container turns runtime exceptions into 500 responses
// instead of dying.
func (c *Container) safeChain(chain *FilterChain, req *Request, resp *Response) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("servlet: panic in %q: %v", req.Interaction, r)
		}
	}()
	return chain.Next(req, resp)
}

// finish accounts a completed simulated request, runs its completion and
// ends the borrow of pooled requests and responses.
func (c *Container) finish(req *Request, resp *Response, done Completion) {
	elapsed := c.clock.Now().Sub(req.submitted)
	c.account(req, resp, elapsed)
	if done != nil {
		done(req, resp)
	}
	ReleaseRequest(req)
	if resp.pooled {
		ReleaseResponse(resp)
	}
}

func (c *Container) account(req *Request, resp *Response, elapsed time.Duration) {
	c.completed.Inc()
	if !resp.OK() {
		c.failed.Inc()
	}
	c.respTimes.Observe(elapsed.Seconds())
	c.throughput.Observe(c.clock.Now())
	if d := req.dep; d != nil {
		d.completions.Inc()
		return
	}
	// Unknown interaction (dispatch error path): fall back to the map.
	v, _ := c.perInter.LoadOrStore(req.Interaction, &metrics.Counter{})
	v.(*metrics.Counter).Inc()
}

// Stats is a point-in-time view of container load metrics.
type Stats struct {
	Completed    int64
	Failed       int64
	Rejected     int64
	BusyWorkers  int
	QueueLength  int
	LiveSessions int
}

// Stats returns current counters. BusyWorkers and QueueLength are only
// meaningful from the engine goroutine in simulation mode.
func (c *Container) Stats() Stats {
	return Stats{
		Completed:    c.completed.Value(),
		Failed:       c.failed.Value(),
		Rejected:     c.rejected.Value(),
		BusyWorkers:  c.busyWorkers,
		QueueLength:  c.queue.len(),
		LiveSessions: c.sessions.Live(),
	}
}

// Throughput returns the completion rate (requests/second) over the last
// 10 seconds at the current instant.
func (c *Container) Throughput() float64 {
	return c.throughput.Rate(c.clock.Now())
}

// ResponseTimes returns the response-time histogram (seconds).
func (c *Container) ResponseTimes() *metrics.Histogram { return c.respTimes }

// InteractionCount returns completions of one interaction.
func (c *Container) InteractionCount(name string) int64 {
	if v, ok := c.perInter.Load(name); ok {
		return v.(*metrics.Counter).Value()
	}
	return 0
}

package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrNoSuchTable reports a reference to an unknown table.
var ErrNoSuchTable = errors.New("sqldb: no such table")

// DB is a named collection of tables with engine-wide statistics.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table

	queries     atomic.Int64
	rowsScanned atomic.Int64
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable adds a table described by schema.
func (db *DB) CreateTable(schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[schema.Name]; dup {
		return nil, fmt.Errorf("sqldb: table %q already exists", schema.Name)
	}
	t := newTable(schema)
	db.tables[schema.Name] = t
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return t, nil
}

// TableNames lists the tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EngineStats aggregates engine-wide counters.
type EngineStats struct {
	Queries     int64
	RowsScanned int64
}

// Stats returns engine-wide counters (selects only; point reads and writes
// are charged one scanned row each).
func (db *DB) Stats() EngineStats {
	return EngineStats{
		Queries:     db.queries.Load(),
		RowsScanned: db.rowsScanned.Load(),
	}
}

func (db *DB) charge(queries, scanned int64) {
	db.queries.Add(queries)
	db.rowsScanned.Add(scanned)
}

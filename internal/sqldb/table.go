package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Row-level errors.
var (
	ErrNoSuchRow    = errors.New("sqldb: no such row")
	ErrDuplicateKey = errors.New("sqldb: duplicate primary key")
	ErrNoSuchColumn = errors.New("sqldb: no such column")
)

// Table is one table: rows keyed by primary key plus optional secondary
// hash indexes. Tables are safe for concurrent use.
type Table struct {
	schema Schema
	pkIdx  int

	mu      sync.RWMutex
	rows    map[any]Row
	order   []any // insertion order of live keys
	indexes map[string]map[any][]any
	autoinc int64
}

func newTable(s Schema) *Table {
	return &Table{
		schema:  s,
		pkIdx:   s.colIndex(s.PrimaryKey),
		rows:    make(map[any]Row),
		indexes: make(map[string]map[any][]any),
	}
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// CreateIndex builds a secondary hash index on col. Only Eq predicates use
// indexes. Creating an existing index is a no-op.
func (t *Table) CreateIndex(col string) error {
	ci := t.schema.colIndex(col)
	if ci < 0 {
		return fmt.Errorf("%w: %q in %q", ErrNoSuchColumn, col, t.schema.Name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[col]; ok {
		return nil
	}
	idx := make(map[any][]any)
	for _, key := range t.order {
		v := t.rows[key][ci]
		idx[v] = append(idx[v], key)
	}
	t.indexes[col] = idx
	return nil
}

// Insert adds row and returns its primary key. A nil Int64 primary key
// auto-increments. Column values are type-checked.
func (t *Table) Insert(row Row) (any, error) {
	if len(row) != len(t.schema.Columns) {
		return nil, fmt.Errorf("sqldb: row width %d, table %q has %d columns",
			len(row), t.schema.Name, len(t.schema.Columns))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// One copy serves both the autoincrement fill-in and the table's
	// ownership of the stored row.
	stored := append(Row(nil), row...)
	if stored[t.pkIdx] == nil && t.schema.Columns[t.pkIdx].Type == Int64 {
		t.autoinc++
		stored[t.pkIdx] = t.autoinc
	}
	for i, c := range t.schema.Columns {
		if err := checkValue(c.Type, stored[i]); err != nil {
			return nil, fmt.Errorf("column %q: %w", c.Name, err)
		}
	}
	key := stored[t.pkIdx]
	if _, dup := t.rows[key]; dup {
		return nil, fmt.Errorf("%w: %v in %q", ErrDuplicateKey, key, t.schema.Name)
	}
	t.rows[key] = stored
	t.order = append(t.order, key)
	for col, idx := range t.indexes {
		v := stored[t.schema.colIndex(col)]
		idx[v] = append(idx[v], key)
	}
	// Keep auto-increment ahead of explicit integer keys.
	if k, ok := key.(int64); ok && k > t.autoinc {
		t.autoinc = k
	}
	return key, nil
}

// Get returns a copy of the row with the given primary key.
func (t *Table) Get(pk any) (Row, bool) {
	return t.getRow(pk, nil)
}

// getRow copies the row with the given primary key into buf (reusing its
// capacity) and returns it. Conn.Get passes its connection-owned buffer
// here, which is what makes point reads allocation-free at steady state.
func (t *Table) getRow(pk any, buf Row) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.rows[pk]
	if !ok {
		return nil, false
	}
	return append(buf[:0], r...), true
}

// UpdateCol applies a single column=value assignment to the row with the
// given primary key — the allocation-free form hot write paths use
// instead of building a one-entry map.
func (t *Table) UpdateCol(pk any, col string, val any) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.rows[pk]
	if !ok {
		return fmt.Errorf("%w: %v in %q", ErrNoSuchRow, pk, t.schema.Name)
	}
	ci := t.schema.colIndex(col)
	if ci < 0 {
		return fmt.Errorf("%w: %q in %q", ErrNoSuchColumn, col, t.schema.Name)
	}
	if ci == t.pkIdx {
		return fmt.Errorf("sqldb: cannot update primary key of %q", t.schema.Name)
	}
	if err := checkValue(t.schema.Columns[ci].Type, val); err != nil {
		return fmt.Errorf("column %q: %w", col, err)
	}
	if idx, ok := t.indexes[col]; ok {
		old := r[ci]
		idx[old] = removeKey(idx[old], pk)
		if len(idx[old]) == 0 {
			delete(idx, old)
		}
		idx[val] = append(idx[val], pk)
	}
	r[ci] = val
	return nil
}

// Update applies the column=value assignments in set to the row with the
// given primary key. The primary key column cannot be updated.
func (t *Table) Update(pk any, set map[string]any) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.rows[pk]
	if !ok {
		return fmt.Errorf("%w: %v in %q", ErrNoSuchRow, pk, t.schema.Name)
	}
	for col, v := range set {
		ci := t.schema.colIndex(col)
		if ci < 0 {
			return fmt.Errorf("%w: %q in %q", ErrNoSuchColumn, col, t.schema.Name)
		}
		if ci == t.pkIdx {
			return fmt.Errorf("sqldb: cannot update primary key of %q", t.schema.Name)
		}
		if err := checkValue(t.schema.Columns[ci].Type, v); err != nil {
			return fmt.Errorf("column %q: %w", col, err)
		}
	}
	for col, v := range set {
		ci := t.schema.colIndex(col)
		if idx, ok := t.indexes[col]; ok {
			old := r[ci]
			idx[old] = removeKey(idx[old], pk)
			if len(idx[old]) == 0 {
				delete(idx, old)
			}
			idx[v] = append(idx[v], pk)
		}
		r[ci] = v
	}
	return nil
}

// Delete removes the row with the given primary key, reporting whether it
// existed.
func (t *Table) Delete(pk any) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.rows[pk]
	if !ok {
		return false
	}
	for col, idx := range t.indexes {
		v := r[t.schema.colIndex(col)]
		idx[v] = removeKey(idx[v], pk)
		if len(idx[v]) == 0 {
			delete(idx, v)
		}
	}
	delete(t.rows, pk)
	for i, k := range t.order {
		if k == pk {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	return true
}

func removeKey(keys []any, pk any) []any {
	for i, k := range keys {
		if k == pk {
			return append(keys[:i], keys[i+1:]...)
		}
	}
	return keys
}

// queryScratch is the reusable storage one Select fills: the candidate
// key buffer, the result row headers and the flat value arena the rows
// point into. A Conn owns one and passes it to every selectRows, so the
// per-query make-and-copy of the result set amortises to zero once the
// buffers have grown to the connection's working set.
type queryScratch struct {
	keys   []any
	rows   []Row
	arena  []any
	sorter rowSorter
}

// selectRows evaluates q and returns copies of the matching rows plus the
// number of rows scanned (the cost driver). An Eq predicate on the primary
// key or an indexed column narrows the scan; otherwise the whole table is
// walked in insertion order. The returned rows live in sc's buffers and
// are valid until sc is next reused (the Conn borrow contract); a nil sc
// falls back to fresh allocations.
func (t *Table) selectRows(q Query, sc *queryScratch) ([]Row, int64, error) {
	if sc == nil {
		sc = &queryScratch{}
	}
	t.mu.RLock()
	defer t.mu.RUnlock()

	candidates := t.candidatesLocked(q, sc.keys[:0])
	sc.keys = candidates[:0]
	var scanned int64
	out := sc.rows[:0]
	arena := sc.arena[:0]
	for _, key := range candidates {
		r, ok := t.rows[key]
		if !ok {
			continue
		}
		scanned++
		match, err := q.matches(t.schema, r)
		if err != nil {
			sc.rows, sc.arena = out[:0], arena[:0]
			return nil, scanned, err
		}
		if match {
			// Copy the row into the arena. A grow may move the arena to a
			// new backing array; rows appended earlier keep pointing at the
			// old one, which still holds their (already copied) values —
			// correctness is unaffected, and the arena reaches a stable
			// capacity after the first few queries.
			base := len(arena)
			arena = append(arena, r...)
			out = append(out, arena[base:len(arena):len(arena)])
		}
	}
	sc.rows, sc.arena = out, arena
	if q.OrderBy != "" {
		ci := t.schema.colIndex(q.OrderBy)
		if ci < 0 {
			return nil, scanned, fmt.Errorf("%w: order by %q in %q", ErrNoSuchColumn, q.OrderBy, t.schema.Name)
		}
		sc.sorter = rowSorter{rows: out, ci: ci, ct: t.schema.Columns[ci].Type, desc: q.Desc}
		sort.Stable(&sc.sorter)
		if err := sc.sorter.err; err != nil {
			sc.sorter.rows = nil
			return nil, scanned, err
		}
		sc.sorter.rows = nil
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out, scanned, nil
}

// rowSorter orders result rows by one column without the per-call
// closure and reflection machinery of sort.Slice. It records the first
// comparison error instead of failing mid-sort, as the closure-based
// sort did.
type rowSorter struct {
	rows []Row
	ci   int
	ct   ColType
	desc bool
	err  error
}

func (s *rowSorter) Len() int { return len(s.rows) }

func (s *rowSorter) Swap(i, j int) { s.rows[i], s.rows[j] = s.rows[j], s.rows[i] }

func (s *rowSorter) Less(i, j int) bool {
	c, err := compare(s.ct, s.rows[i][s.ci], s.rows[j][s.ci])
	if err != nil && s.err == nil {
		s.err = err
	}
	if s.desc {
		return c > 0
	}
	return c < 0
}

// candidatesLocked picks the narrowest key set for the query, appending
// into buf: an Eq predicate on the primary key, then an Eq predicate on
// an indexed column, then the full table.
func (t *Table) candidatesLocked(q Query, buf []any) []any {
	for _, p := range q.Where {
		if p.Op == Eq && p.Col == t.schema.PrimaryKey {
			if _, ok := t.rows[p.Val]; ok {
				return append(buf, p.Val)
			}
			return buf
		}
	}
	for _, p := range q.Where {
		if p.Op != Eq {
			continue
		}
		if idx, ok := t.indexes[p.Col]; ok {
			return append(buf, idx[p.Val]...)
		}
	}
	return append(buf, t.order...)
}

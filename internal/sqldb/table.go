package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Row-level errors.
var (
	ErrNoSuchRow    = errors.New("sqldb: no such row")
	ErrDuplicateKey = errors.New("sqldb: duplicate primary key")
	ErrNoSuchColumn = errors.New("sqldb: no such column")
)

// Table is one table: rows keyed by primary key plus optional secondary
// hash indexes. Tables are safe for concurrent use.
type Table struct {
	schema Schema
	pkIdx  int

	mu      sync.RWMutex
	rows    map[any]Row
	order   []any // insertion order of live keys
	indexes map[string]map[any][]any
	autoinc int64
}

func newTable(s Schema) *Table {
	return &Table{
		schema:  s,
		pkIdx:   s.colIndex(s.PrimaryKey),
		rows:    make(map[any]Row),
		indexes: make(map[string]map[any][]any),
	}
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// CreateIndex builds a secondary hash index on col. Only Eq predicates use
// indexes. Creating an existing index is a no-op.
func (t *Table) CreateIndex(col string) error {
	ci := t.schema.colIndex(col)
	if ci < 0 {
		return fmt.Errorf("%w: %q in %q", ErrNoSuchColumn, col, t.schema.Name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[col]; ok {
		return nil
	}
	idx := make(map[any][]any)
	for _, key := range t.order {
		v := t.rows[key][ci]
		idx[v] = append(idx[v], key)
	}
	t.indexes[col] = idx
	return nil
}

// Insert adds row and returns its primary key. A nil Int64 primary key
// auto-increments. Column values are type-checked.
func (t *Table) Insert(row Row) (any, error) {
	if len(row) != len(t.schema.Columns) {
		return nil, fmt.Errorf("sqldb: row width %d, table %q has %d columns",
			len(row), t.schema.Name, len(t.schema.Columns))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if row[t.pkIdx] == nil && t.schema.Columns[t.pkIdx].Type == Int64 {
		t.autoinc++
		row = append(Row(nil), row...)
		row[t.pkIdx] = t.autoinc
	}
	for i, c := range t.schema.Columns {
		if err := checkValue(c.Type, row[i]); err != nil {
			return nil, fmt.Errorf("column %q: %w", c.Name, err)
		}
	}
	key := row[t.pkIdx]
	if _, dup := t.rows[key]; dup {
		return nil, fmt.Errorf("%w: %v in %q", ErrDuplicateKey, key, t.schema.Name)
	}
	stored := append(Row(nil), row...)
	t.rows[key] = stored
	t.order = append(t.order, key)
	for col, idx := range t.indexes {
		v := stored[t.schema.colIndex(col)]
		idx[v] = append(idx[v], key)
	}
	// Keep auto-increment ahead of explicit integer keys.
	if k, ok := key.(int64); ok && k > t.autoinc {
		t.autoinc = k
	}
	return key, nil
}

// Get returns a copy of the row with the given primary key.
func (t *Table) Get(pk any) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.rows[pk]
	if !ok {
		return nil, false
	}
	return append(Row(nil), r...), true
}

// Update applies the column=value assignments in set to the row with the
// given primary key. The primary key column cannot be updated.
func (t *Table) Update(pk any, set map[string]any) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.rows[pk]
	if !ok {
		return fmt.Errorf("%w: %v in %q", ErrNoSuchRow, pk, t.schema.Name)
	}
	for col, v := range set {
		ci := t.schema.colIndex(col)
		if ci < 0 {
			return fmt.Errorf("%w: %q in %q", ErrNoSuchColumn, col, t.schema.Name)
		}
		if ci == t.pkIdx {
			return fmt.Errorf("sqldb: cannot update primary key of %q", t.schema.Name)
		}
		if err := checkValue(t.schema.Columns[ci].Type, v); err != nil {
			return fmt.Errorf("column %q: %w", col, err)
		}
	}
	for col, v := range set {
		ci := t.schema.colIndex(col)
		if idx, ok := t.indexes[col]; ok {
			old := r[ci]
			idx[old] = removeKey(idx[old], pk)
			if len(idx[old]) == 0 {
				delete(idx, old)
			}
			idx[v] = append(idx[v], pk)
		}
		r[ci] = v
	}
	return nil
}

// Delete removes the row with the given primary key, reporting whether it
// existed.
func (t *Table) Delete(pk any) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.rows[pk]
	if !ok {
		return false
	}
	for col, idx := range t.indexes {
		v := r[t.schema.colIndex(col)]
		idx[v] = removeKey(idx[v], pk)
		if len(idx[v]) == 0 {
			delete(idx, v)
		}
	}
	delete(t.rows, pk)
	for i, k := range t.order {
		if k == pk {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	return true
}

func removeKey(keys []any, pk any) []any {
	for i, k := range keys {
		if k == pk {
			return append(keys[:i], keys[i+1:]...)
		}
	}
	return keys
}

// selectRows evaluates q and returns copies of the matching rows plus the
// number of rows scanned (the cost driver). An Eq predicate on the primary
// key or an indexed column narrows the scan; otherwise the whole table is
// walked in insertion order.
func (t *Table) selectRows(q Query) ([]Row, int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()

	candidates := t.candidatesLocked(q)
	var scanned int64
	var out []Row
	for _, key := range candidates {
		r, ok := t.rows[key]
		if !ok {
			continue
		}
		scanned++
		match, err := q.matches(t.schema, r)
		if err != nil {
			return nil, scanned, err
		}
		if match {
			out = append(out, append(Row(nil), r...))
		}
	}
	if q.OrderBy != "" {
		ci := t.schema.colIndex(q.OrderBy)
		if ci < 0 {
			return nil, scanned, fmt.Errorf("%w: order by %q in %q", ErrNoSuchColumn, q.OrderBy, t.schema.Name)
		}
		ct := t.schema.Columns[ci].Type
		var sortErr error
		sort.SliceStable(out, func(i, j int) bool {
			c, err := compare(ct, out[i][ci], out[j][ci])
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if q.Desc {
				return c > 0
			}
			return c < 0
		})
		if sortErr != nil {
			return nil, scanned, sortErr
		}
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out, scanned, nil
}

// candidatesLocked picks the narrowest key set for the query: an Eq
// predicate on the primary key, then an Eq predicate on an indexed column,
// then the full table.
func (t *Table) candidatesLocked(q Query) []any {
	for _, p := range q.Where {
		if p.Op == Eq && p.Col == t.schema.PrimaryKey {
			if _, ok := t.rows[p.Val]; ok {
				return []any{p.Val}
			}
			return nil
		}
	}
	for _, p := range q.Where {
		if p.Op != Eq {
			continue
		}
		if idx, ok := t.indexes[p.Col]; ok {
			return append([]any(nil), idx[p.Val]...)
		}
	}
	return append([]any(nil), t.order...)
}

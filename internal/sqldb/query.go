package sqldb

import (
	"bytes"
	"fmt"
	"strings"
)

// Op is a predicate comparison operator.
type Op int

// Supported operators. Contains applies to String columns only
// (substring match, the engine's LIKE '%x%').
const (
	Eq Op = iota
	Ne
	Lt
	Le
	Gt
	Ge
	Contains
)

func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Contains:
		return "CONTAINS"
	default:
		return "?"
	}
}

// Pred is one WHERE predicate; a query's predicates are ANDed.
type Pred struct {
	Col string
	Op  Op
	Val any
}

// Query selects rows: ANDed predicates, optional ordering and limit.
// The zero Query selects everything.
type Query struct {
	Where   []Pred
	OrderBy string // column name; empty for storage order
	Desc    bool
	Limit   int // 0 means no limit
}

// Where is a convenience constructor for a single-predicate query.
func Where(col string, op Op, val any) Query {
	return Query{Where: []Pred{{Col: col, Op: op, Val: val}}}
}

// And appends a predicate, returning the updated query for chaining.
func (q Query) And(col string, op Op, val any) Query {
	q.Where = append(q.Where, Pred{Col: col, Op: op, Val: val})
	return q
}

// Ordered sets the ordering column and direction.
func (q Query) Ordered(col string, desc bool) Query {
	q.OrderBy = col
	q.Desc = desc
	return q
}

// Limited sets the row limit.
func (q Query) Limited(n int) Query {
	q.Limit = n
	return q
}

// matches evaluates all predicates against row r of schema s.
func (q Query) matches(s Schema, r Row) (bool, error) {
	for _, p := range q.Where {
		i := s.colIndex(p.Col)
		if i < 0 {
			return false, fmt.Errorf("sqldb: no column %q in %q", p.Col, s.Name)
		}
		ok, err := evalPred(s.Columns[i].Type, r[i], p.Op, p.Val)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func evalPred(t ColType, have any, op Op, want any) (bool, error) {
	if op == Contains {
		if t != String {
			return false, fmt.Errorf("sqldb: CONTAINS on non-string column type %s", t)
		}
		h, _ := have.(string)
		w, ok := want.(string)
		if !ok {
			return false, fmt.Errorf("%w: CONTAINS wants string, got %T", ErrBadValue, want)
		}
		return strings.Contains(h, w), nil
	}
	c, err := compare(t, have, want)
	if err != nil {
		return false, err
	}
	switch op {
	case Eq:
		return c == 0, nil
	case Ne:
		return c != 0, nil
	case Lt:
		return c < 0, nil
	case Le:
		return c <= 0, nil
	case Gt:
		return c > 0, nil
	case Ge:
		return c >= 0, nil
	default:
		return false, fmt.Errorf("sqldb: unknown operator %d", op)
	}
}

// compare orders two values of column type t.
func compare(t ColType, a, b any) (int, error) {
	if err := checkValue(t, a); err != nil {
		return 0, err
	}
	if err := checkValue(t, b); err != nil {
		return 0, err
	}
	switch t {
	case Int64:
		x, y := a.(int64), b.(int64)
		return cmpOrdered(x, y), nil
	case Float64:
		x, y := a.(float64), b.(float64)
		return cmpOrdered(x, y), nil
	case String:
		return strings.Compare(a.(string), b.(string)), nil
	case Bool:
		x, y := a.(bool), b.(bool)
		switch {
		case x == y:
			return 0, nil
		case !x:
			return -1, nil
		default:
			return 1, nil
		}
	case Bytes:
		return bytes.Compare(a.([]byte), b.([]byte)), nil
	}
	return 0, fmt.Errorf("sqldb: cannot compare type %s", t)
}

func cmpOrdered[T int64 | float64](x, y T) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	default:
		return 0
	}
}

package sqldb

import (
	"fmt"
)

// QueryCost is the work a connection has performed since its cost was last
// reset. The container converts it into simulated service time, which is
// how query shape influences response times and throughput.
type QueryCost struct {
	Queries      int64
	RowsScanned  int64
	RowsReturned int64
}

// Add accumulates other into c.
func (c *QueryCost) Add(other QueryCost) {
	c.Queries += other.Queries
	c.RowsScanned += other.RowsScanned
	c.RowsReturned += other.RowsReturned
}

// Conn is a database connection: the handle DAOs execute through. Each
// Conn tracks the cost of the work it performed. A Conn is not safe for
// concurrent use — exactly like a JDBC connection, one request borrows it
// from the pool, uses it, and returns it.
type Conn struct {
	db         *DB
	pool       *Pool
	cost       QueryCost
	joinPoints int64
}

// Select runs q against the named table.
func (c *Conn) Select(table string, q Query) ([]Row, error) {
	t, err := c.db.Table(table)
	if err != nil {
		return nil, err
	}
	rows, scanned, err := t.selectRows(q)
	c.cost.Queries++
	c.cost.RowsScanned += scanned
	c.cost.RowsReturned += int64(len(rows))
	c.db.charge(1, scanned)
	return rows, err
}

// Get reads one row by primary key.
func (c *Conn) Get(table string, pk any) (Row, bool, error) {
	t, err := c.db.Table(table)
	if err != nil {
		return nil, false, err
	}
	r, ok := t.Get(pk)
	c.cost.Queries++
	c.cost.RowsScanned++
	if ok {
		c.cost.RowsReturned++
	}
	c.db.charge(1, 1)
	return r, ok, nil
}

// Insert adds a row and returns its primary key.
func (c *Conn) Insert(table string, row Row) (any, error) {
	t, err := c.db.Table(table)
	if err != nil {
		return nil, err
	}
	pk, err := t.Insert(row)
	c.cost.Queries++
	c.cost.RowsScanned++
	c.db.charge(1, 1)
	return pk, err
}

// Update modifies the row with the given primary key.
func (c *Conn) Update(table string, pk any, set map[string]any) error {
	t, err := c.db.Table(table)
	if err != nil {
		return err
	}
	err = t.Update(pk, set)
	c.cost.Queries++
	c.cost.RowsScanned++
	c.db.charge(1, 1)
	return err
}

// Delete removes the row with the given primary key.
func (c *Conn) Delete(table string, pk any) (bool, error) {
	t, err := c.db.Table(table)
	if err != nil {
		return false, err
	}
	ok := t.Delete(pk)
	c.cost.Queries++
	c.cost.RowsScanned++
	c.db.charge(1, 1)
	return ok, nil
}

// Cost returns the accumulated cost since the last ResetCost.
func (c *Conn) Cost() QueryCost { return c.cost }

// TraceKey identifies the request flow this connection is bound to (the
// connection itself); see the aspect package's Keyed interface.
func (c *Conn) TraceKey() any { return c }

// JoinPointCrossed implements the aspect package's JoinPointTap: the
// weaver calls it once per advised execution whose first argument is this
// connection, so nested DAO join points are charged to the request the
// connection is bound to rather than read off a process-global counter.
func (c *Conn) JoinPointCrossed() { c.joinPoints++ }

// JoinPointsCrossed returns the advised executions recorded since the
// last ResetCost.
func (c *Conn) JoinPointsCrossed() int64 { return c.joinPoints }

// ResetCost zeroes the accumulated cost; the pool does this on Release.
func (c *Conn) ResetCost() {
	c.cost = QueryCost{}
	c.joinPoints = 0
}

// Pool is a fixed-size connection pool, mirroring the data-source pool a
// J2EE container provides. Acquire blocks when the pool is exhausted,
// which under overload surfaces as queueing — a behaviour the container's
// saturation model depends on.
type Pool struct {
	db    *DB
	conns chan *Conn
	size  int
}

// NewPool creates a pool of size connections against db.
func NewPool(db *DB, size int) *Pool {
	if size <= 0 {
		panic("sqldb: pool size must be positive")
	}
	p := &Pool{db: db, conns: make(chan *Conn, size), size: size}
	for i := 0; i < size; i++ {
		p.conns <- &Conn{db: db, pool: p}
	}
	return p
}

// Size returns the pool capacity.
func (p *Pool) Size() int { return p.size }

// Idle returns the number of idle connections.
func (p *Pool) Idle() int { return len(p.conns) }

// Acquire borrows a connection, blocking until one is free.
func (p *Pool) Acquire() *Conn { return <-p.conns }

// TryAcquire borrows a connection without blocking; it reports whether one
// was available.
func (p *Pool) TryAcquire() (*Conn, bool) {
	select {
	case c := <-p.conns:
		return c, true
	default:
		return nil, false
	}
}

// Release returns a connection to the pool with its cost reset. Releasing
// a foreign or double-released connection panics: both are serious caller
// bugs that would silently distort cost accounting.
func (p *Pool) Release(c *Conn) {
	if c == nil || c.pool != p {
		panic("sqldb: Release of connection not owned by this pool")
	}
	c.ResetCost()
	select {
	case p.conns <- c:
	default:
		panic(fmt.Sprintf("sqldb: pool overflow on Release (size %d)", p.size))
	}
}

package sqldb

import (
	"fmt"
)

// QueryCost is the work a connection has performed since its cost was last
// reset. The container converts it into simulated service time, which is
// how query shape influences response times and throughput.
type QueryCost struct {
	Queries      int64
	RowsScanned  int64
	RowsReturned int64
}

// Add accumulates other into c.
func (c *QueryCost) Add(other QueryCost) {
	c.Queries += other.Queries
	c.RowsScanned += other.RowsScanned
	c.RowsReturned += other.RowsReturned
}

// Conn is a database connection: the handle DAOs execute through. Each
// Conn tracks the cost of the work it performed. A Conn is not safe for
// concurrent use — exactly like a JDBC connection, one request borrows it
// from the pool, uses it, and returns it.
//
// Result borrow contract: rows returned by Select and Get are stored in
// connection-owned scratch buffers that the next operation on the same
// Conn reuses. They are valid until that next operation; callers that
// need a row beyond it must copy it first. This is what makes the query
// hot path allocation-free at steady state — the same discipline the
// monitoring plane's borrowed-batch SampleObserver contract applies to
// sampling rounds.
type Conn struct {
	db         *DB
	pool       *Pool
	cost       QueryCost
	joinPoints int64

	// flowMark is an 8-byte per-flow scratch slot for monitoring advice
	// (the heap level at before-advice); see SetFlowMark.
	flowMark    int64
	flowMarkSet bool

	// stash is an arbitrary per-connection scratch object application
	// layers attach (the TPC-W DAOs keep their reusable result buffers
	// here); see Stash.
	stash any

	// argScratch backs CallArgs so woven DAO invocations build their
	// variadic argument slice without allocating.
	argScratch [6]any

	rowBuf  Row // Get result buffer
	scratch queryScratch
}

// Select runs q against the named table. The returned rows are valid
// until the next operation on this Conn (see the borrow contract in the
// Conn doc).
func (c *Conn) Select(table string, q Query) ([]Row, error) {
	t, err := c.db.Table(table)
	if err != nil {
		return nil, err
	}
	rows, scanned, err := t.selectRows(q, &c.scratch)
	c.cost.Queries++
	c.cost.RowsScanned += scanned
	c.cost.RowsReturned += int64(len(rows))
	c.db.charge(1, scanned)
	return rows, err
}

// Get reads one row by primary key. The returned row is valid until the
// next operation on this Conn (see the borrow contract in the Conn doc).
func (c *Conn) Get(table string, pk any) (Row, bool, error) {
	t, err := c.db.Table(table)
	if err != nil {
		return nil, false, err
	}
	r, ok := t.getRow(pk, c.rowBuf)
	if ok {
		c.rowBuf = r
	}
	c.cost.Queries++
	c.cost.RowsScanned++
	if ok {
		c.cost.RowsReturned++
	}
	c.db.charge(1, 1)
	return r, ok, nil
}

// Insert adds a row and returns its primary key.
func (c *Conn) Insert(table string, row Row) (any, error) {
	t, err := c.db.Table(table)
	if err != nil {
		return nil, err
	}
	pk, err := t.Insert(row)
	c.cost.Queries++
	c.cost.RowsScanned++
	c.db.charge(1, 1)
	return pk, err
}

// Update modifies the row with the given primary key.
func (c *Conn) Update(table string, pk any, set map[string]any) error {
	t, err := c.db.Table(table)
	if err != nil {
		return err
	}
	err = t.Update(pk, set)
	c.cost.Queries++
	c.cost.RowsScanned++
	c.db.charge(1, 1)
	return err
}

// UpdateCol modifies one column of the row with the given primary key —
// the single-assignment form of Update that spares hot write paths the
// per-call map literal.
func (c *Conn) UpdateCol(table string, pk any, col string, val any) error {
	t, err := c.db.Table(table)
	if err != nil {
		return err
	}
	err = t.UpdateCol(pk, col, val)
	c.cost.Queries++
	c.cost.RowsScanned++
	c.db.charge(1, 1)
	return err
}

// Delete removes the row with the given primary key.
func (c *Conn) Delete(table string, pk any) (bool, error) {
	t, err := c.db.Table(table)
	if err != nil {
		return false, err
	}
	ok := t.Delete(pk)
	c.cost.Queries++
	c.cost.RowsScanned++
	c.db.charge(1, 1)
	return ok, nil
}

// Cost returns the accumulated cost since the last ResetCost.
func (c *Conn) Cost() QueryCost { return c.cost }

// TraceKey identifies the request flow this connection is bound to (the
// connection itself); see the aspect package's Keyed interface.
func (c *Conn) TraceKey() any { return c }

// JoinPointCrossed implements the aspect package's JoinPointTap: the
// weaver calls it once per advised execution whose first argument is this
// connection, so nested DAO join points are charged to the request the
// connection is bound to rather than read off a process-global counter.
func (c *Conn) JoinPointCrossed() { c.joinPoints++ }

// JoinPointsCrossed returns the advised executions recorded since the
// last ResetCost.
func (c *Conn) JoinPointsCrossed() int64 { return c.joinPoints }

// SetFlowMark stores a per-flow monitoring scratch value on the
// connection. Monitoring advice that brackets an execution (the AC's
// before/after heap snapshot) keys its open state by flow; an inline slot
// on the flow object itself replaces a per-execution map entry, which is
// what keeps always-on instrumentation off the garbage collector's back.
func (c *Conn) SetFlowMark(v int64) { c.flowMark, c.flowMarkSet = v, true }

// FlowMark returns the stored per-flow mark and whether one is set.
func (c *Conn) FlowMark() (int64, bool) { return c.flowMark, c.flowMarkSet }

// ClearFlowMark removes the per-flow mark.
func (c *Conn) ClearFlowMark() { c.flowMarkSet = false }

// Stash returns the per-connection scratch object set by SetStash (nil
// when unset). Application layers use it to keep reusable result buffers
// with the connection they borrow — the stash survives Release, so a
// pooled connection's scratch warms up once and is reused by every
// request that later borrows it.
func (c *Conn) Stash() any { return c.stash }

// SetStash attaches a per-connection scratch object.
func (c *Conn) SetStash(v any) { c.stash = v }

// Args2 (and its siblings) assemble a variadic argument slice in
// connection-owned scratch, so woven DAO invocations (func(args ...any))
// pass their arguments without allocating a fresh slice per call. The
// fixed arity is what keeps the call itself allocation-free — a variadic
// helper would just move the slice literal to the caller. The returned
// slice is valid until the next ArgsN on this Conn; it must not be
// retained — the same borrow discipline as query results.
func (c *Conn) Args2(a0, a1 any) []any {
	c.argScratch[0], c.argScratch[1] = a0, a1
	return c.argScratch[:2]
}

// Args3 is Args2 for three arguments.
func (c *Conn) Args3(a0, a1, a2 any) []any {
	c.argScratch[0], c.argScratch[1], c.argScratch[2] = a0, a1, a2
	return c.argScratch[:3]
}

// Args4 is Args2 for four arguments.
func (c *Conn) Args4(a0, a1, a2, a3 any) []any {
	c.argScratch[0], c.argScratch[1], c.argScratch[2], c.argScratch[3] = a0, a1, a2, a3
	return c.argScratch[:4]
}

// ResetCost zeroes the accumulated cost; the pool does this on Release.
func (c *Conn) ResetCost() {
	c.cost = QueryCost{}
	c.joinPoints = 0
	c.flowMarkSet = false
}

// Pool is a fixed-size connection pool, mirroring the data-source pool a
// J2EE container provides. Acquire blocks when the pool is exhausted,
// which under overload surfaces as queueing — a behaviour the container's
// saturation model depends on.
type Pool struct {
	db    *DB
	conns chan *Conn
	size  int
}

// NewPool creates a pool of size connections against db.
func NewPool(db *DB, size int) *Pool {
	if size <= 0 {
		panic("sqldb: pool size must be positive")
	}
	p := &Pool{db: db, conns: make(chan *Conn, size), size: size}
	for i := 0; i < size; i++ {
		p.conns <- &Conn{db: db, pool: p}
	}
	return p
}

// Size returns the pool capacity.
func (p *Pool) Size() int { return p.size }

// Idle returns the number of idle connections.
func (p *Pool) Idle() int { return len(p.conns) }

// Acquire borrows a connection, blocking until one is free.
func (p *Pool) Acquire() *Conn { return <-p.conns }

// TryAcquire borrows a connection without blocking; it reports whether one
// was available.
func (p *Pool) TryAcquire() (*Conn, bool) {
	select {
	case c := <-p.conns:
		return c, true
	default:
		return nil, false
	}
}

// Release returns a connection to the pool with its cost reset. Releasing
// a foreign or double-released connection panics: both are serious caller
// bugs that would silently distort cost accounting.
func (p *Pool) Release(c *Conn) {
	if c == nil || c.pool != p {
		panic("sqldb: Release of connection not owned by this pool")
	}
	c.ResetCost()
	select {
	case p.conns <- c:
	default:
		panic(fmt.Sprintf("sqldb: pool overflow on Release (size %d)", p.size))
	}
}

// Package sqldb is the in-memory relational storage engine the TPC-W
// application runs against — the reproduction's stand-in for the paper's
// MySQL 5 server. It supports typed schemas, primary keys with
// auto-increment, secondary hash indexes, predicate scans with ordering and
// limits, and per-connection cost accounting (queries issued, rows scanned,
// rows returned). The cost figures drive the simulation's service-time
// model, so query shape — index hit vs. full scan — affects virtual
// latency the way it would on a real database.
package sqldb

import (
	"errors"
	"fmt"
)

// ColType is the type of a column.
type ColType int

// Supported column types.
const (
	Int64 ColType = iota
	Float64
	String
	Bool
	Bytes
)

func (t ColType) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	case Bool:
		return "bool"
	case Bytes:
		return "bytes"
	default:
		return "unknown"
	}
}

// Column describes one column of a table.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table: its columns and primary key. The primary key
// must be an Int64 or String column; Int64 keys auto-increment when a row
// is inserted with a nil key value.
type Schema struct {
	Name       string
	Columns    []Column
	PrimaryKey string
}

// Validation errors.
var (
	ErrBadSchema = errors.New("sqldb: bad schema")
	ErrBadValue  = errors.New("sqldb: value does not match column type")
)

// Validate checks the schema for structural problems.
func (s Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("%w: empty table name", ErrBadSchema)
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("%w: table %q has no columns", ErrBadSchema, s.Name)
	}
	seen := make(map[string]ColType, len(s.Columns))
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("%w: empty column name in %q", ErrBadSchema, s.Name)
		}
		if _, dup := seen[c.Name]; dup {
			return fmt.Errorf("%w: duplicate column %q in %q", ErrBadSchema, c.Name, s.Name)
		}
		seen[c.Name] = c.Type
	}
	pkType, ok := seen[s.PrimaryKey]
	if !ok {
		return fmt.Errorf("%w: primary key %q is not a column of %q", ErrBadSchema, s.PrimaryKey, s.Name)
	}
	if pkType != Int64 && pkType != String {
		return fmt.Errorf("%w: primary key %q must be int64 or string", ErrBadSchema, s.PrimaryKey)
	}
	return nil
}

// colIndex returns the position of column name, or -1.
func (s Schema) colIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// checkValue verifies that v is assignable to a column of type t. Nil is
// never assignable; absent values must be explicit zero values.
func checkValue(t ColType, v any) error {
	ok := false
	switch t {
	case Int64:
		_, ok = v.(int64)
	case Float64:
		_, ok = v.(float64)
	case String:
		_, ok = v.(string)
	case Bool:
		_, ok = v.(bool)
	case Bytes:
		_, ok = v.([]byte)
	}
	if !ok {
		return fmt.Errorf("%w: %T is not %s", ErrBadValue, v, t)
	}
	return nil
}

// Row is one table row, with values in schema column order.
type Row []any

// Get returns the value of the named column given the row's schema.
func (s Schema) Get(r Row, col string) (any, error) {
	i := s.colIndex(col)
	if i < 0 {
		return nil, fmt.Errorf("sqldb: no column %q in %q", col, s.Name)
	}
	return r[i], nil
}

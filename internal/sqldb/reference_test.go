package sqldb

import (
	"sort"
	"testing"
	"testing/quick"
)

// refSelect is a naive reference implementation of query evaluation used
// to cross-check the engine: filter all rows, sort, limit.
func refSelect(rows []Row, s Schema, q Query) ([]Row, error) {
	var out []Row
	for _, r := range rows {
		ok, err := q.matches(s, r)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, append(Row(nil), r...))
		}
	}
	if q.OrderBy != "" {
		ci := s.colIndex(q.OrderBy)
		ct := s.Columns[ci].Type
		sort.SliceStable(out, func(i, j int) bool {
			c, _ := compare(ct, out[i][ci], out[j][ci])
			if q.Desc {
				return c > 0
			}
			return c < 0
		})
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out, nil
}

// TestSelectMatchesReference cross-checks the engine (with its index
// shortcuts) against the naive reference over randomized tables and
// queries.
func TestSelectMatchesReference(t *testing.T) {
	type spec struct {
		Stocks   []uint8 // row data
		Subject  uint8   // subject selector
		UseIndex bool
		Gt       bool
		Desc     bool
		Limit    uint8
	}
	subjects := []string{"ARTS", "BIO", "CS"}
	f := func(sp spec) bool {
		db := NewDB()
		tb, err := db.CreateTable(bookSchema())
		if err != nil {
			return false
		}
		var raw []Row
		for i, st := range sp.Stocks {
			row := Row{nil, "Book", subjects[i%3], float64(i), int64(st)}
			pk, err := tb.Insert(row)
			if err != nil {
				return false
			}
			stored, _ := tb.Get(pk)
			raw = append(raw, stored)
		}
		if sp.UseIndex {
			if err := tb.CreateIndex("i_subject"); err != nil {
				return false
			}
		}
		q := Where("i_subject", Eq, subjects[int(sp.Subject)%3])
		if sp.Gt {
			q = q.And("i_stock", Gt, int64(100))
		}
		q = q.Ordered("i_cost", sp.Desc).Limited(int(sp.Limit % 8))

		got, _, err := tb.selectRows(q, nil)
		if err != nil {
			return false
		}
		want, err := refSelect(raw, tb.Schema(), q)
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestIndexInvariant checks that index maintenance keeps query results
// identical across a random sequence of inserts, updates and deletes.
func TestIndexInvariant(t *testing.T) {
	type op struct {
		Kind    uint8
		Key     uint8
		Subject uint8
	}
	subjects := []string{"ARTS", "BIO", "CS"}
	f := func(ops []op) bool {
		indexed := NewDB()
		plain := NewDB()
		ti, _ := indexed.CreateTable(bookSchema())
		tp, _ := plain.CreateTable(bookSchema())
		if err := ti.CreateIndex("i_subject"); err != nil {
			return false
		}
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0: // insert
				row := Row{nil, "B", subjects[int(o.Subject)%3], 1.0, int64(o.Key)}
				if _, err := ti.Insert(row); err != nil {
					return false
				}
				if _, err := tp.Insert(row); err != nil {
					return false
				}
			case 1: // update
				pk := int64(o.Key%16) + 1
				set := map[string]any{"i_subject": subjects[int(o.Subject)%3]}
				e1 := ti.Update(pk, set)
				e2 := tp.Update(pk, set)
				if (e1 == nil) != (e2 == nil) {
					return false
				}
			case 2: // delete
				pk := int64(o.Key%16) + 1
				if ti.Delete(pk) != tp.Delete(pk) {
					return false
				}
			}
		}
		for _, subj := range subjects {
			a, _, err := ti.selectRows(Where("i_subject", Eq, subj).Ordered("i_id", false), nil)
			if err != nil {
				return false
			}
			b, _, err := tp.selectRows(Where("i_subject", Eq, subj).Ordered("i_id", false), nil)
			if err != nil {
				return false
			}
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i][0] != b[i][0] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

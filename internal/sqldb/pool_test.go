package sqldb

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func newPoolDB(t *testing.T) (*DB, *Pool) {
	t.Helper()
	db := NewDB()
	if _, err := db.CreateTable(bookSchema()); err != nil {
		t.Fatal(err)
	}
	return db, NewPool(db, 2)
}

func TestDBCreateAndLookup(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable(bookSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(bookSchema()); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := db.Table("item"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("ghost"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("ghost table err = %v", err)
	}
	if names := db.TableNames(); len(names) != 1 || names[0] != "item" {
		t.Fatalf("TableNames = %v", names)
	}
	if _, err := db.CreateTable(Schema{}); err == nil {
		t.Fatal("invalid schema accepted")
	}
}

func TestConnCostAccounting(t *testing.T) {
	db, pool := newPoolDB(t)
	c := pool.Acquire()
	defer pool.Release(c)
	for i := 0; i < 5; i++ {
		if _, err := c.Insert("item", Row{nil, "B", "ARTS", 1.0, int64(9)}); err != nil {
			t.Fatal(err)
		}
	}
	c.ResetCost()
	rows, err := c.Select("item", Where("i_subject", Eq, "ARTS"))
	if err != nil || len(rows) != 5 {
		t.Fatalf("select = %d rows, %v", len(rows), err)
	}
	cost := c.Cost()
	if cost.Queries != 1 || cost.RowsScanned != 5 || cost.RowsReturned != 5 {
		t.Fatalf("cost = %+v", cost)
	}
	if _, ok, err := c.Get("item", int64(1)); err != nil || !ok {
		t.Fatal("Get failed")
	}
	if err := c.Update("item", int64(1), map[string]any{"i_stock": int64(8)}); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Delete("item", int64(5)); err != nil || !ok {
		t.Fatal("Delete failed")
	}
	cost = c.Cost()
	if cost.Queries != 4 {
		t.Fatalf("queries = %d, want 4", cost.Queries)
	}
	st := db.Stats()
	if st.Queries < 4 {
		t.Fatalf("engine queries = %d", st.Queries)
	}
}

func TestConnErrorsOnGhostTable(t *testing.T) {
	_, pool := newPoolDB(t)
	c := pool.Acquire()
	defer pool.Release(c)
	if _, err := c.Select("ghost", Query{}); err == nil {
		t.Fatal("select ghost table succeeded")
	}
	if _, _, err := c.Get("ghost", int64(1)); err == nil {
		t.Fatal("get ghost table succeeded")
	}
	if _, err := c.Insert("ghost", Row{}); err == nil {
		t.Fatal("insert ghost table succeeded")
	}
	if err := c.Update("ghost", int64(1), nil); err == nil {
		t.Fatal("update ghost table succeeded")
	}
	if _, err := c.Delete("ghost", int64(1)); err == nil {
		t.Fatal("delete ghost table succeeded")
	}
}

func TestPoolAcquireRelease(t *testing.T) {
	_, pool := newPoolDB(t)
	if pool.Size() != 2 || pool.Idle() != 2 {
		t.Fatalf("size=%d idle=%d", pool.Size(), pool.Idle())
	}
	c1 := pool.Acquire()
	c2, ok := pool.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire failed with idle connection")
	}
	if _, ok := pool.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded on empty pool")
	}
	pool.Release(c1)
	pool.Release(c2)
	if pool.Idle() != 2 {
		t.Fatalf("idle = %d after releases", pool.Idle())
	}
}

func TestPoolReleaseResetsCost(t *testing.T) {
	_, pool := newPoolDB(t)
	c := pool.Acquire()
	if _, err := c.Insert("item", Row{nil, "B", "ARTS", 1.0, int64(9)}); err != nil {
		t.Fatal(err)
	}
	pool.Release(c)
	c2 := pool.Acquire()
	defer pool.Release(c2)
	if c2.Cost() != (QueryCost{}) {
		t.Fatalf("cost not reset: %+v", c2.Cost())
	}
}

func TestPoolForeignReleasePanics(t *testing.T) {
	_, p1 := newPoolDB(t)
	_, p2 := newPoolDB(t)
	c := p1.Acquire()
	defer func() {
		if recover() == nil {
			t.Fatal("foreign release did not panic")
		}
	}()
	p2.Release(c)
}

func TestPoolBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size pool did not panic")
		}
	}()
	NewPool(NewDB(), 0)
}

func TestQueryCostAdd(t *testing.T) {
	a := QueryCost{Queries: 1, RowsScanned: 2, RowsReturned: 3}
	a.Add(QueryCost{Queries: 10, RowsScanned: 20, RowsReturned: 30})
	if a.Queries != 11 || a.RowsScanned != 22 || a.RowsReturned != 33 {
		t.Fatalf("Add = %+v", a)
	}
}

func TestPoolConcurrentBorrowers(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable(bookSchema()); err != nil {
		t.Fatal(err)
	}
	pool := NewPool(db, 4)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c := pool.Acquire()
				_, _ = c.Insert("item", Row{nil, "B", "ARTS", 1.0, int64(1)})
				_, _ = c.Select("item", Where("i_subject", Eq, "ARTS").Limited(1))
				pool.Release(c)
			}
		}()
	}
	wg.Wait()
	tb, _ := db.Table("item")
	if tb.Len() != 16*50 {
		t.Fatalf("rows = %d, want %d", tb.Len(), 16*50)
	}
	if pool.Idle() != 4 {
		t.Fatalf("idle = %d", pool.Idle())
	}
}

func TestInsertSelectRoundTrip(t *testing.T) {
	// Property: every inserted row is retrievable by its returned key
	// and equal to what was inserted.
	f := func(title string, cost float64, stock uint16) bool {
		if cost != cost || cost > 1e300 || cost < -1e300 { // NaN/huge guard
			return true
		}
		db := NewDB()
		tb, err := db.CreateTable(bookSchema())
		if err != nil {
			return false
		}
		pk, err := tb.Insert(Row{nil, title, "ARTS", cost, int64(stock)})
		if err != nil {
			return false
		}
		r, ok := tb.Get(pk)
		return ok && r[1].(string) == title && r[3].(float64) == cost && r[4].(int64) == int64(stock)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package sqldb

import (
	"errors"
	"testing"
)

func bookSchema() Schema {
	return Schema{
		Name: "item",
		Columns: []Column{
			{Name: "i_id", Type: Int64},
			{Name: "i_title", Type: String},
			{Name: "i_subject", Type: String},
			{Name: "i_cost", Type: Float64},
			{Name: "i_stock", Type: Int64},
		},
		PrimaryKey: "i_id",
	}
}

func newBookTable(t *testing.T, n int) *Table {
	t.Helper()
	db := NewDB()
	tb, err := db.CreateTable(bookSchema())
	if err != nil {
		t.Fatal(err)
	}
	subjects := []string{"ARTS", "BIOGRAPHIES", "COMPUTERS"}
	for i := 0; i < n; i++ {
		_, err := tb.Insert(Row{nil, "Book " + string(rune('A'+i%26)), subjects[i%3], float64(10 + i), int64(100)})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestSchemaValidate(t *testing.T) {
	if err := bookSchema().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schema{
		{},
		{Name: "t"},
		{Name: "t", Columns: []Column{{Name: "", Type: Int64}}, PrimaryKey: "a"},
		{Name: "t", Columns: []Column{{Name: "a", Type: Int64}, {Name: "a", Type: Int64}}, PrimaryKey: "a"},
		{Name: "t", Columns: []Column{{Name: "a", Type: Int64}}, PrimaryKey: "b"},
		{Name: "t", Columns: []Column{{Name: "a", Type: Float64}}, PrimaryKey: "a"},
	}
	for i, s := range bad {
		if err := s.Validate(); !errors.Is(err, ErrBadSchema) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
}

func TestInsertAutoIncrement(t *testing.T) {
	tb := newBookTable(t, 3)
	if tb.Len() != 3 {
		t.Fatalf("Len = %d", tb.Len())
	}
	r, ok := tb.Get(int64(2))
	if !ok || r[0].(int64) != 2 {
		t.Fatalf("Get(2) = %v, %v", r, ok)
	}
	// Explicit key beyond autoinc advances the counter.
	if _, err := tb.Insert(Row{int64(100), "X", "ARTS", 1.0, int64(1)}); err != nil {
		t.Fatal(err)
	}
	pk, err := tb.Insert(Row{nil, "Y", "ARTS", 1.0, int64(1)})
	if err != nil || pk.(int64) != 101 {
		t.Fatalf("autoinc after explicit key = %v, %v", pk, err)
	}
}

func TestInsertErrors(t *testing.T) {
	tb := newBookTable(t, 1)
	if _, err := tb.Insert(Row{nil, "short row"}); err == nil {
		t.Fatal("width mismatch accepted")
	}
	if _, err := tb.Insert(Row{nil, 42, "ARTS", 1.0, int64(1)}); !errors.Is(err, ErrBadValue) {
		t.Fatalf("type mismatch err = %v", err)
	}
	if _, err := tb.Insert(Row{int64(1), "dup", "ARTS", 1.0, int64(1)}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate key err = %v", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	tb := newBookTable(t, 1)
	r, _ := tb.Get(int64(1))
	r[1] = "mutated"
	r2, _ := tb.Get(int64(1))
	if r2[1].(string) == "mutated" {
		t.Fatal("Get leaked internal row")
	}
}

func TestUpdate(t *testing.T) {
	tb := newBookTable(t, 2)
	if err := tb.Update(int64(1), map[string]any{"i_stock": int64(5)}); err != nil {
		t.Fatal(err)
	}
	r, _ := tb.Get(int64(1))
	if r[4].(int64) != 5 {
		t.Fatalf("stock = %v", r[4])
	}
	if err := tb.Update(int64(99), map[string]any{"i_stock": int64(5)}); !errors.Is(err, ErrNoSuchRow) {
		t.Fatalf("missing row err = %v", err)
	}
	if err := tb.Update(int64(1), map[string]any{"ghost": int64(5)}); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("missing column err = %v", err)
	}
	if err := tb.Update(int64(1), map[string]any{"i_id": int64(9)}); err == nil {
		t.Fatal("primary key update accepted")
	}
	if err := tb.Update(int64(1), map[string]any{"i_stock": "NaN"}); !errors.Is(err, ErrBadValue) {
		t.Fatalf("bad value err = %v", err)
	}
	// Failed update must not partially apply.
	r, _ = tb.Get(int64(1))
	if r[4].(int64) != 5 {
		t.Fatal("failed update partially applied")
	}
}

func TestDelete(t *testing.T) {
	tb := newBookTable(t, 3)
	if !tb.Delete(int64(2)) {
		t.Fatal("Delete reported false")
	}
	if tb.Delete(int64(2)) {
		t.Fatal("double Delete reported true")
	}
	if _, ok := tb.Get(int64(2)); ok {
		t.Fatal("row still present")
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestSelectFullScan(t *testing.T) {
	tb := newBookTable(t, 9)
	rows, scanned, err := tb.selectRows(Where("i_subject", Eq, "ARTS"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if scanned != 9 {
		t.Fatalf("scanned = %d, want full scan of 9", scanned)
	}
}

func TestSelectIndexNarrowsScan(t *testing.T) {
	tb := newBookTable(t, 9)
	if err := tb.CreateIndex("i_subject"); err != nil {
		t.Fatal(err)
	}
	rows, scanned, err := tb.selectRows(Where("i_subject", Eq, "ARTS"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || scanned != 3 {
		t.Fatalf("rows=%d scanned=%d, want 3/3", len(rows), scanned)
	}
	// Index stays correct across update and delete.
	if err := tb.Update(int64(1), map[string]any{"i_subject": "COMPUTERS"}); err != nil {
		t.Fatal(err)
	}
	tb.Delete(int64(4))
	rows, _, _ = tb.selectRows(Where("i_subject", Eq, "ARTS"), nil)
	if len(rows) != 1 {
		t.Fatalf("after update+delete: rows = %d, want 1", len(rows))
	}
	// Duplicate CreateIndex is a no-op.
	if err := tb.CreateIndex("i_subject"); err != nil {
		t.Fatal(err)
	}
	if err := tb.CreateIndex("ghost"); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("index on ghost column err = %v", err)
	}
}

func TestSelectPrimaryKeyShortcut(t *testing.T) {
	tb := newBookTable(t, 100)
	rows, scanned, err := tb.selectRows(Where("i_id", Eq, int64(50)), nil)
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows = %v, err = %v", rows, err)
	}
	if scanned != 1 {
		t.Fatalf("scanned = %d, want 1 via pk", scanned)
	}
	rows, scanned, _ = tb.selectRows(Where("i_id", Eq, int64(9999)), nil)
	if len(rows) != 0 || scanned != 0 {
		t.Fatalf("missing pk: rows=%d scanned=%d", len(rows), scanned)
	}
}

func TestSelectOrderAndLimit(t *testing.T) {
	tb := newBookTable(t, 10)
	rows, _, err := tb.selectRows(Query{}.Ordered("i_cost", true).Limited(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("limit ignored: %d", len(rows))
	}
	if rows[0][3].(float64) != 19 || rows[2][3].(float64) != 17 {
		t.Fatalf("desc order wrong: %v, %v", rows[0][3], rows[2][3])
	}
	asc, _, _ := tb.selectRows(Query{}.Ordered("i_cost", false).Limited(1), nil)
	if asc[0][3].(float64) != 10 {
		t.Fatalf("asc order wrong: %v", asc[0][3])
	}
	if _, _, err := tb.selectRows(Query{}.Ordered("ghost", false), nil); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("order by ghost err = %v", err)
	}
}

func TestSelectOperators(t *testing.T) {
	tb := newBookTable(t, 10)
	cases := []struct {
		q    Query
		want int
	}{
		{Where("i_cost", Gt, 15.0), 4},
		{Where("i_cost", Ge, 15.0), 5},
		{Where("i_cost", Lt, 12.0), 2},
		{Where("i_cost", Le, 12.0), 3},
		{Where("i_cost", Ne, 10.0), 9},
		{Where("i_title", Contains, "Book"), 10},
		{Where("i_title", Contains, "zzz"), 0},
		{Where("i_subject", Eq, "ARTS").And("i_cost", Gt, 12.0), 3},
	}
	for i, tc := range cases {
		rows, _, err := tb.selectRows(tc.q, nil)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(rows) != tc.want {
			t.Fatalf("case %d: rows = %d, want %d", i, len(rows), tc.want)
		}
	}
}

func TestSelectErrors(t *testing.T) {
	tb := newBookTable(t, 2)
	if _, _, err := tb.selectRows(Where("ghost", Eq, int64(1)), nil); err == nil {
		t.Fatal("unknown predicate column accepted")
	}
	if _, _, err := tb.selectRows(Where("i_cost", Contains, "x"), nil); err == nil {
		t.Fatal("Contains on float accepted")
	}
	if _, _, err := tb.selectRows(Where("i_cost", Eq, "notafloat"), nil); !errors.Is(err, ErrBadValue) {
		t.Fatal("type-mismatched predicate accepted")
	}
}

func TestCompareAllTypes(t *testing.T) {
	cases := []struct {
		t    ColType
		a, b any
		want int
	}{
		{Int64, int64(1), int64(2), -1},
		{Int64, int64(2), int64(2), 0},
		{Float64, 3.0, 2.0, 1},
		{String, "a", "b", -1},
		{Bool, false, true, -1},
		{Bool, true, true, 0},
		{Bool, true, false, 1},
		{Bytes, []byte{1}, []byte{2}, -1},
	}
	for i, tc := range cases {
		got, err := compare(tc.t, tc.a, tc.b)
		if err != nil || got != tc.want {
			t.Fatalf("case %d: compare = %d, %v", i, got, err)
		}
	}
}

func TestOpString(t *testing.T) {
	ops := map[Op]string{Eq: "=", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Contains: "CONTAINS", Op(99): "?"}
	for op, want := range ops {
		if op.String() != want {
			t.Fatalf("Op(%d).String() = %q", op, op.String())
		}
	}
}

func TestColTypeString(t *testing.T) {
	types := map[ColType]string{Int64: "int64", Float64: "float64", String: "string", Bool: "bool", Bytes: "bytes", ColType(99): "unknown"}
	for ct, want := range types {
		if ct.String() != want {
			t.Fatalf("ColType(%d).String() = %q", ct, ct.String())
		}
	}
}

func TestSchemaGet(t *testing.T) {
	s := bookSchema()
	r := Row{int64(1), "T", "ARTS", 1.0, int64(2)}
	v, err := s.Get(r, "i_title")
	if err != nil || v.(string) != "T" {
		t.Fatalf("Get = %v, %v", v, err)
	}
	if _, err := s.Get(r, "ghost"); err == nil {
		t.Fatal("Get ghost column succeeded")
	}
}

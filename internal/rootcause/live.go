package rootcause

// LiveVerdict is one component's state as published by a streaming aging
// detector (see internal/detect): whether it is currently flagged and the
// score the detector ranks it by.
type LiveVerdict struct {
	// Component is the component name.
	Component string
	// Node is the cluster node the verdict was produced for ("" when
	// standalone). A cluster aggregator publishes one verdict per
	// (node, component) pair.
	Node string
	// Alarm is true while the detector flags the component as aging.
	Alarm bool
	// Score orders alarming components (a Sen slope in the detect
	// implementation; any consistent unit works).
	Score float64
}

// Live is the online strategy: instead of re-scanning recorded series on
// every query (as Trend does), it ranks on the verdicts a streaming
// detector bank maintains incrementally as samples arrive. Source is
// called once per Rank and must be safe for concurrent use — the detect
// package satisfies this by publishing immutable reports through an
// atomic pointer.
//
// Components without a verdict (detectors still warming up, or a
// component instrumented after the last round) rank at score zero, so a
// live ranking is always total over the offered data.
type Live struct {
	// Source returns the current verdicts for a resource.
	Source func(resource string) []LiveVerdict
}

// Name implements Strategy.
func (Live) Name() string { return "live" }

// Rank implements Strategy. Scores and alarms come from the detector
// verdicts; the map coordinates (normalised consumption and usage) are
// still computed from the offered evidence so live rankings render on the
// same Fig. 2 geometry as the offline strategies.
func (s Live) Rank(resource string, data []ComponentData) Ranking {
	out := Ranking{Resource: resource, Strategy: s.Name()}
	// Verdicts are keyed by (node, component) so a cluster-level source
	// can distinguish the same component on different nodes; standalone
	// sources leave Node empty on both sides and match as before.
	type key struct{ node, component string }
	verdicts := map[key]LiveVerdict{}
	if s.Source != nil {
		for _, v := range s.Source(resource) {
			verdicts[key{v.Node, v.Component}] = v
		}
	}
	var maxC float64
	var maxU int64
	for _, d := range data {
		if d.Consumption > maxC {
			maxC = d.Consumption
		}
		if d.Usage > maxU {
			maxU = d.Usage
		}
	}
	for _, d := range data {
		e := Ranked{Name: d.Name, Node: d.Node}
		if maxC > 0 {
			e.NormConsumption = d.Consumption / maxC
		}
		if maxU > 0 {
			e.NormUsage = float64(d.Usage) / float64(maxU)
		}
		if v, ok := verdicts[key{d.Node, d.Name}]; ok {
			e.Alarm = v.Alarm
			e.Score = v.Score
		}
		out.Entries = append(out.Entries, e)
	}
	sortRanked(out.Entries)
	return out
}

// Package rootcause implements the determination strategies that decide
// which component is responsible for observed software aging.
//
// The primary strategy is the paper's resource-consumption × usage-
// frequency map (Figs. 2 and 6): a component is more aging-suspicious the
// more resource it has accumulated and the more it is used. The package
// also provides the trend-based ranking the paper names as future work
// ("more intelligent decision makers"), a Pinpoint-style failure-
// correlation baseline from the related-work discussion, and a black-box
// baseline representing system-level monitors that cannot localise at all.
package rootcause

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// ComponentData is the per-component evidence a strategy ranks on,
// produced by the manager agent.
type ComponentData struct {
	// Name is the component name.
	Name string
	// Node names the cluster node the evidence was collected on ("" in a
	// standalone deployment). Cluster-level rankings carry one entry per
	// (node, component) pair.
	Node string
	// Consumption is the accumulated resource consumption attributable
	// to the component (bytes for memory, seconds for CPU, count for
	// threads), net of its baseline.
	Consumption float64
	// Usage is the component's invocation count.
	Usage int64
	// Series is the consumption time series (for trend strategies).
	Series []metrics.Point
}

// Zone places a component on the paper's Fig. 2 map. The paper's most
// suspicious region is high consumption combined with high usage.
type Zone int

// Map zones.
const (
	ZoneQuiet       Zone = iota // low consumption, low usage
	ZoneHighUsage               // low consumption, high usage
	ZoneHighConsume             // high consumption, low usage
	ZoneSuspect                 // high consumption, high usage
)

func (z Zone) String() string {
	switch z {
	case ZoneQuiet:
		return "quiet"
	case ZoneHighUsage:
		return "high-usage"
	case ZoneHighConsume:
		return "high-consumption"
	case ZoneSuspect:
		return "suspect"
	default:
		return "unknown"
	}
}

// Ranked is one component's position in a ranking.
type Ranked struct {
	Name string
	// Node is the cluster node the entry belongs to ("" when standalone);
	// with it a ranking names (node, component) pairs, so a cluster-level
	// strategy can say "component X on node 2".
	Node  string
	Score float64
	Zone  Zone
	// NormConsumption and NormUsage are the map coordinates in [0,1].
	NormConsumption float64
	NormUsage       float64
	// Trend is filled by the trend strategy.
	Trend metrics.TrendResult
	// Alarm is filled by the live strategy: true while the streaming
	// detectors flag the component.
	Alarm bool
}

// Ranking is a strategy's verdict, most suspicious first.
type Ranking struct {
	Resource string
	Strategy string
	Entries  []Ranked
}

// Top returns the most suspicious component.
func (r Ranking) Top() (Ranked, bool) {
	if len(r.Entries) == 0 {
		return Ranked{}, false
	}
	return r.Entries[0], true
}

// Position returns the 1-based rank of a component (0 when absent).
func (r Ranking) Position(name string) int {
	for i, e := range r.Entries {
		if e.Name == name {
			return i + 1
		}
	}
	return 0
}

// String renders the ranking as a table.
func (r Ranking) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ranking[%s/%s]\n", r.Strategy, r.Resource)
	for i, e := range r.Entries {
		label := e.Name
		if e.Node != "" {
			label = e.Node + "/" + e.Name
		}
		fmt.Fprintf(&b, "%2d. %-28s score=%8.4f zone=%-16s consumption=%.2f usage=%.2f\n",
			i+1, label, e.Score, e.Zone, e.NormConsumption, e.NormUsage)
	}
	return b.String()
}

// Strategy ranks components by aging suspiciousness.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Rank orders the components, most suspicious first.
	Rank(resource string, data []ComponentData) Ranking
}

// PaperMap is the paper's determination mechanism: normalise accumulated
// consumption and usage against the worst offender, split each axis at
// Threshold into the four Fig. 2 zones, and score components by
// consumption weighted with usage. The paper calls the mechanism "very
// simplistic" — this implementation keeps that spirit.
type PaperMap struct {
	// Threshold splits each normalised axis into low/high (default 0.5).
	Threshold float64
}

// Name implements Strategy.
func (PaperMap) Name() string { return "paper-map" }

// Rank implements Strategy.
func (s PaperMap) Rank(resource string, data []ComponentData) Ranking {
	thr := s.Threshold
	if thr <= 0 || thr >= 1 {
		thr = 0.5
	}
	var maxC float64
	var maxU int64
	for _, d := range data {
		if d.Consumption > maxC {
			maxC = d.Consumption
		}
		if d.Usage > maxU {
			maxU = d.Usage
		}
	}
	out := Ranking{Resource: resource, Strategy: s.Name()}
	for _, d := range data {
		e := Ranked{Name: d.Name}
		if maxC > 0 {
			e.NormConsumption = d.Consumption / maxC
		}
		if maxU > 0 {
			e.NormUsage = float64(d.Usage) / float64(maxU)
		}
		switch {
		case e.NormConsumption >= thr && e.NormUsage >= thr:
			e.Zone = ZoneSuspect
		case e.NormConsumption >= thr:
			e.Zone = ZoneHighConsume
		case e.NormUsage >= thr:
			e.Zone = ZoneHighUsage
		default:
			e.Zone = ZoneQuiet
		}
		// Accumulated consumption dominates; usage amplifies, so of two
		// equal consumers the busier one ranks higher — the paper's
		// "consumption and usage frequency is high" rule.
		e.Score = e.NormConsumption * (0.6 + 0.4*e.NormUsage)
		out.Entries = append(out.Entries, e)
	}
	sortRanked(out.Entries)
	return out
}

// Trend ranks by the robust growth rate of each component's consumption
// series, gated by a Mann-Kendall monotone-trend test: components without
// a statistically significant increasing trend score zero no matter how
// large their static footprint. This is the "more intelligent decision
// maker" of the paper's future work.
type Trend struct {
	// Alpha is the Mann-Kendall significance level (default 0.05).
	Alpha float64
}

// Name implements Strategy.
func (Trend) Name() string { return "trend" }

// Rank implements Strategy.
func (s Trend) Rank(resource string, data []ComponentData) Ranking {
	alpha := s.Alpha
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	out := Ranking{Resource: resource, Strategy: s.Name()}
	var maxU int64
	for _, d := range data {
		if d.Usage > maxU {
			maxU = d.Usage
		}
	}
	for _, d := range data {
		e := Ranked{Name: d.Name}
		if maxU > 0 {
			e.NormUsage = float64(d.Usage) / float64(maxU)
		}
		e.Trend = metrics.MannKendallSeries(d.Series, alpha)
		if e.Trend.Direction == metrics.TrendIncreasing && e.Trend.SenSlope > 0 {
			e.Score = e.Trend.SenSlope
		}
		out.Entries = append(out.Entries, e)
	}
	sortRanked(out.Entries)
	// Zones still come from the map geometry for display purposes.
	var maxC float64
	for _, d := range data {
		if d.Consumption > maxC {
			maxC = d.Consumption
		}
	}
	for i := range out.Entries {
		for _, d := range data {
			if d.Name == out.Entries[i].Name && maxC > 0 {
				out.Entries[i].NormConsumption = d.Consumption / maxC
			}
		}
	}
	return out
}

// BlackBox represents the Ganglia/Nagios class of monitors the paper's
// related work discusses: they see the aggregate resource exhaustion but
// have no per-component signal, so every component ties. Its value is as
// an accuracy floor in strategy comparisons.
type BlackBox struct{}

// Name implements Strategy.
func (BlackBox) Name() string { return "black-box" }

// Rank implements Strategy.
func (BlackBox) Rank(resource string, data []ComponentData) Ranking {
	out := Ranking{Resource: resource, Strategy: BlackBox{}.Name()}
	for _, d := range data {
		out.Entries = append(out.Entries, Ranked{Name: d.Name, Score: 1})
	}
	sortRanked(out.Entries)
	return out
}

// sortRanked orders by descending score, breaking ties by name so
// rankings are deterministic.
func sortRanked(es []Ranked) {
	sort.SliceStable(es, func(i, j int) bool {
		if es[i].Score != es[j].Score {
			return es[i].Score > es[j].Score
		}
		return es[i].Name < es[j].Name
	})
}

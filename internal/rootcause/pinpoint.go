package rootcause

import (
	"sort"
	"sync"

	"repro/internal/aspect"
)

// Trace is one request's component path and outcome — the input unit of
// the Pinpoint-style baseline (Chen et al., NSDI'04), which correlates
// components with failed requests.
type Trace struct {
	Components []string
	Failed     bool
}

// TraceCollector is an aspect that reconstructs per-request traces from
// join points: a depth-0 execution opens a trace, nested executions with
// the same flow key join it, and the depth-0 completion closes it. It is
// safe for concurrent use.
type TraceCollector struct {
	capacity int

	mu   sync.Mutex
	open map[any][]string
	done []Trace
}

// NewTraceCollector creates a collector retaining up to capacity completed
// traces (oldest evicted first; default 100000).
func NewTraceCollector(capacity int) *TraceCollector {
	if capacity <= 0 {
		capacity = 100000
	}
	return &TraceCollector{
		capacity: capacity,
		open:     make(map[any][]string),
	}
}

// Aspect returns the collecting advice. Register it with the weaver; the
// pointcut spans every component so DAO executions join their request's
// trace.
func (tc *TraceCollector) Aspect() *aspect.Aspect {
	return &aspect.Aspect{
		Name:     "rootcause.pinpoint.collector",
		Order:    -100, // outermost: sees the execution even if advice below fails it
		Pointcut: aspect.MustPointcut("within(*)"),
		Before: func(jp *aspect.JoinPoint) {
			key := jp.Key()
			if key == nil {
				return
			}
			tc.mu.Lock()
			defer tc.mu.Unlock()
			if jp.Depth == 0 {
				tc.open[key] = []string{jp.Component}
				return
			}
			if path, ok := tc.open[key]; ok {
				tc.open[key] = append(path, jp.Component)
			}
		},
		After: func(jp *aspect.JoinPoint) {
			if jp.Depth != 0 {
				return
			}
			key := jp.Key()
			if key == nil {
				return
			}
			tc.mu.Lock()
			defer tc.mu.Unlock()
			path, ok := tc.open[key]
			if !ok {
				return
			}
			delete(tc.open, key)
			tc.done = append(tc.done, Trace{Components: dedupe(path), Failed: jp.Err != nil})
			if len(tc.done) > tc.capacity {
				tc.done = tc.done[len(tc.done)-tc.capacity:]
			}
		},
	}
}

func dedupe(path []string) []string {
	seen := make(map[string]bool, len(path))
	out := path[:0]
	for _, c := range path {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// Len returns the number of completed traces held.
func (tc *TraceCollector) Len() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.done)
}

// Traces returns a copy of the completed traces.
func (tc *TraceCollector) Traces() []Trace {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	out := make([]Trace, len(tc.done))
	copy(out, tc.done)
	return out
}

// Reset drops all completed traces.
func (tc *TraceCollector) Reset() {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.done = nil
}

// Pinpoint scores components by how strongly their presence correlates
// with failed requests, using the Jaccard similarity between "traces
// containing the component" and "failed traces" — the simplified data
// clustering of the Pinpoint project. Its known blind spot, which the
// paper's related work calls out and experiment E9 demonstrates, is that
// components always used together receive identical scores.
type Pinpoint struct{}

// Name identifies the analyzer.
func (Pinpoint) Name() string { return "pinpoint" }

// Analyze ranks components from traces.
func (Pinpoint) Analyze(traces []Trace) Ranking {
	type sets struct {
		with       int // traces containing the component
		withFailed int // failed traces containing the component
	}
	byComp := make(map[string]*sets)
	failed := 0
	for _, tr := range traces {
		if tr.Failed {
			failed++
		}
		for _, c := range tr.Components {
			s, ok := byComp[c]
			if !ok {
				s = &sets{}
				byComp[c] = s
			}
			s.with++
			if tr.Failed {
				s.withFailed++
			}
		}
	}
	out := Ranking{Resource: "failures", Strategy: Pinpoint{}.Name()}
	names := make([]string, 0, len(byComp))
	for c := range byComp {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, c := range names {
		s := byComp[c]
		union := s.with + failed - s.withFailed
		var score float64
		if union > 0 {
			score = float64(s.withFailed) / float64(union)
		}
		out.Entries = append(out.Entries, Ranked{Name: c, Score: score})
	}
	sortRanked(out.Entries)
	return out
}

package rootcause

// Evaluation quantifies how well a ranking localises a known set of
// faulty components — the scoring used when comparing determination
// strategies against each other and against baselines.
type Evaluation struct {
	Strategy string
	// TopHit reports whether rank 1 is a truly faulty component.
	TopHit bool
	// ReciprocalRank is 1/rank of the first faulty component (0 when
	// none is ranked).
	ReciprocalRank float64
	// PrecisionAtK is the fraction of the top-K entries that are truly
	// faulty, with K = min(k, len(truth)).
	PrecisionAtK float64
	// K is the cutoff actually used.
	K int
}

// PrecisionRecall scores a flagged suspect set against the injected
// ground truth — the set form of Evaluate, used by the scenario-matrix
// accuracy harness where the detection plane emits an unordered set of
// suspects (components, or node/component pairs) rather than a ranking.
// Both sets are deduplicated. An empty truth with an empty flagged set
// scores perfect (a no-fault scenario correctly kept quiet).
func PrecisionRecall(flagged, truth []string) (tp, fp, fn int, precision, recall float64) {
	isTruth := make(map[string]bool, len(truth))
	for _, t := range truth {
		isTruth[t] = true
	}
	seen := make(map[string]bool, len(flagged))
	for _, f := range flagged {
		if seen[f] {
			continue
		}
		seen[f] = true
		if isTruth[f] {
			tp++
		} else {
			fp++
		}
	}
	for t := range isTruth {
		if !seen[t] {
			fn++
		}
	}
	precision, recall = 1, 1
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return tp, fp, fn, precision, recall
}

// Evaluate scores ranking against the ground-truth faulty set.
func Evaluate(r Ranking, truth []string, k int) Evaluation {
	isFaulty := make(map[string]bool, len(truth))
	for _, t := range truth {
		isFaulty[t] = true
	}
	if k <= 0 || k > len(truth) {
		k = len(truth)
	}
	ev := Evaluation{Strategy: r.Strategy, K: k}
	hits := 0
	for i, e := range r.Entries {
		if isFaulty[e.Name] {
			if ev.ReciprocalRank == 0 {
				ev.ReciprocalRank = 1 / float64(i+1)
			}
			if i < k {
				hits++
			}
		}
	}
	if len(r.Entries) > 0 && isFaulty[r.Entries[0].Name] {
		ev.TopHit = true
	}
	if k > 0 {
		ev.PrecisionAtK = float64(hits) / float64(k)
	}
	return ev
}

package rootcause

// Evaluation quantifies how well a ranking localises a known set of
// faulty components — the scoring used when comparing determination
// strategies against each other and against baselines.
type Evaluation struct {
	Strategy string
	// TopHit reports whether rank 1 is a truly faulty component.
	TopHit bool
	// ReciprocalRank is 1/rank of the first faulty component (0 when
	// none is ranked).
	ReciprocalRank float64
	// PrecisionAtK is the fraction of the top-K entries that are truly
	// faulty, with K = min(k, len(truth)).
	PrecisionAtK float64
	// K is the cutoff actually used.
	K int
}

// Evaluate scores ranking against the ground-truth faulty set.
func Evaluate(r Ranking, truth []string, k int) Evaluation {
	isFaulty := make(map[string]bool, len(truth))
	for _, t := range truth {
		isFaulty[t] = true
	}
	if k <= 0 || k > len(truth) {
		k = len(truth)
	}
	ev := Evaluation{Strategy: r.Strategy, K: k}
	hits := 0
	for i, e := range r.Entries {
		if isFaulty[e.Name] {
			if ev.ReciprocalRank == 0 {
				ev.ReciprocalRank = 1 / float64(i+1)
			}
			if i < k {
				hits++
			}
		}
	}
	if len(r.Entries) > 0 && isFaulty[r.Entries[0].Name] {
		ev.TopHit = true
	}
	if k > 0 {
		ev.PrecisionAtK = float64(hits) / float64(k)
	}
	return ev
}

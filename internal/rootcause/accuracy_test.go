package rootcause

import (
	"testing"
	"testing/quick"
)

func rankingOf(names ...string) Ranking {
	r := Ranking{Strategy: "test"}
	for i, n := range names {
		r.Entries = append(r.Entries, Ranked{Name: n, Score: float64(len(names) - i)})
	}
	return r
}

func TestEvaluatePerfect(t *testing.T) {
	r := rankingOf("A", "B", "C", "D")
	ev := Evaluate(r, []string{"A", "B"}, 2)
	if !ev.TopHit || ev.ReciprocalRank != 1 || ev.PrecisionAtK != 1 || ev.K != 2 {
		t.Fatalf("perfect evaluation = %+v", ev)
	}
}

func TestEvaluateMisses(t *testing.T) {
	r := rankingOf("X", "Y", "A")
	ev := Evaluate(r, []string{"A"}, 1)
	if ev.TopHit {
		t.Fatal("TopHit on miss")
	}
	if ev.ReciprocalRank != 1.0/3 {
		t.Fatalf("RR = %v", ev.ReciprocalRank)
	}
	if ev.PrecisionAtK != 0 {
		t.Fatalf("P@1 = %v", ev.PrecisionAtK)
	}
}

func TestEvaluateAbsent(t *testing.T) {
	r := rankingOf("X", "Y")
	ev := Evaluate(r, []string{"A"}, 1)
	if ev.ReciprocalRank != 0 || ev.TopHit {
		t.Fatalf("absent = %+v", ev)
	}
}

func TestEvaluateKClamped(t *testing.T) {
	r := rankingOf("A", "B")
	ev := Evaluate(r, []string{"A"}, 99)
	if ev.K != 1 {
		t.Fatalf("K = %d, want clamp to |truth|", ev.K)
	}
	ev = Evaluate(r, []string{"A"}, 0)
	if ev.K != 1 {
		t.Fatalf("K=0 not defaulted: %d", ev.K)
	}
}

func TestEvaluateEmptyRanking(t *testing.T) {
	ev := Evaluate(Ranking{}, []string{"A"}, 1)
	if ev.TopHit || ev.ReciprocalRank != 0 || ev.PrecisionAtK != 0 {
		t.Fatalf("empty = %+v", ev)
	}
}

func TestEvaluateBounds(t *testing.T) {
	// Property: metrics stay in [0,1].
	f := func(order []uint8, truthSel uint8) bool {
		names := []string{"A", "B", "C", "D", "E"}
		r := Ranking{}
		for _, o := range order {
			r.Entries = append(r.Entries, Ranked{Name: names[int(o)%5]})
		}
		truth := []string{names[int(truthSel)%5]}
		ev := Evaluate(r, truth, 3)
		return ev.ReciprocalRank >= 0 && ev.ReciprocalRank <= 1 &&
			ev.PrecisionAtK >= 0 && ev.PrecisionAtK <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPrecisionRecall pins the set-form scoring the scenario-matrix
// harness uses: duplicates in the flagged set collapse (a component
// flagged on two indicator streams is one verdict), and empty
// denominators score perfect — a no-fault scenario that stayed quiet is
// a correct outcome, not a divide-by-zero.
func TestPrecisionRecall(t *testing.T) {
	for _, tc := range []struct {
		name              string
		flagged, truth    []string
		tp, fp, fn        int
		precision, recall float64
	}{
		{"exact match", []string{"a"}, []string{"a"}, 1, 0, 0, 1, 1},
		{"both empty", nil, nil, 0, 0, 0, 1, 1},
		{"false positive", []string{"a", "b"}, []string{"a"}, 1, 1, 0, 0.5, 1},
		{"missed fault", nil, []string{"a"}, 0, 0, 1, 1, 0},
		{"duplicate flags collapse", []string{"a", "a", "a"}, []string{"a"}, 1, 0, 0, 1, 1},
		{"quiet scenario with noise", []string{"b"}, nil, 0, 1, 0, 0, 1},
		{"pair vocabulary", []string{"node2/a", "node3/a"}, []string{"node2/a"}, 1, 1, 1 - 1, 0.5, 1},
	} {
		tp, fp, fn, p, r := PrecisionRecall(tc.flagged, tc.truth)
		if tp != tc.tp || fp != tc.fp || fn != tc.fn || p != tc.precision || r != tc.recall {
			t.Errorf("%s: PrecisionRecall(%v, %v) = %d,%d,%d,%.2f,%.2f want %d,%d,%d,%.2f,%.2f",
				tc.name, tc.flagged, tc.truth, tp, fp, fn, p, r,
				tc.tp, tc.fp, tc.fn, tc.precision, tc.recall)
		}
	}
}

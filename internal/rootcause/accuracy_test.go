package rootcause

import (
	"testing"
	"testing/quick"
)

func rankingOf(names ...string) Ranking {
	r := Ranking{Strategy: "test"}
	for i, n := range names {
		r.Entries = append(r.Entries, Ranked{Name: n, Score: float64(len(names) - i)})
	}
	return r
}

func TestEvaluatePerfect(t *testing.T) {
	r := rankingOf("A", "B", "C", "D")
	ev := Evaluate(r, []string{"A", "B"}, 2)
	if !ev.TopHit || ev.ReciprocalRank != 1 || ev.PrecisionAtK != 1 || ev.K != 2 {
		t.Fatalf("perfect evaluation = %+v", ev)
	}
}

func TestEvaluateMisses(t *testing.T) {
	r := rankingOf("X", "Y", "A")
	ev := Evaluate(r, []string{"A"}, 1)
	if ev.TopHit {
		t.Fatal("TopHit on miss")
	}
	if ev.ReciprocalRank != 1.0/3 {
		t.Fatalf("RR = %v", ev.ReciprocalRank)
	}
	if ev.PrecisionAtK != 0 {
		t.Fatalf("P@1 = %v", ev.PrecisionAtK)
	}
}

func TestEvaluateAbsent(t *testing.T) {
	r := rankingOf("X", "Y")
	ev := Evaluate(r, []string{"A"}, 1)
	if ev.ReciprocalRank != 0 || ev.TopHit {
		t.Fatalf("absent = %+v", ev)
	}
}

func TestEvaluateKClamped(t *testing.T) {
	r := rankingOf("A", "B")
	ev := Evaluate(r, []string{"A"}, 99)
	if ev.K != 1 {
		t.Fatalf("K = %d, want clamp to |truth|", ev.K)
	}
	ev = Evaluate(r, []string{"A"}, 0)
	if ev.K != 1 {
		t.Fatalf("K=0 not defaulted: %d", ev.K)
	}
}

func TestEvaluateEmptyRanking(t *testing.T) {
	ev := Evaluate(Ranking{}, []string{"A"}, 1)
	if ev.TopHit || ev.ReciprocalRank != 0 || ev.PrecisionAtK != 0 {
		t.Fatalf("empty = %+v", ev)
	}
}

func TestEvaluateBounds(t *testing.T) {
	// Property: metrics stay in [0,1].
	f := func(order []uint8, truthSel uint8) bool {
		names := []string{"A", "B", "C", "D", "E"}
		r := Ranking{}
		for _, o := range order {
			r.Entries = append(r.Entries, Ranked{Name: names[int(o)%5]})
		}
		truth := []string{names[int(truthSel)%5]}
		ev := Evaluate(r, truth, 3)
		return ev.ReciprocalRank >= 0 && ev.ReciprocalRank <= 1 &&
			ev.PrecisionAtK >= 0 && ev.PrecisionAtK <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
